package dise

// FuzzTranslated is the differential fuzzer for the dynamic translator: every
// input is executed twice — once under pure interpretation, once with every
// block translated on first touch — and the two executions must be observably
// identical. "Observably" is the full architectural surface: the register
// file, the memory image, the Stats ledger (including the self-modifying-code
// counters TextWrites/Redecodes), program output, and the trap classification
// when the run does not halt cleanly. The optional production set routes the
// stream through trigger expansion so the translated trigger sites (inlined
// expansion memo) are diffed too.

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

// countStores is a minimal expansion: every store grows a counter in $dr0
// before executing. It keeps the trigger path hot without changing which
// application instructions run.
const countStores = `
prod count {
    match class == store
    replace {
        lda $dr0, 1($dr0)
        %insn
    }
}
`

func encodeProgram(tb testing.TB, name, src string) []byte {
	tb.Helper()
	prog := MustAssemble(name, src)
	var words []byte
	for _, in := range prog.Text {
		if w, err := isa.Encode(in); err == nil {
			words = binary.LittleEndian.AppendUint32(words, w)
		}
	}
	return words
}

func FuzzTranslated(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{0, 0, 0, 0}, true)
	// A hot loop with memory traffic: crosses the auto threshold many times
	// over, so the translated run really executes threaded code.
	f.Add(encodeProgram(f, "loop", `
.entry main
.data
buf: .space 256
.text
main:
    la r1, buf
    li r2, 40
loop:
    ldq r3, 0(r1)
    addqi r3, 3, r3
    stq r3, 0(r1)
    addqi r1, 8, r1
    subqi r2, 1, r2
    bgt r2, loop
    halt
`), false)
	f.Add(encodeProgram(f, "loop-prods", `
.entry main
.data
buf: .space 64
.text
main:
    la r1, buf
    li r2, 12
loop:
    stq r2, 0(r1)
    subqi r2, 1, r2
    bgt r2, loop
    halt
`), true)
	// Self-modifying: the loop keeps rewriting one of its own text words (an
	// idempotent patch — the store still forces redecode and superblock
	// invalidation every iteration, racing hot-block promotion).
	f.Add(encodeProgram(f, "smc", `
.entry main
main:
    li r2, 1
    slli r2, 26, r2
    ldl r3, 28(r2)
    li r4, 20
loop:
    stl r3, 28(r2)
    subqi r4, 1, r4
    bgt r4, loop
    addqi r1, 5, r1
    halt
`), false)

	f.Fuzz(func(t *testing.T, data []byte, withProds bool) {
		var text []isa.Inst
		for len(data) >= isa.InstBytes {
			w := binary.LittleEndian.Uint32(data)
			data = data[isa.InstBytes:]
			in, err := isa.Decode(w)
			if err != nil {
				in = isa.Inst{Op: isa.OpInvalid}
			}
			text = append(text, in)
			if len(text) >= 256 {
				break
			}
		}
		prog := &program.Program{Name: "fuzz", Text: text}

		run := func(mode emu.TranslateMode) *emu.Machine {
			m := NewMachine(prog)
			if withProds {
				ctrl := NewController(DefaultEngineConfig())
				if _, err := ctrl.InstallFile(countStores, nil); err != nil {
					t.Fatalf("install productions: %v", err)
				}
				m.SetExpander(ctrl.Engine())
			}
			m.SetTranslate(mode, 0)
			m.SetBudget(20000)
			m.Run()
			return m
		}
		interp := run(emu.TranslateOff)
		trans := run(emu.TranslateAlways)

		if interp.Stats != trans.Stats {
			t.Errorf("stats diverge:\ninterp: %+v\ntrans:  %+v", interp.Stats, trans.Stats)
		}
		for r := 0; r < isa.NumRegs; r++ {
			if a, b := interp.Reg(isa.Reg(r)), trans.Reg(isa.Reg(r)); a != b {
				t.Errorf("r%d diverges: interp %#x, trans %#x", r, a, b)
			}
		}
		if a, b := interp.Mem().Checksum(), trans.Mem().Checksum(); a != b {
			t.Errorf("memory image diverges: interp %#x, trans %#x", a, b)
		}
		if a, b := interp.Output(), trans.Output(); a != b {
			t.Errorf("output diverges: interp %q, trans %q", a, b)
		}
		ea, eb := interp.Err(), trans.Err()
		switch {
		case (ea == nil) != (eb == nil):
			t.Errorf("termination diverges: interp %v, trans %v", ea, eb)
		case ea != nil:
			var ta, tb *emu.Trap
			if !errors.As(ea, &ta) || !errors.As(eb, &tb) {
				t.Fatalf("untyped trap: interp %v, trans %v", ea, eb)
			}
			if ta.Kind != tb.Kind || ta.PC != tb.PC || ta.DISEPC != tb.DISEPC {
				t.Errorf("trap diverges: interp %v, trans %v", ea, eb)
			}
		}
	})
}
