package dise

// FuzzRun feeds the machine arbitrary text images: raw bytes are chopped into
// 32-bit words, decoded (words that don't decode become explicit invalid
// instructions, as a hardware fetch path would see them), and executed under a
// tight budget. The contract under test is the robustness guarantee: a hostile
// guest binary terminates with nil or a typed *Trap — the host never panics.

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

func FuzzRun(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	seed := MustAssemble("seed", `
.entry main
main:
    li r1, 7
    stq r1, 0(r1)
    halt
`)
	var words []byte
	for _, in := range seed.Text {
		if w, err := isa.Encode(in); err == nil {
			words = binary.LittleEndian.AppendUint32(words, w)
		}
	}
	f.Add(words)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x03, 0x00, 0x00, 0x68})
	f.Fuzz(func(t *testing.T, data []byte) {
		var text []isa.Inst
		for len(data) >= isa.InstBytes {
			w := binary.LittleEndian.Uint32(data)
			data = data[isa.InstBytes:]
			in, err := isa.Decode(w)
			if err != nil {
				in = isa.Inst{Op: isa.OpInvalid}
			}
			text = append(text, in)
			if len(text) >= 256 {
				break
			}
		}
		prog := &program.Program{Name: "fuzz", Text: text}

		// Functional path.
		m := NewMachine(prog)
		m.SetBudget(20000)
		if err := m.Run(); err != nil {
			var trap *Trap
			if !errors.As(err, &trap) {
				t.Fatalf("emu run returned untyped error: %v", err)
			}
		}

		// Timing path, watchdog-capped.
		cfg := DefaultCPUConfig()
		cfg.MaxCycles = 200000
		m2 := NewMachine(prog)
		m2.SetBudget(20000)
		res := Run(m2, cfg)
		if res.Err != nil {
			var trap *Trap
			if !errors.As(res.Err, &trap) {
				t.Fatalf("cpu run returned untyped error: %v", res.Err)
			}
			if trap.Kind == emu.TrapInternal {
				t.Fatalf("cpu run hit an internal panic: %v", res.Err)
			}
		}
	})
}
