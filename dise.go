// Package dise is the public facade of the DISE reproduction: dynamic
// instruction stream editing (Corliss, Lewis & Roth, ISCA 2003) implemented
// over a from-scratch Alpha-like ISA, functional emulator, and cycle-level
// superscalar simulator.
//
// The facade re-exports the pieces a typical user composes:
//
//   - the DISE controller/engine (internal/core): install productions,
//     expand fetch streams;
//   - the toolchain (internal/asm, internal/program): assemble and inspect
//     EVR programs;
//   - the machines (internal/emu, internal/cpu): functional execution and
//     cycle-level timing;
//   - the ACF library (internal/acf/...): memory fault isolation, dynamic
//     code (de)compression, tracing/profiling, and ACF composition;
//   - the evaluation (internal/workload, internal/experiments): the
//     SPEC2000-integer-like benchmark generator and the harnesses that
//     regenerate every figure of the paper.
//
// Quickstart:
//
//	prog := dise.MustAssemble("hello", src)
//	ctrl := dise.NewController(dise.DefaultEngineConfig())
//	ctrl.InstallFile(myProductions, nil)
//	m := dise.NewMachine(prog)
//	m.SetExpander(ctrl.Engine())
//	res := dise.Run(m, dise.DefaultCPUConfig())
package dise

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

// Core DISE types (paper §2).
type (
	// Controller mediates PT/RT programming and virtualization.
	Controller = core.Controller
	// Engine applies productions to the fetch stream.
	Engine = core.Engine
	// EngineConfig sizes the PT/RT and fixes miss penalties.
	EngineConfig = core.EngineConfig
	// Pattern is a pattern specification.
	Pattern = core.Pattern
	// Replacement is a parameterized replacement sequence.
	Replacement = core.Replacement
	// ReplInst is a single replacement instruction template.
	ReplInst = core.ReplInst
	// RegField / ImmField are template field descriptors.
	RegField = core.RegField
	ImmField = core.ImmField
	// Production binds a pattern to replacement sequence(s).
	Production = core.Production
	// Expansion is the engine's output for one trigger.
	Expansion = core.Expansion
	// Composer hooks RT-miss-time ACF composition.
	Composer = core.Composer
)

// Toolchain and machine types.
type (
	// Program is an EVR executable image.
	Program = program.Program
	// Machine is the functional emulator.
	Machine = emu.Machine
	// DynInst is one executed dynamic instruction, tagged PC:DISEPC.
	DynInst = emu.DynInst
	// CPUConfig parameterizes the cycle-level core.
	CPUConfig = cpu.Config
	// Result reports a timed run.
	Result = cpu.Result
)

// Trap model: every abnormal termination is a *Trap with a TrapKind, so
// callers classify with errors.Is/As instead of matching message text.
type (
	// Trap is a precise architectural trap (kind, PC:DISEPC, address).
	Trap = emu.Trap
	// TrapKind classifies traps (TrapOutOfSegment, TrapIllegalInst, ...).
	TrapKind = emu.TrapKind
)

// Trap kinds, re-exported for classification of Result.Err.
const (
	TrapACFViolation = emu.TrapACFViolation
	TrapOutOfSegment = emu.TrapOutOfSegment
	TrapIllegalInst  = emu.TrapIllegalInst
	TrapBadCodeword  = emu.TrapBadCodeword
	TrapUnaligned    = emu.TrapUnaligned
	TrapRTCorrupt    = emu.TrapRTCorrupt
	TrapPCOutOfText  = emu.TrapPCOutOfText
	TrapBadSyscall   = emu.TrapBadSyscall
	TrapBudget       = emu.TrapBudget
	TrapWatchdog     = emu.TrapWatchdog
	TrapInternal     = emu.TrapInternal
)

// Trap sentinels for errors.Is.
var (
	// ErrACFViolation matches any trap raised by an ACF check.
	ErrACFViolation = emu.ErrACFViolation
	// ErrBudget matches instruction-budget exhaustion.
	ErrBudget = emu.ErrBudget
)

// NewController creates a DISE controller and its engine.
func NewController(cfg EngineConfig) *Controller { return core.NewController(cfg) }

// DefaultEngineConfig is the paper's §4 DISE mechanism: 32 PT entries, a
// 2K-entry 2-way RT, 30-cycle misses, 150-cycle composing misses.
func DefaultEngineConfig() EngineConfig { return core.DefaultEngineConfig() }

// ParseProductions parses production-language text.
func ParseProductions(src string) ([]*core.ParsedProduction, error) {
	return core.ParseProductions(src)
}

// ParseProductionsOrDie parses known-good production text; it panics on
// error (for examples and tests).
func ParseProductionsOrDie(src string) []*core.ParsedProduction {
	return core.MustParseProductions(src)
}

// Assemble translates EVR assembly into a program.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// MustAssemble is Assemble for known-good sources.
func MustAssemble(name, src string) *Program { return asm.MustAssemble(name, src) }

// Disassemble renders a program as annotated assembly.
func Disassemble(p *Program) string { return asm.Disassemble(p) }

// NewMachine loads a program into a fresh functional machine.
func NewMachine(p *Program) *Machine { return emu.New(p) }

// Run times a machine to completion on the cycle-level core. It never
// panics on guest misbehavior: any internal invariant violation provoked by
// the machine surfaces as a TrapInternal in Result.Err.
func Run(m *Machine, cfg CPUConfig) (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res = &Result{Err: &emu.Trap{Kind: emu.TrapInternal,
				Detail: fmt.Sprintf("dise: %v", r)}}
		}
	}()
	return cpu.Run(m, cfg)
}

// DefaultCPUConfig is the paper's simulated core: 4-wide, 12-stage,
// 128-entry ROB, 32KB L1s, 1MB L2.
func DefaultCPUConfig() CPUConfig { return cpu.DefaultConfig() }

// Decoder integration options for the DISE engine (paper §4.1).
const (
	DiseFree  = cpu.DiseFree
	DiseStall = cpu.DiseStall
	DisePipe  = cpu.DisePipe
)

// LitField returns a literal register field for hand-built templates.
func LitField(r isa.Reg) core.RegField { return core.Lit(r) }

// TRegField returns a trigger-copy register field (core.RegTRS/RegTRT/RegTRD,
// a.k.a. codeword parameters T.P1/T.P2/T.P3).
func TRegField(d core.RegDir) core.RegField { return core.TReg(d) }

// ImmLit returns a literal immediate field for hand-built templates.
func ImmLit(v int64) core.ImmField { return core.ImmField{Dir: core.ImmLit, Lit: v} }
