// Dynamic code specialization (paper §3.2, "other aware ACFs"): DISE as a
// substrate for fast dynamic code generation. A loop multiplies by a
// loop-invariant operand. The static component planted a codeword where the
// multiply was; at runtime, before the loop is entered, the value of the
// operand is inspected and the codeword's replacement sequence is *defined
// accordingly*:
//
//   - power of two           -> one shift
//
//   - sum of two powers      -> two shifts + add (the case the paper points
//     out is painful for self-modifying code: 1 instruction becomes 3,
//     branches would need retargeting, a register would need scavenging —
//     DISE sidesteps all three with dedicated registers)
//
//   - anything else          -> the original multiply
//
//     go run ./examples/specialize
package main

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"

	dise "repro"
)

// The kernel loop: a polynomial hash acc = acc*K + a[i], with K
// loop-invariant — the multiply sits on the loop-carried dependence chain,
// so its latency is the loop's critical path. The multiply site is the
// codeword res1 (parameter p1 = the accumulator register).
const loopSrc = `
.entry main
.data
a: .space 8192
.text
main:
    la r1, a
    li r2, 1000
    li r17, 1
loop:
    andi r2, 63, r4
    slli r4, 3, r4
    addq r1, r4, r4
    ldq r3, 0(r4)
    res1 17, 0, 0, #0   ; was: mulq r17, r9, r17  (acc *= K)
    addq r17, r3, r17
    subqi r2, 1, r2
    bgt r2, loop
    mov r17, r1
    sys 2
    halt
`

// specialize defines the codeword's replacement for the invariant k.
func specialize(k uint64) (*dise.Replacement, string) {
	lit := dise.LitField
	param := dise.TRegField(1) // %p1: the multiply's source register
	switch {
	case k != 0 && k&(k-1) == 0:
		sh := int64(bits.TrailingZeros64(k))
		return &dise.Replacement{Name: "mul-shift", Insts: []dise.ReplInst{
			{Op: isa.OpSLLI, RS: param, RD: param, RT: lit(isa.NoReg),
				Imm: immLit(sh)},
		}}, fmt.Sprintf("one shift (<<%d)", sh)
	case twoPowers(k):
		hi := 63 - bits.LeadingZeros64(k)
		lo := bits.TrailingZeros64(k)
		// dr0 = x<<lo; x = x<<hi; x += dr0 — the intermediate lives in a
		// dedicated register: nothing scavenged from the application.
		return &dise.Replacement{Name: "mul-2shift", Insts: []dise.ReplInst{
			{Op: isa.OpSLLI, RS: param, RD: lit(isa.RegDR0), RT: lit(isa.NoReg), Imm: immLit(int64(lo))},
			{Op: isa.OpSLLI, RS: param, RD: param, RT: lit(isa.NoReg), Imm: immLit(int64(hi))},
			{Op: isa.OpADDQ, RS: param, RT: lit(isa.RegDR0), RD: param},
		}}, fmt.Sprintf("two shifts + add (<<%d + <<%d)", hi, lo)
	default:
		// Fall back to the original multiply, with K in a dedicated
		// register initialized below.
		return &dise.Replacement{Name: "mul-generic", Insts: []dise.ReplInst{
			{Op: isa.OpMULQ, RS: param, RT: lit(isa.RegDR0 + 1), RD: param},
		}}, "generic multiply"
	}
}

func twoPowers(k uint64) bool { return bits.OnesCount64(k) == 2 }

func immLit(v int64) dise.ImmField { return dise.ImmLit(v) }

func run(k uint64) (int64, string) {
	prog := dise.MustAssemble("spec", loopSrc)
	repl, how := specialize(k)
	ctrl := dise.NewController(dise.DefaultEngineConfig())
	if _, err := ctrl.InstallAware("mulspec", dise.Pattern{
		Op: isa.OpRES1, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
		[]*dise.Replacement{repl}); err != nil {
		panic(err)
	}
	m := dise.NewMachine(prog)
	m.SetExpander(ctrl.Engine())
	m.SetReg(isa.RegDR0+1, k) // the invariant, for the generic fallback
	res := dise.Run(m, dise.DefaultCPUConfig())
	if res.Err != nil {
		panic(res.Err)
	}
	return res.Cycles, how
}

func main() {
	fmt.Println("acc = acc*K + a[i] over 1000 elements; the multiply site is a codeword")
	fmt.Println("whose expansion is defined at runtime from the value of K:")
	for _, k := range []uint64{64, 96, 100} {
		cycles, how := run(k)
		fmt.Printf("  K = %3d: %-28s %6d cycles\n", k, how, cycles)
	}
	fmt.Println("\nswapping the production re-specializes the loop without touching")
	fmt.Println("the binary: no branch retargeting, no register scavenging (paper §3.2)")
}
