package main

import (
	"fmt"
	"testing"

	"repro/internal/emu"
	"repro/internal/goldentest"
	"repro/internal/isa"

	dise "repro"
)

// TestGolden pins the specialized loop for each multiplier class: one
// shift, two shifts + add, and the generic-multiply fallback.
func TestGolden(t *testing.T) {
	for _, tc := range []struct {
		k    uint64
		want goldentest.Want
	}{
		{64, goldentest.Want{Cycles: 2666, Insts: 8007, Mispredicts: 14, DiseStalls: 30}},
		{96, goldentest.Want{Cycles: 3657, Insts: 10007, Mispredicts: 14, DiseStalls: 30}},
		{100, goldentest.Want{Cycles: 4582, Insts: 8007, Mispredicts: 14, DiseStalls: 30}},
	} {
		mk := func() *emu.Machine {
			p := dise.MustAssemble("spec", loopSrc)
			repl, _ := specialize(tc.k)
			ctrl := dise.NewController(dise.DefaultEngineConfig())
			if _, err := ctrl.InstallAware("mulspec", dise.Pattern{
				Op: isa.OpRES1, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
				[]*dise.Replacement{repl}); err != nil {
				t.Fatal(err)
			}
			m := dise.NewMachine(p)
			m.SetExpander(ctrl.Engine())
			m.SetReg(isa.RegDR0+1, tc.k)
			return m
		}
		goldentest.Check(t, fmt.Sprintf("specialize-%d", tc.k), mk, 30, 150, tc.want)
	}
}
