// Quickstart: define a transparent production in the DISE production
// language, install it, and watch the engine macro-expand the fetch stream.
//
// The ACF here is a tiny store counter: every store is expanded into
// "count += 1; store" using a dedicated register invisible to the program.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/isa"

	dise "repro"
)

const program = `
.entry main
.data
buf: .space 64
.text
main:
    la r1, buf
    li r2, 4
loop:
    stq r2, 0(r1)
    addqi r1, 8, r1
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

// countStores increments dedicated register $dr0 before every store. The
// application cannot see or forge $dr0 (paper §2.1, dedicated registers).
const countStores = `
prod count_stores {
    match class == store
    replace {
        lda $dr0, 1($dr0)
        %insn
    }
}
`

func main() {
	prog := dise.MustAssemble("quickstart", program)
	fmt.Println("program:")
	fmt.Println(dise.Disassemble(prog))

	ctrl := dise.NewController(dise.DefaultEngineConfig())
	if _, err := ctrl.InstallFile(countStores, nil); err != nil {
		panic(err)
	}
	fmt.Println("installed productions:")
	fmt.Println(ctrl.Describe())

	m := dise.NewMachine(prog)
	m.SetExpander(ctrl.Engine())

	fmt.Println("dynamic stream (PC:DISEPC | instruction):")
	for i := 0; ; i++ {
		d, ok := m.Step()
		if !ok {
			break
		}
		tag := "  "
		if d.FromRT {
			tag = "rt" // spliced in by DISE, never fetched from memory
		}
		if i < 14 {
			fmt.Printf("  %08x:%d %s  %v\n", d.PC, d.DISEPC, tag, d.Inst)
		}
	}
	if err := m.Err(); err != nil {
		panic(err)
	}

	fmt.Printf("\nstores counted in $dr0: %d\n", m.Reg(isa.RegDR0))
	st := ctrl.Engine().Stats
	fmt.Printf("engine: %d fetches inspected, %d expansions (%.0f%%)\n",
		st.Fetched, st.Expansions, 100*st.ExpansionRate())
}
