package main

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/goldentest"

	dise "repro"
)

// TestGolden pins the timing of the quickstart program with the store
// counter installed, and checks that trace replay reproduces the live run.
func TestGolden(t *testing.T) {
	mk := func() *emu.Machine {
		prog := dise.MustAssemble("quickstart", program)
		ctrl := dise.NewController(dise.DefaultEngineConfig())
		if _, err := ctrl.InstallFile(countStores, nil); err != nil {
			t.Fatal(err)
		}
		m := dise.NewMachine(prog)
		m.SetExpander(ctrl.Engine())
		return m
	}
	goldentest.Check(t, "quickstart", mk, 30, 150,
		goldentest.Want{Cycles: 193, Insts: 24, Mispredicts: 3, DiseStalls: 30})
}
