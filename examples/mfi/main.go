// Memory fault isolation (paper §3.1): an "untrusted module" computes a
// store address from unvalidated input. Without protection the wild store
// silently lands outside the module's data segment; with DISE segment
// matching the access is caught before it executes — at a fraction of the
// cost of the binary-rewriting implementation.
//
//	go run ./examples/mfi
package main

import (
	"errors"
	"fmt"

	"repro/internal/acf/mfi"
	"repro/internal/cpu"
	"repro/internal/emu"

	dise "repro"
)

// The module hashes "input" values into a table; an attacker-controlled
// value (r9) sends one store far outside the table.
const module = `
.entry main
.data
table: .space 4096
.text
main:
    la r1, table
    li r2, 4000        ; honest iterations
    li r9, 0           ; attacker-controlled offset (honest = 0)
loop:
    andi r2, 63, r3
    slli r3, 3, r3
    addq r1, r3, r4
    addq r4, r9, r4    ; "hash": wild when r9 is huge
    stq r2, 0(r4)
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

func run(attack bool, protect string) (*cpu.Result, error) {
	prog := dise.MustAssemble("module", module)
	if protect == "rewrite" {
		var err error
		if prog, err = mfi.Rewrite(prog); err != nil {
			return nil, err
		}
	}
	m := dise.NewMachine(prog)
	if protect == "dise" {
		ctrl := dise.NewController(dise.DefaultEngineConfig())
		if _, err := mfi.Install(ctrl, mfi.DISE3); err != nil {
			return nil, err
		}
		m.SetExpander(ctrl.Engine())
		mfi.Setup(m)
	}
	if attack {
		// Corrupt the attacker-controlled input by patching the immediate
		// of "li r9, 0": the stores now land in a foreign segment. (The
		// emulator executes decoded instructions, so the demo can use a
		// wide immediate directly.)
		for i := range prog.Text {
			in := &prog.Text[i]
			if in.Op.String() == "lda" && in.RD == 9 && in.RS == 31 {
				in.Imm = 3 << 26 // segment 5: far outside the module
			}
		}
	}
	res := dise.Run(m, dise.DefaultCPUConfig())
	return res, res.Err
}

func main() {
	fmt.Println("-- honest module, no protection")
	res, err := run(false, "")
	fmt.Printf("   cycles %d, err=%v\n", res.Cycles, err)
	base := res.Cycles

	fmt.Println("-- attacked module, no protection: the wild store SUCCEEDS")
	res, err = run(true, "")
	fmt.Printf("   cycles %d, err=%v (memory silently corrupted)\n", res.Cycles, err)

	fmt.Println("-- attacked module, DISE segment matching")
	_, err = run(true, "dise")
	if errors.Is(err, emu.ErrACFViolation) {
		fmt.Println("   caught: store blocked before execution, module terminated")
	} else {
		fmt.Printf("   UNEXPECTED: %v\n", err)
	}

	fmt.Println("-- overhead comparison on the honest module")
	d, err := run(false, "dise")
	if err != nil {
		panic(err)
	}
	r, err := run(false, "rewrite")
	if err != nil {
		panic(err)
	}
	fmt.Printf("   unprotected %6d cycles (1.00x)\n", base)
	fmt.Printf("   DISE3       %6d cycles (%.2fx)\n", d.Cycles, float64(d.Cycles)/float64(base))
	fmt.Printf("   rewriting   %6d cycles (%.2fx)\n", r.Cycles, float64(r.Cycles)/float64(base))
}
