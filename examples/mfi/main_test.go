package main

import (
	"testing"

	"repro/internal/acf/mfi"
	"repro/internal/emu"
	"repro/internal/goldentest"

	dise "repro"
)

// TestGolden pins the honest module in each benign protection mode:
// unprotected, DISE segment matching, and binary rewriting.
func TestGolden(t *testing.T) {
	mkPlain := func() *emu.Machine {
		return dise.NewMachine(dise.MustAssemble("module", module))
	}
	goldentest.Check(t, "mfi-unprotected", mkPlain, 30, 150,
		goldentest.Want{Cycles: 8311, Insts: 28005, Mispredicts: 14, DiseStalls: 0})

	mkDISE := func() *emu.Machine {
		prog := dise.MustAssemble("module", module)
		ctrl := dise.NewController(dise.DefaultEngineConfig())
		if _, err := mfi.Install(ctrl, mfi.DISE3); err != nil {
			t.Fatal(err)
		}
		m := dise.NewMachine(prog)
		m.SetExpander(ctrl.Engine())
		mfi.Setup(m)
		return m
	}
	goldentest.Check(t, "mfi-dise3", mkDISE, 30, 150,
		goldentest.Want{Cycles: 12345, Insts: 40005, Mispredicts: 14, DiseStalls: 30})

	mkRewrite := func() *emu.Machine {
		prog, err := mfi.Rewrite(dise.MustAssemble("module", module))
		if err != nil {
			t.Fatal(err)
		}
		return dise.NewMachine(prog)
	}
	goldentest.Check(t, "mfi-rewrite", mkRewrite, 30, 150,
		goldentest.Want{Cycles: 16322, Insts: 48007, Mispredicts: 14, DiseStalls: 0})
}
