// ACF composition (paper §3.3 and Figure 8): a server ships a *compressed,
// unmodified* application; the client wants it fault-isolated. With DISE,
// the client installs its transparent MFI productions next to the server's
// aware decompression dictionary and a composer inlines the checks into the
// decompressed sequences at RT-fill time — no binary rewriting, and the
// checks cover code that never exists in memory in uncompressed form.
//
//	go run ./examples/composition
package main

import (
	"errors"
	"fmt"

	"repro/internal/acf/compose"
	"repro/internal/acf/compress"
	"repro/internal/acf/mfi"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/workload"

	dise "repro"
)

func main() {
	// ---- server side: compress an off-the-shelf application.
	prof, _ := workload.ProfileByName("parser")
	prof.TargetDynK = 120
	app := prof.MustGenerate()
	shipped, err := compress.Compress(app, compress.DiseFull())
	if err != nil {
		panic(err)
	}
	fmt.Printf("server ships %s: %d -> %d text bytes (ratio %.2f), %d dictionary entries\n",
		app.Name, shipped.Stats.OrigBytes, shipped.Prog.TextBytes(),
		shipped.Stats.Ratio(), shipped.Stats.Entries)

	// ---- client side: decompression + fault isolation, composed.
	ctrl := dise.NewController(dise.DefaultEngineConfig())
	mfiProds, err := mfi.Install(ctrl, mfi.DISE3)
	if err != nil {
		panic(err)
	}
	ctrl.SetComposer(compose.Composer(mfiProds))
	if _, err := shipped.Install(ctrl); err != nil {
		panic(err)
	}

	m := dise.NewMachine(shipped.Prog)
	m.SetExpander(ctrl.Engine())
	mfi.Setup(m)
	res := dise.Run(m, dise.DefaultCPUConfig())
	if res.Err != nil {
		panic(res.Err)
	}
	st := ctrl.Engine().Stats
	fmt.Printf("composed run: %d cycles, %d expansions, %d composing RT fills\n",
		res.Cycles, st.Expansions, st.Composed)

	// Every load/store/jump was checked — including those hidden inside
	// dictionary entries. Prove it by planting a wild store in a dictionary
	// entry and watching the composed checks catch it.
	fmt.Println("\nplanting a wild store inside a compressed sequence...")
	evil := dise.MustAssemble("evil", `
.entry main
main:
    li r3, 7
    li r4, 12345      ; segment 0: outside the module's data segment
    res0 3, 4, 0, #0  ; codeword: expands to "stq p1, 0(p2)"
    halt
`)
	dict := []*dise.Replacement{{Name: "st", Insts: []dise.ReplInst{paramStore()}}}

	ctrl2 := dise.NewController(dise.DefaultEngineConfig())
	mfiProds2, err := mfi.Install(ctrl2, mfi.DISE3)
	if err != nil {
		panic(err)
	}
	ctrl2.SetComposer(compose.Composer(mfiProds2))
	if _, err := ctrl2.InstallAware("decomp", dise.Pattern{
		Op: isa.OpRES0, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}, dict); err != nil {
		panic(err)
	}
	m2 := dise.NewMachine(evil)
	m2.SetExpander(ctrl2.Engine())
	mfi.Setup(m2)
	err = m2.Run()
	if errors.Is(err, emu.ErrACFViolation) {
		fmt.Println("caught: the composed check blocked the decompressed wild store")
	} else {
		fmt.Printf("UNEXPECTED: %v\n", err)
	}
}

// paramStore builds the template "stq %p1, 0(%p2)": value register from
// codeword parameter 1, base register from parameter 2.
func paramStore() dise.ReplInst {
	return dise.ReplInst{
		Op: isa.OpSTQ,
		RT: dise.TRegField(core.RegTRS),
		RS: dise.TRegField(core.RegTRT),
		RD: dise.LitField(isa.NoReg),
	}
}
