package main

import (
	"testing"

	"repro/internal/acf/compose"
	"repro/internal/acf/compress"
	"repro/internal/acf/mfi"
	"repro/internal/emu"
	"repro/internal/goldentest"
	"repro/internal/workload"

	dise "repro"
)

// TestGolden pins the composed run: the server's decompression dictionary
// with the client's MFI checks inlined at RT-fill time.
func TestGolden(t *testing.T) {
	prof, _ := workload.ProfileByName("parser")
	prof.TargetDynK = 120
	app := prof.MustGenerate()
	shipped, err := compress.Compress(app, compress.DiseFull())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *emu.Machine {
		ctrl := dise.NewController(dise.DefaultEngineConfig())
		mfiProds, err := mfi.Install(ctrl, mfi.DISE3)
		if err != nil {
			t.Fatal(err)
		}
		ctrl.SetComposer(compose.Composer(mfiProds))
		if _, err := shipped.Install(ctrl); err != nil {
			t.Fatal(err)
		}
		m := dise.NewMachine(shipped.Prog)
		m.SetExpander(ctrl.Engine())
		mfi.Setup(m)
		return m
	}
	goldentest.Check(t, "composition", mk, 30, 150,
		goldentest.Want{Cycles: 140809, Insts: 304383, Mispredicts: 2719, DiseStalls: 3780})
}
