// Observation ACFs (paper §3.1, Figure 5): store-address tracing and branch
// profiling run as transparent productions — the program is unmodified, the
// profile data lives behind dedicated registers, and the two ACFs can be
// merged into a single non-nested composition.
//
//	go run ./examples/profiling
package main

import (
	"fmt"

	"repro/internal/acf/compose"
	"repro/internal/acf/mfi"
	"repro/internal/acf/trace"
	"repro/internal/isa"
	"repro/internal/program"

	dise "repro"
)

const prog = `
.entry main
.data
histogram: .space 128
tracebuf:  .space 4096
.text
main:
    la r1, histogram
    li r2, 16
loop:
    andi r2, 7, r3
    slli r3, 3, r3
    addq r1, r3, r4
    ldq r5, 0(r4)
    addqi r5, 1, r5
    stq r5, 0(r4)
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

func main() {
	p := dise.MustAssemble("prof", prog)

	// ---- store-address tracing.
	ctrl := dise.NewController(dise.DefaultEngineConfig())
	m := dise.NewMachine(p)
	bufAddr := program.DataBase + 128
	if _, err := trace.InstallStoreTracing(ctrl, m, bufAddr); err != nil {
		panic(err)
	}
	m.SetExpander(ctrl.Engine())
	if err := m.Run(); err != nil {
		panic(err)
	}
	addrs := trace.ReadTrace(m, bufAddr)
	fmt.Printf("store-address trace (%d entries):\n", len(addrs))
	for i, a := range addrs {
		if i == 6 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %2d: %#x (histogram slot %d)\n", i, a, (a-program.DataBase)/8)
	}

	// ---- branch profiling.
	ctrl2 := dise.NewController(dise.DefaultEngineConfig())
	if _, err := trace.InstallBranchProfiling(ctrl2); err != nil {
		panic(err)
	}
	m2 := dise.NewMachine(p)
	m2.SetExpander(ctrl2.Engine())
	if err := m2.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("\nconditional branches executed (counted in $dr6): %d\n", trace.BranchCount(m2))

	// ---- non-nested composition (Figure 5, right): trace the application's
	// stores AND fault-isolate them, without fault-isolating the tracing
	// stores themselves.
	sat := dise.ParseProductionsOrDie(trace.StoreAddressProductions)
	mfiP := dise.ParseProductionsOrDie(mfi.Productions(mfi.DISE3))
	merged, err := compose.Merge("sat+mfi", sat[0].Repl, mfiP[0].Repl)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nmerged production (address tracing, then segment check, one trigger):")
	fmt.Print(merged.String())

	ctrl3 := dise.NewController(dise.DefaultEngineConfig())
	if _, err := ctrl3.InstallTransparent("sat+mfi", dise.Pattern{
		Class: isa.ClassStore, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}, merged); err != nil {
		panic(err)
	}
	m3 := dise.NewMachine(p)
	m3.SetExpander(ctrl3.Engine())
	mfi.Setup(m3)
	m3.SetReg(trace.BufPtrReg, bufAddr)
	if err := m3.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("\ncomposed run: %d stores traced, all checked, program output intact\n",
		len(trace.ReadTrace(m3, bufAddr)))
}
