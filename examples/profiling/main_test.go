package main

import (
	"testing"

	"repro/internal/acf/compose"
	"repro/internal/acf/mfi"
	"repro/internal/acf/trace"
	"repro/internal/emu"
	"repro/internal/goldentest"
	"repro/internal/isa"
	"repro/internal/program"

	dise "repro"
)

// TestGolden pins all three observation configurations: store-address
// tracing, branch profiling, and the merged tracing+MFI composition.
func TestGolden(t *testing.T) {
	bufAddr := uint64(program.DataBase + 128)

	mkTrace := func() *emu.Machine {
		p := dise.MustAssemble("prof", prog)
		ctrl := dise.NewController(dise.DefaultEngineConfig())
		m := dise.NewMachine(p)
		if _, err := trace.InstallStoreTracing(ctrl, m, bufAddr); err != nil {
			t.Fatal(err)
		}
		m.SetExpander(ctrl.Engine())
		return m
	}
	goldentest.Check(t, "profiling-stores", mkTrace, 30, 150,
		goldentest.Want{Cycles: 506, Insts: 180, Mispredicts: 14, DiseStalls: 30})

	mkBranch := func() *emu.Machine {
		p := dise.MustAssemble("prof", prog)
		ctrl := dise.NewController(dise.DefaultEngineConfig())
		if _, err := trace.InstallBranchProfiling(ctrl); err != nil {
			t.Fatal(err)
		}
		m := dise.NewMachine(p)
		m.SetExpander(ctrl.Engine())
		return m
	}
	goldentest.Check(t, "profiling-branches", mkBranch, 30, 150,
		goldentest.Want{Cycles: 492, Insts: 148, Mispredicts: 14, DiseStalls: 30})

	mkMerged := func() *emu.Machine {
		p := dise.MustAssemble("prof", prog)
		sat := dise.ParseProductionsOrDie(trace.StoreAddressProductions)
		mfiP := dise.ParseProductionsOrDie(mfi.Productions(mfi.DISE3))
		merged, err := compose.Merge("sat+mfi", sat[0].Repl, mfiP[0].Repl)
		if err != nil {
			t.Fatal(err)
		}
		ctrl := dise.NewController(dise.DefaultEngineConfig())
		if _, err := ctrl.InstallTransparent("sat+mfi", dise.Pattern{
			Class: isa.ClassStore, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}, merged); err != nil {
			t.Fatal(err)
		}
		m := dise.NewMachine(p)
		m.SetExpander(ctrl.Engine())
		mfi.Setup(m)
		m.SetReg(trace.BufPtrReg, bufAddr)
		return m
	}
	goldentest.Check(t, "profiling-merged", mkMerged, 30, 150,
		goldentest.Want{Cycles: 521, Insts: 228, Mispredicts: 14, DiseStalls: 30})
}
