// Dynamic code decompression (paper §3.2): compress an embedded-style
// program with the DISE dictionary compressor, run the compressed image
// with post-fetch expansion, and compare against both the original and the
// dedicated-decompressor baseline.
//
//	go run ./examples/compression
package main

import (
	"fmt"

	"repro/internal/acf/compress"
	"repro/internal/cpu"
	"repro/internal/workload"

	dise "repro"
)

func main() {
	// An embedded processor: 8KB I-cache, 2-wide. gzip's working set is far
	// larger than the cache, so compression pays off at runtime too.
	prof, _ := workload.ProfileByName("gzip")
	prof.TargetDynK = 150
	prog := prof.MustGenerate()

	cfg := cpu.DefaultConfig()
	cfg.Width = 2
	cfg.Mem.IL1.Size = 8 << 10

	base := dise.Run(dise.NewMachine(prog), cfg)
	if base.Err != nil {
		panic(base.Err)
	}
	fmt.Printf("original:  %6d text bytes, %8d cycles, %6d icache misses\n",
		prog.TextBytes(), base.Cycles, base.ICacheMisses)

	// Dedicated decoder-based decompressor (2-byte codewords, literal dict).
	ded, err := compress.Compress(prog, compress.Dedicated())
	if err != nil {
		panic(err)
	}
	m := dise.NewMachine(ded.Prog)
	m.SetExpander(compress.NewDecompressor(ded))
	dres := dise.Run(m, cfg)
	if dres.Err != nil {
		panic(dres.Err)
	}
	fmt.Printf("dedicated: %6d text bytes (ratio %.2f), %8d cycles, %6d icache misses\n",
		ded.Prog.TextBytes(), ded.Stats.Ratio(), dres.Cycles, dres.ICacheMisses)

	// DISE decompression: parameterized dictionary, branches compressed.
	res, err := compress.Compress(prog, compress.DiseFull())
	if err != nil {
		panic(err)
	}
	ctrl := dise.NewController(dise.DefaultEngineConfig())
	if _, err := res.Install(ctrl); err != nil {
		panic(err)
	}
	m = dise.NewMachine(res.Prog)
	m.SetExpander(ctrl.Engine())
	rres := dise.Run(m, cfg)
	if rres.Err != nil {
		panic(rres.Err)
	}
	fmt.Printf("DISE:      %6d text bytes (ratio %.2f), %8d cycles, %6d icache misses\n",
		res.Prog.TextBytes(), res.Stats.Ratio(), rres.Cycles, rres.ICacheMisses)
	fmt.Printf("           dictionary: %d entries, %d bytes of RT state, %d RT misses\n",
		res.Stats.Entries, res.Stats.DictBytes, ctrl.Engine().Stats.RTMisses)

	if base.Output != rres.Output || base.Output != dres.Output {
		panic("compressed runs diverged from the original")
	}
	fmt.Println("\nall three runs produced identical program output")
	fmt.Printf("DISE speedup over uncompressed at 8KB I$: %.2fx\n",
		float64(base.Cycles)/float64(rres.Cycles))
}
