package main

import (
	"testing"

	"repro/internal/acf/compress"
	"repro/internal/emu"
	"repro/internal/goldentest"
	"repro/internal/workload"

	dise "repro"
)

// TestGolden pins the gzip workload the example compresses, in all three
// execution modes: uncompressed, dedicated decompressor, and DISE
// decompression.
func TestGolden(t *testing.T) {
	prof, _ := workload.ProfileByName("gzip")
	prof.TargetDynK = 150
	prog := prof.MustGenerate()

	goldentest.Check(t, "compression-original", func() *emu.Machine {
		return dise.NewMachine(prog)
	}, 30, 150,
		goldentest.Want{Cycles: 179427, Insts: 202902, Mispredicts: 4649, DiseStalls: 0})

	ded, err := compress.Compress(prog, compress.Dedicated())
	if err != nil {
		t.Fatal(err)
	}
	goldentest.Check(t, "compression-dedicated", func() *emu.Machine {
		m := dise.NewMachine(ded.Prog)
		m.SetExpander(compress.NewDecompressor(ded))
		return m
	}, 30, 150,
		goldentest.Want{Cycles: 148748, Insts: 202902, Mispredicts: 4677, DiseStalls: 0})

	res, err := compress.Compress(prog, compress.DiseFull())
	if err != nil {
		t.Fatal(err)
	}
	goldentest.Check(t, "compression-dise", func() *emu.Machine {
		ctrl := dise.NewController(dise.DefaultEngineConfig())
		if _, err := res.Install(ctrl); err != nil {
			t.Fatal(err)
		}
		m := dise.NewMachine(res.Prog)
		m.SetExpander(ctrl.Engine())
		return m
	}, 30, 150,
		goldentest.Want{Cycles: 150521, Insts: 202902, Mispredicts: 4705, DiseStalls: 1920})
}
