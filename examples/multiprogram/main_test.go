package main

import (
	"testing"

	"repro/internal/acf/mfi"
	"repro/internal/emu"
	"repro/internal/goldentest"

	dise "repro"
)

// TestGolden pins the two process programs in their benign configurations:
// the honest worker under the system-wide MFI ACF, and the rogue program
// unprotected (its escape store is silent without MFI — see
// internal/acf/mfi tests). The kernel's time slicing drives machines
// directly and has no cycle model, so the golden runs cover the programs
// and production set rather than the scheduler.
func TestGolden(t *testing.T) {
	mkWorker := func() *emu.Machine {
		p := dise.MustAssemble("honest", worker)
		ctrl := dise.NewController(dise.DefaultEngineConfig())
		if _, err := mfi.Install(ctrl, mfi.DISE3); err != nil {
			t.Fatal(err)
		}
		m := dise.NewMachine(p)
		m.SetExpander(ctrl.Engine())
		mfi.Setup(m)
		return m
	}
	goldentest.Check(t, "multiprogram-worker-mfi", mkWorker, 30, 150,
		goldentest.Want{Cycles: 1248, Insts: 1564, Mispredicts: 14, DiseStalls: 60})

	mkRogue := func() *emu.Machine {
		return dise.NewMachine(dise.MustAssemble("attacker", rogue))
	}
	goldentest.Check(t, "multiprogram-rogue-plain", mkRogue, 30, 150,
		goldentest.Want{Cycles: 392, Insts: 165, Mispredicts: 14, DiseStalls: 0})
}
