// Multiprogramming (paper §2.3): the OS kernel virtualizes DISE. Two
// processes time-share one engine; a system-wide fault-isolation ACF
// (kernel-approved) covers both, while a user-installed store counter is
// confined to its owner — its productions deactivate whenever the owner is
// switched out, and the dedicated registers are saved and restored like
// any other process state.
//
//	go run ./examples/multiprogram
package main

import (
	"errors"
	"fmt"

	"repro/internal/acf/mfi"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/kernel"

	dise "repro"
)

const worker = `
.entry main
.data
buf: .space 1024
.text
main:
    la r1, buf
    li r2, 120
loop:
    stq r2, 0(r1)
    andi r2, 127, r3
    slli r3, 3, r3
    addq r1, r3, r4
    ldq r5, 0(r4)
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

const rogue = `
.entry main
main:
    li r2, 80
loop:
    subqi r2, 1, r2
    bgt r2, loop
    li r1, 1
    li r2, 12345     ; segment 0
    stq r1, 0(r2)    ; escape attempt
    halt
`

func main() {
	k := kernel.New(dise.NewController(dise.DefaultEngineConfig()), kernel.ApproveTransparentOnly)

	// The OS vendor's system utility: fault isolation for everyone.
	if err := k.Install(&kernel.ACF{
		Name:  "mfi",
		Src:   mfi.Productions(mfi.DISE3),
		Setup: mfi.Setup,
	}, kernel.ScopeSystem, 0); err != nil {
		panic(err)
	}

	honest := k.Spawn(dise.MustAssemble("honest", worker))
	attacker := k.Spawn(dise.MustAssemble("attacker", rogue))

	// The honest process privately installs a branch profiler. (A pattern
	// disjoint from MFI's: two transparent ACFs with *overlapping* patterns
	// must be composed — see examples/profiling and internal/acf/compose.)
	if err := k.Install(&kernel.ACF{
		Name: "count",
		Src: `
prod count {
    match class == condbr
    replace {
        lda $dr0, 1($dr0)
        %insn
    }
}`,
	}, kernel.ScopeProcess, honest.PID); err != nil {
		panic(err)
	}

	// Round-robin scheduling, 50 dynamic instructions per slice.
	fmt.Println("scheduling two processes over one DISE engine:")
	var attackerErr error
	for slice := 0; ; slice++ {
		ran := false
		for _, p := range []*kernel.Process{honest, attacker} {
			if p.Machine.Done() {
				continue
			}
			ran = true
			if err := k.Switch(p.PID); err != nil {
				panic(err)
			}
			if _, err := k.RunSlice(50); err != nil && p == attacker {
				attackerErr = err
			}
		}
		if !ran {
			break
		}
	}

	if err := k.Switch(honest.PID); err != nil {
		panic(err)
	}
	fmt.Printf("  honest process: finished, privately counted %d branches in $dr0\n",
		honest.Machine.Reg(isa.RegDR0))
	if errors.Is(attackerErr, emu.ErrACFViolation) {
		fmt.Println("  attacker:       killed by the system-wide fault isolation ACF")
	} else {
		fmt.Printf("  attacker:       UNEXPECTED result %v\n", attackerErr)
	}
	fmt.Printf("  attacker's view of $dr0 at death: %d (the counter was never active for it)\n",
		attacker.Machine.Reg(isa.RegDR0))

	st := k.Controller().Engine().Stats
	fmt.Printf("\nengine totals across both processes: %d fetches, %d expansions\n",
		st.Fetched, st.Expansions)
	_ = core.DefaultEngineConfig
}
