package dise

// Facade-level tests: the public API end to end, plus the paper's headline
// qualitative claims verified as assertions on reduced-scale experiment runs.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func TestQuickstartFlow(t *testing.T) {
	prog, err := Assemble("t", `
.entry main
.data
x: .quad 5
.text
main:
    la r1, x
    ldq r2, 0(r1)
    addq r2, r2, r2
    stq r2, 0(r1)
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(DefaultEngineConfig())
	if _, err := ctrl.InstallFile(`
prod count {
    match class == store
    replace {
        lda $dr0, 1($dr0)
        %insn
    }
}
`, nil); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog)
	m.SetExpander(ctrl.Engine())
	res := Run(m, DefaultCPUConfig())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Insts != res.AppInsts+1 {
		t.Errorf("one replacement instruction expected: %d vs %d", res.Insts, res.AppInsts)
	}
	if got := m.Mem().Read64(m.Reg(1)); got != 10 {
		t.Errorf("x = %d, want 10", got)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	prog := MustAssemble("t", ".entry main\nmain:\n addq r1, r2, r3\n halt\n")
	out := Disassemble(prog)
	if out == "" {
		t.Fatal("empty disassembly")
	}
}

// The reduced-scale option set shared by the claim tests.
func claimOptions() experiments.Options {
	return experiments.Options{Benchmarks: []string{"bzip2", "gzip", "mcf"}, DynScaleK: 60}
}

func colMean(tb *stats.Table, col string) float64 { return tb.Get("gmean", col) }

// Paper §4.1: "DISE memory fault isolation degrades application performance
// less than the corresponding binary rewriting implementations", DISE3
// executes fewer instructions than DISE4, and the free implementations beat
// the realistic ones.
func TestClaimFig6Formulation(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tb := experiments.Fig6Formulation(claimOptions())
	rw, d3, d4 := colMean(tb, "rewrite"), colMean(tb, "DISE3"), colMean(tb, "DISE4")
	stall, pipe := colMean(tb, "stall"), colMean(tb, "+pipe")
	if !(d3 < rw) {
		t.Errorf("DISE3 (%.3f) should beat rewriting (%.3f)", d3, rw)
	}
	if !(d3 < d4) {
		t.Errorf("DISE3 (%.3f) should beat DISE4 (%.3f)", d3, d4)
	}
	if !(d4 <= rw*1.02) {
		t.Errorf("DISE4 (%.3f) should not lose to rewriting (%.3f): identical retired streams, no cache bloat", d4, rw)
	}
	if stall < d3 || pipe < d3 {
		t.Errorf("realistic decoders (stall %.3f, pipe %.3f) cannot beat free DISE3 (%.3f)", stall, pipe, d3)
	}
}

// Paper §4.1: DISE's advantage over rewriting grows as caches shrink and
// machines widen.
func TestClaimFig6Trends(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tb := experiments.Fig6CacheSize(claimOptions())
	gapSmall := colMean(tb, "rw-8K") - colMean(tb, "dise-8K")
	gapPerf := colMean(tb, "rw-perf") - colMean(tb, "dise-perf")
	if !(gapSmall > gapPerf) {
		t.Errorf("DISE advantage at 8K (%.3f) should exceed advantage at perfect I$ (%.3f)", gapSmall, gapPerf)
	}
	tw := experiments.Fig6Width(claimOptions())
	gap2 := colMean(tw, "rw-2w") - colMean(tw, "dise-2w")
	gap8 := colMean(tw, "rw-8w") - colMean(tw, "dise-8w")
	if !(gap8 > gap2*0.8) {
		t.Errorf("DISE advantage should not collapse with width: 2w gap %.3f, 8w gap %.3f", gap2, gap8)
	}
}

// Paper §4.2 Figure 7a: the feature ladder — dedicated beats its own
// stripped variants; parameterization recovers the loss; branch compression
// makes full DISE the best.
func TestClaimFig7Ladder(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	text, _ := experiments.Fig7Compression(claimOptions())
	ded := colMean(text, "dedicated")
	no1 := colMean(text, "-1insn")
	noCW := colMean(text, "-2byteCW")
	de8 := colMean(text, "+8byteDE")
	par := colMean(text, "+3param")
	full := colMean(text, "DISE")
	for _, c := range []struct {
		a, b   float64
		an, bn string
	}{
		{ded, no1, "dedicated", "-1insn"},
		{no1, noCW, "-1insn", "-2byteCW"},
		{noCW, de8, "-2byteCW", "+8byteDE"},
		{par, de8, "+3param", "+8byteDE"},
		{full, par, "DISE", "+3param"},
		{full, ded, "DISE", "dedicated"},
	} {
		if !(c.a < c.b) {
			t.Errorf("%s (%.3f) should compress better than %s (%.3f)", c.an, c.a, c.bn, c.b)
		}
	}
}

// Paper §4.2: decompression recovers small-I-cache losses; 2K RTs are near
// perfect while 512-entry RTs hurt large-production-working-set benchmarks.
func TestClaimFig7Performance(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tb := experiments.Fig7Performance(claimOptions())
	if raw, comp := tb.Get("gzip", "raw-8K"), tb.Get("gzip", "dise-8K"); !(comp < raw) {
		t.Errorf("compression should speed gzip up at 8KB: %.3f vs %.3f", comp, raw)
	}
	rt := experiments.Fig7RTSize(claimOptions())
	if v := colMean(rt, "2K-2way"); v > 1.08 {
		t.Errorf("2K 2-way RT should be near perfect, got %.3f", v)
	}
	if small, big := rt.Get("mcf", "512-dm"), rt.Get("gzip", "512-dm"); !(big > small) {
		t.Errorf("512-entry RT should hurt gzip (%.3f) more than mcf (%.3f)", big, small)
	}
}

// Paper §4.3: the DISE+DISE combination dominates the rewriting-based
// combinations, and composition latency punishes small RTs.
func TestClaimFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	tb := experiments.Fig8Combos(claimOptions())
	dd := colMean(tb, "dise+dise-32K")
	rd := colMean(tb, "rw+ded-32K")
	rD := colMean(tb, "rw+dise-32K")
	if !(dd < rd && dd < rD) {
		t.Errorf("DISE+DISE (%.3f) should beat rw+ded (%.3f) and rw+DISE (%.3f)", dd, rd, rD)
	}
	rt := experiments.Fig8RT(claimOptions())
	if fast, slow := colMean(rt, "512-dm-30"), colMean(rt, "512-dm-150"); !(slow > fast) {
		t.Errorf("composition latency should amplify 512-entry RT cost: %.3f vs %.3f", slow, fast)
	}
	if v := colMean(rt, "2K-2way-150"); v > 1.15 {
		t.Errorf("2K 2-way RT should absorb composition well, got %.3f", v)
	}
}
