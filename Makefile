GO       ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz verify clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run every fuzzer for $(FUZZTIME) each. The fuzzers assert the
# robustness contract: hostile input produces typed errors, never a panic.
fuzz:
	$(GO) test ./internal/isa -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzAssemble$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzParseProductions$$' -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz '^FuzzRun$$' -fuzztime $(FUZZTIME)

verify: build vet race fuzz

clean:
	rm -f disefault
	$(GO) clean ./...
