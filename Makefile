GO            ?= go
FUZZTIME      ?= 10s
BASE          ?= BENCH_PR7.json
OUT           ?= BENCH_PR8.json
CONFORM_CASES ?= 1000
CONFORM_SHARD ?=

.PHONY: all build vet test race race-experiments bench benchcmp check-experiments check-experiments-batch serve-smoke load-smoke batch-smoke store-smoke fleet-smoke check-docs fuzz conform conform-shrink verify clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The parallel experiment scheduler is the concurrency hot spot; run it under
# the race detector on its own so verify catches scheduler races even when
# the full race sweep is skipped.
race-experiments:
	$(GO) test -race ./internal/experiments

# Perf receipts: run every benchmark 3x with allocation stats and emit a
# machine-readable summary (ns/op, B/op, allocs/op per benchmark) for the
# perf trajectory across PRs. Writes to $(OUT) so a rerun never clobbers a
# committed baseline from an earlier PR.
bench:
	$(GO) test -bench=. -benchmem -count=3 -run '^$$' . | $(GO) run ./cmd/benchjson $(OUT)

# Diff the fresh receipt against a committed baseline (override either side
# with BASE=... / OUT=...): per-benchmark ns/op deltas, nonzero exit on any
# >10% regression.
benchcmp:
	$(GO) run ./cmd/benchjson -compare $(BASE) $(OUT)

# Regenerate the experiment tables and fail if they drift from the committed
# experiments_full.txt — the replay fast paths must keep every table
# byte-identical.
check-experiments:
	$(GO) run ./cmd/disebench -q > experiments_full.txt.new
	diff -u experiments_full.txt experiments_full.txt.new
	rm -f experiments_full.txt.new

# The same drift gate with the harness re-pointed at the batch API: every
# wire-expressible cell is served through POST /v1/batches of an in-process
# disesrvd, and the tables must still match the committed file byte for byte
# — the batch path may not change a single cell.
check-experiments-batch:
	$(GO) run ./cmd/disebench -q -batch self > experiments_full.txt.new
	diff -u experiments_full.txt experiments_full.txt.new
	rm -f experiments_full.txt.new

# End-to-end serving smoke: build disesrvd, start it on a random port,
# submit the committed smoke job, and assert the golden numbers, the
# byte-identical cache hit, and a clean SIGTERM drain.
serve-smoke:
	$(GO) run ./cmd/servesmoke

# End-to-end load smoke: a deliberately tiny disesrvd driven through
# overflow → backoff → recovery and a SIGTERM drain mid-load, asserting no
# lost or duplicated jobs and byte-identical cache-class responses, then
# emitting a benchjson-compatible latency/outcome report.
load-smoke:
	$(GO) run ./cmd/loadsmoke

# End-to-end batch smoke: a real disesrvd served a 3-column sweep through
# /v1/batches, each cell asserted byte-identical to its single-job answer,
# the /stats batch ledger reconciled exactly, and a SIGTERM mid-batch
# drained the open stream cleanly.
batch-smoke:
	$(GO) run ./cmd/batchsmoke

# Crash-safety smoke: a real disesrvd with a persistent store is populated,
# kill -9'd mid-capture, and restarted — the scrub must quarantine planted
# corruption, warm hits must be byte-identical to the cold captures, and
# injected ENOSPC/EIO faults must degrade to memory-only serving with the
# recovery probe re-attaching the disk.
store-smoke:
	$(GO) run ./cmd/storesmoke

# Sharded-serving smoke: three real disesrvd nodes SIGHUPed onto a shard
# map, consistent-hash routed load with peer fetch and write-through
# replication, a kill -9 of one node mid-load with rerouting, a warm rejoin
# at a new epoch, and hedged requests — every response byte-identical to the
# single-node goldens and every client/fleet ledger reconciled exactly.
fleet-smoke:
	$(GO) run ./cmd/fleetsmoke

# Differential conformance corpus: the committed corpus/ cases plus
# $(CONFORM_CASES) generated cases (pinned seed), each run four ways —
# interpreted emu, translated emu, live timed run, trace capture+replay —
# with every observable asserted equal, plus the disassembly ground-truth
# audits. CONFORM_SHARD=i/n restricts to one shard for CI fan-out; nightly
# lanes raise CONFORM_CASES.
conform:
	$(GO) run ./cmd/disespec run -corpus corpus -cases $(CONFORM_CASES) $(if $(CONFORM_SHARD),-shard $(CONFORM_SHARD))

# Minimize a failing conformance case into a ready-to-commit repro:
#   make conform-shrink CASE=failing.json
conform-shrink:
	$(GO) run ./cmd/disespec shrink -case $(CASE)

# Docs drift gate: every cmd/* flag documented in README (and vice versa),
# every internal/server route documented in docs/API.md, and every package
# carrying a real package comment.
check-docs:
	$(GO) run ./cmd/checkdocs

# Smoke-run every fuzzer for $(FUZZTIME) each. The fuzzers assert the
# robustness contract: hostile input produces typed errors, never a panic.
fuzz:
	$(GO) test ./internal/isa -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzAssemble$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzParseProductions$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzSubmitRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzStoreEntry$$' -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz '^FuzzRun$$' -fuzztime $(FUZZTIME)
	$(GO) test . -run '^$$' -fuzz '^FuzzTranslated$$' -fuzztime $(FUZZTIME)

verify: build vet race race-experiments serve-smoke load-smoke batch-smoke store-smoke fleet-smoke conform check-docs fuzz

clean:
	rm -f disefault experiments_full.txt.new
	$(GO) clean ./...
