// Package docs holds the prose documentation (API.md, PRODUCTIONS.md) and
// the executable tests that keep it honest: every fenced production
// example is compiled by the real parser, every API example body is
// accepted by a real server, and every wire field documented in API.md is
// cross-checked against the serving types' JSON tags. `make check-docs`
// adds the flag/route drift gate on top (cmd/checkdocs).
package docs
