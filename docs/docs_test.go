package docs

// These tests make the documentation executable: the fenced examples in
// PRODUCTIONS.md must compile with the real production parser, the curl
// bodies in API.md must be accepted by a real server, and every JSON field
// of the serving types must be documented in API.md. A doc edit that
// drifts from the implementation fails `go test ./docs`.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/server"
)

// fencedBlocks returns the contents of every ```lang fenced block in file.
func fencedBlocks(t *testing.T, file, lang string) []string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []string
	var cur []string
	in := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case !in && strings.TrimSpace(line) == "```"+lang:
			in, cur = true, nil
		case in && strings.TrimSpace(line) == "```":
			in = false
			blocks = append(blocks, strings.Join(cur, "\n")+"\n")
		case in:
			cur = append(cur, line)
		}
	}
	if in {
		t.Fatalf("%s: unterminated ```%s block", file, lang)
	}
	return blocks
}

// TestProductionExamplesCompile installs every ```dise block in
// PRODUCTIONS.md on a real controller.
func TestProductionExamplesCompile(t *testing.T) {
	blocks := fencedBlocks(t, "PRODUCTIONS.md", "dise")
	if len(blocks) < 3 {
		t.Fatalf("PRODUCTIONS.md has %d ```dise examples, expected several", len(blocks))
	}
	for i, src := range blocks {
		if _, err := core.NewController(core.DefaultEngineConfig()).InstallFile(src, nil); err != nil {
			t.Errorf("example %d does not compile: %v\n%s", i+1, err, src)
		}
	}
}

// curlCall is one documented curl submission: the endpoint path it targets
// and its single-quoted -d payload.
type curlCall struct {
	path string
	body string
}

// curlCalls extracts the -d payloads from the curl examples together with
// the endpoint each one names, so the replay hits the documented route.
func curlCalls(t *testing.T, file string) []curlCall {
	t.Helper()
	var calls []curlCall
	for _, block := range fencedBlocks(t, file, "bash") {
		if !strings.Contains(block, "-d '") {
			continue
		}
		head, rest, _ := strings.Cut(block, "-d '")
		body, _, ok := strings.Cut(rest, "'")
		if !ok {
			t.Fatalf("%s: unterminated curl body in %q", file, block)
		}
		path := "/v1/jobs"
		if i := strings.Index(head, "/v1/"); i >= 0 {
			path = strings.TrimRight(strings.Fields(head[i:])[0], "'\"")
		}
		calls = append(calls, curlCall{path: path, body: body})
	}
	return calls
}

// TestAPIExamplesAccepted replays every documented curl submission against
// a real in-process server, on the endpoint the example names, and
// requires a 200.
func TestAPIExamplesAccepted(t *testing.T) {
	calls := curlCalls(t, "API.md")
	if len(calls) < 3 {
		t.Fatalf("API.md has %d curl submissions, expected several", len(calls))
	}
	batches := 0
	for _, c := range calls {
		if c.path == "/v1/batches" {
			batches++
		}
	}
	if batches == 0 {
		t.Error("API.md documents no /v1/batches curl example")
	}
	srv, err := server.New(server.Config{
		Log: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Drain() }()
	for i, c := range calls {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("curl example %d (%s): status %d: %s\nbody: %s", i+1, c.path, resp.StatusCode, out, c.body)
		}
	}
}

// TestCorpusDocumentsEveryCaseField walks the JSON tags of the conformance
// case schema (case, expectations, generator knobs) and requires each to
// appear as a `code` literal in CORPUS.md, so a schema field added without
// documentation fails here.
func TestCorpusDocumentsEveryCaseField(t *testing.T) {
	doc, err := os.ReadFile("CORPUS.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []any{conform.Case{}, conform.Expect{}, conform.GenSpec{}} {
		rt := reflect.TypeOf(typ)
		for i := 0; i < rt.NumField(); i++ {
			tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
			if tag == "" || tag == "-" {
				continue
			}
			if !bytes.Contains(doc, []byte("`"+tag+"`")) {
				t.Errorf("CORPUS.md does not document %s.%s (json field `%s`)",
					rt.Name(), rt.Field(i).Name, tag)
			}
		}
	}
}

// TestCorpusExamplesPass parses every ```json block in CORPUS.md as a
// conformance case and runs it through the real four-way harness: the
// documented examples are corpus cases, not illustrations.
func TestCorpusExamplesPass(t *testing.T) {
	blocks := fencedBlocks(t, "CORPUS.md", "json")
	if len(blocks) < 3 {
		t.Fatalf("CORPUS.md has %d ```json example cases, expected several", len(blocks))
	}
	for i, src := range blocks {
		dec := json.NewDecoder(strings.NewReader(src))
		dec.DisallowUnknownFields()
		c := &conform.Case{}
		if err := dec.Decode(c); err != nil {
			t.Errorf("example %d does not parse as a case: %v\n%s", i+1, err, src)
			continue
		}
		if _, err := conform.Run(c); err != nil {
			t.Errorf("example %d (%s) fails the harness: %v", i+1, c.Name, err)
		}
	}
}

// TestAPIDocumentsEveryWireField walks the JSON tags of the serving types
// and requires each to appear as a `code` literal in API.md, so a field
// added to the wire without documentation fails here.
func TestAPIDocumentsEveryWireField(t *testing.T) {
	doc, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []any{
		server.SubmitRequest{}, server.MachineSpec{}, server.EngineSpec{},
		server.SubmitResponse{}, server.ResultPayload{}, server.EnginePayload{},
		server.BatchRequest{}, server.BatchLine{}, server.BatchCell{},
		server.BatchSummary{}, server.StatsPayload{}, server.JobStats{},
		server.BatchStats{}, server.CacheStats{}, server.LatencyStats{},
		server.MembershipPayload{}, server.FleetStats{}, fleet.Node{}, fleet.Map{},
	} {
		rt := reflect.TypeOf(typ)
		for i := 0; i < rt.NumField(); i++ {
			tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
			if tag == "" || tag == "-" {
				continue
			}
			if !bytes.Contains(doc, []byte("`"+tag+"`")) {
				t.Errorf("API.md does not document %s.%s (json field `%s`)",
					rt.Name(), rt.Field(i).Name, tag)
			}
		}
	}
}
