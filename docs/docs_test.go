package docs

// These tests make the documentation executable: the fenced examples in
// PRODUCTIONS.md must compile with the real production parser, the curl
// bodies in API.md must be accepted by a real server, and every JSON field
// of the serving types must be documented in API.md. A doc edit that
// drifts from the implementation fails `go test ./docs`.

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

// fencedBlocks returns the contents of every ```lang fenced block in file.
func fencedBlocks(t *testing.T, file, lang string) []string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []string
	var cur []string
	in := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case !in && strings.TrimSpace(line) == "```"+lang:
			in, cur = true, nil
		case in && strings.TrimSpace(line) == "```":
			in = false
			blocks = append(blocks, strings.Join(cur, "\n")+"\n")
		case in:
			cur = append(cur, line)
		}
	}
	if in {
		t.Fatalf("%s: unterminated ```%s block", file, lang)
	}
	return blocks
}

// TestProductionExamplesCompile installs every ```dise block in
// PRODUCTIONS.md on a real controller.
func TestProductionExamplesCompile(t *testing.T) {
	blocks := fencedBlocks(t, "PRODUCTIONS.md", "dise")
	if len(blocks) < 3 {
		t.Fatalf("PRODUCTIONS.md has %d ```dise examples, expected several", len(blocks))
	}
	for i, src := range blocks {
		if _, err := core.NewController(core.DefaultEngineConfig()).InstallFile(src, nil); err != nil {
			t.Errorf("example %d does not compile: %v\n%s", i+1, err, src)
		}
	}
}

// curlBodies extracts the single-quoted -d payloads from the curl examples.
func curlBodies(t *testing.T, file string) []string {
	t.Helper()
	var bodies []string
	for _, block := range fencedBlocks(t, file, "bash") {
		if !strings.Contains(block, "-d '") {
			continue
		}
		_, rest, _ := strings.Cut(block, "-d '")
		body, _, ok := strings.Cut(rest, "'")
		if !ok {
			t.Fatalf("%s: unterminated curl body in %q", file, block)
		}
		bodies = append(bodies, body)
	}
	return bodies
}

// TestAPIExamplesAccepted replays every documented curl submission against
// a real in-process server and requires a 200.
func TestAPIExamplesAccepted(t *testing.T) {
	bodies := curlBodies(t, "API.md")
	if len(bodies) < 3 {
		t.Fatalf("API.md has %d curl submissions, expected several", len(bodies))
	}
	srv, err := server.New(server.Config{
		Log: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Drain() }()
	for i, body := range bodies {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("curl example %d: status %d: %s\nbody: %s", i+1, resp.StatusCode, out, body)
		}
	}
}

// TestAPIDocumentsEveryWireField walks the JSON tags of the serving types
// and requires each to appear as a `code` literal in API.md, so a field
// added to the wire without documentation fails here.
func TestAPIDocumentsEveryWireField(t *testing.T) {
	doc, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []any{
		server.SubmitRequest{}, server.MachineSpec{}, server.EngineSpec{},
		server.SubmitResponse{}, server.ResultPayload{}, server.EnginePayload{},
		server.StatsPayload{}, server.JobStats{}, server.CacheStats{},
		server.LatencyStats{},
	} {
		rt := reflect.TypeOf(typ)
		for i := 0; i < rt.NumField(); i++ {
			tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
			if tag == "" || tag == "-" {
				continue
			}
			if !bytes.Contains(doc, []byte("`"+tag+"`")) {
				t.Errorf("API.md does not document %s.%s (json field `%s`)",
					rt.Name(), rt.Field(i).Name, tag)
			}
		}
	}
}
