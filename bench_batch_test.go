package dise

// BenchmarkBatchSweep measures the tentpole claim of the batch API: a
// k-configuration timing sweep over one functional-equivalence class served
// as a single POST /v1/batches (one cached stream, one grouped walk stepping
// every configuration) against the same k cells as sequential POST /v1/jobs
// (k full requests, each compiling its job and replaying the stream with its
// own walk). Both run over HTTP against the same server with the class
// stream already resident in the trace cache's memory tier: capture is
// one-time work, identical on both sides (and pinned byte-identical by
// batchsmoke), so the benchmark isolates the repeatable serving cost that a
// sweep actually pays per submission. The workload is the crafty stand-in at
// its natural completion length (~654k records) — the largest instruction
// working set of the suite, where the per-cell cache simulation the batch
// path shares is at its most expensive.

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

const sweepCells = 16

// sweepJobs builds the 16-cell single-class sweep: one benchmark stream,
// sixteen machine configurations (dispatch widths crossed with the DISE
// execution mode).
func sweepJobs() []server.SubmitRequest {
	widths := []int{1, 2, 3, 4, 5, 6, 8, 12, 16, 2, 4, 8, 1, 3, 6, 12}
	jobs := make([]server.SubmitRequest, sweepCells)
	for i := range jobs {
		jobs[i] = server.SubmitRequest{Bench: "crafty", BudgetInsts: 1_000_000}
		jobs[i].Machine.Width = widths[i]
		if i >= 9 {
			jobs[i].Machine.DiseMode = "pipe"
		}
	}
	return jobs
}

// warmTarget builds a server with the sweep's class stream already captured
// into the trace cache, and a client on it.
func warmTarget(b *testing.B) (*client.Client, func()) {
	b.Helper()
	s, err := server.New(server.Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	c := client.New(ts.URL)
	jobs := sweepJobs()
	if _, err := c.Submit(context.Background(), &jobs[0]); err != nil {
		ts.Close()
		s.Drain()
		b.Fatal(err)
	}
	return c, func() { ts.Close(); s.Drain() }
}

func BenchmarkBatchSweep(b *testing.B) {
	ctx := context.Background()
	b.Run("batch16", func(b *testing.B) {
		c, stop := warmTarget(b)
		defer stop()
		jobs := sweepJobs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cells, sum, err := c.BatchCollect(ctx, &server.BatchRequest{Jobs: jobs})
			if err != nil {
				b.Fatal(err)
			}
			if sum.Done != sweepCells {
				b.Fatalf("summary %+v, want %d done cells", sum, sweepCells)
			}
			sink = float64(len(cells))
		}
	})
	b.Run("sequential16", func(b *testing.B) {
		c, stop := warmTarget(b)
		defer stop()
		jobs := sweepJobs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range jobs {
				jr, err := c.Submit(ctx, &jobs[j])
				if err != nil {
					b.Fatal(err)
				}
				sink = float64(len(jr.Result))
			}
		}
	})
	// speedup interleaves one batch submission with one sequential sweep per
	// iteration and reports their wall-clock ratio. Alternating the sides
	// within a single run means clock throttling and tenant noise on the
	// host land on both equally, so the ratio is far more stable than the
	// quotient of the two separately-timed benchmarks above.
	b.Run("speedup", func(b *testing.B) {
		c, stop := warmTarget(b)
		defer stop()
		jobs := sweepJobs()
		var batchNS, seqNS time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			cells, sum, err := c.BatchCollect(ctx, &server.BatchRequest{Jobs: jobs})
			if err != nil {
				b.Fatal(err)
			}
			if sum.Done != sweepCells {
				b.Fatalf("summary %+v, want %d done cells", sum, sweepCells)
			}
			sink = float64(len(cells))
			batchNS += time.Since(t0)
			t0 = time.Now()
			for j := range jobs {
				jr, err := c.Submit(ctx, &jobs[j])
				if err != nil {
					b.Fatal(err)
				}
				sink = float64(len(jr.Result))
			}
			seqNS += time.Since(t0)
		}
		if batchNS > 0 {
			b.ReportMetric(float64(seqNS)/float64(batchNS), "seq/batch")
		}
	})
}
