// fleetsmoke is the sharded-serving campaign behind `make fleet-smoke`. It
// proves the fleet tier's headline promises end to end, against real
// disesrvd processes:
//
//  1. single-node truth — one standalone daemon serves the whole job mix;
//     its response bytes seed the golden ledger that every fleet-served
//     response must match byte for byte;
//  2. bring-up — three daemons start with -node-id/-fleet pointing at a
//     not-yet-written shard map; the harness assembles the map from their
//     addr files and SIGHUPs them into the fleet (verified via
//     /v1/membership epochs);
//  3. peer fetch and replication — a class captured on its owner is
//     write-through replicated to its replica and peer-fetched by the
//     remaining node, all byte-identical;
//  4. steady fleet load — consistent-hash routed jobs and batches, with the
//     client ledger (issued == done + trapped + sum(failed)) reconciling
//     exactly against the per-node /stats counters;
//  5. kill -9 mid-load — one node dies under load; jobs re-route to
//     replicas with zero losses, zero byte differences, and the client's
//     rerouted counter equal to the sum over live nodes;
//  6. rejoin — the killed node restarts on its old store at a new map
//     epoch and serves its classes warm from disk;
//  7. hedged requests — duplicated slow-node requests reconcile exactly:
//     client hedges == fleet-side hedge markers, and server completions ==
//     client wins + drained losers;
//  8. clean shutdown — every node drains on SIGTERM and exits 0.
//
// It exits non-zero with a one-line diagnostic on the first violation. All
// phase deadlines derive from the shared smoke budget (SMOKE_BUDGET).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/fleet"
	"repro/internal/load"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fleetsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("fleet-smoke: ok")
}

// smokeMix is the workload every phase shares: mostly the quickstart job,
// one plain and one production-carrying benchmark, and a 4-cell batch sweep
// so the batch route is exercised through the fleet client too.
func smokeMix() []load.Entry {
	mix, err := load.ParseMix("quickstart:4,gzip:1,mcf+count:1,quickstart@4:1")
	if err != nil {
		panic(err)
	}
	return mix
}

func run() error {
	dir, err := os.MkdirTemp("", "fleetsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctx, cancel := context.WithTimeout(context.Background(), load.SmokeBudget())
	defer cancel()

	gold := load.NewGoldens()

	// Phase 1: single-node truth. The standalone daemon also builds the
	// binary every later daemon reuses.
	d0, err := load.BuildAndStart(dir)
	if err != nil {
		return fmt.Errorf("single-node daemon: %w", err)
	}
	defer d0.Kill()
	bin := filepath.Join(dir, "disesrvd")
	// Count-bound runs (MaxRequests, with Duration only as a generous cap)
	// finish every issued arrival: no deadline cancellations, so ledgers
	// must reconcile without a tolerance.
	for _, classes := range []int{1, 2} {
		rep, err := load.Run(ctx, load.Options{
			Client:      client.New(d0.Base),
			Mix:         smokeMix(),
			Concurrency: 6,
			Duration:    load.Scale(0.2),
			MaxRequests: 150,
			Classes:     classes,
			Golden:      true,
			Goldens:     gold,
			Seed:        int64(classes),
		})
		if err != nil {
			return fmt.Errorf("single-node load (classes=%d): %w", classes, err)
		}
		if !rep.Accounted() || rep.GoldenViolations != 0 {
			return fmt.Errorf("single-node ledger (classes=%d): %s", classes, rep.Summary())
		}
	}
	if err := d0.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := d0.WaitExit(load.Scale(0.1)); err != nil {
		return fmt.Errorf("single node did not drain: %w", err)
	}
	fmt.Printf("fleet-smoke: phase 1 ok (single-node goldens: %d)\n", gold.Len())

	// Phase 2: bring-up. The daemons start before the map exists (serving
	// unsharded), the harness writes the map from their bound addresses,
	// and a SIGHUP swaps every node onto epoch 1.
	mapPath := filepath.Join(dir, "fleet.json")
	ids := []string{"n1", "n2", "n3"}
	daemons := make(map[string]*load.Daemon, len(ids))
	for _, id := range ids {
		d, err := load.StartDaemon(bin, dir,
			"-node-id", id, "-fleet", mapPath,
			"-cache-dir", filepath.Join(dir, "store-"+id))
		if err != nil {
			return fmt.Errorf("starting %s: %w", id, err)
		}
		defer d.Kill()
		if d.NodeID != id {
			return fmt.Errorf("daemon %s wrote addr file for %q", id, d.NodeID)
		}
		daemons[id] = d
	}
	m := &fleet.Map{Epoch: 1, Replication: 2}
	for _, id := range ids {
		m.Nodes = append(m.Nodes, fleet.Node{ID: id, Addr: daemons[id].Addr})
	}
	if err := installMap(ctx, mapPath, m, daemons); err != nil {
		return fmt.Errorf("bring-up: %w", err)
	}
	ring, err := fleet.NewRing(m)
	if err != nil {
		return err
	}
	fmt.Println("fleet-smoke: phase 2 ok (3 nodes on epoch 1)")

	// Phase 3: deterministic peer fetch and replication. A fresh class is
	// captured on its owner; the replica must hold the entry by response
	// time (synchronous write-through), and the remaining node must serve
	// it by fetching from a peer — byte-identically, without capturing.
	req := server.SmokeRequest()
	req.BudgetInsts = 1_000_000
	key, _, err := server.ClassKey(req, server.DefaultBudget)
	if err != nil {
		return err
	}
	route := ring.Route(key, 3)
	owner, replica, third := route[0].ID, route[1].ID, route[2].ID
	preThird, err := nodeStats(daemons[third].Base)
	if err != nil {
		return err
	}
	ownerResp, err := client.New(daemons[owner].Base).Submit(ctx, req)
	if err != nil {
		return fmt.Errorf("owner capture: %w", err)
	}
	if ownerResp.Outcome != "done" || ownerResp.Cached {
		return fmt.Errorf("owner capture: outcome=%q cached=%v", ownerResp.Outcome, ownerResp.Cached)
	}
	replicaStats, err := nodeStats(daemons[replica].Base)
	if err != nil {
		return err
	}
	if replicaStats.Fleet.ReplicatedIn < 1 {
		return fmt.Errorf("replica %s holds no replicated entry after the owner's capture", replica)
	}
	thirdResp, err := client.New(daemons[third].Base).Submit(ctx, req)
	if err != nil {
		return fmt.Errorf("peer-fetch submit: %w", err)
	}
	if thirdResp.Outcome != "done" || !thirdResp.Cached {
		return fmt.Errorf("peer-fetched job: outcome=%q cached=%v", thirdResp.Outcome, thirdResp.Cached)
	}
	if !bytes.Equal(ownerResp.Result, thirdResp.Result) {
		return fmt.Errorf("peer-fetched result differs from the owner's capture")
	}
	postThird, err := nodeStats(daemons[third].Base)
	if err != nil {
		return err
	}
	if hits := postThird.Cache.PeerHits - preThird.Cache.PeerHits; hits != 1 {
		return fmt.Errorf("node %s peer_hits delta = %d, want 1", third, hits)
	}
	fmt.Printf("fleet-smoke: phase 3 ok (owner %s -> replica %s, peer fetch by %s)\n", owner, replica, third)

	// Phase 4: steady fleet load, reconciled exactly. Healthy nodes mean no
	// retries, so the client's done/trapped cells must equal the per-node
	// sums — jobs and batch cells alike.
	fc, err := client.NewFleet(m, client.WithFleetRetryPolicy(client.RetryPolicy{MaxAttempts: 3}))
	if err != nil {
		return err
	}
	base, err := fleetStats(daemons)
	if err != nil {
		return err
	}
	rep, err := load.Run(ctx, load.Options{
		Client:      fc,
		Mix:         smokeMix(),
		Concurrency: 6,
		Duration:    load.Scale(0.25),
		MaxRequests: 400,
		Classes:     2,
		Golden:      true,
		Goldens:     gold,
		Seed:        11,
	})
	if err != nil {
		return fmt.Errorf("steady fleet load: %w", err)
	}
	if !rep.Accounted() || rep.GoldenViolations != 0 || len(rep.Failed) != 0 {
		return fmt.Errorf("steady fleet ledger: %s", rep.Summary())
	}
	after, err := fleetStats(daemons)
	if err != nil {
		return err
	}
	// Jobs.Done/Trapped already include batch cells server-side, so they are
	// directly comparable to the client's per-cell ledger.
	var sumDone, sumTrapped int64
	for id := range daemons {
		sumDone += after[id].Jobs.Done - base[id].Jobs.Done
		sumTrapped += after[id].Jobs.Trapped - base[id].Jobs.Trapped
	}
	if sumDone != rep.Done || sumTrapped != rep.Trapped {
		return fmt.Errorf("steady reconciliation: nodes done %d trapped %d vs client done %d trapped %d",
			sumDone, sumTrapped, rep.Done, rep.Trapped)
	}
	fmt.Printf("fleet-smoke: phase 4 ok (%s; node sums reconcile)\n", rep.Summary())

	// Phase 5: kill -9 the busiest owner mid-load. The victim owns the
	// highest-weight class, so its death forces rerouting; the warm pass
	// above replicated every class, so replicas serve without capturing.
	// Reroute-marked requests can only land on live nodes, so the client's
	// counter must equal the live-node sum exactly.
	quickKey, _, err := server.ClassKey(server.SmokeRequest(), server.DefaultBudget)
	if err != nil {
		return err
	}
	victim := ring.Owner(quickKey).ID
	fc2, err := client.NewFleet(m, client.WithFleetRetryPolicy(client.RetryPolicy{MaxAttempts: 3}))
	if err != nil {
		return err
	}
	base, err = fleetStats(daemons)
	if err != nil {
		return err
	}
	type runResult struct {
		rep *load.Report
		err error
	}
	done := make(chan runResult, 1)
	go func() {
		rep, err := load.Run(ctx, load.Options{
			Client:      fc2,
			Mix:         smokeMix(),
			Concurrency: 6,
			Duration:    load.Scale(0.3),
			MaxRequests: 2000,
			Classes:     1, // warm classes only: no capture can be mid-flight on the victim
			Golden:      true,
			Goldens:     gold,
			Seed:        13,
		})
		done <- runResult{rep, err}
	}()
	// Kill once a few hundred arrivals are in, so the death lands mid-load
	// on every machine speed.
	killDeadline := time.Now().Add(load.Scale(0.25))
	for fc2.FleetStats().Routed < 300 {
		if time.Now().After(killDeadline) {
			return fmt.Errorf("kill-phase load never reached 300 arrivals")
		}
		time.Sleep(10 * time.Millisecond)
	}
	daemons[victim].Kill()
	_ = daemons[victim].WaitExit(load.Scale(0.1))
	kr := <-done
	if kr.err != nil {
		return fmt.Errorf("kill-phase load: %w", kr.err)
	}
	// Run already enforced the accounting identity and byte-identity. A
	// stream the victim's death tore mid-read may land in a transport-class
	// failure bucket; anything else (invalid, rejected) is a routing bug.
	for class := range kr.rep.Failed {
		if class != "transport" && class != "unavailable" && class != "cancelled" {
			return fmt.Errorf("kill-phase ledger has %q failures: %s", class, kr.rep.Summary())
		}
	}
	if kr.rep.Done == 0 {
		return fmt.Errorf("kill-phase ledger: nothing completed: %s", kr.rep.Summary())
	}
	clientReroutes := fc2.FleetStats().Rerouted
	if clientReroutes < 1 {
		return fmt.Errorf("killing %s mid-load caused no reroutes", victim)
	}
	var liveReroutes int64
	for id, d := range daemons {
		if id == victim {
			continue
		}
		st, err := nodeStats(d.Base)
		if err != nil {
			return err
		}
		liveReroutes += st.Fleet.Rerouted - base[id].Fleet.Rerouted
	}
	if liveReroutes != clientReroutes {
		return fmt.Errorf("reroute reconciliation: live nodes saw %d, client sent %d", liveReroutes, clientReroutes)
	}
	fmt.Printf("fleet-smoke: phase 5 ok (%s; killed %s, %d reroutes reconciled)\n",
		kr.rep.Summary(), victim, clientReroutes)

	// Phase 6: rejoin. The victim restarts on its old store directory at a
	// new address; the harness rewrites the map at epoch 2 and SIGHUPs the
	// fleet. The rejoined node must serve its old classes warm from disk.
	d, err := load.StartDaemon(bin, dir,
		"-node-id", victim, "-fleet", mapPath,
		"-cache-dir", filepath.Join(dir, "store-"+victim))
	if err != nil {
		return fmt.Errorf("restarting %s: %w", victim, err)
	}
	defer d.Kill()
	daemons[victim] = d
	m2 := &fleet.Map{Epoch: 2, Replication: 2}
	for _, id := range ids {
		m2.Nodes = append(m2.Nodes, fleet.Node{ID: id, Addr: daemons[id].Addr})
	}
	if err := installMap(ctx, mapPath, m2, daemons); err != nil {
		return fmt.Errorf("rejoin: %w", err)
	}
	ring, err = fleet.NewRing(m2)
	if err != nil {
		return err
	}
	preWarm, err := nodeStats(d.Base)
	if err != nil {
		return err
	}
	warmResp, err := client.New(d.Base).Submit(ctx, server.SmokeRequest())
	if err != nil {
		return fmt.Errorf("warm-rejoin submit: %w", err)
	}
	if warmResp.Outcome != "done" || !warmResp.Cached {
		return fmt.Errorf("rejoined %s served its own class cold: outcome=%q cached=%v", victim, warmResp.Outcome, warmResp.Cached)
	}
	postWarm, err := nodeStats(d.Base)
	if err != nil {
		return err
	}
	if postWarm.Cache.DiskHits-preWarm.Cache.DiskHits != 1 {
		return fmt.Errorf("rejoined %s did not serve from its warm disk store", victim)
	}
	if !gold.Check("quickstart#0", warmResp.Result) {
		return fmt.Errorf("rejoined %s answered different bytes than the single-node golden", victim)
	}
	fc3, err := client.NewFleet(m2, client.WithFleetRetryPolicy(client.RetryPolicy{MaxAttempts: 3}))
	if err != nil {
		return err
	}
	rep, err = load.Run(ctx, load.Options{
		Client:      fc3,
		Mix:         smokeMix(),
		Concurrency: 6,
		Duration:    load.Scale(0.2),
		MaxRequests: 200,
		Classes:     2,
		Golden:      true,
		Goldens:     gold,
		Seed:        17,
	})
	if err != nil {
		return fmt.Errorf("post-rejoin load: %w", err)
	}
	if !rep.Accounted() || rep.GoldenViolations != 0 || len(rep.Failed) != 0 {
		return fmt.Errorf("post-rejoin ledger: %s", rep.Summary())
	}
	fmt.Printf("fleet-smoke: phase 6 ok (%s rejoined warm at epoch 2; %s)\n", victim, rep.Summary())

	// Phase 7: hedged requests, reconciled exactly. Hedge-after-zero fires
	// a duplicate for every submission; losers are drained, not cancelled,
	// so server-side completions equal client wins plus discarded losers.
	fc4, err := client.NewFleet(m2, client.WithHedge(0),
		client.WithFleetRetryPolicy(client.RetryPolicy{MaxAttempts: 3}))
	if err != nil {
		return err
	}
	base, err = fleetStats(daemons)
	if err != nil {
		return err
	}
	const hedgeJobs = 6
	for i := 0; i < hedgeJobs; i++ {
		r, err := fc4.Submit(ctx, server.SmokeRequest())
		if err != nil || r.Outcome != "done" {
			return fmt.Errorf("hedged submit %d: %v", i, err)
		}
	}
	fc4.Wait()
	after, err = fleetStats(daemons)
	if err != nil {
		return err
	}
	var nodeHedged, nodeDone int64
	for id := range daemons {
		nodeHedged += after[id].Fleet.Hedged - base[id].Fleet.Hedged
		nodeDone += after[id].Jobs.Done - base[id].Jobs.Done
	}
	cst := fc4.FleetStats()
	if cst.Hedged < 1 {
		return fmt.Errorf("hedge-after-zero fired no hedges over %d jobs", hedgeJobs)
	}
	if nodeHedged != cst.Hedged {
		return fmt.Errorf("hedge reconciliation: nodes saw %d hedge markers, client fired %d", nodeHedged, cst.Hedged)
	}
	if nodeDone != hedgeJobs+cst.Discarded {
		return fmt.Errorf("hedge accounting: nodes completed %d, client accounts %d wins + %d discarded",
			nodeDone, hedgeJobs, cst.Discarded)
	}
	fmt.Printf("fleet-smoke: phase 7 ok (%d hedges, %d discarded, all reconciled)\n", cst.Hedged, cst.Discarded)

	// Phase 8: clean shutdown of the whole fleet.
	for id, d := range daemons {
		if err := d.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("terminating %s: %w", id, err)
		}
	}
	for id, d := range daemons {
		if err := d.WaitExit(load.Scale(0.1)); err != nil {
			return fmt.Errorf("%s did not drain cleanly: %w", id, err)
		}
	}
	fmt.Println("fleet-smoke: phase 8 ok (clean drain)")
	return nil
}

// installMap writes the shard map, SIGHUPs every daemon, and waits until
// each one serves the map's epoch via /v1/membership.
func installMap(ctx context.Context, path string, m *fleet.Map, daemons map[string]*load.Daemon) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	for id, d := range daemons {
		if err := d.Signal(syscall.SIGHUP); err != nil {
			return fmt.Errorf("SIGHUP %s: %w", id, err)
		}
	}
	deadline := time.Now().Add(load.Scale(0.05))
	for id, d := range daemons {
		c := client.New(d.Base)
		for {
			mp, err := c.Membership(ctx)
			if err == nil && mp.Epoch == m.Epoch {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s never reached epoch %d (last: %v, err %v)", id, m.Epoch, mp, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nil
}

// nodeStats snapshots one daemon's /stats payload.
func nodeStats(base string) (*server.StatsPayload, error) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var sp server.StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
		return nil, err
	}
	return &sp, nil
}

// fleetStats snapshots every daemon's /stats, keyed by node ID.
func fleetStats(daemons map[string]*load.Daemon) (map[string]*server.StatsPayload, error) {
	out := make(map[string]*server.StatsPayload, len(daemons))
	for id, d := range daemons {
		sp, err := nodeStats(d.Base)
		if err != nil {
			return nil, fmt.Errorf("stats from %s: %w", id, err)
		}
		out[id] = sp
	}
	return out, nil
}
