// diseload is the load generator for disesrvd: it drives a running server
// with a weighted mix of simulation jobs through the typed SDK and reports
// outcome counts and latency percentiles.
//
// Closed-loop (default) fixes the number of in-flight requests; open-loop
// (-mode open) fixes the arrival rate (-rps) and sheds arrivals beyond
// -max-outstanding instead of queueing without bound. -classes fans each
// mix entry over N trace-cache classes (1 = all repeats hit the cache);
// -golden asserts every response is byte-identical to the first one seen
// for its (entry, class). -json writes a benchjson-compatible report, so
// two runs diff with `benchjson -compare old.json new.json`.
//
// With -fleet pointing at a shard-map file (the same JSON the daemons
// serve under), jobs route across the fleet by cache-class key instead of
// hitting one address, re-routing to replicas on failures.
//
//	diseload -addr localhost:8080 -mix quickstart:4,gzip:1 -duration 10s
//	diseload -addr localhost:8080 -mode open -rps 200 -classes 8 -json load.json
//	diseload -fleet fleet.json -duration 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/fleet"
	"repro/internal/load"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "disesrvd address (host:port or URL)")
		mode     = flag.String("mode", "closed", "generator shape: closed (fixed concurrency) or open (fixed arrival rate)")
		conc     = flag.Int("c", 8, "closed-loop concurrency (in-flight requests)")
		rps      = flag.Float64("rps", 20, "open-loop target arrival rate, requests/second")
		outst    = flag.Int("max-outstanding", 256, "open-loop cap on in-flight requests; arrivals beyond it are shed")
		duration = flag.Duration("duration", 5*time.Second, "wall-clock run bound")
		maxReq   = flag.Int64("n", 0, "stop after this many issued jobs (0 = duration-bound)")
		mixSpec  = flag.String("mix", "", "job mix as name[@cells][:weight] parts (quickstart, a bench name, or <bench>+count; @cells submits a batch sweep of that width); default quickstart:4,gzip:1,mcf+count:1")
		classes  = flag.Int("classes", 1, "trace-cache classes per mix entry (1 = every repeat hits the cache)")
		golden   = flag.Bool("golden", true, "assert responses are byte-identical per (entry, class)")
		seed     = flag.Int64("seed", 1, "schedule shuffle seed")
		retries  = flag.Int("retries", 5, "SDK retry budget per job (attempts including the first)")
		jsonOut  = flag.String("json", "", "write a benchjson-compatible report here (- for stdout)")
		name     = flag.String("name", "load", "record-name prefix in the JSON report")
		fleetMap = flag.String("fleet", "", "shard-map file; route jobs across the fleet by cache class instead of -addr")
	)
	flag.Parse()

	if err := run(*addr, *fleetMap, *mode, *conc, *rps, *outst, *duration, *maxReq,
		*mixSpec, *classes, *golden, *seed, *retries, *jsonOut, *name); err != nil {
		fmt.Fprintf(os.Stderr, "diseload: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, fleetMap, mode string, conc int, rps float64, outst int, duration time.Duration,
	maxReq int64, mixSpec string, classes int, golden bool, seed int64, retries int,
	jsonOut, name string) error {
	mix := load.DefaultMix()
	if mixSpec != "" {
		var err error
		if mix, err = load.ParseMix(mixSpec); err != nil {
			return err
		}
	}
	var c client.API
	target := addr
	if fleetMap != "" {
		m, err := fleet.LoadMap(fleetMap)
		if err != nil {
			return err
		}
		fc, err := client.NewFleet(m, client.WithFleetRetryPolicy(client.RetryPolicy{MaxAttempts: retries}))
		if err != nil {
			return err
		}
		c = fc
		target = fmt.Sprintf("fleet of %d (epoch %d)", len(m.Nodes), m.Epoch)
	} else {
		sc := client.New(addr, client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: retries}))
		c = sc
		target = sc.Base()
	}

	// ^C stops the run cleanly: in-flight jobs finish, the report still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var names []string
	for _, e := range mix {
		names = append(names, fmt.Sprintf("%s:%d", e.Name, e.Weight))
	}
	fmt.Fprintf(os.Stderr, "diseload: %s loop against %s, mix %s, %d class(es), %v\n",
		mode, target, strings.Join(names, ","), classes, duration)

	rep, err := load.Run(ctx, load.Options{
		Client:         c,
		Mix:            mix,
		Mode:           mode,
		Concurrency:    conc,
		RPS:            rps,
		MaxOutstanding: outst,
		Duration:       duration,
		MaxRequests:    maxReq,
		Classes:        classes,
		Golden:         golden,
		Seed:           seed,
	})
	if rep != nil {
		fmt.Println(rep.Summary())
		if jsonOut != "" {
			data, jerr := load.WriteBenchJSON(rep.BenchJSON(name))
			if jerr != nil {
				return jerr
			}
			if jsonOut == "-" {
				os.Stdout.Write(data)
			} else if werr := os.WriteFile(jsonOut, data, 0o644); werr != nil {
				return werr
			}
		}
	}
	return err
}
