// disespec runs the differential conformance corpus: declarative cases that
// must agree across interpreted emulation, translated emulation, the timed
// pipeline and trace replay, plus the disassembly ground-truth audits.
//
//	disespec run -corpus corpus -cases 1000          committed + generated cases
//	disespec run -cases 4000 -shard 2/8              one CI shard of a large corpus
//	disespec generate -cases 20 -out corpus-new      write generated cases to files
//	disespec shrink -case failing.json -out min.json minimize a failing case
//
// Exit status: 0 when every case passes, 1 on conformance failures, 2 on
// usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/conform"
)

var (
	corpus   = flag.String("corpus", "", "directory of committed case files to run")
	cases    = flag.Int("cases", 0, "number of generated cases to add to the run")
	seed     = flag.Int64("seed", 1, "generator master seed")
	shard    = flag.String("shard", "", "run only shard i/n of the corpus (e.g. 0/4)")
	workers  = flag.Int("workers", runtime.NumCPU(), "parallel harness workers")
	caseFile = flag.String("case", "", "single case file to run or shrink")
	out      = flag.String("out", "", "output path (generate: directory, shrink: file)")
	verbose  = flag.Bool("v", false, "print one line per case")
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	sub := os.Args[1]
	if err := flag.CommandLine.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	var err error
	switch sub {
	case "run":
		err = runCmd()
	case "generate":
		err = generateCmd()
	case "shrink":
		err = shrinkCmd()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "disespec: %v\n", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: disespec <run|generate|shrink> [flags]")
	flag.PrintDefaults()
	os.Exit(2)
}

// gather collects the run set: the committed corpus, the generated corpus,
// or a single case file, then applies the shard filter.
func gather() ([]*conform.Case, error) {
	var all []*conform.Case
	if *caseFile != "" {
		c, err := conform.Load(*caseFile)
		if err != nil {
			return nil, err
		}
		all = append(all, c)
	}
	if *corpus != "" {
		cs, err := conform.LoadDir(*corpus)
		if err != nil {
			return nil, err
		}
		all = append(all, cs...)
	}
	if *cases > 0 {
		g := conform.DefaultGenSpec()
		g.Cases = *cases
		g.Seed = *seed
		all = append(all, g.Generate()...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("nothing to run: give -corpus, -cases or -case")
	}
	idx, n, err := conform.ParseShard(*shard)
	if err != nil {
		return nil, err
	}
	return conform.Shard(all, idx, n), nil
}

func runCmd() error {
	cs, err := gather()
	if err != nil {
		return err
	}
	start := time.Now()
	failed := 0
	var insts int64
	for _, o := range conform.RunAll(cs, *workers) {
		if o.Report != nil {
			insts += o.Report.Insts
		}
		if o.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "FAIL %v\n", o.Err)
			continue
		}
		if *verbose {
			fmt.Printf("ok   %-16s %7d insts %8d cycles  trap=%s\n",
				o.Report.Name, o.Report.Insts, o.Report.Cycles, o.Report.Trap)
		}
	}
	fmt.Printf("conform: %d/%d cases passed, %d functional insts, %s\n",
		len(cs)-failed, len(cs), insts, time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "disespec: shrink a failure with: disespec shrink -case <file>\n")
		os.Exit(1)
	}
	return nil
}

func generateCmd() error {
	if *cases <= 0 {
		return fmt.Errorf("generate: give -cases")
	}
	dir := *out
	if dir == "" {
		return fmt.Errorf("generate: give -out directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g := conform.DefaultGenSpec()
	g.Cases = *cases
	g.Seed = *seed
	for _, c := range g.Generate() {
		if err := c.Save(filepath.Join(dir, c.Name+".json")); err != nil {
			return err
		}
	}
	fmt.Printf("conform: wrote %d cases to %s\n", *cases, dir)
	return nil
}

func shrinkCmd() error {
	if *caseFile == "" {
		return fmt.Errorf("shrink: give -case <file>")
	}
	c, err := conform.Load(*caseFile)
	if err != nil {
		return err
	}
	min, tried := conform.Shrink(c)
	if tried == 0 {
		fmt.Printf("conform: %s passes; nothing to shrink\n", c.Name)
		return nil
	}
	if *out != "" {
		if err := min.Save(*out); err != nil {
			return err
		}
		fmt.Printf("conform: shrunk %s after %d candidate runs -> %s\n", c.Name, tried, *out)
		return nil
	}
	fmt.Printf("conform: shrunk %s after %d candidate runs; repro case:\n", c.Name, tried)
	data, err := json.MarshalIndent(min, "", "  ")
	if err != nil {
		return err
	}
	os.Stdout.Write(append(data, '\n'))
	return nil
}
