// loadsmoke is the end-to-end load test behind `make load-smoke`: it builds
// disesrvd, starts a deliberately tiny instance (one worker, two queue
// slots), and drives it through the SDK-based load harness (internal/load)
// across three phases:
//
//  1. overflow probe — a no-retry burst of slow, cache-distinct jobs wider
//     than worker + queue capacity, asserting the server sheds the excess
//     with 429s instead of queueing without bound;
//  2. recovery — a retrying closed loop over the smoke job, asserting the
//     SDK's backoff absorbs every 429 (zero failed jobs), the client and
//     server ledgers agree exactly (no lost or duplicated jobs), and every
//     response is byte-identical to its cache-class golden;
//  3. drain — SIGTERM mid-load, asserting in-flight jobs finish, late jobs
//     fail loudly (counted, never lost), successful responses still match
//     the goldens recorded before the signal, and the daemon exits 0.
//
// It prints a benchjson-compatible latency/outcome report for the recovery
// phase and exits non-zero with a diagnostic on the first violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/load"
	"repro/internal/server"
)

const spinAsm = ".entry main\nmain:\n    br zero, main\n"

func main() {
	jsonOut := flag.String("json", "", "also write the recovery-phase benchjson report here")
	flag.Parse()
	if err := run(*jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "loadsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("load-smoke: ok")
}

func run(jsonOut string) error {
	dir, err := os.MkdirTemp("", "loadsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Capacity 3: one worker plus two queue slots, so overflow is cheap to hit.
	d, err := load.BuildAndStart(dir, "-workers", "1", "-queue", "2")
	if err != nil {
		return err
	}
	defer d.Kill()
	ctx := context.Background()

	goldens := load.NewGoldens()
	quick := []load.Entry{{Name: "quickstart", Weight: 1, Req: server.SmokeRequest()}}

	// Phase 1: overflow probe. Spinning jobs hold the worker for their full
	// 300ms timeout and distinct budgets defeat cache dedup, so a burst of 8
	// against capacity 3 must shed at least 5 as 429s. No retries: every
	// rejection is a counted client-side failure, not a wait.
	probe := client.New(d.Base, client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1}))
	spin := []load.Entry{{Name: "spin", Weight: 1, Req: &server.SubmitRequest{
		Asm: spinAsm, BudgetInsts: 1 << 40, TimeoutMS: 300,
	}}}
	rep1, err := load.Run(ctx, load.Options{
		Client: probe, Mix: spin, Concurrency: 8, MaxRequests: 8,
		Duration: load.Scale(0.25), Classes: 8,
	})
	if err != nil {
		return fmt.Errorf("overflow probe: %w", err)
	}
	fmt.Println("phase 1 (overflow):", rep1.Summary())
	if rep1.Failed["overloaded"] < 1 {
		return fmt.Errorf("overflow probe: no 429s from a burst of 8 against capacity 3: %+v", rep1)
	}
	overloaded, timedOut := rep1.Failed["overloaded"], rep1.Failed["timeout"]

	// Phase 2: recovery. The same tiny server, a wider closed loop, retries
	// on: every job must land despite residual backpressure.
	retrying := client.New(d.Base, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: 10, BaseBackoff: 20 * time.Millisecond, MaxBackoff: time.Second,
	}))
	rep2, err := load.Run(ctx, load.Options{
		Client: retrying, Mix: quick, Concurrency: 8, MaxRequests: 64,
		Duration: load.Scale(0.5), Classes: 2, Golden: true, Goldens: goldens,
	})
	if err != nil {
		return fmt.Errorf("recovery phase: %w", err)
	}
	fmt.Println("phase 2 (recovery):", rep2.Summary())
	if rep2.Done != 64 || len(rep2.Failed) != 0 {
		return fmt.Errorf("recovery phase: done %d failed %v, want all 64 done", rep2.Done, rep2.Failed)
	}

	// Ledger reconciliation: the server's terminal counters must agree with
	// the client's. A lost job would leave server done short; a duplicated
	// one would push it over.
	sp, err := retrying.Stats(ctx)
	if err != nil {
		return err
	}
	if sp.Jobs.Done != rep2.Done {
		return fmt.Errorf("ledger mismatch: server done %d, client done %d", sp.Jobs.Done, rep2.Done)
	}
	if sp.Jobs.TimedOut != timedOut {
		return fmt.Errorf("ledger mismatch: server timeouts %d, probe timeouts %d", sp.Jobs.TimedOut, timedOut)
	}
	if sp.Jobs.Rejected < overloaded {
		return fmt.Errorf("ledger mismatch: server rejected %d < client-observed 429s %d", sp.Jobs.Rejected, overloaded)
	}

	// Phase 3: SIGTERM mid-load. Late failures are tolerated (and counted);
	// lost jobs, duplicate side effects, or golden divergence are not.
	fast := client.New(d.Base, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		Jitter: func(time.Duration) time.Duration { return 10 * time.Millisecond },
	}))
	var (
		rep3    *load.Report
		loopErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep3, loopErr = load.Run(ctx, load.Options{
			Client: fast, Mix: quick, Concurrency: 4,
			Duration: load.Scale(0.025), Classes: 2, Golden: true, Goldens: goldens,
		})
	}()
	time.Sleep(300 * time.Millisecond)
	if err := d.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := d.WaitExit(load.Scale(0.125)); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	wg.Wait()
	if loopErr != nil {
		return fmt.Errorf("drain phase: %w", loopErr)
	}
	fmt.Println("phase 3 (drain):   ", rep3.Summary())
	if rep3.Done < 1 {
		return fmt.Errorf("drain phase: nothing completed before the signal: %+v", rep3)
	}
	if !rep3.Accounted() {
		return fmt.Errorf("drain phase: accounting hole: %+v", rep3)
	}

	// The recovery-phase latency/outcome report, benchjson-shaped.
	data, err := load.WriteBenchJSON(rep2.BenchJSON("loadsmoke"))
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	if jsonOut != "" {
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
