// benchjson converts `go test -bench` output on stdin into a JSON summary on
// stdout: one record per benchmark with ns/op, B/op and allocs/op averaged
// across -count repetitions. The bench Makefile target uses it to commit
// machine-readable perf receipts (BENCH_PR2.json) alongside the human log.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// record accumulates repetitions of one benchmark.
type record struct {
	runs     int
	nsOp     float64
	bytesOp  float64
	allocsOp float64
}

// Summary is the emitted JSON shape.
type Summary struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
}

func main() {
	recs := map[string]*record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(lineEcho(line)) // pass the log through for the human eye
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		// BenchmarkName-8  N  123 ns/op  456 B/op  7 allocs/op
		name := strings.SplitN(f[0], "-", 2)[0]
		r := recs[name]
		if r == nil {
			r = &record{}
			recs[name] = r
		}
		got := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				r.nsOp += v
				got = true
			case "B/op":
				r.bytesOp += v
			case "allocs/op":
				r.allocsOp += v
			}
		}
		if got {
			r.runs++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(recs))
	for n := range recs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Summary, 0, len(names))
	for _, n := range names {
		r := recs[n]
		if r.runs == 0 {
			continue
		}
		k := float64(r.runs)
		out = append(out, Summary{Name: n, Runs: r.runs,
			NsOp: r.nsOp / k, BytesOp: r.bytesOp / k, AllocsOp: r.allocsOp / k})
	}

	path := "BENCH.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// lineEcho trims trailing space so the echoed log is byte-stable.
func lineEcho(s string) string { return strings.TrimRight(s, " \t") }
