// benchjson converts `go test -bench` output on stdin into a JSON summary on
// stdout: one record per benchmark aggregated across -count repetitions.
// The default aggregation is min-of-N — on a noisy box the minimum is the
// run least disturbed by other tenants, so it tracks the code's real cost
// where the mean tracks the neighbors'; -agg mean restores averaging. The
// bench Makefile target uses this to commit machine-readable perf receipts
// (BENCH_PR7.json) alongside the human log.
//
// With -compare, it instead diffs two previously written receipts:
//
//	benchjson -compare OLD.json NEW.json
//
// printing a per-benchmark delta table with a geomean summary line over the
// shared benchmarks, and exiting nonzero when any benchmark present in both
// files regressed by more than 10% on ns/op. The `make benchcmp BASE=...`
// target wraps this mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// regressLimit is the ns/op growth factor beyond which -compare fails.
const regressLimit = 1.10

// record accumulates repetitions of one benchmark: running sums for -agg
// mean, running minima for the default min-of-N.
type record struct {
	runs     int
	nsOp     float64
	bytesOp  float64
	allocsOp float64

	minNs     float64
	minBytes  float64
	minAllocs float64
}

// Summary is the emitted JSON shape.
type Summary struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two receipts: benchjson -compare OLD.json NEW.json")
	agg := flag.String("agg", "min", "aggregate -count repetitions per benchmark: min or mean")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare OLD.json NEW.json")
			os.Exit(2)
		}
		os.Exit(compareReceipts(flag.Arg(0), flag.Arg(1)))
	}
	if *agg != "min" && *agg != "mean" {
		fmt.Fprintf(os.Stderr, "benchjson: unknown -agg %q (want min or mean)\n", *agg)
		os.Exit(2)
	}
	collect(flag.Args(), *agg)
}

// collect is the original mode: bench log on stdin, receipt to the path in
// args (default BENCH.json), repetitions aggregated per agg.
func collect(args []string, agg string) {
	recs := map[string]*record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(lineEcho(line)) // pass the log through for the human eye
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		// BenchmarkName-8  N  123 ns/op  456 B/op  7 allocs/op
		name := strings.SplitN(f[0], "-", 2)[0]
		r := recs[name]
		if r == nil {
			r = &record{minNs: math.Inf(1), minBytes: math.Inf(1), minAllocs: math.Inf(1)}
			recs[name] = r
		}
		got := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				r.nsOp += v
				r.minNs = math.Min(r.minNs, v)
				got = true
			case "B/op":
				r.bytesOp += v
				r.minBytes = math.Min(r.minBytes, v)
			case "allocs/op":
				r.allocsOp += v
				r.minAllocs = math.Min(r.minAllocs, v)
			}
		}
		if got {
			r.runs++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(recs))
	for n := range recs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Summary, 0, len(names))
	for _, n := range names {
		r := recs[n]
		if r.runs == 0 {
			continue
		}
		s := Summary{Name: n, Runs: r.runs}
		if agg == "min" {
			s.NsOp, s.BytesOp, s.AllocsOp = finite(r.minNs), finite(r.minBytes), finite(r.minAllocs)
		} else {
			k := float64(r.runs)
			s.NsOp, s.BytesOp, s.AllocsOp = r.nsOp/k, r.bytesOp/k, r.allocsOp/k
		}
		out = append(out, s)
	}

	path := "BENCH.json"
	if len(args) > 0 {
		path = args[0]
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// compareReceipts diffs two receipts and returns the process exit code: 0
// when no benchmark shared by both files regressed past regressLimit on
// ns/op, 1 otherwise.
func compareReceipts(oldPath, newPath string) int {
	olds, err := loadReceipt(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	news, err := loadReceipt(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(news))
	for n := range news {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("%-22s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressed, shared := 0, 0
	var logOld, logNew float64
	for _, n := range names {
		nw := news[n]
		old, ok := olds[n]
		if !ok {
			fmt.Printf("%-22s %14s %14.0f %8s\n", n, "-", nw.NsOp, "new")
			continue
		}
		ratio := nw.NsOp / old.NsOp
		if old.NsOp > 0 && nw.NsOp > 0 {
			shared++
			logOld += math.Log(old.NsOp)
			logNew += math.Log(nw.NsOp)
		}
		mark := ""
		if ratio > regressLimit {
			mark = "  REGRESSION"
			regressed++
		}
		fmt.Printf("%-22s %14.0f %14.0f %+7.1f%%%s\n",
			n, old.NsOp, nw.NsOp, 100*(ratio-1), mark)
	}
	for n := range olds {
		if _, ok := news[n]; !ok {
			fmt.Printf("%-22s %14.0f %14s %8s\n", n, olds[n].NsOp, "-", "gone")
		}
	}
	if shared > 0 {
		gOld := math.Exp(logOld / float64(shared))
		gNew := math.Exp(logNew / float64(shared))
		fmt.Printf("%-22s %14.0f %14.0f %+7.1f%%\n",
			"geomean", gOld, gNew, 100*(gNew/gOld-1))
	}
	if regressed > 0 {
		fmt.Printf("\n%d benchmark(s) regressed more than %.0f%% on ns/op\n",
			regressed, 100*(regressLimit-1))
		return 1
	}
	fmt.Println("\nno ns/op regressions beyond the 10% gate")
	return 0
}

func loadReceipt(path string) (map[string]Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []Summary
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	m := make(map[string]Summary, len(list))
	for _, s := range list {
		m[s.Name] = s
	}
	return m, nil
}

// finite maps an untouched +Inf running minimum (metric never reported, e.g.
// no -benchmem) back to 0, matching the mean path's behavior.
func finite(v float64) float64 {
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

// lineEcho trims trailing space so the echoed log is byte-stable.
func lineEcho(s string) string { return strings.TrimRight(s, " \t") }
