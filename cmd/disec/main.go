// disec compresses an EVR program and reports the paper's Figure 7 metrics:
// compressed text size, dictionary size, entry/codeword counts — for any of
// the feature-ladder configurations, or all of them:
//
//	disec -bench gcc                  full DISE compression
//	disec -bench gcc -config dedicated
//	disec -bench gcc -ladder          the whole Figure 7a feature ladder
//	disec -src prog.s -dict           also dump the dictionary
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/acf/compress"
	"repro/internal/asm"
	"repro/internal/program"
	"repro/internal/workload"
)

func main() {
	var (
		src    = flag.String("src", "", "assembly source file")
		bench  = flag.String("bench", "", "synthetic benchmark name")
		config = flag.String("config", "DISE", "configuration: dedicated, -1insn, -2byteCW, +8byteDE, +3param, DISE")
		ladder = flag.Bool("ladder", false, "run the whole Figure 7a feature ladder")
		dict   = flag.Bool("dict", false, "dump the dictionary entries")
		out    = flag.String("o", "", "output prefix: writes <prefix>.evrx (image) and <prefix>.dise (dictionary)")
	)
	flag.Parse()

	p, err := load(*src, *bench)
	if err != nil {
		fail(err)
	}

	if *ladder {
		fmt.Printf("%-12s %8s %8s %8s %8s %8s\n", "config", "text", "dict", "total", "entries", "cwords")
		for _, step := range compress.Ladder() {
			res, err := compress.Compress(p, step.Cfg)
			if err != nil {
				fail(err)
			}
			s := res.Stats
			fmt.Printf("%-12s %8.3f %8.3f %8.3f %8d %8d\n",
				step.Name, s.Ratio(), float64(s.DictBytes)/float64(s.OrigBytes), s.TotalRatio(), s.Entries, s.Codewords)
		}
		return
	}

	var cfg compress.Config
	found := false
	for _, step := range compress.Ladder() {
		if step.Name == *config {
			cfg, found = step.Cfg, true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown -config %q", *config))
	}
	res, err := compress.Compress(p, cfg)
	if err != nil {
		fail(err)
	}
	s := res.Stats
	fmt.Printf("%s: %d -> %d text bytes (ratio %.3f), dictionary %d bytes (%d entries), %d codewords\n",
		p.Name, s.OrigBytes, s.TextBytes, s.Ratio(), s.DictBytes, s.Entries, s.Codewords)
	if *out != "" {
		img, err := os.Create(*out + ".evrx")
		if err != nil {
			fail(err)
		}
		if err := res.Prog.WriteImage(img); err != nil {
			fail(err)
		}
		img.Close()
		if err := os.WriteFile(*out+".dise", []byte(res.ProductionText()), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s.evrx and %s.dise\n", *out, *out)
	}
	if *dict {
		for i, e := range res.Dict {
			fmt.Printf("-- entry %d (%d insts)\n", i, len(e.Insts))
			for d, ri := range e.Insts {
				fmt.Printf("   %d: %s\n", d, ri.String())
			}
		}
	}
}

func load(src, bench string) (*program.Program, error) {
	switch {
	case src != "":
		return asm.LoadFile(src)
	case bench != "":
		p, ok := workload.ProfileByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return p.Generate()
	}
	return nil, fmt.Errorf("give -src <file> or -bench <name>")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "disec: %v\n", err)
	os.Exit(1)
}
