// disesim runs an EVR program — from an assembly file or a named synthetic
// benchmark — on the cycle-level simulator, optionally under DISE ACFs:
//
//	disesim -bench gzip                         plain run
//	disesim -src prog.s -mfi dise3              fault isolation via DISE
//	disesim -bench gcc -mfi rewrite             fault isolation via rewriting
//	disesim -bench gcc -compress -mfi dise3     composed decompression + MFI
//	disesim -bench vpr -icache 8 -width 8       machine configuration
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/acf/compose"
	"repro/internal/acf/compress"
	"repro/internal/acf/mfi"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/profileflags"
	"repro/internal/program"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

// run carries the whole invocation so deferred cleanups (the profiling
// flags' stop functions) execute even on failure paths — fail() returns a
// status instead of calling os.Exit.
func run() int {
	var (
		src      = flag.String("src", "", "assembly source file")
		bench    = flag.String("bench", "", "synthetic benchmark name (e.g. gzip; see -list)")
		list     = flag.Bool("list", false, "list benchmark names and exit")
		mfiMode  = flag.String("mfi", "", "memory fault isolation: dise3, dise4, sandbox, or rewrite")
		comp     = flag.Bool("compress", false, "DISE-compress the program and decompress at fetch")
		icacheKB = flag.Int("icache", 32, "I-cache size in KB (0 = perfect)")
		width    = flag.Int("width", 4, "machine width")
		mode     = flag.String("mode", "free", "DISE decoder integration: free, stall, pipe")
		prods    = flag.String("prods", "", "production file to install (e.g. a disec dictionary)")
		rtSize   = flag.Int("rt", 0, "RT entries (0 = perfect RT)")
		rtAssoc  = flag.Int("rt-assoc", 2, "RT associativity")
		verbose  = flag.Bool("v", false, "print program statistics")
		trans    = flag.String("translate", "", "dynamic translation: auto, off, or always (default: DISE_TRANSLATE or auto)")
		hotThr   = flag.Int("hot-threshold", 0, "block entries before auto translation promotes it (0 = built-in default)")
	)
	flag.Parse()
	defer profileflags.Start()()

	if *trans != "" || *hotThr > 0 {
		tm := emu.DefaultTranslate()
		if *trans != "" {
			var ok bool
			if tm, ok = emu.ParseTranslateMode(*trans); !ok {
				return fail(fmt.Errorf("unknown -translate %q (want auto, off or always)", *trans))
			}
		}
		emu.SetDefaultTranslate(tm, *hotThr)
	}

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return 0
	}
	prog, err := loadProgram(*src, *bench)
	if err != nil {
		return fail(err)
	}

	ecfg := core.DefaultEngineConfig()
	if *rtSize > 0 {
		ecfg.RTEntries = *rtSize
		ecfg.RTAssoc = *rtAssoc
	} else {
		ecfg.RTPerfect = true
	}

	ccfg := cpu.DefaultConfig()
	ccfg.Width = *width
	if *icacheKB == 0 {
		ccfg.Mem.IL1.Perfect = true
	} else {
		ccfg.Mem.IL1.Size = *icacheKB << 10
	}
	switch *mode {
	case "free":
	case "stall":
		ccfg.DiseMode = cpu.DiseStall
	case "pipe":
		ccfg.DiseMode = cpu.DisePipe
	default:
		return fail(fmt.Errorf("unknown -mode %q", *mode))
	}

	ctrl := core.NewController(ecfg)
	needDise := false

	switch *mfiMode {
	case "", "none":
	case "rewrite":
		if prog, err = mfi.Rewrite(prog); err != nil {
			return fail(err)
		}
	case "dise3", "dise4", "sandbox":
		v := map[string]mfi.Variant{"dise3": mfi.DISE3, "dise4": mfi.DISE4, "sandbox": mfi.Sandbox}[*mfiMode]
		prods, err := mfi.Install(ctrl, v)
		if err != nil {
			return fail(err)
		}
		needDise = true
		if *comp {
			ctrl.SetComposer(compose.Composer(prods))
		}
	default:
		return fail(fmt.Errorf("unknown -mfi %q", *mfiMode))
	}

	if *prods != "" {
		text, err := os.ReadFile(*prods)
		if err != nil {
			return fail(err)
		}
		if _, err := ctrl.InstallFile(string(text), nil); err != nil {
			return fail(err)
		}
		needDise = true
	}

	var cres *compress.Result
	if *comp {
		if cres, err = compress.Compress(prog, compress.DiseFull()); err != nil {
			return fail(err)
		}
		if _, err = cres.Install(ctrl); err != nil {
			return fail(err)
		}
		prog = cres.Prog
		needDise = true
	}

	if *verbose {
		fmt.Printf("program: %s, %d units, %d text bytes, %d data bytes\n",
			prog.Name, prog.NumUnits(), prog.TextBytes(), len(prog.Data))
		if cres != nil {
			fmt.Printf("compression: ratio %.3f (+dict %.3f), %d entries, %d codewords\n",
				cres.Stats.Ratio(), cres.Stats.TotalRatio(), cres.Stats.Entries, cres.Stats.Codewords)
		}
	}

	m := emu.New(prog)
	if needDise {
		m.SetExpander(ctrl.Engine())
		mfi.Setup(m)
	}
	res := cpu.Run(m, ccfg)
	status := 0
	if res.Err != nil {
		// An abnormal termination (trap, budget, watchdog) still prints the
		// statistics below, but the invocation reports failure.
		fmt.Fprintf(os.Stderr, "disesim: execution stopped: %v\n", res.Err)
		status = 1
	}
	if res.Output != "" {
		fmt.Printf("output: %s\n", res.Output)
	}
	fmt.Printf("cycles:        %d\n", res.Cycles)
	fmt.Printf("app insts:     %d (IPC %.2f)\n", res.AppInsts, res.IPC())
	fmt.Printf("total insts:   %d (%d inserted by expansion)\n", res.Insts, res.Emu.ReplInsts)
	fmt.Printf("icache misses: %d\n", res.ICacheMisses)
	fmt.Printf("dcache misses: %d\n", res.DCacheMisses)
	fmt.Printf("mispredicts:   %d\n", res.Mispredicts)
	if needDise {
		st := ctrl.Engine().Stats
		fmt.Printf("expansions:    %d (%.1f%% of fetches), RT misses %d, stall cycles %d\n",
			st.Expansions, 100*st.ExpansionRate(), st.RTMisses, res.DiseStalls)
	}
	return status
}

func loadProgram(src, bench string) (*program.Program, error) {
	switch {
	case src != "" && bench != "":
		return nil, fmt.Errorf("give either -src or -bench, not both")
	case src != "":
		return asm.LoadFile(src)
	case bench != "":
		p, ok := workload.ProfileByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (try -list)", bench)
		}
		return p.Generate()
	default:
		return nil, fmt.Errorf("give -src <file> or -bench <name>")
	}
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "disesim: %v\n", err)
	return 1
}
