// Command disefault runs deterministic fault-injection campaigns against the
// DISE machine and reports how each injected fault class terminates — in
// particular, what fraction of out-of-segment accesses the memory
// fault-isolation ACF catches (the paper's robustness claim, measured).
//
// Usage:
//
//	disefault -seed 1 -trials 500                 # default workload, MFI DISE3
//	disefault -mfi dise4 -sites wild-addr,fetch   # pick variant and sites
//	disefault -mfi none -sites wild-addr          # no ACF: silent corruption
//	disefault -timing -sites icache               # cycle-level, I-cache tags
//	disefault -src prog.s                         # your own workload
//
// The same seed always yields the identical report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/acf/mfi"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/program"
)

// defaultWorkload is a store/load loop over a data array: dense in memory
// operations (targets for wild-address injection and MFI expansion) yet
// small enough for 500 trials in seconds.
const defaultWorkload = `
.entry main
.data
arr: .space 4096
.text
main:
    li r2, 60
    la r1, arr
outer:
    bsr ra, body
    subqi r2, 1, r2
    bgt r2, outer
    halt
body:
    li r3, 16
    mov r1, r4
inner:
    ldq r5, 0(r4)
    addqi r5, 1, r5
    stq r5, 0(r4)
    addqi r4, 8, r4
    subqi r3, 1, r3
    bgt r3, inner
    ret
`

func main() {
	var (
		seed     = flag.Int64("seed", 1, "campaign seed (same seed => identical report)")
		trials   = flag.Int("trials", 500, "number of injection trials")
		srcPath  = flag.String("src", "", "assembly file to run (default: built-in store/load loop)")
		variant  = flag.String("mfi", "dise3", "MFI variant: dise3, dise4, sandbox, none")
		sitesCSV = flag.String("sites", "",
			"comma-separated injection sites (default: all; icache needs -timing): fetch,reg,mem,rt,icache,wild-addr")
		timing = flag.Bool("timing", false, "run trials under the cycle-level model (watchdog-capped)")
		factor = flag.Int64("budget-factor", 4, "trial budget = golden instructions x factor")
	)
	flag.Parse()

	src := defaultWorkload
	name := "builtin"
	if *srcPath != "" {
		b, err := os.ReadFile(*srcPath)
		if err != nil {
			fatal(err)
		}
		src, name = string(b), *srcPath
	}
	prog, err := asm.Assemble(name, src)
	if err != nil {
		fatal(err)
	}

	var v mfi.Variant
	useMFI := true
	switch strings.ToLower(*variant) {
	case "dise3":
		v = mfi.DISE3
	case "dise4":
		v = mfi.DISE4
	case "sandbox":
		v = mfi.Sandbox
	case "none", "off", "":
		useMFI = false
	default:
		fatal(fmt.Errorf("unknown -mfi variant %q", *variant))
	}

	var sites []fault.Site
	if *sitesCSV != "" {
		for _, tok := range strings.Split(*sitesCSV, ",") {
			s, ok := fault.SiteByName(strings.TrimSpace(tok))
			if !ok {
				fatal(fmt.Errorf("unknown site %q", tok))
			}
			sites = append(sites, s)
		}
	}

	cfg := fault.Config{
		Seed:         *seed,
		Trials:       *trials,
		Sites:        sites,
		Timing:       *timing,
		CPU:          cpu.DefaultConfig(),
		BudgetFactor: *factor,
		Build: func() (*emu.Machine, *core.Engine) {
			m := emu.New(prog)
			if !useMFI {
				return m, nil
			}
			c := core.NewController(core.DefaultEngineConfig())
			if _, err := mfi.Install(c, v); err != nil {
				fatal(err)
			}
			mfi.Setup(m)
			return m, c.Engine()
		},
	}

	rep, err := fault.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s (%d units, %d data bytes), mfi=%s, timing=%v\n",
		prog.Name, prog.NumUnits(), len(prog.Data), *variant, *timing)
	if prog.Entry < prog.NumUnits() {
		fmt.Printf("segments: text=%d data=%d (shift %d)\n",
			program.SegText, program.SegData, program.SegShift)
	}
	fmt.Print(rep)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "disefault:", err)
	os.Exit(1)
}
