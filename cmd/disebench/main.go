// disebench regenerates the paper's evaluation: every graph of Figures 6, 7
// and 8, printed as one table per graph (rows = benchmarks, columns =
// configurations, values normalized as in the paper).
//
//	disebench                 full run (all 10 benchmarks, default scale)
//	disebench -quick          3 benchmarks at reduced dynamic length
//	disebench -fig 7          only Figure 7
//	disebench -benchmarks gcc,mcf -scale 100
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/profileflags"
	"repro/internal/server"
)

// batchBase resolves the -batch flag: a URL (or host:port) is used as-is;
// "self" spins an in-process disesrvd on a loopback port, so the figure
// harnesses exercise the full HTTP batch path with no external daemon.
func batchBase(spec string) (base string, shutdown func(), err error) {
	if spec != "self" {
		return spec, func() {}, nil
	}
	s, err := server.New(server.Config{
		Log: slog.New(slog.NewTextHandler(io.Discard, nil)),
		// Full-scale figure sweeps run minutes per batch; the per-batch
		// deadline must not clip them.
		DefaultTimeout: 30 * time.Minute,
		MaxTimeout:     30 * time.Minute,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close(); s.Drain() }, nil
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "small benchmark subset at reduced scale")
		fig     = flag.Int("fig", 0, "run only one figure (6, 7 or 8)")
		ablate  = flag.Bool("ablate", false, "run the extension ablations instead of the paper figures")
		benchs  = flag.String("benchmarks", "", "comma-separated benchmark subset")
		scale   = flag.Int("scale", 0, "dynamic-length target in K instructions (0 = profile default)")
		workers = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		quiet   = flag.Bool("q", false, "suppress progress output")
		trans   = flag.String("translate", "", "dynamic translation: auto, off, or always (default: DISE_TRANSLATE or auto)")
		hotThr  = flag.Int("hot-threshold", 0, "block entries before auto translation promotes it (0 = built-in default)")
		batch   = flag.String("batch", "", "serve wire-expressible cells via POST /v1/batches: a disesrvd URL, or 'self' for an in-process server")
	)
	flag.Parse()
	defer profileflags.Start()()

	if *trans != "" || *hotThr > 0 {
		tm := emu.DefaultTranslate()
		if *trans != "" {
			var ok bool
			if tm, ok = emu.ParseTranslateMode(*trans); !ok {
				fmt.Fprintf(os.Stderr, "disebench: unknown -translate %q (want auto, off or always)\n", *trans)
				os.Exit(2)
			}
		}
		emu.SetDefaultTranslate(tm, *hotThr)
	}

	o := experiments.Options{DynScaleK: *scale, Workers: *workers}
	if !*quiet {
		o.Log = os.Stderr
	}
	if *batch != "" {
		base, shutdown, err := batchBase(*batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "disebench: -batch: %v\n", err)
			os.Exit(2)
		}
		defer shutdown()
		o.BatchBase = base
	}
	if *quick {
		o.Benchmarks = []string{"bzip2", "gzip", "mcf"}
		if o.DynScaleK == 0 {
			o.DynScaleK = 80
		}
	}
	if *benchs != "" {
		o.Benchmarks = strings.Split(*benchs, ",")
	}

	w := os.Stdout
	if *ablate {
		fmt.Fprintln(w, experiments.AblationRTPenalty(o))
		fmt.Fprintln(w, experiments.AblationRTBlock(o))
		fmt.Fprintln(w, experiments.AblationEngineMode(o))
		return
	}
	switch *fig {
	case 0:
		experiments.All(o, w)
	case 6:
		fmt.Fprintln(w, experiments.Fig6Formulation(o))
		fmt.Fprintln(w, experiments.Fig6CacheSize(o))
		fmt.Fprintln(w, experiments.Fig6Width(o))
	case 7:
		text, total := experiments.Fig7Compression(o)
		fmt.Fprintln(w, text)
		fmt.Fprintln(w, total)
		fmt.Fprintln(w, experiments.Fig7Performance(o))
		fmt.Fprintln(w, experiments.Fig7RTSize(o))
	case 8:
		fmt.Fprintln(w, experiments.Fig8Combos(o))
		fmt.Fprintln(w, experiments.Fig8RT(o))
	default:
		fmt.Fprintf(os.Stderr, "disebench: unknown -fig %d\n", *fig)
		os.Exit(1)
	}
}
