// disebench regenerates the paper's evaluation: every graph of Figures 6, 7
// and 8, printed as one table per graph (rows = benchmarks, columns =
// configurations, values normalized as in the paper).
//
//	disebench                 full run (all 10 benchmarks, default scale)
//	disebench -quick          3 benchmarks at reduced dynamic length
//	disebench -fig 7          only Figure 7
//	disebench -benchmarks gcc,mcf -scale 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/profileflags"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "small benchmark subset at reduced scale")
		fig     = flag.Int("fig", 0, "run only one figure (6, 7 or 8)")
		ablate  = flag.Bool("ablate", false, "run the extension ablations instead of the paper figures")
		benchs  = flag.String("benchmarks", "", "comma-separated benchmark subset")
		scale   = flag.Int("scale", 0, "dynamic-length target in K instructions (0 = profile default)")
		workers = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		quiet   = flag.Bool("q", false, "suppress progress output")
		trans   = flag.String("translate", "", "dynamic translation: auto, off, or always (default: DISE_TRANSLATE or auto)")
		hotThr  = flag.Int("hot-threshold", 0, "block entries before auto translation promotes it (0 = built-in default)")
	)
	flag.Parse()
	defer profileflags.Start()()

	if *trans != "" || *hotThr > 0 {
		tm := emu.DefaultTranslate()
		if *trans != "" {
			var ok bool
			if tm, ok = emu.ParseTranslateMode(*trans); !ok {
				fmt.Fprintf(os.Stderr, "disebench: unknown -translate %q (want auto, off or always)\n", *trans)
				os.Exit(2)
			}
		}
		emu.SetDefaultTranslate(tm, *hotThr)
	}

	o := experiments.Options{DynScaleK: *scale, Workers: *workers}
	if !*quiet {
		o.Log = os.Stderr
	}
	if *quick {
		o.Benchmarks = []string{"bzip2", "gzip", "mcf"}
		if o.DynScaleK == 0 {
			o.DynScaleK = 80
		}
	}
	if *benchs != "" {
		o.Benchmarks = strings.Split(*benchs, ",")
	}

	w := os.Stdout
	if *ablate {
		fmt.Fprintln(w, experiments.AblationRTPenalty(o))
		fmt.Fprintln(w, experiments.AblationRTBlock(o))
		fmt.Fprintln(w, experiments.AblationEngineMode(o))
		return
	}
	switch *fig {
	case 0:
		experiments.All(o, w)
	case 6:
		fmt.Fprintln(w, experiments.Fig6Formulation(o))
		fmt.Fprintln(w, experiments.Fig6CacheSize(o))
		fmt.Fprintln(w, experiments.Fig6Width(o))
	case 7:
		text, total := experiments.Fig7Compression(o)
		fmt.Fprintln(w, text)
		fmt.Fprintln(w, total)
		fmt.Fprintln(w, experiments.Fig7Performance(o))
		fmt.Fprintln(w, experiments.Fig7RTSize(o))
	case 8:
		fmt.Fprintln(w, experiments.Fig8Combos(o))
		fmt.Fprintln(w, experiments.Fig8RT(o))
	default:
		fmt.Fprintf(os.Stderr, "disebench: unknown -fig %d\n", *fig)
		os.Exit(1)
	}
}
