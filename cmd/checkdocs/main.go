// checkdocs is the documentation drift gate behind `make check-docs`: it
// inventories every cmd/* flag from the source, every internal/server
// route, and every package clause, then fails when README's "Tool flags"
// section, docs/API.md, or a package comment has drifted. It prints one
// line per problem and exits non-zero if any exist.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/docscheck"
)

const modulePath = "repro"

func main() {
	root := flag.String("root", "", "repository root (default: walk up to go.mod)")
	flag.Parse()
	if err := run(*root); err != nil {
		fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
		os.Exit(1)
	}
}

func run(root string) error {
	if root == "" {
		var err error
		if root, err = findRoot(); err != nil {
			return err
		}
	}
	var problems []string

	registered, err := docscheck.CmdFlags(root, modulePath)
	if err != nil {
		return err
	}
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return err
	}
	documented, err := docscheck.ReadmeFlags(string(readme))
	if err != nil {
		return err
	}
	problems = append(problems, docscheck.CompareFlags(registered, documented)...)

	routes, err := docscheck.ServerRoutes(root)
	if err != nil {
		return err
	}
	apiDoc, err := os.ReadFile(filepath.Join(root, "docs", "API.md"))
	if err != nil {
		return err
	}
	problems = append(problems, docscheck.CompareRoutes(routes, string(apiDoc))...)

	missing, err := docscheck.MissingPackageComments(root)
	if err != nil {
		return err
	}
	problems = append(problems, missing...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		return fmt.Errorf("%d documentation drift problem(s)", len(problems))
	}
	fmt.Println("check-docs: ok")
	return nil
}

// findRoot walks up from the working directory to the enclosing go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
