// storesmoke is the crash-safety campaign behind `make store-smoke`. It
// proves the persistent trace store's three headline promises end to end:
//
//  1. crash safety — a real disesrvd with -cache-dir is populated, then
//     kill -9'd mid-capture; the restarted daemon must scrub clean, serve
//     every previously completed class from disk without recapturing, and
//     answer byte-identically to the pre-crash cold responses;
//  2. scrub quarantine — corrupt entries and atomic-write debris planted in
//     the store directory before the restart must be quarantined/removed at
//     startup and served as clean misses, never as data;
//  3. degraded serving — with injected ENOSPC and EIO faults (in-process,
//     via internal/fault), jobs keep completing from memory, /healthz
//     reports the degraded store at 200, and the recovery probe re-attaches
//     the disk once it heals — with the cache counters reconciling exactly:
//     every cacheable job is one of hits, disk_hits, or misses.
//
// It exits non-zero with a one-line diagnostic on the first violation. All
// phase deadlines derive from the shared smoke budget (SMOKE_BUDGET).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/fault"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/store"
)

const spinAsm = ".entry main\nmain:\n    br zero, main\n"

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "storesmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("store-smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "storesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := crashRestartPhase(dir); err != nil {
		return fmt.Errorf("crash/restart: %w", err)
	}
	if err := degradedPhase(); err != nil {
		return fmt.Errorf("degraded serving: %w", err)
	}
	return nil
}

// crashRestartPhase covers promises 1 and 2 against a real daemon.
func crashRestartPhase(dir string) error {
	cacheDir := filepath.Join(dir, "store")
	args := []string{"-workers", "2", "-cache-dir", cacheDir}
	d1, err := load.BuildAndStart(dir, args...)
	if err != nil {
		return err
	}
	defer d1.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), load.Scale(0.75))
	defer cancel()
	c1 := client.New(d1.Base)

	// Two cacheable classes, captured cold and written through. Their
	// response bytes are the truth the restarted daemon must reproduce.
	smoke := server.SmokeRequest()
	variant := server.SmokeRequest()
	variant.BudgetInsts = 100
	cold := map[string][]byte{}
	for name, req := range map[string]*server.SubmitRequest{"smoke": smoke, "variant": variant} {
		r, err := c1.Submit(ctx, req)
		if err != nil {
			return err
		}
		if r.Outcome != "done" || r.Cached {
			return fmt.Errorf("cold %s: outcome=%q cached=%v", name, r.Outcome, r.Cached)
		}
		cold[name] = r.Result
	}

	// kill -9 mid-capture: a spinning job holds a worker in a long capture
	// when the process dies. Nothing of it may survive as a servable entry,
	// and nothing already durable may be lost.
	go func() {
		spin := &server.SubmitRequest{Asm: spinAsm, BudgetInsts: 1 << 40, TimeoutMS: 60_000}
		_, _ = client.New(d1.Base, client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1})).Submit(ctx, spin)
	}()
	time.Sleep(300 * time.Millisecond)
	d1.Kill()
	// SIGKILL exits non-zero by design; only the exit itself matters.
	_ = d1.WaitExit(load.Scale(0.125))

	// Plant damage for the startup scrub: a garbage file under a plausible
	// key name, a bit-flipped copy of a real entry misfiled under another
	// key, and atomic-write debris.
	good, err := filepath.Glob(filepath.Join(cacheDir, "*.dse"))
	if err != nil || len(good) != 2 {
		return fmt.Errorf("expected 2 durable entries before restart, found %d (%v)", len(good), err)
	}
	fakeName := strings.Repeat("ab", 32) + ".dse"
	if err := os.WriteFile(filepath.Join(cacheDir, fakeName), []byte("not an entry"), 0o644); err != nil {
		return err
	}
	data, err := os.ReadFile(good[0])
	if err != nil {
		return err
	}
	flipped := bytes.Clone(data)
	flipped[len(flipped)-1] ^= 0x01
	misfiled := strings.Repeat("cd", 32) + ".dse"
	if err := os.WriteFile(filepath.Join(cacheDir, misfiled), flipped, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(cacheDir, "tmp-0000000000000001"), []byte("debris"), 0o644); err != nil {
		return err
	}

	// Restart the same binary over the same store.
	d2, err := load.StartDaemon(filepath.Join(dir, "disesrvd"), dir, args...)
	if err != nil {
		return err
	}
	defer d2.Kill()
	c2 := client.New(d2.Base)

	// Both pre-crash classes must be warm (no recapture) and byte-identical.
	for name, req := range map[string]*server.SubmitRequest{"smoke": smoke, "variant": variant} {
		r, err := c2.Submit(ctx, req)
		if err != nil {
			return err
		}
		if r.Outcome != "done" || !r.Cached {
			return fmt.Errorf("warm %s: outcome=%q cached=%v, want a disk hit", name, r.Outcome, r.Cached)
		}
		if !bytes.Equal(cold[name], r.Result) {
			return fmt.Errorf("warm %s not byte-identical to its cold capture:\ncold: %s\nwarm: %s", name, cold[name], r.Result)
		}
	}
	// A resubmission now hits the memory tier.
	r, err := c2.Submit(ctx, smoke)
	if err != nil {
		return err
	}
	if !r.Cached || !bytes.Equal(cold["smoke"], r.Result) {
		return fmt.Errorf("memory re-hit: cached=%v identical=%v", r.Cached, bytes.Equal(cold["smoke"], r.Result))
	}

	// Exact reconciliation: 3 cacheable submissions = 1 memory hit +
	// 2 disk hits + 0 captures; both planted corruptions quarantined, the
	// debris removed, both real entries intact.
	sp, err := c2.Stats(ctx)
	if err != nil {
		return err
	}
	cs := sp.Cache
	if cs.Hits != 1 || cs.DiskHits != 2 || cs.Misses != 0 {
		return fmt.Errorf("counters after restart: hits=%d disk_hits=%d misses=%d, want 1/2/0", cs.Hits, cs.DiskHits, cs.Misses)
	}
	if cs.DiskQuarantined != 2 || cs.DiskEntries != 2 || cs.Degraded {
		return fmt.Errorf("store state after scrub: %+v, want 2 quarantined / 2 entries / not degraded", cs)
	}
	q, err := filepath.Glob(filepath.Join(cacheDir, "quarantine", "*"))
	if err != nil || len(q) != 2 {
		return fmt.Errorf("quarantine/ holds %d files, want 2 (%v)", len(q), err)
	}
	if _, err := os.Stat(filepath.Join(cacheDir, "tmp-0000000000000001")); !os.IsNotExist(err) {
		return fmt.Errorf("atomic-write debris survived the scrub (%v)", err)
	}

	if err := d2.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	return d2.WaitExit(load.Scale(0.125))
}

// degradedPhase covers promise 3 in-process, where internal/fault can reach
// the filesystem under the store.
func degradedPhase() error {
	fsys := fault.NewFS(store.OSFS{}, fault.DisarmedPlan())
	dir, err := os.MkdirTemp("", "storesmoke-degraded")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := server.New(server.Config{
		Workers:    2,
		StoreDir:   dir,
		StoreFS:    fsys,
		StoreProbe: 5 * time.Millisecond,
		// A 1-byte memory budget so a later class evicts an earlier one,
		// letting the EIO fault hit a genuine disk read.
		CacheBytes: 1,
	})
	if err != nil {
		return err
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), load.Scale(0.25))
	defer cancel()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	submissions := 0
	submit := func(req *server.SubmitRequest) (*client.JobResponse, error) {
		submissions++
		return c.Submit(ctx, req)
	}

	if st, err := healthStore(ts.URL); err != nil || st != "ok" {
		return fmt.Errorf("healthy store reports %q (%v)", st, err)
	}

	// ENOSPC on the first write-through: the job completes, the tier
	// degrades, /healthz stays 200.
	fsys.FailWrites(fault.ErrInjectedENOSPC)
	if r, err := submit(server.SmokeRequest()); err != nil || r.Outcome != "done" {
		return fmt.Errorf("job under ENOSPC: %v %v", r, err)
	}
	if st, err := healthStore(ts.URL); err != nil || st != "degraded" {
		return fmt.Errorf("store under ENOSPC reports %q (%v)", st, err)
	}

	// Heal; the probe must re-attach without a restart.
	fsys.Heal()
	if err := waitStore(ts.URL, "ok", load.Scale(0.1)); err != nil {
		return fmt.Errorf("re-attach after ENOSPC: %w", err)
	}

	// Park the smoke class on disk only: capturing a second class evicts it
	// from the 1-byte memory tier, recapturing it writes it through, and
	// the third class evicts it again.
	variant := server.SmokeRequest()
	variant.BudgetInsts = 100
	if _, err := submit(variant); err != nil {
		return err
	}
	if _, err := submit(server.SmokeRequest()); err != nil {
		return err
	}
	if _, err := submit(server.SmokeRequest()); err != nil { // memory hit
		return err
	}
	evictor := server.SmokeRequest()
	evictor.BudgetInsts = 200
	if _, err := submit(evictor); err != nil {
		return err
	}

	// EIO on the disk read of the parked class: the job must still answer
	// (recapture), and the tier degrades a second time.
	fsys.FailReads(fault.ErrInjectedEIO)
	if r, err := submit(server.SmokeRequest()); err != nil || r.Outcome != "done" {
		return fmt.Errorf("job under EIO: %v %v", r, err)
	}
	if st, err := healthStore(ts.URL); err != nil || st != "degraded" {
		return fmt.Errorf("store under EIO reports %q (%v)", st, err)
	}
	fsys.Heal()
	if err := waitStore(ts.URL, "ok", load.Scale(0.1)); err != nil {
		return fmt.Errorf("re-attach after EIO: %w", err)
	}

	// The re-attached disk serves again: the variant class was written
	// through before the outages and evicted from memory, so this is a
	// genuine disk hit.
	if r, err := submit(variant); err != nil || !r.Cached {
		return fmt.Errorf("disk hit after recovery: %v %v", r, err)
	}

	// Exact reconciliation: every cacheable submission is exactly one of
	// memory hit, disk hit, or capture; two distinct outages were counted;
	// the injected faults are visible as IO errors.
	sp, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	cs := sp.Cache
	if got := cs.Hits + cs.DiskHits + cs.Misses; got != int64(submissions) {
		return fmt.Errorf("reconciliation: hits %d + disk_hits %d + misses %d = %d, want %d submissions",
			cs.Hits, cs.DiskHits, cs.Misses, got, submissions)
	}
	if cs.DegradedEvents != 2 || cs.Degraded {
		return fmt.Errorf("outage ledger: %+v, want exactly 2 degraded events, currently attached", cs)
	}
	if cs.DiskIOErrors < 2 {
		return fmt.Errorf("io error counter %d, want >= 2 (one per injected fault)", cs.DiskIOErrors)
	}
	return nil
}

// healthStore reads the "store" field of /healthz.
func healthStore(base string) (string, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		Store    string `json:"store"`
		Degraded bool   `json:"degraded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return body.Store, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	if body.Degraded != (body.Store == "degraded") {
		return body.Store, fmt.Errorf("degraded flag %v disagrees with store %q", body.Degraded, body.Store)
	}
	return body.Store, nil
}

// waitStore polls /healthz until the store reports want.
func waitStore(base, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st, err := healthStore(base); err == nil && st == want {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("store did not report %q within %v", want, timeout)
}
