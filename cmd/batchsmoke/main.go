// batchsmoke is the end-to-end batch-serving test behind `make batch-smoke`:
// it builds disesrvd, starts a real instance, and drives POST /v1/batches
// through the SDK across four phases:
//
//  1. sweep — a 3-column timing sweep (default machine, 8-wide, 60-cycle RT
//     miss) as one batch, asserting every cell streams exactly once, the
//     summary ledger reconciles, and the class was captured once;
//  2. identity — each sweep cell re-submitted as a single /v1/jobs request,
//     asserting the batch answer is byte-identical to the single-job answer
//     (the batch path's core contract), served from the shared trace cache;
//  3. ledger — the server's /stats batch counters must agree exactly with
//     what the client issued: batches, cells, done/trapped/aborted buckets,
//     and the mirrored job counters;
//  4. drain — SIGTERM while a slow batch is in flight, asserting the open
//     stream finishes cleanly (every cell lands, the summary arrives), late
//     submissions fail loudly, and the daemon exits 0.
//
// It exits non-zero with a diagnostic on the first violation.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/load"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "batchsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("batch-smoke: ok")
}

// sweep is the 3-column batch: one functional-equivalence class, three
// timing configurations, including a penalty split (cell 2 replays the same
// capture with a different RT miss cost).
func sweep() *server.BatchRequest {
	jobs := []server.SubmitRequest{*server.SmokeRequest(), *server.SmokeRequest(), *server.SmokeRequest()}
	jobs[1].Machine.Width = 8
	jobs[2].Engine.MissPenalty = 60
	return &server.BatchRequest{Jobs: jobs}
}

func run() error {
	dir, err := os.MkdirTemp("", "batchsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	d, err := load.BuildAndStart(dir, "-workers", "2", "-queue", "8")
	if err != nil {
		return err
	}
	defer d.Kill()
	ctx := context.Background()
	c := client.New(d.Base)

	// Phase 1: the sweep, as one batch.
	req := sweep()
	cells, sum, err := c.BatchCollect(ctx, req)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if sum.Cells != 3 || sum.Done != 3 || sum.Trapped != 0 || sum.Aborted != 0 {
		return fmt.Errorf("sweep summary does not reconcile: %+v", sum)
	}
	if sum.Cache != "capture" {
		return fmt.Errorf("sweep on a cold server must capture its class, got cache=%q", sum.Cache)
	}
	fmt.Printf("phase 1 (sweep):    3 cells ok, cache=%s, queue=%dus run=%dus\n", sum.Cache, sum.QueueUS, sum.RunUS)

	// Phase 2: byte-identity against the single-job path. The singles hit
	// the trace cache the batch populated — same class, same stored capture.
	for i := range req.Jobs {
		jr, err := c.Submit(ctx, &req.Jobs[i])
		if err != nil {
			return fmt.Errorf("identity: single job %d: %w", i, err)
		}
		if !bytes.Equal(cells[i].Result, jr.Result) {
			return fmt.Errorf("identity: cell %d differs from its single-job answer:\nbatch:  %s\nsingle: %s",
				i, cells[i].Result, jr.Result)
		}
		if !jr.Cached {
			return fmt.Errorf("identity: single job %d missed the trace cache the batch populated", i)
		}
	}
	// And the reverse order on a fresh class: a batch whose class the single
	// path already captured must serve from memory, still byte-identical.
	warm := sweep()
	for i := range warm.Jobs {
		warm.Jobs[i].BudgetInsts = 9_000_000 // distinct budget = distinct class
	}
	single, err := c.Submit(ctx, &warm.Jobs[0])
	if err != nil {
		return fmt.Errorf("identity: warm single: %w", err)
	}
	wcells, wsum, err := c.BatchCollect(ctx, warm)
	if err != nil {
		return fmt.Errorf("identity: warm batch: %w", err)
	}
	if wsum.Cache != "memory" {
		return fmt.Errorf("identity: warm batch should hit the memory tier, got %q", wsum.Cache)
	}
	if !bytes.Equal(wcells[0].Result, single.Result) {
		return fmt.Errorf("identity: warm cell 0 differs from the single-job answer that captured the class")
	}
	fmt.Println("phase 2 (identity): 3+1 cells byte-identical across batch and single paths")

	// Phase 3: exact ledger reconciliation.
	sp, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	b := sp.Batches
	if b.Batches != 2 || b.Cells != 6 {
		return fmt.Errorf("ledger: server saw %d batches / %d cells, client issued 2 / 6", b.Batches, b.Cells)
	}
	if b.Cells != b.CellsDone+b.CellsTrapped+b.CellsAborted {
		return fmt.Errorf("ledger: cell buckets do not reconcile: %+v", b)
	}
	if b.CellsDone != 6 || b.CellsAborted != 0 {
		return fmt.Errorf("ledger: want 6 done / 0 aborted cells, got %+v", b)
	}
	if sp.Jobs.Done != b.CellsDone+4 { // 6 batch cells + 4 singles, all done
		return fmt.Errorf("ledger: jobs done %d does not mirror %d batch cells + 4 singles", sp.Jobs.Done, b.CellsDone)
	}
	fmt.Printf("phase 3 (ledger):   %d batches / %d cells reconcile exactly\n", b.Batches, b.Cells)

	// Phase 4: SIGTERM with a batch in flight. The slow class (a long spin
	// capture) keeps the batch running while the signal lands; draining must
	// let the open stream finish — every cell lands and the summary arrives —
	// then refuse new work and exit 0.
	slow := &server.BatchRequest{Jobs: make([]server.SubmitRequest, 4)}
	for i := range slow.Jobs {
		slow.Jobs[i] = server.SubmitRequest{
			Asm:         ".entry main\nmain:\n    br zero, main\n",
			BudgetInsts: 40_000_000,
		}
		slow.Jobs[i].Machine.Width = 2 + i
	}
	// The signal goes out from the side while Batch blocks on the first cell
	// (the stream opens when the first result lands), so SIGTERM arrives with
	// the capture genuinely in flight.
	sigErr := make(chan error, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		sigErr <- d.Signal(syscall.SIGTERM)
	}()
	bs, err := c.Batch(ctx, slow)
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	defer bs.Close()
	if err := <-sigErr; err != nil {
		return err
	}
	landed := 0
	for {
		_, err := bs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("drain: stream broke before the summary: %w", err)
		}
		landed++
	}
	dsum, err := bs.Summary()
	if err != nil {
		return fmt.Errorf("drain: stream ended without a summary: %w", err)
	}
	// The spin cells end in a budget trap — still a served result, streamed
	// like any other. Drain must deliver all four, aborting none.
	if landed != 4 || dsum.Trapped != 4 || dsum.Aborted != 0 {
		return fmt.Errorf("drain: in-flight batch must finish under drain: landed %d, summary %+v", landed, dsum)
	}
	// New work must now fail loudly (503 while draining, or a dead socket
	// once the daemon is gone) — never hang, never land.
	late := client.New(d.Base, client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1}))
	if _, err := late.Submit(ctx, server.SmokeRequest()); err == nil {
		return fmt.Errorf("drain: a post-SIGTERM submission succeeded")
	}
	if err := d.WaitExit(load.Scale(0.25)); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("phase 4 (drain):    in-flight batch drained cleanly, daemon exited 0")
	return nil
}
