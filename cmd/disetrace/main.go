// disetrace dumps the PC:DISEPC-tagged dynamic instruction stream of a
// program running under optional ACFs — the view of Figure 1's right-hand
// side ("fetch stream" vs "execution stream"):
//
//	disetrace -src prog.s                      plain stream
//	disetrace -src prog.s -mfi                 with fault isolation expansions
//	disetrace -bench mcf -mfi -n 40 -skip 200  a window of a benchmark
//	disetrace -src prog.s -only-expanded       show replacement sequences only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/acf/mfi"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/program"
	"repro/internal/workload"
)

func main() {
	var (
		src     = flag.String("src", "", "assembly source file")
		bench   = flag.String("bench", "", "synthetic benchmark name")
		useMFI  = flag.Bool("mfi", false, "install DISE3 memory fault isolation")
		n       = flag.Int("n", 60, "dynamic instructions to print")
		skip    = flag.Int("skip", 0, "dynamic instructions to skip first")
		onlyExp = flag.Bool("only-expanded", false, "print only replacement sequences (and their triggers)")
	)
	flag.Parse()

	prog, err := load(*src, *bench)
	if err != nil {
		fail(err)
	}
	m := emu.New(prog)
	if *useMFI {
		cfg := core.DefaultEngineConfig()
		cfg.RTPerfect = true
		c := core.NewController(cfg)
		if _, err := mfi.Install(c, mfi.DISE3); err != nil {
			fail(err)
		}
		m.SetExpander(c.Engine())
		mfi.Setup(m)
	}

	fmt.Println("      PC:DISEPC  src  instruction")
	printed, seen := 0, 0
	for printed < *n {
		d, ok := m.Step()
		if !ok {
			break
		}
		seen++
		if seen <= *skip {
			continue
		}
		if *onlyExp && !d.FromRT && d.DISEPC == 0 && d.SeqLen == 0 {
			continue
		}
		srcTag := "mem"
		if d.FromRT {
			srcTag = " rt" // spliced by DISE: never fetched from memory
		}
		notes := ""
		if d.SeqLen > 0 {
			notes += fmt.Sprintf("  <- expansion of %d", d.SeqLen)
		}
		if d.IsBranch && d.Taken {
			notes += fmt.Sprintf("  taken -> %#x", d.Target)
		}
		if d.DiseBranch {
			notes += "  (DISE branch)"
		}
		if d.IsLoad || d.IsStore {
			notes += fmt.Sprintf("  [%#x]", d.MemAddr)
		}
		fmt.Printf("%10x:%-2d   %s  %-28v%s\n", d.PC, d.DISEPC, srcTag, d.Inst, notes)
		printed++
	}
	if err := m.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "disetrace: machine stopped: %v\n", err)
	}
}

func load(src, bench string) (*program.Program, error) {
	switch {
	case src != "":
		return asm.LoadFile(src)
	case bench != "":
		p, ok := workload.ProfileByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return p.Generate()
	}
	return nil, fmt.Errorf("give -src <file> or -bench <name>")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "disetrace: %v\n", err)
	os.Exit(1)
}
