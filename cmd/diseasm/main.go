// diseasm assembles EVR source and prints the annotated disassembly,
// static statistics, and (optionally) the raw machine words:
//
//	diseasm prog.s
//	diseasm -words prog.s
//	diseasm -bench gzip          disassemble a synthetic benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workload"
)

func main() {
	var (
		words = flag.Bool("words", false, "print encoded machine words")
		bench = flag.String("bench", "", "disassemble a synthetic benchmark instead of a file")
		stats = flag.Bool("stats", false, "print static statistics only")
		out   = flag.String("o", "", "write an EVRX binary image instead of disassembling")
	)
	flag.Parse()

	var p *program.Program
	var err error
	switch {
	case *bench != "":
		prof, ok := workload.ProfileByName(*bench)
		if !ok {
			fail(fmt.Errorf("unknown benchmark %q", *bench))
		}
		p, err = prof.Generate()
	case flag.NArg() == 1:
		p, err = asm.LoadFile(flag.Arg(0))
	default:
		fail(fmt.Errorf("usage: diseasm [-words|-stats|-o out.evrx] <file.s|file.evrx> | -bench <name>"))
	}
	if err != nil {
		fail(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := p.WriteImage(f); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: %d units, %d text bytes\n", *out, p.NumUnits(), p.TextBytes())
		return
	}

	if *stats {
		printStats(p)
		return
	}
	if *words {
		ws, err := p.EncodeText()
		if err != nil {
			fail(err)
		}
		for i, w := range ws {
			fmt.Printf("%6d %08x  %v\n", i, w, p.Text[i])
		}
		return
	}
	fmt.Print(asm.Disassemble(p))
}

func printStats(p *program.Program) {
	fmt.Printf("%s: %d units, %d text bytes, %d data bytes, %d symbols, %d blocks\n",
		p.Name, p.NumUnits(), p.TextBytes(), len(p.Data), len(p.Symbols), len(p.BasicBlocks()))
	mix := p.StaticMix()
	for _, c := range []isa.Class{isa.ClassLoad, isa.ClassStore, isa.ClassCondBr,
		isa.ClassUncondBr, isa.ClassJump, isa.ClassIntOp, isa.ClassSpecial} {
		if mix[c] > 0 {
			fmt.Printf("  %-8s %6d (%.1f%%)\n", c, mix[c], 100*float64(mix[c])/float64(p.NumUnits()))
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "diseasm: %v\n", err)
	os.Exit(1)
}
