// disesrvd serves the simulator over HTTP: POST /v1/jobs accepts an EVR
// program (assembly text, base64 EVRX image, or a built-in benchmark name)
// with an optional DISE production set and machine/engine configuration,
// and answers with the full timing statistics payload. Repeat submissions
// of the same dynamic instruction stream — including ones that change only
// timing knobs — are served from a content-addressed trace cache. GET
// /healthz and GET /stats expose readiness and the serving counters.
//
//	disesrvd -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"bench": "gzip"}'
//
// SIGINT/SIGTERM drain gracefully: in-flight jobs finish, queued and new
// jobs fail fast with 503, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		addrFile = flag.String("addr-file", "", "write the bound address to this file (for :0 listeners)")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "admission queue depth")
		cacheMB  = flag.Int("cache-mb", 256, "memory trace cache budget in MB")
		timeout  = flag.Duration("timeout", 30*time.Second, "default job deadline")
		budget   = flag.Int64("budget", 50_000_000, "default dynamic instruction budget")
		cacheDir = flag.String("cache-dir", "", "persistent trace store directory (empty = memory-only)")
		diskMB   = flag.Int("cache-disk-mb", 1024, "persistent trace store budget in MB")
		nodeID   = flag.String("node-id", "", "this daemon's fleet node id (required with -fleet)")
		fleetMap = flag.String("fleet", "", "shard-map file enabling fleet mode; reloaded on SIGHUP")
	)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *fleetMap != "" && *nodeID == "" {
		fmt.Fprintln(os.Stderr, "disesrvd: -fleet requires -node-id")
		return 1
	}
	// A missing map file at startup is tolerated so a harness can start the
	// daemons first, write the membership file from their bound addresses,
	// and SIGHUP them into the fleet.
	var fm *fleet.Map
	if *fleetMap != "" {
		m, err := fleet.LoadMap(*fleetMap)
		switch {
		case err == nil:
			fm = m
		case os.IsNotExist(err):
			log.Warn("shard map not found; serving unsharded until SIGHUP", "path", *fleetMap)
		default:
			fmt.Fprintf(os.Stderr, "disesrvd: %v\n", err)
			return 1
		}
	}
	s, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     int64(*cacheMB) << 20,
		DefaultTimeout: *timeout,
		DefaultBudget:  *budget,
		Log:            log,
		StoreDir:       *cacheDir,
		StoreBytes:     int64(*diskMB) << 20,
		NodeID:         *nodeID,
		Fleet:          fm,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "disesrvd: %v\n", err)
		return 1
	}

	// Signal handlers are installed before the addr-file announces
	// readiness: a supervisor that reacts to the file by SIGHUPing the
	// daemon must never catch the default (fatal) SIGHUP disposition.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	if *fleetMap != "" {
		signal.Notify(hup, syscall.SIGHUP)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "disesrvd: %v\n", err)
		return 1
	}
	if *addrFile != "" {
		// "node-id addr" inside a fleet, bare "addr" otherwise, so smoke
		// harnesses can assemble a membership file without parsing logs.
		line := ln.Addr().String()
		if *nodeID != "" {
			line = *nodeID + " " + line
		}
		if err := os.WriteFile(*addrFile, []byte(line), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "disesrvd: %v\n", err)
			return 1
		}
	}

	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Info("listening", "addr", ln.Addr().String())
loop:
	for {
		select {
		case err := <-errc:
			fmt.Fprintf(os.Stderr, "disesrvd: %v\n", err)
			return 1
		case <-hup:
			m, err := fleet.LoadMap(*fleetMap)
			if err != nil {
				log.Error("shard map reload failed; keeping current map", "path", *fleetMap, "err", err)
				continue
			}
			if err := s.SetFleet(m); err != nil {
				log.Error("shard map rejected; keeping current map", "err", err)
				continue
			}
			log.Info("shard map reloaded", "epoch", m.Epoch, "nodes", len(m.Nodes))
		case got := <-sig:
			log.Info("draining", "signal", got.String())
			break loop
		}
	}

	// Drain first so queued jobs receive their 503s over the still-open
	// listener, then shut the listener down.
	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "disesrvd: shutdown: %v\n", err)
		return 1
	}
	log.Info("drained")
	return 0
}
