// servesmoke is the end-to-end smoke test behind `make serve-smoke`: it
// builds disesrvd, starts it on a random port, submits the committed smoke
// job (the quickstart program + store-counting productions), and asserts
//
//   - the response matches the committed golden numbers (server.SmokeWant,
//     the same truth examples/quickstart pins via internal/goldentest);
//   - an identical resubmission is served from the trace cache with a
//     byte-identical result and a visible /stats hit counter;
//   - a timing-only knob change (machine width) still hits the cache;
//   - SIGTERM drains the daemon to a clean exit.
//
// It exits non-zero with a one-line diagnostic on the first violation.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: ok")
}

type rawResponse struct {
	ID      string          `json:"id"`
	Outcome string          `json:"outcome"`
	Cached  bool            `json:"cached"`
	Result  json.RawMessage `json:"result"`
	Error   string          `json:"error"`
}

func run() error {
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "disesrvd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/disesrvd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building disesrvd: %w", err)
	}

	addrFile := filepath.Join(dir, "addr")
	srv := exec.Command(bin, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-workers", "2")
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		return fmt.Errorf("starting disesrvd: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- srv.Wait() }()
	defer srv.Process.Kill()

	base, err := waitReady(addrFile, exited)
	if err != nil {
		return err
	}

	req, err := json.Marshal(server.SmokeRequest())
	if err != nil {
		return err
	}
	first, err := submit(base, req)
	if err != nil {
		return err
	}
	if first.Outcome != "done" || first.Cached {
		return fmt.Errorf("first submission: outcome=%q cached=%v (err %q), want live done", first.Outcome, first.Cached, first.Error)
	}
	var p server.ResultPayload
	if err := json.Unmarshal(first.Result, &p); err != nil {
		return err
	}
	got := struct{ Cycles, Insts, Mispredicts, DiseStalls int64 }{p.Cycles, p.Insts, p.Mispredicts, p.DiseStalls}
	if got != server.SmokeWant {
		return fmt.Errorf("golden drift: got %+v, want %+v", got, server.SmokeWant)
	}

	second, err := submit(base, req)
	if err != nil {
		return err
	}
	if !second.Cached {
		return fmt.Errorf("second submission was not served from the cache")
	}
	if !bytes.Equal(first.Result, second.Result) {
		return fmt.Errorf("cache hit not byte-identical:\nlive:   %s\ncached: %s", first.Result, second.Result)
	}

	wide := server.SmokeRequest()
	wide.Machine.Width = 8
	wreq, err := json.Marshal(wide)
	if err != nil {
		return err
	}
	third, err := submit(base, wreq)
	if err != nil {
		return err
	}
	if !third.Cached {
		return fmt.Errorf("timing-only variant missed the cache")
	}
	var sp server.StatsPayload
	if err := getJSON(base+"/stats", &sp); err != nil {
		return err
	}
	if sp.Cache.Misses != 1 || sp.Cache.Hits != 2 {
		return fmt.Errorf("cache counters %+v, want 1 miss / 2 hits", sp.Cache)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("disesrvd exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("disesrvd did not exit within 15s of SIGTERM")
	}
	return nil
}

// waitReady polls for the daemon's bound address and a passing health check.
func waitReady(addrFile string, exited <-chan error) (string, error) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return "", fmt.Errorf("disesrvd exited during startup: %v", err)
		default:
		}
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			base := "http://" + string(addr)
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return base, nil
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("disesrvd not ready within 15s")
}

func submit(base string, body []byte) (*rawResponse, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out rawResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("submit: status %d: %s", resp.StatusCode, out.Error)
	}
	return &out, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
