// servesmoke is the end-to-end smoke test behind `make serve-smoke`: it
// builds disesrvd, starts it on a random port, and drives it through the
// typed SDK (internal/client), asserting
//
//   - the committed smoke job's response matches the golden numbers
//     (server.SmokeWant, the same truth examples/quickstart pins via
//     internal/goldentest);
//   - an identical resubmission is served from the trace cache with a
//     byte-identical result and a visible /stats hit counter;
//   - a timing-only knob change (machine width) still hits the cache;
//   - SIGTERM drains the daemon to a clean exit.
//
// It exits non-zero with a one-line diagnostic on the first violation.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"syscall"

	"repro/internal/client"
	"repro/internal/load"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	d, err := load.BuildAndStart(dir, "-workers", "2")
	if err != nil {
		return err
	}
	defer d.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), load.Scale(0.5))
	defer cancel()
	c := client.New(d.Base)

	first, err := c.Submit(ctx, server.SmokeRequest())
	if err != nil {
		return err
	}
	if first.Outcome != "done" || first.Cached {
		return fmt.Errorf("first submission: outcome=%q cached=%v (err %q), want live done",
			first.Outcome, first.Cached, first.Error)
	}
	p, err := first.Payload()
	if err != nil {
		return err
	}
	got := struct{ Cycles, Insts, Mispredicts, DiseStalls int64 }{p.Cycles, p.Insts, p.Mispredicts, p.DiseStalls}
	if got != server.SmokeWant {
		return fmt.Errorf("golden drift: got %+v, want %+v", got, server.SmokeWant)
	}

	second, err := c.Submit(ctx, server.SmokeRequest())
	if err != nil {
		return err
	}
	if !second.Cached {
		return fmt.Errorf("second submission was not served from the cache")
	}
	if !bytes.Equal(first.Result, second.Result) {
		return fmt.Errorf("cache hit not byte-identical:\nlive:   %s\ncached: %s", first.Result, second.Result)
	}

	wide := server.SmokeRequest()
	wide.Machine.Width = 8
	third, err := c.Submit(ctx, wide)
	if err != nil {
		return err
	}
	if !third.Cached {
		return fmt.Errorf("timing-only variant missed the cache")
	}
	sp, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	if sp.Cache.Misses != 1 || sp.Cache.Hits != 2 {
		return fmt.Errorf("cache counters %+v, want 1 miss / 2 hits", sp.Cache)
	}

	if err := d.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := d.WaitExit(load.Scale(0.125)); err != nil {
		return fmt.Errorf("after SIGTERM: %w", err)
	}
	return nil
}
