// disedbg is an interactive machine-level debugger whose watchpoints are
// DISE productions (paper §3.1, "code assertions"): the check is inlined
// into the instruction stream, the program runs at full speed between hits,
// and a hit stops the machine *before* the offending store executes.
//
//	disedbg prog.s
//	disedbg -bench mcf
//
// Commands: s [n], c, r, m <addr> [n], w <addr>|-, t, d, restart, q.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/debug"
	"repro/internal/program"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "debug a synthetic benchmark instead of a file")
	flag.Parse()

	var p *program.Program
	var err error
	switch {
	case *bench != "":
		prof, ok := workload.ProfileByName(*bench)
		if !ok {
			fail(fmt.Errorf("unknown benchmark %q", *bench))
		}
		p, err = prof.Generate()
	case flag.NArg() == 1:
		p, err = asm.LoadFile(flag.Arg(0))
	default:
		fail(fmt.Errorf("usage: disedbg <file.s|file.evrx> | -bench <name>"))
	}
	if err != nil {
		fail(err)
	}
	if err := debug.New(p).Run(os.Stdin, os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "disedbg: %v\n", err)
	os.Exit(1)
}
