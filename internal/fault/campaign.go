package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// Config parameterizes a campaign.
type Config struct {
	Seed   int64
	Trials int
	// Sites are cycled round-robin across trials; nil means every site
	// (SiteICache included only when Timing is set).
	Sites []Site

	// Build constructs a fresh machine for one trial: program loaded,
	// productions installed, dedicated registers initialized — everything
	// except SetExpander, which the campaign wires itself (interposing the
	// fetch faulter). The returned engine may be nil for a DISE-less
	// machine. RT corruption needs a non-perfect RT to have anything to hit.
	Build func() (*emu.Machine, *core.Engine)

	// Timing runs every trial under the cycle-level model (with the
	// MaxCycles watchdog). SiteICache trials use it regardless.
	Timing bool
	CPU    cpu.Config

	// BudgetFactor bounds each trial at golden-instructions × factor
	// (plus slack), guaranteeing termination; 0 means 4.
	BudgetFactor int64
}

// Report is the outcome matrix of a campaign. All state is fixed-size
// arrays, so its String rendering is deterministic.
type Report struct {
	Seed   int64
	Trials int

	// Matrix counts trials by (site, outcome).
	Matrix [NumSites][NumOutcomes]int
	// Kinds counts the trap kinds of terminated trials.
	Kinds [emu.NumTrapKinds]int

	// WildInjected/WildCaught track SiteWildAddr trials: injected
	// out-of-segment accesses, and how many an ACF caught.
	WildInjected int
	WildCaught   int
}

// MFIWildCatchRate returns the fraction of injected out-of-segment accesses
// caught by an ACF (0 when none were injected).
func (r *Report) MFIWildCatchRate() float64 {
	if r.WildInjected == 0 {
		return 0
	}
	return float64(r.WildCaught) / float64(r.WildInjected)
}

// String renders the coverage matrix.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault campaign: %d trials, seed %d\n", r.Trials, r.Seed)
	fmt.Fprintf(&b, "%-10s", "site")
	for o := Outcome(0); o < NumOutcomes; o++ {
		fmt.Fprintf(&b, " %10s", o)
	}
	b.WriteByte('\n')
	for s := Site(0); s < NumSites; s++ {
		total := 0
		for _, n := range r.Matrix[s] {
			total += n
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s", s)
		for o := Outcome(0); o < NumOutcomes; o++ {
			fmt.Fprintf(&b, " %10d", r.Matrix[s][o])
		}
		b.WriteByte('\n')
	}
	first := true
	for k := emu.TrapKind(0); k < emu.NumTrapKinds; k++ {
		if r.Kinds[k] == 0 {
			continue
		}
		if first {
			b.WriteString("traps:")
			first = false
		}
		fmt.Fprintf(&b, " %s=%d", k, r.Kinds[k])
	}
	if !first {
		b.WriteByte('\n')
	}
	if r.WildInjected > 0 {
		fmt.Fprintf(&b, "wild-addr: injected=%d caught=%d (catch rate %.1f%%)\n",
			r.WildInjected, r.WildCaught, 100*r.MFIWildCatchRate())
	}
	return b.String()
}

// golden is the fault-free reference a trial is compared against.
type golden struct {
	output   string
	checksum uint64
	total    int64 // dynamic instructions
	app      int64 // application instructions (= fetches)
	cycles   int64 // timing-model cycles, when a timing golden ran
}

// Run executes a campaign and returns its report. Every trial terminates
// (budget and cycle watchdogs are derived from the golden run) and is
// classified into exactly one outcome.
func Run(cfg Config) (*Report, error) {
	if cfg.Build == nil {
		return nil, errors.New("fault: Config.Build is required")
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("fault: bad trial count %d", cfg.Trials)
	}
	sites := cfg.Sites
	if sites == nil {
		for s := Site(0); s < NumSites; s++ {
			if s == SiteICache && !cfg.Timing {
				continue
			}
			sites = append(sites, s)
		}
	}
	if len(sites) == 0 {
		return nil, errors.New("fault: no sites")
	}
	factor := cfg.BudgetFactor
	if factor <= 0 {
		factor = 4
	}
	if cfg.CPU.Width == 0 {
		cfg.CPU = cpu.DefaultConfig()
	}

	// Golden functional run: the reference output, memory image, and length.
	g, err := goldenRun(cfg)
	if err != nil {
		return nil, err
	}
	needTiming := cfg.Timing
	for _, s := range sites {
		if s == SiteICache {
			needTiming = true
		}
	}
	if needTiming {
		if err := goldenTiming(cfg, g); err != nil {
			return nil, err
		}
	}

	rep := &Report{Seed: cfg.Seed, Trials: cfg.Trials}
	for i := 0; i < cfg.Trials; i++ {
		site := sites[i%len(sites)]
		rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(i)))
		outcome, kind := runTrial(cfg, g, site, rng, factor)
		rep.Matrix[site][outcome]++
		if kind != emu.TrapNone {
			rep.Kinds[kind]++
		}
		if site == SiteWildAddr && outcome != OutcomeNoInject {
			rep.WildInjected++
			if outcome == OutcomeACFCaught {
				rep.WildCaught++
			}
		}
	}
	return rep, nil
}

func goldenRun(cfg Config) (*golden, error) {
	m, eng := cfg.Build()
	m.SetExpander(NewFetchFaulter(engineExpander(eng)))
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("fault: golden run failed: %w", err)
	}
	return &golden{
		output:   m.Output(),
		checksum: m.Mem().Checksum(),
		total:    m.Stats.Total,
		app:      m.Stats.AppInsts,
	}, nil
}

func goldenTiming(cfg Config, g *golden) error {
	m, eng := cfg.Build()
	m.SetExpander(NewFetchFaulter(engineExpander(eng)))
	res := cpu.Run(m, cfg.CPU)
	if res.Err != nil {
		return fmt.Errorf("fault: golden timing run failed: %w", res.Err)
	}
	g.cycles = res.Cycles
	return nil
}

// engineExpander converts a possibly-nil *core.Engine into an emu.Expander
// without producing a non-nil interface holding a nil pointer.
func engineExpander(eng *core.Engine) emu.Expander {
	if eng == nil {
		return nil
	}
	return eng
}

// runTrial executes one trial and classifies it.
func runTrial(cfg Config, g *golden, site Site, rng *rand.Rand, factor int64) (Outcome, emu.TrapKind) {
	m, eng := cfg.Build()
	f := NewFetchFaulter(engineExpander(eng))
	m.SetExpander(f)
	m.SetBudget(g.total*factor + 1000)

	armAt := rng.Int63n(max64(g.total, 1))
	if site == SiteFetch {
		f.Arm(rng.Int63n(max64(g.app, 1)), uint(rng.Intn(32)))
	}
	injected := false
	// injectAt perturbs machine state at one instruction boundary; for
	// opportunistic sites (RT blocks, upcoming memory ops) it keeps trying
	// from the armed boundary onward.
	injectAt := func(step int64) {
		if injected || step < armAt {
			return
		}
		switch site {
		case SiteReg:
			r := isa.Reg(1 + rng.Intn(isa.NumArchRegs-1)) // skip the zero register
			m.SetReg(r, m.Reg(r)^1<<uint(rng.Intn(64)))
			injected = true
		case SiteMem:
			span := len(m.Program().Data)
			if span == 0 {
				span = 1 << 12
			}
			addr := program.DataBase + uint64(rng.Intn(span))
			m.Mem().StoreByte(addr, m.Mem().LoadByte(addr)^1<<uint(rng.Intn(8)))
			injected = true
		case SiteRT:
			if eng == nil {
				return
			}
			if n := eng.ValidRTBlocks(); n > 0 {
				injected = eng.CorruptRTBlock(rng.Intn(n), scrambleTemplates(rng))
			}
		case SiteWildAddr:
			in, ok := m.NextInst()
			if !ok || !in.Op.IsMem() {
				return
			}
			base := in.RS
			if !base.Valid() || base == isa.RegZero || !base.IsArch() {
				return
			}
			m.SetReg(base, wildAddress(m.Reg(base)))
			injected = true
		}
	}

	var err error
	if cfg.Timing || site == SiteICache {
		ccfg := cfg.CPU
		ccfg.MaxCycles = g.cycles*factor + 100000
		ccfg.Hook = func(insts int64, h *mem.Hierarchy) {
			if site == SiteICache {
				if injected || insts < armAt {
					return
				}
				if n := h.IL1.ValidLines(); n > 0 {
					injected = h.IL1.FlipTagBit(rng.Intn(n), uint(rng.Intn(18)))
				}
				return
			}
			injectAt(insts)
		}
		err = cpu.Run(m, ccfg).Err
	} else {
		for step := int64(0); ; step++ {
			injectAt(step)
			if _, ok := m.Step(); !ok {
				break
			}
		}
		err = m.Err()
	}
	if site == SiteFetch {
		injected = f.Injected
	}

	var kind = emu.TrapNone
	var trap *emu.Trap
	if errors.As(err, &trap) {
		kind = trap.Kind
	}
	if !injected {
		return OutcomeNoInject, kind
	}
	switch {
	case err == nil:
		if m.Output() == g.output && m.Mem().Checksum() == g.checksum {
			return OutcomeClean, kind
		}
		return OutcomeSilent, kind
	case errors.Is(err, emu.ErrACFViolation):
		return OutcomeACFCaught, kind
	case kind == emu.TrapBudget || kind == emu.TrapWatchdog:
		return OutcomeWatchdog, kind
	default:
		return OutcomeTrapped, kind
	}
}

// wildAddress relocates addr into segment 9 — far outside the text (1) and
// data (2) segments — preserving its offset bits.
func wildAddress(addr uint64) uint64 {
	return addr&(1<<program.SegShift-1) | 9<<program.SegShift
}

// scrambleTemplates returns an RT-block mutator: it rewrites one template of
// the block into garbage (invalid opcode, wild register, or wrong literal).
func scrambleTemplates(rng *rand.Rand) func([]core.ReplInst) []core.ReplInst {
	return func(tmpl []core.ReplInst) []core.ReplInst {
		if len(tmpl) == 0 {
			return tmpl
		}
		i := rng.Intn(len(tmpl))
		switch rng.Intn(3) {
		case 0:
			tmpl[i].Trigger, tmpl[i].OpFromTrigger = false, false
			tmpl[i].Op = isa.Opcode(0x3f) // reserved: decodes as invalid
		case 1:
			tmpl[i].RS = core.Lit(isa.Reg(rng.Intn(64)))
		default:
			tmpl[i].Imm = core.ImmField{Dir: core.ImmLit, Lit: int64(rng.Intn(1 << 13))}
		}
		return tmpl
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
