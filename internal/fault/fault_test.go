package fault_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/acf/mfi"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/isa"
)

// workload mirrors the MFI benchmark: a store/load loop over a data array,
// so every site (fetch, registers, memory, RT, wild addresses) has targets.
const workload = `
.entry main
.data
arr: .space 4096
.text
main:
    li r2, 60
    la r1, arr
outer:
    bsr ra, body
    subqi r2, 1, r2
    bgt r2, outer
    halt
body:
    li r3, 16
    mov r1, r4
inner:
    ldq r5, 0(r4)
    addqi r5, 1, r5
    stq r5, 0(r4)
    addqi r4, 8, r4
    subqi r3, 1, r3
    bgt r3, inner
    ret
`

func buildMFI(t *testing.T) func() (*emu.Machine, *core.Engine) {
	t.Helper()
	prog := asm.MustAssemble("w", workload)
	return func() (*emu.Machine, *core.Engine) {
		m := emu.New(prog)
		c := core.NewController(core.DefaultEngineConfig())
		if _, err := mfi.Install(c, mfi.DISE3); err != nil {
			t.Fatal(err)
		}
		mfi.Setup(m)
		return m, c.Engine()
	}
}

func buildBare(t *testing.T) func() (*emu.Machine, *core.Engine) {
	t.Helper()
	prog := asm.MustAssemble("w", workload)
	return func() (*emu.Machine, *core.Engine) {
		return emu.New(prog), nil
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := fault.Config{Seed: 7, Trials: 60, Build: buildMFI(t)}
	a, err := fault.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fault.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different reports:\n%s\nvs\n%s", a, b)
	}
}

func TestCampaignClassifiesEveryTrial(t *testing.T) {
	rep, err := fault.Run(fault.Config{Seed: 1, Trials: 100, Build: buildMFI(t)})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := fault.Site(0); s < fault.NumSites; s++ {
		for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
			total += rep.Matrix[s][o]
		}
	}
	if total != 100 {
		t.Errorf("classified %d of 100 trials:\n%s", total, rep)
	}
}

func TestMFICatchesInjectedWildAccesses(t *testing.T) {
	rep, err := fault.Run(fault.Config{
		Seed: 1, Trials: 80,
		Sites: []fault.Site{fault.SiteWildAddr},
		Build: buildMFI(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WildInjected == 0 {
		t.Fatalf("no wild accesses injected:\n%s", rep)
	}
	if rate := rep.MFIWildCatchRate(); rate < 0.95 {
		t.Errorf("MFI catch rate = %.2f, want >= 0.95:\n%s", rate, rep)
	}
}

func TestWildAccessesSilentWithoutMFI(t *testing.T) {
	rep, err := fault.Run(fault.Config{
		Seed: 1, Trials: 40,
		Sites: []fault.Site{fault.SiteWildAddr},
		Build: buildBare(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matrix[fault.SiteWildAddr][fault.OutcomeACFCaught] != 0 {
		t.Errorf("no ACF installed, yet trials classified acf-caught:\n%s", rep)
	}
	if rep.Matrix[fault.SiteWildAddr][fault.OutcomeSilent] == 0 {
		t.Errorf("wild stores without MFI should corrupt silently:\n%s", rep)
	}
}

func TestICacheCorruptionIsTimingOnly(t *testing.T) {
	rep, err := fault.Run(fault.Config{
		Seed: 3, Trials: 10,
		Sites:  []fault.Site{fault.SiteICache},
		Build:  buildMFI(t),
		Timing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := rep.Matrix[fault.SiteICache]
	if n := row[fault.OutcomeSilent] + row[fault.OutcomeTrapped]; n != 0 {
		t.Errorf("tag-only corruption must not change architectural state:\n%s", rep)
	}
	if row[fault.OutcomeClean] == 0 {
		t.Errorf("expected clean icache trials:\n%s", rep)
	}
}

func TestTimingCampaignRuns(t *testing.T) {
	rep, err := fault.Run(fault.Config{
		Seed: 5, Trials: 24, Build: buildMFI(t), Timing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := fault.Site(0); s < fault.NumSites; s++ {
		for o := fault.Outcome(0); o < fault.NumOutcomes; o++ {
			total += rep.Matrix[s][o]
		}
	}
	if total != 24 {
		t.Errorf("classified %d of 24 trials:\n%s", total, rep)
	}
}

func TestFetchFaulterUnarmedIsPassthrough(t *testing.T) {
	prog := asm.MustAssemble("w", workload)
	base := emu.New(prog)
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog)
	m.SetExpander(fault.NewFetchFaulter(nil))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != base.Output() || m.Mem().Checksum() != base.Mem().Checksum() {
		t.Error("unarmed faulter changed execution")
	}
	if m.Stats.Total != base.Stats.Total {
		t.Errorf("unarmed faulter changed instruction count: %d != %d", m.Stats.Total, base.Stats.Total)
	}
}

func TestFlipInstBitProducesTypedTraps(t *testing.T) {
	// Flipping opcode bits of a valid instruction either yields another
	// valid instruction or an invalid one; never anything that panics the
	// machine.
	in := isa.Inst{Op: isa.OpADDQ, RS: 1, RT: 2, RD: 3}
	for bit := uint(0); bit < 32; bit++ {
		out := fault.FlipInstBit(in, bit)
		_ = out.Op.Class() // must not panic for any result
	}
}

func TestSiteNamesRoundTrip(t *testing.T) {
	for _, s := range fault.AllSites() {
		got, ok := fault.SiteByName(s.String())
		if !ok || got != s {
			t.Errorf("SiteByName(%q) = %v, %v", s.String(), got, ok)
		}
	}
	if _, ok := fault.SiteByName("nosuch"); ok {
		t.Error("SiteByName accepted garbage")
	}
}

func TestReportMentionsTrapKinds(t *testing.T) {
	rep, err := fault.Run(fault.Config{
		Seed: 2, Trials: 50,
		Sites: []fault.Site{fault.SiteWildAddr},
		Build: buildMFI(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kinds[emu.TrapOutOfSegment] == 0 {
		t.Errorf("wild accesses under MFI should be precise out-of-segment traps:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "out-of-segment") {
		t.Errorf("report does not name the trap kind:\n%s", rep)
	}
}

func TestCampaignRejectsBadConfig(t *testing.T) {
	if _, err := fault.Run(fault.Config{Trials: 5}); err == nil {
		t.Error("nil Build accepted")
	}
	if _, err := fault.Run(fault.Config{Trials: 0, Build: buildBare(t)}); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestWildTrapIsACFAndOutOfSegment(t *testing.T) {
	// The refined trap still satisfies the coarse sentinel.
	tr := &emu.Trap{Kind: emu.TrapOutOfSegment, ACF: true}
	if !errors.Is(tr, emu.ErrACFViolation) {
		t.Error("refined ACF trap must match ErrACFViolation")
	}
}
