package fault

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"repro/internal/store"
)

// This file extends the fault-injection philosophy from guest memory up to
// the filesystem: FS wraps a store.FS and perturbs it deterministically, so
// the persistent trace store's crash-safety invariants — no torn entry ever
// served, clean degradation on a failing disk — are proven against injected
// faults instead of trusted.

// Injected filesystem errors. They are distinct sentinels so tests can
// assert the exact classification that surfaced.
var (
	// ErrInjectedEIO models a read error (media failure).
	ErrInjectedEIO = errors.New("fault: injected I/O error")
	// ErrInjectedENOSPC models a full disk on the write path.
	ErrInjectedENOSPC = errors.New("fault: injected no space left on device")
	// ErrCrashed is returned by every operation after the crash point: the
	// process is modeled as dead to the disk, and writes buffered past the
	// torn point never happened.
	ErrCrashed = errors.New("fault: crashed")
)

// FSPlan arms the deterministic fault sites of one FS. Counters are indexed
// from 0 in the order the wrapped store issues operations, so a plan is
// exactly reproducible for a deterministic caller.
type FSPlan struct {
	// TornAfterBytes, when positive, silently discards every written byte
	// after the first N across the FS's lifetime: writes report success but
	// the data never reaches the underlying file — the page-cache-loss half
	// of a power failure. Combine with CrashAtOp to model the crash itself;
	// alone it models firmware that acknowledges writes it drops.
	TornAfterBytes int64
	// ENOSPCAtWrite fails the Nth and every later Write call (0-based) with
	// ErrInjectedENOSPC. Negative disarms.
	ENOSPCAtWrite int64
	// EIOAtRead fails the Nth and every later Read call (0-based) with
	// ErrInjectedEIO. Negative disarms.
	EIOAtRead int64
	// CrashAtOp, when non-negative, fails the Nth and every later FS
	// operation (0-based, counting every interface call) with ErrCrashed.
	CrashAtOp int64
}

// DisarmedPlan returns a plan with every site off (negative counters).
func DisarmedPlan() FSPlan {
	return FSPlan{ENOSPCAtWrite: -1, EIOAtRead: -1, CrashAtOp: -1}
}

// FS is a deterministic fault-injecting store.FS. Beyond the counter-armed
// plan, the read/write paths can be broken and healed at runtime
// (FailReads, FailWrites, Heal) so degraded-mode campaigns can script a
// disk failing mid-serve and recovering.
type FS struct {
	inner store.FS

	mu         sync.Mutex
	plan       FSPlan
	ops        int64
	reads      int64
	writes     int64
	wroteBytes int64
	readErr    error // runtime toggle, nil = healthy
	writeErr   error // runtime toggle, nil = healthy
}

// NewFS wraps inner with plan.
func NewFS(inner store.FS, plan FSPlan) *FS {
	return &FS{inner: inner, plan: plan}
}

// FailReads makes every subsequent read fail with err (use ErrInjectedEIO).
func (f *FS) FailReads(err error) {
	f.mu.Lock()
	f.readErr = err
	f.mu.Unlock()
}

// FailWrites makes every subsequent write fail with err (use
// ErrInjectedENOSPC).
func (f *FS) FailWrites(err error) {
	f.mu.Lock()
	f.writeErr = err
	f.mu.Unlock()
}

// Heal clears the runtime read/write toggles (counter-armed plan sites stay
// armed).
func (f *FS) Heal() {
	f.mu.Lock()
	f.readErr, f.writeErr = nil, nil
	f.mu.Unlock()
}

// Ops returns the number of FS operations issued so far (for aiming
// CrashAtOp in replays of a recorded run).
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// op counts one FS operation and reports whether the crash point has been
// reached.
func (f *FS) op() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.ops
	f.ops++
	if f.plan.CrashAtOp >= 0 && n >= f.plan.CrashAtOp {
		return ErrCrashed
	}
	return nil
}

// MkdirAll implements store.FS.
func (f *FS) MkdirAll(dir string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// Create implements store.FS.
func (f *FS) Create(name string) (store.File, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, name: name}, nil
}

// Open implements store.FS.
func (f *FS) Open(name string) (store.File, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, name: name}, nil
}

// Rename implements store.FS.
func (f *FS) Rename(oldname, newname string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements store.FS.
func (f *FS) Remove(name string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// ReadDir implements store.FS.
func (f *FS) ReadDir(dir string) ([]fs.DirEntry, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// Stat implements store.FS.
func (f *FS) Stat(name string) (fs.FileInfo, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

// SyncDir implements store.FS.
func (f *FS) SyncDir(dir string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile interposes on one open file's reads and writes.
type faultFile struct {
	fs    *FS
	inner store.File
	name  string
}

// Read implements store.File, applying the crash point, the runtime read
// toggle, and the EIO counter in that order.
func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.op(); err != nil {
		return 0, err
	}
	f.fs.mu.Lock()
	n := f.fs.reads
	f.fs.reads++
	toggled := f.fs.readErr
	armed := f.fs.plan.EIOAtRead >= 0 && n >= f.fs.plan.EIOAtRead
	f.fs.mu.Unlock()
	if toggled != nil {
		return 0, fmt.Errorf("%s: %w", f.name, toggled)
	}
	if armed {
		return 0, fmt.Errorf("%s: %w", f.name, ErrInjectedEIO)
	}
	return f.inner.Read(p)
}

// Write implements store.File: the crash point and ENOSPC sites fail
// loudly; the torn site succeeds while silently truncating what reaches the
// underlying file.
func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.op(); err != nil {
		return 0, err
	}
	f.fs.mu.Lock()
	n := f.fs.writes
	f.fs.writes++
	toggled := f.fs.writeErr
	enospc := f.fs.plan.ENOSPCAtWrite >= 0 && n >= f.fs.plan.ENOSPCAtWrite
	keep := int64(len(p))
	if t := f.fs.plan.TornAfterBytes; t > 0 {
		if room := t - f.fs.wroteBytes; room < keep {
			if room < 0 {
				room = 0
			}
			keep = room
		}
	}
	f.fs.wroteBytes += int64(len(p))
	f.fs.mu.Unlock()
	if toggled != nil {
		return 0, fmt.Errorf("%s: %w", f.name, toggled)
	}
	if enospc {
		return 0, fmt.Errorf("%s: %w", f.name, ErrInjectedENOSPC)
	}
	if keep < int64(len(p)) {
		// Torn: acknowledge the full write, persist only the prefix.
		if _, err := f.inner.Write(p[:keep]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return f.inner.Write(p)
}

// Sync implements store.File. A torn file reports a successful sync — the
// model is storage that acknowledges durability it does not deliver, which
// is exactly the lie the store's entry hashing must catch.
func (f *faultFile) Sync() error {
	if err := f.fs.op(); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close implements store.File.
func (f *faultFile) Close() error {
	if err := f.fs.op(); err != nil {
		f.inner.Close()
		return err
	}
	return f.inner.Close()
}
