// Package fault is a deterministic, seedable fault-injection harness for the
// DISE machine. It perturbs a run at named sites — fetched instruction
// words, the register file, data memory, cached RT entries, I-cache tags,
// and effective addresses — and classifies how the machine dies (or fails to
// notice). Its headline measurement is the paper's own robustness claim made
// testable: what fraction of out-of-segment accesses does the memory
// fault-isolation ACF actually catch?
//
// Every trial derives its RNG from (seed, trial index), so campaigns are
// exactly reproducible across runs and machines.
package fault

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
)

// Site names a fault-injection point.
type Site int

// Injection sites.
const (
	// SiteFetch flips one bit of a fetched instruction word before decode.
	SiteFetch Site = iota
	// SiteReg flips one bit of a random architectural register.
	SiteReg
	// SiteMem flips one bit of a random data-segment byte.
	SiteMem
	// SiteRT corrupts one cached RT block (templates are scrambled in the
	// cached copy only, as a hardware soft error would).
	SiteRT
	// SiteICache flips one I-cache tag bit (timing-only: tags-only caches
	// never corrupt values). Requires a timing run.
	SiteICache
	// SiteWildAddr redirects the base register of an upcoming memory access
	// into an illegal segment — the access MFI is specified to catch.
	SiteWildAddr

	// NumSites is the number of defined sites.
	NumSites
)

var siteNames = [NumSites]string{
	SiteFetch:    "fetch",
	SiteReg:      "reg",
	SiteMem:      "mem",
	SiteRT:       "rt",
	SiteICache:   "icache",
	SiteWildAddr: "wild-addr",
}

// String returns the site's report name.
func (s Site) String() string {
	if s < 0 || s >= NumSites {
		return fmt.Sprintf("site(%d)", int(s))
	}
	return siteNames[s]
}

// SiteByName maps a report name back to its Site; ok is false for unknown
// names.
func SiteByName(name string) (Site, bool) {
	for s, n := range siteNames {
		if n == name {
			return Site(s), true
		}
	}
	return 0, false
}

// AllSites returns every defined site.
func AllSites() []Site {
	out := make([]Site, NumSites)
	for i := range out {
		out[i] = Site(i)
	}
	return out
}

// Outcome classifies how one trial terminated.
type Outcome int

// Trial outcomes.
const (
	// OutcomeClean: the run finished with output and memory identical to the
	// golden run (the fault was masked).
	OutcomeClean Outcome = iota
	// OutcomeTrapped: the machine raised a typed trap other than an ACF
	// violation (illegal instruction, out-of-text jump, ...).
	OutcomeTrapped
	// OutcomeACFCaught: an installed ACF detected the fault (the trap
	// matches emu.ErrACFViolation).
	OutcomeACFCaught
	// OutcomeSilent: the run finished "successfully" but its output or
	// memory image diverged from the golden run — silent corruption.
	OutcomeSilent
	// OutcomeWatchdog: the budget or cycle watchdog fired (the fault caused
	// a hang or runaway loop).
	OutcomeWatchdog
	// OutcomeNoInject: the trial found no opportunity to inject (e.g. no
	// valid RT block at the chosen instant); nothing was perturbed.
	OutcomeNoInject

	// NumOutcomes is the number of defined outcomes.
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{
	OutcomeClean:     "clean",
	OutcomeTrapped:   "trapped",
	OutcomeACFCaught: "acf-caught",
	OutcomeSilent:    "silent",
	OutcomeWatchdog:  "watchdog",
	OutcomeNoInject:  "no-inject",
}

// String returns the outcome's report name.
func (o Outcome) String() string {
	if o < 0 || o >= NumOutcomes {
		return fmt.Sprintf("outcome(%d)", int(o))
	}
	return outcomeNames[o]
}

// FlipInstBit models a single-event upset in a fetched instruction word: the
// instruction is re-encoded to its 32-bit machine form, one bit is flipped,
// and the word is decoded again. A word that no longer decodes comes back as
// an invalid-opcode instruction — exactly what a hardware decoder would hand
// to the illegal-instruction trap path. Instructions with no machine
// encoding (replacement-only forms) are returned invalid outright.
func FlipInstBit(in isa.Inst, bit uint) isa.Inst {
	w, err := isa.Encode(in)
	if err != nil {
		return isa.Inst{Op: isa.OpInvalid}
	}
	w ^= 1 << (bit & 31)
	out, err := isa.Decode(w)
	if err != nil {
		return isa.Inst{Op: isa.OpInvalid}
	}
	return out
}

// FetchFaulter interposes on the machine's expander and corrupts exactly one
// fetched instruction word, at a chosen fetch index. Unarmed, it is a
// transparent passthrough (the golden run uses the same wiring). The
// corrupted word is pushed into the execute stream via a single-instruction
// pseudo-expansion when the inner engine declines to expand it, because the
// emulator otherwise executes the pristine text image.
type FetchFaulter struct {
	Inner emu.Expander // wrapped engine; nil for a DISE-less machine

	armed bool
	armAt int64
	bit   uint
	count int64

	// Injected reports whether the armed corruption happened, and PC where.
	Injected   bool
	InjectedPC uint64
}

// NewFetchFaulter wraps inner (which may be nil).
func NewFetchFaulter(inner emu.Expander) *FetchFaulter {
	return &FetchFaulter{Inner: inner}
}

// Arm schedules a bit-flip of the fetch with index at (0-based, counting
// application fetches).
func (f *FetchFaulter) Arm(at int64, bit uint) {
	f.armed, f.armAt, f.bit = true, at, bit
}

// Expand implements emu.Expander.
func (f *FetchFaulter) Expand(in isa.Inst, pc uint64) *core.Expansion {
	idx := f.count
	f.count++
	hit := f.armed && idx == f.armAt
	if hit {
		f.armed = false
		f.Injected = true
		f.InjectedPC = pc
		in = FlipInstBit(in, f.bit)
	}
	var exp *core.Expansion
	if f.Inner != nil {
		exp = f.Inner.Expand(in, pc)
	}
	if !hit {
		return exp
	}
	if exp != nil && exp.Insts != nil {
		// The engine expanded the corrupted word; its sequence carries the
		// corruption (and any ACF checks) into execution.
		return exp
	}
	stall := 0
	if exp != nil {
		stall = exp.Stall
	}
	return &core.Expansion{
		Insts:     []isa.Inst{in},
		Templates: []core.ReplInst{core.TriggerInst()},
		Stall:     stall,
	}
}
