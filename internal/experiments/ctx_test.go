package experiments

import (
	"context"
	"strings"
	"testing"
)

// A cancelled context must abort figure generation loudly — the harnesses
// panic rather than emit a table with silently missing cells.
func TestCancelledContextAbortsFigure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := tinyOptions()
	o.Ctx = ctx
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Fig6Formulation with a cancelled context did not abort")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "cancelled") {
			t.Errorf("abort panic = %v, want a cancellation message", r)
		}
	}()
	Fig6Formulation(o)
}

// A live context must not perturb the tables: cells carry it through
// cpu.Config, and the poll is invisible when it never fires.
func TestBackgroundContextKeepsTablesIdentical(t *testing.T) {
	plain := Fig6Formulation(tinyOptions()).String()
	o := tinyOptions()
	o.Ctx = context.Background()
	if got := Fig6Formulation(o).String(); got != plain {
		t.Errorf("context-carrying run drifted:\n--- plain ---\n%s--- ctx ---\n%s", plain, got)
	}
}
