package experiments

import (
	"testing"

	"repro/internal/stats"
)

// Every cell is an independent simulation written to a preallocated table
// slot, so the rendered tables must be byte-identical at any worker count.
func TestWorkersDeterministic(t *testing.T) {
	serial := tinyOptions()
	serial.Workers = 1
	par := tinyOptions()
	par.Workers = 8

	figs := []struct {
		name string
		gen  func(Options) *stats.Table
	}{
		{"Fig6Formulation", Fig6Formulation},
		{"Fig7Performance", Fig7Performance},
		{"Fig8RT", Fig8RT},
	}
	for _, f := range figs {
		a := f.gen(serial).String()
		b := f.gen(par).String()
		if a != b {
			t.Errorf("%s: Workers=1 and Workers=8 tables differ:\n--- serial ---\n%s--- parallel ---\n%s", f.name, a, b)
		}
	}
}

// A panicking cell must surface on the caller, not kill the process from a
// bare goroutine.
func TestSchedPanicPropagates(t *testing.T) {
	s := Options{}.newSched()
	s.fork(func() {
		s.fork(func() { panic("inner job failed") })
	})
	defer func() {
		if r := recover(); r != "inner job failed" {
			t.Errorf("recovered %v, want the job's panic value", r)
		}
	}()
	s.wait()
}
