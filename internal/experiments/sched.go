package experiments

import (
	"runtime"
	"sync"

	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/program"
)

// sched is the bounded worker pool behind every figure harness. Each
// (benchmark x configuration) cell is an independent job: it builds its own
// machine, engine and cache hierarchy, so cells only share immutable inputs
// (generated programs, compression dictionaries). Jobs are spawned freely —
// a row job forks one job per cell — and a counting semaphore bounds only
// the simulations themselves, so nested fan-out can never deadlock the pool.
// Tables are deterministic regardless of completion order because every job
// writes its own preallocated cell, addressed by (row, column) label.
type sched struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu  sync.Mutex
	log Options
	pan any // first captured job panic, re-raised by wait
}

// newSched builds a scheduler with o.Workers simulation slots
// (GOMAXPROCS when unset).
func (o Options) newSched() *sched {
	n := o.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &sched{sem: make(chan struct{}, n), log: o}
}

// logf emits one progress line; safe from concurrent jobs.
func (s *sched) logf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.logf(format, args...)
}

// fork runs fn as a job. A panicking job (the harnesses panic on any
// simulator regression) does not crash the process from a bare goroutine:
// the first panic value is captured and re-raised on the caller of wait.
func (s *sched) fork(fn func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				s.mu.Lock()
				if s.pan == nil {
					s.pan = r
				}
				s.mu.Unlock()
			}
		}()
		fn()
	}()
}

// wait blocks until every job (including jobs forked by jobs) finishes,
// then re-raises the first job panic, if any.
func (s *sched) wait() {
	s.wg.Wait()
	if s.pan != nil {
		panic(s.pan)
	}
}

// run is the scheduled form of the package-level run: the semaphore bounds
// how many simulations execute at once.
func (s *sched) run(prog *program.Program, cfg cpu.Config, prep func(*emu.Machine)) *cpu.Result {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	return run(prog, cfg, prep)
}
