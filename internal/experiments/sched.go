package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/acf/mfi"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/program"
	"repro/internal/trace"
)

// sched is the bounded worker pool behind every figure harness. Each
// (benchmark x configuration) cell is an independent job: it builds its own
// machine, engine and cache hierarchy, so cells only share immutable inputs
// (generated programs, compression dictionaries, captured traces). Jobs are
// spawned freely — a row job forks one job per cell — and a counting
// semaphore bounds only the simulations themselves, so nested fan-out can
// never deadlock the pool. Tables are deterministic regardless of
// completion order because every job writes its own preallocated cell,
// addressed by (row, column) label.
//
// Cells whose configurations differ only in timing knobs (cache geometry,
// machine width, decoder integration, PT/RT penalties) consume the same
// dynamic instruction stream; such cells carry an equal class key and share
// one trace capture (internal/trace), replaying it per cell instead of
// re-running the functional emulation. Capture happens once per
// (program, class key), on whichever cell gets there first — the stream is
// identical for every cell of the class by construction, so the winner does
// not matter and tables stay byte-identical at any worker count.
type sched struct {
	sem chan struct{}
	ctx context.Context // nil = never cancelled
	wg  sync.WaitGroup

	mu  sync.Mutex
	log Options
	pan any // first captured job panic, re-raised by wait

	tmu    sync.Mutex
	traces map[traceKey]*traceEntry

	// remote, when non-nil, routes wire-expressible cells through a
	// disesrvd batch API (Options.BatchBase) instead of simulating locally.
	remote *client.Client

	imu    sync.Mutex
	images map[*program.Program]string // memoized base64 EVRX images
}

// forceLive, when true, routes every cell through the live functional path.
// The equivalence tests flip it to prove that trace replay leaves every
// table byte-identical.
var forceLive bool

// class identifies a cell's functional-equivalence class. Cells of one
// program with equal keys consume byte-identical dynamic instruction
// streams; they share a single captured trace and differ only in the PT/RT
// penalties used to rebuild DISE stall cycles at replay. The zero class
// (empty key) opts a cell out of sharing — it always runs live.
//
// wire, when non-nil, is the class's expression as disesrvd job material:
// classes whose machine preparation is pure wire state (a production file
// plus dedicated-register presets) can be served by a remote batch API.
// Classes that install programmatic dictionaries or composers (decompClass,
// ded) have no wire form and always simulate locally.
type class struct {
	key           string
	miss, compose int
	wire          *wireSpec
}

// live is the empty class: always run the functional machine.
var live = class{}

// plain is the class of runs with no expander installed. An engine with no
// productions inspects every fetch but never expands and never stalls, so
// production-free engine runs share this class too. Its wire form is the
// empty job: no productions, no presets, default engine geometry.
var plain = class{key: "plain", wire: &wireSpec{}}

// ded is the class of dedicated-decompressor runs: the hardware expander
// never stalls, so the class carries no penalties.
var ded = class{key: "ded"}

// geomKey renders the stream-determining engine dimensions: table geometry
// and virtualization, but never MissPenalty/ComposePenalty — those only
// scale recorded stall events, and live in the class's replay penalties.
func geomKey(c core.EngineConfig) string {
	if c.RTPerfect {
		return fmt.Sprintf("pt%d,rtperf,b%d", c.PTEntries, c.RTBlock)
	}
	return fmt.Sprintf("pt%d,rt%dx%d,b%d", c.PTEntries, c.RTEntries, c.RTAssoc, c.RTBlock)
}

// mfiClass keys a run with MFI productions installed on engine geometry c.
// MFI preparation is pure wire state — mfi.Productions(v) plus
// mfi.SetupRegs() — so the class carries a wire form whenever c itself
// round-trips through the server's EngineSpec.
func mfiClass(v mfi.Variant, c core.EngineConfig) class {
	return class{
		key: "mfi-" + v.String() + "|" + geomKey(c), miss: c.MissPenalty, compose: c.ComposePenalty,
		wire: wireFor(mfi.Productions(v), mfi.SetupRegs(), c),
	}
}

// decompClass keys a DISE-decompression run on engine geometry c; composed
// marks dictionaries whose RT fill inlines MFI productions.
func decompClass(c core.EngineConfig, composed bool) class {
	k := "decomp"
	if composed {
		k = "decomp+mfi"
	}
	return class{key: k + "|" + geomKey(c), miss: c.MissPenalty, compose: c.ComposePenalty}
}

// newSched builds a scheduler with o.Workers simulation slots
// (GOMAXPROCS when unset).
func (o Options) newSched() *sched {
	n := o.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &sched{sem: make(chan struct{}, n), ctx: o.Ctx, log: o,
		traces: make(map[traceKey]*traceEntry),
		images: make(map[*program.Program]string)}
	if o.BatchBase != "" {
		s.remote = client.New(o.BatchBase)
	}
	return s
}

// acquire takes a semaphore slot, or reports cancellation if the scheduler's
// context fires first (backpressure must not outlast a cancelled run).
func (s *sched) acquire() error {
	if s.ctx == nil {
		s.sem <- struct{}{}
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-s.ctx.Done():
		return &emu.Trap{Kind: emu.TrapCancelled,
			Cause: context.Cause(s.ctx), Detail: "experiment cancelled"}
	}
}

// logf emits one progress line; safe from concurrent jobs.
func (s *sched) logf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.logf(format, args...)
}

// fork runs fn as a job. A panicking job (the harnesses panic on any
// simulator regression) does not crash the process from a bare goroutine:
// the first panic value is captured and re-raised on the caller of wait.
func (s *sched) fork(fn func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				s.mu.Lock()
				if s.pan == nil {
					s.pan = r
				}
				s.mu.Unlock()
			}
		}()
		fn()
	}()
}

// wait blocks until every job (including jobs forked by jobs) finishes,
// then re-raises the first job panic, if any.
func (s *sched) wait() {
	s.wg.Wait()
	if s.pan != nil {
		panic(s.pan)
	}
}

// run is the scheduled form of the package-level run: the semaphore bounds
// how many simulations execute at once, and the scheduler's context rides
// along as the cell's default cancellation.
func (s *sched) run(prog *program.Program, cfg cpu.Config, prep func(*emu.Machine)) *cpu.Result {
	if cfg.Ctx == nil {
		cfg.Ctx = s.ctx
	}
	if err := s.acquire(); err != nil {
		// The harnesses treat any cell failure as fatal; a cancelled run
		// aborts figure generation loudly via the scheduler's panic path.
		panic(fmt.Sprintf("experiments: %s: %v", prog.Name, err))
	}
	defer func() { <-s.sem }()
	return run(prog, cfg, prep)
}

// traceKey addresses one captured trace: the program identity (pointer —
// programs are immutable once generated) plus the class key.
type traceKey struct {
	prog *program.Program
	key  string
}

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
}

// The process-wide capture store. A (prog, key) pair fully determines the
// dynamic instruction stream — program pointers are memoized by the
// workload/compression caches and the class key renders every
// stream-changing dimension — so a capture made by one harness is valid for
// every later harness and repeated run in the process (the same invariant
// that lets cells share captures within one sched). The store is bounded:
// when cached records exceed gTraceBudget bytes the least-recently used
// traces are dropped and simply re-captured on next use, so full-scale
// sweeps cannot grow the heap without limit. Eviction affects wall-clock
// time only; results are byte-identical on hit, miss, or forceLive.
const gTraceBudget = 256 << 20

type gTraceEnt struct {
	tr  *trace.Trace
	gen uint64
}

var gTraces = struct {
	sync.Mutex
	m     map[traceKey]*gTraceEnt
	gen   uint64
	bytes int64
}{m: make(map[traceKey]*gTraceEnt)}

func gTraceGet(k traceKey) *trace.Trace {
	gTraces.Lock()
	defer gTraces.Unlock()
	e := gTraces.m[k]
	if e == nil {
		return nil
	}
	gTraces.gen++
	e.gen = gTraces.gen
	return e.tr
}

func gTracePut(k traceKey, tr *trace.Trace) {
	sz := traceBytes(tr)
	gTraces.Lock()
	defer gTraces.Unlock()
	if _, ok := gTraces.m[k]; ok {
		return
	}
	gTraces.gen++
	gTraces.m[k] = &gTraceEnt{tr: tr, gen: gTraces.gen}
	gTraces.bytes += sz
	for gTraces.bytes > gTraceBudget && len(gTraces.m) > 1 {
		var victim traceKey
		vg := ^uint64(0)
		for kk, ee := range gTraces.m {
			if ee.gen < vg {
				vg, victim = ee.gen, kk
			}
		}
		gTraces.bytes -= traceBytes(gTraces.m[victim].tr)
		delete(gTraces.m, victim)
	}
}

// traceBytes estimates a trace's record footprint (32 bytes per cpu.Rec).
func traceBytes(tr *trace.Trace) int64 { return int64(tr.Len()) * 32 }

func (s *sched) traceEntry(k traceKey) *traceEntry {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	e := s.traces[k]
	if e == nil {
		e = &traceEntry{}
		s.traces[k] = e
	}
	return e
}

// capture returns the shared trace for (prog, cl): from the process-wide
// store when a previous harness already captured the class, otherwise
// capturing on first use under a semaphore slot.
func (s *sched) capture(prog *program.Program, prep func(*emu.Machine), cl class) *trace.Trace {
	k := traceKey{prog: prog, key: cl.key}
	ent := s.traceEntry(k)
	ent.once.Do(func() {
		if tr := gTraceGet(k); tr != nil {
			ent.tr = tr
			return
		}
		if err := s.acquire(); err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", prog.Name, err))
		}
		defer func() { <-s.sem }()
		m := emu.New(prog)
		if prep != nil {
			prep(m)
		}
		ent.tr = trace.CaptureContext(s.ctx, m)
		// A capture truncated by cancellation reflects a wall-clock
		// accident, not program content: replaying it propagates the
		// cancellation trap, but it must never become the process-wide
		// class representative.
		if !errors.Is(ent.tr.Err(), emu.ErrCancelled) {
			gTracePut(k, ent.tr)
		}
	})
	if ent.tr == nil {
		// The capture panicked on another cell; that panic is already
		// propagating through the scheduler.
		panic(fmt.Sprintf("experiments: %s: trace capture failed for class %q", prog.Name, cl.key))
	}
	return ent.tr
}

// runC runs one cell under its equivalence class: the first cell of a
// (program, class) pair captures the dynamic instruction stream under a
// semaphore slot, every cell replays it with the class's penalties. Cells
// that cannot share — empty class key, a fault-campaign Hook, or a watchdog
// (both need the live machine) — fall back to run.
func (s *sched) runC(prog *program.Program, cfg cpu.Config, prep func(*emu.Machine), cl class) *cpu.Result {
	if cl.key == "" || cfg.Hook != nil || cfg.MaxCycles > 0 || forceLive {
		return s.run(prog, cfg, prep)
	}
	if rs := s.runRemote(prog, []cpu.Config{cfg}, cl); rs != nil {
		return rs[0]
	}
	tr := s.capture(prog, prep, cl)
	if err := s.acquire(); err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", prog.Name, err))
	}
	defer func() { <-s.sem }()
	if cfg.Ctx == nil {
		cfg.Ctx = s.ctx
	}
	r := cpu.RunSource(tr.Replay(cl.miss, cl.compose), cfg)
	if r.Err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", prog.Name, r.Err))
	}
	return r
}

// runCMany runs a group of cells that share one equivalence class and differ
// only in timing configuration: one shared capture, one record walk stepping
// every configuration (cpu.RunSourceMany). Results are positionally matched
// to cfgs and byte-identical to per-cell runC calls — the sweep harnesses
// use this for their "same stream, k machine geometries" column groups.
func (s *sched) runCMany(prog *program.Program, cfgs []cpu.Config, prep func(*emu.Machine), cl class) []*cpu.Result {
	shareable := cl.key != "" && !forceLive
	for _, cfg := range cfgs {
		if cfg.Hook != nil || cfg.MaxCycles > 0 {
			shareable = false
		}
	}
	if !shareable {
		out := make([]*cpu.Result, len(cfgs))
		for i, cfg := range cfgs {
			out[i] = s.runC(prog, cfg, prep, cl)
		}
		return out
	}
	if rs := s.runRemote(prog, cfgs, cl); rs != nil {
		return rs
	}
	tr := s.capture(prog, prep, cl)
	if err := s.acquire(); err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", prog.Name, err))
	}
	defer func() { <-s.sem }()
	if s.ctx != nil {
		for i := range cfgs {
			if cfgs[i].Ctx == nil {
				cfgs[i].Ctx = s.ctx
			}
		}
	}
	out := cpu.RunSourceMany(tr.Replay(cl.miss, cl.compose), cfgs)
	for _, r := range out {
		if r.Err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", prog.Name, r.Err))
		}
	}
	return out
}
