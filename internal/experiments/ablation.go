package experiments

import (
	"fmt"

	"repro/internal/acf/compress"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/stats"
)

// Ablations beyond the paper's figures: sensitivity of the evaluated design
// points to the fixed costs the paper assumes. The paper charges 30 cycles
// per PT/RT miss and 150 per composing miss "similar [to] software TLB miss
// handling" (§2.3/§4); these sweeps show how the conclusions depend on
// those constants and on the engine's decoder integration.

// AblationRTPenalty sweeps the RT miss-handler latency under DISE
// decompression with the realistic 512-entry 2-way RT, normalized to the
// perfect-RT run. The paper's 30-cycle point sits on this curve.
func AblationRTPenalty(o Options) *stats.Table {
	ps := o.profiles()
	penalties := []int{10, 30, 60, 150, 300}
	var cols []string
	for _, p := range penalties {
		cols = append(cols, fmt.Sprintf("%dcy", p))
	}
	t := stats.NewTable("Ablation: RT miss penalty (512-entry 2-way RT, DISE decompression)", names(ps), cols)
	t.Note = "1.0 = perfect RT, 32KB I$"
	s := o.newSched()
	for _, p := range ps {
		s.fork(func() {
			s.logf("ablate-rt: %s", p.Name)
			prog := p.MustGenerate()
			res, err := compress.Compress(prog, compress.DiseFull())
			if err != nil {
				panic(err)
			}
			cfg := icacheCfg(32)
			cfg.DiseMode = cpu.DisePipe
			base := s.runC(res.Prog, cfg, decompPrep(res, perfectEngine(), nil), decompClass(perfectEngine(), false))
			for _, pen := range penalties {
				s.fork(func() {
					// Penalties only scale the recorded PT/RT miss events:
					// every point of the sweep shares one captured stream.
					ecfg := core.DefaultEngineConfig()
					ecfg.RTEntries = 512
					ecfg.RTAssoc = 2
					ecfg.MissPenalty = pen
					ecfg.ComposePenalty = pen
					t.Set(p.Name, fmt.Sprintf("%dcy", pen),
						norm(s.runC(res.Prog, cfg, decompPrep(res, ecfg, nil), decompClass(ecfg, false)), base))
				})
			}
		})
	}
	s.wait()
	t.AddMeanRow()
	return t
}

// AblationEngineMode isolates the decoder-integration cost on ACF-free
// code: the paper's "zero performance degradation on ACF-free code" design
// goal. Free and stall must be exactly 1.0 without ACFs; +pipe pays the
// deeper-pipeline mispredict tax even with no productions installed.
func AblationEngineMode(o Options) *stats.Table {
	ps := o.profiles()
	cols := []string{"free", "stall", "+pipe"}
	t := stats.NewTable("Ablation: decoder integration on ACF-free code", names(ps), cols)
	t.Note = "no productions installed; 1.0 = plain core"
	s := o.newSched()
	for _, p := range ps {
		s.fork(func() {
			s.logf("ablate-mode: %s", p.Name)
			prog := p.MustGenerate()
			base := s.runC(prog, cpu.DefaultConfig(), nil, plain)
			for _, mode := range []struct {
				name string
				m    cpu.DiseMode
			}{{"free", cpu.DiseFree}, {"stall", cpu.DiseStall}, {"+pipe", cpu.DisePipe}} {
				s.fork(func() {
					cfg := cpu.DefaultConfig()
					cfg.DiseMode = mode.m
					// An engine with no productions: inspects every fetch,
					// never expands, never stalls — its stream is the plain
					// stream, so all three modes replay the base capture.
					prep := func(m *emu.Machine) {
						c := core.NewController(perfectEngine())
						m.SetExpander(c.Engine())
					}
					t.Set(p.Name, mode.name, norm(s.runC(prog, cfg, prep, plain), base))
				})
			}
		})
	}
	s.wait()
	t.AddMeanRow()
	return t
}

// AblationRTBlock sweeps the RT block size (instructions coalesced per RT
// entry, paper §2.2: fewer read ports at the expense of internal
// fragmentation — and, under the engine's bit-sliced set index, coarser
// index resolution) on a 512-instruction RT under DISE decompression.
func AblationRTBlock(o Options) *stats.Table {
	ps := o.profiles()
	blocks := []int{1, 2, 4}
	var cols []string
	for _, b := range blocks {
		cols = append(cols, fmt.Sprintf("block%d", b))
	}
	t := stats.NewTable("Ablation: RT block coalescing (512-entry 2-way RT, DISE decompression)", names(ps), cols)
	t.Note = "1.0 = perfect RT, 32KB I$, 30-cycle RT miss"
	s := o.newSched()
	for _, p := range ps {
		s.fork(func() {
			s.logf("ablate-block: %s", p.Name)
			prog := p.MustGenerate()
			res, err := compress.Compress(prog, compress.DiseFull())
			if err != nil {
				panic(err)
			}
			cfg := icacheCfg(32)
			cfg.DiseMode = cpu.DisePipe
			base := s.runC(res.Prog, cfg, decompPrep(res, perfectEngine(), nil), decompClass(perfectEngine(), false))
			for _, blk := range blocks {
				s.fork(func() {
					// RTBlock changes the RT's set indexing and therefore the
					// miss pattern: each block size is its own stream class.
					ecfg := core.DefaultEngineConfig()
					ecfg.RTEntries = 512
					ecfg.RTAssoc = 2
					ecfg.RTBlock = blk
					t.Set(p.Name, fmt.Sprintf("block%d", blk),
						norm(s.runC(res.Prog, cfg, decompPrep(res, ecfg, nil), decompClass(ecfg, false)), base))
				})
			}
		})
	}
	s.wait()
	t.AddMeanRow()
	return t
}
