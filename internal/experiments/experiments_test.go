package experiments

import (
	"strings"
	"testing"
)

// Tiny-scale options: one small benchmark, short runs. These tests check
// harness plumbing (labels, normalization, completeness), not the paper's
// claims — those are asserted at full scale in the repository root tests.
func tinyOptions() Options {
	return Options{Benchmarks: []string{"mcf"}, DynScaleK: 30}
}

func TestOptionsProfiles(t *testing.T) {
	o := Options{Benchmarks: []string{"gcc", "mcf"}}
	ps := o.profiles()
	if len(ps) != 2 || ps[0].Name != "gcc" || ps[1].Name != "mcf" {
		t.Errorf("profiles = %v", names(ps))
	}
	if got := len(Options{}.profiles()); got != 10 {
		t.Errorf("default profiles = %d, want 10", got)
	}
	o = Options{DynScaleK: 44, Benchmarks: []string{"mcf"}}
	if ps := o.profiles(); ps[0].TargetDynK != 44 {
		t.Errorf("scale override not applied: %d", ps[0].TargetDynK)
	}
}

func TestFig6FormulationStructure(t *testing.T) {
	tb := Fig6Formulation(tinyOptions())
	for _, col := range []string{"rewrite", "stall", "+pipe", "DISE4", "DISE3"} {
		v := tb.Get("mcf", col)
		if v < 1.0 || v > 5 {
			t.Errorf("%s = %.3f: MFI overhead must be >= 1 and sane", col, v)
		}
	}
	if !strings.Contains(tb.String(), "gmean") {
		t.Error("missing mean row")
	}
}

func TestFig6CacheAndWidthStructure(t *testing.T) {
	tb := Fig6CacheSize(tinyOptions())
	if len(tb.Cols) != 8 {
		t.Errorf("cache-size cols = %v", tb.Cols)
	}
	tw := Fig6Width(tinyOptions())
	if len(tw.Cols) != 6 {
		t.Errorf("width cols = %v", tw.Cols)
	}
	for _, c := range tw.Cols {
		if v := tw.Get("mcf", c); v < 1.0 {
			t.Errorf("%s = %.3f < 1", c, v)
		}
	}
}

func TestFig7CompressionStructure(t *testing.T) {
	text, total := Fig7Compression(tinyOptions())
	for _, c := range text.Cols {
		tv, totv := text.Get("mcf", c), total.Get("mcf", c)
		if tv <= 0 || tv > 1 {
			t.Errorf("%s text ratio = %.3f", c, tv)
		}
		if totv < tv {
			t.Errorf("%s: total ratio %.3f below text ratio %.3f", c, totv, tv)
		}
	}
}

func TestFig7PerformanceNormalization(t *testing.T) {
	tb := Fig7Performance(tinyOptions())
	// The raw 32K column is the normalization basis: exactly 1.
	if v := tb.Get("mcf", "raw-32K"); v != 1.0 {
		t.Errorf("raw-32K = %.3f, want 1.0", v)
	}
}

func TestFig7RTStructure(t *testing.T) {
	tb := Fig7RTSize(tinyOptions())
	for _, c := range tb.Cols {
		if v := tb.Get("mcf", c); v < 0.99 {
			t.Errorf("%s = %.3f: realistic RT cannot beat perfect", c, v)
		}
	}
}

func TestFig8Structure(t *testing.T) {
	tb := Fig8Combos(tinyOptions())
	if len(tb.Cols) != 12 {
		t.Errorf("combo cols = %v", tb.Cols)
	}
	rt := Fig8RT(tinyOptions())
	for _, base := range []string{"512-dm", "512-2way", "2K-dm", "2K-2way"} {
		fast, slow := rt.Get("mcf", base+"-30"), rt.Get("mcf", base+"-150")
		if slow < fast {
			t.Errorf("%s: composition latency cannot speed things up (%.3f vs %.3f)", base, slow, fast)
		}
	}
}

func TestAllWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var sb strings.Builder
	All(tinyOptions(), &sb)
	out := sb.String()
	for _, want := range []string{"Figure 6 (top)", "Figure 6 (middle)", "Figure 6 (bottom)",
		"Figure 7 (top)", "Figure 7 (middle)", "Figure 7 (bottom)",
		"Figure 8 (top)", "Figure 8 (bottom)"} {
		if !strings.Contains(out, want) {
			t.Errorf("All output missing %q", want)
		}
	}
}

func TestAblationRTPenaltyMonotone(t *testing.T) {
	tb := AblationRTPenalty(Options{Benchmarks: []string{"gzip"}, DynScaleK: 60})
	prev := 0.0
	for _, c := range []string{"10cy", "30cy", "60cy", "150cy", "300cy"} {
		v := tb.Get("gzip", c)
		if v < prev-1e-9 {
			t.Errorf("penalty sweep must be monotone: %s = %.3f after %.3f", c, v, prev)
		}
		prev = v
	}
	if prev <= 1.0 {
		t.Error("300-cycle misses should cost something on gzip")
	}
}

func TestAblationEngineModeFreeIsFree(t *testing.T) {
	tb := AblationEngineMode(Options{Benchmarks: []string{"mcf"}, DynScaleK: 40})
	if v := tb.Get("mcf", "free"); v != 1.0 {
		t.Errorf("free mode on ACF-free code = %.4f, want exactly 1.0", v)
	}
	if v := tb.Get("mcf", "stall"); v != 1.0 {
		t.Errorf("stall mode with no expansions = %.4f, want exactly 1.0", v)
	}
	if v := tb.Get("mcf", "+pipe"); v < 1.0 {
		t.Errorf("+pipe = %.4f, cannot beat the base", v)
	}
}
