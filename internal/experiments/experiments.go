// Package experiments regenerates every figure of the paper's evaluation
// (Section 4): Figure 6 (memory fault isolation), Figure 7 (dynamic code
// decompression), and Figure 8 (their composition). Each harness returns
// paper-shaped tables — one row per benchmark, one column per configuration,
// values normalized exactly as the paper normalizes them.
package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/acf/compose"
	"repro/internal/acf/compress"
	"repro/internal/acf/mfi"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options scales and scopes an experiment run.
type Options struct {
	// Benchmarks restricts the benchmark set (nil = all ten).
	Benchmarks []string
	// DynScaleK overrides every profile's dynamic-length target (thousands
	// of instructions); 0 keeps the profile defaults. Benchmarks use small
	// values to stay fast; the full harness uses the defaults.
	DynScaleK int
	// Workers bounds how many simulations run concurrently; 0 or negative
	// means GOMAXPROCS. Every (benchmark x configuration) cell is an
	// independent job with its own machine and caches, and tables are
	// assembled by (row, column) position, so any Workers value produces
	// byte-identical output.
	Workers int
	// BatchBase, when non-empty, is a disesrvd base URL (or host:port): every
	// cell whose equivalence class is expressible as wire material — a
	// production file plus dedicated-register presets — is served through
	// POST /v1/batches there instead of simulating locally, one batch per
	// class-sharing column group. Results are byte-identical to local runs by
	// contract (the tables are pinned against the local path); cells without
	// a wire form (programmatic decompression dictionaries, fault hooks,
	// watchdogs) fall back to local simulation transparently.
	BatchBase string
	// Ctx, when non-nil, cancels a figure run cooperatively: every
	// scheduled cell inherits it as its cpu.Config context and captures
	// poll it per chunk. The harnesses treat any cell error as fatal, so a
	// cancelled run aborts figure generation loudly (with an
	// emu.ErrCancelled trap in the panic) instead of emitting a table with
	// silently missing cells.
	Ctx context.Context
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

func (o Options) profiles() []workload.Profile {
	all := workload.Profiles()
	if o.DynScaleK > 0 {
		for i := range all {
			all[i].TargetDynK = o.DynScaleK
		}
	}
	if o.Benchmarks == nil {
		return all
	}
	var out []workload.Profile
	for _, name := range o.Benchmarks {
		for _, p := range all {
			if p.Name == name {
				out = append(out, p)
			}
		}
	}
	return out
}

func names(ps []workload.Profile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// run times a program on cfg with an optional machine preparer. It (and the
// other panics in this package) may panic: the harnesses run only the
// built-in workloads with known-good productions, so any failure is a
// regression in the simulator itself and should abort figure generation
// loudly rather than skew a series. Code that runs guest-supplied programs
// goes through cpu.Run / emu.Run and gets typed traps instead.
func run(prog *program.Program, cfg cpu.Config, prep func(*emu.Machine)) *cpu.Result {
	m := emu.New(prog)
	if prep != nil {
		prep(m)
	}
	r := cpu.Run(m, cfg)
	if r.Err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", prog.Name, r.Err))
	}
	return r
}

// diseMFI prepares a machine with MFI productions active.
func diseMFI(v mfi.Variant, ecfg core.EngineConfig) func(*emu.Machine) {
	return func(m *emu.Machine) {
		c := core.NewController(ecfg)
		if _, err := mfi.Install(c, v); err != nil {
			panic(err)
		}
		m.SetExpander(c.Engine())
		mfi.Setup(m)
	}
}

func perfectEngine() core.EngineConfig {
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	return cfg
}

// ---------------------------------------------------------------- Figure 6

// Fig6Formulation reproduces Figure 6 (top): execution time of MFI under
// binary rewriting and the DISE formulations/implementations, normalized to
// the fault-isolation-free run. Columns, left to right: the rewriting
// baseline; DISE3 on the two realistic decoder integrations (stall, +pipe);
// and the two free-DISE formulations (DISE4, DISE3).
func Fig6Formulation(o Options) *stats.Table {
	ps := o.profiles()
	cols := []string{"rewrite", "stall", "+pipe", "DISE4", "DISE3"}
	t := stats.NewTable("Figure 6 (top): memory fault isolation, normalized execution time", names(ps), cols)
	t.Note = "4-wide, 32KB I$; 1.0 = no fault isolation"
	s := o.newSched()
	for _, p := range ps {
		s.fork(func() {
			s.logf("fig6a: %s", p.Name)
			prog := p.MustGenerate()
			base := s.runC(prog, cpu.DefaultConfig(), nil, plain)

			rw, err := mfi.Rewrite(prog)
			if err != nil {
				panic(err)
			}
			s.fork(func() {
				t.Set(p.Name, "rewrite", norm(s.runC(rw, cpu.DefaultConfig(), nil, plain), base))
			})
			s.fork(func() {
				stall := cpu.DefaultConfig()
				stall.DiseMode = cpu.DiseStall
				t.Set(p.Name, "stall", norm(s.runC(prog, stall, diseMFI(mfi.DISE3, perfectEngine()), mfiClass(mfi.DISE3, perfectEngine())), base))
			})
			s.fork(func() {
				pipe := cpu.DefaultConfig()
				pipe.DiseMode = cpu.DisePipe
				t.Set(p.Name, "+pipe", norm(s.runC(prog, pipe, diseMFI(mfi.DISE3, perfectEngine()), mfiClass(mfi.DISE3, perfectEngine())), base))
			})
			s.fork(func() {
				t.Set(p.Name, "DISE4", norm(s.runC(prog, cpu.DefaultConfig(), diseMFI(mfi.DISE4, perfectEngine()), mfiClass(mfi.DISE4, perfectEngine())), base))
			})
			s.fork(func() {
				t.Set(p.Name, "DISE3", norm(s.runC(prog, cpu.DefaultConfig(), diseMFI(mfi.DISE3, perfectEngine()), mfiClass(mfi.DISE3, perfectEngine())), base))
			})
		})
	}
	s.wait()
	t.AddMeanRow()
	return t
}

// Fig6CacheSize reproduces Figure 6 (middle): DISE3 vs rewriting across
// I-cache sizes, each normalized to the MFI-free run at the same size.
func Fig6CacheSize(o Options) *stats.Table {
	ps := o.profiles()
	sizes := []struct {
		name string
		kb   int // 0 = perfect
	}{{"8K", 8}, {"32K", 32}, {"128K", 128}, {"perf", 0}}
	var cols []string
	for _, s := range sizes {
		cols = append(cols, "rw-"+s.name, "dise-"+s.name)
	}
	t := stats.NewTable("Figure 6 (middle): MFI vs I-cache size, normalized execution time", names(ps), cols)
	t.Note = "4-wide; per size, 1.0 = no fault isolation at that size"
	sc := o.newSched()
	for _, p := range ps {
		sc.fork(func() {
			sc.logf("fig6b: %s", p.Name)
			prog := p.MustGenerate()
			rw, err := mfi.Rewrite(prog)
			if err != nil {
				panic(err)
			}
			// Each stream sweeps the cache sizes in one grouped replay: the
			// three streams (plain, rewritten, DISE) each walk their capture
			// once, stepping all four cache geometries together.
			baseCfgs := make([]cpu.Config, len(sizes))
			diseCfgs := make([]cpu.Config, len(sizes))
			for i, s := range sizes {
				cfg := cpu.DefaultConfig()
				setICache(&cfg, s.kb)
				// The paper assumes the elongated-pipe design from here on.
				cfg.DiseMode = cpu.DisePipe
				diseCfgs[i] = cfg
				cfg.DiseMode = cpu.DiseFree
				baseCfgs[i] = cfg
			}
			bases := sc.runCMany(prog, baseCfgs, nil, plain)
			sc.fork(func() {
				rws := sc.runCMany(rw, baseCfgs, nil, plain)
				for i, s := range sizes {
					t.Set(p.Name, "rw-"+s.name, norm(rws[i], bases[i]))
				}
			})
			sc.fork(func() {
				dises := sc.runCMany(prog, diseCfgs, diseMFI(mfi.DISE3, perfectEngine()), mfiClass(mfi.DISE3, perfectEngine()))
				for i, s := range sizes {
					t.Set(p.Name, "dise-"+s.name, norm(dises[i], bases[i]))
				}
			})
		})
	}
	sc.wait()
	t.AddMeanRow()
	return t
}

// Fig6Width reproduces Figure 6 (bottom): DISE3 vs rewriting across machine
// widths at 32KB I$.
func Fig6Width(o Options) *stats.Table {
	ps := o.profiles()
	widths := []int{2, 4, 8}
	var cols []string
	for _, w := range widths {
		cols = append(cols, fmt.Sprintf("rw-%dw", w), fmt.Sprintf("dise-%dw", w))
	}
	t := stats.NewTable("Figure 6 (bottom): MFI vs processor width, normalized execution time", names(ps), cols)
	t.Note = "32KB I$; per width, 1.0 = no fault isolation at that width"
	s := o.newSched()
	for _, p := range ps {
		s.fork(func() {
			s.logf("fig6c: %s", p.Name)
			prog := p.MustGenerate()
			rw, err := mfi.Rewrite(prog)
			if err != nil {
				panic(err)
			}
			for _, w := range widths {
				s.fork(func() {
					cfg := cpu.DefaultConfig()
					cfg.Width = w
					base := s.runC(prog, cfg, nil, plain)
					s.fork(func() {
						t.Set(p.Name, fmt.Sprintf("rw-%dw", w), norm(s.runC(rw, cfg, nil, plain), base))
					})
					s.fork(func() {
						diseCfg := cfg
						diseCfg.DiseMode = cpu.DisePipe
						t.Set(p.Name, fmt.Sprintf("dise-%dw", w), norm(s.runC(prog, diseCfg, diseMFI(mfi.DISE3, perfectEngine()), mfiClass(mfi.DISE3, perfectEngine())), base))
					})
				})
			}
		})
	}
	s.wait()
	t.AddMeanRow()
	return t
}

// ---------------------------------------------------------------- Figure 7

// Fig7Compression reproduces Figure 7 (top): the compression feature
// ladder. It returns two tables: compressed text size and text+dictionary,
// both normalized to the uncompressed text (the paper's stacked bars).
func Fig7Compression(o Options) (*stats.Table, *stats.Table) {
	ps := o.profiles()
	ladder := compress.Ladder()
	var cols []string
	for _, step := range ladder {
		cols = append(cols, step.Name)
	}
	text := stats.NewTable("Figure 7 (top): compressed text size / original", names(ps), cols)
	total := stats.NewTable("Figure 7 (top, stack): text+dictionary / original", names(ps), cols)
	s := o.newSched()
	for _, p := range ps {
		s.fork(func() {
			s.logf("fig7a: %s", p.Name)
			prog := p.MustGenerate()
			for _, step := range ladder {
				s.fork(func() {
					res, err := compress.Compress(prog, step.Cfg)
					if err != nil {
						panic(err)
					}
					text.Set(p.Name, step.Name, res.Stats.Ratio())
					total.Set(p.Name, step.Name, res.Stats.TotalRatio())
				})
			}
		})
	}
	s.wait()
	text.AddMeanRow()
	total.AddMeanRow()
	return text, total
}

// Fig7Performance reproduces Figure 7 (middle): execution time of the DISE-
// decompressed program across I-cache sizes, normalized to the uncompressed
// run with a 32KB I-cache. A perfect RT is modeled, as in the paper.
func Fig7Performance(o Options) *stats.Table {
	ps := o.profiles()
	sizes := []struct {
		name string
		kb   int
	}{{"8K", 8}, {"32K", 32}, {"128K", 128}, {"perf", 0}}
	var cols []string
	for _, s := range sizes {
		cols = append(cols, "raw-"+s.name, "dise-"+s.name)
	}
	t := stats.NewTable("Figure 7 (middle): DISE decompression, normalized execution time", names(ps), cols)
	t.Note = "1.0 = uncompressed, 32KB I$; perfect RT"
	sc := o.newSched()
	for _, p := range ps {
		sc.fork(func() {
			sc.logf("fig7b: %s", p.Name)
			prog := p.MustGenerate()
			res, err := compress.Compress(prog, compress.DiseFull())
			if err != nil {
				panic(err)
			}
			base32 := sc.runC(prog, icacheCfg(32), nil, plain)
			rawCfgs := make([]cpu.Config, len(sizes))
			diseCfgs := make([]cpu.Config, len(sizes))
			for i, s := range sizes {
				rawCfgs[i] = icacheCfg(s.kb)
				diseCfgs[i] = icacheCfg(s.kb)
				diseCfgs[i].DiseMode = cpu.DisePipe
			}
			sc.fork(func() {
				raws := sc.runCMany(prog, rawCfgs, nil, plain)
				for i, s := range sizes {
					t.Set(p.Name, "raw-"+s.name, norm(raws[i], base32))
				}
			})
			sc.fork(func() {
				dises := sc.runCMany(res.Prog, diseCfgs, decompPrep(res, perfectEngine(), nil), decompClass(perfectEngine(), false))
				for i, s := range sizes {
					t.Set(p.Name, "dise-"+s.name, norm(dises[i], base32))
				}
			})
		})
	}
	sc.wait()
	t.AddMeanRow()
	return t
}

// Fig7RTSize reproduces Figure 7 (bottom): realistic RT configurations vs
// the perfect RT, under DISE decompression with 30-cycle misses.
func Fig7RTSize(o Options) *stats.Table {
	ps := o.profiles()
	cols := []string{"512-dm", "512-2way", "2K-dm", "2K-2way"}
	t := stats.NewTable("Figure 7 (bottom): RT configuration, normalized execution time", names(ps), cols)
	t.Note = "1.0 = perfect RT, 32KB I$, 30-cycle RT miss"
	s := o.newSched()
	for _, p := range ps {
		s.fork(func() {
			s.logf("fig7c: %s", p.Name)
			prog := p.MustGenerate()
			res, err := compress.Compress(prog, compress.DiseFull())
			if err != nil {
				panic(err)
			}
			cfg := icacheCfg(32)
			cfg.DiseMode = cpu.DisePipe
			base := s.runC(res.Prog, cfg, decompPrep(res, perfectEngine(), nil), decompClass(perfectEngine(), false))
			for _, rt := range rtConfigs() {
				s.fork(func() {
					t.Set(p.Name, rt.name, norm(s.runC(res.Prog, cfg, decompPrep(res, rt.cfg, nil), decompClass(rt.cfg, false)), base))
				})
			}
		})
	}
	s.wait()
	t.AddMeanRow()
	return t
}

// ---------------------------------------------------------------- Figure 8

// Fig8Combos reproduces Figure 8 (top): simultaneous fault isolation and
// decompression under the three implementation combinations, across I-cache
// sizes, normalized to the unmodified program on a 32KB I-cache.
func Fig8Combos(o Options) *stats.Table {
	ps := o.profiles()
	sizes := []struct {
		name string
		kb   int
	}{{"8K", 8}, {"32K", 32}, {"128K", 128}, {"perf", 0}}
	combos := []string{"rw+ded", "rw+dise", "dise+dise"}
	var cols []string
	for _, s := range sizes {
		for _, c := range combos {
			cols = append(cols, c+"-"+s.name)
		}
	}
	t := stats.NewTable("Figure 8 (top): composed MFI+decompression, normalized execution time", names(ps), cols)
	t.Note = "1.0 = unmodified, 32KB I$; perfect RT"
	sc := o.newSched()
	for _, p := range ps {
		sc.fork(func() {
			sc.logf("fig8a: %s", p.Name)
			prog := p.MustGenerate()
			base32 := sc.runC(prog, icacheCfg(32), nil, plain)

			rw, err := mfi.Rewrite(prog)
			if err != nil {
				panic(err)
			}
			rwDed, err := compress.Compress(rw, compress.Dedicated())
			if err != nil {
				panic(err)
			}
			rwDise, err := compress.Compress(rw, compress.DiseFull())
			if err != nil {
				panic(err)
			}
			diseComp, err := compress.Compress(prog, compress.DiseFull())
			if err != nil {
				panic(err)
			}

			dedCfgs := make([]cpu.Config, len(sizes))
			pipeCfgs := make([]cpu.Config, len(sizes))
			for i, s := range sizes {
				dedCfgs[i] = icacheCfg(s.kb)
				pipeCfgs[i] = icacheCfg(s.kb)
				pipeCfgs[i].DiseMode = cpu.DisePipe
			}
			sc.fork(func() {
				// Rewriting MFI + dedicated hardware decompression.
				rs := sc.runCMany(rwDed.Prog, dedCfgs, func(m *emu.Machine) {
					m.SetExpander(compress.NewDecompressor(rwDed))
				}, ded)
				for i, s := range sizes {
					t.Set(p.Name, "rw+ded-"+s.name, norm(rs[i], base32))
				}
			})
			sc.fork(func() {
				// Rewriting MFI + DISE decompression.
				rs := sc.runCMany(rwDise.Prog, pipeCfgs, decompPrep(rwDise, perfectEngine(), nil), decompClass(perfectEngine(), false))
				for i, s := range sizes {
					t.Set(p.Name, "rw+dise-"+s.name, norm(rs[i], base32))
				}
			})
			sc.fork(func() {
				// DISE MFI composed with DISE decompression at RT fill.
				rs := sc.runCMany(diseComp.Prog, pipeCfgs, decompPrep(diseComp, perfectEngine(), composeMFI), decompClass(perfectEngine(), true))
				for i, s := range sizes {
					t.Set(p.Name, "dise+dise-"+s.name, norm(rs[i], base32))
				}
			})
		})
	}
	sc.wait()
	t.AddMeanRow()
	return t
}

// Fig8RT reproduces Figure 8 (bottom): the composed DISE+DISE configuration
// under realistic RTs; each RT size/associativity is measured with the
// plain 30-cycle miss handler (capacity effect) and with the 150-cycle
// composing handler (composition latency effect).
func Fig8RT(o Options) *stats.Table {
	ps := o.profiles()
	var cols []string
	for _, rt := range rtConfigs() {
		cols = append(cols, rt.name+"-30", rt.name+"-150")
	}
	t := stats.NewTable("Figure 8 (bottom): composed ACFs vs RT configuration", names(ps), cols)
	t.Note = "1.0 = perfect RT; 30 = capacity only, 150 = +composition latency"
	s := o.newSched()
	for _, p := range ps {
		s.fork(func() {
			s.logf("fig8b: %s", p.Name)
			prog := p.MustGenerate()
			res, err := compress.Compress(prog, compress.DiseFull())
			if err != nil {
				panic(err)
			}
			cfg := icacheCfg(32)
			cfg.DiseMode = cpu.DisePipe
			base := s.runC(res.Prog, cfg, decompPrep(res, perfectEngine(), composeMFI), decompClass(perfectEngine(), true))
			for _, rt := range rtConfigs() {
				s.fork(func() {
					fast := rt.cfg
					fast.ComposePenalty = fast.MissPenalty
					t.Set(p.Name, rt.name+"-30", norm(s.runC(res.Prog, cfg, decompPrep(res, fast, composeMFI), decompClass(fast, true)), base))
				})
				s.fork(func() {
					slow := rt.cfg
					slow.ComposePenalty = 150
					t.Set(p.Name, rt.name+"-150", norm(s.runC(res.Prog, cfg, decompPrep(res, slow, composeMFI), decompClass(slow, true)), base))
				})
			}
		})
	}
	s.wait()
	t.AddMeanRow()
	return t
}

// ------------------------------------------------------------------ shared

// norm returns r's cycles normalized to base's.
func norm(r, base *cpu.Result) float64 {
	return stats.Ratio(float64(r.Cycles), float64(base.Cycles))
}

func setICache(cfg *cpu.Config, kb int) {
	if kb == 0 {
		cfg.Mem.IL1.Perfect = true
		return
	}
	cfg.Mem.IL1.Size = kb << 10
}

func icacheCfg(kb int) cpu.Config {
	cfg := cpu.DefaultConfig()
	setICache(&cfg, kb)
	return cfg
}

type rtConfig struct {
	name string
	cfg  core.EngineConfig
}

func rtConfigs() []rtConfig {
	mk := func(name string, entries, assoc int) rtConfig {
		cfg := core.DefaultEngineConfig()
		cfg.RTEntries = entries
		cfg.RTAssoc = assoc
		return rtConfig{name: name, cfg: cfg}
	}
	return []rtConfig{
		mk("512-dm", 512, 1),
		mk("512-2way", 512, 2),
		mk("2K-dm", 2048, 1),
		mk("2K-2way", 2048, 2),
	}
}

// decompPrep prepares a machine for a DISE-compressed program: installs the
// decompression dictionary on a fresh controller, optionally lets withMFI
// add fault isolation (composition), and initializes dedicated registers.
func decompPrep(res *compress.Result, ecfg core.EngineConfig, withMFI func(*core.Controller)) func(*emu.Machine) {
	return func(m *emu.Machine) {
		c := core.NewController(ecfg)
		if withMFI != nil {
			withMFI(c)
		}
		if _, err := res.Install(c); err != nil {
			panic(err)
		}
		m.SetExpander(c.Engine())
		mfi.Setup(m)
	}
}

// composeMFI installs DISE3 MFI productions and the RT-fill composer that
// inlines them into decompression sequences (paper §3.3: transparent with
// aware composition happens in the RT miss handler).
func composeMFI(c *core.Controller) {
	prods, err := mfi.Install(c, mfi.DISE3)
	if err != nil {
		panic(err)
	}
	c.SetComposer(compose.Composer(prods))
}

// All runs every experiment and writes the tables to w.
func All(o Options, w io.Writer) {
	fmt.Fprintln(w, Fig6Formulation(o))
	fmt.Fprintln(w, Fig6CacheSize(o))
	fmt.Fprintln(w, Fig6Width(o))
	text, total := Fig7Compression(o)
	fmt.Fprintln(w, text)
	fmt.Fprintln(w, total)
	fmt.Fprintln(w, Fig7Performance(o))
	fmt.Fprintln(w, Fig7RTSize(o))
	fmt.Fprintln(w, Fig8Combos(o))
	fmt.Fprintln(w, Fig8RT(o))
}
