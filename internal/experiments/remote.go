package experiments

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/server"
)

// The batch-serving path (Options.BatchBase) turns the paper harnesses into
// a disesrvd workload: every cell whose class has a wire form is submitted
// to POST /v1/batches — a runCMany column group becomes one k-cell sweep,
// a runC cell a 1-cell batch — and the server's single-flight trace cache
// plays the role of the local capture store. Cells without a wire form
// (programmatic dictionaries, fault hooks, watchdogs, forceLive) simulate
// locally as before, so a partially expressible figure still completes.
//
// The contract is byte-identity: a remote cell must land in the table with
// exactly the value the local simulation produces. Everything here is built
// to make that checkable rather than assumed — specs derived from local
// configs are verified by round-tripping them through the server's own
// resolution (server.MachineSpec.Config / server.EngineSpec.Config), and
// TestBatchServingMatchesLocalTables pins the rendered tables.

// remoteBudget is the instruction budget sent with every remote cell. The
// harness workloads are finite and far below it, so it never trips; it is
// pinned (budget is server cache-key material) so every run of a class maps
// to the same server-side trace entry.
const remoteBudget int64 = 1 << 40

// wireSpec is a class's expression as disesrvd job material: the machine
// preparation as wire state (production file + dedicated-register presets)
// plus the engine spec resolving to the class's core.EngineConfig. The zero
// wireSpec is the plain class: no productions, default engine.
type wireSpec struct {
	prods  string
	regs   map[string]uint64
	engine server.EngineSpec
}

// wireFor builds the wire form of a production-file class on engine config
// c, or nil when c is not expressible as an EngineSpec (the round trip
// through the server's resolution does not reproduce it exactly).
func wireFor(prods string, regs map[string]uint64, c core.EngineConfig) *wireSpec {
	spec := server.EngineSpec{
		PTEntries:      c.PTEntries,
		RTEntries:      c.RTEntries,
		RTAssoc:        c.RTAssoc,
		RTBlock:        c.RTBlock,
		RTPerfect:      c.RTPerfect,
		MissPenalty:    c.MissPenalty,
		ComposePenalty: c.ComposePenalty,
	}
	got, err := spec.Config()
	if err != nil || !reflect.DeepEqual(got, c) {
		return nil
	}
	return &wireSpec{prods: prods, regs: regs, engine: spec}
}

// machineSpec inverts a local cpu.Config into the wire MachineSpec, then
// verifies the inversion by resolving it exactly as the server would. ok is
// false when cfg is not wire-expressible (e.g. a cache geometry or hierarchy
// field the spec cannot carry).
func machineSpec(cfg cpu.Config) (server.MachineSpec, bool) {
	spec := server.MachineSpec{Width: cfg.Width, ROB: cfg.ROB, PipeDepth: cfg.PipeDepth}
	switch cfg.DiseMode {
	case cpu.DiseFree:
		spec.DiseMode = "free"
	case cpu.DiseStall:
		spec.DiseMode = "stall"
	case cpu.DisePipe:
		spec.DiseMode = "pipe"
	default:
		return spec, false
	}
	cacheKB := func(size int, perfect bool) int {
		if perfect {
			return -1
		}
		return size >> 10
	}
	spec.ICacheKB = cacheKB(cfg.Mem.IL1.Size, cfg.Mem.IL1.Perfect)
	spec.DCacheKB = cacheKB(cfg.Mem.DL1.Size, cfg.Mem.DL1.Perfect)
	got, err := spec.Config()
	if err != nil {
		return spec, false
	}
	want := cfg
	want.Ctx, want.Hook, want.MaxCycles = nil, nil, 0
	return spec, reflect.DeepEqual(got, want)
}

// imageB64 returns the program's canonical EVRX image, base64-encoded and
// memoized per program pointer (programs are immutable once generated, and
// one program fans out over many cells).
func (s *sched) imageB64(prog *program.Program) string {
	s.imu.Lock()
	defer s.imu.Unlock()
	if img, ok := s.images[prog]; ok {
		return img
	}
	var buf bytes.Buffer
	if err := prog.WriteImage(&buf); err != nil {
		panic(fmt.Sprintf("experiments: %s: serializing image: %v", prog.Name, err))
	}
	img := base64.StdEncoding.EncodeToString(buf.Bytes())
	s.images[prog] = img
	return img
}

// runRemote serves a class-sharing cell group through the batch API, or
// returns nil when the group must simulate locally: no BatchBase, the class
// has no wire form, forceLive is set, or a config fails spec inversion.
// Remote failures (transport, aborted batches, trapped cells) panic, like
// every other cell failure in the harnesses.
func (s *sched) runRemote(prog *program.Program, cfgs []cpu.Config, cl class) []*cpu.Result {
	if s.remote == nil || cl.wire == nil || forceLive {
		return nil
	}
	req := server.BatchRequest{Jobs: make([]server.SubmitRequest, len(cfgs))}
	for i, cfg := range cfgs {
		if cfg.Hook != nil || cfg.MaxCycles > 0 {
			return nil
		}
		mspec, ok := machineSpec(cfg)
		if !ok {
			return nil
		}
		req.Jobs[i] = server.SubmitRequest{
			ImageB64:    s.imageB64(prog),
			Prods:       cl.wire.prods,
			Regs:        cl.wire.regs,
			Machine:     mspec,
			Engine:      cl.wire.engine,
			BudgetInsts: remoteBudget,
		}
	}
	// A batch occupies one server worker end to end; holding one local slot
	// for it keeps the client-side fan-out bounded the same way local
	// simulation is.
	if err := s.acquire(); err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", prog.Name, err))
	}
	defer func() { <-s.sem }()
	ctx := s.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cells, _, err := s.remote.BatchCollect(ctx, &req)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: batch %q: %v", prog.Name, cl.key, err))
	}
	out := make([]*cpu.Result, len(cfgs))
	for i, cell := range cells {
		if cell == nil {
			panic(fmt.Sprintf("experiments: %s: batch %q: cell %d aborted", prog.Name, cl.key, i))
		}
		var p server.ResultPayload
		if err := json.Unmarshal(cell.Result, &p); err != nil {
			panic(fmt.Sprintf("experiments: %s: batch %q: cell %d: %v", prog.Name, cl.key, i, err))
		}
		if p.Trap != "" || p.Error != "" {
			// Harness cells never trap locally; a remote trap is the same
			// regression run() panics on.
			panic(fmt.Sprintf("experiments: %s: batch %q: cell %d trapped remotely: %s %s",
				prog.Name, cl.key, i, p.Trap, p.Error))
		}
		out[i] = &cpu.Result{
			Cycles:         p.Cycles,
			Insts:          p.Insts,
			AppInsts:       p.AppInsts,
			ICacheAccesses: p.ICacheAccesses,
			ICacheMisses:   p.ICacheMisses,
			DCacheAccesses: p.DCacheAccesses,
			DCacheMisses:   p.DCacheMisses,
			Mispredicts:    p.Mispredicts,
			DiseStalls:     p.DiseStalls,
			ExpStalls:      p.ExpStalls,
		}
	}
	return out
}
