package experiments

import (
	"testing"

	"repro/internal/stats"
)

// The trace-replay fast path must be invisible in the output: every table
// rendered with shared captures must be byte-identical to the one produced
// by running every cell on the live functional machine. This covers each
// class kind the harnesses use — plain, MFI, DISE decompression (perfect
// and finite RT geometries), composed MFI+decompression, the dedicated
// decompressor, and penalty reconstruction in the RT-penalty sweep.
func TestTraceReplayMatchesLiveTables(t *testing.T) {
	if forceLive {
		t.Fatal("forceLive left set by another test")
	}
	figs := []struct {
		name string
		gen  func(Options) *stats.Table
	}{
		{"Fig6Formulation", Fig6Formulation},
		{"Fig6CacheSize", Fig6CacheSize},
		{"Fig7RTSize", Fig7RTSize},
		{"Fig8Combos", Fig8Combos},
		{"Fig8RT", Fig8RT},
		{"AblationRTPenalty", AblationRTPenalty},
		{"AblationEngineMode", AblationEngineMode},
	}
	for _, f := range figs {
		replayed := f.gen(tinyOptions()).String()
		forceLive = true
		liveOut := f.gen(tinyOptions()).String()
		forceLive = false
		if replayed != liveOut {
			t.Errorf("%s: trace replay changed the table:\n--- replay ---\n%s--- live ---\n%s",
				f.name, replayed, liveOut)
		}
	}
}
