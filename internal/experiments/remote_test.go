package experiments

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	"repro/internal/client"
	"repro/internal/cpu"
	"repro/internal/server"
	"repro/internal/stats"
)

// batchTarget spins a full in-process disesrvd and returns its base URL.
func batchTarget(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Drain() })
	return ts.URL
}

// TestBatchServingMatchesLocalTables is the equivalence gate for the
// batch-serving path: every figure rendered with BatchBase set must be
// byte-identical to the locally simulated table. The set covers each class
// kind — plain and MFI cells go remote; decompression, composition, and
// dedicated-hardware cells fall back to local simulation inside the same
// figure — so both the remote mapping and the fallback seam are pinned.
func TestBatchServingMatchesLocalTables(t *testing.T) {
	base := batchTarget(t)
	figs := []struct {
		name string
		gen  func(Options) *stats.Table
	}{
		{"Fig6Formulation", Fig6Formulation},       // plain + MFI, runC cells
		{"Fig6CacheSize", Fig6CacheSize},           // plain + MFI, runCMany sweeps
		{"Fig8Combos", Fig8Combos},                 // plain remote; decomp/ded local fallback
		{"AblationEngineMode", AblationEngineMode}, // plain class with engine prep
	}
	for _, f := range figs {
		local := f.gen(tinyOptions()).String()
		remote := tinyOptions()
		remote.BatchBase = base
		served := f.gen(remote).String()
		if served != local {
			t.Errorf("%s: batch serving changed the table:\n--- local ---\n%s--- batch ---\n%s",
				f.name, local, served)
		}
	}
}

// TestBatchServingActuallyServes proves the routing engaged: a remote figure
// run must show up in the server's batch counters, with every cell done and
// the trace cache carrying the captured classes.
func TestBatchServingActuallyServes(t *testing.T) {
	base := batchTarget(t)
	o := tinyOptions()
	o.BatchBase = base
	Fig6CacheSize(o)
	sp, err := client.New(base).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sp.Batches.Batches == 0 || sp.Batches.Cells == 0 {
		t.Fatalf("no batches served: %+v", sp.Batches)
	}
	if sp.Batches.CellsDone != sp.Batches.Cells {
		t.Errorf("batch cells %d, done %d: remote cells must all land", sp.Batches.Cells, sp.Batches.CellsDone)
	}
	// Fig6CacheSize column groups are 4-cell sweeps (one per I$ size); the
	// grouped replay must survive the wire, not degrade to 1-cell batches.
	if sp.Batches.Cells <= sp.Batches.Batches {
		t.Errorf("%d cells over %d batches: sweeps did not batch", sp.Batches.Cells, sp.Batches.Batches)
	}
}

// TestWireSpecRoundTrip pins the spec inversions on the configs the
// harnesses actually use, plus the non-expressible cases that must fall
// back (so a silent wrong-answer path cannot open).
func TestWireSpecRoundTrip(t *testing.T) {
	for _, cfg := range []cpu.Config{
		cpu.DefaultConfig(),
		icacheCfg(8),
		icacheCfg(0), // perfect I$
		func() cpu.Config { c := cpu.DefaultConfig(); c.Width = 8; c.DiseMode = cpu.DisePipe; return c }(),
	} {
		if _, ok := machineSpec(cfg); !ok {
			t.Errorf("machineSpec rejected a harness config: %+v", cfg)
		}
	}
	odd := cpu.DefaultConfig()
	odd.Mem.IL1.Size = 3000 // not a power-of-two KB count: no wire form
	if _, ok := machineSpec(odd); ok {
		t.Error("machineSpec accepted an inexpressible cache size")
	}

	if wireFor("", nil, perfectEngine()) == nil {
		t.Error("perfect-RT engine must have a wire form")
	}
	for _, rt := range rtConfigs() {
		if wireFor("", nil, rt.cfg) == nil {
			t.Errorf("RT config %s must have a wire form", rt.name)
		}
	}
	zeroPen := perfectEngine()
	zeroPen.MissPenalty = 0 // resolves to the default 30 server-side
	if wireFor("", nil, zeroPen) != nil {
		t.Error("a zero miss penalty does not round-trip and must have no wire form")
	}
}
