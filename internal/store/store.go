// Package store is a crash-safe, disk-backed content-addressed store: the
// persistent tier under the serving layer's trace cache. Entries are
// immutable byte payloads addressed by a SHA-256 key (the functional-
// equivalence-class key of internal/server), so restarts are warm and a
// future fleet can fetch captures from peers' disks — but only because the
// tier is torn-write-proof:
//
//   - writes are atomic: payloads land in a temp file, are fsynced, and are
//     renamed into place, with a directory fsync sealing the rename — a
//     crash at any point leaves either the complete entry or none, plus
//     temp debris the next startup removes;
//   - entries are self-describing (magic, version, key, payload length,
//     payload SHA-256; see entry.go), so a torn or bit-flipped entry is
//     detected on read and served as a miss, never as data;
//   - a startup scrub validates every entry and quarantines the corrupt
//     ones into quarantine/ for post-mortem instead of deleting evidence
//     or — worse — serving it.
//
// All filesystem access goes through the FS interface (fs.go); the
// deterministic fault wrapper in internal/fault proves these invariants
// under injected torn writes, ENOSPC, read EIO and crash-at-point. Disk
// trouble is reported as errors distinct from misses so the caller can
// degrade to memory-only serving and probe for recovery (Probe).
package store

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	entrySuffix   = ".dse"
	tmpPrefix     = "tmp-"
	quarantineDir = "quarantine"
	probeName     = "probe.tmp"
)

// Store is one on-disk content-addressed store. All methods are safe for
// concurrent use; disk IO is serialized under one mutex (the serving layer
// single-flights captures per key above this, so the store is never the
// concurrency hot spot).
type Store struct {
	fs     FS
	dir    string
	budget int64

	mu    sync.Mutex
	idx   map[Key]*entryInfo
	bytes int64
	gen   uint64
	seq   uint64 // temp/quarantine name uniquifier

	hits        atomic.Int64
	misses      atomic.Int64
	ioErrors    atomic.Int64
	quarantined atomic.Int64
	evictions   atomic.Int64
	writes      atomic.Int64
}

// entryInfo is the in-memory index record of one on-disk entry.
type entryInfo struct {
	size int64  // on-disk bytes (header + payload)
	gen  uint64 // LRU clock
}

// ScrubReport summarizes the startup scrub.
type ScrubReport struct {
	Entries     int   // valid entries adopted
	Bytes       int64 // their total on-disk size
	Quarantined int   // corrupt entries moved to quarantine/
	TmpRemoved  int   // atomic-write debris removed
}

// Open scrubs dir and returns a store over the entries that survived. Every
// *.dse file is fully validated (header, length, payload hash, name/key
// binding); failures are moved to dir/quarantine and counted, temp files
// from interrupted writes are removed, and anything else is left alone.
// budget bounds the on-disk bytes; entries beyond it are LRU-evicted.
func Open(fsys FS, dir string, budget int64) (*Store, ScrubReport, error) {
	var rep ScrubReport
	if budget <= 0 {
		return nil, rep, fmt.Errorf("store: budget must be positive, got %d", budget)
	}
	s := &Store{fs: fsys, dir: dir, budget: budget, idx: make(map[Key]*entryInfo)}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, rep, fmt.Errorf("store: %w", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, quarantineDir)); err != nil {
		return nil, rep, fmt.Errorf("store: %w", err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, rep, fmt.Errorf("store: scrub: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // deterministic adoption order seeds the LRU clock
	for _, name := range names {
		path := filepath.Join(dir, name)
		switch {
		case strings.HasPrefix(name, tmpPrefix) || name == probeName:
			// Debris of an interrupted atomic write: never renamed into
			// place, so by construction never served; just remove it.
			if err := fsys.Remove(path); err != nil {
				return nil, rep, fmt.Errorf("store: scrub: %w", err)
			}
			rep.TmpRemoved++
		case strings.HasSuffix(name, entrySuffix):
			key, size, err := s.scrubEntry(name)
			switch {
			case err == nil:
				s.gen++
				s.idx[key] = &entryInfo{size: size, gen: s.gen}
				s.bytes += size
				rep.Entries++
				rep.Bytes += size
			case errors.Is(err, ErrCorrupt):
				if qerr := s.quarantine(name); qerr != nil {
					return nil, rep, fmt.Errorf("store: scrub: %w", qerr)
				}
				rep.Quarantined++
				s.quarantined.Add(1)
			default:
				return nil, rep, fmt.Errorf("store: scrub %s: %w", name, err)
			}
		}
	}
	s.evictLocked(nil)
	return s, rep, nil
}

// scrubEntry fully validates one named entry file: readable, decodable, and
// stored under the hex rendering of its own header key.
func (s *Store) scrubEntry(name string) (Key, int64, error) {
	var key Key
	raw, err := hex.DecodeString(strings.TrimSuffix(name, entrySuffix))
	if err != nil || len(raw) != len(key) {
		return key, 0, corruptf("file name %q is not a hex key", name)
	}
	copy(key[:], raw)
	data, err := s.readFile(filepath.Join(s.dir, name))
	if err != nil {
		return key, 0, err
	}
	if _, err := DecodeEntryFor(key, data); err != nil {
		return key, 0, err
	}
	return key, int64(len(data)), nil
}

// Get returns the payload stored under key. ok=false with a nil error is a
// miss (absent, or detected-corrupt and quarantined); a non-nil error means
// the disk itself is failing (EIO, ...) and the caller should degrade.
func (s *Store) Get(key Key) (payload []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := s.idx[key]
	if info == nil {
		s.misses.Add(1)
		return nil, false, nil
	}
	name := entryName(key)
	data, err := s.readFile(filepath.Join(s.dir, name))
	if err != nil {
		s.ioErrors.Add(1)
		return nil, false, fmt.Errorf("store: get: %w", err)
	}
	p, err := DecodeEntryFor(key, data)
	if err != nil {
		// Corruption that appeared after the scrub (bit rot, operator
		// damage): quarantine it and serve a miss — never the bytes.
		delete(s.idx, key)
		s.bytes -= info.size
		if qerr := s.quarantine(name); qerr != nil {
			s.ioErrors.Add(1)
			return nil, false, fmt.Errorf("store: quarantining %s: %w", name, qerr)
		}
		s.quarantined.Add(1)
		s.misses.Add(1)
		return nil, false, nil
	}
	s.gen++
	info.gen = s.gen
	s.hits.Add(1)
	return p, true, nil
}

// Put durably stores payload under key: temp file, fsync, rename, directory
// fsync. On any error the temp file is removed best-effort and the store's
// on-disk state is unchanged — a failed Put never leaves a servable partial
// entry. Storing over an existing key replaces it atomically.
func (s *Store) Put(key Key, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data := EncodeEntry(key, payload)
	s.seq++
	tmp := filepath.Join(s.dir, fmt.Sprintf("%s%016x", tmpPrefix, s.seq))
	if err := s.writeFile(tmp, data); err != nil {
		s.ioErrors.Add(1)
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: put: %w", err)
	}
	final := filepath.Join(s.dir, entryName(key))
	if err := s.fs.Rename(tmp, final); err != nil {
		s.ioErrors.Add(1)
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		// The rename happened; only its durability across a crash is in
		// doubt. Surface the disk trouble without forgetting the entry.
		s.adopt(key, int64(len(data)))
		s.ioErrors.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	s.adopt(key, int64(len(data)))
	s.writes.Add(1)
	return nil
}

// adopt indexes a just-renamed entry and evicts to budget.
func (s *Store) adopt(key Key, size int64) {
	if old := s.idx[key]; old != nil {
		s.bytes -= old.size
	}
	s.gen++
	info := &entryInfo{size: size, gen: s.gen}
	s.idx[key] = info
	s.bytes += size
	s.evictLocked(info)
}

// evictLocked LRU-evicts entries other than keep until the budget holds.
func (s *Store) evictLocked(keep *entryInfo) {
	for s.bytes > s.budget {
		var victim Key
		var ve *entryInfo
		vg := ^uint64(0)
		for k, e := range s.idx {
			if e != keep && e.gen < vg {
				vg, victim, ve = e.gen, k, e
			}
		}
		if ve == nil {
			return
		}
		delete(s.idx, victim)
		s.bytes -= ve.size
		if err := s.fs.Remove(filepath.Join(s.dir, entryName(victim))); err != nil {
			// The entry is already forgotten; the file becomes debris the
			// next scrub revalidates or removes.
			s.ioErrors.Add(1)
		}
		s.evictions.Add(1)
	}
}

// Probe exercises the disk end to end — write, fsync, read back, verify,
// remove — and reports whether it is healthy. The serving layer calls this
// from its recovery loop while degraded.
func (s *Store) Probe() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var key Key
	copy(key[:], "store-probe")
	want := EncodeEntry(key, []byte("probe"))
	path := filepath.Join(s.dir, probeName)
	if err := s.writeFile(path, want); err != nil {
		_ = s.fs.Remove(path)
		return fmt.Errorf("store: probe: %w", err)
	}
	got, err := s.readFile(path)
	if err != nil {
		_ = s.fs.Remove(path)
		return fmt.Errorf("store: probe: %w", err)
	}
	if err := s.fs.Remove(path); err != nil {
		return fmt.Errorf("store: probe: %w", err)
	}
	if string(got) != string(want) {
		return fmt.Errorf("store: probe: read back %d bytes, want %d", len(got), len(want))
	}
	return nil
}

// quarantine moves a corrupt entry aside for post-mortem, never deleting
// the evidence. Called with s.mu held (or during single-threaded scrub).
func (s *Store) quarantine(name string) error {
	s.seq++
	dst := filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d", name, s.seq))
	return s.fs.Rename(filepath.Join(s.dir, name), dst)
}

// writeFile creates path with data and fsyncs it.
func (s *Store) writeFile(path string, data []byte) error {
	f, err := s.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readFile reads all of path.
func (s *Store) readFile(path string) ([]byte, error) {
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return data, err
}

// entryName renders key's file name.
func entryName(key Key) string { return hex.EncodeToString(key[:]) + entrySuffix }

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Writes      int64 `json:"writes"`
	Evictions   int64 `json:"evictions"`
	Quarantined int64 `json:"quarantined"`
	IOErrors    int64 `json:"io_errors"`
}

// StatsSnapshot returns the current counters.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	entries, bytes := len(s.idx), s.bytes
	s.mu.Unlock()
	return Stats{
		Entries:     entries,
		Bytes:       bytes,
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		Evictions:   s.evictions.Load(),
		Quarantined: s.quarantined.Load(),
		IOErrors:    s.ioErrors.Load(),
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }
