package store_test

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"repro/internal/store"
)

// FuzzStoreEntry asserts the on-disk decoder's robustness contract on
// hostile bytes: a typed error or a valid decode, never a panic — and never
// a false-valid entry, which here means any accepted payload must re-encode
// under its decoded key to exactly the input (the format admits no
// ambiguity a bit-flip could hide in).
func FuzzStoreEntry(f *testing.F) {
	key := store.Key(sha256.Sum256([]byte("seed")))
	f.Add(store.EncodeEntry(key, []byte("payload")))
	f.Add(store.EncodeEntry(key, nil))
	f.Add([]byte("DSE1 garbage"))
	f.Add([]byte{})
	long := store.EncodeEntry(key, bytes.Repeat([]byte("x"), 4096))
	f.Add(long)
	f.Add(long[:100])
	f.Fuzz(func(t *testing.T, data []byte) {
		gotKey, payload, err := store.DecodeEntry(data)
		if err != nil {
			return
		}
		if !bytes.Equal(store.EncodeEntry(gotKey, payload), data) {
			t.Fatalf("decoded entry does not re-encode to its input (%d bytes)", len(data))
		}
		if _, err := store.DecodeEntryFor(gotKey, data); err != nil {
			t.Fatalf("self-keyed decode rejected: %v", err)
		}
	})
}
