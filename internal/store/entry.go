package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Key is the content address of one entry: the SHA-256 the serving layer
// computes over every stream-changing job dimension.
type Key [32]byte

// On-disk entry layout (little-endian), self-describing so a torn,
// truncated or bit-flipped file is detected on read instead of served:
//
//	offset size  field
//	0      4     magic "DSE1"
//	4      4     version (1)
//	8      32    key (must match the name the entry is stored under)
//	40     8     payload length
//	48     32    SHA-256 of the payload bytes
//	80     n     payload
//
// The payload hash is the integrity check; the header copy of the key binds
// the entry to its content address, so a byte-perfect entry renamed over a
// different key is still rejected rather than served as that key.
const (
	entryMagic   = "DSE1"
	entryVersion = 1
	headerSize   = 4 + 4 + 32 + 8 + 32

	// maxPayload bounds one entry; decode rejects larger claims before
	// allocating.
	maxPayload = 1 << 32
)

// ErrCorrupt is the sentinel all on-disk corruption classifications match
// via errors.Is: torn writes, bad magic, version/key/length/hash mismatches.
var ErrCorrupt = errors.New("store: corrupt entry")

// CorruptError describes one rejected entry. It wraps ErrCorrupt.
type CorruptError struct {
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string { return "store: corrupt entry: " + e.Reason }

// Is matches the ErrCorrupt sentinel.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// EncodeEntry renders the self-describing on-disk form of payload under key.
func EncodeEntry(key Key, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf[0:4], entryMagic)
	binary.LittleEndian.PutUint32(buf[4:8], entryVersion)
	copy(buf[8:40], key[:])
	binary.LittleEndian.PutUint64(buf[40:48], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[48:80], sum[:])
	copy(buf[headerSize:], payload)
	return buf
}

// DecodeEntry validates data as one complete on-disk entry and returns its
// key and payload. Every defect — short file, bad magic, unknown version,
// length or hash mismatch — is a *CorruptError (matching ErrCorrupt), never
// a panic and never a false-valid entry: the payload is returned only when
// its SHA-256 matches the header. The payload aliases data.
func DecodeEntry(data []byte) (Key, []byte, error) {
	var key Key
	if len(data) < headerSize {
		return key, nil, corruptf("%d bytes, shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[0:4]) != entryMagic {
		return key, nil, corruptf("bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != entryVersion {
		return key, nil, corruptf("unknown version %d", v)
	}
	copy(key[:], data[8:40])
	n := binary.LittleEndian.Uint64(data[40:48])
	if n > maxPayload {
		return key, nil, corruptf("payload length %d exceeds the %d limit", n, int64(maxPayload))
	}
	if uint64(len(data)-headerSize) != n {
		return key, nil, corruptf("payload length %d, header claims %d (torn write?)", len(data)-headerSize, n)
	}
	payload := data[headerSize:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[48:80]) {
		return key, nil, corruptf("payload hash mismatch")
	}
	return key, payload, nil
}

// DecodeEntryFor is DecodeEntry plus the binding check: the entry's header
// key must equal want, so an entry stored under the wrong name (or renamed
// over another key) is corrupt, not a hit.
func DecodeEntryFor(want Key, data []byte) ([]byte, error) {
	key, payload, err := DecodeEntry(data)
	if err != nil {
		return nil, err
	}
	if key != want {
		return nil, corruptf("entry key %x does not match its address %x", key[:4], want[:4])
	}
	return payload, nil
}
