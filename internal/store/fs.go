package store

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// FS is the narrow filesystem surface the store runs on. Every byte the
// store reads or writes goes through one of these methods, so a fault
// wrapper (internal/fault.FS) can interpose torn writes, ENOSPC, read EIO
// and crash-at-point deterministically, and the store's crash-safety
// invariants can be proven against injected disk failure instead of
// trusted.
type FS interface {
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Stat describes name.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir flushes the directory entry metadata of dir (the rename
	// durability barrier: without it a crash can forget a completed rename).
	SyncDir(dir string) error
}

// File is one open store file.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// OSFS is the real-disk FS.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// Stat implements FS.
func (OSFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS by fsyncing the directory file descriptor (the
// POSIX idiom that makes a completed rename durable).
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
