package store_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/store"
)

func keyOf(s string) store.Key { return store.Key(sha256.Sum256([]byte(s))) }

func openT(t *testing.T, fsys store.FS, dir string, budget int64) (*store.Store, store.ScrubReport) {
	t.Helper()
	st, rep, err := store.Open(fsys, dir, budget)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, rep
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, store.OSFS{}, dir, 1<<20)
	key, payload := keyOf("a"), []byte("hello persistent world")
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(key)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = (%q, %v, %v), want payload back", got, ok, err)
	}
	if _, ok, err := st.Get(keyOf("absent")); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v, want clean miss", ok, err)
	}
	s := st.StatsSnapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Writes != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 write / 1 entry", s)
	}
}

func TestReopenIsWarm(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, store.OSFS{}, dir, 1<<20)
	key, payload := keyOf("warm"), []byte("survives restarts")
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	st2, rep := openT(t, store.OSFS{}, dir, 1<<20)
	if rep.Entries != 1 || rep.Quarantined != 0 {
		t.Fatalf("scrub report %+v, want 1 clean entry", rep)
	}
	got, ok, err := st2.Get(key)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("warm Get = (%q, %v, %v)", got, ok, err)
	}
}

// TestScrubQuarantinesCorruption plants every corruption class the entry
// format must catch and requires the scrub to quarantine each — and to
// keep, not touch, the valid entry.
func TestScrubQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, store.OSFS{}, dir, 1<<20)
	key, payload := keyOf("good"), []byte("good payload")
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	var goodName string
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".dse") {
			goodName = e.Name()
		}
	}
	good, err := os.ReadFile(filepath.Join(dir, goodName))
	if err != nil {
		t.Fatal(err)
	}

	// Bit flip in the payload.
	flipped := bytes.Clone(good)
	flipped[len(flipped)-1] ^= 0x40
	writeAs := func(k store.Key, data []byte) {
		name := hex.EncodeToString(k[:]) + ".dse"
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeAs(keyOf("flipped"), flipped)
	// Torn: truncated mid-payload.
	writeAs(keyOf("torn"), good[:len(good)-4])
	// Wrong address: a byte-perfect entry stored under another key.
	writeAs(keyOf("misfiled"), good)
	// Garbage magic.
	writeAs(keyOf("garbage"), []byte("not an entry at all"))
	// Atomic-write debris.
	if err := os.WriteFile(filepath.Join(dir, "tmp-00000000deadbeef"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rep := openT(t, store.OSFS{}, dir, 1<<20)
	if rep.Entries != 1 || rep.Quarantined != 4 || rep.TmpRemoved != 1 {
		t.Fatalf("scrub report %+v, want 1 entry / 4 quarantined / 1 tmp removed", rep)
	}
	got, ok, err := st2.Get(key)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("valid entry lost by scrub: (%q, %v, %v)", got, ok, err)
	}
	// The evidence moved to quarantine/, not deleted.
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qents) != 4 {
		t.Fatalf("quarantine holds %d files (err %v), want 4", len(qents), err)
	}
	// None of the corrupt keys are servable.
	for _, k := range []string{"flipped", "torn", "misfiled", "garbage"} {
		if _, ok, err := st2.Get(keyOf(k)); ok || err != nil {
			t.Fatalf("corrupt key %q: ok=%v err=%v, want clean miss", k, ok, err)
		}
	}
}

// TestGetQuarantinesPostScrubCorruption damages an entry after adoption:
// the read path must detect it, quarantine it, and answer a miss.
func TestGetQuarantinesPostScrubCorruption(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, store.OSFS{}, dir, 1<<20)
	key := keyOf("rot")
	if err := st.Put(key, []byte("will rot")); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".dse") {
			path := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(path)
			data[len(data)-1] ^= 1
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, ok, err := st.Get(key)
	if ok || err != nil || got != nil {
		t.Fatalf("bit-rotted Get = (%v, %v, %v), want clean miss", got, ok, err)
	}
	if s := st.StatsSnapshot(); s.Quarantined != 1 || s.Entries != 0 {
		t.Fatalf("stats %+v, want the entry quarantined and dropped", s)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	// Each entry is 80 (header) + 100 bytes; budget of 400 holds two.
	st, _ := openT(t, store.OSFS{}, dir, 400)
	for _, k := range []string{"a", "b", "c"} {
		if err := st.Put(keyOf(k), payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := st.Get(keyOf("a")); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok, err := st.Get(keyOf(k)); !ok || err != nil {
			t.Fatalf("recent entry %q evicted (ok=%v err=%v)", k, ok, err)
		}
	}
	s := st.StatsSnapshot()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction / 2 entries", s)
	}
	// A reopen over the evicted state adopts exactly the survivors.
	st2, rep := openT(t, store.OSFS{}, dir, 400)
	if rep.Entries != 2 || rep.Quarantined != 0 {
		t.Fatalf("post-eviction scrub %+v, want 2 entries", rep)
	}
	if got := st2.StatsSnapshot(); got.Bytes != s.Bytes {
		t.Fatalf("reopened bytes %d != live bytes %d", got.Bytes, s.Bytes)
	}
}

// TestTornWriteNeverServed runs the atomic-write protocol over a disk that
// silently drops bytes past a torn point (acknowledging writes and syncs it
// does not honor). Whether the Put appears to succeed or not, a Get (and a
// rescrub) must never return the torn payload.
func TestTornWriteNeverServed(t *testing.T) {
	for _, torn := range []int64{1, 50, 85, 120} {
		dir := t.TempDir()
		ffs := fault.NewFS(store.OSFS{}, fault.FSPlan{
			TornAfterBytes: torn, ENOSPCAtWrite: -1, EIOAtRead: -1, CrashAtOp: -1,
		})
		st, _ := openT(t, ffs, dir, 1<<20)
		key, payload := keyOf("torn"), bytes.Repeat([]byte("p"), 64)
		_ = st.Put(key, payload) // may "succeed": the disk lies
		if got, ok, err := st.Get(key); ok && err == nil && !bytes.Equal(got, payload) {
			t.Fatalf("torn@%d: Get served corrupt payload %q", torn, got)
		}
		// Restart over the real dir: the scrub must quarantine or the entry
		// must be whole; either way a hit is byte-exact.
		st2, _ := openT(t, store.OSFS{}, dir, 1<<20)
		if got, ok, err := st2.Get(key); ok && err == nil && !bytes.Equal(got, payload) {
			t.Fatalf("torn@%d: post-restart Get served corrupt payload %q", torn, got)
		}
	}
}

// TestCrashAtEveryPoint steps the crash point through the entire Put
// operation sequence: after each simulated crash a fresh store over the
// real directory must scrub to a consistent state and never serve a
// partial entry.
func TestCrashAtEveryPoint(t *testing.T) {
	key, payload := keyOf("crash"), bytes.Repeat([]byte("c"), 256)
	// Measure the op count of a clean open + Put.
	probe := fault.NewFS(store.OSFS{}, fault.DisarmedPlan())
	st, _ := openT(t, probe, t.TempDir(), 1<<20)
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	totalOps := probe.Ops()

	for at := int64(0); at < totalOps; at++ {
		dir := t.TempDir()
		ffs := fault.NewFS(store.OSFS{}, fault.FSPlan{
			ENOSPCAtWrite: -1, EIOAtRead: -1, CrashAtOp: at,
		})
		stF, _, err := store.Open(ffs, dir, 1<<20)
		perr := errors.New("crashed before Put")
		if err == nil {
			perr = stF.Put(key, payload)
		}
		// Restart on the real disk: the scrub must find either the complete
		// entry or none — never a corrupt final one.
		st2, rep := openT(t, store.OSFS{}, dir, 1<<20)
		if rep.Quarantined != 0 {
			t.Fatalf("crash@%d: atomic protocol left %d corrupt final entries", at, rep.Quarantined)
		}
		got, ok, gerr := st2.Get(key)
		if ok && (gerr != nil || !bytes.Equal(got, payload)) {
			t.Fatalf("crash@%d: served entry not byte-exact (err %v)", at, gerr)
		}
		if perr == nil && !ok {
			t.Fatalf("crash@%d: Put reported success but the entry did not survive", at)
		}
	}
}

// TestDiskErrorsSurfaceDistinctFromMisses: EIO on read and ENOSPC on write
// must come back as errors (degrade signal), not as silent misses.
func TestDiskErrorsSurfaceDistinctFromMisses(t *testing.T) {
	dir := t.TempDir()
	ffs := fault.NewFS(store.OSFS{}, fault.DisarmedPlan())
	st, _ := openT(t, ffs, dir, 1<<20)
	key := keyOf("x")
	if err := st.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ffs.FailReads(fault.ErrInjectedEIO)
	if _, ok, err := st.Get(key); ok || !errors.Is(err, fault.ErrInjectedEIO) {
		t.Fatalf("EIO Get: ok=%v err=%v, want injected EIO error", ok, err)
	}
	ffs.Heal()
	ffs.FailWrites(fault.ErrInjectedENOSPC)
	if err := st.Put(keyOf("y"), []byte("nope")); !errors.Is(err, fault.ErrInjectedENOSPC) {
		t.Fatalf("ENOSPC Put: %v, want injected ENOSPC error", err)
	}
	ffs.Heal()
	if err := st.Probe(); err != nil {
		t.Fatalf("healed probe: %v", err)
	}
	ffs.FailReads(fault.ErrInjectedEIO)
	if err := st.Probe(); err == nil {
		t.Fatal("probe over a failing disk reported healthy")
	}
	// The store itself keeps serving what it can after errors.
	ffs.Heal()
	if got, ok, err := st.Get(key); !ok || err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("post-recovery Get = (%q, %v, %v)", got, ok, err)
	}
}

func TestEncodeDecodeEntry(t *testing.T) {
	key, payload := keyOf("codec"), []byte("payload bytes")
	data := store.EncodeEntry(key, payload)
	gotKey, gotPayload, err := store.DecodeEntry(data)
	if err != nil || gotKey != key || !bytes.Equal(gotPayload, payload) {
		t.Fatalf("round trip: key=%x payload=%q err=%v", gotKey[:4], gotPayload, err)
	}
	if _, err := store.DecodeEntryFor(keyOf("other"), data); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("key binding: %v, want ErrCorrupt", err)
	}
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x01
		if _, err := store.DecodeEntryFor(key, mut); err == nil {
			t.Fatalf("single-bit flip at byte %d decoded as valid", i)
		}
	}
	for _, cut := range []int{0, 4, 79, len(data) - 1} {
		if _, _, err := store.DecodeEntry(data[:cut]); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("truncation at %d: %v, want ErrCorrupt", cut, err)
		}
	}
}
