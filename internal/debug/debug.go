// Package debug is a machine-level debugger built the way paper §3.1
// argues debuggers should be built on DISE: assertions and watchpoints are
// transparent productions expanded into the stream — no single-stepping
// from another process, full pipeline speed between hits, and hit points
// reported with precise PC:DISEPC state. The debugger itself is an
// interactive command loop over the functional machine.
package debug

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/acf/monitor"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

// Debugger drives one machine interactively.
type Debugger struct {
	prog *program.Program
	m    *emu.Machine
	ctrl *core.Controller

	watch     *core.Production
	watchAddr uint64

	history []emu.DynInst // ring of recent dynamic instructions
	histPos int
	steps   int64
}

const historyDepth = 16

// New creates a debugger for prog.
func New(prog *program.Program) *Debugger {
	d := &Debugger{prog: prog, history: make([]emu.DynInst, 0, historyDepth)}
	d.reset()
	return d
}

func (d *Debugger) reset() {
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	d.ctrl = core.NewController(cfg)
	d.m = emu.New(d.prog)
	d.m.SetExpander(d.ctrl.Engine())
	d.history = d.history[:0]
	d.steps = 0
	d.watch = nil
	if d.watchAddr != 0 {
		d.installWatch(d.watchAddr)
	}
}

func (d *Debugger) installWatch(addr uint64) {
	prods, err := monitor.InstallWatchpoint(d.ctrl, d.m, addr)
	if err == nil && len(prods) > 0 {
		d.watch = prods[0]
		d.watchAddr = addr
	}
}

// Machine exposes the underlying machine (for tests and tooling).
func (d *Debugger) Machine() *emu.Machine { return d.m }

// step executes one dynamic instruction, recording history.
func (d *Debugger) step() (emu.DynInst, bool) {
	di, ok := d.m.Step()
	if ok {
		if len(d.history) < historyDepth {
			d.history = append(d.history, di)
		} else {
			d.history[d.histPos] = di
			d.histPos = (d.histPos + 1) % historyDepth
		}
		d.steps++
	}
	return di, ok
}

// Run executes the command stream from r, writing responses to w, until
// "q", EOF, or a read error. The command language:
//
//	s [n]      step n dynamic instructions (default 1), printing each
//	c          continue until halt or watchpoint
//	r          print PC:DISEPC, interesting registers, dedicated registers
//	m <addr> [n]   dump n quadwords of data memory (default 4)
//	w <addr>   set the store watchpoint (replaces any previous one)
//	w -        clear the watchpoint
//	t          print the last few executed instructions
//	d          disassemble around the current PC
//	restart    reset the machine (watchpoint persists)
//	q          quit
func (d *Debugger) Run(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	fmt.Fprintf(w, "disedbg: %s (%d units); type s/c/r/m/w/t/d/restart/q\n", d.prog.Name, d.prog.NumUnits())
	for {
		fmt.Fprint(w, "(dbg) ")
		if !sc.Scan() {
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "q", "quit":
			return nil
		case "s", "step":
			n := 1
			if len(fields) > 1 {
				n, _ = strconv.Atoi(fields[1])
			}
			d.cmdStep(w, n)
		case "c", "continue":
			d.cmdContinue(w)
		case "r", "regs":
			d.cmdRegs(w)
		case "m", "mem":
			d.cmdMem(w, fields[1:])
		case "w", "watch":
			d.cmdWatch(w, fields[1:])
		case "t", "trace":
			d.cmdTrace(w)
		case "d", "disasm":
			d.cmdDisasm(w)
		case "restart":
			d.reset()
			fmt.Fprintln(w, "restarted")
		default:
			fmt.Fprintf(w, "unknown command %q\n", fields[0])
		}
	}
}

func (d *Debugger) cmdStep(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		di, ok := d.step()
		if !ok {
			d.report(w)
			return
		}
		src := "mem"
		if di.FromRT {
			src = " rt"
		}
		fmt.Fprintf(w, "%10x:%-2d %s  %v\n", di.PC, di.DISEPC, src, di.Inst)
	}
}

func (d *Debugger) cmdContinue(w io.Writer) {
	for {
		if _, ok := d.step(); !ok {
			d.report(w)
			return
		}
	}
}

func (d *Debugger) report(w io.Writer) {
	switch err := d.m.Err(); {
	case err == nil:
		fmt.Fprintf(w, "halted cleanly after %d dynamic instructions\n", d.steps)
	case errors.Is(err, emu.ErrACFViolation) && d.watch != nil:
		fmt.Fprintf(w, "watchpoint hit: store to %#x blocked before execution (after %d insts)\n",
			d.watchAddr, d.steps)
	default:
		fmt.Fprintf(w, "stopped: %v\n", err)
	}
}

func (d *Debugger) cmdRegs(w io.Writer) {
	fmt.Fprintf(w, "PC=%#x DISEPC=%d steps=%d\n", d.m.PC(), d.m.DISEPC(), d.steps)
	for r := isa.Reg(1); r < 20; r++ {
		if v := d.m.Reg(r); v != 0 {
			fmt.Fprintf(w, "  %-4s %#x\n", r, v)
		}
	}
	fmt.Fprintf(w, "  %-4s %#x\n", isa.RegSP, d.m.Reg(isa.RegSP))
	for k := 0; k < isa.NumDiseRegs; k++ {
		r := isa.RegDR0 + isa.Reg(k)
		if v := d.m.Reg(r); v != 0 {
			fmt.Fprintf(w, "  %-4s %#x (dedicated)\n", r, v)
		}
	}
}

func (d *Debugger) cmdMem(w io.Writer, args []string) {
	if len(args) == 0 {
		fmt.Fprintln(w, "usage: m <addr> [quadwords]")
		return
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), 16, 64)
	if err != nil {
		fmt.Fprintf(w, "bad address %q (hex expected)\n", args[0])
		return
	}
	n := 4
	if len(args) > 1 {
		n, _ = strconv.Atoi(args[1])
	}
	for i := 0; i < n; i++ {
		a := addr + uint64(i*8)
		fmt.Fprintf(w, "  %010x: %016x\n", a, d.m.Mem().Read64(a))
	}
}

func (d *Debugger) cmdWatch(w io.Writer, args []string) {
	if len(args) == 0 {
		if d.watch == nil {
			fmt.Fprintln(w, "no watchpoint")
		} else {
			fmt.Fprintf(w, "watching stores to %#x\n", d.watchAddr)
		}
		return
	}
	if args[0] == "-" {
		if d.watch != nil {
			d.ctrl.Deactivate(d.watch)
			d.watch = nil
			d.watchAddr = 0
		}
		fmt.Fprintln(w, "watchpoint cleared")
		return
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(args[0], "0x"), 16, 64)
	if err != nil {
		fmt.Fprintf(w, "bad address %q (hex expected)\n", args[0])
		return
	}
	if d.watch != nil {
		d.ctrl.Deactivate(d.watch)
		d.watch = nil
	}
	d.installWatch(addr)
	fmt.Fprintf(w, "watching stores to %#x (inlined check, no single-stepping)\n", addr)
}

func (d *Debugger) cmdTrace(w io.Writer) {
	n := len(d.history)
	for i := 0; i < n; i++ {
		di := d.history[(d.histPos+i)%n]
		fmt.Fprintf(w, "  %10x:%-2d %v\n", di.PC, di.DISEPC, di.Inst)
	}
}

func (d *Debugger) cmdDisasm(w io.Writer) {
	cur := d.prog.UnitAt(d.m.PC())
	lo := cur - 2
	if lo < 0 {
		lo = 0
	}
	hi := cur + 4
	if hi > d.prog.NumUnits() {
		hi = d.prog.NumUnits()
	}
	for u := lo; u < hi; u++ {
		marker := "  "
		if u == cur {
			marker = "=>"
		}
		fmt.Fprintf(w, "%s %6d %08x  %s\n", marker, u, d.prog.Addr(u), asm.FormatInst(d.prog.Text[u]))
	}
}
