package debug

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/program"
)

const prog = `
.entry main
.data
arr: .space 128
.text
main:
    la r1, arr
    li r2, 5
loop:
    stq r2, 0(r1)
    addqi r1, 8, r1
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

func runCmds(t *testing.T, cmds string) string {
	t.Helper()
	d := New(asm.MustAssemble("dbg", prog))
	var out strings.Builder
	if err := d.Run(strings.NewReader(cmds), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestStepAndRegs(t *testing.T) {
	out := runCmds(t, "s 3\nr\nq\n")
	if !strings.Contains(out, "ldah r1") {
		t.Errorf("step output missing first instruction:\n%s", out)
	}
	if !strings.Contains(out, "r2") || !strings.Contains(out, "PC=") {
		t.Errorf("regs output incomplete:\n%s", out)
	}
}

func TestContinueToHalt(t *testing.T) {
	out := runCmds(t, "c\nq\n")
	if !strings.Contains(out, "halted cleanly") {
		t.Errorf("continue output:\n%s", out)
	}
}

func TestWatchpointStopsBeforeStore(t *testing.T) {
	// Watch the third array slot; the debugger must stop with the slot
	// still unwritten while earlier slots are written.
	addr := program.DataBase + 16
	cmds := fmt.Sprintf("w %x\nc\nm %x 3\nq\n", addr, program.DataBase)
	out := runCmds(t, cmds)
	if !strings.Contains(out, "watchpoint hit") {
		t.Fatalf("no watchpoint hit:\n%s", out)
	}
	// Memory dump: slot0 = 5, slot1 = 4, slot2 = 0 (blocked).
	if !strings.Contains(out, "0000000000000005") || !strings.Contains(out, "0000000000000004") {
		t.Errorf("earlier stores missing from dump:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.Contains(l, fmt.Sprintf("%010x", addr)) && !strings.Contains(l, "0000000000000000") {
			t.Errorf("watched slot was written:\n%s", out)
		}
	}
}

func TestWatchClearAndRestart(t *testing.T) {
	addr := program.DataBase + 16
	cmds := fmt.Sprintf("w %x\nw -\nc\nq\n", addr)
	out := runCmds(t, cmds)
	if !strings.Contains(out, "watchpoint cleared") || !strings.Contains(out, "halted cleanly") {
		t.Errorf("clearing the watchpoint should let the program finish:\n%s", out)
	}
	// Restart keeps the watchpoint armed.
	cmds = fmt.Sprintf("w %x\nc\nrestart\nc\nq\n", addr)
	out = runCmds(t, cmds)
	if strings.Count(out, "watchpoint hit") != 2 {
		t.Errorf("watchpoint should survive restart:\n%s", out)
	}
}

func TestTraceAndDisasm(t *testing.T) {
	out := runCmds(t, "s 6\nt\nd\nq\n")
	if !strings.Contains(out, "stq r2") {
		t.Errorf("trace missing executed store:\n%s", out)
	}
	if !strings.Contains(out, "=>") {
		t.Errorf("disasm missing current-PC marker:\n%s", out)
	}
}

func TestBadCommands(t *testing.T) {
	out := runCmds(t, "bogus\nm zz\nw zz\nm\nq\n")
	for _, want := range []string{"unknown command", "bad address", "usage: m"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
