package load

import (
	"context"
	"testing"
	"time"

	"repro/internal/server"
)

// TestBatchMixAccounting drives a mixed job/batch closed loop and checks
// the cell-based ledger: every cell of every arrival lands in a bucket,
// batch cell 0 shares its golden with the single-job entry (pinning
// batch/single byte-identity under load), and the server's own counters
// agree.
func TestBatchMixAccounting(t *testing.T) {
	c, _ := newLoadTarget(t, server.Config{Workers: 2, QueueDepth: 16})
	mix := mustMix(t, "quickstart:2,quickstart@4:1")
	rep, err := Run(context.Background(), Options{
		Client:      c,
		Mix:         mix,
		Concurrency: 3,
		MaxRequests: 18, // 18 arrivals over the 3-slot schedule: 12 singles + 6 batches
		Duration:    30 * time.Second,
		Golden:      true,
	})
	if err != nil {
		t.Fatalf("Run: %v\nreport: %+v", err, rep)
	}
	// 12 single cells + 6 batches × 4 cells = 36 cells issued.
	if rep.Issued != 36 || rep.Batches != 6 {
		t.Errorf("issued %d batches %d, want 36 cells over 6 batches", rep.Issued, rep.Batches)
	}
	if !rep.Accounted() {
		t.Errorf("accounting hole: %+v", rep)
	}
	if rep.Done != 36 || len(rep.Failed) != 0 {
		t.Errorf("done %d failed %v, want all 36 cells done", rep.Done, rep.Failed)
	}
	if rep.GoldenViolations != 0 {
		t.Errorf("golden violations: %d", rep.GoldenViolations)
	}
	// Latency samples are per submission (arrival), not per cell.
	if rep.Latency.Count != 18 {
		t.Errorf("latency samples = %d, want 18 arrivals", rep.Latency.Count)
	}
	sp, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sp.Batches.Batches != 6 || sp.Batches.Cells != 24 || sp.Batches.CellsDone != 24 {
		t.Errorf("server batch counters %+v, want 6 batches / 24 cells done", sp.Batches)
	}
	if sp.Jobs.Done != rep.Done {
		t.Errorf("server done=%d, client done=%d", sp.Jobs.Done, rep.Done)
	}
	if sp.Batches.Cells != sp.Batches.CellsDone+sp.Batches.CellsTrapped+sp.Batches.CellsAborted {
		t.Errorf("server cell ledger does not reconcile: %+v", sp.Batches)
	}
}

// TestOpenLoopShedsBatchInCells pins the shed-accounting fix: an open loop
// over a pure batch mix must shed in cell multiples, never one unit per
// dropped batch arrival.
func TestOpenLoopShedsBatchInCells(t *testing.T) {
	c, _ := newLoadTarget(t, server.Config{Workers: 1, QueueDepth: 4})
	spin := server.SubmitRequest{
		Asm:         ".entry main\nmain:\n    br zero, main\n",
		BudgetInsts: 1 << 40,
	}
	mix := []Entry{{Name: "spin@8", Weight: 1, Cells: 8, Req: &spin}}
	rep, err := Run(context.Background(), Options{
		Client:         c,
		Mix:            mix,
		Mode:           "open",
		RPS:            500,
		MaxOutstanding: 1,
		Duration:       250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Shed == 0 {
		t.Fatal("expected shedding at 500 RPS against one outstanding slot")
	}
	if rep.Shed%8 != 0 {
		t.Errorf("shed = %d, want a multiple of the 8-cell batch size", rep.Shed)
	}
	if rep.Issued%8 != 0 {
		t.Errorf("issued = %d, want a multiple of the 8-cell batch size", rep.Issued)
	}
	if !rep.Accounted() {
		t.Errorf("accounting hole: %+v", rep)
	}
}

// TestParseMixBatchSyntax covers the name[@cells][:weight] grammar.
func TestParseMixBatchSyntax(t *testing.T) {
	mix, err := ParseMix("quickstart@16:3,gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].Cells != 16 || mix[0].Weight != 3 || mix[0].Name != "quickstart@16" {
		t.Errorf("mix = %+v", mix)
	}
	if mix[1].Cells != 0 {
		t.Errorf("plain entry got cells: %+v", mix[1])
	}
	for _, bad := range []string{"quickstart@1", "quickstart@0", "quickstart@x", "nosuch@4"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestGoldenKeySharing pins the cross-path identity convention: cell 0 of
// a batch keys like the single job, later cells get their own slots.
func TestGoldenKeySharing(t *testing.T) {
	if k := goldenKey("quickstart@4", 1, 0); k != "quickstart#1" {
		t.Errorf("cell 0 key = %q, want the single-job key", k)
	}
	if k := goldenKey("quickstart", 1, 0); k != "quickstart#1" {
		t.Errorf("single key = %q", k)
	}
	if k := goldenKey("quickstart@4", 0, 2); k != "quickstart#0/c2" {
		t.Errorf("sweep cell key = %q", k)
	}
}
