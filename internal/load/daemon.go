package load

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// Daemon is a disesrvd child process under harness control: built from the
// working tree, bound to an ephemeral port, health-checked, and signalable.
// It is how the smoke harnesses (cmd/servesmoke, cmd/loadsmoke) get a real
// server — process boundary, SIGTERM handling and all — instead of an
// in-process handler.
type Daemon struct {
	Base string // http://host:port

	cmd    *exec.Cmd
	exited chan error
}

// BuildAndStart compiles ./cmd/disesrvd into dir, starts it on an ephemeral
// port with the extra args appended, and waits until /healthz passes.
func BuildAndStart(dir string, args ...string) (*Daemon, error) {
	bin := filepath.Join(dir, "disesrvd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/disesrvd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return nil, fmt.Errorf("building disesrvd: %w", err)
	}
	return StartDaemon(bin, dir, args...)
}

// StartDaemon starts an already-built disesrvd binary on an ephemeral port
// (writing its bound address under dir) and waits for readiness. Transient
// startup races — the kernel recycling the ephemeral port before the
// health check, a briefly unwritable addr file on overloaded CI — get up
// to three attempts before the failure is real; the readiness deadline
// derives from the shared smoke budget (SMOKE_BUDGET) like every other
// smoke-phase timeout.
func StartDaemon(bin, dir string, args ...string) (*Daemon, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		d, err := startDaemonOnce(bin, dir, args...)
		if err == nil {
			return d, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("after 3 attempts: %w", lastErr)
}

func startDaemonOnce(bin, dir string, args ...string) (*Daemon, error) {
	addrFile := filepath.Join(dir, fmt.Sprintf("addr-%d", os.Getpid()))
	os.Remove(addrFile)
	argv := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...)
	cmd := exec.Command(bin, argv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting disesrvd: %w", err)
	}
	d := &Daemon{cmd: cmd, exited: make(chan error, 1)}
	go func() { d.exited <- cmd.Wait() }()

	ready := Scale(0.125)
	deadline := time.Now().Add(ready)
	for time.Now().Before(deadline) {
		select {
		case err := <-d.exited:
			return nil, fmt.Errorf("disesrvd exited during startup: %v", err)
		default:
		}
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			base := "http://" + string(addr)
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					d.Base = base
					return d, nil
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.Kill()
	return nil, fmt.Errorf("disesrvd not ready within %v", ready)
}

// Signal forwards sig to the daemon (use syscall.SIGTERM to start a drain).
func (d *Daemon) Signal(sig os.Signal) error { return d.cmd.Process.Signal(sig) }

// WaitExit blocks until the daemon exits and returns its exit error, or an
// error if it is still running after the timeout.
func (d *Daemon) WaitExit(timeout time.Duration) error {
	select {
	case err := <-d.exited:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("disesrvd did not exit within %v", timeout)
	}
}

// Kill force-terminates the daemon; safe to call after a clean exit.
func (d *Daemon) Kill() { _ = d.cmd.Process.Kill() }
