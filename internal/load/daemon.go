package load

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// daemonSeq distinguishes the addr files of daemons started by one harness
// process (a fleet smoke starts several).
var daemonSeq atomic.Int64

// Daemon is a disesrvd child process under harness control: built from the
// working tree, bound to an ephemeral port, health-checked, and signalable.
// It is how the smoke harnesses (cmd/servesmoke, cmd/loadsmoke) get a real
// server — process boundary, SIGTERM handling and all — instead of an
// in-process handler.
type Daemon struct {
	Base   string // http://host:port
	Addr   string // host:port as bound
	NodeID string // fleet node id from the addr file, "" outside a fleet

	cmd    *exec.Cmd
	exited chan error
}

// BuildAndStart compiles ./cmd/disesrvd into dir, starts it on an ephemeral
// port with the extra args appended, and waits until /healthz passes.
func BuildAndStart(dir string, args ...string) (*Daemon, error) {
	bin := filepath.Join(dir, "disesrvd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/disesrvd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return nil, fmt.Errorf("building disesrvd: %w", err)
	}
	return StartDaemon(bin, dir, args...)
}

// StartDaemon starts an already-built disesrvd binary on an ephemeral port
// (writing its bound address under dir) and waits for readiness. Transient
// startup races — the kernel recycling the ephemeral port before the
// health check, a briefly unwritable addr file on overloaded CI — get up
// to three attempts before the failure is real; the readiness deadline
// derives from the shared smoke budget (SMOKE_BUDGET) like every other
// smoke-phase timeout.
func StartDaemon(bin, dir string, args ...string) (*Daemon, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		d, err := startDaemonOnce(bin, dir, args...)
		if err == nil {
			return d, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("after 3 attempts: %w", lastErr)
}

func startDaemonOnce(bin, dir string, args ...string) (*Daemon, error) {
	addrFile := filepath.Join(dir, fmt.Sprintf("addr-%d-%d", os.Getpid(), daemonSeq.Add(1)))
	os.Remove(addrFile)
	argv := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...)
	cmd := exec.Command(bin, argv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting disesrvd: %w", err)
	}
	d := &Daemon{cmd: cmd, exited: make(chan error, 1)}
	go func() { d.exited <- cmd.Wait() }()

	ready := Scale(0.125)
	deadline := time.Now().Add(ready)
	for time.Now().Before(deadline) {
		select {
		case err := <-d.exited:
			return nil, fmt.Errorf("disesrvd exited during startup: %v", err)
		default:
		}
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			// The addr file is "addr" for a standalone daemon or
			// "node-id addr" inside a fleet; the address is the last field.
			fields := strings.Fields(string(raw))
			if len(fields) == 0 {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			addr := fields[len(fields)-1]
			base := "http://" + addr
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					d.Base, d.Addr = base, addr
					if len(fields) > 1 {
						d.NodeID = fields[0]
					}
					return d, nil
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.Kill()
	return nil, fmt.Errorf("disesrvd not ready within %v", ready)
}

// Signal forwards sig to the daemon (use syscall.SIGTERM to start a drain).
func (d *Daemon) Signal(sig os.Signal) error { return d.cmd.Process.Signal(sig) }

// WaitExit blocks until the daemon exits and returns its exit error, or an
// error if it is still running after the timeout.
func (d *Daemon) WaitExit(timeout time.Duration) error {
	select {
	case err := <-d.exited:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("disesrvd did not exit within %v", timeout)
	}
}

// Kill force-terminates the daemon; safe to call after a clean exit.
func (d *Daemon) Kill() { _ = d.cmd.Process.Kill() }
