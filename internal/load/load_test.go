package load

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

func newLoadTarget(t *testing.T, cfg server.Config) (*client.Client, *server.Server) {
	t.Helper()
	cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Drain() })
	return client.New(ts.URL, client.WithHTTPClient(ts.Client()),
		client.WithRetryPolicy(client.RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			// Ignore server Retry-After floors in tests: retry near-instantly.
			Jitter: func(time.Duration) time.Duration { return time.Millisecond },
		})), srv
}

func TestClosedLoopGoldenAndAccounting(t *testing.T) {
	c, _ := newLoadTarget(t, server.Config{Workers: 2, QueueDepth: 16})
	mix, err := ParseMix("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Options{
		Client:      c,
		Mix:         mix,
		Concurrency: 4,
		MaxRequests: 40,
		Duration:    30 * time.Second,
		Classes:     2,
		Golden:      true,
	})
	if err != nil {
		t.Fatalf("Run: %v\nreport: %+v", err, rep)
	}
	if rep.Issued != 40 || rep.Done != 40 {
		t.Errorf("issued %d done %d, want 40/40 (failed: %v)", rep.Issued, rep.Done, rep.Failed)
	}
	if !rep.Accounted() {
		t.Errorf("accounting hole: %+v", rep)
	}
	// Two cache classes → at most two misses (single-flight dedupes the rest).
	if rep.CacheHits < 38 {
		t.Errorf("cache hits = %d, want >= 38 with 2 classes over 40 jobs", rep.CacheHits)
	}
	if rep.GoldenViolations != 0 {
		t.Errorf("golden violations: %d", rep.GoldenViolations)
	}
	if rep.Latency.Count != 40 {
		t.Errorf("latency samples = %d, want 40", rep.Latency.Count)
	}
	if rep.P50US <= 0 || rep.P99US < rep.P50US {
		t.Errorf("suspicious percentiles p50=%d p99=%d", rep.P50US, rep.P99US)
	}
}

func TestOpenLoopShedsInsteadOfPiling(t *testing.T) {
	c, _ := newLoadTarget(t, server.Config{Workers: 1, QueueDepth: 4})
	// A spinning program holds the single worker for its full timeout, so the
	// two outstanding slots stay occupied and later arrivals must shed.
	spin := []Entry{{Name: "spin", Weight: 1, Req: &server.SubmitRequest{
		Asm:         ".entry main\nmain:\n    br zero, main\n",
		BudgetInsts: 1 << 40,
		TimeoutMS:   150,
	}}}
	rep, err := Run(context.Background(), Options{
		Client:         c,
		Mix:            spin,
		Mode:           "open",
		RPS:            500,
		MaxOutstanding: 2,
		Duration:       300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Issued == 0 {
		t.Fatal("open loop issued nothing")
	}
	if !rep.Accounted() {
		t.Errorf("accounting hole: %+v", rep)
	}
	// 500 RPS against 2 outstanding slots must shed at least once.
	if rep.Shed == 0 {
		t.Errorf("shed = 0, expected arrivals beyond the outstanding cap to be shed")
	}
}

func TestOverflowRetriesThenRecovers(t *testing.T) {
	// A tiny server under a wide closed loop: overflow 429s must be absorbed
	// by SDK retries, ending with every job done and zero failures.
	c, _ := newLoadTarget(t, server.Config{Workers: 1, QueueDepth: 1})
	rep, err := Run(context.Background(), Options{
		Client:      c,
		Mix:         mustMix(t, "quickstart"),
		Concurrency: 8,
		MaxRequests: 64,
		Duration:    30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v\nreport: %+v", err, rep)
	}
	if rep.Done != 64 || len(rep.Failed) != 0 {
		t.Errorf("done %d failed %v, want 64 done and no failures", rep.Done, rep.Failed)
	}
	sp, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Server-side accounting must agree with the client ledger.
	if sp.Jobs.Done != rep.Done {
		t.Errorf("server done=%d, client done=%d", sp.Jobs.Done, rep.Done)
	}
}

func TestParseMixAndBenchJSON(t *testing.T) {
	mix, err := ParseMix("quickstart:4, gzip:1 ,mcf+count:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].Weight != 4 || mix[2].Weight != 2 {
		t.Errorf("mix = %+v", mix)
	}
	if mix[2].Req.Prods == "" {
		t.Error("mcf+count entry lost its production set")
	}
	for _, bad := range []string{"", "nosuchbench", "gzip:0", "gzip:x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}

	rep := &Report{Mode: "closed", Issued: 10, Done: 9,
		Failed: map[string]int64{"overloaded": 1}, P50US: 100, P99US: 900}
	recs := rep.BenchJSON("load")
	byName := map[string]float64{}
	for _, r := range recs {
		byName[r.Name] = r.NsOp
	}
	if byName["load/p50"] != 100_000 || byName["load/p99"] != 900_000 {
		t.Errorf("latency rows wrong: %v", byName)
	}
	if byName["load/count/done"] != 9 || byName["load/count/failed/overloaded"] != 1 {
		t.Errorf("counter rows wrong: %v", byName)
	}
	if _, err := WriteBenchJSON(recs); err != nil {
		t.Fatal(err)
	}
}

func TestGoldensDetectDivergence(t *testing.T) {
	g := NewGoldens()
	if !g.Check("k#0", []byte(`{"cycles":1}`)) {
		t.Error("first sight must establish the golden")
	}
	if !g.Check("k#0", []byte(`{"cycles":1}`)) {
		t.Error("identical bytes flagged as divergent")
	}
	if g.Check("k#0", []byte(`{"cycles":2}`)) {
		t.Error("divergent bytes not flagged")
	}
	if g.Len() != 1 {
		t.Errorf("len = %d, want 1", g.Len())
	}
}

func mustMix(t *testing.T, spec string) []Entry {
	t.Helper()
	mix, err := ParseMix(spec)
	if err != nil {
		t.Fatal(err)
	}
	return mix
}
