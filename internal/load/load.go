// Package load is the disesrvd load harness: it drives one server with a
// weighted mix of simulation jobs through the typed SDK (internal/client)
// and reports outcome counts and latency percentiles.
//
// Two generator shapes are supported. The closed loop keeps a fixed number
// of workers each waiting for their previous response before issuing the
// next job — it measures the server at its own pace and hides queueing
// delay (coordinated omission). The open loop issues jobs on a fixed
// arrival schedule (target RPS) regardless of completions — latency then
// includes every queueing effect, which is what a production SLO sees; a
// bounded outstanding-request cap sheds arrivals (counted, never silently
// dropped) instead of growing without bound when the server falls behind.
//
// Cache behaviour is controllable: every logical job can be fanned out over
// N distinct trace-cache classes (budget salting — the instruction budget
// is part of the server's cache key, and programs that halt before the
// budget produce identical results under any salt), so a mix can dial in
// anything from 100% hits to one miss per request.
//
// With golden checking on, the harness records the first result body per
// (entry, class) and asserts every later response is byte-identical — the
// serving layer's cache-contract made an invariant under load. Every issued
// job lands in exactly one Report bucket (done, trapped, or a failure
// class), so "no job was lost" is checkable by arithmetic.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/workload"
)

// defaultBudget bounds benchmark jobs in the default mix: long enough to
// exercise the simulator, short enough that one job is milliseconds.
const defaultBudget = 200_000

// Entry is one weighted element of the job mix. Cells > 1 turns the entry
// into a batch: each arrival submits one POST /v1/batches sweep of Cells
// timing configurations over the entry's request (cell 0 is the request
// verbatim; later cells vary machine width over sweepWidths), and all
// accounting — issued, done, shed, goldens — is per cell.
type Entry struct {
	Name   string
	Weight int
	Cells  int // 0 or 1 = single job; > 1 = batch of this many cells
	Req    *server.SubmitRequest
}

// units is the number of accounting units one arrival of e carries.
func (e *Entry) units() int64 {
	if e.Cells > 1 {
		return int64(e.Cells)
	}
	return 1
}

// sweepWidths supplies the timing variation for batch cells past the
// first: cell j uses width sweepWidths[(j-1) % len]. Pure timing knobs, so
// every cell stays in the entry's functional-equivalence class.
var sweepWidths = []int{8, 2, 1, 6, 16, 3, 12, 5}

// NamedEntry resolves a mix-entry name: "quickstart" (the smoke program and
// its store-counting productions), a built-in benchmark name ("gzip", ...),
// or "<bench>+count" (the benchmark with the store-counting production set
// installed, so the DISE engine is on the served path).
func NamedEntry(name string) (Entry, error) {
	e := Entry{Name: name, Weight: 1}
	bench, withProds := strings.CutSuffix(name, "+count")
	switch {
	case name == "quickstart":
		e.Req = server.SmokeRequest()
	default:
		if _, ok := workload.ProfileByName(bench); !ok {
			return Entry{}, fmt.Errorf("unknown mix entry %q (quickstart, a bench name, or <bench>+count; benches: %s)",
				name, strings.Join(workload.Names(), ", "))
		}
		e.Req = &server.SubmitRequest{Bench: bench, BudgetInsts: defaultBudget}
		if withProds {
			e.Req.Prods = server.SmokeProds
		}
	}
	return e, nil
}

// ParseMix parses a mix spec: comma-separated name[@cells][:weight] parts,
// weight defaulting to 1 and cells to a single job —
// "quickstart:4,gzip:1,mcf+count:2,quickstart@16:1" mixes single jobs with
// a 16-cell batch sweep.
func ParseMix(spec string) ([]Entry, error) {
	var mix []Entry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, hasW := strings.Cut(part, ":")
		name, cstr, hasC := strings.Cut(name, "@")
		e, err := NamedEntry(name)
		if err != nil {
			return nil, err
		}
		if hasC {
			cells, err := strconv.Atoi(cstr)
			if err != nil || cells < 2 {
				return nil, fmt.Errorf("bad batch cell count %q for %q (need >= 2)", cstr, name)
			}
			e.Cells = cells
			e.Name = fmt.Sprintf("%s@%d", name, cells)
		}
		if hasW {
			w, err := strconv.Atoi(wstr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad weight %q for %q", wstr, name)
			}
			e.Weight = w
		}
		mix = append(mix, e)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix spec")
	}
	return mix, nil
}

// DefaultMix is the stock workload: mostly the quickstart job (fast,
// DISE-expanded), plus one plain and one production-carrying benchmark.
func DefaultMix() []Entry {
	q, _ := NamedEntry("quickstart")
	q.Weight = 4
	g, _ := NamedEntry("gzip")
	m, _ := NamedEntry("mcf+count")
	return []Entry{q, g, m}
}

// Goldens is the byte-identity ledger: the first result body seen per key
// becomes that key's golden, and every later body must match it. Share one
// across phases to assert identity across a server's whole lifetime
// (including across a drain/restart).
type Goldens struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewGoldens returns an empty ledger.
func NewGoldens() *Goldens { return &Goldens{m: make(map[string][]byte)} }

// Check records body under key on first sight and reports whether body
// matches the recorded golden.
func (g *Goldens) Check(key string, body []byte) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	want, ok := g.m[key]
	if !ok {
		g.m[key] = bytes.Clone(body)
		return true
	}
	return bytes.Equal(want, body)
}

// Len returns the number of recorded goldens.
func (g *Goldens) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// Options parameterizes one load run.
type Options struct {
	// Client submits the jobs: a single-node *client.Client or a routing
	// *client.FleetClient — the harness is agnostic.
	Client client.API
	Mix    []Entry // default DefaultMix()

	Mode        string  // "closed" (default) or "open"
	Concurrency int     // closed-loop workers (default 8)
	RPS         float64 // open-loop arrival rate (default 20)
	// MaxOutstanding caps concurrently outstanding open-loop requests
	// (default 256); arrivals beyond it are shed and counted.
	MaxOutstanding int

	Duration    time.Duration // wall-clock bound (default 5s)
	MaxRequests int64         // stop after this many issued jobs (0 = duration-bound)

	// Classes fans each entry out over N trace-cache classes by salting the
	// instruction budget (default 1: every repeat hits the cache).
	Classes int
	// Golden asserts byte-identity of every response against the first one
	// seen for its (entry, class); violations are counted and fail the run.
	Golden  bool
	Goldens *Goldens // optional shared ledger; nil allocates a fresh one
	Seed    int64    // shuffles the weighted schedule
}

func (o Options) withDefaults() (Options, error) {
	if o.Client == nil {
		return o, fmt.Errorf("load: Options.Client is required")
	}
	if len(o.Mix) == 0 {
		o.Mix = DefaultMix()
	}
	switch o.Mode {
	case "":
		o.Mode = "closed"
	case "closed", "open":
	default:
		return o, fmt.Errorf("load: mode %q is not closed or open", o.Mode)
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.RPS <= 0 {
		o.RPS = 20
	}
	if o.MaxOutstanding <= 0 {
		o.MaxOutstanding = 256
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Classes <= 0 {
		o.Classes = 1
	}
	if o.Golden && o.Goldens == nil {
		o.Goldens = NewGoldens()
	}
	return o, nil
}

// Report is the outcome of one load run. All work is accounted in cells: a
// single job is one cell, a batch arrival of K cells is K. Every issued
// cell is counted in exactly one of Done, Trapped, or a Failed class, so
// Issued == Done + Trapped + sum(Failed) always holds (see Accounted) —
// for pure-job, pure-batch, and mixed runs alike. Shed likewise counts the
// cells an open-loop arrival would have carried, so issued + shed covers
// every cell of work the schedule generated.
type Report struct {
	Mode       string `json:"mode"`
	DurationMS int64  `json:"duration_ms"`

	Issued    int64            `json:"issued"`
	Batches   int64            `json:"batches"` // batch submissions among the issued arrivals
	Done      int64            `json:"done"`
	Trapped   int64            `json:"trapped"`
	CacheHits int64            `json:"cache_hits"`
	Shed      int64            `json:"shed"` // open-loop cells dropped at the outstanding cap
	Failed    map[string]int64 `json:"failed,omitempty"`

	GoldenViolations int64 `json:"golden_violations"`

	// Latency of successful submissions (incl. retries), µs.
	P50US   int64              `json:"p50_us"`
	P90US   int64              `json:"p90_us"`
	P99US   int64              `json:"p99_us"`
	MeanUS  float64            `json:"mean_us"`
	Latency stats.HistSnapshot `json:"latency_us"`
}

// Accounted reports the no-lost-jobs identity: every issued job landed in
// exactly one terminal bucket.
func (r *Report) Accounted() bool {
	sum := r.Done + r.Trapped
	for _, n := range r.Failed {
		sum += n
	}
	return sum == r.Issued
}

// Summary renders the one-line human form.
func (r *Report) Summary() string {
	var fails []string
	for k, n := range r.Failed {
		fails = append(fails, fmt.Sprintf("%s:%d", k, n))
	}
	sort.Strings(fails)
	s := fmt.Sprintf("%s loop: issued %d, done %d, trapped %d, cache hits %d, p50 %dµs, p99 %dµs",
		r.Mode, r.Issued, r.Done, r.Trapped, r.CacheHits, r.P50US, r.P99US)
	if r.Batches > 0 {
		s += fmt.Sprintf(", batches %d", r.Batches)
	}
	if len(fails) > 0 {
		s += ", failed " + strings.Join(fails, " ")
	}
	if r.Shed > 0 {
		s += fmt.Sprintf(", shed %d", r.Shed)
	}
	return s
}

// BenchRecord is one row of the benchjson-compatible report: the same JSON
// shape cmd/benchjson reads, so two load reports diff with
// `benchjson -compare OLD.json NEW.json` exactly like perf receipts.
// Latency rows carry nanoseconds in NsOp; counter rows carry the count.
type BenchRecord struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// BenchJSON renders the report as a benchjson-compatible record list.
// Latency percentiles become <prefix>/p50 etc. (ns/op), outcome counters
// become <prefix>/count/<bucket> with the count in ns_op.
func (r *Report) BenchJSON(prefix string) []BenchRecord {
	runs := int(r.Latency.Count)
	recs := []BenchRecord{
		{Name: prefix + "/p50", Runs: runs, NsOp: float64(r.P50US) * 1e3},
		{Name: prefix + "/p90", Runs: runs, NsOp: float64(r.P90US) * 1e3},
		{Name: prefix + "/p99", Runs: runs, NsOp: float64(r.P99US) * 1e3},
		{Name: prefix + "/mean", Runs: runs, NsOp: r.MeanUS * 1e3},
		{Name: prefix + "/count/issued", Runs: 1, NsOp: float64(r.Issued)},
		{Name: prefix + "/count/done", Runs: 1, NsOp: float64(r.Done)},
		{Name: prefix + "/count/trapped", Runs: 1, NsOp: float64(r.Trapped)},
		{Name: prefix + "/count/cache_hits", Runs: 1, NsOp: float64(r.CacheHits)},
	}
	if r.Batches > 0 {
		recs = append(recs, BenchRecord{Name: prefix + "/count/batches", Runs: 1, NsOp: float64(r.Batches)})
	}
	var fails []string
	for k := range r.Failed {
		fails = append(fails, k)
	}
	sort.Strings(fails)
	for _, k := range fails {
		recs = append(recs, BenchRecord{Name: prefix + "/count/failed/" + k, Runs: 1, NsOp: float64(r.Failed[k])})
	}
	return recs
}

// WriteBenchJSON marshals records in the exact on-disk form benchjson
// expects (indented array, trailing newline).
func WriteBenchJSON(recs []BenchRecord) ([]byte, error) {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// run carries the mutable state of one Run.
type run struct {
	o        Options
	schedule []*Entry
	seq      atomic.Int64 // issued-arrival sequence (a batch is one arrival)
	hist     stats.Histogram

	issued, batches                        atomic.Int64 // cells / batch arrivals
	done, trapped, cached, shed, goldenBad atomic.Int64

	mu     sync.Mutex
	failed map[string]int64
}

// Run drives the server per o and reports. The returned error is non-nil
// only for harness-level failures (bad options, golden violations, a run
// with zero successes); individual job failures are data in the Report.
func Run(ctx context.Context, o Options) (*Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &run{o: o, failed: make(map[string]int64)}
	for i := range o.Mix {
		for range o.Mix[i].Weight {
			r.schedule = append(r.schedule, &o.Mix[i])
		}
	}
	rand.New(rand.NewSource(o.Seed)).Shuffle(len(r.schedule), func(i, j int) {
		r.schedule[i], r.schedule[j] = r.schedule[j], r.schedule[i]
	})

	start := time.Now()
	ctx, cancel := context.WithDeadline(ctx, start.Add(o.Duration))
	defer cancel()
	if o.Mode == "closed" {
		r.closedLoop(ctx)
	} else {
		r.openLoop(ctx)
	}
	rep := r.report(time.Since(start))

	if !rep.Accounted() {
		return rep, fmt.Errorf("load: accounting hole: issued %d != done %d + trapped %d + failed %v",
			rep.Issued, rep.Done, rep.Trapped, rep.Failed)
	}
	if rep.GoldenViolations > 0 {
		return rep, fmt.Errorf("load: %d responses diverged from their golden bytes", rep.GoldenViolations)
	}
	return rep, nil
}

func (r *run) closedLoop(ctx context.Context) {
	var wg sync.WaitGroup
	wg.Add(r.o.Concurrency)
	for range r.o.Concurrency {
		go func() {
			defer wg.Done()
			for {
				i := r.seq.Add(1) - 1
				if ctx.Err() != nil || (r.o.MaxRequests > 0 && i >= r.o.MaxRequests) {
					r.seq.Add(-1) // not issued
					return
				}
				r.runOne(ctx, i)
			}
		}()
	}
	wg.Wait()
}

func (r *run) openLoop(ctx context.Context) {
	interval := time.Duration(float64(time.Second) / r.o.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sem := make(chan struct{}, r.o.MaxOutstanding)
	var wg sync.WaitGroup
	for n := int64(0); r.o.MaxRequests == 0 || n < r.o.MaxRequests; n++ {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
		}
		select {
		case sem <- struct{}{}:
			i := r.seq.Add(1) - 1
			wg.Add(1)
			go func() {
				defer func() { <-sem; wg.Done() }()
				r.runOne(ctx, i)
			}()
		default:
			// Shed work is counted in cells: dropping a K-cell batch arrival
			// sheds K units, not one, so job and batch mixes stay comparable
			// and issued + shed covers the whole generated schedule. The
			// arrival is charged to the entry the next issued slot would take.
			r.shed.Add(r.schedule[r.seq.Load()%int64(len(r.schedule))].units())
		}
	}
	wg.Wait()
}

// runOne issues arrival i: picks its mix entry and cache class, submits
// (as a single job or a batch sweep) with retries, and files every cell in
// exactly one bucket.
func (r *run) runOne(ctx context.Context, i int64) {
	ent := r.schedule[i%int64(len(r.schedule))]
	r.issued.Add(ent.units())
	req := *ent.Req
	class := i % int64(r.o.Classes)
	if r.o.Classes > 1 {
		// Budget salting: distinct budgets are distinct cache keys, but any
		// program that halts before the smallest budget produces identical
		// result bytes under all of them.
		base := req.BudgetInsts
		if base == 0 {
			base = defaultBudget
		}
		req.BudgetInsts = base + class
	}
	if ent.Cells > 1 {
		r.runBatch(ctx, ent, &req, class)
		return
	}

	t0 := time.Now()
	resp, err := r.o.Client.Submit(ctx, &req)
	if err != nil {
		r.fail(err, 1)
		return
	}
	r.hist.Observe(time.Since(t0).Microseconds())
	if resp.Cached {
		r.cached.Add(1)
	}
	if resp.Outcome == "trapped" {
		r.trapped.Add(1)
	} else {
		r.done.Add(1)
	}
	if r.o.Golden && !r.o.Goldens.Check(goldenKey(ent.Name, class, 0), resp.Result) {
		r.goldenBad.Add(1)
	}
}

// runBatch issues one batch arrival: a Cells-wide sweep over base, cell 0
// verbatim and later cells varying machine width. Every cell lands in a
// bucket; aborted cells are classified by the batch's failure outcome.
func (r *run) runBatch(ctx context.Context, ent *Entry, base *server.SubmitRequest, class int64) {
	jobs := make([]server.SubmitRequest, ent.Cells)
	for j := range jobs {
		jobs[j] = *base
		if j > 0 {
			jobs[j].Machine.Width = sweepWidths[(j-1)%len(sweepWidths)]
		}
	}

	t0 := time.Now()
	cells, sum, err := r.o.Client.BatchCollect(ctx, &server.BatchRequest{Jobs: jobs})
	if err != nil && sum == nil && cells == nil {
		// Admission failed: no cell was ever accepted.
		r.fail(err, int64(ent.Cells))
		return
	}
	// Latency is one sample per batch: the sweep's wall clock, the number a
	// sweep-shaped client actually experiences.
	r.hist.Observe(time.Since(t0).Microseconds())
	r.batches.Add(1)

	landed := int64(0)
	for j, cell := range cells {
		if cell == nil {
			continue
		}
		landed++
		if cell.Outcome == "trapped" {
			r.trapped.Add(1)
		} else {
			r.done.Add(1)
		}
		if r.o.Golden && !r.o.Goldens.Check(goldenKey(ent.Name, class, j), cell.Result) {
			r.goldenBad.Add(1)
		}
	}
	if sum != nil && sum.Cache != "capture" {
		r.cached.Add(landed)
	}
	if missing := int64(ent.Cells) - landed; missing > 0 {
		// Aborted (or never-streamed) cells: classify by the batch error.
		r.fail(err, missing)
	}
}

// goldenKey names the byte-identity ledger slot for one response. Cell 0
// of a batch is the entry's request verbatim, so it shares its key with
// the single-job form of the same entry: the ledger then asserts
// batch/single byte-identity whenever a mix carries both.
func goldenKey(name string, class int64, cell int) string {
	name, _, _ = strings.Cut(name, "@")
	if cell == 0 {
		return fmt.Sprintf("%s#%d", name, class)
	}
	return fmt.Sprintf("%s#%d/c%d", name, class, cell)
}

// fail classifies a terminal submission failure covering n cells.
func (r *run) fail(err error, n int64) {
	class := "transport"
	switch {
	case errors.Is(err, client.ErrBatchAborted):
		class = batchAbortClass(err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		class = "cancelled"
	case errors.Is(err, ErrOverloaded):
		class = "overloaded"
	case errors.Is(err, ErrUnavailable):
		class = "unavailable"
	case errors.Is(err, client.ErrJobTimeout):
		class = "timeout"
	case errors.Is(err, client.ErrInvalid):
		class = "invalid"
	}
	r.mu.Lock()
	r.failed[class] += n
	r.mu.Unlock()
}

// batchAbortClass maps an ErrBatchAborted (which embeds the summary's
// outcome word) onto the single-job failure classes.
func batchAbortClass(err error) string {
	msg := err.Error()
	for _, class := range []string{"timeout", "unavailable", "cancelled"} {
		if strings.Contains(msg, "("+class+")") {
			return class
		}
	}
	return "cancelled"
}

// Failure sentinels re-exported so callers can classify without importing
// the SDK package alongside this one.
var (
	ErrOverloaded  = client.ErrOverloaded
	ErrUnavailable = client.ErrUnavailable
)

func (r *run) report(elapsed time.Duration) *Report {
	snap := r.hist.Snapshot()
	rep := &Report{
		Mode:             r.o.Mode,
		DurationMS:       elapsed.Milliseconds(),
		Issued:           r.issued.Load(),
		Batches:          r.batches.Load(),
		Done:             r.done.Load(),
		Trapped:          r.trapped.Load(),
		CacheHits:        r.cached.Load(),
		Shed:             r.shed.Load(),
		GoldenViolations: r.goldenBad.Load(),
		P50US:            snap.Quantile(0.50),
		P90US:            snap.Quantile(0.90),
		P99US:            snap.Quantile(0.99),
		MeanUS:           snap.Mean(),
		Latency:          snap,
	}
	r.mu.Lock()
	if len(r.failed) > 0 {
		rep.Failed = make(map[string]int64, len(r.failed))
		for k, v := range r.failed {
			rep.Failed[k] = v
		}
	}
	r.mu.Unlock()
	return rep
}
