package load

import (
	"os"
	"time"
)

// smokeBudgetEnv is the one knob that stretches every smoke-harness phase
// deadline together: a Go duration (e.g. "6m") for slow or heavily shared
// CI machines. Individual phases never read the environment themselves —
// they take fractions of this budget via Scale, so there is exactly one
// timeout to reason about when a smoke run flakes.
const smokeBudgetEnv = "SMOKE_BUDGET"

// SmokeBudget returns the wall-clock budget one smoke campaign may assume
// (default 2m), overridden by the SMOKE_BUDGET environment variable.
func SmokeBudget() time.Duration {
	if v := os.Getenv(smokeBudgetEnv); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return 2 * time.Minute
}

// Scale returns the given fraction of the smoke budget, floored at 100ms so
// a tiny budget cannot produce zero deadlines.
func Scale(f float64) time.Duration {
	d := time.Duration(f * float64(SmokeBudget()))
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}
