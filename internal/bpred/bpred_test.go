package bpred

import (
	"testing"

	"repro/internal/isa"
)

func TestCondLearnsBias(t *testing.T) {
	p := New()
	miss := 0
	for i := 0; i < 100; i++ {
		if !p.Cond(0x1000, true) {
			miss++
		}
	}
	// gshare sees a fresh history pattern for the first ~12 executions
	// (each indexes a cold counter); after warmup it must be near perfect.
	if miss > 20 {
		t.Errorf("always-taken branch missed %d times", miss)
	}
	p2 := New()
	for i := 0; i < 100; i++ {
		p2.Cond(0x1000, true)
	}
	warmMiss := 0
	for i := 0; i < 100; i++ {
		if !p2.Cond(0x1000, true) {
			warmMiss++
		}
	}
	if warmMiss > 0 {
		t.Errorf("warm always-taken branch missed %d times", warmMiss)
	}
}

func TestCondLearnsAlternating(t *testing.T) {
	// gshare with history should learn a strict alternation.
	p := New()
	miss := 0
	for i := 0; i < 400; i++ {
		if !p.Cond(0x1000, i%2 == 0) {
			miss++
		}
	}
	if miss > 40 {
		t.Errorf("alternating branch missed %d/400 times", miss)
	}
}

func TestBiasFilterProtectsHistory(t *testing.T) {
	// A never-taken "check" branch interleaved with a history-correlated
	// branch: with the bias filter, the check must not destroy the
	// correlated branch's accuracy.
	p := New()
	miss := 0
	outcome := false
	for i := 0; i < 600; i++ {
		p.Cond(0x2000, false) // the check: never taken
		outcome = !outcome    // strict alternation
		if ok := p.Cond(0x3000, outcome); !ok && i > 50 {
			miss++
		}
	}
	rate := float64(miss) / 550
	if rate > 0.1 {
		t.Errorf("filtered checks still ruined correlation: miss rate %.2f", rate)
	}
}

func TestCondStaticIgnoresHistory(t *testing.T) {
	p := New()
	// Biased conditional jumps predict well regardless of global history.
	for i := 0; i < 50; i++ {
		p.Cond(0x4000, i%3 == 0) // churn the GHR
		p.CondStatic(0x5000, false)
	}
	miss := p.Stats.CondMiss
	for i := 0; i < 100; i++ {
		if !p.CondStatic(0x5000, false) {
			t.Fatal("biased conditional jump mispredicted after warmup")
		}
	}
	_ = miss
}

func TestIndirectBTB(t *testing.T) {
	p := New()
	if p.Indirect(0x100, 0x8000) {
		t.Error("cold BTB should miss")
	}
	if !p.Indirect(0x100, 0x8000) {
		t.Error("warm same-target should hit")
	}
	if p.Indirect(0x100, 0x9000) {
		t.Error("changed target should miss")
	}
	if !p.Indirect(0x100, 0x9000) {
		t.Error("re-learned target should hit")
	}
}

func TestRASMatchesCallReturn(t *testing.T) {
	p := New()
	p.Call(0x100)
	p.Call(0x200)
	if !p.Return(0x200) || !p.Return(0x100) {
		t.Error("LIFO returns should hit")
	}
	if p.Return(0x300) {
		t.Error("empty RAS should miss")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	p := New()
	for i := 1; i <= rasDepth+4; i++ {
		p.Call(uint64(i) * 16)
	}
	// The newest rasDepth entries survive.
	for i := rasDepth + 4; i >= 5; i-- {
		if !p.Return(uint64(i) * 16) {
			t.Fatalf("entry %d should have survived", i)
		}
	}
	// Older ones were overwritten.
	if p.Return(4 * 16) {
		t.Error("overwritten entry should miss")
	}
}

// A call in the program's last unit has no fall-through instruction; its
// zero return address must not be pushed, or every enclosing return would
// pop one entry off-by-one and miss.
func TestCallLastUnitSkipsPush(t *testing.T) {
	p := New()
	p.Call(0x100)
	p.Call(0) // call with no successor: must not push
	if !p.Return(0x100) {
		t.Error("zero-retAddr call misaligned the RAS")
	}
	if p.Return(0x100) {
		t.Error("RAS should now be empty")
	}
	p2 := New()
	p2.Call(0)
	if p2.Return(0x200) {
		t.Error("RAS should still be empty after a zero-retAddr call")
	}
	if p2.Stats.RetMiss != 1 {
		t.Errorf("RetMiss = %d, want 1", p2.Stats.RetMiss)
	}
}

// Mispredict must feed the RAS the same way through the stream-fact entry
// point: a bsr with no successor unit predicts taken (correct) but pushes
// nothing.
func TestMispredictLastUnitCall(t *testing.T) {
	p := New()
	if p.Mispredict(isa.OpBSR, 0x1000, 0x100c, 0, true, true, false) {
		t.Error("direct call should never mispredict")
	}
	if !p.Mispredict(isa.OpRET, 0x100c, 0x1004, 0, true, true, false) {
		t.Error("return with an empty RAS must mispredict")
	}
	if p.Stats.RetMiss != 1 {
		t.Errorf("RetMiss = %d, want 1", p.Stats.RetMiss)
	}
}

func TestMispredictDiseBranch(t *testing.T) {
	p := New()
	if !p.Mispredict(isa.OpInvalid, 0, 0, 0, true, false, true) {
		t.Error("taken DISE branch is architecturally a misprediction")
	}
	if p.Mispredict(isa.OpInvalid, 0, 0, 0, false, false, true) {
		t.Error("not-taken DISE branch falls through for free")
	}
	// Unpredicted replacement branch: predicted-not-taken semantics.
	if !p.Mispredict(isa.OpBNE, 0, 0, 0, true, false, false) {
		t.Error("taken non-trigger replacement branch must redirect")
	}
	if p.Stats.Mispredicts() != 0 {
		t.Error("unpredicted branches must not touch predictor stats")
	}
}

func TestMispredictsTotal(t *testing.T) {
	s := Stats{CondMiss: 2, IndMiss: 3, RetMiss: 4}
	if s.Mispredicts() != 9 {
		t.Errorf("Mispredicts = %d", s.Mispredicts())
	}
}
