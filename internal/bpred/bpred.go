// Package bpred models the front-end branch prediction structures — a
// gshare conditional predictor, a BTB for indirect jumps, and a return
// address stack: the "aggressive branch speculation" of the paper's
// simulated MIPS-R10000-like core.
//
// It is a leaf package deliberately independent of the timing model so that
// both the live scheduling path (internal/cpu) and trace capture
// (internal/trace) can run the same predictor: prediction outcomes depend
// only on the dynamic instruction stream, never on timing, so a trace can
// record each instruction's mispredict verdict once and replay it for free.
package bpred

import (
	"repro/internal/isa"
)

const (
	gshareBits = 12
	rasDepth   = 16
)

// Predictor models the front-end branch prediction structures.
type Predictor struct {
	counters [1 << gshareBits]uint8 // 2-bit saturating counters
	bimodal  [1 << gshareBits]uint8 // history-free counters (cond. jumps)
	ghr      uint64

	btb map[uint64]uint64 // indirect-target cache

	ras    [rasDepth]uint64
	rasTop int
	rasLen int

	Stats Stats
}

// Stats counts prediction outcomes.
type Stats struct {
	CondBranches int64
	CondMiss     int64
	IndBranches  int64
	IndMiss      int64
	Returns      int64
	RetMiss      int64
}

// Mispredicts returns the total mispredictions of all kinds.
func (s *Stats) Mispredicts() int64 { return s.CondMiss + s.IndMiss + s.RetMiss }

// New returns an initialized predictor.
// proto is the initial predictor state — every counter weakly not-taken.
// New copies it in one memmove instead of re-running the 2×4096-entry
// initialization loop per predictor; timing harnesses construct one
// predictor per simulated run.
var proto = func() *Predictor {
	var p Predictor
	for i := range p.counters {
		p.counters[i] = 1 // weakly not-taken
		p.bimodal[i] = 1
	}
	return &p
}()

func New() *Predictor {
	p := new(Predictor)
	*p = *proto
	p.btb = make(map[uint64]uint64)
	return p
}

func (p *Predictor) condIndex(pc uint64) uint64 {
	return (pc>>2 ^ p.ghr) & (1<<gshareBits - 1)
}

// Cond predicts and updates a conditional branch; it returns whether the
// prediction was correct. A bias filter keeps strongly-not-taken branches
// (error checks, assertion exits) out of the global history register so
// they do not dilute gshare's correlation for the real branches — the
// standard filtering refinement of two-level predictors.
func (p *Predictor) Cond(pc uint64, taken bool) bool {
	p.Stats.CondBranches++
	bidx := pc >> 2 & (1<<gshareBits - 1)
	if p.bimodal[bidx] == 0 {
		// Filtered: predicted not-taken off the bias table alone.
		if taken {
			p.bimodal[bidx]++
			p.ghr = p.ghr<<1 | 1
			p.Stats.CondMiss++
			return false
		}
		return true
	}
	if !taken && p.bimodal[bidx] > 0 {
		p.bimodal[bidx]--
	}
	if taken && p.bimodal[bidx] < 3 {
		p.bimodal[bidx]++
	}
	idx := p.condIndex(pc)
	pred := p.counters[idx] >= 2
	if taken && p.counters[idx] < 3 {
		p.counters[idx]++
	}
	if !taken && p.counters[idx] > 0 {
		p.counters[idx]--
	}
	p.ghr = p.ghr<<1 | b2u64(taken)
	correct := pred == taken
	if !correct {
		p.Stats.CondMiss++
	}
	return correct
}

// Indirect predicts and updates an indirect jump/call through the BTB; it
// returns whether the predicted target matched.
func (p *Predictor) Indirect(pc, target uint64) bool {
	p.Stats.IndBranches++
	pred, ok := p.btb[pc]
	p.btb[pc] = target
	correct := ok && pred == target
	if !correct {
		p.Stats.IndMiss++
	}
	return correct
}

// Call pushes a return address onto the RAS. A zero retAddr marks a call
// with no fall-through instruction (the call sits in the program's last
// unit): there is nothing to return to, so nothing is pushed — pushing the
// bogus zero would misalign the stack for every enclosing return.
func (p *Predictor) Call(retAddr uint64) {
	if retAddr == 0 {
		return
	}
	p.rasTop = (p.rasTop + 1) % rasDepth
	p.ras[p.rasTop] = retAddr
	if p.rasLen < rasDepth {
		p.rasLen++
	}
}

// Return predicts a return through the RAS; it returns whether the popped
// address matched the actual target.
func (p *Predictor) Return(target uint64) bool {
	p.Stats.Returns++
	if p.rasLen == 0 {
		p.Stats.RetMiss++
		return false
	}
	pred := p.ras[p.rasTop]
	p.rasTop = (p.rasTop - 1 + rasDepth) % rasDepth
	p.rasLen--
	if pred != target {
		p.Stats.RetMiss++
		return false
	}
	return true
}

// CondStatic predicts a conditional *jump* (jeq/jne) through a history-free
// bimodal table: conditional indirects neither read nor shift the global
// history register, so ACF check jumps do not pollute gshare.
func (p *Predictor) CondStatic(pc uint64, taken bool) bool {
	idx := pc >> 2 & (1<<gshareBits - 1)
	pred := p.bimodal[idx] >= 2
	if taken && p.bimodal[idx] < 3 {
		p.bimodal[idx]++
	}
	if !taken && p.bimodal[idx] > 0 {
		p.bimodal[idx]--
	}
	p.Stats.CondBranches++
	correct := pred == taken
	if !correct {
		p.Stats.CondMiss++
	}
	return correct
}

// Mispredict runs the prediction structures for one dynamic control
// transfer — identified by scalar stream facts instead of a DynInst, so the
// emulator's translated fast path can resolve prediction without an import
// cycle — and reports whether fetch must redirect after it executes.
// retAddr is a call's fall-through byte address, used to prime the RAS (zero
// when the call has no successor instruction). The three arms mirror paper
// §2.2: a taken DISE branch is architecturally a misprediction; a
// non-predicted (non-trigger replacement) branch behaves as
// predicted-not-taken and never updates the predictor; everything else
// consults the predictor proper.
func (p *Predictor) Mispredict(op isa.Opcode, pc, target, retAddr uint64, taken, predicted, diseBranch bool) bool {
	switch {
	case diseBranch:
		return taken
	case !predicted:
		return taken
	}
	return !p.predictApp(op, pc, target, retAddr, taken)
}

// predictApp runs the appropriate predictor for an application-level branch
// and reports whether it was correct.
func (p *Predictor) predictApp(op isa.Opcode, pc, target, retAddr uint64, taken bool) bool {
	switch op {
	case isa.OpBR:
		return true // direct unconditional: always correct
	case isa.OpBSR:
		p.Call(retAddr)
		return true
	case isa.OpJSR:
		p.Call(retAddr)
		return p.Indirect(pc, target)
	case isa.OpJMP:
		return p.Indirect(pc, target)
	case isa.OpRET:
		return p.Return(target)
	case isa.OpJEQ, isa.OpJNE:
		// Conditional indirect: direction via a history-free bimodal
		// predictor, target via BTB when taken.
		ok := p.CondStatic(pc, taken)
		if taken {
			return ok && p.Indirect(pc, target)
		}
		return ok
	default:
		return p.Cond(pc, taken)
	}
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
