package cpu

import (
	"errors"
	"fmt"

	"repro/internal/emu"
)

// Diff compares two results field by field and returns one human-readable
// line per divergence (nil when the results are observably identical). The
// conformance harness uses it to pin live runs against trace replays: every
// counter the timing model reports is part of the contract, so a "mostly
// equal" pair is a failure with a precise name, not a pass.
func (r *Result) Diff(o *Result) []string {
	var d []string
	line := func(name string, a, b any) {
		d = append(d, fmt.Sprintf("%s: %v != %v", name, a, b))
	}
	if r.Cycles != o.Cycles {
		line("cycles", r.Cycles, o.Cycles)
	}
	if r.Insts != o.Insts {
		line("insts", r.Insts, o.Insts)
	}
	if r.AppInsts != o.AppInsts {
		line("app_insts", r.AppInsts, o.AppInsts)
	}
	if r.ICacheAccesses != o.ICacheAccesses {
		line("icache_accesses", r.ICacheAccesses, o.ICacheAccesses)
	}
	if r.ICacheMisses != o.ICacheMisses {
		line("icache_misses", r.ICacheMisses, o.ICacheMisses)
	}
	if r.DCacheAccesses != o.DCacheAccesses {
		line("dcache_accesses", r.DCacheAccesses, o.DCacheAccesses)
	}
	if r.DCacheMisses != o.DCacheMisses {
		line("dcache_misses", r.DCacheMisses, o.DCacheMisses)
	}
	if r.Mispredicts != o.Mispredicts {
		line("mispredicts", r.Mispredicts, o.Mispredicts)
	}
	if r.DiseStalls != o.DiseStalls {
		line("dise_stalls", r.DiseStalls, o.DiseStalls)
	}
	if r.ExpStalls != o.ExpStalls {
		line("exp_stalls", r.ExpStalls, o.ExpStalls)
	}
	if r.Emu != o.Emu {
		line("emu stats", fmt.Sprintf("%+v", r.Emu), fmt.Sprintf("%+v", o.Emu))
	}
	if r.Pred != o.Pred {
		line("pred stats", fmt.Sprintf("%+v", r.Pred), fmt.Sprintf("%+v", o.Pred))
	}
	if r.Output != o.Output {
		line("output", fmt.Sprintf("%q", r.Output), fmt.Sprintf("%q", o.Output))
	}
	if s := diffErr(r.Err, o.Err); s != "" {
		d = append(d, s)
	}
	return d
}

// diffErr compares two termination errors by trap classification when both
// are traps (kind, PC and DISE PC — the same identity the differential
// fuzzers assert) and by message otherwise.
func diffErr(a, b error) string {
	if (a == nil) != (b == nil) {
		return fmt.Sprintf("termination: %v != %v", a, b)
	}
	if a == nil {
		return ""
	}
	var ta, tb *emu.Trap
	if errors.As(a, &ta) && errors.As(b, &tb) {
		if ta.Kind != tb.Kind || ta.PC != tb.PC || ta.DISEPC != tb.DISEPC {
			return fmt.Sprintf("trap: %v != %v", a, b)
		}
		return ""
	}
	if a.Error() != b.Error() {
		return fmt.Sprintf("error: %v != %v", a, b)
	}
	return ""
}
