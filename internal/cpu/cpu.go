// Package cpu is the cycle-level timing model: an N-wide superscalar,
// out-of-order core in the style of the paper's simulated MIPS-R10000-like
// machine (4-wide, 12-stage, 128-entry reorder buffer), with split L1
// caches, a unified L2, branch prediction, and the three DISE decoder
// integration options of paper §4.1 — free, one-cycle stall per expansion,
// and an added pipe stage.
//
// The model consumes the annotated dynamic instruction stream produced by
// the functional emulator and schedules it in a single pass: each dynamic
// instruction's dispatch is limited by fetch bandwidth, I-cache latency,
// reorder-buffer occupancy and DISE miss stalls; its execution by operand
// readiness and functional-unit/D-cache latency; its commit by program
// order and commit bandwidth. Branch mispredictions (and taken DISE
// branches, which are architecturally mispredictions — paper §2.2) redirect
// fetch after the branch executes plus the pipeline refill penalty.
package cpu

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// DiseMode selects how the DISE engine is integrated into the decoder
// (paper §4.1, "DISE implementation").
type DiseMode int

// Decoder integration options.
const (
	// DiseFree models DISE with no decode cost (an upper bound).
	DiseFree DiseMode = iota
	// DiseStall charges one stall cycle per successful expansion (PT and RT
	// read in parallel with decode; expansion repeats the cycle).
	DiseStall
	// DisePipe adds a decode stage: +1 cycle on every pipeline refill,
	// including ACF-free code.
	DisePipe
)

func (m DiseMode) String() string {
	switch m {
	case DiseStall:
		return "stall"
	case DisePipe:
		return "pipe"
	default:
		return "free"
	}
}

// Config parameterizes the core.
type Config struct {
	Width     int // fetch/dispatch/commit width
	ROB       int // reorder buffer entries
	PipeDepth int // front-end depth = minimum misprediction penalty

	Mem mem.HierarchyConfig

	DiseMode DiseMode

	// MaxCycles, when positive, is a watchdog: a run whose commit clock
	// passes it stops with emu.TrapWatchdog. It bounds trials whose control
	// flow was corrupted into a non-terminating loop the instruction budget
	// alone would take too long to catch.
	MaxCycles int64

	// Hook, when set, observes the run once per dynamic instruction, after
	// it is scheduled. Fault campaigns use it to corrupt the cache hierarchy
	// mid-run; it must not retain h beyond the call.
	Hook func(insts int64, h *mem.Hierarchy)
}

// DefaultConfig is the paper's §4 configuration: 4-wide, 12-stage, 128-entry
// ROB, 32KB L1s, 1MB L2.
func DefaultConfig() Config {
	return Config{
		Width:     4,
		ROB:       128,
		PipeDepth: 12,
		Mem:       mem.DefaultHierarchyConfig(),
		DiseMode:  DiseFree,
	}
}

// Result reports a timed run.
type Result struct {
	Cycles   int64
	Insts    int64 // dynamic instructions committed (incl. replacement)
	AppInsts int64 // application instructions committed

	ICacheMisses int64
	DCacheMisses int64
	Mispredicts  int64
	DiseStalls   int64 // cycles lost to PT/RT miss handling
	ExpStalls    int64 // cycles lost to DiseStall-mode expansion bubbles

	Emu  emu.Stats
	Pred PredStats

	Output string
	Err    error
}

// IPC returns committed application instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.AppInsts) / float64(r.Cycles)
}

// bandwidthCursor enforces an at-most-width-per-cycle resource.
type bandwidthCursor struct {
	cycle int64
	count int
	width int
}

// slot returns the cycle at which the next event may happen, no earlier
// than at.
func (b *bandwidthCursor) slot(at int64) int64 {
	if at > b.cycle {
		b.cycle, b.count = at, 0
	}
	if b.count >= b.width {
		b.cycle++
		b.count = 0
	}
	b.count++
	return b.cycle
}

// close forbids further events in the current cycle (fetch break after a
// taken branch).
func (b *bandwidthCursor) close() { b.count = b.width }

// Run executes machine m to completion under the timing model and returns
// the result. The machine must be freshly created (its expander and any
// dedicated registers already configured). Run never panics on machine
// misbehavior: a host-side invariant violation surfaces as emu.TrapInternal
// in Result.Err.
func Run(m *emu.Machine, cfg Config) (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res = &Result{Err: &emu.Trap{Kind: emu.TrapInternal,
				Detail: fmt.Sprintf("cpu: %v", r)}}
		}
	}()
	if cfg.Width <= 0 || cfg.ROB <= 0 || cfg.PipeDepth <= 0 {
		return &Result{Err: fmt.Errorf("cpu: bad config %+v", cfg)}
	}
	h, err := mem.NewHierarchyChecked(cfg.Mem)
	if err != nil {
		return &Result{Err: fmt.Errorf("cpu: %w", err)}
	}
	pred := NewPredictor()
	res = &Result{}

	redirectPenalty := int64(cfg.PipeDepth)
	if cfg.DiseMode == DisePipe {
		redirectPenalty++
	}

	var (
		fetchCycle int64 // earliest fetch slot for the next instruction
		dispatch   = bandwidthCursor{width: cfg.Width}
		commit     = bandwidthCursor{width: cfg.Width}
		lastCommit int64
		regReady   [isa.NumRegs]int64
		rob        = make([]int64, cfg.ROB)
		robIdx     int
		idx        int64
	)

	var watchdog error
	var d emu.DynInst // reused across iterations; StepInto overwrites it
	for {
		if cfg.MaxCycles > 0 && lastCommit > cfg.MaxCycles {
			watchdog = &emu.Trap{Kind: emu.TrapWatchdog, PC: m.PC(), DISEPC: m.DISEPC(),
				Detail: fmt.Sprintf("no completion within %d cycles", cfg.MaxCycles)}
			break
		}
		if !m.StepInto(&d) {
			break
		}
		// ----- fetch -----
		if d.Stall > 0 {
			// PT/RT miss: pipeline flush + fixed handler stall (§2.3).
			if lastCommit > fetchCycle {
				fetchCycle = lastCommit
			}
			fetchCycle += int64(d.Stall)
			res.DiseStalls += int64(d.Stall)
		}
		if d.FetchSize > 0 {
			if lat := h.FetchLatency(d.PC, d.FetchSize); lat > 0 {
				fetchCycle += int64(lat)
			}
		}
		if d.SeqLen > 0 && cfg.DiseMode == DiseStall {
			// One bubble per actual expansion (§4.1).
			fetchCycle++
			res.ExpStalls++
		}

		// ----- dispatch -----
		dc := fetchCycle
		if robWait := rob[robIdx]; robWait > dc {
			dc = robWait // reorder buffer full: wait for the oldest to retire
		}
		dc = dispatch.slot(dc)

		// ----- execute -----
		// Register indices are bounds-checked: a hostile or fault-corrupted
		// expander can emit registers outside the architectural file, and the
		// scheduler must degrade (treat them as always-ready) rather than
		// crash the host.
		start := dc + 1
		src1, src2 := d.Inst.SourceRegs()
		if src1 != isa.NoReg && int(src1) < len(regReady) {
			if t := regReady[src1]; t > start {
				start = t
			}
		}
		if src2 != isa.NoReg && int(src2) < len(regReady) {
			if t := regReady[src2]; t > start {
				start = t
			}
		}
		lat := int64(execLatency(d.Inst.Op))
		if d.IsLoad || d.IsStore {
			dlat := int64(h.DataLatency(d.MemAddr))
			if d.IsLoad {
				lat += dlat
			}
			// Stores retire through the write buffer; their latency does
			// not stall dependents.
		}
		done := start + lat
		if dest := d.Inst.Dest(); dest != isa.NoReg && dest != isa.RegZero && int(dest) < len(regReady) {
			regReady[dest] = done
		}

		// ----- control -----
		mispredict := false
		switch {
		case d.DiseBranch:
			// Not predicted; taken => fetch restart at PC:DISEPC' (§2.2).
			if d.Taken {
				mispredict = true
			}
		case d.IsBranch && !d.Predicted:
			// Non-trigger replacement branch: effectively predicted
			// not-taken, never updates the predictor (§2.2).
			if d.Taken {
				mispredict = true
			}
		case d.IsBranch:
			mispredict = !predict(pred, &d, m)
		}
		if mispredict {
			res.Mispredicts++
			if t := done + redirectPenalty; t > fetchCycle {
				fetchCycle = t
			}
			dispatch.close()
		} else if d.IsBranch && d.Taken {
			// Correctly predicted taken branch still breaks the fetch group.
			dispatch.close()
			if dc+1 > fetchCycle {
				fetchCycle = dc + 1
			}
		}

		// ----- commit -----
		ct := done
		if ct < lastCommit {
			ct = lastCommit
		}
		ct = commit.slot(ct)
		lastCommit = ct
		rob[robIdx] = ct
		robIdx++
		if robIdx == cfg.ROB {
			robIdx = 0
		}
		idx++
		res.Insts++
		if d.IsApp {
			res.AppInsts++
		}
		if cfg.Hook != nil {
			cfg.Hook(res.Insts, h)
		}
	}

	res.Cycles = lastCommit
	res.Emu = m.Stats
	res.Pred = pred.Stats
	res.ICacheMisses = h.IL1.Stats.Misses
	res.DCacheMisses = h.DL1.Stats.Misses
	res.Output = m.Output()
	res.Err = m.Err()
	if watchdog != nil {
		res.Err = watchdog
	}
	return res
}

// predict runs the appropriate predictor for an application-level branch
// and reports whether it was correct.
func predict(p *Predictor, d *emu.DynInst, m *emu.Machine) bool {
	op := d.Inst.Op
	switch op {
	case isa.OpBR:
		return true // direct unconditional: always correct
	case isa.OpBSR:
		p.Call(retAddrOf(d, m))
		return true
	case isa.OpJSR:
		p.Call(retAddrOf(d, m))
		return p.Indirect(d.PC, d.Target)
	case isa.OpJMP:
		return p.Indirect(d.PC, d.Target)
	case isa.OpRET:
		return p.Return(d.Target)
	case isa.OpJEQ, isa.OpJNE:
		// Conditional indirect: direction via a history-free bimodal
		// predictor, target via BTB when taken.
		ok := p.CondStatic(d.PC, d.Taken)
		if d.Taken {
			return ok && p.Indirect(d.PC, d.Target)
		}
		return ok
	default:
		return p.Cond(d.PC, d.Taken)
	}
}

// retAddrOf computes the byte address of the instruction after the call.
func retAddrOf(d *emu.DynInst, m *emu.Machine) uint64 {
	p := m.Program()
	if d.Unit+1 < p.NumUnits() {
		return p.Addr(d.Unit + 1)
	}
	return 0
}

// latencyTable holds per-opcode functional-unit latencies in cycles,
// indexed directly by opcode: multiplies take 3, loads take 0 (the D-cache
// latency is added by the caller), everything else 1.
var latencyTable = func() [isa.NumOpcodes]int8 {
	var t [isa.NumOpcodes]int8
	for op := range t {
		t[op] = 1
	}
	t[isa.OpMULQ] = 3
	t[isa.OpMULQI] = 3
	t[isa.OpLDQ] = 0
	t[isa.OpLDL] = 0
	return t
}()

// execLatency gives functional-unit latencies in cycles.
func execLatency(op isa.Opcode) int {
	if int(op) < len(latencyTable) {
		return int(latencyTable[op])
	}
	return 1
}
