// Package cpu is the cycle-level timing model: an N-wide superscalar,
// out-of-order core in the style of the paper's simulated MIPS-R10000-like
// machine (4-wide, 12-stage, 128-entry reorder buffer), with split L1
// caches, a unified L2, branch prediction, and the three DISE decoder
// integration options of paper §4.1 — free, one-cycle stall per expansion,
// and an added pipe stage.
//
// The model consumes the annotated dynamic instruction stream produced by
// the functional emulator and schedules it in a single pass: each dynamic
// instruction's dispatch is limited by fetch bandwidth, I-cache latency,
// reorder-buffer occupancy and DISE miss stalls; its execution by operand
// readiness and functional-unit/D-cache latency; its commit by program
// order and commit bandwidth. Branch mispredictions (and taken DISE
// branches, which are architecturally mispredictions — paper §2.2) redirect
// fetch after the branch executes plus the pipeline refill penalty.
//
// The stream arrives through the Source interface. The live source is an
// emu.Machine (Run); a recorded source is a trace replay
// (internal/trace.Replayer via RunSource), which skips both the functional
// emulation and the branch predictor — its per-record mispredict verdicts
// were fixed at capture time.
package cpu

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bpred"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rec"
)

// DiseMode selects how the DISE engine is integrated into the decoder
// (paper §4.1, "DISE implementation").
type DiseMode int

// Decoder integration options.
const (
	// DiseFree models DISE with no decode cost (an upper bound).
	DiseFree DiseMode = iota
	// DiseStall charges one stall cycle per successful expansion (PT and RT
	// read in parallel with decode; expansion repeats the cycle).
	DiseStall
	// DisePipe adds a decode stage: +1 cycle on every pipeline refill,
	// including ACF-free code.
	DisePipe
)

func (m DiseMode) String() string {
	switch m {
	case DiseStall:
		return "stall"
	case DisePipe:
		return "pipe"
	default:
		return "free"
	}
}

// Config parameterizes the core.
type Config struct {
	Width     int // fetch/dispatch/commit width
	ROB       int // reorder buffer entries
	PipeDepth int // front-end depth = minimum misprediction penalty

	Mem mem.HierarchyConfig

	DiseMode DiseMode

	// MaxCycles, when positive, is a watchdog: a run whose commit clock
	// passes it stops with emu.TrapWatchdog. It bounds trials whose control
	// flow was corrupted into a non-terminating loop the instruction budget
	// alone would take too long to catch. It remains the default deadline
	// for harnesses with no caller-supplied context.
	MaxCycles int64

	// Ctx, when non-nil, cancels the run cooperatively: the scheduling loop
	// checks it once per record chunk (every few thousand instructions),
	// never per cycle, so the hot path stays synchronization-free. A
	// cancelled run stops with an emu.TrapCancelled whose Cause is the
	// context error.
	Ctx context.Context

	// Hook, when set, observes the run once per dynamic instruction, after
	// it is scheduled. Fault campaigns use it to corrupt the cache hierarchy
	// mid-run; it must not retain h beyond the call.
	Hook func(insts int64, h *mem.Hierarchy)
}

// DefaultConfig is the paper's §4 configuration: 4-wide, 12-stage, 128-entry
// ROB, 32KB L1s, 1MB L2.
func DefaultConfig() Config {
	return Config{
		Width:     4,
		ROB:       128,
		PipeDepth: 12,
		Mem:       mem.DefaultHierarchyConfig(),
		DiseMode:  DiseFree,
	}
}

// PredStats counts prediction outcomes. It is an alias for the predictor
// package's stats type.
type PredStats = bpred.Stats

// Result reports a timed run.
type Result struct {
	Cycles   int64
	Insts    int64 // dynamic instructions committed (incl. replacement)
	AppInsts int64 // application instructions committed

	ICacheAccesses int64
	ICacheMisses   int64
	DCacheAccesses int64
	DCacheMisses   int64
	Mispredicts    int64
	DiseStalls     int64 // cycles lost to PT/RT miss handling
	ExpStalls      int64 // cycles lost to DiseStall-mode expansion bubbles

	Emu  emu.Stats
	Pred PredStats

	Output string
	Err    error
}

// IPC returns committed application instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.AppInsts) / float64(r.Cycles)
}

// cancelStride is how many records the scheduling loop processes between
// context polls: one capture-chunk's worth, so cancellation latency is
// bounded without per-record synchronization.
const cancelStride = 1 << 12

// bandwidthCursor enforces an at-most-width-per-cycle resource.
type bandwidthCursor struct {
	cycle int64
	count int
	width int
}

// slot returns the cycle at which the next event may happen, no earlier
// than at.
func (b *bandwidthCursor) slot(at int64) int64 {
	if at > b.cycle {
		b.cycle, b.count = at, 0
	}
	if b.count >= b.width {
		b.cycle++
		b.count = 0
	}
	b.count++
	return b.cycle
}

// close forbids further events in the current cycle (fetch break after a
// taken branch).
func (b *bandwidthCursor) close() { b.count = b.width }

// Rec is one dynamic instruction in the timing model's native form: the
// 32-byte predecoded record defined by the leaf package internal/rec, which
// the emulator's translated fast path and this package's converter share.
// Recorded streams (internal/trace) store Recs verbatim and replay hands
// them out by reference, so replay throughput is bounded by the scheduler,
// not by record reassembly or memory traffic.
type Rec = rec.Rec

// Rec flags (aliases of the rec package's). RecPTMiss/RecRTMiss/RecComposed
// carry the DISE table events so a recorded stream can rebuild stall cycles
// under any penalty assignment; RecMispredict is the branch predictor's
// verdict, resolved by the source.
const (
	RecIsApp      = rec.IsApp
	RecIsBranch   = rec.IsBranch
	RecTaken      = rec.Taken
	RecIsLoad     = rec.IsLoad
	RecIsStore    = rec.IsStore
	RecPTMiss     = rec.PTMiss
	RecRTMiss     = rec.RTMiss
	RecComposed   = rec.Composed
	RecMispredict = rec.Mispredict
)

// MakeRec converts one emulator record to the timing form. The mispredict
// flag is left clear: the caller owns the predictor and ors in
// RecMispredict after consulting it.
func MakeRec(d *emu.DynInst) Rec {
	return d.Rec()
}

// Source is a stream of timing records for the scheduling loop: the live
// functional machine, or a recorded trace. The source resolves everything
// stream-determined — including branch prediction — so the loop is pure
// scheduling and runs identically for both.
type Source interface {
	// Next returns the next record — owned by the source and read-only —
	// plus the DISE stall cycles it incurs under the source's penalty
	// configuration. It returns ok=false at end of stream.
	Next() (r *Rec, stall int, ok bool)
	// Loc reports the stream's current PC:DISEPC, for watchdog trap
	// attribution.
	Loc() (pc uint64, disepc int)
	// Final reports the run's architectural outcome once the stream ends.
	Final() (stats emu.Stats, output string, err error)
	// PredStats returns the branch predictor's final counters.
	PredStats() bpred.Stats
}

// ChunkedSource is an optional Source extension for sources whose whole
// record stream is already resident in memory (trace replays). RunSource
// walks the chunks directly — no per-record interface call — and rebuilds
// each record's DISE stall from its event flags under the returned
// penalties, exactly as the source's own Next would.
type ChunkedSource interface {
	Source
	// Chunks returns the stream's record chunks in order (read-only; shared
	// between concurrent replays) and the PT/RT miss and composing-miss
	// penalties in cycles.
	Chunks() (chunks [][]Rec, missPenalty, composePenalty int)
}

// BatchSource is an optional Source extension for sources that can hand the
// scheduling loop whole record slices at a time: the live machine's batched
// feed (emu.FillRecs over translated superblocks). RunSource walks the
// batches directly — no per-record interface call, no DynInst
// materialization — and rebuilds each record's DISE stall from its event
// flags under the returned penalties, exactly as the source's own Next
// would.
type BatchSource interface {
	Source
	// NextBatch returns the next slice of records (owned by the source,
	// valid until the next NextBatch call) or ok=false at end of stream.
	NextBatch() (batch []Rec, ok bool)
	// BatchPenalties returns the PT/RT miss and composing-miss penalties in
	// cycles for rebuilding per-record stalls from the event flags.
	BatchPenalties() (missPenalty, composePenalty int)
}

// liveBatchLen is the live feed's batch size: large enough to amortize the
// FillRecs call and keep translated superblocks running, small enough to
// stay cache-resident alongside the scheduler state.
const liveBatchLen = 4096

// liveBatchSource adapts the live functional machine to BatchSource: the
// machine fills a reusable record buffer (translated superblocks write
// records straight from their templates), and the scheduling loop walks it
// with no per-instruction indirection.
type liveBatchSource struct {
	m    *emu.Machine
	pred *bpred.Predictor
	buf  []Rec
	miss, compose int

	// cursor for the compatibility Next path
	cur []Rec
	ri  int
}

// recBufPool recycles live-feed batch buffers (128KB each): every slot the
// machine hands back was fully rewritten by FillRecs, so a pooled buffer
// needs no clearing.
var recBufPool = sync.Pool{New: func() any { return make([]Rec, liveBatchLen) }}

func newLiveBatchSource(m *emu.Machine, miss, compose int) *liveBatchSource {
	return &liveBatchSource{m: m, pred: bpred.New(),
		buf: recBufPool.Get().([]Rec), miss: miss, compose: compose}
}

// release returns the batch buffer to the pool. The caller must be done with
// every slice NextBatch handed out.
func (s *liveBatchSource) release() {
	if s.buf != nil {
		recBufPool.Put(s.buf)
		s.buf, s.cur = nil, nil
	}
}

func (s *liveBatchSource) NextBatch() ([]Rec, bool) {
	n, _ := s.m.FillRecs(s.pred, s.buf)
	if n == 0 {
		return nil, false
	}
	return s.buf[:n], true
}

func (s *liveBatchSource) BatchPenalties() (int, int) { return s.miss, s.compose }

func (s *liveBatchSource) Next() (*Rec, int, bool) {
	if s.ri >= len(s.cur) {
		var ok bool
		s.cur, ok = s.NextBatch()
		if !ok {
			return nil, 0, false
		}
		s.ri = 0
	}
	r := &s.cur[s.ri]
	s.ri++
	stall := 0
	if f := r.Flags; f&(RecPTMiss|RecRTMiss) != 0 {
		if f&RecPTMiss != 0 {
			stall += s.miss
		}
		if f&RecRTMiss != 0 {
			if f&RecComposed != 0 {
				stall += s.compose
			} else {
				stall += s.miss
			}
		}
	}
	return r, stall, true
}

func (s *liveBatchSource) Loc() (uint64, int) { return s.m.PC(), s.m.DISEPC() }

func (s *liveBatchSource) Final() (emu.Stats, string, error) {
	return s.m.Stats, s.m.Output(), s.m.Err()
}

func (s *liveBatchSource) PredStats() bpred.Stats { return s.pred.Stats }

// machineSource adapts the live functional machine to the Source interface,
// running the reference branch predictor alongside the emulation.
type machineSource struct {
	m    *emu.Machine
	pred *bpred.Predictor
	d    emu.DynInst
	r    Rec
}

func (s *machineSource) Next() (*Rec, int, bool) {
	if !s.m.StepInto(&s.d) {
		return nil, 0, false
	}
	d := &s.d
	s.r = MakeRec(d)
	if d.IsBranch || d.DiseBranch {
		var retAddr uint64
		if op := d.Inst.Op; op == isa.OpBSR || op == isa.OpJSR {
			if p := s.m.Program(); d.Unit+1 < p.NumUnits() {
				retAddr = p.Addr(d.Unit + 1)
			}
		}
		if s.pred.Mispredict(d.Inst.Op, d.PC, d.Target, retAddr, d.Taken, d.Predicted, d.DiseBranch) {
			s.r.Flags |= RecMispredict
		}
	}
	return &s.r, d.Stall, true
}

func (s *machineSource) Loc() (uint64, int) { return s.m.PC(), s.m.DISEPC() }

func (s *machineSource) Final() (emu.Stats, string, error) {
	return s.m.Stats, s.m.Output(), s.m.Err()
}

func (s *machineSource) PredStats() bpred.Stats { return s.pred.Stats }

// hierPools recycles memory hierarchies per configuration: the tag arrays
// (≈144KB for the paper's geometry, dominated by the 1MB L2) are the timing
// model's largest allocation, and configuration sweeps construct one per
// cell. mem.Hierarchy.Reset makes a pooled hierarchy observably identical to
// a fresh one in O(1).
var hierPools sync.Map // mem.HierarchyConfig -> *sync.Pool

func getHierarchy(cfg mem.HierarchyConfig) (*mem.Hierarchy, error) {
	if v, ok := hierPools.Load(cfg); ok {
		if h, _ := v.(*sync.Pool).Get().(*mem.Hierarchy); h != nil {
			h.Reset()
			return h, nil
		}
		return mem.NewHierarchyChecked(cfg)
	}
	h, err := mem.NewHierarchyChecked(cfg)
	if err != nil {
		return nil, err
	}
	hierPools.LoadOrStore(cfg, &sync.Pool{})
	return h, nil
}

func putHierarchy(cfg mem.HierarchyConfig, h *mem.Hierarchy) {
	if v, ok := hierPools.Load(cfg); ok {
		v.(*sync.Pool).Put(h)
	}
}

// schedState is the scheduling loop's loop-carried state plus its run
// constants, boxed so the leaf walk function can seed registers from it and
// flush back on exit. Keeping the hot loop in a function of its own — away
// from RunSource's deferred recover, context plumbing, and trap formatting —
// is what lets the register allocator keep the cycle-accounting chains out
// of the stack frame.
type schedState struct {
	fetchCycle, lastCommit int64
	dispCycle, commCycle   int64
	dispCount, commCount   int
	robIdx                 int

	insts, appInsts, mispredicts, diseStalls, expStalls int64

	// run constants
	width           int
	miss, compose   int
	l1Latency       int64
	redirectPenalty int64
	maxCycles       int64
	diseStallMode   bool
	pollCancel      bool
}

// schedWalk outcomes.
const (
	walkDone     = iota // consumed the whole slice
	walkWatchdog        // commit clock passed maxCycles before record i
	walkPoll            // cancellation poll due before record i
)

// schedWalk schedules records from cur in order until the slice is consumed,
// the watchdog trips, or a cancellation poll comes due, and returns how many
// records it consumed plus why it stopped. The caller re-performs the
// watchdog/poll checks itself (they are pure), so every outcome is handled
// by looping back. The body is an exact transliteration of RunSource's
// per-record scheduling; the bandwidth cursors are scalarized into
// schedState so the whole chain lives in registers.
func schedWalk(h *mem.Hierarchy, cur []Rec, st *schedState, rob []int64, regReady *[isa.NumRegs]int64) (consumed, outcome int) {
	var (
		fetchCycle = st.fetchCycle
		lastCommit = st.lastCommit
		dispCycle  = st.dispCycle
		dispCount  = st.dispCount
		commCycle  = st.commCycle
		commCount  = st.commCount
		robIdx     = st.robIdx
		insts      = st.insts
		appInsts   = st.appInsts

		width           = st.width
		miss            = st.miss
		compose         = st.compose
		l1Latency       = st.l1Latency
		redirectPenalty = st.redirectPenalty
		maxCycles       = st.maxCycles
		robLen          = len(rob)
	)
	// The memoized L1 line bounds live in registers; hits are counted locally
	// and credited in bulk at the exit, so the per-record fast path touches no
	// hierarchy memory at all. A miss re-memoizes, so the bounds are reloaded
	// after every slow-path call.
	fetchLo, fetchLen := h.FetchMemo()
	dataLo, dataLen := h.DataMemo()
	var fetchHits, dataHits int64
	out := walkDone
	i := 0
	for ; i < len(cur); i++ {
		if maxCycles > 0 && lastCommit > maxCycles {
			out = walkWatchdog
			break
		}
		if st.pollCancel && i > 0 && insts&(cancelStride-1) == 0 {
			out = walkPoll
			break
		}
		d := &cur[i]
		f := d.Flags
		// ----- fetch -----
		if f&(RecPTMiss|RecRTMiss) != 0 {
			stall := 0
			if f&RecPTMiss != 0 {
				stall += miss
			}
			if f&RecRTMiss != 0 {
				if f&RecComposed != 0 {
					stall += compose
				} else {
					stall += miss
				}
			}
			if stall > 0 {
				// PT/RT miss: pipeline flush + fixed handler stall (§2.3).
				if lastCommit > fetchCycle {
					fetchCycle = lastCommit
				}
				fetchCycle += int64(stall)
				st.diseStalls += int64(stall)
			}
		}
		if d.FetchSize > 0 {
			if d.PC-fetchLo+uint64(d.FetchSize) <= fetchLen {
				fetchHits++
			} else {
				if lat := h.FetchMiss(d.PC, int(d.FetchSize)); lat > 0 {
					fetchCycle += int64(lat)
				}
				fetchLo, fetchLen = h.FetchMemo()
			}
		}
		if d.SeqLen > 0 && st.diseStallMode {
			// One bubble per actual expansion (§4.1).
			fetchCycle++
			st.expStalls++
		}

		// ----- dispatch -----
		dc := fetchCycle
		if robWait := rob[robIdx]; robWait > dc {
			dc = robWait // reorder buffer full: wait for the oldest to retire
		}
		if dc > dispCycle {
			dispCycle, dispCount = dc, 0
		}
		if dispCount >= width {
			dispCycle++
			dispCount = 0
		}
		dispCount++
		dc = dispCycle

		// ----- execute -----
		// Register indices are bounds-checked: a hostile or fault-corrupted
		// expander can emit registers outside the architectural file, and the
		// scheduler must degrade (treat them as always-ready) rather than
		// crash the host.
		start := dc + 1
		if s1 := d.SrcA; int(s1) < len(regReady) {
			if t := regReady[s1]; t > start {
				start = t
			}
		}
		if s2 := d.SrcB; int(s2) < len(regReady) {
			if t := regReady[s2]; t > start {
				start = t
			}
		}
		lat := int64(d.Lat)
		if f&(RecIsLoad|RecIsStore) != 0 {
			dlat := l1Latency
			if d.MemAddr-dataLo < dataLen {
				dataHits++
			} else {
				dlat = int64(h.DataMiss(d.MemAddr))
				dataLo, dataLen = h.DataMemo()
			}
			if f&RecIsLoad != 0 {
				lat += dlat
			}
			// Stores retire through the write buffer; their latency does
			// not stall dependents.
		}
		done := start + lat
		if dest := d.Dst; dest != isa.RegZero && int(dest) < len(regReady) {
			regReady[dest] = done
		}

		// ----- control -----
		if f&RecMispredict != 0 {
			st.mispredicts++
			if t := done + redirectPenalty; t > fetchCycle {
				fetchCycle = t
			}
			dispCount = width
		} else if f&(RecIsBranch|RecTaken) == RecIsBranch|RecTaken {
			// Correctly predicted taken branch still breaks the fetch group.
			dispCount = width
			if dc+1 > fetchCycle {
				fetchCycle = dc + 1
			}
		}

		// ----- commit -----
		ct := done
		if ct < lastCommit {
			ct = lastCommit
		}
		if ct > commCycle {
			commCycle, commCount = ct, 0
		}
		if commCount >= width {
			commCycle++
			commCount = 0
		}
		commCount++
		ct = commCycle
		lastCommit = ct
		rob[robIdx] = ct
		robIdx++
		if robIdx == robLen {
			robIdx = 0
		}
		insts++
		if f&RecIsApp != 0 {
			appInsts++
		}
	}
	h.AddFetchAccesses(fetchHits)
	h.AddDataAccesses(dataHits)
	st.fetchCycle = fetchCycle
	st.lastCommit = lastCommit
	st.dispCycle = dispCycle
	st.dispCount = dispCount
	st.commCycle = commCycle
	st.commCount = commCount
	st.robIdx = robIdx
	st.insts = insts
	st.appInsts = appInsts
	return i, out
}

// Run executes machine m to completion under the timing model and returns
// the result. The machine must be freshly created (its expander and any
// dedicated registers already configured). Run never panics on machine
// misbehavior: a host-side invariant violation surfaces as emu.TrapInternal
// in Result.Err.
//
// When the machine supports the batched record feed (no expander, or the
// DISE engine proper) and no cycle watchdog is set, Run consumes it through
// a BatchSource: the functional machine runs ahead of the scheduler by up
// to one batch, which a MaxCycles watchdog cannot tolerate (it must stop
// the machine at a deterministic commit cycle), so watchdogged runs keep
// the per-step source.
func Run(m *emu.Machine, cfg Config) *Result {
	if cfg.MaxCycles <= 0 {
		if miss, compose, ok := m.FeedPenalties(); ok {
			src := newLiveBatchSource(m, miss, compose)
			res := RunSource(src, cfg)
			src.release()
			return res
		}
	}
	return RunSource(&machineSource{m: m, pred: bpred.New()}, cfg)
}

// RunSource times an arbitrary record stream: the scheduling loop is
// identical for live machines and trace replays, because the source resolves
// prediction, stalls, and all stream annotations before the loop sees them.
func RunSource(src Source, cfg Config) (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res = &Result{Err: &emu.Trap{Kind: emu.TrapInternal,
				Detail: fmt.Sprintf("cpu: %v", r)}}
		}
	}()
	if cfg.Width <= 0 || cfg.ROB <= 0 || cfg.PipeDepth <= 0 {
		return &Result{Err: fmt.Errorf("cpu: bad config %+v", cfg)}
	}
	h, err := getHierarchy(cfg.Mem)
	if err != nil {
		return &Result{Err: fmt.Errorf("cpu: %w", err)}
	}
	res = &Result{}

	redirectPenalty := int64(cfg.PipeDepth)
	if cfg.DiseMode == DisePipe {
		redirectPenalty++
	}

	var (
		fetchCycle int64 // earliest fetch slot for the next instruction
		dispatch   = bandwidthCursor{width: cfg.Width}
		commit     = bandwidthCursor{width: cfg.Width}
		lastCommit int64
		regReady   [isa.NumRegs]int64
		rob        = make([]int64, cfg.ROB)
		robIdx     int
	)

	// Chunked sources (trace replays) are walked directly: the per-record
	// interface call and the source's own cursor bookkeeping disappear from
	// the hot loop, and the stall rebuild happens inline from the flags.
	var (
		chunks        [][]Rec
		ci            int
		cur           []Rec
		ri            int
		miss, compose int
	)
	chunked := false
	var batch BatchSource
	if cs, ok := src.(ChunkedSource); ok {
		chunks, miss, compose = cs.Chunks()
		chunked = true
	} else if bs, ok := src.(BatchSource); ok {
		// Batched live feed: same inline walk and stall rebuild as chunks,
		// with slices pulled from the source on demand.
		batch = bs
		miss, compose = bs.BatchPenalties()
		chunked = true
	}
	diseStallMode := cfg.DiseMode == DiseStall
	l1Latency := int64(h.L1Latency)
	maxCycles := cfg.MaxCycles
	hook := cfg.Hook
	var cancelDone <-chan struct{}
	if cfg.Ctx != nil {
		cancelDone = cfg.Ctx.Done()
	}

	// Counters live in locals so the scheduling loop never stores to the
	// heap-allocated result; they are folded into res after the loop.
	var insts, appInsts, mispredicts, diseStalls, expStalls int64

	var watchdog error
	var d *Rec
	if chunked && hook == nil {
		// Record streams with no per-instruction hook run through the leaf
		// walk: schedWalk consumes records until a slice boundary, a
		// watchdog trip, or a poll comes due, and this loop — which owns all
		// trap formatting and channel work — re-performs those checks
		// itself. schedWalk never reports a stop this loop's own checks
		// would not also see, so every iteration either consumes records or
		// terminates, in the exact order of the per-record path.
		st := schedState{
			width: cfg.Width, miss: miss, compose: compose,
			l1Latency: l1Latency, redirectPenalty: redirectPenalty,
			maxCycles: maxCycles, diseStallMode: diseStallMode,
			pollCancel: cancelDone != nil,
		}
	fastLoop:
		for {
			if maxCycles > 0 && st.lastCommit > maxCycles {
				pc, disepc := src.Loc()
				if d != nil {
					pc, disepc = d.PC, int(d.DISEPC)
				}
				watchdog = &emu.Trap{Kind: emu.TrapWatchdog, PC: pc, DISEPC: disepc,
					Detail: fmt.Sprintf("no completion within %d cycles", cfg.MaxCycles)}
				break
			}
			if cancelDone != nil && st.insts&(cancelStride-1) == 0 {
				select {
				case <-cancelDone:
					pc, disepc := src.Loc()
					if d != nil {
						pc, disepc = d.PC, int(d.DISEPC)
					}
					watchdog = &emu.Trap{Kind: emu.TrapCancelled, PC: pc, DISEPC: disepc,
						Cause: context.Cause(cfg.Ctx), Detail: "run cancelled"}
					break fastLoop
				default:
				}
			}
			if ri >= len(cur) {
				if batch != nil {
					var ok bool
					cur, ok = batch.NextBatch()
					if !ok {
						break
					}
				} else {
					if ci >= len(chunks) {
						break
					}
					cur = chunks[ci]
					ci++
				}
				ri = 0
				if len(cur) == 0 {
					continue
				}
			}
			n, _ := schedWalk(h, cur[ri:], &st, rob, &regReady)
			if n > 0 {
				ri += n
				d = &cur[ri-1]
			}
		}
		lastCommit = st.lastCommit
		insts = st.insts
		appInsts = st.appInsts
		mispredicts = st.mispredicts
		diseStalls = st.diseStalls
		expStalls = st.expStalls
		goto finalize
	}
loop:
	for {
		if maxCycles > 0 && lastCommit > maxCycles {
			pc, disepc := src.Loc()
			if chunked && d != nil {
				pc, disepc = d.PC, int(d.DISEPC)
			}
			watchdog = &emu.Trap{Kind: emu.TrapWatchdog, PC: pc, DISEPC: disepc,
				Detail: fmt.Sprintf("no completion within %d cycles", cfg.MaxCycles)}
			break
		}
		// Cooperative cancellation, polled once per cancelStride records —
		// the same granularity as a capture chunk — so the per-record path
		// never touches the context.
		if cancelDone != nil && insts&(cancelStride-1) == 0 {
			select {
			case <-cancelDone:
				pc, disepc := src.Loc()
				if chunked && d != nil {
					pc, disepc = d.PC, int(d.DISEPC)
				}
				watchdog = &emu.Trap{Kind: emu.TrapCancelled, PC: pc, DISEPC: disepc,
					Cause: context.Cause(cfg.Ctx), Detail: "run cancelled"}
				break loop
			default:
			}
		}
		// d is read-only: a replayed record is shared between concurrent
		// replays of the same trace.
		var stall int
		if chunked {
			if ri >= len(cur) {
				if batch != nil {
					var ok bool
					cur, ok = batch.NextBatch()
					if !ok {
						break
					}
				} else {
					if ci >= len(chunks) {
						break
					}
					cur = chunks[ci]
					ci++
				}
				ri = 0
				if len(cur) == 0 {
					continue loop
				}
			}
			d = &cur[ri]
			ri++
			if f := d.Flags; f&(RecPTMiss|RecRTMiss) != 0 {
				if f&RecPTMiss != 0 {
					stall += miss
				}
				if f&RecRTMiss != 0 {
					if f&RecComposed != 0 {
						stall += compose
					} else {
						stall += miss
					}
				}
			}
		} else {
			var ok bool
			d, stall, ok = src.Next()
			if !ok {
				break
			}
		}
		f := d.Flags
		// ----- fetch -----
		if stall > 0 {
			// PT/RT miss: pipeline flush + fixed handler stall (§2.3).
			if lastCommit > fetchCycle {
				fetchCycle = lastCommit
			}
			fetchCycle += int64(stall)
			diseStalls += int64(stall)
		}
		if d.FetchSize > 0 && !h.FetchHit(d.PC, int(d.FetchSize)) {
			if lat := h.FetchMiss(d.PC, int(d.FetchSize)); lat > 0 {
				fetchCycle += int64(lat)
			}
		}
		if d.SeqLen > 0 && diseStallMode {
			// One bubble per actual expansion (§4.1).
			fetchCycle++
			expStalls++
		}

		// ----- dispatch -----
		dc := fetchCycle
		if robWait := rob[robIdx]; robWait > dc {
			dc = robWait // reorder buffer full: wait for the oldest to retire
		}
		dc = dispatch.slot(dc)

		// ----- execute -----
		// Register indices are bounds-checked: a hostile or fault-corrupted
		// expander can emit registers outside the architectural file, and the
		// scheduler must degrade (treat them as always-ready) rather than
		// crash the host. NoReg (0xFF) is rejected by the same bounds check,
		// and RegZero reads/writes are harmless: its ready time is never set.
		start := dc + 1
		if s1 := d.SrcA; int(s1) < len(regReady) {
			if t := regReady[s1]; t > start {
				start = t
			}
		}
		if s2 := d.SrcB; int(s2) < len(regReady) {
			if t := regReady[s2]; t > start {
				start = t
			}
		}
		lat := int64(d.Lat)
		if f&(RecIsLoad|RecIsStore) != 0 {
			dlat := l1Latency
			if !h.DataHit(d.MemAddr) {
				dlat = int64(h.DataMiss(d.MemAddr))
			}
			if f&RecIsLoad != 0 {
				lat += dlat
			}
			// Stores retire through the write buffer; their latency does
			// not stall dependents.
		}
		done := start + lat
		if dest := d.Dst; dest != isa.RegZero && int(dest) < len(regReady) {
			regReady[dest] = done
		}

		// ----- control -----
		if f&RecMispredict != 0 {
			mispredicts++
			if t := done + redirectPenalty; t > fetchCycle {
				fetchCycle = t
			}
			dispatch.close()
		} else if f&(RecIsBranch|RecTaken) == RecIsBranch|RecTaken {
			// Correctly predicted taken branch still breaks the fetch group.
			dispatch.close()
			if dc+1 > fetchCycle {
				fetchCycle = dc + 1
			}
		}

		// ----- commit -----
		ct := done
		if ct < lastCommit {
			ct = lastCommit
		}
		ct = commit.slot(ct)
		lastCommit = ct
		rob[robIdx] = ct
		robIdx++
		if robIdx == cfg.ROB {
			robIdx = 0
		}
		insts++
		if f&RecIsApp != 0 {
			appInsts++
		}
		if hook != nil {
			hook(insts, h)
		}
	}

finalize:
	res.Insts = insts
	res.AppInsts = appInsts
	res.Mispredicts = mispredicts
	res.DiseStalls = diseStalls
	res.ExpStalls = expStalls
	res.Cycles = lastCommit
	res.Emu, res.Output, res.Err = src.Final()
	res.Pred = src.PredStats()
	res.ICacheAccesses = h.IL1.Stats.Accesses
	res.ICacheMisses = h.IL1.Stats.Misses
	res.DCacheAccesses = h.DL1.Stats.Accesses
	res.DCacheMisses = h.DL1.Stats.Misses
	if watchdog != nil {
		res.Err = watchdog
	}
	putHierarchy(cfg.Mem, h)
	return res
}

// execLatency gives functional-unit latencies in cycles. (Kept as a public
// seam for tests; the table itself lives in internal/rec.)
func execLatency(op isa.Opcode) int {
	return int(rec.Lat(op))
}
