package cpu

import "testing"

func TestCondLearnsBias(t *testing.T) {
	p := NewPredictor()
	miss := 0
	for i := 0; i < 100; i++ {
		if !p.Cond(0x1000, true) {
			miss++
		}
	}
	// gshare sees a fresh history pattern for the first ~12 executions
	// (each indexes a cold counter); after warmup it must be near perfect.
	if miss > 20 {
		t.Errorf("always-taken branch missed %d times", miss)
	}
	p2 := NewPredictor()
	for i := 0; i < 100; i++ {
		p2.Cond(0x1000, true)
	}
	warmMiss := 0
	for i := 0; i < 100; i++ {
		if !p2.Cond(0x1000, true) {
			warmMiss++
		}
	}
	if warmMiss > 0 {
		t.Errorf("warm always-taken branch missed %d times", warmMiss)
	}
}

func TestCondLearnsAlternating(t *testing.T) {
	// gshare with history should learn a strict alternation.
	p := NewPredictor()
	miss := 0
	for i := 0; i < 400; i++ {
		if !p.Cond(0x1000, i%2 == 0) {
			miss++
		}
	}
	if miss > 40 {
		t.Errorf("alternating branch missed %d/400 times", miss)
	}
}

func TestBiasFilterProtectsHistory(t *testing.T) {
	// A never-taken "check" branch interleaved with a history-correlated
	// branch: with the bias filter, the check must not destroy the
	// correlated branch's accuracy.
	p := NewPredictor()
	miss := 0
	outcome := false
	for i := 0; i < 600; i++ {
		p.Cond(0x2000, false) // the check: never taken
		outcome = !outcome    // strict alternation
		if ok := p.Cond(0x3000, outcome); !ok && i > 50 {
			miss++
		}
	}
	rate := float64(miss) / 550
	if rate > 0.1 {
		t.Errorf("filtered checks still ruined correlation: miss rate %.2f", rate)
	}
}

func TestCondStaticIgnoresHistory(t *testing.T) {
	p := NewPredictor()
	// Biased conditional jumps predict well regardless of global history.
	for i := 0; i < 50; i++ {
		p.Cond(0x4000, i%3 == 0) // churn the GHR
		p.CondStatic(0x5000, false)
	}
	miss := p.Stats.CondMiss
	for i := 0; i < 100; i++ {
		if !p.CondStatic(0x5000, false) {
			t.Fatal("biased conditional jump mispredicted after warmup")
		}
	}
	_ = miss
}

func TestIndirectBTB(t *testing.T) {
	p := NewPredictor()
	if p.Indirect(0x100, 0x8000) {
		t.Error("cold BTB should miss")
	}
	if !p.Indirect(0x100, 0x8000) {
		t.Error("warm same-target should hit")
	}
	if p.Indirect(0x100, 0x9000) {
		t.Error("changed target should miss")
	}
	if !p.Indirect(0x100, 0x9000) {
		t.Error("re-learned target should hit")
	}
}

func TestRASMatchesCallReturn(t *testing.T) {
	p := NewPredictor()
	p.Call(0x100)
	p.Call(0x200)
	if !p.Return(0x200) || !p.Return(0x100) {
		t.Error("LIFO returns should hit")
	}
	if p.Return(0x300) {
		t.Error("empty RAS should miss")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < rasDepth+4; i++ {
		p.Call(uint64(i) * 16)
	}
	// The newest rasDepth entries survive.
	for i := rasDepth + 3; i >= 4; i-- {
		if !p.Return(uint64(i) * 16) {
			t.Fatalf("entry %d should have survived", i)
		}
	}
	// Older ones were overwritten.
	if p.Return(3 * 16) {
		t.Error("overwritten entry should miss")
	}
}

func TestBandwidthCursor(t *testing.T) {
	c := bandwidthCursor{width: 2}
	if got := c.slot(5); got != 5 {
		t.Errorf("first slot = %d", got)
	}
	if got := c.slot(5); got != 5 {
		t.Errorf("second slot = %d", got)
	}
	if got := c.slot(5); got != 6 {
		t.Errorf("third slot should spill to next cycle, got %d", got)
	}
	c.close()
	if got := c.slot(6); got != 7 {
		t.Errorf("slot after close = %d, want 7", got)
	}
	// Requests never go backwards.
	if got := c.slot(3); got < 7 {
		t.Errorf("cursor went backwards: %d", got)
	}
}

func TestMispredictsTotal(t *testing.T) {
	s := PredStats{CondMiss: 2, IndMiss: 3, RetMiss: 4}
	if s.Mispredicts() != 9 {
		t.Errorf("Mispredicts = %d", s.Mispredicts())
	}
}
