package cpu

// The grouped sweep walk: RunSourceMany times one recorded stream under k
// configurations in a single pass. The walk is split into a shared pass and
// a per-state pass so that everything that is a pure function of the stream
// is computed exactly once per sweep instead of once per cell:
//
//   - The memory-hierarchy simulation (I-cache fetch, D-cache access, L2
//     walk) depends only on the record stream and the cache geometry, never
//     on width/ROB/pipe/DISE mode. States sharing a geometry therefore share
//     one hierarchy: a single simulation produces the per-record fetch and
//     data latencies every state in the group consumes, and its counters are
//     every group member's counters. The common sweep — machine knobs over
//     one geometry — runs the tag arrays once instead of k times.
//   - The DISE stall rebuild, operand remapping, and the stream-property
//     counters (instructions, app instructions, mispredicts, DISE stall
//     cycles, expansion-stall events) are computed once in the same pass.
//
// The shared pass materializes a compact per-record event (8 bytes) per
// geometry, in small tiles so the event stream stays cache-resident; the
// per-state pass is then a tight loop over events whose loop-carried state
// (cycle cursors, scoreboard, ROB ring) lives in registers and two small
// arrays. Results stay byte-identical to per-cell RunSource replays (pinned
// by TestRunSourceManyMatchesIndividualReplays): the event stream is a
// faithful reordering of the per-record computation, not an approximation.

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// manyTile is the shared-pass tile size in records: 4096 packed events are
// 32KB per geometry, small enough that every state's walk reads them from L1
// while the record chunk itself is touched once.
const manyTile = 4096

// manyEv is one predecoded record of the shared pass, packed into a single
// word so the per-state walk issues one load per record instead of a handful
// of narrow field loads: the exec latency with the D-side cost folded in, the
// I-side fill penalty, the rebuilt DISE stall, the branch-outcome flags, and
// the remapped operands. Sources outside the register file read the
// hardwired-zero slot (never written); destinations that must not retire a
// value (the zero register, out-of-file encodings) write the scratch slot,
// which no source ever reads. Field widths are guaranteed by the latency and
// penalty gates in RunSourceMany (evLatMax/evStallMax); configurations beyond
// them fall back to sequential RunSource.
//
// Layout (LSB up):
//
//	lat:12 | fetchLat:12 | stall:14 | misp:1 | taken:1 | seq:1 | srcA:6 | srcB:6 | dst:6
type manyEv = uint64

const (
	evLatShift   = 0
	evFetchShift = 12
	evStallShift = 24
	evMisp       = uint64(1) << 38 // mispredicted (wins over evTaken)
	evTaken      = uint64(1) << 39 // correctly predicted taken branch
	evSeq        = uint64(1) << 40 // replacement-sequence trigger (SeqLen > 0)
	evSrcAShift  = 41
	evSrcBShift  = 47
	evDstShift   = 53

	evLatMask   = 1<<12 - 1
	evStallMask = 1<<14 - 1
	evRegMask   = 1<<6 - 1

	evLatMax   = evLatMask   // lat and fetchLat ceiling
	evStallMax = evStallMask // stall ceiling
)

const evScratch = 63 // write-only scoreboard slot for suppressed dests

// manyTally accumulates the stream-property counters of the shared pass;
// they are identical for every state (ExpStalls applies only to stall-mode
// states, which is a per-state constant, not per-record work).
type manyTally struct {
	appInsts, mispredicts, diseStalls, seqs int64
}

// buildManyEvs runs the shared pass for one geometry over one tile: the
// cache simulation on h (whose counters become the whole group's counters),
// the stall rebuild under (miss, compose), and the operand remap. The
// returned tally must be consumed for exactly one group per tile.
func buildManyEvs(tile []Rec, h *mem.Hierarchy, miss, compose int, evs []manyEv) manyTally {
	var tally manyTally
	l1Latency := int32(h.L1Latency)
	for ri := range tile {
		d := &tile[ri]
		f := d.Flags

		stall := 0
		if f&(RecPTMiss|RecRTMiss) != 0 {
			if f&RecPTMiss != 0 {
				stall += miss
			}
			if f&RecRTMiss != 0 {
				if f&RecComposed != 0 {
					stall += compose
				} else {
					stall += miss
				}
			}
		}
		tally.diseStalls += int64(stall)

		var fl int32
		if d.FetchSize > 0 && !h.FetchHit(d.PC, int(d.FetchSize)) {
			if lat := h.FetchMiss(d.PC, int(d.FetchSize)); lat > 0 {
				fl = int32(lat)
			}
		}

		lat := int32(d.Lat)
		if f&(RecIsLoad|RecIsStore) != 0 {
			dlat := l1Latency
			if !h.DataHit(d.MemAddr) {
				dlat = int32(h.DataMiss(d.MemAddr))
			}
			if f&RecIsLoad != 0 {
				lat += dlat
			}
		}

		sa, sb, dst := d.SrcA, d.SrcB, d.Dst
		if sa >= isa.NumRegs {
			sa = isa.RegZero
		}
		if sb >= isa.NumRegs {
			sb = isa.RegZero
		}
		if dst == isa.RegZero || dst >= isa.NumRegs {
			dst = evScratch
		}

		w := uint64(uint32(lat)) | uint64(uint32(fl))<<evFetchShift |
			uint64(uint32(stall))<<evStallShift |
			uint64(sa)<<evSrcAShift | uint64(sb)<<evSrcBShift | uint64(dst)<<evDstShift
		if f&RecMispredict != 0 {
			w |= evMisp
			tally.mispredicts++
		} else if f&(RecIsBranch|RecTaken) == RecIsBranch|RecTaken {
			w |= evTaken
		}
		if d.SeqLen > 0 {
			w |= evSeq
			tally.seqs++
		}
		if f&RecIsApp != 0 {
			tally.appInsts++
		}
		evs[ri] = w
	}
	return tally
}

// manyState is one configuration's scheduler in RunSourceMany: exactly the
// loop-carried state of RunSource's scheduling loop. The scoreboard is
// indexed by the shared pass's remapped uint8 operands, so it spans the full
// byte range: live registers, the hardwired-zero slot (read-only), and the
// scratch slot (write-only) all land in it without a bounds check.
//
// The two bandwidth cursors are carried between tiles in position form: a
// (cycle, count) cursor of width w is the single monotone position
// p = cycle*w + count. The representation is lossless — (cycle, w) and
// (cycle+1, 0) are behaviourally identical, which is exactly the quotient the
// position takes — and the walks expand it back into (cycle, count) locals at
// tile boundaries.
type manyState struct {
	rob             []int64
	regReady        [64]int64
	fetchCycle      int64
	lastCommit      int64
	pDisp           int64 // dispatch cursor position (cycle*width + count)
	pCommit         int64 // commit cursor position
	width           int64 // shared dispatch/commit bandwidth
	robIdx          int
	robLen          int
	redirectPenalty int64
	seqMask         int64 // -1 in DISE stall mode (SeqLen>0 costs a cycle), else 0
}

// walk advances one state over a tile of shared-pass events. The body is an
// exact transliteration of RunSource's per-record scheduling with the
// stream-pure work (cache simulation, stall rebuild, counters) already
// folded into the events; the cursors are scalarized into locals so the
// cycle-accounting chains stay out of the stack frame. The data-dependent
// updates stay as branches on purpose: they predict well on real streams,
// and a fully branchless (CMOV + magic-divide) variant of this loop measured
// slower because it moves every update onto the loop-carried data chains.
func (st *manyState) walk(evs []manyEv) {
	fc, lc := st.fetchCycle, st.lastCommit
	pD, pC := st.pDisp, st.pCommit
	width := st.width
	robIdx, robLen := st.robIdx, st.robLen
	rob := st.rob
	rp := st.redirectPenalty
	seqMask := st.seqMask
	rr := &st.regReady

	dCy, dCt := pD/width, pD%width
	cCy, cCt := pC/width, pC%width

	for i := range evs {
		w := evs[i]
		if w&(evStallMask<<evStallShift) != 0 {
			if lc > fc {
				fc = lc
			}
			fc += int64(w >> evStallShift & evStallMask)
		}
		fc += int64(w >> evFetchShift & evLatMask)
		if seqMask != 0 && w&evSeq != 0 {
			fc++
		}
		dc := fc
		if rw := rob[robIdx]; rw > dc {
			dc = rw
		}
		if dc > dCy {
			dCy, dCt = dc, 0
		}
		if dCt >= width {
			dCy++
			dCt = 0
		}
		dCt++
		dc = dCy
		start := dc + 1
		if t := rr[w>>evSrcAShift&evRegMask]; t > start {
			start = t
		}
		if t := rr[w>>evSrcBShift&evRegMask]; t > start {
			start = t
		}
		done := start + int64(w&evLatMask)
		rr[w>>evDstShift&evRegMask] = done
		if w&(evMisp|evTaken) != 0 {
			if w&evMisp != 0 {
				if t := done + rp; t > fc {
					fc = t
				}
			} else if dc+1 > fc {
				fc = dc + 1
			}
			dCt = width
		}
		ct := done
		if ct < lc {
			ct = lc
		}
		if ct > cCy {
			cCy, cCt = ct, 0
		}
		if cCt >= width {
			cCy++
			cCt = 0
		}
		cCt++
		lc = cCy
		rob[robIdx] = cCy
		robIdx++
		if robIdx == robLen {
			robIdx = 0
		}
	}

	st.fetchCycle, st.lastCommit = fc, lc
	st.pDisp, st.pCommit = dCy*width+dCt, cCy*width+cCt
	st.robIdx = robIdx
}

// walkPair advances two states over one tile of events in a single loop:
// the two cycle-accounting dependency chains are independent, so
// interleaving them fills the host pipeline where a lone chain would stall
// on its own latency. The per-record semantics of each state are exactly
// walk's.
func walkPair(stA, stB *manyState, evs []manyEv) {
	fcA, lcA := stA.fetchCycle, stA.lastCommit
	widthA := stA.width
	dCyA, dCtA := stA.pDisp/widthA, stA.pDisp%widthA
	cCyA, cCtA := stA.pCommit/widthA, stA.pCommit%widthA
	robIdxA, robLenA := stA.robIdx, stA.robLen
	robA := stA.rob
	rpA := stA.redirectPenalty
	stallModeA := stA.seqMask != 0
	rrA := &stA.regReady

	fcB, lcB := stB.fetchCycle, stB.lastCommit
	widthB := stB.width
	dCyB, dCtB := stB.pDisp/widthB, stB.pDisp%widthB
	cCyB, cCtB := stB.pCommit/widthB, stB.pCommit%widthB
	robIdxB, robLenB := stB.robIdx, stB.robLen
	robB := stB.rob
	rpB := stB.redirectPenalty
	stallModeB := stB.seqMask != 0
	rrB := &stB.regReady

	for i := range evs {
		w := evs[i]
		stall := int64(w >> evStallShift & evStallMask)
		flat := int64(w >> evFetchShift & evLatMask)
		lat := int64(w & evLatMask)
		sa := w >> evSrcAShift & evRegMask
		sb := w >> evSrcBShift & evRegMask
		dst := w >> evDstShift & evRegMask

		if stall != 0 {
			if lcA > fcA {
				fcA = lcA
			}
			fcA += stall
			if lcB > fcB {
				fcB = lcB
			}
			fcB += stall
		}
		fcA += flat
		fcB += flat
		if w&evSeq != 0 {
			if stallModeA {
				fcA++
			}
			if stallModeB {
				fcB++
			}
		}

		dcA := fcA
		if rw := robA[robIdxA]; rw > dcA {
			dcA = rw
		}
		if dcA > dCyA {
			dCyA, dCtA = dcA, 0
		}
		if dCtA >= widthA {
			dCyA++
			dCtA = 0
		}
		dCtA++
		dcA = dCyA

		dcB := fcB
		if rw := robB[robIdxB]; rw > dcB {
			dcB = rw
		}
		if dcB > dCyB {
			dCyB, dCtB = dcB, 0
		}
		if dCtB >= widthB {
			dCyB++
			dCtB = 0
		}
		dCtB++
		dcB = dCyB

		startA := dcA + 1
		if t := rrA[sa]; t > startA {
			startA = t
		}
		if t := rrA[sb]; t > startA {
			startA = t
		}
		doneA := startA + lat
		rrA[dst] = doneA

		startB := dcB + 1
		if t := rrB[sa]; t > startB {
			startB = t
		}
		if t := rrB[sb]; t > startB {
			startB = t
		}
		doneB := startB + lat
		rrB[dst] = doneB

		if w&(evMisp|evTaken) != 0 {
			if w&evMisp != 0 {
				if t := doneA + rpA; t > fcA {
					fcA = t
				}
				if t := doneB + rpB; t > fcB {
					fcB = t
				}
			} else {
				if dcA+1 > fcA {
					fcA = dcA + 1
				}
				if dcB+1 > fcB {
					fcB = dcB + 1
				}
			}
			dCtA = widthA
			dCtB = widthB
		}

		ctA := doneA
		if ctA < lcA {
			ctA = lcA
		}
		if ctA > cCyA {
			cCyA, cCtA = ctA, 0
		}
		if cCtA >= widthA {
			cCyA++
			cCtA = 0
		}
		cCtA++
		lcA = cCyA
		robA[robIdxA] = cCyA
		robIdxA++
		if robIdxA == robLenA {
			robIdxA = 0
		}

		ctB := doneB
		if ctB < lcB {
			ctB = lcB
		}
		if ctB > cCyB {
			cCyB, cCtB = ctB, 0
		}
		if cCtB >= widthB {
			cCyB++
			cCtB = 0
		}
		cCtB++
		lcB = cCyB
		robB[robIdxB] = cCyB
		robIdxB++
		if robIdxB == robLenB {
			robIdxB = 0
		}
	}

	stA.fetchCycle, stA.lastCommit = fcA, lcA
	stA.pDisp, stA.pCommit = dCyA*widthA+dCtA, cCyA*widthA+cCtA
	stA.robIdx = robIdxA

	stB.fetchCycle, stB.lastCommit = fcB, lcB
	stB.pDisp, stB.pCommit = dCyB*widthB+dCtB, cCyB*widthB+cCtB
	stB.robIdx = robIdxB
}

// RunSourceMany times one recorded stream under several configurations in a
// single pass, sharing everything that is a pure function of the stream: the
// record fetch, the DISE stall rebuild, the stream counters, and — per
// distinct cache geometry — the entire memory-hierarchy simulation. Each
// element of the result is byte-identical to RunSource over a fresh replay
// of the same trace with the same configuration (pinned by
// TestRunSourceManyMatchesIndividualReplays). This is the sweep shape of the
// timing harnesses and the batch serving tier: one capture, k timing-only
// cells, one walk.
//
// Configurations carrying a Hook or a watchdog (MaxCycles > 0), or invalid
// ones, make the whole call fall back to sequential RunSource runs — the
// chunked walk of a trace replay is stateless over the source, so repeated
// RunSource calls on one Replayer are independent.
func RunSourceMany(src ChunkedSource, cfgs []Config) (out []*Result) {
	out = make([]*Result, len(cfgs))
	if len(cfgs) == 0 {
		return out
	}
	sequential := len(cfgs) == 1
	for i := range cfgs {
		cfg := &cfgs[i]
		if cfg.Hook != nil || cfg.MaxCycles > 0 ||
			cfg.Width <= 0 || cfg.ROB <= 0 || cfg.PipeDepth <= 0 {
			sequential = true
		}
		// The shared walk has one cancellation point; configurations with
		// distinct contexts cannot share it.
		if cfg.Ctx != cfgs[0].Ctx {
			sequential = true
		}
		// The packed-event field widths must hold every latency the memory
		// system can produce: a data miss costs at most L1+L2+Mem on top of a
		// record's own 8-bit latency, and a fetch miss at most one L2-or-memory
		// walk per missing line of the largest possible fetch.
		m := &cfg.Mem
		if m.IL1.LineSize <= 0 || m.L1Latency < 0 || m.L2Latency < 0 || m.MemLatency < 0 {
			sequential = true
		} else {
			maxData := m.L1Latency + m.L2Latency + m.MemLatency
			maxFetch := (255/m.IL1.LineSize + 2) * (m.L2Latency + m.MemLatency)
			if 255+maxData > evLatMax || maxFetch > evLatMax {
				sequential = true
			}
		}
	}
	// The DISE stall field has the same packing bound; penalties beyond it
	// (or malformed negative ones) take the sequential path too. Chunks is a
	// read-only accessor shared between concurrent replays, so the fallback's
	// RunSource calls are unaffected by reading it here.
	chunks, miss, compose := src.Chunks()
	if miss < 0 || compose < 0 || 2*miss+compose > evStallMax {
		sequential = true
	}
	if sequential {
		for i, cfg := range cfgs {
			out[i] = RunSource(src, cfg)
		}
		return out
	}
	defer func() {
		if r := recover(); r != nil {
			err := &emu.Trap{Kind: emu.TrapInternal, Detail: fmt.Sprintf("cpu: %v", r)}
			for i := range out {
				out[i] = &Result{Err: err}
			}
		}
	}()

	// One hierarchy (and one shared-pass event buffer) per distinct cache
	// geometry; states carry their group index.
	type manyGroup struct {
		cfg mem.HierarchyConfig
		h   *mem.Hierarchy
		evs []manyEv
	}
	var groups []*manyGroup
	groupOf := make([]int, len(cfgs))
	for i, cfg := range cfgs {
		gi := -1
		for k, g := range groups {
			if g.cfg == cfg.Mem {
				gi = k
				break
			}
		}
		if gi < 0 {
			h, err := getHierarchy(cfg.Mem)
			if err != nil {
				for _, g := range groups {
					putHierarchy(g.cfg, g.h)
				}
				for j, c := range cfgs {
					out[j] = RunSource(src, c)
				}
				return out
			}
			groups = append(groups, &manyGroup{cfg: cfg.Mem, h: h, evs: make([]manyEv, manyTile)})
			gi = len(groups) - 1
		}
		groupOf[i] = gi
	}

	states := make([]manyState, len(cfgs))
	for i, cfg := range cfgs {
		st := &states[i]
		st.rob = make([]int64, cfg.ROB)
		st.robLen = cfg.ROB
		st.width = int64(cfg.Width)
		st.redirectPenalty = int64(cfg.PipeDepth)
		if cfg.DiseMode == DisePipe {
			st.redirectPenalty++
		}
		if cfg.DiseMode == DiseStall {
			st.seqMask = -1
		}
	}

	var cancelDone <-chan struct{}
	if ctx := cfgs[0].Ctx; ctx != nil {
		cancelDone = ctx.Done()
	}
	// Group membership, for pairing walks within a geometry.
	groupStates := make([][]int, len(groups))
	for i := range cfgs {
		groupStates[groupOf[i]] = append(groupStates[groupOf[i]], i)
	}
	// Partition the per-state work into independent walk units: pairs of
	// states sharing a geometry (walked interleaved, which overlaps their
	// dependence chains) plus at most one lone state per group. Every unit
	// reads its group's event array and writes only its own states, so on
	// multi-core hosts the units of a tile run concurrently; with a single
	// core (or a single unit) the fan-out would be pure overhead and the
	// units run inline instead.
	type walkUnit struct{ group, a, b int }
	units := make([]walkUnit, 0, (len(cfgs)+1)/2)
	for gi := range groups {
		members := groupStates[gi]
		k := 0
		for ; k+1 < len(members); k += 2 {
			units = append(units, walkUnit{gi, members[k], members[k+1]})
		}
		if k < len(members) {
			units = append(units, walkUnit{gi, members[k], -1})
		}
	}
	parallelWalks := runtime.GOMAXPROCS(0) > 1 && len(units) > 1
	runUnit := func(u walkUnit, n int) {
		evs := groups[u.group].evs[:n]
		if u.b >= 0 {
			walkPair(&states[u.a], &states[u.b], evs)
		} else {
			states[u.a].walk(evs)
		}
	}

	var tally manyTally
	var insts int64
	for _, cur := range chunks {
		if cancelDone != nil {
			select {
			case <-cancelDone:
				err := &emu.Trap{Kind: emu.TrapCancelled,
					Cause: context.Cause(cfgs[0].Ctx), Detail: "run cancelled"}
				for i := range out {
					out[i] = &Result{Err: err}
				}
				for _, g := range groups {
					putHierarchy(g.cfg, g.h)
				}
				return out
			default:
			}
		}
		for len(cur) > 0 {
			n := min(len(cur), manyTile)
			tile := cur[:n]
			for gi, g := range groups {
				t := buildManyEvs(tile, g.h, miss, compose, g.evs[:n])
				if gi == 0 {
					tally.appInsts += t.appInsts
					tally.mispredicts += t.mispredicts
					tally.diseStalls += t.diseStalls
					tally.seqs += t.seqs
				}
			}
			if parallelWalks {
				var wg sync.WaitGroup
				wg.Add(len(units))
				for _, u := range units {
					go func(u walkUnit) {
						defer wg.Done()
						runUnit(u, n)
					}(u)
				}
				wg.Wait()
			} else {
				for _, u := range units {
					runUnit(u, n)
				}
			}
			insts += int64(n)
			cur = cur[n:]
		}
	}

	stats, output, ferr := src.Final()
	pred := src.PredStats()
	for i := range states {
		st := &states[i]
		h := groups[groupOf[i]].h
		var expStalls int64
		if st.seqMask != 0 {
			expStalls = tally.seqs
		}
		out[i] = &Result{
			Cycles:         st.lastCommit,
			Insts:          insts,
			AppInsts:       tally.appInsts,
			Mispredicts:    tally.mispredicts,
			DiseStalls:     tally.diseStalls,
			ExpStalls:      expStalls,
			ICacheAccesses: h.IL1.Stats.Accesses,
			ICacheMisses:   h.IL1.Stats.Misses,
			DCacheAccesses: h.DL1.Stats.Accesses,
			DCacheMisses:   h.DL1.Stats.Misses,
			Emu:            stats,
			Output:         output,
			Err:            ferr,
			Pred:           pred,
		}
	}
	for _, g := range groups {
		putHierarchy(g.cfg, g.h)
	}
	return out
}
