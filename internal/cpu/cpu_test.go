package cpu

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// chainLoop builds a loop whose body is `n` data-dependent adds.
func chainLoop(n int) string {
	var b strings.Builder
	b.WriteString(".entry main\nmain:\n    li r1, 0\n    li r2, 1000\nloop:\n")
	for i := 0; i < n; i++ {
		b.WriteString("    addqi r1, 1, r1\n")
	}
	b.WriteString("    subqi r2, 1, r2\n    bgt r2, loop\n    halt\n")
	return b.String()
}

// parLoop builds a loop whose body is `n` independent adds.
func parLoop(n int) string {
	var b strings.Builder
	b.WriteString(".entry main\nmain:\n    li r2, 1000\nloop:\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    addqi r%d, 1, r%d\n", 3+i%8, 3+i%8)
	}
	b.WriteString("    subqi r2, 1, r2\n    bgt r2, loop\n    halt\n")
	return b.String()
}

func run(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	m := emu.New(asm.MustAssemble("t", src))
	r := Run(m, cfg)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	return r
}

func TestDependentChainIPCNearOne(t *testing.T) {
	r := run(t, chainLoop(16), DefaultConfig())
	ipc := r.IPC()
	if ipc < 0.8 || ipc > 1.3 {
		t.Errorf("dependent chain IPC = %.2f, want ~1", ipc)
	}
}

func TestIndependentOpsScaleWithWidth(t *testing.T) {
	cfg := DefaultConfig()
	r4 := run(t, parLoop(16), cfg)
	cfg.Width = 1
	r1 := run(t, parLoop(16), cfg)
	if r4.IPC() < 2.5 {
		t.Errorf("4-wide IPC on independent ops = %.2f, want > 2.5", r4.IPC())
	}
	if r1.IPC() > 1.01 {
		t.Errorf("1-wide IPC = %.2f, want <= 1", r1.IPC())
	}
	if !(r4.Cycles < r1.Cycles) {
		t.Error("4-wide should be faster than 1-wide")
	}
}

func TestWiderMachinesNotSlower(t *testing.T) {
	cfg := DefaultConfig()
	var prev int64 = 1 << 62
	for _, w := range []int{1, 2, 4, 8} {
		cfg.Width = w
		r := run(t, parLoop(12), cfg)
		if r.Cycles > prev+prev/100 {
			t.Errorf("width %d slower than narrower machine (%d > %d)", w, r.Cycles, prev)
		}
		prev = r.Cycles
	}
}

// bigLoop creates a loop body much larger than the I-cache.
func bigLoop(insts int) string {
	var b strings.Builder
	b.WriteString(".entry main\nmain:\n    li r2, 50\nloop:\n")
	for i := 0; i < insts; i++ {
		fmt.Fprintf(&b, "    addqi r%d, 1, r%d\n", 3+i%8, 3+i%8)
	}
	b.WriteString("    subqi r2, 1, r2\n    bgt r2, loop\n    halt\n")
	return b.String()
}

func TestICachePressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.IL1.Size = 1 << 10 // 1KB: 256 instructions
	small := run(t, bigLoop(100), cfg)

	cfg2 := DefaultConfig()
	cfg2.Mem.IL1.Size = 1 << 10
	big := run(t, bigLoop(2000), cfg2)

	if small.ICacheMisses > 40 {
		t.Errorf("resident loop misses = %d", small.ICacheMisses)
	}
	if big.ICacheMisses < 1000 {
		t.Errorf("oversized loop misses = %d, want many", big.ICacheMisses)
	}
	if big.IPC() >= small.IPC() {
		t.Errorf("thrashing loop IPC %.2f should be below resident loop IPC %.2f",
			big.IPC(), small.IPC())
	}
}

func TestPerfectICacheRemovesMissCost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.IL1.Size = 1 << 10
	finite := run(t, bigLoop(2000), cfg)
	cfg.Mem.IL1.Perfect = true
	perfect := run(t, bigLoop(2000), cfg)
	if perfect.ICacheMisses != 0 {
		t.Errorf("perfect I-cache misses = %d", perfect.ICacheMisses)
	}
	if perfect.Cycles >= finite.Cycles {
		t.Error("perfect I-cache should be faster")
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	r := run(t, chainLoop(4), DefaultConfig())
	// A 1000-iteration loop branch: gshare should approach perfect.
	rate := float64(r.Pred.CondMiss) / float64(r.Pred.CondBranches)
	if rate > 0.05 {
		t.Errorf("loop branch miss rate = %.3f", rate)
	}
}

func TestDataDependentBranchMispredicts(t *testing.T) {
	// Branch on a pseudo-random bit: prediction near chance; mispredict
	// penalty dominates.
	src := `
.entry main
main:
    li r1, 12345
    li r2, 4000
loop:
    srli r1, 7, r3
    xor  r1, r3, r1
    slli r1, 9, r3
    xor  r1, r3, r1
    srli r1, 13, r3
    xor  r1, r3, r1
    andi r1, 1, r3
    beq r3, skip
    addqi r4, 1, r4
skip:
    subqi r2, 1, r2
    bgt r2, loop
    halt
`
	r := run(t, src, DefaultConfig())
	if r.Mispredicts < 1000 {
		t.Errorf("random branch mispredicts = %d, want ~2000", r.Mispredicts)
	}
	// Deeper pipelines pay more per mispredict.
	cfg := DefaultConfig()
	cfg.PipeDepth = 24
	deep := run(t, src, cfg)
	if deep.Cycles <= r.Cycles {
		t.Error("deeper pipeline should be slower on mispredict-heavy code")
	}
}

func TestCallsUseRAS(t *testing.T) {
	src := `
.entry main
main:
    li r2, 500
loop:
    bsr ra, f
    subqi r2, 1, r2
    bgt r2, loop
    halt
f:
    addqi r3, 1, r3
    ret
`
	r := run(t, src, DefaultConfig())
	if r.Pred.Returns < 500 || r.Pred.RetMiss > 2 {
		t.Errorf("RAS stats = %+v", r.Pred)
	}
}

const storeLoop = `
.entry main
main:
    li r2, 1000
    la r1, buf
loop:
    stq r2, 0(r1)
    addqi r1, 8, r1
    subqi r2, 1, r2
    bgt r2, loop
    halt
.data
buf: .space 8192
`

func mfiEngine(t *testing.T, perfect bool) *core.Controller {
	t.Helper()
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = perfect
	c := core.NewController(cfg)
	_, err := c.InstallFile(`
prod mfi_store {
    match class == store
    replace {
        srli %rs, 26, $dr1
        xor  $dr1, $dr2, $dr1
        dbeq $dr1, @ok
        sys  3
    @ok:
        %insn
    }
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runMFI(t *testing.T, cfg Config, perfect bool) *Result {
	t.Helper()
	m := emu.New(asm.MustAssemble("s", storeLoop))
	c := mfiEngine(t, perfect)
	m.SetExpander(c.Engine())
	m.SetReg(isa.RegDR0+2, program.SegData)
	r := Run(m, cfg)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	return r
}

func TestMFISlowdownOrdering(t *testing.T) {
	base := run(t, storeLoop, DefaultConfig())

	free := runMFI(t, DefaultConfig(), true)
	cfgStall := DefaultConfig()
	cfgStall.DiseMode = DiseStall
	stall := runMFI(t, cfgStall, true)
	cfgPipe := DefaultConfig()
	cfgPipe.DiseMode = DisePipe
	pipe := runMFI(t, cfgPipe, true)

	if !(base.Cycles <= free.Cycles) {
		t.Errorf("MFI free (%d) should not beat no-ACF (%d)", free.Cycles, base.Cycles)
	}
	if !(free.Cycles <= stall.Cycles) {
		t.Errorf("stall mode (%d) should cost at least free (%d)", stall.Cycles, free.Cycles)
	}
	if !(free.Cycles <= pipe.Cycles) {
		t.Errorf("pipe mode (%d) should cost at least free (%d)", pipe.Cycles, free.Cycles)
	}
	// Expansion on every store: stall cycles ~= number of stores.
	if stall.ExpStalls < 1000 {
		t.Errorf("ExpStalls = %d, want >= 1000", stall.ExpStalls)
	}
	// Replacement instructions do not touch the I-cache: same misses as base.
	if free.ICacheMisses > base.ICacheMisses+8 {
		t.Errorf("MFI icache misses %d vs base %d: replacement insts should not occupy the cache",
			free.ICacheMisses, base.ICacheMisses)
	}
}

func TestRTMissStallsAppear(t *testing.T) {
	r := runMFI(t, DefaultConfig(), false) // finite RT: one cold miss
	if r.DiseStalls == 0 {
		t.Error("finite RT should charge at least the cold miss")
	}
	rp := runMFI(t, DefaultConfig(), true)
	if rp.DiseStalls != 0 {
		t.Errorf("perfect RT charged %d stall cycles", rp.DiseStalls)
	}
}

func TestBadConfigRejected(t *testing.T) {
	m := emu.New(asm.MustAssemble("t", ".entry main\nmain:\n halt\n"))
	r := Run(m, Config{})
	if r.Err == nil {
		t.Error("zero config should be rejected")
	}
}

func TestResultCountsMatchEmu(t *testing.T) {
	r := run(t, chainLoop(4), DefaultConfig())
	if r.Insts != r.Emu.Total {
		t.Errorf("timed insts %d != emu total %d", r.Insts, r.Emu.Total)
	}
	if r.AppInsts != r.Emu.AppInsts {
		t.Errorf("timed app insts %d != emu app %d", r.AppInsts, r.Emu.AppInsts)
	}
}

func TestWatchdogStopsInfiniteLoop(t *testing.T) {
	m := emu.New(asm.MustAssemble("t", `
.entry main
main:
    br zero, main
`))
	cfg := DefaultConfig()
	cfg.MaxCycles = 10000
	r := Run(m, cfg)
	var trap *emu.Trap
	if !errors.As(r.Err, &trap) || trap.Kind != emu.TrapWatchdog {
		t.Fatalf("err = %v, want watchdog trap", r.Err)
	}
	if r.Cycles > cfg.MaxCycles+1000 {
		t.Errorf("watchdog fired too late: %d cycles", r.Cycles)
	}
}

func TestWatchdogQuietOnNormalRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 40
	r := run(t, chainLoop(3), cfg)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
}

func TestHookSeesEveryInstruction(t *testing.T) {
	cfg := DefaultConfig()
	var calls int64
	cfg.Hook = func(insts int64, h *mem.Hierarchy) {
		calls = insts
		if h == nil {
			t.Fatal("hook got nil hierarchy")
		}
	}
	r := run(t, chainLoop(3), cfg)
	if calls != r.Insts {
		t.Errorf("hook saw %d instructions, committed %d", calls, r.Insts)
	}
}

func TestBadHierarchyConfigIsError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem.IL1.Size = 7 // not divisible into sets
	m := emu.New(asm.MustAssemble("t", chainLoop(1)))
	r := Run(m, cfg)
	if !errors.Is(r.Err, mem.ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", r.Err)
	}
}

func TestHostileDestRegisterDoesNotPanic(t *testing.T) {
	// An expander that emits out-of-range register indices must not crash
	// the scheduler.
	src := `
.entry main
main:
    li r1, 1
    halt
`
	m := emu.New(asm.MustAssemble("t", src))
	m.SetExpander(hostileExpander{})
	r := Run(m, DefaultConfig())
	if r.Err != nil {
		var trap *emu.Trap
		if errors.As(r.Err, &trap) && trap.Kind == emu.TrapInternal {
			t.Fatalf("scheduler panicked internally: %v", r.Err)
		}
	}
}

type hostileExpander struct{}

func (hostileExpander) Expand(in isa.Inst, pc uint64) *core.Expansion {
	if in.Op != isa.OpLDA {
		return nil
	}
	bad := isa.Inst{Op: isa.OpADDQ, RS: isa.Reg(200), RT: isa.Reg(201), RD: isa.Reg(202)}
	return &core.Expansion{
		Insts:     []isa.Inst{bad, in},
		Templates: []core.ReplInst{core.FromLiteral(bad), core.TriggerInst()},
	}
}
