package cpu

import "testing"

func TestBandwidthCursor(t *testing.T) {
	c := bandwidthCursor{width: 2}
	if got := c.slot(5); got != 5 {
		t.Errorf("first slot = %d", got)
	}
	if got := c.slot(5); got != 5 {
		t.Errorf("second slot = %d", got)
	}
	if got := c.slot(5); got != 6 {
		t.Errorf("third slot should spill to next cycle, got %d", got)
	}
	c.close()
	if got := c.slot(6); got != 7 {
		t.Errorf("slot after close = %d, want 7", got)
	}
	// Requests never go backwards.
	if got := c.slot(3); got < 7 {
		t.Errorf("cursor went backwards: %d", got)
	}
}
