package cpu

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/bpred"
	"repro/internal/emu"
	"repro/internal/isa"
)

const spinSrc = `
.entry main
main:
    br zero, main
`

func TestCancelledContextStopsInfiniteLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	cfg.Ctx = ctx
	r := Run(emu.New(asm.MustAssemble("t", spinSrc)), cfg)
	var trap *emu.Trap
	if !errors.As(r.Err, &trap) || trap.Kind != emu.TrapCancelled {
		t.Fatalf("err = %v, want cancelled trap", r.Err)
	}
	if !errors.Is(r.Err, emu.ErrCancelled) {
		t.Errorf("errors.Is(err, emu.ErrCancelled) = false, want true")
	}
	if !errors.Is(r.Err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false, want true")
	}
	// The poll runs every cancelStride records; a pre-cancelled context must
	// stop the run within one stride.
	if r.Insts > cancelStride {
		t.Errorf("run executed %d records after cancellation, want <= %d", r.Insts, cancelStride)
	}
}

func TestContextQuietOnNormalRuns(t *testing.T) {
	plain := run(t, chainLoop(3), DefaultConfig())
	cfg := DefaultConfig()
	cfg.Ctx = context.Background()
	withCtx := run(t, chainLoop(3), cfg)
	if !reflect.DeepEqual(plain, withCtx) {
		t.Errorf("a live background context changed the result:\nplain:   %+v\nwithCtx: %+v", plain, withCtx)
	}
}

// fakeChunked is a minimal in-memory ChunkedSource: one chunk of trivial
// records, for exercising the chunked-walk cancellation points without
// importing internal/trace (which depends on this package).
type fakeChunked struct{ chunks [][]Rec }

func (f *fakeChunked) Next() (*Rec, int, bool)           { return nil, 0, false }
func (f *fakeChunked) Loc() (uint64, int)                { return 0, 0 }
func (f *fakeChunked) Final() (emu.Stats, string, error) { return emu.Stats{}, "", nil }
func (f *fakeChunked) PredStats() bpred.Stats            { return bpred.Stats{} }
func (f *fakeChunked) Chunks() ([][]Rec, int, int)       { return f.chunks, 30, 150 }

func fakeStream(n int) *fakeChunked {
	recs := make([]Rec, n)
	for i := range recs {
		recs[i] = Rec{Op: isa.OpADDQ, SrcA: isa.NoReg, SrcB: isa.NoReg,
			Dst: isa.RegZero, Lat: 1, FetchSize: 4, Flags: RecIsApp}
	}
	return &fakeChunked{chunks: [][]Rec{recs}}
}

func TestCancelledContextStopsChunkedWalk(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	cfg.Ctx = ctx
	r := RunSource(fakeStream(3*cancelStride), cfg)
	if !errors.Is(r.Err, emu.ErrCancelled) {
		t.Fatalf("chunked walk err = %v, want cancelled trap", r.Err)
	}
}

func TestCancelledContextStopsRunSourceMany(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := make([]Config, 3)
	for i := range cfgs {
		cfgs[i] = DefaultConfig()
		cfgs[i].Ctx = ctx
	}
	for i, r := range RunSourceMany(fakeStream(3*cancelStride), cfgs) {
		if !errors.Is(r.Err, emu.ErrCancelled) {
			t.Errorf("cfg %d: err = %v, want cancelled trap", i, r.Err)
		}
	}
}

func TestRunSourceManyMixedContextsFallsBackSequential(t *testing.T) {
	// Distinct per-config contexts cannot share one walk: each config must
	// still be timed correctly via the sequential fallback.
	cfgs := make([]Config, 2)
	cfgs[0] = DefaultConfig()
	cfgs[0].Ctx = context.Background()
	cfgs[1] = DefaultConfig()
	ref := RunSource(fakeStream(100), DefaultConfig())
	for i, r := range RunSourceMany(fakeStream(100), cfgs) {
		if r.Err != nil || r.Cycles != ref.Cycles || r.Insts != ref.Insts {
			t.Errorf("cfg %d: got (cycles=%d insts=%d err=%v), want (cycles=%d insts=%d)",
				i, r.Cycles, r.Insts, r.Err, ref.Cycles, ref.Insts)
		}
	}
}
