package trace

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/emu"
)

const codecAsm = `
.entry main
.data
buf: .space 64
.text
main:
    la r1, buf
    li r2, 4
loop:
    stq r2, 0(r1)
    addqi r1, 8, r1
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

func captureCodec(t *testing.T, budget int64) *Trace {
	t.Helper()
	prog, err := asm.Assemble("codec", codecAsm)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog)
	if budget > 0 {
		m.SetBudget(budget)
	}
	return Capture(m)
}

// TestMarshalRoundTrip requires a decoded trace to replay byte-identically
// to the original: same records, same final state, same timed result.
func TestMarshalRoundTrip(t *testing.T) {
	for name, budget := range map[string]int64{"clean": 0, "budget-trap": 7} {
		t.Run(name, func(t *testing.T) {
			tr := captureCodec(t, budget)
			data, err := tr.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnmarshalBinary(data)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != tr.Len() {
				t.Fatalf("Len %d != %d", got.Len(), tr.Len())
			}
			want := tr.Excerpt(tr.Len())
			have := got.Excerpt(got.Len())
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("record %d differs: %+v vs %+v", i, want[i], have[i])
				}
			}
			cfg := cpu.DefaultConfig()
			a := cpu.RunSource(tr.Replay(30, 150), cfg)
			b := cpu.RunSource(got.Replay(30, 150), cfg)
			if a.Cycles != b.Cycles || a.Insts != b.Insts || a.Mispredicts != b.Mispredicts ||
				a.DiseStalls != b.DiseStalls || a.Output != b.Output {
				t.Fatalf("replay diverged: %+v vs %+v", a, b)
			}
			switch {
			case a.Err == nil && b.Err != nil, a.Err != nil && b.Err == nil:
				t.Fatalf("error divergence: %v vs %v", a.Err, b.Err)
			case a.Err != nil && a.Err.Error() != b.Err.Error():
				t.Fatalf("error text divergence: %q vs %q", a.Err, b.Err)
			}
			if a.Err != nil {
				var ta, tb *emu.Trap
				if !errors.As(a.Err, &ta) || !errors.As(b.Err, &tb) || ta.Kind != tb.Kind {
					t.Fatalf("trap kind divergence: %v vs %v", a.Err, b.Err)
				}
			}
			// A second marshal of the decoded trace is byte-identical: the
			// format is canonical.
			data2, err := got.MarshalBinary()
			if err != nil || !bytes.Equal(data, data2) {
				t.Fatalf("re-marshal not canonical (err %v)", err)
			}
		})
	}
}

func TestMarshalRefusesCancelled(t *testing.T) {
	tr := &Trace{err: emu.ErrCancelled}
	if _, err := tr.MarshalBinary(); err == nil {
		t.Fatal("serialized a cancelled capture")
	}
}

// TestUnmarshalHostile feeds structurally broken inputs; each must return
// an ErrBadTrace-matching error, never panic, never a trace.
func TestUnmarshalHostile(t *testing.T) {
	tr := captureCodec(t, 0)
	good, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("XXXX"), good[4:]...),
		"bad version":   append(bytes.Clone(good[:4]), append([]byte{9, 0, 0, 0}, good[8:]...)...),
		"truncated":     good[:len(good)-5],
		"extra byte":    append(bytes.Clone(good), 0),
		"header only":   good[:16],
		"records short": good[:len(good)-32],
	}
	// Hostile record count: claim more records than the buffer holds.
	huge := bytes.Clone(good)
	for i := 8; i < 16; i++ {
		huge[i] = 0xff
	}
	cases["overflow count"] = huge
	for name, data := range cases {
		if got, err := UnmarshalBinary(data); err == nil || !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: (%v, %v), want ErrBadTrace", name, got, err)
		}
	}
}

// TestUnmarshalRejectsBadTrap: a trap kind outside the defined range must
// not decode into a trace that would render as a nonsense trap name.
func TestUnmarshalRejectsBadTrap(t *testing.T) {
	tr := captureCodec(t, 7) // terminates with a budget trap
	good, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The trap tag byte follows magic(4) + version(4) + n(8) + 15 counters
	// + output string (u32 len, empty). Find it structurally: locate the
	// errTrap tag and bump the kind byte after it out of range.
	off := 4 + 4 + 8 + 15*8 + 4
	if good[off] != errTrap {
		t.Fatalf("layout drift: tag byte %d at offset %d", good[off], off)
	}
	bad := bytes.Clone(good)
	bad[off+1] = 0xee
	if _, err := UnmarshalBinary(bad); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("out-of-range trap kind: %v, want ErrBadTrace", err)
	}
	none := bytes.Clone(good)
	none[off+1] = 0 // TrapNone never appears in a raised trap
	if _, err := UnmarshalBinary(none); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("TrapNone trap: %v, want ErrBadTrace", err)
	}
}
