package trace_test

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

// mixedSrc exercises every stream feature the trace must reproduce:
// conditional branches (loop + data-dependent), calls/returns through the
// RAS, loads and stores, and enough volume to warm the predictor.
const mixedSrc = `
.entry main
main:
    li r1, 12345
    li r2, 1200
    la r5, buf
loop:
    srli r1, 7, r3
    xor  r1, r3, r1
    slli r1, 9, r3
    xor  r1, r3, r1
    andi r1, 1, r3
    beq r3, skip
    bsr ra, bump
skip:
    stq r1, 0(r5)
    ldq r4, 0(r5)
    addqi r5, 8, r5
    subqi r2, 1, r2
    bgt r2, loop
    sys 1
    halt
bump:
    addqi r6, 1, r6
    ret
.data
buf: .space 16384
`

const mfiProds = `
prod mfi_store {
    match class == store
    replace {
        srli %rs, 26, $dr1
        xor  $dr1, $dr2, $dr1
        dbeq $dr1, @ok
        sys  3
    @ok:
        %insn
    }
}
`

// newMachine builds a machine over src; when ecfg is non-nil an MFI
// controller with that engine configuration is installed. Every call
// returns an identically prepared, fresh machine.
func newMachine(t *testing.T, src string, ecfg *core.EngineConfig) *emu.Machine {
	t.Helper()
	m := emu.New(asm.MustAssemble("t", src))
	if ecfg != nil {
		c := core.NewController(*ecfg)
		if _, err := c.InstallFile(mfiProds, nil); err != nil {
			t.Fatal(err)
		}
		m.SetExpander(c.Engine())
		m.SetReg(isa.RegDR0+2, program.SegData)
	}
	return m
}

// checkEqual captures one machine and requires that replay under (miss,
// compose) reproduces the live run of an identically prepared machine under
// cfg, field for field.
func checkEqual(t *testing.T, name string, mk func() *emu.Machine, cfg cpu.Config, miss, compose int) {
	t.Helper()
	tr := trace.Capture(mk())
	live := cpu.Run(mk(), cfg)
	replay := cpu.RunSource(tr.Replay(miss, compose), cfg)
	if live.Err != nil || replay.Err != nil {
		t.Fatalf("%s: live err %v, replay err %v", name, live.Err, replay.Err)
	}
	if !reflect.DeepEqual(live, replay) {
		t.Errorf("%s: live and replay results differ\nlive:   %+v\nreplay: %+v", name, live, replay)
	}
}

func TestReplayMatchesLivePlain(t *testing.T) {
	mk := func() *emu.Machine { return newMachine(t, mixedSrc, nil) }
	checkEqual(t, "default", mk, cpu.DefaultConfig(), 30, 150)

	small := cpu.DefaultConfig()
	small.Mem.IL1.Size = 1 << 10
	small.Width = 2
	small.ROB = 32
	checkEqual(t, "small-cache-narrow", mk, small, 30, 150)
}

func TestReplayMatchesLiveMFI(t *testing.T) {
	for _, tc := range []struct {
		name    string
		perfect bool
		mode    cpu.DiseMode
	}{
		{"perfect-free", true, cpu.DiseFree},
		{"perfect-stall", true, cpu.DiseStall},
		{"perfect-pipe", true, cpu.DisePipe},
		{"finite-free", false, cpu.DiseFree},
		{"finite-pipe", false, cpu.DisePipe},
	} {
		ecfg := core.DefaultEngineConfig()
		ecfg.RTPerfect = tc.perfect
		ecfg.RTEntries = 512
		ecfg.RTAssoc = 2
		mk := func() *emu.Machine { return newMachine(t, mixedSrc, &ecfg) }
		cfg := cpu.DefaultConfig()
		cfg.DiseMode = tc.mode
		checkEqual(t, tc.name, mk, cfg, ecfg.MissPenalty, ecfg.ComposePenalty)
	}
}

// A trace captured under one penalty assignment must replay correctly under
// another: the recorded PT/RT events are penalty-invariant, so the replayed
// stall cycles must equal a live run whose engine charges those penalties.
func TestReplayRebuildsStallsUnderNewPenalties(t *testing.T) {
	geom := core.DefaultEngineConfig()
	geom.RTEntries = 512
	geom.RTAssoc = 2

	capCfg := geom // capture with the default 30/150 penalties
	tr := trace.Capture(newMachine(t, mixedSrc, &capCfg))

	for _, pen := range []int{10, 60, 300} {
		liveCfg := geom
		liveCfg.MissPenalty = pen
		liveCfg.ComposePenalty = pen
		live := cpu.Run(newMachine(t, mixedSrc, &liveCfg), cpu.DefaultConfig())
		replay := cpu.RunSource(tr.Replay(pen, pen), cpu.DefaultConfig())
		if live.Err != nil || replay.Err != nil {
			t.Fatalf("pen %d: live err %v, replay err %v", pen, live.Err, replay.Err)
		}
		if !reflect.DeepEqual(live, replay) {
			t.Errorf("pen %d: live and replay differ\nlive:   %+v\nreplay: %+v", pen, live, replay)
		}
	}
}

func TestReplayIsRepeatable(t *testing.T) {
	ecfg := core.DefaultEngineConfig()
	ecfg.RTEntries = 512
	tr := trace.Capture(newMachine(t, mixedSrc, &ecfg))
	cfg := cpu.DefaultConfig()
	a := cpu.RunSource(tr.Replay(30, 150), cfg)
	b := cpu.RunSource(tr.Replay(30, 150), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("two replays of one trace disagree")
	}
}

func TestTraceRecordsTermination(t *testing.T) {
	// A program that traps must replay to the same error and output.
	src := `
.entry main
main:
    li r1, 65
    sys 1
    sys 99
`
	tr := trace.Capture(newMachine(t, src, nil))
	if tr.Err() == nil {
		t.Fatal("capture should record the trap")
	}
	live := cpu.Run(newMachine(t, src, nil), cpu.DefaultConfig())
	replay := cpu.RunSource(tr.Replay(30, 150), cpu.DefaultConfig())
	if live.Output != replay.Output || live.Output == "" {
		t.Errorf("output: live %q, replay %q", live.Output, replay.Output)
	}
	if live.Err == nil || replay.Err == nil || live.Err.Error() != replay.Err.Error() {
		t.Errorf("err: live %v, replay %v", live.Err, replay.Err)
	}
}

// RunSourceMany steps several configurations over one record walk; each
// element must be byte-identical to an individual RunSource replay of the
// same trace. This is the guard that lets the sweep harnesses group their
// timing-only cells into one pass.
func TestRunSourceManyMatchesIndividualReplays(t *testing.T) {
	assertManyMatchesIndividual(t)
}

// TestRunSourceManyParallelWalksMatch forces the multi-core walk fan-out —
// bypassed whenever GOMAXPROCS is 1, as on a single-core CI container —
// and requires the concurrently-walked results to stay byte-identical too.
func TestRunSourceManyParallelWalksMatch(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	assertManyMatchesIndividual(t)
}

// manySweepConfigs is the config variety the grouped-walk identity tests
// sweep: distinct cache geometries (two sizes plus perfect), widths
// including 1 and a non-power-of-two, a small ROB, and every DISE mode.
func manySweepConfigs() []cpu.Config {
	small := cpu.DefaultConfig()
	small.Mem.IL1.Size = 1 << 10
	narrow := cpu.DefaultConfig()
	narrow.Width = 2
	narrow.ROB = 32
	scalar := cpu.DefaultConfig()
	scalar.Width = 1
	odd := cpu.DefaultConfig()
	odd.Width = 3
	perf := cpu.DefaultConfig()
	perf.Mem.IL1.Perfect = true
	stallMode := cpu.DefaultConfig()
	stallMode.DiseMode = cpu.DiseStall
	pipe := cpu.DefaultConfig()
	pipe.DiseMode = cpu.DisePipe
	return []cpu.Config{cpu.DefaultConfig(), small, narrow, scalar, odd, perf, stallMode, pipe}
}

func assertManyMatchesIndividual(t *testing.T) {
	t.Helper()
	ecfg := core.DefaultEngineConfig()
	ecfg.RTEntries = 512
	ecfg.RTAssoc = 2
	tr := trace.Capture(newMachine(t, mixedSrc, &ecfg))

	cfgs := manySweepConfigs()
	got := cpu.RunSourceMany(tr.Replay(ecfg.MissPenalty, ecfg.ComposePenalty), cfgs)
	if len(got) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(got), len(cfgs))
	}
	for i, cfg := range cfgs {
		want := cpu.RunSource(tr.Replay(ecfg.MissPenalty, ecfg.ComposePenalty), cfg)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("config %d: grouped and individual replay differ\ngrouped:    %+v\nindividual: %+v",
				i, got[i], want)
		}
	}
}

func TestReplayNextDoesNotAllocate(t *testing.T) {
	tr := trace.Capture(newMachine(t, mixedSrc, nil))
	if tr.Len() < 1000 {
		t.Fatalf("trace too short for the alloc probe: %d records", tr.Len())
	}
	r := tr.Replay(30, 150)
	allocs := testing.AllocsPerRun(500, func() {
		if _, _, ok := r.Next(); !ok {
			t.Fatal("trace exhausted mid-probe")
		}
	})
	if allocs != 0 {
		t.Errorf("Next allocates %.1f objects per record, want 0", allocs)
	}
}
