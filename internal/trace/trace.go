// Package trace records the annotated dynamic instruction stream of one
// functional run — as the timing model's native cpu.Rec records — so
// timing-only configuration sweeps (cache geometry, machine width, DISE
// decoder integration, PT/RT miss penalties) can replay one capture many
// times instead of re-running the functional emulation per cell. This is
// the classic functional/timing decoupling of fast simulators: the
// expensive part (architectural execution + DISE expansion) runs once per
// functional-equivalence class.
//
// Records are stored in fixed-capacity chunks that are never reallocated:
// appending during capture never copies earlier records, and replay hands
// the scheduling loop a pointer into the chunk — the replay read path does
// no per-record work beyond rebuilding the stall cycles.
//
// Branch prediction is itself a pure function of the instruction stream, so
// Capture runs the reference predictor once and stores each record's
// verdict in its RecMispredict flag; replay does no predictor work at all.
// DISE stall cycles are the one stream annotation that is *not* penalty
// invariant, so the records carry the underlying table events
// (RecPTMiss/RecRTMiss/RecComposed) and replay rebuilds Stall under the
// replaying configuration's penalties.
package trace

import (
	"context"

	"repro/internal/bpred"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/program"
)

// Chunk sizing: the first chunk is small so short runs (tests, microkernels)
// stay cheap; later chunks double up to chunkMax (≈3MB of records) so long
// captures allocate O(log n + n/chunkMax) times and never copy.
const (
	chunkInit = 1 << 12
	chunkMax  = 1 << 16
)

// Trace is one captured dynamic instruction stream plus the run's final
// architectural state. It is immutable after Capture and safe to replay
// from any number of goroutines concurrently (each via its own Replayer).
type Trace struct {
	prog   *program.Program
	chunks [][]cpu.Rec
	n      int

	stats  emu.Stats
	pred   bpred.Stats
	output string
	err    error
}

// Capture runs m to completion, recording every dynamic instruction and the
// reference branch predictor's verdict on it. The machine must be freshly
// prepared (expander installed, dedicated registers initialized), exactly as
// if it were handed to cpu.Run.
func Capture(m *emu.Machine) *Trace {
	return CaptureContext(context.Background(), m)
}

// CaptureContext is Capture with cooperative cancellation: the context is
// polled once per chunk turnover (every few thousand instructions), never
// per step. A cancelled capture returns early with Err() set to an
// emu.TrapCancelled whose Cause is the context error; such a trace is
// truncated mid-stream and must not be reused as the class representative of
// its equivalence class — it reflects a wall-clock accident, not program
// content.
func CaptureContext(ctx context.Context, m *emu.Machine) *Trace {
	t := &Trace{prog: m.Program()}
	p := bpred.New()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var cancelled error
	var cur []cpu.Rec
	for {
		if len(cur) == cap(cur) {
			if done != nil {
				select {
				case <-done:
					cancelled = &emu.Trap{Kind: emu.TrapCancelled,
						PC: m.PC(), DISEPC: m.DISEPC(),
						Cause: context.Cause(ctx), Detail: "capture cancelled"}
				default:
				}
				if cancelled != nil {
					break
				}
			}
			if len(t.chunks) > 0 {
				t.chunks[len(t.chunks)-1] = cur
			}
			c := chunkInit
			if cap(cur) > 0 {
				if c = cap(cur) * 2; c > chunkMax {
					c = chunkMax
				}
			}
			t.chunks = append(t.chunks, make([]cpu.Rec, 0, c))
			cur = t.chunks[len(t.chunks)-1]
		}
		// Fill the chunk's remaining capacity in place: the machine writes
		// records (predictor verdicts included) directly into their final
		// slots, so nothing is ever copied. The chunk header in t.chunks is
		// refreshed only on chunk turnover and after the loop.
		n, more := m.FillRecs(p, cur[len(cur):cap(cur)])
		cur = cur[:len(cur)+n]
		t.n += n
		if !more {
			break
		}
	}
	if len(t.chunks) > 0 {
		t.chunks[len(t.chunks)-1] = cur
		// A run that ends exactly at a chunk boundary (or produces no records
		// at all) leaves a freshly allocated empty chunk behind; drop it so
		// chunk shapes match the per-step capture exactly.
		if len(cur) == 0 {
			t.chunks = t.chunks[:len(t.chunks)-1]
		}
	}
	t.stats = m.Stats
	t.pred = p.Stats
	t.output = m.Output()
	t.err = m.Err()
	if cancelled != nil {
		t.err = cancelled
	}
	return t
}

// Len returns the number of recorded dynamic instructions.
func (t *Trace) Len() int { return t.n }

// Excerpt copies out the first n records of the stream (fewer when the
// trace is shorter): the serving layer's dynamic-trace excerpts and
// debugging printers read the stream without touching the chunk layout.
func (t *Trace) Excerpt(n int) []cpu.Rec {
	if n > t.n {
		n = t.n
	}
	if n <= 0 {
		return nil
	}
	out := make([]cpu.Rec, 0, n)
	for _, c := range t.chunks {
		rem := n - len(out)
		if rem <= 0 {
			break
		}
		if rem > len(c) {
			rem = len(c)
		}
		out = append(out, c[:rem]...)
	}
	return out
}

// Err returns the capture's termination error (nil after a clean halt).
func (t *Trace) Err() error { return t.err }

// Stats returns the capture's final functional counters.
func (t *Trace) Stats() emu.Stats { return t.stats }

// Output returns everything the captured run printed via sys.
func (t *Trace) Output() string { return t.output }

// Program returns the program the trace was captured from.
func (t *Trace) Program() *program.Program { return t.prog }

// Replay returns a fresh allocation-free reader over t with DISE stall
// cycles rebuilt under the given PT/RT miss and composing-miss penalties.
// The Replayer satisfies cpu.Source, so cpu.RunSource times it exactly like
// a live machine but without the functional emulation.
func (t *Trace) Replay(missPenalty, composePenalty int) *Replayer {
	return &Replayer{t: t, miss: missPenalty, compose: composePenalty}
}

// Replayer walks one Trace as a timing-model stream source. Next performs
// no copy, no allocation and no predictor work: the mispredict verdict and
// all table events were fixed at capture.
type Replayer struct {
	t       *Trace
	miss    int
	compose int
	cur     []cpu.Rec // current chunk
	ci      int       // index of the next chunk
	i       int       // index of the next record within cur
	last    *cpu.Rec  // record most recently produced (for Loc)
}

// Next returns a pointer to the next record — owned by the trace, shared
// between replays, and therefore read-only — together with the DISE stall
// cycles the record incurs under the replay's penalties. It returns
// ok=false when the trace is exhausted.
func (r *Replayer) Next() (d *cpu.Rec, stall int, ok bool) {
	if r.i >= len(r.cur) {
		if r.ci >= len(r.t.chunks) {
			return nil, 0, false
		}
		r.cur = r.t.chunks[r.ci]
		r.ci++
		r.i = 0
	}
	d = &r.cur[r.i]
	r.i++
	r.last = d
	if f := d.Flags; f&(cpu.RecPTMiss|cpu.RecRTMiss) != 0 {
		if f&cpu.RecPTMiss != 0 {
			stall += r.miss
		}
		if f&cpu.RecRTMiss != 0 {
			if f&cpu.RecComposed != 0 {
				stall += r.compose
			} else {
				stall += r.miss
			}
		}
	}
	return d, stall, true
}

// NextBatch returns the rest of the current chunk (or the next non-empty
// chunk) as one read-only slice, advancing the same cursor Next uses — the
// cpu.BatchSource view of the replay. ok=false means the trace is exhausted.
func (r *Replayer) NextBatch() ([]cpu.Rec, bool) {
	if r.i < len(r.cur) {
		b := r.cur[r.i:]
		r.i = len(r.cur)
		r.last = &b[len(b)-1]
		return b, true
	}
	for r.ci < len(r.t.chunks) {
		c := r.t.chunks[r.ci]
		r.ci++
		if len(c) == 0 {
			continue
		}
		r.cur, r.i = c, len(c)
		r.last = &c[len(c)-1]
		return c, true
	}
	return nil, false
}

// BatchPenalties returns the replay's PT/RT miss and composing-miss
// penalties for cpu.RunSource's batched stall rebuild.
func (r *Replayer) BatchPenalties() (int, int) { return r.miss, r.compose }

// Chunks exposes the trace's record chunks for cpu.RunSource's direct-walk
// fast path (cpu.ChunkedSource), together with the replay penalties. The
// chunks are shared and strictly read-only.
func (r *Replayer) Chunks() ([][]cpu.Rec, int, int) {
	return r.t.chunks, r.miss, r.compose
}

// Loc reports the PC:DISEPC of the most recently produced record (the
// watchdog trap's position attribution).
func (r *Replayer) Loc() (pc uint64, disepc int) {
	if r.last == nil {
		return 0, 0
	}
	return r.last.PC, int(r.last.DISEPC)
}

// Final returns the run's architectural outcome, identical for every replay
// of the same trace.
func (r *Replayer) Final() (emu.Stats, string, error) {
	return r.t.stats, r.t.output, r.t.err
}

// PredStats returns the reference predictor's final counters.
func (r *Replayer) PredStats() bpred.Stats { return r.t.pred }
