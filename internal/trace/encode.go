package trace

// Binary serialization of a captured trace, for the persistent trace store:
// a Trace round-trips through MarshalBinary/UnmarshalBinary into the exact
// stream the replayer walks, so a job served from a decoded trace is
// byte-identical to one served from the live capture. The format is
// little-endian and fixed-layout (no unsafe, no host-order dependence).
// Decoding hostile bytes returns a typed error, never panics, and never
// yields a trace that differs from what a capture could produce: record
// counts are length-checked, trap kinds validated, and trailing garbage
// rejected.
//
// The captured program itself is NOT serialized — the store's content
// address already covers the program image, and the replayer never touches
// it. Program() returns nil on a decoded trace.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
)

// Wire constants. recBytes is the fixed serialized size of one cpu.Rec.
const (
	traceMagic   = "DTR1"
	traceVersion = 1
	recBytes     = 32

	// maxStringLen bounds the output/detail strings a decoded trace may
	// carry; a capture cannot produce more (guest output is budgeted far
	// below this) and a hostile length prefix must not drive allocation.
	maxStringLen = 1 << 24
)

// ErrBadTrace is the sentinel every decode failure matches via errors.Is.
var ErrBadTrace = errors.New("trace: bad serialized trace")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadTrace, fmt.Sprintf(format, args...))
}

// Error-kind tags of the serialized termination error.
const (
	errNone   = 0 // clean halt
	errTrap   = 1 // *emu.Trap (kind, pc, disepc, addr, acf, detail)
	errOpaque = 2 // any other error, preserved as its message
)

// MarshalBinary serializes the trace: header, final architectural state,
// termination error, then the record stream. Cancelled (truncated) traces
// are rejected — they reflect a wall-clock accident, not program content,
// and must never be persisted as their equivalence class.
func (t *Trace) MarshalBinary() ([]byte, error) {
	if errors.Is(t.err, emu.ErrCancelled) {
		return nil, fmt.Errorf("trace: refusing to serialize a cancelled capture")
	}
	var w writer
	w.bytes(traceMagic)
	w.u32(traceVersion)
	w.u64(uint64(t.n))

	w.i64(t.stats.AppInsts)
	w.i64(t.stats.ReplInsts)
	w.i64(t.stats.Total)
	w.i64(t.stats.Loads)
	w.i64(t.stats.Stores)
	w.i64(t.stats.Branches)
	w.i64(t.stats.Taken)
	w.i64(t.stats.TextWrites)
	w.i64(t.stats.Redecodes)

	w.i64(t.pred.CondBranches)
	w.i64(t.pred.CondMiss)
	w.i64(t.pred.IndBranches)
	w.i64(t.pred.IndMiss)
	w.i64(t.pred.Returns)
	w.i64(t.pred.RetMiss)

	if err := w.str(t.output); err != nil {
		return nil, err
	}
	if err := w.termError(t.err); err != nil {
		return nil, err
	}
	for _, c := range t.chunks {
		for i := range c {
			w.rec(&c[i])
		}
	}
	return w.buf, nil
}

// UnmarshalBinary decodes data into a fresh Trace. Any defect — short or
// oversized buffer, bad magic or version, an out-of-range trap kind, a
// hostile length prefix — returns an error matching ErrBadTrace.
func UnmarshalBinary(data []byte) (*Trace, error) {
	r := reader{buf: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != traceMagic {
		return nil, badf("magic %q", magic)
	}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != traceVersion {
		return nil, badf("unknown version %d", ver)
	}
	n64, err := r.u64()
	if err != nil {
		return nil, err
	}

	t := &Trace{}
	for _, dst := range []*int64{
		&t.stats.AppInsts, &t.stats.ReplInsts, &t.stats.Total,
		&t.stats.Loads, &t.stats.Stores, &t.stats.Branches, &t.stats.Taken,
		&t.stats.TextWrites, &t.stats.Redecodes,
		&t.pred.CondBranches, &t.pred.CondMiss,
		&t.pred.IndBranches, &t.pred.IndMiss,
		&t.pred.Returns, &t.pred.RetMiss,
	} {
		if *dst, err = r.i64(); err != nil {
			return nil, err
		}
	}
	if t.output, err = r.str(); err != nil {
		return nil, err
	}
	if t.err, err = r.termError(); err != nil {
		return nil, err
	}
	// Every remaining byte must be exactly the claimed record stream. The
	// division-first check keeps a hostile n64 from overflowing the product.
	rem := uint64(len(r.buf) - r.off)
	if n64 > rem/recBytes || rem != n64*recBytes {
		return nil, badf("%d remaining bytes for %d claimed records", rem, n64)
	}
	n := int(n64)
	recs := make([]cpu.Rec, n)
	for i := range recs {
		r.rec(&recs[i])
	}
	t.n = n
	if n > 0 {
		t.chunks = [][]cpu.Rec{recs}
	}
	return t, nil
}

// termError serializes the capture's termination error.
func (w *writer) termError(err error) error {
	switch e := err.(type) {
	case nil:
		w.u8(errNone)
		return nil
	case *emu.Trap:
		w.u8(errTrap)
		w.u8(uint8(e.Kind))
		w.u64(e.PC)
		w.i64(int64(e.DISEPC))
		w.u64(e.Addr)
		if e.ACF {
			w.u8(1)
		} else {
			w.u8(0)
		}
		return w.str(e.Detail)
	default:
		w.u8(errOpaque)
		return w.str(e.Error())
	}
}

// termError decodes the capture's termination error.
func (r *reader) termError() (error, error) {
	tag, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case errNone:
		return nil, nil
	case errTrap:
		var t emu.Trap
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		if kind == uint8(emu.TrapNone) || kind >= uint8(emu.NumTrapKinds) {
			return nil, badf("trap kind %d out of range", kind)
		}
		t.Kind = emu.TrapKind(kind)
		if t.PC, err = r.u64(); err != nil {
			return nil, err
		}
		disepc, err := r.i64()
		if err != nil {
			return nil, err
		}
		t.DISEPC = int(disepc)
		if t.Addr, err = r.u64(); err != nil {
			return nil, err
		}
		acf, err := r.u8()
		if err != nil {
			return nil, err
		}
		if acf > 1 {
			return nil, badf("acf flag %d", acf)
		}
		t.ACF = acf == 1
		if t.Detail, err = r.str(); err != nil {
			return nil, err
		}
		return &t, nil
	case errOpaque:
		msg, err := r.str()
		if err != nil {
			return nil, err
		}
		return errors.New(msg), nil
	default:
		return nil, badf("error tag %d", tag)
	}
}

// writer appends fixed-layout little-endian fields.
type writer struct{ buf []byte }

func (w *writer) bytes(s string) { w.buf = append(w.buf, s...) }
func (w *writer) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)   { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)    { w.u64(uint64(v)) }

func (w *writer) str(s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("trace: string field of %d bytes exceeds the %d limit", len(s), maxStringLen)
	}
	w.u32(uint32(len(s)))
	w.bytes(s)
	return nil
}

func (w *writer) rec(r *cpu.Rec) {
	w.u64(r.PC)
	w.u64(r.MemAddr)
	w.u32(uint32(r.DISEPC))
	w.u32(uint32(r.SeqLen))
	w.u8(r.FetchSize)
	w.u8(uint8(r.Op))
	w.u8(uint8(r.SrcA))
	w.u8(uint8(r.SrcB))
	w.u8(uint8(r.Dst))
	w.u8(r.Lat)
	w.u16(r.Flags)
}

// reader consumes fixed-layout little-endian fields with bounds checks.
type reader struct {
	buf []byte
	off int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || len(r.buf)-r.off < n {
		return nil, badf("truncated at offset %d (need %d bytes)", r.off, n)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", badf("string length %d exceeds the %d limit", n, maxStringLen)
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// rec decodes one record; the caller has already bounds-checked the stream.
func (r *reader) rec(dst *cpu.Rec) {
	b := r.buf[r.off : r.off+recBytes]
	r.off += recBytes
	dst.PC = binary.LittleEndian.Uint64(b[0:8])
	dst.MemAddr = binary.LittleEndian.Uint64(b[8:16])
	dst.DISEPC = int32(binary.LittleEndian.Uint32(b[16:20]))
	dst.SeqLen = int32(binary.LittleEndian.Uint32(b[20:24]))
	dst.FetchSize = b[24]
	dst.Op = isa.Opcode(b[25])
	dst.SrcA = isa.Reg(b[26])
	dst.SrcB = isa.Reg(b[27])
	dst.Dst = isa.Reg(b[28])
	dst.Lat = b[29]
	dst.Flags = binary.LittleEndian.Uint16(b[30:32])
}
