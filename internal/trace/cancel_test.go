package trace_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/trace"
)

func TestCaptureContextCancelledTruncates(t *testing.T) {
	m := emu.New(asm.MustAssemble("spin", `
.entry main
main:
    br zero, main
`))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := trace.CaptureContext(ctx, m)
	if !errors.Is(tr.Err(), emu.ErrCancelled) {
		t.Fatalf("capture err = %v, want cancelled trap", tr.Err())
	}
	if !errors.Is(tr.Err(), context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false, want true")
	}
	// The poll runs at chunk turnover; a pre-cancelled context must stop the
	// capture within the first chunk (4096 records, trace.chunkInit).
	if tr.Len() > 4096 {
		t.Errorf("captured %d records after cancellation, want <= 4096", tr.Len())
	}
}

func TestCaptureContextBackgroundMatchesCapture(t *testing.T) {
	mk := func() *emu.Machine { return newMachine(t, mixedSrc, nil) }
	a := trace.Capture(mk())
	b := trace.CaptureContext(context.Background(), mk())
	if a.Len() != b.Len() || !errors.Is(a.Err(), b.Err()) && (a.Err() != nil || b.Err() != nil) {
		t.Errorf("background-context capture differs: len %d vs %d, err %v vs %v",
			a.Len(), b.Len(), a.Err(), b.Err())
	}
}

func TestExcerpt(t *testing.T) {
	tr := trace.Capture(newMachine(t, mixedSrc, nil))
	if n := len(tr.Excerpt(10)); n != 10 {
		t.Errorf("Excerpt(10) returned %d records", n)
	}
	all := tr.Excerpt(tr.Len() + 100)
	if len(all) != tr.Len() {
		t.Errorf("Excerpt beyond length returned %d records, want %d", len(all), tr.Len())
	}
	// The excerpt must be the stream prefix, in order.
	r := tr.Replay(30, 150)
	for i := range all {
		d, _, ok := r.Next()
		if !ok || *d != all[i] {
			t.Fatalf("record %d: excerpt %+v != stream %+v (ok=%v)", i, all[i], d, ok)
		}
	}
	if got := tr.Excerpt(0); got != nil {
		t.Errorf("Excerpt(0) = %v, want nil", got)
	}
}
