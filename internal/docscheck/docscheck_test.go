package docscheck

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestCmdFlagsScansSourceAndImports(t *testing.T) {
	got, err := CmdFlags(filepath.Join("testdata", "flagtree"), "repro")
	if err != nil {
		t.Fatal(err)
	}
	// Includes the StringVar form and the flag registered by the imported
	// helper package (the profileflags pattern).
	want := map[string][]string{"foo": {"bench", "cpuprofile", "o", "verbose"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CmdFlags = %v, want %v", got, want)
	}
}

const sampleReadme = `
intro

### Tool flags

Some prose with no backticked flags.

- ` + "`foo`" + `: ` + "`-bench`" + ` pick a benchmark, ` + "`-o`" + ` output,
  ` + "`-verbose`" + ` wrapped onto a continuation line,
  ` + "`-cpuprofile`" + ` profiling.
- ` + "`bar`" + `: no flags.

## Next section

- ` + "`ghost`" + `: ` + "`-not-parsed`" + ` outside the section.
`

func TestReadmeFlagsParsesWrappedEntries(t *testing.T) {
	got, err := ReadmeFlags(sampleReadme)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"foo": {"bench", "o", "verbose", "cpuprofile"},
		"bar": {},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReadmeFlags = %v, want %v", got, want)
	}
	if _, err := ReadmeFlags("no such section"); err == nil {
		t.Error("ReadmeFlags accepted a README without the Tool flags section")
	}
}

// TestCompareFlagsCatchesDrift is the negative test the acceptance
// criteria require: removing a flag from the docs (or the binary) must
// produce a failure.
func TestCompareFlagsCatchesDrift(t *testing.T) {
	registered := map[string][]string{"foo": {"bench", "o"}}
	clean := map[string][]string{"foo": {"bench", "o"}}
	if p := CompareFlags(registered, clean); len(p) != 0 {
		t.Fatalf("clean docs reported problems: %v", p)
	}
	cases := []struct {
		name       string
		documented map[string][]string
		wantSubstr string
	}{
		{"flag removed from docs", map[string][]string{"foo": {"bench"}}, "flag -o is not documented"},
		{"stale flag in docs", map[string][]string{"foo": {"bench", "o", "gone"}}, "-gone, which the command does not register"},
		{"command missing from docs", map[string][]string{}, `missing command "foo"`},
		{"stale command in docs", map[string][]string{"foo": {"bench", "o"}, "old": {}}, `documents command "old"`},
	}
	for _, c := range cases {
		p := CompareFlags(registered, c.documented)
		if len(p) == 0 {
			t.Errorf("%s: no problem reported", c.name)
			continue
		}
		if !strings.Contains(strings.Join(p, "\n"), c.wantSubstr) {
			t.Errorf("%s: problems %v do not mention %q", c.name, p, c.wantSubstr)
		}
	}
}

func TestServerRoutesAgainstRealServer(t *testing.T) {
	routes, err := ServerRoutes(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"GET /healthz", "GET /stats", "GET /v1/membership",
		"GET /v1/traces/{key}", "POST /v1/batches", "POST /v1/jobs",
		"PUT /v1/traces/{key}",
	}
	if !reflect.DeepEqual(routes, want) {
		t.Errorf("ServerRoutes = %v, want %v (update docs/API.md and this test together)", routes, want)
	}
}

// TestCompareRoutesCatchesRemovedRoute: deleting a route's mention from
// API.md must fail the gate.
func TestCompareRoutesCatchesRemovedRoute(t *testing.T) {
	routes := []string{"GET /healthz", "POST /v1/jobs"}
	doc := "endpoints: `POST /v1/jobs` and `GET /healthz`"
	if p := CompareRoutes(routes, doc); len(p) != 0 {
		t.Fatalf("complete doc reported problems: %v", p)
	}
	p := CompareRoutes(routes, "endpoints: `POST /v1/jobs`")
	if len(p) != 1 || !strings.Contains(p[0], "GET /healthz") {
		t.Errorf("missing route not reported: %v", p)
	}
}

func TestMissingPackageComments(t *testing.T) {
	problems, err := MissingPackageComments(filepath.Join("testdata", "commenttree"))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want exactly 2 (bare and trivial)", problems)
	}
	if !strings.Contains(joined, "bare") || !strings.Contains(joined, "trivial") {
		t.Errorf("problems %v do not name the bare and trivial packages", problems)
	}
	if strings.Contains(joined, "good") {
		t.Errorf("the documented package was flagged: %v", problems)
	}
}
