// foo is a fixture command for the flag-inventory scan.
package main

import (
	"flag"

	_ "repro/internal/helper"
)

var out string

func main() {
	_ = flag.String("bench", "", "benchmark")
	flag.StringVar(&out, "o", "", "output")
	_ = flag.Bool("verbose", false, "chatty")
	flag.Parse()
}
