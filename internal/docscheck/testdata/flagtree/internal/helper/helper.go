// Package helper registers a shared flag, like internal/profileflags.
package helper

import "flag"

var prof = flag.String("cpuprofile", "", "write a CPU profile")
