package bare
