// Package trivial.
package trivial
