// Package good carries a real package comment with enough words.
package good
