// Package docscheck implements the documentation drift gates behind
// `make check-docs` (cmd/checkdocs): every flag a cmd/* binary registers
// must be documented in README.md's "Tool flags" section and vice versa,
// every HTTP route internal/server registers must appear in docs/API.md,
// and every package must carry a real package comment. The inventories
// come from the source itself (go/ast scans), so the gate cannot drift
// from the code it checks.
package docscheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// flagFuncs maps the flag-package constructors to the index of their name
// argument (flag.String("name", ...) vs flag.StringVar(&v, "name", ...)).
var flagFuncs = map[string]int{
	"Bool": 0, "BoolVar": 1, "Duration": 0, "DurationVar": 1,
	"Float64": 0, "Float64Var": 1, "Int": 0, "IntVar": 1,
	"Int64": 0, "Int64Var": 1, "String": 0, "StringVar": 1,
	"Uint": 0, "UintVar": 1, "Uint64": 0, "Uint64Var": 1,
}

// pkgFlags returns the flag names dir's package registers, following
// imports under importPrefix (rooted at root) so flags registered by
// shared helper packages (e.g. internal/profileflags) are attributed to
// every command importing them.
func pkgFlags(root, dir, importPrefix string, seen map[string]bool) ([]string, error) {
	if seen[dir] {
		return nil, nil
	}
	seen[dir] = true
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var flags []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if rel, ok := strings.CutPrefix(path, importPrefix+"/"); ok {
				sub, err := pkgFlags(root, filepath.Join(root, rel), importPrefix, seen)
				if err != nil {
					return nil, err
				}
				flags = append(flags, sub...)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok || recv.Name != "flag" {
				return true
			}
			argIdx, ok := flagFuncs[sel.Sel.Name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			lit, ok := call.Args[argIdx].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, _ := strconv.Unquote(lit.Value)
			flags = append(flags, name)
			return true
		})
	}
	sort.Strings(flags)
	return flags, nil
}

// CmdFlags inventories the flags of every command under root/cmd, keyed by
// command name.
func CmdFlags(root, modulePath string) (map[string][]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		flags, err := pkgFlags(root, filepath.Join(root, "cmd", e.Name()), modulePath, map[string]bool{})
		if err != nil {
			return nil, err
		}
		out[e.Name()] = flags
	}
	return out, nil
}

// toolFlagLine matches one entry of README's "Tool flags" section:
//
//	- `disesim`: `-bench` `-src` ...
var toolFlagLine = regexp.MustCompile("^- `([a-z]+)`:(.*)$")

// docFlag extracts the backticked flag tokens of a Tool flags entry.
var docFlag = regexp.MustCompile("`-([a-z0-9-]+)`")

// ReadmeFlags parses the "### Tool flags" section of README text into the
// per-command documented flag sets.
func ReadmeFlags(readme string) (map[string][]string, error) {
	_, sect, ok := strings.Cut(readme, "### Tool flags")
	if !ok {
		return nil, fmt.Errorf("README has no \"### Tool flags\" section")
	}
	if i := strings.Index(sect, "\n#"); i >= 0 {
		sect = sect[:i]
	}
	out := make(map[string][]string)
	cur := "" // command whose (possibly wrapped) entry we are inside
	for _, line := range strings.Split(sect, "\n") {
		line = strings.TrimSpace(line)
		if m := toolFlagLine.FindStringSubmatch(line); m != nil {
			cur = m[1]
			out[cur] = []string{}
			line = m[2]
		} else if strings.HasPrefix(line, "- ") || line == "" {
			cur = "" // a non-command bullet or paragraph break ends the entry
			continue
		}
		if cur == "" {
			continue
		}
		for _, f := range docFlag.FindAllStringSubmatch(line, -1) {
			out[cur] = append(out[cur], f[1])
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("README \"### Tool flags\" section documents no commands")
	}
	return out, nil
}

// CompareFlags diffs the registered flag inventory against the documented
// one, in both directions, returning one problem string per drift.
func CompareFlags(registered, documented map[string][]string) []string {
	var problems []string
	for _, cmd := range sortedKeys(registered) {
		doc, ok := documented[cmd]
		if !ok {
			problems = append(problems, fmt.Sprintf("README Tool flags section is missing command %q", cmd))
			continue
		}
		docSet := toSet(doc)
		for _, f := range registered[cmd] {
			if !docSet[f] {
				problems = append(problems, fmt.Sprintf("%s: flag -%s is not documented in README", cmd, f))
			}
		}
		regSet := toSet(registered[cmd])
		for _, f := range doc {
			if !regSet[f] {
				problems = append(problems, fmt.Sprintf("%s: README documents flag -%s, which the command does not register", cmd, f))
			}
		}
	}
	for _, cmd := range sortedKeys(documented) {
		if _, ok := registered[cmd]; !ok {
			problems = append(problems, fmt.Sprintf("README documents command %q, which does not exist under cmd/", cmd))
		}
	}
	return problems
}

// routePattern matches mux.HandleFunc("METHOD /path", ...) literals.
var routePattern = regexp.MustCompile(`HandleFunc\("([A-Z]+ /[^"]*)"`)

// ServerRoutes inventories the routes internal/server registers.
func ServerRoutes(root string) ([]string, error) {
	dir := filepath.Join(root, "internal", "server")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var routes []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, m := range routePattern.FindAllStringSubmatch(string(data), -1) {
			routes = append(routes, m[1])
		}
	}
	sort.Strings(routes)
	if len(routes) == 0 {
		return nil, fmt.Errorf("no routes found in %s", dir)
	}
	return routes, nil
}

// CompareRoutes requires each registered route to appear verbatim in the
// API documentation text.
func CompareRoutes(routes []string, apiDoc string) []string {
	var problems []string
	for _, r := range routes {
		if !strings.Contains(apiDoc, r) {
			problems = append(problems, fmt.Sprintf("docs/API.md does not mention route %q", r))
		}
	}
	return problems
}

// MissingPackageComments walks every package under root and reports those
// whose package clause carries no doc comment (or a trivial one). Vendored
// trees, testdata and hidden directories are skipped.
func MissingPackageComments(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, err := filepath.Glob(filepath.Join(path, "*.go"))
		if err != nil {
			return err
		}
		var srcs []string
		for _, f := range files {
			if !strings.HasSuffix(f, "_test.go") {
				srcs = append(srcs, f)
			}
		}
		if len(srcs) == 0 {
			return nil
		}
		best := 0
		fset := token.NewFileSet()
		for _, f := range srcs {
			parsed, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return err
			}
			if parsed.Doc != nil {
				if n := len(strings.Fields(parsed.Doc.Text())); n > best {
					best = n
				}
			}
		}
		rel, _ := filepath.Rel(root, path)
		if best == 0 {
			problems = append(problems, fmt.Sprintf("package %s has no package comment", rel))
		} else if best < 5 {
			problems = append(problems, fmt.Sprintf("package %s has a trivial package comment (%d words); say what it is for", rel, best))
		}
		return nil
	})
	return problems, err
}

func toSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
