package monitor

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/program"
)

func newController() *core.Controller {
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	return core.NewController(cfg)
}

func TestSyscallPolicyAllows(t *testing.T) {
	p := asm.MustAssemble("ok", `
.entry main
main:
    li r1, 42
    sys 2
    halt
`)
	m := emu.New(p)
	c := newController()
	if _, err := InstallSyscallPolicy(c, m, 2); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "42" {
		t.Errorf("output = %q", m.Output())
	}
}

func TestSyscallPolicyDenies(t *testing.T) {
	p := asm.MustAssemble("bad", `
.entry main
main:
    li r1, 65
    sys 1
    halt
`)
	m := emu.New(p)
	c := newController()
	if _, err := InstallSyscallPolicy(c, m, 2); err != nil { // only sys 2 allowed
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	err := m.Run()
	if !errors.Is(err, emu.ErrACFViolation) {
		t.Errorf("err = %v, want violation", err)
	}
	if m.Output() != "" {
		t.Errorf("denied sys still produced output %q", m.Output())
	}
}

func TestPolicyMaskInvisible(t *testing.T) {
	// The application cannot weaken the policy: writing r6 does not touch
	// the dedicated $dr6 holding the mask.
	p := asm.MustAssemble("sneaky", `
.entry main
main:
    li r6, -1     ; try to "set all bits"
    li r1, 1
    sys 1
    halt
`)
	m := emu.New(p)
	c := newController()
	if _, err := InstallSyscallPolicy(c, m, 2); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); !errors.Is(err, emu.ErrACFViolation) {
		t.Errorf("err = %v, want violation despite r6 tampering", err)
	}
}

const watchProg = `
.entry main
.data
arr: .space 256
.text
main:
    la r1, arr
    li r2, 8
loop:
    stq r2, 0(r1)
    addqi r1, 8, r1
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

func TestWatchpointHits(t *testing.T) {
	p := asm.MustAssemble("w", watchProg)
	m := emu.New(p)
	c := newController()
	// Watch the 4th element: hit on the 4th store.
	if _, err := InstallWatchpoint(c, m, program.DataBase+24); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	err := m.Run()
	if !errors.Is(err, emu.ErrACFViolation) {
		t.Fatalf("err = %v, want watchpoint trap", err)
	}
	// The first three stores completed; the watched one did not execute.
	if got := m.Mem().Read64(program.DataBase + 16); got != 6 {
		t.Errorf("third store missing: %d", got)
	}
	if got := m.Mem().Read64(program.DataBase + 24); got != 0 {
		t.Errorf("watched store executed: %d", got)
	}
	if m.Stats.Stores != 3 {
		t.Errorf("stores executed = %d, want 3", m.Stats.Stores)
	}
}

func TestWatchpointMissesCleanly(t *testing.T) {
	p := asm.MustAssemble("w", watchProg)
	m := emu.New(p)
	c := newController()
	if _, err := InstallWatchpoint(c, m, program.DataBase+4096); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Stores != 8 {
		t.Errorf("stores = %d", m.Stats.Stores)
	}
}

func TestWatchpointRemovable(t *testing.T) {
	// "Assertions can be added and removed quickly. Inactive assertions
	// have no runtime overhead." (§3.1)
	p := asm.MustAssemble("w", watchProg)
	m := emu.New(p)
	c := newController()
	prods, err := InstallWatchpoint(c, m, program.DataBase+24)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range prods {
		c.Deactivate(pr)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Engine().Stats.Expansions; got != 0 {
		t.Errorf("deactivated watchpoint expanded %d times", got)
	}
}

func TestNullStoreTrap(t *testing.T) {
	p := asm.MustAssemble("n", `
.entry main
main:
    li r1, 5
    stq r1, 64(zero)   ; null-page store
    halt
`)
	m := emu.New(p)
	c := newController()
	if _, err := InstallNullStoreTrap(c, m); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); !errors.Is(err, emu.ErrACFViolation) {
		t.Errorf("err = %v, want null-store trap", err)
	}
	// Ordinary stores are untouched (pattern constrains the base register).
	m2 := emu.New(asm.MustAssemble("n2", `
.entry main
main:
    li r1, 5
    stq r1, 0(sp)
    halt
`))
	c2 := newController()
	if _, err := InstallNullStoreTrap(c2, m2); err != nil {
		t.Fatal(err)
	}
	m2.SetExpander(c2.Engine())
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if c2.Engine().Stats.Expansions != 0 {
		t.Error("sp-based store should not match the null-store pattern")
	}
}
