// Package monitor implements the security/debugging observation ACFs of
// paper §3.1: reference monitors that enforce a policy on instruction
// execution, and code assertions (watchpoints) that trap arbitrary
// conditions — both as transparent productions with the three properties
// the paper highlights: the policy state lives behind the PT/RT access
// model (tamper-proof), the checks run inside atomic replacement sequences
// (not bypassable), and the productions are small declarative rules.
package monitor

import (
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
)

// Dedicated register roles used by this package.
const (
	// PolicyReg ($dr6) holds the syscall-permission bitmask: bit k set
	// means "sys k" is permitted.
	PolicyReg = isa.RegDR0 + 6
	// WatchReg ($dr6) holds the watched address for watchpoints.
	WatchReg = isa.RegDR0 + 6
	// HandlerReg ($dr7) holds the violation handler (0 = kernel trap).
	HandlerReg = isa.RegDR0 + 7
)

// SyscallPolicyProductions is a reference monitor over the sys interface:
// every sys instruction is expanded into a permission check against the
// bitmask in $dr6 before it executes. The application cannot read or write
// the mask, and — because replacement sequences cannot be jumped into —
// cannot reach the sys without passing the check.
const SyscallPolicyProductions = `
prod sys_monitor {
    match op == sys
    replace {
        lda  $dr0, %imm(zero)
        srl  $dr6, $dr0, $dr1
        andi $dr1, 1, $dr1
        jeq  $dr1, ($dr7)
        %insn
    }
}
`

// InstallSyscallPolicy activates the monitor, permitting exactly the given
// sys codes for machine m.
func InstallSyscallPolicy(c *core.Controller, m *emu.Machine, allowed ...int64) ([]*core.Production, error) {
	prods, err := c.InstallFile(SyscallPolicyProductions, nil)
	if err != nil {
		return nil, err
	}
	var mask uint64
	for _, code := range allowed {
		if code >= 0 && code < 64 {
			mask |= 1 << uint(code)
		}
	}
	m.SetReg(PolicyReg, mask)
	m.SetReg(HandlerReg, 0)
	return prods, nil
}

// WatchpointProductions is a data watchpoint: every store's effective
// address is compared against the watched address in $dr6; a hit traps to
// the handler before the store executes. Unlike a debugger's single-
// stepping implementation, the comparison is inlined into the stream and
// runs at full pipeline speed (paper §3.1, "code assertions").
const WatchpointProductions = `
prod watch_store {
    match class == store
    replace {
        lda $dr0, %imm(%rs)
        xor $dr0, $dr6, $dr0
        jeq $dr0, ($dr7)
        %insn
    }
}
`

// InstallWatchpoint activates a store watchpoint on addr for machine m.
func InstallWatchpoint(c *core.Controller, m *emu.Machine, addr uint64) ([]*core.Production, error) {
	prods, err := c.InstallFile(WatchpointProductions, nil)
	if err != nil {
		return nil, err
	}
	m.SetReg(WatchReg, addr)
	m.SetReg(HandlerReg, 0)
	return prods, nil
}

// NullRangeProductions extends the monitor idea with a negative pattern
// specification (paper §2.2): stores through the zero register (absolute
// low addresses — null-pointer dereferences) trap, while a more specific
// identity production... has no use here; instead the pattern itself
// constrains the base register, demonstrating register-constrained
// patterns in a policy.
const NullRangeProductions = `
prod null_store {
    match class == store && rs == zero
    replace {
        jmp zero, ($dr7)
    }
}
`

// InstallNullStoreTrap traps all stores with a zero base register (absolute
// null-page addresses).
func InstallNullStoreTrap(c *core.Controller, m *emu.Machine) ([]*core.Production, error) {
	prods, err := c.InstallFile(NullRangeProductions, nil)
	if err != nil {
		return nil, err
	}
	m.SetReg(HandlerReg, 0)
	return prods, nil
}
