package compress

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
)

// redundantProgram builds a program with heavy idiom reuse: the same
// 3-instruction load-add-store idiom appears at many sites with different
// registers, plus repeated literal blocks.
func redundantProgram(t *testing.T) string {
	var b strings.Builder
	b.WriteString(".entry main\n.data\nbuf: .space 8192\n.text\nmain:\n    la r1, buf\n    li r2, 50\nmainloop:\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "    bsr ra, f%d\n", i)
	}
	b.WriteString("    subqi r2, 1, r2\n    bgt r2, mainloop\n    halt\n")
	for i := 0; i < 8; i++ {
		ra, rb := 3+i%4, 7+i%4
		fmt.Fprintf(&b, "f%d:\n", i)
		// The idiom: same shape, different registers at different sites.
		fmt.Fprintf(&b, "    ldq r%d, 0(r1)\n    addqi r%d, 1, r%d\n    stq r%d, 0(r1)\n", ra, ra, ra, ra)
		fmt.Fprintf(&b, "    ldq r%d, 8(r1)\n    addqi r%d, 1, r%d\n    stq r%d, 8(r1)\n", rb, rb, rb, rb)
		b.WriteString("    ret\n")
	}
	return b.String()
}

func mustCompress(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	p := asm.MustAssemble("r", src)
	res, err := Compress(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDiseFullCompresses(t *testing.T) {
	res := mustCompress(t, redundantProgram(t), DiseFull())
	if res.Stats.Ratio() >= 0.95 {
		t.Errorf("ratio = %.2f, want meaningful compression", res.Stats.Ratio())
	}
	if res.Stats.Entries == 0 || res.Stats.Codewords == 0 {
		t.Error("no dictionary entries selected")
	}
	if res.CodewordOp != isa.OpRES0 {
		t.Errorf("codeword op = %v", res.CodewordOp)
	}
}

func TestCompressedProgramRunsCorrectly(t *testing.T) {
	src := redundantProgram(t)
	p := asm.MustAssemble("r", src)
	m0 := emu.New(p)
	if err := m0.Run(); err != nil {
		t.Fatal(err)
	}
	want := m0.Mem().Read64(m0.Reg(1))

	res := mustCompress(t, src, DiseFull())
	c := core.NewController(core.DefaultEngineConfig())
	if _, err := res.Install(c); err != nil {
		t.Fatal(err)
	}
	m := emu.New(res.Prog)
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem().Read64(m.Reg(1)); got != want {
		t.Errorf("compressed run result %d != original %d", got, want)
	}
	// The decompressed dynamic stream must replay the original app stream.
	if m.Stats.Loads != m0.Stats.Loads || m.Stats.Stores != m0.Stats.Stores {
		t.Errorf("dynamic mix diverged: loads %d/%d stores %d/%d",
			m.Stats.Loads, m0.Stats.Loads, m.Stats.Stores, m0.Stats.Stores)
	}
}

func TestDedicatedCompressedProgramRuns(t *testing.T) {
	src := redundantProgram(t)
	p := asm.MustAssemble("r", src)
	m0 := emu.New(p)
	if err := m0.Run(); err != nil {
		t.Fatal(err)
	}
	res := mustCompress(t, src, Dedicated())
	if res.CodewordOp != isa.OpRES3 {
		t.Errorf("dedicated codeword op = %v", res.CodewordOp)
	}
	m := emu.New(res.Prog)
	m.SetExpander(NewDecompressor(res))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Stores != m0.Stats.Stores {
		t.Errorf("stores %d != %d", m.Stats.Stores, m0.Stats.Stores)
	}
	// 2-byte codewords: image must contain 2-byte units.
	has2 := false
	for i := 0; i < res.Prog.NumUnits(); i++ {
		if res.Prog.UnitSize(i) == 2 {
			has2 = true
		}
	}
	if !has2 {
		t.Error("dedicated image has no 2-byte codewords")
	}
}

func TestFeatureLadderOrdering(t *testing.T) {
	// The Figure 7a shape: dedicated beats -1insn beats -2byteCW; +8byteDE
	// is worst; +3param recovers; full DISE (branches) is best overall.
	src := redundantProgram(t)
	ratios := map[string]float64{}
	for _, step := range Ladder() {
		res := mustCompress(t, src, step.Cfg)
		ratios[step.Name] = res.Stats.Ratio()
	}
	le := func(a, b string) {
		if ratios[a] > ratios[b]+1e-9 {
			t.Errorf("%s (%.3f) should compress at least as well as %s (%.3f)",
				a, ratios[a], b, ratios[b])
		}
	}
	le("dedicated", "-1insn")
	le("-1insn", "-2byteCW")
	le("-2byteCW", "+8byteDE")
	le("+3param", "+8byteDE")
	le("DISE", "+3param")
}

func TestBranchCompressionOnlyWithFullDISE(t *testing.T) {
	// A program whose redundancy is dominated by compare-and-branch idioms:
	// only branch-parameterizing DISE can compress them.
	var b strings.Builder
	b.WriteString(".entry main\nmain:\n    li r2, 10\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "b%d:\n    cmplti r2, 5, r3\n    beq r3, b%d\n", i, i)
	}
	b.WriteString("    halt\n")
	src := b.String()
	_ = src
	noBr := mustCompress(t, src, DiseParameterized())
	withBr := mustCompress(t, src, DiseFull())
	if !(withBr.Stats.Ratio() < noBr.Stats.Ratio()) {
		t.Errorf("branch compression should improve ratio: %.3f vs %.3f",
			withBr.Stats.Ratio(), noBr.Stats.Ratio())
	}
}

func TestCompressedBranchesExecuteCorrectly(t *testing.T) {
	// Loops whose back-edges get compressed must still iterate correctly.
	var b strings.Builder
	b.WriteString(".entry main\nmain:\n    li r1, 0\n")
	// 12 identical count-up loops: the loop body (incl. the backward
	// branch) is highly redundant.
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "    li r2, 10\nl%d:\n    addqi r1, 1, r1\n    subqi r2, 1, r2\n    bgt r2, l%d\n", i, i)
	}
	b.WriteString("    sys 2\n    halt\n")
	src := b.String()

	m0 := emu.New(asm.MustAssemble("l", src))
	if err := m0.Run(); err != nil {
		t.Fatal(err)
	}

	res := mustCompress(t, src, DiseFull())
	if res.Stats.Codewords == 0 {
		t.Fatal("expected codewords")
	}
	// Verify at least one dictionary entry parameterizes a displacement.
	hasDisp := false
	for _, e := range res.Dict {
		for _, ri := range e.Insts {
			if ri.Imm.Dir == core.ImmP3 || ri.Imm.Dir == core.ImmP23 || ri.Imm.Dir == core.ImmP123 {
				hasDisp = true
			}
		}
	}
	if !hasDisp {
		t.Error("no parameterized branch displacement in the dictionary")
	}
	c := core.NewController(core.DefaultEngineConfig())
	if _, err := res.Install(c); err != nil {
		t.Fatal(err)
	}
	m := emu.New(res.Prog)
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != m0.Output() {
		t.Errorf("output %q != original %q", m.Output(), m0.Output())
	}
}

func TestParameterizedEntrySharing(t *testing.T) {
	// Two register-renamed instances of the same idiom must share one
	// dictionary entry under +3param.
	src := `
.entry main
.data
b: .space 64
.text
main:
    la r1, b
    ldq r3, 0(r1)
    addq r3, r3, r4
    stq r4, 8(r1)
    ldq r7, 0(r1)
    addq r7, r7, r8
    stq r8, 8(r1)
    ldq r9, 0(r1)
    addq r9, r9, r10
    stq r10, 8(r1)
    ldq r11, 0(r1)
    addq r11, r11, r12
    stq r12, 8(r1)
    halt
`
	res := mustCompress(t, src, DiseParameterized())
	if res.Stats.Entries != 1 {
		t.Fatalf("entries = %d, want 1 shared parameterized entry (stats %+v)",
			res.Stats.Entries, res.Stats)
	}
	if res.Stats.Codewords != 4 {
		t.Errorf("codewords = %d, want 4", res.Stats.Codewords)
	}
	// And the codewords carry distinct register parameters.
	var params []isa.Inst
	for _, in := range res.Prog.Text {
		if in.Op == isa.OpRES0 {
			params = append(params, in)
		}
	}
	// The renamed operands land in parameter slots and must differ between
	// instances (r1 is an EVR platform register, kept literal).
	if len(params) >= 2 && params[0].RS == params[1].RS && params[0].RT == params[1].RT {
		t.Errorf("instances should differ in parameters: %v vs %v", params[0], params[1])
	}
}

func TestUnparameterizedCannotShareRenamed(t *testing.T) {
	src := `
.entry main
.data
b: .space 64
.text
main:
    la r1, b
    ldq r3, 0(r1)
    addq r3, r3, r4
    stq r4, 8(r1)
    ldq r5, 0(r1)
    addq r5, r5, r6
    stq r6, 8(r1)
    halt
`
	res := mustCompress(t, src, DedicatedWordCW())
	// The two triples differ in registers: no literal sharing, each alone
	// is unprofitable (2 instances needed), so nothing compresses.
	if res.Stats.Entries != 0 {
		t.Errorf("entries = %d, want 0 without parameterization", res.Stats.Entries)
	}
}

func TestSingleInstructionCompression(t *testing.T) {
	// Dedicated 2-byte codewords profit from compressing one repeated
	// instruction; word codewords cannot.
	var b strings.Builder
	b.WriteString(".entry main\nmain:\n")
	for i := 0; i < 20; i++ {
		// The repeated instruction is isolated by a unique neighbor so no
		// multi-instruction window repeats.
		fmt.Fprintf(&b, "    addqi r3, 77, r3\n    addqi r4, %d, r4\n", i+1)
	}
	b.WriteString("    halt\n")
	src := b.String()
	ded := mustCompress(t, src, Dedicated())
	no1 := mustCompress(t, src, DedicatedNoSingle())
	if !(ded.Stats.Ratio() < no1.Stats.Ratio()) {
		t.Errorf("single-insn compression should help: %.3f vs %.3f",
			ded.Stats.Ratio(), no1.Stats.Ratio())
	}
}

func TestCompressRejectsCompressedInput(t *testing.T) {
	res := mustCompress(t, redundantProgram(t), Dedicated())
	if _, err := Compress(res.Prog, Dedicated()); err == nil {
		t.Error("recompression of a short-unit image should fail")
	}
}

func TestCompressRejectsBadConfig(t *testing.T) {
	p := asm.MustAssemble("t", ".entry main\nmain:\n halt\n")
	if _, err := Compress(p, Config{}); err == nil {
		t.Error("zero config should be rejected")
	}
}

func TestDictionaryWithinTagSpace(t *testing.T) {
	res := mustCompress(t, redundantProgram(t), DiseFull())
	if res.Stats.Entries > isa.MaxTag+1 {
		t.Errorf("entries = %d exceeds tag space", res.Stats.Entries)
	}
	for i, in := range res.Prog.Text {
		if in.Op == res.CodewordOp && (in.Imm < 0 || in.Imm > isa.MaxTag) {
			t.Errorf("unit %d: tag %d out of range", i, in.Imm)
		}
	}
}

func TestDecompressorIgnoresOtherOps(t *testing.T) {
	res := mustCompress(t, redundantProgram(t), Dedicated())
	d := NewDecompressor(res)
	if d.Expand(isa.Nop(), 0) != nil {
		t.Error("decompressor expanded a non-codeword")
	}
	if d.Expand(isa.Codeword(isa.OpRES3, 0, 0, 0, 2047), 0) != nil {
		t.Error("decompressor expanded an out-of-range tag")
	}
}

func TestProductionTextRoundTrip(t *testing.T) {
	// The compressor's textual dictionary must re-install through the
	// production language and reproduce the original execution exactly —
	// the full "server ships binary + production file" pipeline.
	src := redundantProgram(t)
	m0 := emu.New(asm.MustAssemble("r", src))
	if err := m0.Run(); err != nil {
		t.Fatal(err)
	}

	res := mustCompress(t, src, DiseFull())
	text := res.ProductionText()
	if !strings.Contains(text, "aware decomp") || !strings.Contains(text, "entry {") {
		t.Fatalf("production text malformed:\n%s", text)
	}

	c := core.NewController(core.DefaultEngineConfig())
	prods, err := c.InstallFile(text, nil)
	if err != nil {
		t.Fatalf("re-install failed: %v\ntext:\n%s", err, text)
	}
	if len(prods) != 1 || !prods[0].TagIndexed {
		t.Fatalf("installed %v", prods)
	}
	m := emu.New(res.Prog)
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Loads != m0.Stats.Loads || m.Stats.Stores != m0.Stats.Stores ||
		m.Stats.Branches != m0.Stats.Branches {
		t.Errorf("round-tripped dictionary diverged: L%d/%d S%d/%d B%d/%d",
			m.Stats.Loads, m0.Stats.Loads, m.Stats.Stores, m0.Stats.Stores,
			m.Stats.Branches, m0.Stats.Branches)
	}
}
