package compress

// The incremental key renderer in enumerate must reproduce the original
// fmt-based shape keys byte for byte: selection tie-breaks on the key
// (candHeap.Less), so any drift would silently reorder greedy choices and
// change compressed images. This file keeps the original builders as
// references and pins the fast path against them over random programs.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
)

// refLiteralShape is the original literal builder, verbatim.
func refLiteralShape(insts []isa.Inst) (shape, bool) {
	var b strings.Builder
	tmpl := make([]core.ReplInst, len(insts))
	for i, in := range insts {
		if !compressibleOp(in.Op) {
			return shape{}, false
		}
		if in.Op.IsBranch() {
			return shape{}, false
		}
		tmpl[i] = core.FromLiteral(in)
		fmt.Fprintf(&b, "%d:%v;", in.Op, in)
	}
	return shape{key: "L|" + b.String(), tmpl: tmpl, length: len(insts)}, true
}

// refAbstractShape is the original parameterized builder, verbatim.
func refAbstractShape(insts []isa.Inst, branches bool) (shape, func([]isa.Inst) (instParams, bool), bool) {
	slotOf := map[isa.Reg]int{}
	immSlotOf := map[int64]int{}
	nSlots := 0
	reg := func(r isa.Reg) (core.RegField, string) {
		if fixedReg(r) {
			return core.Lit(r), "l" + r.String()
		}
		s, ok := slotOf[r]
		if !ok {
			if nSlots == 3 {
				return core.RegField{}, ""
			}
			s = nSlots
			slotOf[r] = s
			nSlots++
		}
		return core.TReg(slotDirs[s]), fmt.Sprintf("p%d", s)
	}
	imm := func(v int64) (core.ImmField, string, bool) {
		s, ok := immSlotOf[v]
		if !ok {
			if nSlots == 3 {
				return core.ImmField{}, "", false
			}
			s = nSlots
			immSlotOf[v] = s
			nSlots++
		}
		return core.ImmField{Dir: slotImmDirs[s]}, fmt.Sprintf("I%d", s), true
	}

	var b strings.Builder
	tmpl := make([]core.ReplInst, len(insts))
	sh := shape{length: len(insts)}
	for i, in := range insts {
		if !compressibleOp(in.Op) {
			return shape{}, nil, false
		}
		ri := core.ReplInst{Op: in.Op,
			RS: core.Lit(isa.NoReg), RT: core.Lit(isa.NoReg), RD: core.Lit(isa.NoReg),
			Imm: core.ImmField{Dir: core.ImmLit, Lit: in.Imm}}
		fmt.Fprintf(&b, "%d:", in.Op)
		for _, f := range []struct {
			r   isa.Reg
			dst *core.RegField
		}{{in.RS, &ri.RS}, {in.RT, &ri.RT}, {in.RD, &ri.RD}} {
			fld, tag := reg(f.r)
			if tag == "" {
				return shape{}, nil, false
			}
			*f.dst = fld
			b.WriteString(tag)
			b.WriteByte(',')
		}
		switch {
		case in.Op.IsBranch():
			if !branches || i != len(insts)-1 {
				return shape{}, nil, false
			}
			dir, bits := dispDirFor(nSlots)
			if bits == 0 {
				return shape{}, nil, false
			}
			sh.hasBranch = true
			sh.dispDir, sh.dispBits = dir, bits
			ri.Imm = core.ImmField{Dir: dir}
			b.WriteString("D")
		case immSlot(in) && smallImm(in.Imm):
			f, tag, ok := imm(in.Imm)
			if !ok {
				fmt.Fprintf(&b, "i%d", in.Imm)
				break
			}
			ri.Imm = f
			b.WriteString(tag)
		default:
			fmt.Fprintf(&b, "i%d", in.Imm)
		}
		b.WriteByte(';')
		tmpl[i] = ri
	}
	sh.key = "A|" + b.String()
	sh.tmpl = tmpl
	sh.nRegSlots = nSlots

	extract := func(win []isa.Inst) (instParams, bool) {
		var ps instParams
		seen := map[isa.Reg]int{}
		seenImm := map[int64]int{}
		n := 0
		for _, in := range win {
			for _, r := range []isa.Reg{in.RS, in.RT, in.RD} {
				if fixedReg(r) {
					continue
				}
				if _, ok := seen[r]; !ok {
					if n == 3 {
						return ps, false
					}
					seen[r] = n
					ps.slots[n] = uint8(r)
					n++
				}
			}
			if !in.Op.IsBranch() && immSlot(in) && smallImm(in.Imm) {
				if _, ok := seenImm[in.Imm]; !ok && n < 3 {
					seenImm[in.Imm] = n
					ps.slots[n] = uint8(in.Imm) & 0x1f
					n++
				}
			}
		}
		return ps, true
	}
	return sh, extract, true
}

// refEnumerate is the original window walk, verbatim, over the reference
// builders.
func refEnumerate(p *program.Program, cfg Config) map[string]*candidate {
	cands := map[string]*candidate{}
	add := func(sh shape, extract func([]isa.Inst) (instParams, bool), start int) {
		c, ok := cands[sh.key]
		if !ok {
			c = &candidate{sh: sh, extract: extract}
			cands[sh.key] = c
		}
		c.windows = append(c.windows, start)
	}
	for _, blk := range p.BasicBlocks() {
		for start := blk.Start; start < blk.End; start++ {
			maxLen := blk.End - start
			if maxLen > cfg.MaxLen {
				maxLen = cfg.MaxLen
			}
			for n := cfg.MinLen; n <= maxLen; n++ {
				win := p.Text[start : start+n]
				if sh, ok := refLiteralShape(win); ok {
					add(sh, nil, start)
				}
				if !cfg.Params {
					continue
				}
				sh, extract, ok := refAbstractShape(win, cfg.Branches)
				if !ok {
					continue
				}
				if sh.hasBranch {
					oldFromStart := int64(p.BranchTargetUnit(start+n-1) - start - 1)
					if !fits(oldFromStart, sh.dispBits) {
						continue
					}
				}
				if _, ok := extract(win); !ok {
					continue
				}
				add(sh, extract, start)
			}
		}
	}
	return cands
}

func TestFastKeysMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		src := randomProgram(r)
		p, err := asm.Assemble(fmt.Sprintf("keys%d", trial), src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, step := range Ladder() {
			got := enumerate(p, step.Cfg)
			want := refEnumerate(p, step.Cfg)
			if len(got) != len(want) {
				t.Errorf("trial %d %s: %d candidates, reference has %d",
					trial, step.Name, len(got), len(want))
			}
			for key, wc := range want {
				gc, ok := got[key]
				if !ok {
					t.Errorf("trial %d %s: reference key %q missing from fast pool", trial, step.Name, key)
					continue
				}
				if !reflect.DeepEqual(gc.windows, wc.windows) {
					t.Errorf("trial %d %s: key %q windows %v, reference %v",
						trial, step.Name, key, gc.windows, wc.windows)
				}
				// Shape equality minus the extractor closure.
				if !reflect.DeepEqual(gc.sh, wc.sh) {
					t.Errorf("trial %d %s: key %q shape %+v, reference %+v",
						trial, step.Name, key, gc.sh, wc.sh)
				}
				// Extractor agreement on every accepted window.
				if wc.extract != nil {
					for _, s := range wc.windows {
						win := p.Text[s : s+wc.sh.length]
						wp, wok := wc.extract(win)
						gp, gok := gc.extract(win)
						if wok != gok || wp != gp {
							t.Errorf("trial %d %s: key %q window %d params %v/%v, reference %v/%v",
								trial, step.Name, key, s, gp, gok, wp, wok)
						}
					}
				}
			}
			for key := range got {
				if _, ok := want[key]; !ok {
					t.Errorf("trial %d %s: fast key %q not in reference pool", trial, step.Name, key)
				}
			}
		}
	}
}
