package compress

// Property-based equivalence: for randomly generated programs, every
// compression configuration must produce an image whose execution replays
// the original program's architectural behaviour exactly.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/program"
)

// randomProgram emits a small random-but-valid program: straight-line
// arithmetic, loads/stores into a window, short counted loops, repeated
// idiom chunks (so the compressor has something to find), and a digest
// printed at the end.
func randomProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString(".entry main\n.data\nbuf: .space 2048\n.text\nmain:\n")
	b.WriteString("    la r1, buf\n    li r17, 1\n")
	regs := []int{3, 4, 7, 8, 9, 10}
	reg := func() int { return regs[r.Intn(len(regs))] }
	chunks := []func(){
		func() { fmt.Fprintf(&b, "    addqi r%d, %d, r%d\n", reg(), r.Intn(50), reg()) },
		func() { fmt.Fprintf(&b, "    xor r%d, r%d, r%d\n", reg(), reg(), reg()) },
		func() { fmt.Fprintf(&b, "    ldq r%d, %d(r1)\n", reg(), 8*r.Intn(16)) },
		func() { fmt.Fprintf(&b, "    stq r%d, %d(r1)\n", reg(), 8*r.Intn(16)) },
		func() {
			a := reg()
			fmt.Fprintf(&b, "    ldq r%d, 0(r1)\n    addqi r%d, 1, r%d\n    stq r%d, 0(r1)\n", a, a, a, a)
		},
		func() {
			a := reg()
			fmt.Fprintf(&b, "    slli r%d, 2, r%d\n    addq r17, r%d, r17\n", a, a, a)
		},
	}
	// A few counted loops with random bodies.
	loops := 2 + r.Intn(3)
	for l := 0; l < loops; l++ {
		fmt.Fprintf(&b, "    li r2, %d\nl%d:\n", 3+r.Intn(6), l)
		n := 3 + r.Intn(6)
		for i := 0; i < n; i++ {
			chunks[r.Intn(len(chunks))]()
		}
		fmt.Fprintf(&b, "    subqi r2, 1, r2\n    bgt r2, l%d\n", l)
	}
	// Straight-line tail with repeated idioms.
	for i := 0; i < 10+r.Intn(20); i++ {
		chunks[r.Intn(len(chunks))]()
	}
	b.WriteString("    mov r17, r1\n    sys 2\n    halt\n")
	return b.String()
}

// digest captures a run's architecturally visible outcome.
func digest(m *emu.Machine) string {
	var sb strings.Builder
	sb.WriteString(m.Output())
	for a := uint64(0); a < 128; a += 8 {
		fmt.Fprintf(&sb, ",%x", m.Mem().Read64(program.DataBase+a))
	}
	fmt.Fprintf(&sb, "|L%d S%d B%d", m.Stats.Loads, m.Stats.Stores, m.Stats.Branches)
	return sb.String()
}

func TestCompressionPreservesSemanticsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	configs := Ladder()
	for trial := 0; trial < 25; trial++ {
		src := randomProgram(r)
		p, err := asm.Assemble(fmt.Sprintf("rand%d", trial), src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		m0 := emu.New(p)
		m0.SetBudget(1 << 20)
		if err := m0.Run(); err != nil {
			t.Fatalf("trial %d: base run: %v", trial, err)
		}
		want := digest(m0)

		for _, step := range configs {
			res, err := Compress(p, step.Cfg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, step.Name, err)
			}
			m := emu.New(res.Prog)
			m.SetBudget(1 << 20)
			if step.Cfg.Params {
				c := core.NewController(core.DefaultEngineConfig())
				if _, err := res.Install(c); err != nil {
					t.Fatalf("trial %d %s: %v", trial, step.Name, err)
				}
				m.SetExpander(c.Engine())
			} else {
				m.SetExpander(NewDecompressor(res))
			}
			if err := m.Run(); err != nil {
				t.Fatalf("trial %d %s: compressed run: %v", trial, step.Name, err)
			}
			if got := digest(m); got != want {
				t.Fatalf("trial %d %s: behaviour diverged\nwant %s\ngot  %s\nsource:\n%s",
					trial, step.Name, want, got, src)
			}
		}
	}
}

func TestCompressionIdempotentLayout(t *testing.T) {
	// Compressing the same program twice yields identical images
	// (determinism of enumeration + greedy selection).
	r := rand.New(rand.NewSource(9))
	src := randomProgram(r)
	p := asm.MustAssemble("d", src)
	a, err := Compress(p, DiseFull())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(p, DiseFull())
	if err != nil {
		t.Fatal(err)
	}
	if a.Prog.NumUnits() != b.Prog.NumUnits() || a.Stats != b.Stats {
		t.Errorf("non-deterministic compression: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.Prog.Text {
		if a.Prog.Text[i] != b.Prog.Text[i] {
			t.Fatalf("unit %d differs: %v vs %v", i, a.Prog.Text[i], b.Prog.Text[i])
		}
	}
}
