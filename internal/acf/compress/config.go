// Package compress implements dynamic code (de)compression (paper §3.2): a
// greedy dictionary compressor over basic-block-contained instruction
// sequences, with DISE's parameterized templates (register and wide
// immediate parameters, enabling PC-relative branch compression) and the
// dedicated decoder-based decompressor baseline (2-byte codewords,
// single-instruction compression, unparameterized dictionary).
//
// The six configurations of the paper's Figure 7 feature ladder are exposed
// as named constructors: Dedicated, DedicatedNoSingle, DedicatedWordCW,
// DiseUnparameterized, DiseParameterized, and DiseFull.
package compress

// Config selects the compression features.
type Config struct {
	// CodewordBytes is the static size of one codeword: 2 for the dedicated
	// decompressor's short format, 4 for DISE codewords (full instructions).
	CodewordBytes int
	// MinLen / MaxLen bound the candidate sequence lengths considered.
	// Dedicated decompression profits from MinLen 1; DISE needs MinLen 2.
	MinLen, MaxLen int
	// DictBytesPerInst is the dictionary cost per instruction: 4 plain, 8
	// when instantiation directives are stored (paper: "+8byteDE").
	DictBytesPerInst int
	// Params enables parameterized matching: sequences differing only in
	// (up to three) register fields share a dictionary entry.
	Params bool
	// Branches enables compression of PC-relative branches by making the
	// displacement a wide immediate parameter.
	Branches bool
	// MaxEntries caps the dictionary (2048 = the 11-bit tag space).
	MaxEntries int
}

// Dedicated is the full dedicated-decompressor baseline: 2-byte codewords
// and single-instruction compression, no parameterization, no branches.
// A 2-byte codeword has only 10 payload bits after the reserved opcode, so
// its dictionary is limited to 1024 entries.
func Dedicated() Config {
	return Config{CodewordBytes: 2, MinLen: 1, MaxLen: 8, DictBytesPerInst: 4, MaxEntries: 1024}
}

// DedicatedNoSingle removes single-instruction compression ("-1insn").
func DedicatedNoSingle() Config {
	c := Dedicated()
	c.MinLen = 2
	return c
}

// DedicatedWordCW additionally uses 4-byte codewords ("-2byteCW").
func DedicatedWordCW() Config {
	c := DedicatedNoSingle()
	c.CodewordBytes = 4
	c.MaxEntries = 2048
	return c
}

// DiseUnparameterized pays the 8-byte dictionary entries that directives
// require without using parameterization ("+8byteDE").
func DiseUnparameterized() Config {
	c := DedicatedWordCW()
	c.DictBytesPerInst = 8
	return c
}

// DiseParameterized adds three-slot parameterized matching ("+3param").
func DiseParameterized() Config {
	c := DiseUnparameterized()
	c.Params = true
	return c
}

// DiseFull is full DISE compression: parameterization plus PC-relative
// branch compression.
func DiseFull() Config {
	c := DiseParameterized()
	c.Branches = true
	return c
}

// Ladder returns the Figure 7a feature ladder in presentation order.
func Ladder() []struct {
	Name string
	Cfg  Config
} {
	return []struct {
		Name string
		Cfg  Config
	}{
		{"dedicated", Dedicated()},
		{"-1insn", DedicatedNoSingle()},
		{"-2byteCW", DedicatedWordCW()},
		{"+8byteDE", DiseUnparameterized()},
		{"+3param", DiseParameterized()},
		{"DISE", DiseFull()},
	}
}

// Stats reports a compression outcome.
type Stats struct {
	OrigBytes int // uncompressed text bytes
	TextBytes int // compressed text bytes
	DictBytes int // dictionary bytes (the solid stack tops of Fig 7a)
	Entries   int // dictionary entries
	Removed   int // static instructions compressed out of the text
	Codewords int // codewords planted
}

// Ratio is compressed text / original text (the bottom stack of Fig 7a).
func (s Stats) Ratio() float64 {
	if s.OrigBytes == 0 {
		return 1
	}
	return float64(s.TextBytes) / float64(s.OrigBytes)
}

// TotalRatio includes the dictionary.
func (s Stats) TotalRatio() float64 {
	if s.OrigBytes == 0 {
		return 1
	}
	return float64(s.TextBytes+s.DictBytes) / float64(s.OrigBytes)
}
