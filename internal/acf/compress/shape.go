package compress

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
)

// A shape is a dictionary-entry candidate: the template key under which
// instances are grouped, the replacement templates, and the parameter
// layout. Unparameterized shapes are keyed by their exact instructions;
// parameterized shapes abstract non-ABI register fields into (up to three)
// codeword parameter slots and, when enabled, the final branch displacement
// into the remaining slots as a wide immediate.
type shape struct {
	key    string
	tmpl   []core.ReplInst
	length int

	nRegSlots int
	hasBranch bool
	dispDir   core.ImmDir // which wide directive carries the displacement
	dispBits  int
}

// instance parameters for one codeword.
type instParams struct {
	slots [3]uint8 // register parameter values
}

// fixedReg reports registers that are never parameterized: ABI-structural
// registers, the EVR platform globals (r1, r2, r5, r6, r15..r18), the
// registers rewriting tools scavenge (r20..r24), and DISE dedicated
// registers reached through composition. They are identical across idiom
// instances, so spending a parameter slot on them is waste — a production
// compressor would derive this set from per-program register frequency;
// EVR fixes it by convention.
func fixedReg(r isa.Reg) bool {
	switch r {
	case isa.NoReg, isa.RegZero, isa.RegSP, isa.RegRA, isa.RegGP, isa.RegAT:
		return true
	}
	if r <= 2 || r == 5 || r == 6 || r >= 15 && r <= 18 || r >= 20 && r <= 24 {
		return true
	}
	return r.IsDedicated()
}

var slotDirs = [3]core.RegDir{core.RegTRS, core.RegTRT, core.RegTRD}

// dispDirFor returns the wide-immediate directive and bit width available
// when nRegSlots slots are taken by registers.
func dispDirFor(nRegSlots int) (core.ImmDir, int) {
	switch nRegSlots {
	case 0:
		return core.ImmP123, 15
	case 1:
		return core.ImmP23, 10
	case 2:
		return core.ImmP3, 5
	default:
		return core.ImmLit, 0
	}
}

// fits reports whether v is representable as a signed bits-wide integer.
func fits(v int64, bits int) bool {
	if bits <= 0 {
		return false
	}
	lim := int64(1) << (bits - 1)
	return v >= -lim && v < lim
}

// literalShape builds an unparameterized candidate. Sequences containing
// PC-relative branches are rejected: compression changes relative PCs, so
// unparameterized branch compression is infeasible (paper §3.2).
func literalShape(insts []isa.Inst) (shape, bool) {
	var b strings.Builder
	tmpl := make([]core.ReplInst, len(insts))
	for i, in := range insts {
		if !compressibleOp(in.Op) {
			return shape{}, false
		}
		if in.Op.IsBranch() {
			return shape{}, false
		}
		tmpl[i] = core.FromLiteral(in)
		fmt.Fprintf(&b, "%d:%v;", in.Op, in)
	}
	return shape{key: "L|" + b.String(), tmpl: tmpl, length: len(insts)}, true
}

var slotImmDirs = [3]core.ImmDir{core.ImmP1, core.ImmP2, core.ImmP3}

// smallImm reports immediates worth parameterizing: they fit one signed
// 5-bit parameter slot (the paper's Figure 4 case — lda 8 vs lda -8 sharing
// one entry through T.P2).
func smallImm(v int64) bool { return v >= -16 && v <= 15 }

// abstractShape builds the parameterized candidate: non-ABI registers and
// small immediates become parameter slots in order of first appearance; the
// trailing branch's displacement (if branches are enabled) becomes a wide
// immediate parameter in the remaining slots. It also returns the per-call
// parameter extractor.
func abstractShape(insts []isa.Inst, branches bool) (shape, func([]isa.Inst) (instParams, bool), bool) {
	slotOf := map[isa.Reg]int{}
	immSlotOf := map[int64]int{}
	nSlots := 0
	reg := func(r isa.Reg) (core.RegField, string) {
		if fixedReg(r) {
			return core.Lit(r), "l" + r.String()
		}
		s, ok := slotOf[r]
		if !ok {
			if nSlots == 3 {
				return core.RegField{}, ""
			}
			s = nSlots
			slotOf[r] = s
			nSlots++
		}
		return core.TReg(slotDirs[s]), fmt.Sprintf("p%d", s)
	}
	// Immediate slots are shared by value, so a load/store pair with the
	// same displacement consumes one parameter (both instantiate from it).
	imm := func(v int64) (core.ImmField, string, bool) {
		s, ok := immSlotOf[v]
		if !ok {
			if nSlots == 3 {
				return core.ImmField{}, "", false
			}
			s = nSlots
			immSlotOf[v] = s
			nSlots++
		}
		return core.ImmField{Dir: slotImmDirs[s]}, fmt.Sprintf("I%d", s), true
	}

	var b strings.Builder
	tmpl := make([]core.ReplInst, len(insts))
	sh := shape{length: len(insts)}
	for i, in := range insts {
		if !compressibleOp(in.Op) {
			return shape{}, nil, false
		}
		ri := core.ReplInst{Op: in.Op,
			RS: core.Lit(isa.NoReg), RT: core.Lit(isa.NoReg), RD: core.Lit(isa.NoReg),
			Imm: core.ImmField{Dir: core.ImmLit, Lit: in.Imm}}
		fmt.Fprintf(&b, "%d:", in.Op)
		for _, f := range []struct {
			r   isa.Reg
			dst *core.RegField
		}{{in.RS, &ri.RS}, {in.RT, &ri.RT}, {in.RD, &ri.RD}} {
			fld, tag := reg(f.r)
			if tag == "" {
				return shape{}, nil, false // more than 3 distinct registers
			}
			*f.dst = fld
			b.WriteString(tag)
			b.WriteByte(',')
		}
		switch {
		case in.Op.IsBranch():
			if !branches || i != len(insts)-1 {
				return shape{}, nil, false
			}
			dir, bits := dispDirFor(nSlots)
			if bits == 0 {
				return shape{}, nil, false // no slots left for the displacement
			}
			sh.hasBranch = true
			sh.dispDir, sh.dispBits = dir, bits
			ri.Imm = core.ImmField{Dir: dir}
			b.WriteString("D")
		case immSlot(in) && smallImm(in.Imm):
			f, tag, ok := imm(in.Imm)
			if !ok {
				fmt.Fprintf(&b, "i%d", in.Imm)
				break
			}
			ri.Imm = f
			b.WriteString(tag)
		default:
			fmt.Fprintf(&b, "i%d", in.Imm)
		}
		b.WriteByte(';')
		tmpl[i] = ri
	}
	sh.key = "A|" + b.String()
	sh.tmpl = tmpl
	sh.nRegSlots = nSlots

	// The extractor replays the allocation walk on a concrete instance. Two
	// instances share a shape iff their keys match, which guarantees the
	// same slot structure.
	extract := func(win []isa.Inst) (instParams, bool) {
		var ps instParams
		seen := map[isa.Reg]int{}
		seenImm := map[int64]int{}
		n := 0
		for _, in := range win {
			for _, r := range []isa.Reg{in.RS, in.RT, in.RD} {
				if fixedReg(r) {
					continue
				}
				if _, ok := seen[r]; !ok {
					if n == 3 {
						return ps, false
					}
					seen[r] = n
					ps.slots[n] = uint8(r)
					n++
				}
			}
			if !in.Op.IsBranch() && immSlot(in) && smallImm(in.Imm) {
				if _, ok := seenImm[in.Imm]; !ok && n < 3 {
					seenImm[in.Imm] = n
					ps.slots[n] = uint8(in.Imm) & 0x1f
					n++
				}
			}
		}
		return ps, true
	}
	return sh, extract, true
}

// immSlot reports whether in's format carries a general immediate that may
// be parameterized (memory displacements and operate immediates).
func immSlot(in isa.Inst) bool {
	switch in.Op.Format() {
	case isa.FmtMem, isa.FmtOpImm:
		return true
	}
	return false
}

// compressibleOp rejects instructions that may not appear in a dictionary
// entry: codewords (no recursive expansion), and specials (halt/sys occupy
// negligible static space and complicate trigger semantics).
func compressibleOp(op isa.Opcode) bool {
	switch op.Class() {
	case isa.ClassCodeword, isa.ClassSpecial, isa.ClassInvalid:
		return false
	}
	return true
}

// packDisp packs a displacement into the parameter slots the shape reserved
// for it, overlaying any register slots already assigned.
func packDisp(ps *instParams, sh *shape, disp int64) bool {
	if !fits(disp, sh.dispBits) {
		return false
	}
	u := uint64(disp) & (1<<uint(sh.dispBits) - 1)
	switch sh.dispDir {
	case core.ImmP3:
		ps.slots[2] = uint8(u & 0x1f)
	case core.ImmP23:
		ps.slots[1] = uint8(u >> 5 & 0x1f)
		ps.slots[2] = uint8(u & 0x1f)
	case core.ImmP123:
		ps.slots[0] = uint8(u >> 10 & 0x1f)
		ps.slots[1] = uint8(u >> 5 & 0x1f)
		ps.slots[2] = uint8(u & 0x1f)
	default:
		return false
	}
	return true
}
