package compress

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/isa"
)

// A shape is a dictionary-entry candidate: the template key under which
// instances are grouped, the replacement templates, and the parameter
// layout. Unparameterized shapes are keyed by their exact instructions;
// parameterized shapes abstract non-ABI register fields into (up to three)
// codeword parameter slots and, when enabled, the final branch displacement
// into the remaining slots as a wide immediate.
type shape struct {
	key    string
	tmpl   []core.ReplInst
	length int

	nRegSlots int
	hasBranch bool
	dispDir   core.ImmDir // which wide directive carries the displacement
	dispBits  int
}

// instance parameters for one codeword.
type instParams struct {
	slots [3]uint8 // register parameter values
}

// fixedReg reports registers that are never parameterized: ABI-structural
// registers, the EVR platform globals (r1, r2, r5, r6, r15..r18), the
// registers rewriting tools scavenge (r20..r24), and DISE dedicated
// registers reached through composition. They are identical across idiom
// instances, so spending a parameter slot on them is waste — a production
// compressor would derive this set from per-program register frequency;
// EVR fixes it by convention.
func fixedReg(r isa.Reg) bool {
	switch r {
	case isa.NoReg, isa.RegZero, isa.RegSP, isa.RegRA, isa.RegGP, isa.RegAT:
		return true
	}
	if r <= 2 || r == 5 || r == 6 || r >= 15 && r <= 18 || r >= 20 && r <= 24 {
		return true
	}
	return r.IsDedicated()
}

var slotDirs = [3]core.RegDir{core.RegTRS, core.RegTRT, core.RegTRD}

// dispDirFor returns the wide-immediate directive and bit width available
// when nRegSlots slots are taken by registers.
func dispDirFor(nRegSlots int) (core.ImmDir, int) {
	switch nRegSlots {
	case 0:
		return core.ImmP123, 15
	case 1:
		return core.ImmP23, 10
	case 2:
		return core.ImmP3, 5
	default:
		return core.ImmLit, 0
	}
}

// fits reports whether v is representable as a signed bits-wide integer.
func fits(v int64, bits int) bool {
	if bits <= 0 {
		return false
	}
	lim := int64(1) << (bits - 1)
	return v >= -lim && v < lim
}

var slotImmDirs = [3]core.ImmDir{core.ImmP1, core.ImmP2, core.ImmP3}

// smallImm reports immediates worth parameterizing: they fit one signed
// 5-bit parameter slot (the paper's Figure 4 case — lda 8 vs lda -8 sharing
// one entry through T.P2).
func smallImm(v int64) bool { return v >= -16 && v <= 15 }

// Key fragments, precomputed so the enumeration inner loop appends plain
// strings instead of running fmt. The rendered keys are pinned byte-for-byte
// against the original fmt-based builders by TestFastKeysMatchReference:
// candHeap tie-breaks on the key, so any drift would silently change which
// dictionary entries win.
var (
	opKeyPrefix [isa.NumOpcodes]string // "%d:" per opcode
	regLitTag   [256]string            // "l" + Reg.String() per register
)

var (
	regSlotTag = [3]string{"p0", "p1", "p2"}
	immSlotTag = [3]string{"I0", "I1", "I2"}
)

func init() {
	for op := range opKeyPrefix {
		opKeyPrefix[op] = strconv.Itoa(op) + ":"
	}
	for r := range regLitTag {
		regLitTag[r] = "l" + isa.Reg(r).String()
	}
}

// slotAlloc assigns the (at most three) codeword parameter slots in order of
// first appearance — registers by identity, small immediates by value. The
// same walk underlies the abstract key, the replacement templates, and
// per-instance parameter extraction, which is what keeps them consistent.
type slotAlloc struct {
	n   int
	ent [3]slotEnt
}

type slotEnt struct {
	isReg bool
	reg   isa.Reg
	imm   int64
}

// regSlot returns r's slot, allocating on first appearance. ok=false means
// the window needs a fourth slot and cannot be parameterized.
func (a *slotAlloc) regSlot(r isa.Reg) (int, bool) {
	for i := 0; i < a.n; i++ {
		if a.ent[i].isReg && a.ent[i].reg == r {
			return i, true
		}
	}
	if a.n == 3 {
		return 0, false
	}
	a.ent[a.n] = slotEnt{isReg: true, reg: r}
	a.n++
	return a.n - 1, true
}

// immSlotOf returns v's slot, allocating on first appearance. Immediate
// slots are shared by value, so a load/store pair with the same displacement
// consumes one parameter (both instantiate from it). ok=false means the
// slots are exhausted; the caller keeps the immediate literal.
func (a *slotAlloc) immSlotOf(v int64) (int, bool) {
	for i := 0; i < a.n; i++ {
		if !a.ent[i].isReg && a.ent[i].imm == v {
			return i, true
		}
	}
	if a.n == 3 {
		return 0, false
	}
	a.ent[a.n] = slotEnt{imm: v}
	a.n++
	return a.n - 1, true
}

// abstractBuild constructs the parameterized shape for a window whose key
// (already rendered incrementally by enumerate) was not yet in the candidate
// pool. It repeats the slot walk to build the replacement templates; key
// equality across windows guarantees both walks agree. The trailing branch's
// displacement (if branches are enabled) becomes a wide immediate parameter
// in the remaining slots.
func abstractBuild(insts []isa.Inst, branches bool, key string) (shape, bool) {
	var a slotAlloc
	tmpl := make([]core.ReplInst, len(insts))
	sh := shape{key: key, length: len(insts)}
	for i, in := range insts {
		if !compressibleOp(in.Op) {
			return shape{}, false
		}
		ri := core.ReplInst{Op: in.Op,
			RS: core.Lit(isa.NoReg), RT: core.Lit(isa.NoReg), RD: core.Lit(isa.NoReg),
			Imm: core.ImmField{Dir: core.ImmLit, Lit: in.Imm}}
		for _, f := range [3]struct {
			r   isa.Reg
			dst *core.RegField
		}{{in.RS, &ri.RS}, {in.RT, &ri.RT}, {in.RD, &ri.RD}} {
			if fixedReg(f.r) {
				*f.dst = core.Lit(f.r)
				continue
			}
			s, ok := a.regSlot(f.r)
			if !ok {
				return shape{}, false // more than 3 distinct registers
			}
			*f.dst = core.TReg(slotDirs[s])
		}
		switch {
		case in.Op.IsBranch():
			if !branches || i != len(insts)-1 {
				return shape{}, false
			}
			dir, bits := dispDirFor(a.n)
			if bits == 0 {
				return shape{}, false // no slots left for the displacement
			}
			sh.hasBranch = true
			sh.dispDir, sh.dispBits = dir, bits
			ri.Imm = core.ImmField{Dir: dir}
		case immSlot(in) && smallImm(in.Imm):
			if s, ok := a.immSlotOf(in.Imm); ok {
				ri.Imm = core.ImmField{Dir: slotImmDirs[s]}
			}
		}
		tmpl[i] = ri
	}
	sh.tmpl = tmpl
	sh.nRegSlots = a.n
	return sh, true
}

// extractParams replays the slot-allocation walk on a concrete window and
// packs the parameter values for one codeword. Two instances share a shape
// iff their keys match, which guarantees the same slot structure, so the
// walk needs no shape state.
func extractParams(win []isa.Inst) (instParams, bool) {
	var ps instParams
	var a slotAlloc
	for _, in := range win {
		for _, r := range [3]isa.Reg{in.RS, in.RT, in.RD} {
			if fixedReg(r) {
				continue
			}
			was := a.n
			s, ok := a.regSlot(r)
			if !ok {
				return ps, false
			}
			if a.n > was {
				ps.slots[s] = uint8(r)
			}
		}
		if !in.Op.IsBranch() && immSlot(in) && smallImm(in.Imm) {
			was := a.n
			if s, ok := a.immSlotOf(in.Imm); ok && a.n > was {
				ps.slots[s] = uint8(in.Imm) & 0x1f
			}
		}
	}
	return ps, true
}

// immSlot reports whether in's format carries a general immediate that may
// be parameterized (memory displacements and operate immediates).
func immSlot(in isa.Inst) bool {
	switch in.Op.Format() {
	case isa.FmtMem, isa.FmtOpImm:
		return true
	}
	return false
}

// compressibleOp rejects instructions that may not appear in a dictionary
// entry: codewords (no recursive expansion), and specials (halt/sys occupy
// negligible static space and complicate trigger semantics).
func compressibleOp(op isa.Opcode) bool {
	switch op.Class() {
	case isa.ClassCodeword, isa.ClassSpecial, isa.ClassInvalid:
		return false
	}
	return true
}

// packDisp packs a displacement into the parameter slots the shape reserved
// for it, overlaying any register slots already assigned.
func packDisp(ps *instParams, sh *shape, disp int64) bool {
	if !fits(disp, sh.dispBits) {
		return false
	}
	u := uint64(disp) & (1<<uint(sh.dispBits) - 1)
	switch sh.dispDir {
	case core.ImmP3:
		ps.slots[2] = uint8(u & 0x1f)
	case core.ImmP23:
		ps.slots[1] = uint8(u >> 5 & 0x1f)
		ps.slots[2] = uint8(u & 0x1f)
	case core.ImmP123:
		ps.slots[0] = uint8(u >> 10 & 0x1f)
		ps.slots[1] = uint8(u >> 5 & 0x1f)
		ps.slots[2] = uint8(u & 0x1f)
	default:
		return false
	}
	return true
}
