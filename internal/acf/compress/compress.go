package compress

import (
	"container/heap"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
)

// Result is a compressed program plus its decompression dictionary.
type Result struct {
	Prog *program.Program
	Dict []*core.Replacement
	// CodewordOp is the reserved opcode codewords use: OpRES0 for DISE
	// (full-instruction codewords), OpRES3 for the dedicated baseline.
	CodewordOp isa.Opcode
	Stats      Stats
}

// Pattern returns the aware pattern specification matching this result's
// codewords.
func (r *Result) Pattern() core.Pattern {
	return core.Pattern{Op: r.CodewordOp, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}
}

// Install activates DISE decompression for r on a controller. When the
// compressor found nothing profitable the image is unchanged, there is no
// dictionary, and Install is a no-op returning (nil, nil).
func (r *Result) Install(c *core.Controller) (*core.Production, error) {
	if len(r.Dict) == 0 {
		return nil, nil
	}
	return c.InstallAware("decomp", r.Pattern(), r.Dict)
}

type candidate struct {
	sh      shape
	extract func([]isa.Inst) (instParams, bool)
	windows []int // start units, ascending

	benefit int // cached (possibly stale) benefit
	index   int // heap index
}

type candHeap []*candidate

func (h candHeap) Len() int { return len(h) }

// Less orders by benefit, tie-broken by shape key: the candidate pool is a
// map, so a deterministic total order is what makes compression reproducible.
func (h candHeap) Less(i, j int) bool {
	if h[i].benefit != h[j].benefit {
		return h[i].benefit > h[j].benefit
	}
	return h[i].sh.key < h[j].sh.key
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *candHeap) Push(x any)   { c := x.(*candidate); c.index = len(*h); *h = append(*h, c) }
func (h *candHeap) Pop() any     { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// Compress compresses p under cfg. The input program must be a natural
// (all-4-byte) image; the original is not modified.
func Compress(p *program.Program, cfg Config) (*Result, error) {
	if cfg.MinLen < 1 || cfg.MaxLen < cfg.MinLen || cfg.CodewordBytes <= 0 || cfg.MaxEntries <= 0 {
		return nil, fmt.Errorf("compress: bad config %+v", cfg)
	}
	if p.Sizes != nil {
		return nil, fmt.Errorf("compress: %s is already compressed", p.Name)
	}

	cands := enumerate(p, cfg)
	chosen, claimed := selectGreedy(p, cfg, cands)
	return apply(p, cfg, chosen, claimed)
}

// enumerate builds the candidate pool: every basic-block-contained window
// in both its literal and (when enabled) parameterized form.
//
// Keys are rendered incrementally: each start position extends the literal
// and abstract keys of the previous (shorter) window by one unit's fragment
// in a reused byte buffer, so a length-n window costs one fragment append and
// one allocation-free map probe instead of an O(n) fmt walk. The extensions
// are sound because every failure mode is monotone in window growth — a
// noncompressible unit, a fourth register slot, and (for literals) a branch
// all doom every longer window from the same start, and a branch can only be
// a block's final unit, so "branch must come last" never prunes a prefix.
// Shape construction (templates, extractor) runs only on a key's first
// sighting.
func enumerate(p *program.Program, cfg Config) map[string]*candidate {
	cands := map[string]*candidate{}
	text := p.Text

	// Per-unit fragments, computed once. litFrag is the exact "%d:%v;"
	// rendering the literal keys have always used (one fmt call per static
	// unit rather than per window).
	compOK := make([]bool, len(text))
	isBr := make([]bool, len(text))
	litFrag := make([]string, len(text))
	for u := range text {
		in := &text[u]
		if !compressibleOp(in.Op) {
			continue
		}
		compOK[u] = true
		isBr[u] = in.Op.IsBranch()
		if !isBr[u] {
			litFrag[u] = fmt.Sprintf("%d:%v;", in.Op, *in)
		}
	}

	addLit := func(key []byte, start, n int) {
		if c, ok := cands[string(key)]; ok {
			c.windows = append(c.windows, start)
			return
		}
		tmpl := make([]core.ReplInst, n)
		for i, in := range text[start : start+n] {
			tmpl[i] = core.FromLiteral(in)
		}
		k := string(key)
		cands[k] = &candidate{sh: shape{key: k, tmpl: tmpl, length: n}, windows: []int{start}}
	}
	addAbs := func(key []byte, start, n int) {
		if c, ok := cands[string(key)]; ok {
			c.windows = append(c.windows, start)
			return
		}
		k := string(key)
		sh, ok := abstractBuild(text[start:start+n], cfg.Branches, k)
		if !ok {
			panic("compress: abstract key accepted but shape build failed")
		}
		cands[k] = &candidate{sh: sh, extract: extractParams, windows: []int{start}}
	}

	var lbuf, abuf []byte
	for _, blk := range p.BasicBlocks() {
		for start := blk.Start; start < blk.End; start++ {
			maxLen := blk.End - start
			if maxLen > cfg.MaxLen {
				maxLen = cfg.MaxLen
			}
			lbuf = append(lbuf[:0], "L|"...)
			abuf = append(abuf[:0], "A|"...)
			litAlive := true
			absAlive := cfg.Params
			var a slotAlloc
			for n := 1; n <= maxLen; n++ {
				u := start + n - 1
				if !compOK[u] {
					break // dooms every window through u, in both forms
				}
				in := &text[u]
				br := isBr[u]
				if br {
					litAlive = false // literals may not contain branches
				} else if litAlive {
					lbuf = append(lbuf, litFrag[u]...)
					if n >= cfg.MinLen {
						addLit(lbuf, start, n)
					}
				}
				if absAlive {
					abuf = append(abuf, opKeyPrefix[in.Op]...)
					regsOK := true
					for _, r := range [3]isa.Reg{in.RS, in.RT, in.RD} {
						if fixedReg(r) {
							abuf = append(abuf, regLitTag[r]...)
						} else if s, ok := a.regSlot(r); ok {
							abuf = append(abuf, regSlotTag[s]...)
						} else {
							regsOK = false
							break
						}
						abuf = append(abuf, ',')
					}
					valid := regsOK
					dispBits := 0
					if regsOK {
						switch {
						case br:
							// A branch is necessarily the window's last unit
							// (it ends the basic block); it parameterizes only
							// when enabled and when slots remain for the
							// displacement.
							if _, bits := dispDirFor(a.n); cfg.Branches && bits > 0 {
								dispBits = bits
								abuf = append(abuf, 'D')
							} else {
								valid = false
							}
						case immSlot(*in) && smallImm(in.Imm):
							if s, ok := a.immSlotOf(in.Imm); ok {
								abuf = append(abuf, immSlotTag[s]...)
							} else {
								abuf = append(abuf, 'i')
								abuf = strconv.AppendInt(abuf, in.Imm, 10)
							}
						default:
							abuf = append(abuf, 'i')
							abuf = strconv.AppendInt(abuf, in.Imm, 10)
						}
					}
					if valid {
						abuf = append(abuf, ';')
						if n >= cfg.MinLen {
							emit := true
							if br {
								// Conservative displacement-fit check:
								// compression only shrinks unit distances, so
								// the displacement measured from the window
								// start bounds the final one.
								oldFromStart := int64(p.BranchTargetUnit(u) - start - 1)
								emit = fits(oldFromStart, dispBits)
							}
							if emit {
								if _, ok := extractParams(text[start : start+n]); ok {
									addAbs(abuf, start, n)
								}
							}
						}
					}
					if br || !valid {
						absAlive = false
					}
				}
				if !litAlive && !absAlive {
					break
				}
			}
		}
	}
	return cands
}

type chosenEntry struct {
	cand    *candidate
	dictIdx int
	starts  []int
}

// usable counts (and optionally returns) the non-overlapping instances of c
// still available given claimed units.
func usable(c *candidate, claimed []bool, collect bool) (int, []int) {
	var starts []int
	count := 0
	nextFree := -1
	n := c.sh.length
	for _, s := range c.windows {
		if s < nextFree {
			continue
		}
		free := true
		for u := s; u < s+n; u++ {
			if claimed[u] {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		count++
		nextFree = s + n
		if collect {
			starts = append(starts, s)
		}
	}
	return count, starts
}

func benefit(cfg Config, sh shape, count int) int {
	saved := (4*sh.length - cfg.CodewordBytes) * count
	return saved - cfg.DictBytesPerInst*sh.length
}

// selectGreedy runs lazy greedy selection: repeatedly take the candidate
// with the greatest immediate compression (paper §3.2), using stale-benefit
// reinsertion to avoid rescanning the whole pool per step. Selection runs
// in two phases — multi-instruction sequences first, then single
// instructions — so that frequent singles never fragment longer matches
// (guaranteeing single-instruction compression only ever helps).
func selectGreedy(p *program.Program, cfg Config, cands map[string]*candidate) ([]chosenEntry, map[int]*chosenEntry) {
	claimed := make([]bool, p.NumUnits())
	var chosen []chosenEntry
	phase := func(pick func(*candidate) bool) {
		h := make(candHeap, 0, len(cands))
		for _, c := range cands {
			if !pick(c) {
				continue
			}
			count, _ := usable(c, claimed, false)
			c.benefit = benefit(cfg, c.sh, count)
			if c.benefit > 0 {
				h = append(h, c)
			}
		}
		heap.Init(&h)
		for len(h) > 0 && len(chosen) < cfg.MaxEntries {
			c := heap.Pop(&h).(*candidate)
			count, _ := usable(c, claimed, false)
			fresh := benefit(cfg, c.sh, count)
			if fresh <= 0 {
				continue
			}
			if len(h) > 0 && fresh < h[0].benefit {
				c.benefit = fresh
				heap.Push(&h, c)
				continue
			}
			_, starts := usable(c, claimed, true)
			for _, s := range starts {
				for u := s; u < s+c.sh.length; u++ {
					claimed[u] = true
				}
			}
			chosen = append(chosen, chosenEntry{cand: c, dictIdx: len(chosen), starts: starts})
		}
	}
	phase(func(c *candidate) bool { return c.sh.length > 1 })
	phase(func(c *candidate) bool { return c.sh.length == 1 })
	byStart := map[int]*chosenEntry{}
	for i := range chosen {
		for _, s := range chosen[i].starts {
			byStart[s] = &chosen[i]
		}
	}
	return chosen, byStart
}

// apply rebuilds the program with codewords planted and every displacement
// re-resolved after the re-layout.
func apply(p *program.Program, cfg Config, chosen []chosenEntry, byStart map[int]*chosenEntry) (*Result, error) {
	cwOp := isa.OpRES3
	if cfg.Params {
		cwOp = isa.OpRES0
	}
	res := &Result{CodewordOp: cwOp}
	res.Stats.OrigBytes = p.TextBytes()

	q := &program.Program{
		Name:    p.Name + "+comp",
		Data:    append([]byte(nil), p.Data...),
		Symbols: map[string]int{},
	}
	newIdx := make([]int, p.NumUnits()+1)
	type plant struct {
		newUnit  int
		entry    *chosenEntry
		oldStart int
	}
	var plants []plant
	for i := 0; i < p.NumUnits(); {
		newIdx[i] = len(q.Text)
		if e, ok := byStart[i]; ok {
			win := p.Text[i : i+e.cand.sh.length]
			var ps instParams
			if e.cand.extract != nil {
				var ok2 bool
				ps, ok2 = e.cand.extract(win)
				if !ok2 {
					return nil, fmt.Errorf("compress: instance at unit %d does not fit its shape", i)
				}
			}
			cw := isa.Codeword(cwOp, ps.slots[0], ps.slots[1], ps.slots[2], uint16(e.dictIdx))
			q.Text = append(q.Text, cw)
			q.Sizes = append(q.Sizes, uint8(cfg.CodewordBytes))
			plants = append(plants, plant{newUnit: len(q.Text) - 1, entry: e, oldStart: i})
			// Interior units map to the codeword (nothing may target them,
			// but keep the mapping total).
			for u := i + 1; u <= i+e.cand.sh.length; u++ {
				if u <= p.NumUnits() {
					newIdx[u] = len(q.Text)
				}
			}
			i += e.cand.sh.length
			continue
		}
		q.Text = append(q.Text, p.Text[i])
		q.Sizes = append(q.Sizes, 4)
		i++
	}
	newIdx[p.NumUnits()] = len(q.Text)

	for sym, u := range p.Symbols {
		q.Symbols[sym] = newIdx[u]
	}
	q.Entry = newIdx[p.Entry]

	// Re-resolve uncompressed branches.
	for i := 0; i < p.NumUnits(); i++ {
		if e := byStart[i]; e != nil {
			i += e.cand.sh.length - 1
			continue
		}
		if !p.Text[i].Op.IsBranch() {
			continue
		}
		q.SetBranchTarget(newIdx[i], newIdx[p.BranchTargetUnit(i)])
	}

	// Re-resolve displacements carried by codeword parameters.
	for _, pl := range plants {
		sh := &pl.entry.cand.sh
		if !sh.hasBranch {
			continue
		}
		oldBranch := pl.oldStart + sh.length - 1
		newT := newIdx[p.BranchTargetUnit(oldBranch)]
		disp := int64(newT - pl.newUnit - 1)
		cw := q.Text[pl.newUnit]
		ps := instParams{slots: [3]uint8{uint8(cw.RS), uint8(cw.RT), uint8(cw.RD)}}
		if !packDisp(&ps, sh, disp) {
			return nil, fmt.Errorf("compress: displacement %d at unit %d exceeds %d parameter bits",
				disp, pl.newUnit, sh.dispBits)
		}
		q.Text[pl.newUnit] = isa.Codeword(cwOp, ps.slots[0], ps.slots[1], ps.slots[2], uint16(pl.entry.dictIdx))
	}

	q.Invalidate()
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}

	// Build the dictionary in index order (selection appended in order).
	for _, e := range chosen {
		res.Dict = append(res.Dict, &core.Replacement{
			Name:  fmt.Sprintf("dict%d", e.dictIdx),
			Insts: e.cand.sh.tmpl,
		})
		res.Stats.Removed += e.cand.sh.length * len(e.starts)
		res.Stats.Codewords += len(e.starts)
		res.Stats.DictBytes += cfg.DictBytesPerInst * e.cand.sh.length
	}
	res.Stats.Entries = len(res.Dict)
	res.Prog = q
	res.Stats.TextBytes = q.TextBytes()
	return res, nil
}

// Decompressor is the dedicated decoder-based decompressor baseline
// (paper §4.2, [20]): a hardware dictionary expander with no DISE engine —
// expansions are free and there is no replacement table to miss.
type Decompressor struct {
	op   isa.Opcode
	dict []*core.Replacement
}

// NewDecompressor builds the dedicated decompressor for a compression
// result.
func NewDecompressor(r *Result) *Decompressor {
	return &Decompressor{op: r.CodewordOp, dict: r.Dict}
}

// Expand implements the post-fetch expansion interface.
func (d *Decompressor) Expand(in isa.Inst, pc uint64) *core.Expansion {
	if in.Op != d.op {
		return nil
	}
	idx := int(in.Imm)
	if idx < 0 || idx >= len(d.dict) {
		return nil
	}
	r := d.dict[idx]
	return &core.Expansion{
		SeqID:     idx,
		Insts:     r.Instantiate(in, pc),
		Templates: r.Insts,
	}
}

// ProductionText renders the decompression dictionary in the production
// language, with an inline dict block — the external representation a
// DISE-aware compressor ships next to the compressed binary (paper §2.3:
// productions travel as directive-annotated native assembly; §3.2: the
// dictionary is coded into the application's "production segment"). The
// text round-trips through core.ParseProductions/InstallFile.
func (r *Result) ProductionText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# decompression dictionary: %d entries, %d codewords in text\n",
		len(r.Dict), r.Stats.Codewords)
	fmt.Fprintf(&b, "aware decomp {\n    match op == %s\n    dict {\n", r.CodewordOp)
	for _, e := range r.Dict {
		b.WriteString("        entry {\n")
		for i := range e.Insts {
			fmt.Fprintf(&b, "            %s\n", e.Insts[i].String())
		}
		b.WriteString("        }\n")
	}
	b.WriteString("    }\n}\n")
	return b.String()
}
