// Package dsm implements the fine-grain distributed-shared-memory access
// check of paper §3.1 (in the style of Shasta): every load and store is
// expanded with an inline presence check against a line directory held in
// application memory and addressed through a dedicated register. A DISE-
// capable machine thereby "has the appearance of hardware-supported
// fine-grained DSM without custom hardware": the checks cost ordinary
// pipelined instructions rather than a software rewrite, and the directory
// base/handler are unforgeable dedicated state.
//
// Two operating modes are provided:
//
//   - Trap mode: an access to a non-present line escapes to the coherence
//     handler (address 0 = kernel), modelling the remote-fetch trap.
//   - Tracking mode: the expansion itself marks the line present and counts
//     first-touch misses in a dedicated register — branch-free, so the
//     common (present) case costs a fixed short sequence, exactly the
//     property fine-grain software DSM systems engineer for.
package dsm

import (
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

// Line geometry: 64-byte coherence lines, a directory of 64-bit words with
// one presence bit per line.
const (
	LineShift = 6
	// DirLines is the number of lines the directory covers (bits).
	DirLines = 1 << 16 // 4MB of shared space
	// DirBytes is the directory's size in bytes.
	DirBytes = DirLines / 8
)

// Dedicated register roles.
const (
	dirBaseReg = isa.RegDR0 + 5 // $dr5: directory base address
	oneReg     = isa.RegDR0 + 4 // $dr4: the constant 1
	missReg    = isa.RegDR0 + 6 // $dr6: first-touch miss counter
	handlerReg = isa.RegDR0 + 7 // $dr7: coherence trap handler
)

// MissCount reads the tracking-mode first-touch counter.
func MissCount(m *emu.Machine) uint64 { return m.Reg(missReg) }

// trackBody is the branch-free presence check + mark + count sequence
// shared by loads and stores; %ea computes the effective address per class.
const trackProductions = `
prod dsm_load {
    match class == load
    replace {
        lda  $dr0, %imm(%rs)
        srli $dr0, 6, $dr0
        andi $dr0, 65535, $dr0
        srli $dr0, 6, $dr1
        slli $dr1, 3, $dr1
        addq $dr5, $dr1, $dr1
        ldq  $dr2, 0($dr1)
        andi $dr0, 63, $dr0
        sll  $dr4, $dr0, $dr3
        bis  $dr2, $dr3, $dr0
        stq  $dr0, 0($dr1)
        and  $dr2, $dr3, $dr3
        cmpeqi $dr3, 0, $dr3
        addq $dr6, $dr3, $dr6
        %insn
    }
}
prod dsm_store {
    match class == store
    replace {
        lda  $dr0, %imm(%rs)
        srli $dr0, 6, $dr0
        andi $dr0, 65535, $dr0
        srli $dr0, 6, $dr1
        slli $dr1, 3, $dr1
        addq $dr5, $dr1, $dr1
        ldq  $dr2, 0($dr1)
        andi $dr0, 63, $dr0
        sll  $dr4, $dr0, $dr3
        bis  $dr2, $dr3, $dr0
        stq  $dr0, 0($dr1)
        and  $dr2, $dr3, $dr3
        cmpeqi $dr3, 0, $dr3
        addq $dr6, $dr3, $dr6
        %insn
    }
}
`

const trapProductions = `
prod dsm_load {
    match class == load
    replace {
        lda  $dr0, %imm(%rs)
        srli $dr0, 6, $dr0
        andi $dr0, 65535, $dr0
        srli $dr0, 6, $dr1
        slli $dr1, 3, $dr1
        addq $dr5, $dr1, $dr1
        ldq  $dr2, 0($dr1)
        andi $dr0, 63, $dr0
        srl  $dr2, $dr0, $dr2
        andi $dr2, 1, $dr2
        jeq  $dr2, ($dr7)
        %insn
    }
}
prod dsm_store {
    match class == store
    replace {
        lda  $dr0, %imm(%rs)
        srli $dr0, 6, $dr0
        andi $dr0, 65535, $dr0
        srli $dr0, 6, $dr1
        slli $dr1, 3, $dr1
        addq $dr5, $dr1, $dr1
        ldq  $dr2, 0($dr1)
        andi $dr0, 63, $dr0
        srl  $dr2, $dr0, $dr2
        andi $dr2, 1, $dr2
        jeq  $dr2, ($dr7)
        %insn
    }
}
`

// InstallTracking activates tracking mode: the directory lives at dirBase
// in m's data space; misses are counted in a dedicated register. Every
// load/store marks its line present (first touch counts once).
func InstallTracking(c *core.Controller, m *emu.Machine, dirBase uint64) ([]*core.Production, error) {
	prods, err := c.InstallFile(trackProductions, nil)
	if err != nil {
		return nil, err
	}
	setup(m, dirBase)
	return prods, nil
}

// InstallTrap activates trap mode: accesses to non-present lines escape to
// the coherence handler (the kernel trap vector).
func InstallTrap(c *core.Controller, m *emu.Machine, dirBase uint64) ([]*core.Production, error) {
	prods, err := c.InstallFile(trapProductions, nil)
	if err != nil {
		return nil, err
	}
	setup(m, dirBase)
	return prods, nil
}

func setup(m *emu.Machine, dirBase uint64) {
	m.SetReg(dirBaseReg, dirBase)
	m.SetReg(oneReg, 1)
	m.SetReg(missReg, 0)
	m.SetReg(handlerReg, 0)
}

// MarkPresent sets the presence bit for every line covering [addr,
// addr+size) — the host-side stand-in for the home node granting access.
func MarkPresent(m *emu.Machine, dirBase, addr uint64, size int) {
	for a := addr; a < addr+uint64(size); a += 1 << LineShift {
		line := a >> LineShift & (DirLines - 1)
		wordAddr := dirBase + line/64*8
		w := m.Mem().Read64(wordAddr)
		m.Mem().Write64(wordAddr, w|1<<(line%64))
	}
}

// Present reports whether addr's line is marked present.
func Present(m *emu.Machine, dirBase, addr uint64) bool {
	line := addr >> LineShift & (DirLines - 1)
	w := m.Mem().Read64(dirBase + line/64*8)
	return w>>(line%64)&1 == 1
}

// Lines returns the number of distinct lines marked present in the
// directory (tracking mode's touched-footprint measure).
func Lines(m *emu.Machine, dirBase uint64) int {
	n := 0
	for i := uint64(0); i < DirBytes/8; i++ {
		w := m.Mem().Read64(dirBase + i*8)
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

var _ = program.DataBase // referenced by tests/examples for directory placement
