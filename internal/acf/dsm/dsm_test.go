package dsm

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/program"
)

func newController() *core.Controller {
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	return core.NewController(cfg)
}

// walker touches `lines` distinct 64-byte lines, `passes` times each.
const walker = `
.entry main
.data
dir:  .space 8192
heap: .space 16384
.text
main:
    li r9, 3          ; passes
outer:
    la r1, heap
    li r2, 20         ; lines
loop:
    ldq r3, 0(r1)
    addqi r3, 1, r3
    stq r3, 0(r1)
    addqi r1, 64, r1
    subqi r2, 1, r2
    bgt r2, loop
    subqi r9, 1, r9
    bgt r9, outer
    halt
`

func dirBase() uint64 { return program.DataBase }

func heapBase() uint64 { return program.DataBase + 8192 }

func TestTrackingCountsFirstTouches(t *testing.T) {
	p := asm.MustAssemble("w", walker)
	m := emu.New(p)
	c := newController()
	if _, err := InstallTracking(c, m, dirBase()); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 20 heap lines touched (load+store on the same line counts once), but
	// the program also loads/stores... only heap accesses here. 3 passes
	// re-touch the same lines: still 20 first-touch misses.
	if got := MissCount(m); got != 20 {
		t.Errorf("first-touch misses = %d, want 20", got)
	}
	if got := Lines(m, dirBase()); got != 20 {
		t.Errorf("present lines = %d, want 20", got)
	}
	if !Present(m, dirBase(), heapBase()) {
		t.Error("first heap line should be present")
	}
	if Present(m, dirBase(), heapBase()+20*64) {
		t.Error("untouched line should be absent")
	}
}

func TestTrackingPreservesComputation(t *testing.T) {
	p := asm.MustAssemble("w", walker)
	m0 := emu.New(p)
	if err := m0.Run(); err != nil {
		t.Fatal(err)
	}
	m := emu.New(asm.MustAssemble("w", walker))
	c := newController()
	if _, err := InstallTracking(c, m, dirBase()); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a := heapBase() + uint64(i*64)
		if m.Mem().Read64(a) != m0.Mem().Read64(a) {
			t.Fatalf("heap line %d diverged under tracking", i)
		}
	}
}

func TestTrapModeCatchesAbsent(t *testing.T) {
	p := asm.MustAssemble("w", walker)
	m := emu.New(p)
	c := newController()
	if _, err := InstallTrap(c, m, dirBase()); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	err := m.Run()
	if !errors.Is(err, emu.ErrACFViolation) {
		t.Fatalf("access to absent line should trap, got %v", err)
	}
	if m.Stats.Loads != 0 && m.Stats.Stores != 0 {
		// The very first heap load must have trapped before executing.
		t.Errorf("accesses executed before trap: loads=%d stores=%d", m.Stats.Loads, m.Stats.Stores)
	}
}

func TestTrapModeRunsWhenPresent(t *testing.T) {
	p := asm.MustAssemble("w", walker)
	m := emu.New(p)
	c := newController()
	if _, err := InstallTrap(c, m, dirBase()); err != nil {
		t.Fatal(err)
	}
	// The "home node" grants the whole heap up front.
	MarkPresent(m, dirBase(), heapBase(), 20*64)
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Stores == 0 {
		t.Error("no stores executed")
	}
}

func TestInterruptGrantResume(t *testing.T) {
	// The coherence-protocol shape the paper's precise-state model enables:
	// an interrupt lands in the middle of a DSM check sequence, the
	// "home node" grants the lines while the process is suspended, and
	// execution resumes at the saved PC:DISEPC — the re-expanded sequence
	// re-reads the directory and the access now proceeds.
	p := asm.MustAssemble("w", walker)
	m := emu.New(p)
	c := newController()
	if _, err := InstallTrap(c, m, dirBase()); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())

	// Run until we are a few instructions into the first check sequence
	// (before the directory word is read at DISEPC 6).
	for m.DISEPC() < 3 {
		if _, ok := m.Step(); !ok {
			t.Fatalf("machine stopped early: %v", m.Err())
		}
	}
	st := m.Interrupt()
	if st.DISEPC < 3 {
		t.Fatalf("interrupt state = %+v", st)
	}
	// Handler: grant the whole heap.
	MarkPresent(m, dirBase(), heapBase(), 20*64)
	if err := m.Resume(st); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("post-grant run should complete: %v", err)
	}
	if m.Stats.Stores == 0 {
		t.Error("no stores executed after the grant")
	}
}

func TestDirectoryHelpers(t *testing.T) {
	m := emu.New(asm.MustAssemble("d", ".entry main\nmain:\n halt\n"))
	if Present(m, dirBase(), heapBase()) {
		t.Error("fresh directory should be empty")
	}
	MarkPresent(m, dirBase(), heapBase(), 200)
	if got := Lines(m, dirBase()); got != 4 { // 200 bytes = 4 lines
		t.Errorf("lines = %d, want 4", got)
	}
	if !Present(m, dirBase(), heapBase()+128) {
		t.Error("marked line should be present")
	}
}

func TestCheckCostIsConstant(t *testing.T) {
	// The tracking check is branch-free: every load/store expands to the
	// same 15-instruction sequence regardless of hit/miss.
	p := asm.MustAssemble("w", walker)
	m := emu.New(p)
	c := newController()
	if _, err := InstallTracking(c, m, dirBase()); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 20 lines x 3 passes x (1 load + 1 store) = 120 accesses, 14 inserted
	// instructions each.
	if got := m.Stats.ReplInsts; got != 120*14 {
		t.Errorf("replacement insts = %d, want %d", got, 120*14)
	}
}
