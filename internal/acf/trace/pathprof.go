package trace

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
)

// Path profiling (paper §3.1, and Corliss et al.'s DISE path profiler):
// DISE productions record, with no binary modification, enough information
// to reconstruct acyclic path frequencies offline.
//
// The formulation is outcome tracing: a production matching every
// conditional branch appends two words to a buffer held in a dedicated
// register — the trigger's PC (via the %pc directive, the non-instruction
// trigger attribute the paper §2.1 singles out as useful for profiling) and
// the *value of the trigger's condition register* (via a %rs-parameterized
// store). The branch's opcode plus the recorded value yield the exact
// taken/not-taken outcome; the offline pass folds outcome sequences into
// acyclic paths delimited, as in Ball-Larus profiling, at taken back edges.

// PathProfileProductions records (PC, condition value) per conditional
// branch.
const PathProfileProductions = `
prod pathprof {
    match class == condbr
    replace {
        lda $dr4, %pc(zero)
        stq $dr4, 0($dr5)
        stq %rs, 8($dr5)
        lda $dr5, 16($dr5)
        %insn
    }
}
`

// InstallPathProfiling activates the path profiler writing to bufAddr.
func InstallPathProfiling(c *core.Controller, m *emu.Machine, bufAddr uint64) ([]*core.Production, error) {
	prods, err := c.InstallFile(PathProfileProductions, nil)
	if err != nil {
		return nil, err
	}
	m.SetReg(BufPtrReg, bufAddr)
	return prods, nil
}

// Path is one acyclic path: the unit index of its first conditional branch
// and the sequence of outcomes along it.
type Path struct {
	Entry    int
	Outcomes string // 'T'/'N' per conditional branch on the path
}

func (p Path) String() string { return fmt.Sprintf("unit %d [%s]", p.Entry, p.Outcomes) }

// PathCount is a path with its execution frequency.
type PathCount struct {
	Path  Path
	Count int
}

// outcome evaluates a conditional branch's direction from its recorded
// condition-register value.
func outcome(op isa.Opcode, v uint64) (bool, error) {
	s := int64(v)
	switch op {
	case isa.OpBEQ:
		return s == 0, nil
	case isa.OpBNE:
		return s != 0, nil
	case isa.OpBLT:
		return s < 0, nil
	case isa.OpBLE:
		return s <= 0, nil
	case isa.OpBGT:
		return s > 0, nil
	case isa.OpBGE:
		return s >= 0, nil
	}
	return false, fmt.Errorf("trace: %v is not a conditional branch", op)
}

// ReconstructPaths converts the recorded (PC, condition) trace into acyclic
// path counts: outcomes accumulate along a path, and a taken backward
// branch (a loop back edge) terminates it. The profiler tracks conditional
// branches only, so paths spanning calls/returns are concatenated — the
// usual intra-procedural approximation of lossy profiling (the paper notes
// profile consumers rarely need complete information).
func ReconstructPaths(m *emu.Machine, start uint64) ([]PathCount, error) {
	prog := m.Program()
	end := m.Reg(BufPtrReg)
	counts := map[Path]int{}

	cur := Path{Entry: -1}
	flush := func() {
		if cur.Entry >= 0 {
			counts[cur]++
		}
		cur = Path{Entry: -1}
	}
	for a := start; a+16 <= end; a += 16 {
		pc := m.Mem().Read64(a)
		val := m.Mem().Read64(a + 8)
		unit := prog.UnitAt(pc)
		if unit < 0 {
			return nil, fmt.Errorf("trace: branch PC %#x outside text", pc)
		}
		in := prog.Text[unit]
		taken, err := outcome(in.Op, val)
		if err != nil {
			return nil, err
		}
		if cur.Entry < 0 {
			cur.Entry = unit
		}
		if taken {
			cur.Outcomes += "T"
			if prog.BranchTargetUnit(unit) <= unit {
				flush() // taken back edge: the acyclic path ends
			}
		} else {
			cur.Outcomes += "N"
		}
	}
	flush()

	out := make([]PathCount, 0, len(counts))
	for p, c := range counts {
		out = append(out, PathCount{Path: p, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Path.Entry != out[j].Path.Entry {
			return out[i].Path.Entry < out[j].Path.Entry
		}
		return out[i].Path.Outcomes < out[j].Path.Outcomes
	})
	return out, nil
}

// HotPath returns the most frequent path, for quick assertions.
func HotPath(counts []PathCount) (PathCount, bool) {
	if len(counts) == 0 {
		return PathCount{}, false
	}
	return counts[0], true
}
