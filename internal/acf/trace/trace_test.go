package trace

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/program"
)

func controller(t *testing.T) *core.Controller {
	t.Helper()
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	return core.NewController(cfg)
}

const prog = `
.entry main
.data
a: .space 64
trc: .space 1024
.text
main:
    la r1, a
    li r2, 4
loop:
    stq r2, 0(r1)
    addqi r1, 16, r1
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

func TestStoreAddressTracing(t *testing.T) {
	p := asm.MustAssemble("t", prog)
	m := emu.New(p)
	c := controller(t)
	buf := program.DataBase + 64
	if _, err := InstallStoreTracing(c, m, buf); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	addrs := ReadTrace(m, buf)
	if len(addrs) != 4 {
		t.Fatalf("traced %d stores, want 4: %v", len(addrs), addrs)
	}
	for i, a := range addrs {
		want := program.DataBase + uint64(i*16)
		if a != want {
			t.Errorf("trace[%d] = %#x, want %#x", i, a, want)
		}
	}
}

func TestTracingDoesNotDisturbStores(t *testing.T) {
	p := asm.MustAssemble("t", prog)
	m := emu.New(p)
	c := controller(t)
	if _, err := InstallStoreTracing(c, m, program.DataBase+64); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := uint64(4 - i)
		if got := m.Mem().Read64(program.DataBase + uint64(i*16)); got != want {
			t.Errorf("a[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestBranchProfiling(t *testing.T) {
	p := asm.MustAssemble("t", prog)
	m := emu.New(p)
	c := controller(t)
	if _, err := InstallBranchProfiling(c); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := BranchCount(m); got != 4 {
		t.Errorf("branch count = %d, want 4", got)
	}
}

func TestReadTraceEmpty(t *testing.T) {
	p := asm.MustAssemble("t", ".entry main\nmain:\n halt\n")
	m := emu.New(p)
	if got := ReadTrace(m, program.DataBase); got != nil {
		t.Errorf("empty trace = %v", got)
	}
}
