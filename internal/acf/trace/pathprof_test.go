package trace

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/program"
)

// A loop with one internal conditional: 16 iterations, the internal branch
// taken on odd counters. Two distinct acyclic paths through the loop body.
const pathProg = `
.entry main
.data
scratch: .space 64
.text
main:
    li r2, 16
loop:
    andi r2, 1, r3
    beq r3, even
    addqi r4, 1, r4    ; odd path work
even:
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

func runPathProfile(t *testing.T, src string) []PathCount {
	t.Helper()
	p := asm.MustAssemble("pp", src)
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	c := core.NewController(cfg)
	m := emu.New(p)
	buf := program.DataBase + 64
	if _, err := InstallPathProfiling(c, m, buf); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	counts, err := ReconstructPaths(m, buf)
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func TestPathProfileTwoPaths(t *testing.T) {
	counts := runPathProfile(t, pathProg)
	// 16 iterations alternate between the odd path (beq not taken) and the
	// even path (beq taken). Expect both paths with substantial counts.
	total := 0
	for _, pc := range counts {
		total += pc.Count
	}
	if len(counts) < 2 {
		t.Fatalf("paths found: %v", counts)
	}
	hot, _ := HotPath(counts)
	if hot.Count < 7 || hot.Count > 9 {
		t.Errorf("hot path count = %d, want ~8 of 16 iterations: %v", hot.Count, counts)
	}
	// The two dominant paths must differ in the internal branch outcome.
	if len(counts) >= 2 && counts[0].Path.Outcomes == counts[1].Path.Outcomes {
		t.Errorf("paths should differ in outcomes: %v", counts[:2])
	}
}

func TestPathProfileBiased(t *testing.T) {
	// A branch taken 1 time in 16: the hot path dominates.
	counts := runPathProfile(t, `
.entry main
main:
    li r2, 64
loop:
    andi r2, 15, r3
    beq r3, rare
    addqi r4, 1, r4
rare:
    subqi r2, 1, r2
    bgt r2, loop
    halt
`)
	hot, ok := HotPath(counts)
	if !ok {
		t.Fatal("no paths")
	}
	if hot.Count < 50 {
		t.Errorf("hot path count = %d, want ~60: %v", hot.Count, counts)
	}
}

func TestPathProfileDoesNotDisturb(t *testing.T) {
	// Profiled and unprofiled runs retire the same application stream.
	p := asm.MustAssemble("pp", pathProg)
	m0 := emu.New(p)
	if err := m0.Run(); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	c := core.NewController(cfg)
	m := emu.New(p)
	if _, err := InstallPathProfiling(c, m, program.DataBase+64); err != nil {
		t.Fatal(err)
	}
	m.SetExpander(c.Engine())
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.AppInsts != m0.Stats.AppInsts {
		t.Errorf("profiling disturbed the app stream: %d vs %d", m.Stats.AppInsts, m0.Stats.AppInsts)
	}
}

func TestReconstructEmptyTrace(t *testing.T) {
	p := asm.MustAssemble("e", ".entry main\nmain:\n halt\n")
	m := emu.New(p)
	counts, err := ReconstructPaths(m, program.DataBase)
	if err != nil || len(counts) != 0 {
		t.Errorf("empty trace: %v, %v", counts, err)
	}
}
