// Package trace implements the observation ACFs used in the paper's
// composition discussion (§3.3, Figure 5) and in the profiling sketch of
// §3.1: store-address tracing, which appends every store's effective
// address to an in-memory buffer through dedicated registers, and a simple
// branch-bias profiler that counts taken conditional branches — a "bit
// tracing" profile in the style of the paper's path profiler.
package trace

import (
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

// Dedicated register roles (kept disjoint from mfi's so the two ACFs
// compose without renaming; paper §3.3 notes renaming is sometimes needed).
const (
	TmpReg    = isa.RegDR0 + 4 // $dr4: computed store address
	BufPtrReg = isa.RegDR0 + 5 // $dr5: trace buffer cursor
	CntReg    = isa.RegDR0 + 6 // $dr6: taken-branch counter
)

// StoreAddressProductions is the store-address-tracing production (Figure 5
// R3): compute the effective address into $dr4, append it to the buffer at
// $dr5, bump the cursor, then perform the original store.
const StoreAddressProductions = `
prod sat_store {
    match class == store
    replace {
        lda  $dr4, %imm(%rs)
        stq  $dr4, 0($dr5)
        lda  $dr5, 8($dr5)
        %insn
    }
}
`

// BranchProfileProductions counts executed conditional branches in $dr6.
// (A full path profiler would also fold the outcome history into a tag;
// the counter shows the mechanism with zero application disturbance.)
const BranchProfileProductions = `
prod bprof {
    match class == condbr
    replace {
        lda $dr6, 1($dr6)
        %insn
    }
}
`

// InstallStoreTracing activates store-address tracing and points the trace
// buffer at bufAddr in m.
func InstallStoreTracing(c *core.Controller, m *emu.Machine, bufAddr uint64) ([]*core.Production, error) {
	prods, err := c.InstallFile(StoreAddressProductions, nil)
	if err != nil {
		return nil, err
	}
	m.SetReg(BufPtrReg, bufAddr)
	return prods, nil
}

// InstallBranchProfiling activates the branch counter.
func InstallBranchProfiling(c *core.Controller) ([]*core.Production, error) {
	return c.InstallFile(BranchProfileProductions, nil)
}

// ReadTrace extracts the recorded store addresses from m's memory: the
// buffer began at start and has advanced to the current $dr5.
func ReadTrace(m *emu.Machine, start uint64) []uint64 {
	end := m.Reg(BufPtrReg)
	if end <= start || program.Segment(start) != program.SegData {
		return nil
	}
	n := int((end - start) / 8)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = m.Mem().Read64(start + uint64(i)*8)
	}
	return out
}

// BranchCount reads the profiler counter.
func BranchCount(m *emu.Machine) uint64 { return m.Reg(CntReg) }
