// Package mfi implements memory fault isolation (paper §3.1), the paper's
// flagship transparent ACF, in all evaluated variants:
//
//   - DISE3: the three-instruction segment-matching check + trigger enabled
//     by DISE's control-flow model (no copy instruction is needed because
//     jumps cannot enter the middle of a replacement sequence).
//   - DISE4: the four-instruction sequence equivalent to what binary
//     rewriting must insert (including the copy), retiring exactly as many
//     instructions as the rewriting baseline.
//   - Sandbox: the address-masking variant (forces the segment bits rather
//     than checking them), which rewrites the trigger's base register.
//   - Rewrite: the static binary-rewriting baseline, which scavenges
//     application registers and embeds the checks into the text image.
//
// Loads, stores, and indirect jumps (returns included) are monitored.
package mfi

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/rewrite"
)

// Variant selects an MFI formulation.
type Variant int

// MFI variants.
const (
	// DISE3 is segment matching exploiting DISE replacement-sequence
	// atomicity: srl/xor/branch + trigger.
	DISE3 Variant = iota
	// DISE4 adds the copy instruction that software implementations need,
	// making its retired instruction count identical to rewriting.
	DISE4
	// Sandbox masks the address into the legal segment instead of checking.
	Sandbox
)

func (v Variant) String() string {
	switch v {
	case DISE4:
		return "dise4"
	case Sandbox:
		return "sandbox"
	default:
		return "dise3"
	}
}

// Dedicated register roles. $dr2 holds the legal data segment identifier,
// $dr3 the legal code segment identifier, and $dr7 the violation handler
// address (the paper Figure 1 "error" target; address 0 is the kernel trap
// vector). $dr0/$dr1 are scratch.
const (
	ScratchReg  = isa.RegDR0
	Scratch2Reg = isa.RegDR0 + 1
	DataSegReg  = isa.RegDR0 + 2
	TextSegReg  = isa.RegDR0 + 3
	HandlerReg  = isa.RegDR0 + 7
)

// Productions returns the production-language source for an MFI variant.
// Data accesses are checked against $dr2, indirect jump targets against
// $dr3 (checking jumps prevents escape from the code segment — paper §3.1).
func Productions(v Variant) string {
	switch v {
	case DISE3:
		return `
# memory fault isolation, segment matching (DISE3: paper Figure 1).
# The error branch is NOT taken on the good path: the check falls through
# to the trigger and costs nothing (non-trigger replacement branches are
# effectively predicted not-taken, paper 2.2). On a violation the jne
# squashes the rest of the sequence and fetch resumes at the handler in
# $dr7 (address 0 = kernel trap vector).
prod mfi_store {
    match class == store
    replace {
        srli %rs, 26, $dr1
        xor  $dr1, $dr2, $dr1
        jne  $dr1, ($dr7)
        %insn
    }
}
prod mfi_load {
    match class == load
    replace {
        srli %rs, 26, $dr1
        xor  $dr1, $dr2, $dr1
        jne  $dr1, ($dr7)
        %insn
    }
}
prod mfi_jump {
    match class == jump
    replace {
        srli %rs, 26, $dr1
        xor  $dr1, $dr3, $dr1
        jne  $dr1, ($dr7)
        %insn
    }
}
`
	case DISE4:
		return `
# memory fault isolation with the software-equivalent copy (DISE4)
prod mfi_store {
    match class == store
    replace {
        bis  %rs, %rs, $dr0
        srli $dr0, 26, $dr1
        xor  $dr1, $dr2, $dr1
        jne  $dr1, ($dr7)
        %op %rt, %imm($dr0)
    }
}
prod mfi_load {
    match class == load
    replace {
        bis  %rs, %rs, $dr0
        srli $dr0, 26, $dr1
        xor  $dr1, $dr2, $dr1
        jne  $dr1, ($dr7)
        %op %rd, %imm($dr0)
    }
}
prod mfi_jump {
    match class == jump
    replace {
        bis  %rs, %rs, $dr0
        srli $dr0, 26, $dr1
        xor  $dr1, $dr3, $dr1
        jne  $dr1, ($dr7)
        %op %rd, ($dr0)
    }
}
`
	case Sandbox:
		return `
# memory fault isolation, sandboxing: force the segment bits (2 + trigger)
prod mfi_store {
    match class == store
    replace {
        andi %rs, 67108863, $dr0
        bis  $dr0, $dr4, $dr0
        %op  %rt, %imm($dr0)
    }
}
prod mfi_load {
    match class == load
    replace {
        andi %rs, 67108863, $dr0
        bis  $dr0, $dr4, $dr0
        %op  %rd, %imm($dr0)
    }
}
`
	}
	return ""
}

// Install activates MFI productions on a controller.
func Install(c *core.Controller, v Variant) ([]*core.Production, error) {
	return c.InstallFile(Productions(v), nil)
}

// SetupRegs returns the dedicated-register presets Setup applies, keyed by
// register spelling — the wire form (SubmitRequest.Regs) of the ACF setup
// step. Setup iterates this map, so the local prep and a remote job built
// from it preset identical machine state by construction.
func SetupRegs() map[string]uint64 {
	return map[string]uint64{
		"$dr2": program.SegData,  // DataSegReg: legal data segment identifier
		"$dr3": program.SegText,  // TextSegReg: legal code segment identifier
		"$dr7": 0,                // HandlerReg: violation handler (kernel trap vector)
		"$dr4": program.DataBase, // precomposed data segment base (sandboxing)
	}
}

// Setup initializes the DISE dedicated registers MFI uses on machine m: the
// legal data and code segment identifiers, the violation handler (the
// kernel trap vector at 0), and, for sandboxing, the precomposed data
// segment base in $dr4.
func Setup(m *emu.Machine) {
	for name, val := range SetupRegs() {
		m.SetReg(isa.RegByName(name, true), val)
	}
}

// The sandbox mask must match the production text above.
func init() {
	if 67108863 != (uint64(1)<<program.SegShift)-1 {
		panic("mfi: sandbox mask out of sync with program.SegShift")
	}
}

// Scavenged registers used by the rewriting baseline. A static rewriter
// cannot allocate fresh registers, so it steals high application registers
// (r20..r23), exactly the cost the paper charges to software fault
// isolation ("as many as five dedicated registers that must be reserved by
// the compiler or scavenged by a rewriting tool").
const (
	scavAddr    = isa.Reg(20) // copied effective base address
	scavTmp     = isa.Reg(21) // scratch for the segment extraction
	scavDataSeg = isa.Reg(22) // legal data segment identifier
	scavTextSeg = isa.Reg(23) // legal code segment identifier
	scavHandler = isa.Reg(24) // violation handler address (0 = kernel trap)
)

// ScavengedRegs lists the registers the rewriting baseline reserves;
// workload generators must keep application code out of them for the
// rewriting comparison to be sound.
func ScavengedRegs() []isa.Reg {
	return []isa.Reg{scavAddr, scavTmp, scavDataSeg, scavTextSeg, scavHandler}
}

// stationSpacing bounds the distance (in rewritten units) between a check's
// error branch and its trap station, keeping every such PC-relative branch
// short. Real SFI rewriters do the same to keep error exits in short branch
// range.
const stationSpacing = 400

// Rewrite produces the binary-rewriting implementation of segment-matching
// MFI: each load, store and indirect jump is preceded by a check through
// scavenged registers — copy the address (so jumps into the middle cannot
// bypass the check with a different address), extract and compare the
// segment, branch to a nearby inline trap station on mismatch — and the
// access itself is redirected through the copied register. Trap stations
// ("sys 3" behind an unconditional skip) are planted with the first check
// and re-planted whenever the previous one falls out of short branch range;
// their PC-relative displacement differs at every check site, which is
// exactly what makes rewritten checks hard for unparameterized compressors
// and easy for DISE's displacement parameters (paper §4.3). A prologue
// initializes the segment identifiers. On the good path this retires the
// same instructions as the DISE4 formulation (plus one skip branch per
// station passed).
func Rewrite(p *program.Program) (*program.Program, error) {
	edit := &rewrite.Edit{
		Prologue: []isa.Inst{
			{Op: isa.OpLDA, RD: scavDataSeg, RS: isa.RegZero, RT: isa.NoReg, Imm: program.SegData},
			{Op: isa.OpLDA, RD: scavTextSeg, RS: isa.RegZero, RT: isa.NoReg, Imm: program.SegText},
		},
	}
	sinceStation := stationSpacing + 1 // force a station at the first check
	stations := 0
	station := ""
	for i, in := range p.Text {
		var segReg isa.Reg
		var replace isa.Inst
		switch in.Op.Class() {
		case isa.ClassLoad:
			segReg = scavDataSeg
			replace = isa.Inst{Op: in.Op, RD: in.RD, RS: scavAddr, RT: isa.NoReg, Imm: in.Imm}
		case isa.ClassStore:
			segReg = scavDataSeg
			replace = isa.Inst{Op: in.Op, RT: in.RT, RS: scavAddr, RD: isa.NoReg, Imm: in.Imm}
		case isa.ClassJump:
			segReg = scavTextSeg
			replace = isa.Inst{Op: in.Op, RD: in.RD, RS: scavAddr, RT: isa.NoReg, Imm: in.Imm}
		default:
			sinceStation++
			continue
		}
		if in.RS.IsDedicated() {
			return nil, fmt.Errorf("mfi: rewrite: unit %d uses dedicated registers", i)
		}
		ins := rewrite.Insertion{At: i, Replace: &replace}
		if sinceStation > stationSpacing {
			station = fmt.Sprintf("__mfi_trap_%d", stations)
			stations++
			ins.Insts = []isa.Inst{
				// Fall-through execution skips the trap.
				{Op: isa.OpBR, RD: isa.RegZero, RS: isa.NoReg, RT: isa.NoReg, Imm: 1},
				{Op: isa.OpSYS, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg, Imm: isa.SysError},
			}
			ins.Syms = map[string]int{station: 1}
			sinceStation = 0
		}
		base := len(ins.Insts)
		ins.Insts = append(ins.Insts,
			// The copy ensures a jump into the middle of the check cannot
			// reach the access with an unchecked address (paper 3.1).
			isa.Inst{Op: isa.OpBIS, RS: in.RS, RT: in.RS, RD: scavAddr},
			isa.Inst{Op: isa.OpSRLI, RS: scavAddr, RD: scavTmp, RT: isa.NoReg, Imm: program.SegShift},
			isa.Inst{Op: isa.OpXOR, RS: scavTmp, RT: segReg, RD: scavTmp},
			// Not taken on the good path; jumps to the trap station
			// otherwise (PC-relative, resolved after relocation).
			isa.Inst{Op: isa.OpBNE, RS: scavTmp, RT: isa.NoReg, RD: isa.NoReg, Imm: 0},
		)
		ins.Refs = []rewrite.SymRef{{Index: base + 3, Symbol: station}}
		edit.Insertions = append(edit.Insertions, ins)
		sinceStation += len(ins.Insts) + 1
	}
	q, err := rewrite.Apply(p, edit)
	if err != nil {
		return nil, err
	}
	q.Name = p.Name + "+mfi-rw"
	return q, nil
}
