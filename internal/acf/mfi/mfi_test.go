package mfi

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

const workload = `
.entry main
.data
arr: .space 4096
.text
main:
    li r2, 200
    la r1, arr
outer:
    bsr ra, body
    subqi r2, 1, r2
    bgt r2, outer
    halt
body:
    li r3, 16
    mov r1, r4
inner:
    ldq r5, 0(r4)
    addqi r5, 1, r5
    stq r5, 0(r4)
    addqi r4, 8, r4
    subqi r3, 1, r3
    bgt r3, inner
    ret
`

const wild = `
.entry main
main:
    li r1, 1
    li r2, 99
    slli r2, 30, r2   ; far outside any legal segment
    stq r1, 0(r2)
    halt
`

func newDISE(t *testing.T, v Variant) *core.Controller {
	t.Helper()
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	c := core.NewController(cfg)
	if _, err := Install(c, v); err != nil {
		t.Fatal(err)
	}
	return c
}

func runDISE(t *testing.T, src string, v Variant) *cpu.Result {
	t.Helper()
	m := emu.New(asm.MustAssemble("w", src))
	c := newDISE(t, v)
	m.SetExpander(c.Engine())
	Setup(m)
	return cpu.Run(m, cpu.DefaultConfig())
}

func TestVariantsPreserveSemantics(t *testing.T) {
	base := cpu.Run(emu.New(asm.MustAssemble("w", workload)), cpu.DefaultConfig())
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	for _, v := range []Variant{DISE3, DISE4, Sandbox} {
		r := runDISE(t, workload, v)
		if r.Err != nil {
			t.Fatalf("%v: %v", v, r.Err)
		}
		if r.AppInsts != base.AppInsts {
			t.Errorf("%v: app insts %d != base %d", v, r.AppInsts, base.AppInsts)
		}
	}
}

func TestDISE3CatchesWildStore(t *testing.T) {
	r := runDISE(t, wild, DISE3)
	if !errors.Is(r.Err, emu.ErrACFViolation) {
		t.Errorf("err = %v, want violation", r.Err)
	}
}

func TestDISE4CatchesWildStore(t *testing.T) {
	r := runDISE(t, wild, DISE4)
	if !errors.Is(r.Err, emu.ErrACFViolation) {
		t.Errorf("err = %v, want violation", r.Err)
	}
}

func TestSandboxMasksWildStore(t *testing.T) {
	// Sandboxing does not detect the wild store; it redirects it into the
	// legal segment.
	r := runDISE(t, wild, Sandbox)
	if r.Err != nil {
		t.Fatalf("sandbox should not fault: %v", r.Err)
	}
}

func TestSandboxRedirectsIntoSegment(t *testing.T) {
	p := asm.MustAssemble("sb", wild)
	m := emu.New(p)
	c := newDISE(t, Sandbox)
	m.SetExpander(c.Engine())
	Setup(m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The store of 1 went to (wildAddr & mask) | DataBase.
	wildAddr := (uint64(99) << 30)
	masked := wildAddr&((1<<program.SegShift)-1) | program.DataBase
	if got := m.Mem().Read64(masked); got != 1 {
		t.Errorf("sandboxed store landed wrong: mem[%#x] = %d", masked, got)
	}
}

func TestDISE3ExecutesFewerThanDISE4(t *testing.T) {
	r3 := runDISE(t, workload, DISE3)
	r4 := runDISE(t, workload, DISE4)
	if !(r3.Insts < r4.Insts) {
		t.Errorf("DISE3 (%d insts) should execute fewer than DISE4 (%d)", r3.Insts, r4.Insts)
	}
}

func TestRewritePreservesSemantics(t *testing.T) {
	p := asm.MustAssemble("w", workload)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	base := cpu.Run(emu.New(p), cpu.DefaultConfig())
	r := cpu.Run(emu.New(q), cpu.DefaultConfig())
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Output != base.Output {
		t.Errorf("rewritten output %q != base %q", r.Output, base.Output)
	}
}

func TestRewriteCatchesWildStore(t *testing.T) {
	q, err := Rewrite(asm.MustAssemble("w", wild))
	if err != nil {
		t.Fatal(err)
	}
	r := cpu.Run(emu.New(q), cpu.DefaultConfig())
	if !errors.Is(r.Err, emu.ErrACFViolation) {
		t.Errorf("err = %v, want violation", r.Err)
	}
}

func TestRewriteBloatsText(t *testing.T) {
	p := asm.MustAssemble("w", workload)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	// 2 memory ops + 1 ret checked, 4 inserted insts each, plus one trap
	// station (2 insts) and the 2-inst prologue.
	want := p.NumUnits() + 3*4 + 2 + 2
	if q.NumUnits() != want {
		t.Errorf("rewritten units = %d, want %d", q.NumUnits(), want)
	}
}

func TestRewriteMatchesDISE4RetiredCount(t *testing.T) {
	// The paper: DISE4 and rewriting retire an identical number of
	// instructions (modulo the rewriter's fixed prologue).
	p := asm.MustAssemble("w", workload)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	rw := cpu.Run(emu.New(q), cpu.DefaultConfig())
	d4 := runDISE(t, workload, DISE4)
	if d4.Err != nil || rw.Err != nil {
		t.Fatal(d4.Err, rw.Err)
	}
	// Equal modulo the prologue and the skip branch retired at each trap
	// station crossing (well under 10% of the stream).
	if rw.Insts < d4.Insts || float64(rw.Insts) > float64(d4.Insts)*1.10 {
		t.Errorf("rewrite retires %d, DISE4 %d; want equal modulo station skips", rw.Insts, d4.Insts)
	}
}

func TestRewriteDoesNotUseDISE(t *testing.T) {
	// The rewritten binary runs on a stock machine: no expander needed.
	q, err := Rewrite(asm.MustAssemble("w", workload))
	if err != nil {
		t.Fatal(err)
	}
	if err := emu.New(q).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDISEJumpChecking(t *testing.T) {
	// Returns are indirect jumps and must be checked against the code
	// segment; a corrupted return address is caught before the jump.
	src := `
.entry main
main:
    bsr ra, f
    halt
f:
    li r9, 12345      ; garbage (segment 0)
    mov r9, ra
    ret
`
	r := runDISE(t, src, DISE3)
	if !errors.Is(r.Err, emu.ErrACFViolation) {
		t.Errorf("err = %v, want violation on corrupted return", r.Err)
	}
}

func TestScavengedRegs(t *testing.T) {
	regs := ScavengedRegs()
	if len(regs) != 5 {
		t.Fatalf("scavenged count = %d", len(regs))
	}
	for _, r := range regs {
		if !r.IsArch() {
			t.Errorf("scavenged reg %v must be architectural", r)
		}
		if r == isa.RegSP || r == isa.RegZero || r == isa.RegRA {
			t.Errorf("scavenged reg %v collides with ABI register", r)
		}
	}
}

func TestRewriteExpansionRateAbout30Percent(t *testing.T) {
	// The paper: fault isolation expands ~30% of dynamic instructions. Our
	// inner loop is 7 insts with 2 memory ops + the ret: in that ballpark.
	m := emu.New(asm.MustAssemble("w", workload))
	c := newDISE(t, DISE3)
	m.SetExpander(c.Engine())
	Setup(m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	rate := c.Engine().Stats.ExpansionRate()
	if rate < 0.15 || rate > 0.45 {
		t.Errorf("expansion rate = %.2f, want ~0.3", rate)
	}
}

func TestWildStoreIsPreciseOutOfSegmentTrap(t *testing.T) {
	// End-to-end precision, timing path: the DISE3 check refines the ACF
	// violation into TrapOutOfSegment carrying the wild effective address.
	r := runDISE(t, wild, DISE3)
	var trap *emu.Trap
	if !errors.As(r.Err, &trap) {
		t.Fatalf("err = %v (%T), want *emu.Trap", r.Err, r.Err)
	}
	if trap.Kind != emu.TrapOutOfSegment {
		t.Errorf("trap kind = %v, want out-of-segment", trap.Kind)
	}
	if want := uint64(99) << 30; trap.Addr != want {
		t.Errorf("trap addr = %#x, want %#x", trap.Addr, want)
	}
	if !trap.ACF {
		t.Error("MFI catch must be flagged ACF-raised")
	}
}

func TestWildStoreIsPreciseOutOfSegmentTrapEmu(t *testing.T) {
	// Same check on the functional path (no timing model in between).
	m := emu.New(asm.MustAssemble("w", wild))
	c := newDISE(t, DISE3)
	m.SetExpander(c.Engine())
	Setup(m)
	err := m.Run()
	var trap *emu.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %v (%T), want *emu.Trap", err, err)
	}
	if trap.Kind != emu.TrapOutOfSegment || !trap.ACF {
		t.Errorf("trap = %+v, want ACF-raised out-of-segment", trap)
	}
	if !errors.Is(err, emu.ErrACFViolation) {
		t.Error("refined trap must still match ErrACFViolation")
	}
}

func TestWildStoreSilentWithoutMFI(t *testing.T) {
	// Without any ACF the wild store completes "successfully" and lands in
	// an illegal segment: silent corruption, in both machines.
	wildAddr := uint64(99) << 30

	m := emu.New(asm.MustAssemble("w", wild))
	if err := m.Run(); err != nil {
		t.Fatalf("emu: unprotected wild store must not fault: %v", err)
	}
	if got := m.Mem().Read64(wildAddr); got != 1 {
		t.Errorf("emu: wild store did not land: mem[%#x] = %d", wildAddr, got)
	}

	m2 := emu.New(asm.MustAssemble("w", wild))
	r := cpu.Run(m2, cpu.DefaultConfig())
	if r.Err != nil {
		t.Fatalf("cpu: unprotected wild store must not fault: %v", r.Err)
	}
	if got := m2.Mem().Read64(wildAddr); got != 1 {
		t.Errorf("cpu: wild store did not land: mem[%#x] = %d", wildAddr, got)
	}
}

// SetupRegs is the wire form of Setup: every spelling must resolve to the
// role constant it documents, so a remote job built from the map presets
// exactly the state Setup gives a local machine.
func TestSetupRegsMatchesSetup(t *testing.T) {
	regs := SetupRegs()
	want := map[isa.Reg]uint64{
		DataSegReg:     program.SegData,
		TextSegReg:     program.SegText,
		HandlerReg:     0,
		isa.RegDR0 + 4: program.DataBase,
	}
	if len(regs) != len(want) {
		t.Fatalf("SetupRegs has %d entries, want %d: %v", len(regs), len(want), regs)
	}
	for name, val := range regs {
		r := isa.RegByName(name, true)
		if !r.IsDedicated() {
			t.Errorf("SetupRegs key %q is not a dedicated register", name)
			continue
		}
		if wv, ok := want[r]; !ok || wv != val {
			t.Errorf("SetupRegs[%q] = %d (reg %v), want %d", name, val, r, wv)
		}
	}

	m := emu.New(asm.MustAssemble("t", ".entry main\nmain:\n    halt\n"))
	Setup(m)
	for name, val := range regs {
		if got := m.Reg(isa.RegByName(name, true)); got != val {
			t.Errorf("after Setup, %s = %d, want %d", name, got, val)
		}
	}
}
