package compose

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/acf/mfi"
	"repro/internal/acf/monitor"
	"repro/internal/acf/trace"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

func mfiProds(t *testing.T) []*core.Production {
	t.Helper()
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	c := core.NewController(cfg)
	prods, err := mfi.Install(c, mfi.DISE3)
	if err != nil {
		t.Fatal(err)
	}
	return prods
}

func TestInlineMFIIntoLiteralStore(t *testing.T) {
	// A dictionary entry containing a literal store gets the fault
	// isolation check inlined around it (Figure 5, left).
	dictEntry := &core.Replacement{Name: "e", Insts: []core.ReplInst{
		core.FromLiteral(isa.Inst{Op: isa.OpADDQ, RS: 1, RT: 2, RD: 3}),
		core.FromLiteral(isa.Inst{Op: isa.OpSTQ, RT: 3, RS: 4, RD: isa.NoReg, Imm: 8}),
	}}
	out, changed := Inline(dictEntry, nil, mfiProds(t))
	if !changed {
		t.Fatal("inlining should change the sequence")
	}
	// addq + (srl, xor, jne, store) = 5.
	if len(out.Insts) != 5 {
		t.Fatalf("inlined length = %d:\n%s", len(out.Insts), out.String())
	}
	// The inner T.RS was substituted with the store's literal base r4.
	srl := out.Insts[1]
	if srl.Op != isa.OpSRLI || srl.RS.Dir != core.RegLit || srl.RS.Lit != 4 {
		t.Errorf("inlined srl = %+v", srl)
	}
	// The error exit jumps through the handler register, untouched.
	jne := out.Insts[3]
	if jne.Op != isa.OpJNE || jne.RS.Lit != isa.RegDR0+7 {
		t.Errorf("inlined jne = %+v", jne)
	}
	// The inner T.INSN became the outer store template itself.
	if out.Insts[4].Op != isa.OpSTQ {
		t.Errorf("trigger slot = %+v", out.Insts[4])
	}
}

func TestInlineSubstitutesParameters(t *testing.T) {
	// A parameterized dictionary store: stq %p2, %p23($dr0). The MFI check
	// must check $dr0 (the template's base), not a trigger field.
	entry := &core.Replacement{Name: "p", Insts: []core.ReplInst{
		{Op: isa.OpSTQ, RT: core.TReg(core.RegTRT), RS: core.Lit(isa.RegDR0),
			RD: core.Lit(isa.NoReg), Imm: core.ImmField{Dir: core.ImmP23}},
	}}
	out, changed := Inline(entry, nil, mfiProds(t))
	if !changed {
		t.Fatal("no inlining")
	}
	if out.Insts[0].RS.Dir != core.RegLit || out.Insts[0].RS.Lit != isa.RegDR0 {
		t.Errorf("check reads %+v, want $dr0", out.Insts[0].RS)
	}
	// The store template keeps its parameter directives.
	last := out.Insts[len(out.Insts)-1]
	if last.RT.Dir != core.RegTRT || last.Imm.Dir != core.ImmP23 {
		t.Errorf("store template mangled: %+v", last)
	}
}

func TestInlineLeavesNonMatchingAlone(t *testing.T) {
	entry := &core.Replacement{Name: "n", Insts: []core.ReplInst{
		core.FromLiteral(isa.Inst{Op: isa.OpADDQ, RS: 1, RT: 2, RD: 3}),
	}}
	out, changed := Inline(entry, nil, mfiProds(t))
	if changed || out != entry {
		t.Error("sequence without triggers should be shared unchanged")
	}
}

func TestComposedExecutionCatchesViolation(t *testing.T) {
	// End-to-end: an aware "decompression" dictionary whose entry hides a
	// wild store; composing MFI into it at RT-miss time catches it.
	dict := []*core.Replacement{{Name: "wild", Insts: []core.ReplInst{
		// store r1 to (r2) where the app put a wild address in r2
		core.FromLiteral(isa.Inst{Op: isa.OpSTQ, RT: 1, RS: 2, RD: isa.NoReg, Imm: 0}),
	}}}
	cfg := core.DefaultEngineConfig()
	c := core.NewController(cfg)
	mfiP, err := mfi.Install(c, mfi.DISE3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InstallAware("decomp", core.Pattern{
		Op: isa.OpRES0, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}, dict); err != nil {
		t.Fatal(err)
	}
	c.SetComposer(Composer(mfiP))

	p := asm.MustAssemble("w", `
.entry main
main:
    li r1, 7
    li r2, 4096       ; segment 0: illegal
    res0 0, 0, 0, #0  ; expands to the wild store
    halt
`)
	m := emu.New(p)
	m.SetExpander(c.Engine())
	mfi.Setup(m)
	err = m.Run()
	if !errors.Is(err, emu.ErrACFViolation) {
		t.Errorf("err = %v, want violation from composed check", err)
	}
}

func TestComposedExecutionAllowsLegal(t *testing.T) {
	dict := []*core.Replacement{{Name: "st", Insts: []core.ReplInst{
		core.FromLiteral(isa.Inst{Op: isa.OpSTQ, RT: 1, RS: 2, RD: isa.NoReg, Imm: 0}),
		core.FromLiteral(isa.Inst{Op: isa.OpLDQ, RD: 3, RS: 2, RT: isa.NoReg, Imm: 0}),
	}}}
	cfg := core.DefaultEngineConfig()
	c := core.NewController(cfg)
	mfiP, err := mfi.Install(c, mfi.DISE3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InstallAware("decomp", core.Pattern{
		Op: isa.OpRES0, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}, dict); err != nil {
		t.Fatal(err)
	}
	c.SetComposer(Composer(mfiP))

	p := asm.MustAssemble("w", `
.entry main
.data
x: .quad 0
.text
main:
    li r1, 7
    la r2, x
    res0 0, 0, 0, #0
    mov r3, r1
    sys 2
    halt
`)
	m := emu.New(p)
	m.SetExpander(c.Engine())
	mfi.Setup(m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "7" {
		t.Errorf("output = %q, want 7", m.Output())
	}
	// The composing miss was charged at the higher latency.
	if c.Engine().Stats.Composed == 0 {
		t.Error("composition should have been invoked on the RT miss")
	}
}

func TestMergeFigure5(t *testing.T) {
	// Non-nested composition of store-address tracing and fault isolation:
	// trace the application store, fault-isolate it, but do not
	// fault-isolate the tracing stores (Figure 5, right).
	satProds := core.MustParseProductions(trace.StoreAddressProductions)
	mfiProds := core.MustParseProductions(mfi.Productions(mfi.DISE3))
	var mfiStore *core.ParsedProduction
	for _, p := range mfiProds {
		if p.Name == "mfi_store" {
			mfiStore = p
		}
	}
	merged, err := Merge("r4", satProds[0].Repl, mfiStore.Repl)
	if err != nil {
		t.Fatal(err)
	}
	// 3 tracing insts + 3 MFI insts + single trigger = 7 (Figure 5 right).
	if len(merged.Insts) != 7 {
		t.Fatalf("merged length = %d:\n%s", len(merged.Insts), merged.String())
	}
	// The MFI error exit survives the merge.
	var found bool
	for _, in := range merged.Insts {
		if in.Op == isa.OpJNE {
			found = true
		}
	}
	if !found {
		t.Error("merged sequence lost the error exit")
	}
	if s := merged.String(); !strings.Contains(s, "%insn") {
		t.Errorf("merged sequence has no trigger:\n%s", s)
	}
}

func TestMergedExecution(t *testing.T) {
	// Install the merged production and check both effects: the trace
	// buffer records the store address, and wild stores still fault.
	satProds := core.MustParseProductions(trace.StoreAddressProductions)
	mfiProds := core.MustParseProductions(mfi.Productions(mfi.DISE3))
	merged, err := Merge("sat+mfi", satProds[0].Repl, mfiProds[0].Repl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	c := core.NewController(cfg)
	if _, err := c.InstallTransparent("sat+mfi", core.Pattern{
		Class: isa.ClassStore, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}, merged); err != nil {
		t.Fatal(err)
	}
	p := asm.MustAssemble("w", `
.entry main
.data
x: .quad 0
buf: .space 256
.text
main:
    li r1, 7
    la r2, x
    stq r1, 0(r2)
    halt
`)
	m := emu.New(p)
	m.SetExpander(c.Engine())
	mfi.Setup(m)
	bufAddr := program.DataBase + 8
	m.SetReg(trace.BufPtrReg, bufAddr)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Exactly one application store executed; the tracing stores inside the
	// replacement sequence are never re-expanded (paper §3.3).
	addrs := trace.ReadTrace(m, bufAddr)
	if len(addrs) != 1 || addrs[0] != program.DataBase {
		t.Fatalf("trace entries = %v, want [%#x]", addrs, program.DataBase)
	}
	// And the store actually happened.
	if got := m.Mem().Read64(program.DataBase); got != 7 {
		t.Errorf("x = %d, want 7", got)
	}
}

func TestMergeRejectsTriggerNotLast(t *testing.T) {
	a := &core.Replacement{Name: "a", Insts: []core.ReplInst{
		core.TriggerInst(), core.FromLiteral(isa.Nop()),
	}}
	b := &core.Replacement{Name: "b", Insts: []core.ReplInst{core.TriggerInst()}}
	if _, err := Merge("x", a, b); err == nil {
		t.Error("merge with non-final trigger should fail")
	}
}

func TestMergeRejectsTriggerTargetingBranch(t *testing.T) {
	a := &core.Replacement{Name: "a", Insts: []core.ReplInst{
		{Op: isa.OpBEQ, RS: core.Lit(isa.RegDR0), RT: core.Lit(isa.NoReg), RD: core.Lit(isa.NoReg),
			DiseBranch: true, Imm: core.ImmField{Dir: core.ImmLit, Lit: 1}},
		core.TriggerInst(),
	}}
	b := &core.Replacement{Name: "b", Insts: []core.ReplInst{
		core.FromLiteral(isa.Nop()), core.TriggerInst(),
	}}
	if _, err := Merge("x", a, b); err == nil {
		t.Error("merge where a's branch targets its trigger should fail")
	}
}

func TestRenameDedicated(t *testing.T) {
	r := &core.Replacement{Name: "r", Insts: []core.ReplInst{
		{Op: isa.OpADDQ, RS: core.Lit(isa.RegDR0), RT: core.Lit(isa.RegDR0 + 2), RD: core.Lit(isa.RegDR0)},
		{Op: isa.OpADDQ, RS: core.Lit(5), RT: core.TReg(core.RegTRS), RD: core.Lit(isa.RegDR0 + 2)},
	}}
	out := RenameDedicated(r, map[isa.Reg]isa.Reg{
		isa.RegDR0:     isa.RegDR0 + 6,
		isa.RegDR0 + 2: isa.RegDR0 + 7,
	})
	if out.Insts[0].RS.Lit != isa.RegDR0+6 || out.Insts[0].RT.Lit != isa.RegDR0+7 {
		t.Errorf("rename failed: %+v", out.Insts[0])
	}
	// Architectural literals and directives untouched.
	if out.Insts[1].RS.Lit != 5 || out.Insts[1].RT.Dir != core.RegTRS {
		t.Errorf("rename touched wrong fields: %+v", out.Insts[1])
	}
	// Original untouched.
	if r.Insts[0].RS.Lit != isa.RegDR0 {
		t.Error("RenameDedicated mutated its input")
	}
}

func TestInlineAllShares(t *testing.T) {
	prods := mfiProds(t)
	dict := []*core.Replacement{
		{Name: "a", Insts: []core.ReplInst{core.FromLiteral(isa.Nop())}},
		{Name: "b", Insts: []core.ReplInst{
			core.FromLiteral(isa.Inst{Op: isa.OpLDQ, RD: 1, RS: 2, RT: isa.NoReg, Imm: 0})}},
	}
	out := InlineAll(dict, prods)
	if out[0] != dict[0] {
		t.Error("entry without triggers should be shared")
	}
	if out[1] == dict[1] || len(out[1].Insts) == 1 {
		t.Error("entry with a load should be composed")
	}
}

func TestInlineNestedTransparentFigure5Left(t *testing.T) {
	// Figure 5 (bottom left): nest address tracing *within* fault
	// isolation — fault-isolate traced code. The tracing production's
	// replacement sequence contains two stores (one literal into the trace
	// buffer, one T.INSN); applying MFI's productions to it expands both,
	// with T.RS resolving to $dr5 for the literal store and staying %rs
	// for the trigger copy.
	satProds := core.MustParseProductions(trace.StoreAddressProductions)
	sat := satProds[0]
	composed, changed := Inline(sat.Repl, &sat.Pattern, mfiProds(t))
	if !changed {
		t.Fatal("inlining should change the tracing sequence")
	}
	// lda + (check 3 + stq) + lda + (check 3 + %insn) = 1+4+1+4 = 10.
	if len(composed.Insts) != 10 {
		t.Fatalf("composed length = %d:\n%s", len(composed.Insts), composed.String())
	}
	// First inlined check reads the literal trace-buffer base $dr5.
	if in := composed.Insts[1]; in.Op != isa.OpSRLI || in.RS.Lit != isa.RegDR0+5 {
		t.Errorf("buffer-store check = %+v", in)
	}
	// Second inlined check (for T.INSN) keeps the trigger directive %rs:
	// it must check whatever address register the eventual trigger uses.
	if in := composed.Insts[6]; in.Op != isa.OpSRLI || in.RS.Dir != core.RegTRS {
		t.Errorf("trigger check = %+v", in)
	}
	if !composed.Insts[9].Trigger {
		t.Errorf("sequence must end with T.INSN:\n%s", composed.String())
	}

	// Execute the nested composition: both the application store and the
	// tracing store are checked; a wild trace *buffer* pointer is caught.
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	c := core.NewController(cfg)
	if _, err := c.InstallTransparent("mfi(sat)", sat.Pattern, composed); err != nil {
		t.Fatal(err)
	}
	src := `
.entry main
.data
x: .quad 0
buf: .space 64
.text
main:
    li r1, 7
    la r2, x
    stq r1, 0(r2)
    halt
`
	m := emu.New(asm.MustAssemble("w", src))
	m.SetExpander(c.Engine())
	mfi.Setup(m)
	m.SetReg(trace.BufPtrReg, program.DataBase+8)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := trace.ReadTrace(m, program.DataBase+8); len(got) != 1 || got[0] != program.DataBase {
		t.Errorf("trace = %v", got)
	}

	// Same composition with a corrupted (wild) trace-buffer pointer: the
	// nested fault isolation catches the *tracing ACF's own* store.
	m2 := emu.New(asm.MustAssemble("w", src))
	m2.SetExpander(c.Engine())
	mfi.Setup(m2)
	m2.SetReg(trace.BufPtrReg, 4096) // segment 0
	if err := m2.Run(); !errors.Is(err, emu.ErrACFViolation) {
		t.Errorf("wild trace buffer should be caught by the nested checks: %v", err)
	}
}

func TestTripleMergeTraceWatchMFI(t *testing.T) {
	// Chain-merge three store ACFs around a single trigger: address
	// tracing, then a watchpoint, then fault isolation. All three effects
	// must be observable in one run, and the watchpoint/violation exits
	// must still fire.
	sat := core.MustParseProductions(trace.StoreAddressProductions)[0].Repl
	watch := core.MustParseProductions(monitor.WatchpointProductions)[0].Repl
	mfiRepl := core.MustParseProductions(mfi.Productions(mfi.DISE3))[0].Repl

	ab, err := Merge("sat+watch", sat, watch)
	if err != nil {
		t.Fatal(err)
	}
	abc, err := Merge("sat+watch+mfi", ab, mfiRepl)
	if err != nil {
		t.Fatal(err)
	}
	// 3 + 3 + 3 + trigger.
	if len(abc.Insts) != 10 {
		t.Fatalf("triple merge length = %d:\n%s", len(abc.Insts), abc.String())
	}

	install := func() (*core.Controller, *emu.Machine) {
		cfg := core.DefaultEngineConfig()
		cfg.RTPerfect = true
		c := core.NewController(cfg)
		if _, err := c.InstallTransparent("triple", core.Pattern{
			Class: isa.ClassStore, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}, abc); err != nil {
			t.Fatal(err)
		}
		m := emu.New(asm.MustAssemble("w", `
.entry main
.data
x: .space 32
buf: .space 256
.text
main:
    li r1, 7
    la r2, x
    stq r1, 0(r2)
    stq r1, 8(r2)
    halt
`))
		m.SetExpander(c.Engine())
		mfi.Setup(m)
		m.SetReg(trace.BufPtrReg, program.DataBase+32)
		return c, m
	}

	// Benign run: both stores traced, executed, checked.
	_, m := install()
	m.SetReg(monitor.WatchReg, ^uint64(0)) // watch nothing
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := trace.ReadTrace(m, program.DataBase+32); len(got) != 2 {
		t.Errorf("trace entries = %v", got)
	}
	if m.Mem().Read64(program.DataBase) != 7 || m.Mem().Read64(program.DataBase+8) != 7 {
		t.Error("stores lost under triple composition")
	}

	// Watchpoint on the second store: first completes, second traps; the
	// tracing prefix of the second expansion still ran (it precedes the
	// watch check in the merge order).
	_, m = install()
	m.SetReg(monitor.WatchReg, program.DataBase+8)
	if err := m.Run(); !errors.Is(err, emu.ErrACFViolation) {
		t.Fatalf("watch hit expected, got %v", err)
	}
	if m.Mem().Read64(program.DataBase+8) != 0 {
		t.Error("watched store executed")
	}
	if got := trace.ReadTrace(m, program.DataBase+32); len(got) != 2 {
		t.Errorf("both store *addresses* should be traced before the trap: %v", got)
	}
}
