// Package compose implements ACF composition (paper §3.3). Composition is
// software: productions are combined by manipulating replacement-sequence
// templates, never by re-expanding at runtime (the engine never re-expands
// its own output).
//
// Nested composition — X within Y, yielding Y(X(application)) semantics —
// is "replacement sequence inlining": X's productions are executed on Y's
// replacement sequence templates, substituting X's trigger-field directives
// with Y's field descriptors. Non-nested composition merges the replacement
// sequences of overlapping patterns around a single trigger instance; as
// the paper notes, it is not always possible, and Merge reports when it
// is not.
package compose

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
)

// subst maps an inner-trigger field directive to the outer template's field
// descriptor: inlining "srli %rs, 26, $dr1" into the template
// "stq %p2, %p23($dr0)" turns T.RS into the literal $dr0.
func subst(f core.RegField, outer core.ReplInst) core.RegField {
	switch f.Dir {
	case core.RegTRS:
		return outer.RS
	case core.RegTRT:
		return outer.RT
	case core.RegTRD:
		return outer.RD
	default:
		return f
	}
}

func substImm(f core.ImmField, outer core.ReplInst) core.ImmField {
	switch f.Dir {
	case core.ImmTImm:
		return outer.Imm
	default:
		// Codeword-parameter immediates (ImmP*) reference the *outer
		// trigger's* bits and pass through unchanged; literals stay.
		return f
	}
}

// inlineInst executes inner production templates against one outer template,
// treating the outer template as a symbolic trigger.
func inlineInst(inner core.ReplInst, outer core.ReplInst) core.ReplInst {
	if inner.Trigger {
		return outer
	}
	if outer.Trigger {
		// The outer slot is T.INSN: the inner sequence's trigger-field
		// directives already denote exactly the outer trigger's fields, so
		// they pass through unchanged.
		return inner
	}
	out := inner
	if inner.OpFromTrigger {
		if outer.OpFromTrigger {
			// Still the outer trigger's opcode.
			out.OpFromTrigger = true
		} else {
			out.Op = outer.Op
			out.OpFromTrigger = false
		}
	}
	out.RS = subst(inner.RS, outer)
	out.RT = subst(inner.RT, outer)
	out.RD = subst(inner.RD, outer)
	out.Imm = substImm(inner.Imm, outer)
	return out
}

// matchesTemplate decides whether a pattern matches a template instruction
// for every possible outer trigger. Patterns constraining fields that the
// template parameterizes cannot be decided statically and are treated as
// non-matches (conservative: the inner ACF is not applied there).
func matchesTemplate(p *core.Pattern, t core.ReplInst, outerPat *core.Pattern) bool {
	op := t.Op
	if t.Trigger || t.OpFromTrigger {
		// The template stands for the outer trigger: decide by the outer
		// production's own pattern when it pins the opcode or class.
		if outerPat == nil {
			return false
		}
		if outerPat.Op != isa.OpInvalid {
			op = outerPat.Op
		} else if outerPat.Class != isa.ClassInvalid {
			if p.Op != isa.OpInvalid {
				return false // exact-opcode pattern vs class-only knowledge
			}
			if p.Class != isa.ClassInvalid && p.Class != outerPat.Class {
				return false
			}
			return regFieldsDecidable(p, t)
		} else {
			return false
		}
	}
	if p.Op != isa.OpInvalid && p.Op != op {
		return false
	}
	if p.Class != isa.ClassInvalid && p.Op == isa.OpInvalid && op.Class() != p.Class {
		return false
	}
	if !regFieldsDecidable(p, t) {
		return false
	}
	if p.MatchImm || p.ImmSign != 0 {
		if t.Imm.Dir != core.ImmLit {
			return false
		}
		if p.MatchImm && t.Imm.Lit != p.Imm {
			return false
		}
		if p.ImmSign < 0 && t.Imm.Lit >= 0 {
			return false
		}
		if p.ImmSign > 0 && t.Imm.Lit < 0 {
			return false
		}
	}
	return true
}

// regFieldsDecidable checks the pattern's register constraints against a
// template whose fields may be parameterized.
func regFieldsDecidable(p *core.Pattern, t core.ReplInst) bool {
	check := func(want isa.Reg, f core.RegField) bool {
		if want == isa.NoReg {
			return true
		}
		return f.Dir == core.RegLit && f.Lit == want
	}
	if t.Trigger {
		// T.INSN carries the outer trigger's fields verbatim; register
		// constraints cannot be decided statically.
		return p.RS == isa.NoReg && p.RT == isa.NoReg && p.RD == isa.NoReg
	}
	return check(p.RS, t.RS) && check(p.RT, t.RT) && check(p.RD, t.RD)
}

// Inline applies transparent productions inner to the replacement sequence
// outer (owned by a production whose pattern is outerPat; pass nil for
// dictionaries of literal code). It returns a new sequence in which every
// matching template has been replaced by the inner production's sequence,
// instantiated symbolically — the mechanism behind both
// transparent-within-aware composition (fault-isolating decompressed code)
// and nested transparent composition (paper Figure 5, left).
func Inline(outer *core.Replacement, outerPat *core.Pattern, inner []*core.Production) (*core.Replacement, bool) {
	type piece struct {
		insts   []core.ReplInst
		inlined bool // insts came from an inner production's sequence
	}
	changed := false
	pieces := make([]piece, 0, len(outer.Insts))
	for _, t := range outer.Insts {
		var best *core.Production
		bestSpec := -1
		for _, p := range inner {
			if !p.Transparent() || p.Repl == nil {
				continue
			}
			if matchesTemplate(&p.Pattern, t, outerPat) {
				if s := p.Pattern.Specificity(); s > bestSpec {
					best, bestSpec = p, s
				}
			}
		}
		if best == nil {
			pieces = append(pieces, piece{insts: []core.ReplInst{t}})
			continue
		}
		changed = true
		sub := make([]core.ReplInst, len(best.Repl.Insts))
		for j, in := range best.Repl.Insts {
			sub[j] = inlineInst(in, t)
		}
		pieces = append(pieces, piece{insts: sub, inlined: true})
	}
	if !changed {
		return outer, false
	}
	// Re-resolve DISE branch targets: a literal target pointing at old
	// DISEPC k now points at the start of k's piece; targets inside an
	// inlined sub-sequence are inner-relative and shift by the piece base.
	newStart := make([]int, len(outer.Insts)+1)
	off := 0
	for i := range pieces {
		newStart[i] = off
		off += len(pieces[i].insts)
	}
	newStart[len(outer.Insts)] = off

	out := &core.Replacement{Name: outer.Name + "+inlined"}
	for i := range pieces {
		base := newStart[i]
		for _, in := range pieces[i].insts {
			if in.DiseBranch && in.Imm.Dir == core.ImmLit {
				if pieces[i].inlined {
					in.Imm.Lit += int64(base)
				} else if t := in.Imm.Lit; t >= 0 && t <= int64(len(outer.Insts)) {
					in.Imm.Lit = int64(newStart[t])
				}
			}
			out.Insts = append(out.Insts, in)
		}
	}
	return out, true
}

// InlineAll applies inner to every entry of a dictionary, returning the
// composed dictionary. Entries that contain no triggers are shared, not
// copied.
func InlineAll(dict []*core.Replacement, inner []*core.Production) []*core.Replacement {
	out := make([]*core.Replacement, len(dict))
	for i, r := range dict {
		out[i], _ = Inline(r, nil, inner)
	}
	return out
}

// Composer returns a core.Composer that inlines the transparent productions
// inner into aware sequences on every RT miss — the client-side
// transparent-with-aware composition of paper §3.3: the server compresses
// an unmodified application; the client fault-isolates it as it is
// decompressed, paying the composition latency on RT misses.
func Composer(inner []*core.Production) core.Composer {
	return core.ComposerFunc(func(id int, r *core.Replacement) (*core.Replacement, bool) {
		out, changed := Inline(r, nil, inner)
		return out, changed
	})
}

// Merge performs non-nested composition of two replacement sequences with
// overlapping patterns (paper Figure 5, right): a's ACF work, then b's,
// around a single trigger instance. Both sequences must carry their trigger
// as the final instruction, and a's DISE branches must not target its
// trigger (they would fall into b's code) — conditions under which the
// paper notes non-nested merging "may in fact be impossible".
func Merge(name string, a, b *core.Replacement) (*core.Replacement, error) {
	ta, tb := a.TriggerIndex(), b.TriggerIndex()
	if ta != len(a.Insts)-1 || tb != len(b.Insts)-1 {
		return nil, fmt.Errorf("compose: merge %s: both sequences must end with their trigger", name)
	}
	prefixA := a.Insts[:ta]
	prefixB := b.Insts[:tb]
	for i, in := range prefixA {
		if in.DiseBranch && in.Imm.Dir == core.ImmLit && in.Imm.Lit >= int64(ta) {
			return nil, fmt.Errorf("compose: merge %s: sequence %s DISE branch at %d targets its trigger; merged meaning would change",
				name, a.Name, i)
		}
	}
	out := &core.Replacement{Name: name}
	out.Insts = append(out.Insts, prefixA...)
	for _, in := range prefixB {
		if in.DiseBranch && in.Imm.Dir == core.ImmLit {
			in.Imm.Lit += int64(len(prefixA))
		}
		out.Insts = append(out.Insts, in)
	}
	out.Insts = append(out.Insts, core.TriggerInst())
	return out, out.Validate()
}

// RenameDedicated rewrites dedicated-register uses in a sequence according
// to the mapping (inlining "may require DISE registers to be renamed to
// avoid conflicts" — paper §3.3).
func RenameDedicated(r *core.Replacement, mapping map[isa.Reg]isa.Reg) *core.Replacement {
	ren := func(f core.RegField) core.RegField {
		if f.Dir == core.RegLit && f.Lit.IsDedicated() {
			if to, ok := mapping[f.Lit]; ok {
				f.Lit = to
			}
		}
		return f
	}
	out := &core.Replacement{Name: r.Name}
	for _, in := range r.Insts {
		in.RS = ren(in.RS)
		in.RT = ren(in.RT)
		in.RD = ren(in.RD)
		out.Insts = append(out.Insts, in)
	}
	return out
}
