package kernel

import (
	"errors"
	"testing"

	"repro/internal/acf/mfi"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

const counterSrc = `
.entry main
.data
x: .space 64
.text
main:
    la r1, x
    li r2, 100
loop:
    stq r2, 0(r1)
    subqi r2, 1, r2
    bgt r2, loop
    halt
`

// storeCounter counts stores in $dr0.
var storeCounter = &ACF{
	Name: "count",
	Src: `
prod count {
    match class == store
    replace {
        lda $dr0, 1($dr0)
        %insn
    }
}
`,
}

func newKernel() *Kernel {
	return New(core.NewController(core.DefaultEngineConfig()), ApproveTransparentOnly)
}

func TestProcessScopeConfined(t *testing.T) {
	k := newKernel()
	p1 := k.Spawn(asm.MustAssemble("p1", counterSrc))
	p2 := k.Spawn(asm.MustAssemble("p2", counterSrc))

	if err := k.Switch(p1.PID); err != nil {
		t.Fatal(err)
	}
	if err := k.Install(storeCounter, ScopeProcess, p1.PID); err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunSlice(1 << 20); err != nil {
		t.Fatal(err)
	}
	if got := p1.Machine.Reg(isa.RegDR0); got != 100 {
		t.Errorf("p1 counted %d stores, want 100", got)
	}

	// p2 runs without the ACF: its productions were deactivated at switch.
	if err := k.Switch(p2.PID); err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunSlice(1 << 20); err != nil {
		t.Fatal(err)
	}
	if got := p2.Machine.Reg(isa.RegDR0); got != 0 {
		t.Errorf("p2 saw the user-scope ACF: counter = %d", got)
	}
}

func TestSystemScopeAppliesEverywhere(t *testing.T) {
	k := newKernel()
	p1 := k.Spawn(asm.MustAssemble("p1", counterSrc))
	p2 := k.Spawn(asm.MustAssemble("p2", counterSrc))
	if err := k.Install(storeCounter, ScopeSystem, 0); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Process{p1, p2} {
		if err := k.Switch(p.PID); err != nil {
			t.Fatal(err)
		}
		if _, err := k.RunSlice(1 << 20); err != nil {
			t.Fatal(err)
		}
		if got := p.Machine.Reg(isa.RegDR0); got != 100 {
			t.Errorf("pid %d counted %d stores, want 100", p.PID, got)
		}
	}
}

func TestApprovalPolicy(t *testing.T) {
	k := newKernel()
	aware := &ACF{
		Name: "decomp",
		Src:  "aware decomp {\n match op == res0\n}",
		Dicts: map[string][]*core.Replacement{
			"decomp": {{Name: "e", Insts: []core.ReplInst{core.FromLiteral(isa.Nop())}}},
		},
	}
	err := k.Install(aware, ScopeSystem, 0)
	if !errors.Is(err, ErrNotApproved) {
		t.Errorf("aware ACF at system scope should be rejected, got %v", err)
	}
	// The same ACF is fine confined to its own process.
	p := k.Spawn(asm.MustAssemble("p", counterSrc))
	if err := k.Switch(p.PID); err != nil {
		t.Fatal(err)
	}
	if err := k.Install(aware, ScopeProcess, p.PID); err != nil {
		t.Error(err)
	}
}

func TestDedicatedRegistersPerProcess(t *testing.T) {
	// Interleaved time slices: each process's $dr0 counter must be private
	// even though both run on the same physical engine.
	k := newKernel()
	p1 := k.Spawn(asm.MustAssemble("p1", counterSrc))
	p2 := k.Spawn(asm.MustAssemble("p2", counterSrc))
	if err := k.Install(storeCounter, ScopeSystem, 0); err != nil {
		t.Fatal(err)
	}
	for !p1.Machine.Done() || !p2.Machine.Done() {
		for _, p := range []*Process{p1, p2} {
			if p.Machine.Done() {
				continue
			}
			if err := k.Switch(p.PID); err != nil {
				t.Fatal(err)
			}
			if _, err := k.RunSlice(37); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Counters live in the saved per-process state now; re-attach to read.
	for _, p := range []*Process{p1, p2} {
		if err := k.Switch(p.PID); err != nil {
			t.Fatal(err)
		}
		if got := p.Machine.Reg(isa.RegDR0); got != 100 {
			t.Errorf("pid %d counter = %d, want 100 (state leaked across switches)", p.PID, got)
		}
	}
}

func TestMFIAsSystemUtility(t *testing.T) {
	// The paper's motivating case: fault isolation supplied by the OS
	// vendor, approved, applied to every process.
	k := newKernel()
	mfiACF := &ACF{Name: "mfi", Src: mfi.Productions(mfi.DISE3), Setup: mfi.Setup}
	if err := k.Install(mfiACF, ScopeSystem, 0); err != nil {
		t.Fatal(err)
	}
	good := k.Spawn(asm.MustAssemble("good", counterSrc))
	evil := k.Spawn(asm.MustAssemble("evil", `
.entry main
main:
    li r1, 1
    li r2, 4096
    stq r1, 0(r2)
    halt
`))
	if err := k.Switch(good.PID); err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunSlice(1 << 20); err != nil {
		t.Fatalf("good process must run clean: %v", err)
	}
	if err := k.Switch(evil.PID); err != nil {
		t.Fatal(err)
	}
	_, err := k.RunSlice(1 << 20)
	if !errors.Is(err, emu.ErrACFViolation) {
		t.Errorf("evil process should be caught, got %v", err)
	}
	_ = program.SegData
}

func TestSwitchErrors(t *testing.T) {
	k := newKernel()
	if err := k.Switch(99); !errors.Is(err, ErrNoProcess) {
		t.Errorf("switch to unknown pid: %v", err)
	}
	if _, err := k.RunSlice(10); !errors.Is(err, ErrNoProcess) {
		t.Errorf("run without process: %v", err)
	}
	if err := k.Install(storeCounter, ScopeProcess, 42); !errors.Is(err, ErrNoProcess) {
		t.Errorf("install for unknown pid: %v", err)
	}
}
