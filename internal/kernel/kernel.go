// Package kernel models the OS layer of the DISE system architecture
// (paper §2.3): virtualization of the resident production set across
// context switches, preservation of per-process DISE state (dedicated
// registers and active productions; the PT/RT fault their contents back
// in), and the two-tier security model — kernel-approved productions that
// may act on any process, and user productions confined to their owner.
package kernel

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

// Errors reported by the kernel.
var (
	// ErrNotApproved is returned when an unapproved ACF asks for
	// system-wide scope.
	ErrNotApproved = errors.New("kernel: production set not approved for system scope")
	// ErrNoProcess is returned for operations on unknown PIDs.
	ErrNoProcess = errors.New("kernel: no such process")
)

// Scope says which processes an installed ACF applies to.
type Scope int

// ACF scopes.
const (
	// ScopeProcess confines the ACF to the installing process: its
	// productions are deactivated whenever that process is switched out
	// (the default for productions living in user data space).
	ScopeProcess Scope = iota
	// ScopeSystem applies the ACF to every process. Requires kernel
	// approval: these productions live in kernel space (paper §2.3,
	// "inspection and approval").
	ScopeSystem
)

// ACF is a production set submitted for installation.
type ACF struct {
	Name  string
	Src   string                         // production-language text
	Dicts map[string][]*core.Replacement // dictionaries for aware productions
	// Setup initializes dedicated registers when the ACF is (re)attached
	// to a process.
	Setup func(*emu.Machine)
}

// Approver is the kernel's ACF inspection policy.
type Approver func(acf *ACF) bool

// ApproveTransparentOnly is a reasonable default policy: system scope is
// granted only to production sets with no aware (codeword) productions —
// transparent utilities with a system flavor, as the paper suggests.
func ApproveTransparentOnly(acf *ACF) bool {
	parsed, err := core.ParseProductions(acf.Src)
	if err != nil {
		return false
	}
	for _, p := range parsed {
		if p.Aware {
			return false
		}
	}
	return true
}

type installed struct {
	acf   *ACF
	scope Scope
	owner int // PID for ScopeProcess
	prods []*core.Production
}

// Process is one schedulable machine with its saved DISE state.
type Process struct {
	PID     int
	Machine *emu.Machine

	// Saved across context switches: the dedicated register file and the
	// DISEPC are part of the process state (paper §2.3). Dedicated
	// registers are read out of the machine at switch-out; the machine
	// itself preserves any in-flight replacement sequence, standing in for
	// the saved PC:DISEPC pair.
	dedicated [isa.NumDiseRegs]uint64
}

// Kernel multiplexes one DISE controller among processes.
type Kernel struct {
	ctrl    *core.Controller
	approve Approver

	procs   map[int]*Process
	nextPID int
	current int // running PID, 0 = none

	installs []*installed
}

// New creates a kernel over a controller. A nil approver rejects all
// system-scope requests.
func New(ctrl *core.Controller, approve Approver) *Kernel {
	if approve == nil {
		approve = func(*ACF) bool { return false }
	}
	return &Kernel{ctrl: ctrl, approve: approve, procs: map[int]*Process{}, nextPID: 1}
}

// Controller returns the kernel's controller (for inspection).
func (k *Kernel) Controller() *core.Controller { return k.ctrl }

// Spawn creates a process running prog. The machine's expander is wired to
// the kernel's engine.
func (k *Kernel) Spawn(prog *program.Program) *Process {
	p := &Process{PID: k.nextPID, Machine: emu.New(prog)}
	k.nextPID++
	p.Machine.SetExpander(k.ctrl.Engine())
	k.procs[p.PID] = p
	return p
}

// Install submits an ACF. System scope must pass the approval policy;
// process scope installs are always accepted and bound to pid.
func (k *Kernel) Install(acf *ACF, scope Scope, pid int) error {
	if scope == ScopeSystem {
		if !k.approve(acf) {
			return fmt.Errorf("%w: %s", ErrNotApproved, acf.Name)
		}
	} else if _, ok := k.procs[pid]; !ok {
		return fmt.Errorf("%w: %d", ErrNoProcess, pid)
	}
	inst := &installed{acf: acf, scope: scope, owner: pid}
	k.installs = append(k.installs, inst)
	// If the affected process is currently running, activate immediately.
	if scope == ScopeSystem || pid == k.current {
		if err := k.activate(inst); err != nil {
			return err
		}
	}
	return nil
}

func (k *Kernel) activate(inst *installed) error {
	if inst.prods != nil {
		for _, p := range inst.prods {
			k.ctrl.Activate(p)
		}
		return nil
	}
	prods, err := k.ctrl.InstallFile(inst.acf.Src, inst.acf.Dicts)
	if err != nil {
		return fmt.Errorf("kernel: installing %s: %w", inst.acf.Name, err)
	}
	inst.prods = prods
	return nil
}

func (k *Kernel) deactivate(inst *installed) {
	for _, p := range inst.prods {
		k.ctrl.Deactivate(p)
	}
}

// Switch performs a context switch to pid: the outgoing process's dedicated
// registers are saved and its user-scope productions deactivated; the
// incoming process's state is restored and its productions (plus all
// system-scope productions) activated. The PT and RT contents are left to
// fault back in, as on real hardware.
func (k *Kernel) Switch(pid int) error {
	next, ok := k.procs[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoProcess, pid)
	}
	if cur, ok := k.procs[k.current]; ok {
		for i := 0; i < isa.NumDiseRegs; i++ {
			cur.dedicated[i] = cur.Machine.Reg(isa.RegDR0 + isa.Reg(i))
		}
		for _, inst := range k.installs {
			if inst.scope == ScopeProcess && inst.owner == k.current {
				k.deactivate(inst)
			}
		}
	}
	k.current = pid
	for i := 0; i < isa.NumDiseRegs; i++ {
		next.Machine.SetReg(isa.RegDR0+isa.Reg(i), next.dedicated[i])
	}
	for _, inst := range k.installs {
		if inst.scope == ScopeSystem || (inst.scope == ScopeProcess && inst.owner == pid) {
			if err := k.activate(inst); err != nil {
				return err
			}
		}
		if inst.acf.Setup != nil && (inst.scope == ScopeSystem || inst.owner == pid) {
			inst.acf.Setup(next.Machine)
		}
	}
	return nil
}

// RunSlice runs the current process for up to n dynamic instructions,
// returning the executed count. The process may halt earlier.
func (k *Kernel) RunSlice(n int64) (int64, error) {
	p, ok := k.procs[k.current]
	if !ok {
		return 0, fmt.Errorf("%w: no process running", ErrNoProcess)
	}
	var executed int64
	for executed < n && !p.Machine.Done() {
		if _, ok := p.Machine.Step(); !ok {
			break
		}
		executed++
	}
	return executed, p.Machine.Err()
}

// Current returns the running process, or nil.
func (k *Kernel) Current() *Process { return k.procs[k.current] }
