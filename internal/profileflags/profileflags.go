// Package profileflags registers the conventional -cpuprofile and
// -memprofile flags and wires them to runtime/pprof. Commands import it,
// call Start after flag.Parse, and defer the returned stop function; both
// profiles are written only when the command runs to completion.
package profileflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuOut = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memOut = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function ends the CPU profile and, when -memprofile was given, writes a
// heap profile after a final GC.
func Start() (stop func()) {
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	return func() {
		if *cpuOut != "" {
			pprof.StopCPUProfile()
		}
		if *memOut != "" {
			f, err := os.Create(*memOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
