package program

// Loader-emitted disassembly ground truth. The toolchain knows the role of
// every text byte at layout time — which bytes start a unit, whether that
// unit is a natural word or a 2-byte dedicated codeword, and which bytes are
// operand payload. Emitting those labels alongside the image (rather than
// recovering them heuristically after the fact) is what makes disassembler
// conformance checkable: a label-directed decode must reproduce the unit
// stream exactly, and any byte the labels call payload is off-limits to a
// linear sweep no matter how instruction-like it looks.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// ByteKind labels the role of one text byte.
type ByteKind uint8

// Byte roles. Every unit starts with exactly one head byte; all remaining
// bytes of the unit are operand payload ("data in text": displacements,
// immediates and register fields that a misaligned reader would happily
// misparse as instruction heads).
const (
	ByteHead4   ByteKind = 1 // first byte of a natural 4-byte word
	ByteHead2   ByteKind = 2 // first byte of a 2-byte dedicated codeword
	ByteOperand ByteKind = 3 // operand/immediate payload byte
)

// String names the kind for diagnostics.
func (k ByteKind) String() string {
	switch k {
	case ByteHead4:
		return "head4"
	case ByteHead2:
		return "head2"
	case ByteOperand:
		return "operand"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ByteLabel is the ground-truth label of one text byte: the unit whose image
// it belongs to and its role within that unit.
type ByteLabel struct {
	Unit int
	Kind ByteKind
}

// ByteLabels returns the per-byte ground-truth labels of p's text image, one
// entry per byte of TextBytes().
func (p *Program) ByteLabels() []ByteLabel {
	labels := make([]ByteLabel, 0, p.TextBytes())
	for i := range p.Text {
		head := ByteHead4
		if p.UnitSize(i) == isa.InstBytes2 {
			head = ByteHead2
		}
		labels = append(labels, ByteLabel{Unit: i, Kind: head})
		for b := 1; b < p.UnitSize(i); b++ {
			labels = append(labels, ByteLabel{Unit: i, Kind: ByteOperand})
		}
	}
	return labels
}

// LabelBytes returns the labels in their compact sidecar form: one kind byte
// per text byte (unit indices are recoverable by counting heads).
func (p *Program) LabelBytes() []byte {
	labels := p.ByteLabels()
	out := make([]byte, len(labels))
	for i, l := range labels {
		out[i] = byte(l.Kind)
	}
	return out
}

// TextImage encodes p's text as the raw little-endian byte image a memory
// would hold: natural units as 32-bit words, 2-byte units in the halfword
// codeword form. It fails for instructions with no machine encoding.
func (p *Program) TextImage() ([]byte, error) {
	img := make([]byte, 0, p.TextBytes())
	for i, in := range p.Text {
		switch p.UnitSize(i) {
		case isa.InstBytes:
			w, err := isa.Encode(in)
			if err != nil {
				return nil, fmt.Errorf("unit %d: %w", i, err)
			}
			img = binary.LittleEndian.AppendUint32(img, w)
		case isa.InstBytes2:
			h, err := isa.Encode2(in)
			if err != nil {
				return nil, fmt.Errorf("unit %d: %w", i, err)
			}
			img = binary.LittleEndian.AppendUint16(img, h)
		default:
			return nil, fmt.Errorf("unit %d: bad size %d", i, p.UnitSize(i))
		}
	}
	return img, nil
}

// DecodeTextImage performs label-directed disassembly: it decodes img using
// the per-byte ground truth in labels and returns the unit stream. It fails
// if the labels do not tile the image (a head where payload was promised, a
// truncated unit, trailing bytes) or a labeled head fails to decode.
func DecodeTextImage(img []byte, labels []ByteLabel) ([]isa.Inst, error) {
	if len(labels) != len(img) {
		return nil, fmt.Errorf("program: %d labels for %d image bytes", len(labels), len(img))
	}
	var units []isa.Inst
	for at := 0; at < len(img); {
		l := labels[at]
		var size int
		switch l.Kind {
		case ByteHead4:
			size = isa.InstBytes
		case ByteHead2:
			size = isa.InstBytes2
		default:
			return nil, fmt.Errorf("program: byte %d: expected a head, labeled %v", at, l.Kind)
		}
		if at+size > len(img) {
			return nil, fmt.Errorf("program: byte %d: unit %d truncated", at, l.Unit)
		}
		if l.Unit != len(units) {
			return nil, fmt.Errorf("program: byte %d: head labeled unit %d, expected %d", at, l.Unit, len(units))
		}
		for b := 1; b < size; b++ {
			if pl := labels[at+b]; pl.Kind != ByteOperand || pl.Unit != l.Unit {
				return nil, fmt.Errorf("program: byte %d: expected unit %d payload, labeled unit %d %v",
					at+b, l.Unit, pl.Unit, pl.Kind)
			}
		}
		var in isa.Inst
		var err error
		if size == isa.InstBytes {
			in, err = isa.Decode(binary.LittleEndian.Uint32(img[at:]))
		} else {
			in, err = isa.Decode2(binary.LittleEndian.Uint16(img[at:]))
		}
		if err != nil {
			return nil, fmt.Errorf("program: byte %d: %w", at, err)
		}
		units = append(units, in)
		at += size
	}
	return units, nil
}

// LabelsFromBytes expands the compact sidecar form back into ByteLabels,
// reconstructing unit indices by counting heads. It fails on malformed
// streams (payload before any head, unknown kinds).
func LabelsFromBytes(kinds []byte) ([]ByteLabel, error) {
	labels := make([]ByteLabel, len(kinds))
	unit := -1
	for i, k := range kinds {
		switch ByteKind(k) {
		case ByteHead4, ByteHead2:
			unit++
		case ByteOperand:
			if unit < 0 {
				return nil, fmt.Errorf("program: label byte %d: payload before any head", i)
			}
		default:
			return nil, fmt.Errorf("program: label byte %d: unknown kind %d", i, k)
		}
		labels[i] = ByteLabel{Unit: unit, Kind: ByteKind(k)}
	}
	return labels, nil
}
