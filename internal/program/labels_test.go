package program

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

func TestByteLabelsNatural(t *testing.T) {
	p := mkProg(
		isa.Inst{Op: isa.OpADDQI, RS: 1, RD: 2, Imm: 5},
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	labels := p.ByteLabels()
	if len(labels) != p.TextBytes() {
		t.Fatalf("%d labels for %d text bytes", len(labels), p.TextBytes())
	}
	for i, l := range labels {
		wantKind := ByteOperand
		if i%4 == 0 {
			wantKind = ByteHead4
		}
		if l.Kind != wantKind || l.Unit != i/4 {
			t.Errorf("byte %d: %+v, want unit %d %v", i, l, i/4, wantKind)
		}
	}
}

func TestByteLabelsMixed(t *testing.T) {
	p := mkProg(
		isa.Nop(),
		isa.Codeword(isa.OpRES3, 0, 0, 0, 9),
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	p.Sizes = []uint8{4, 2, 4}
	labels := p.ByteLabels()
	wantKinds := []ByteKind{
		ByteHead4, ByteOperand, ByteOperand, ByteOperand,
		ByteHead2, ByteOperand,
		ByteHead4, ByteOperand, ByteOperand, ByteOperand,
	}
	if len(labels) != len(wantKinds) {
		t.Fatalf("%d labels, want %d", len(labels), len(wantKinds))
	}
	wantUnits := []int{0, 0, 0, 0, 1, 1, 2, 2, 2, 2}
	for i := range labels {
		if labels[i].Kind != wantKinds[i] || labels[i].Unit != wantUnits[i] {
			t.Errorf("byte %d: %+v, want unit %d %v", i, labels[i], wantUnits[i], wantKinds[i])
		}
	}
}

func TestTextImageLabelDirectedDecode(t *testing.T) {
	p := mkProg(
		isa.Inst{Op: isa.OpADDQI, RS: 1, RT: isa.NoReg, RD: 2, Imm: 100},
		isa.Codeword(isa.OpRES3, 0, 0, 0, 17),
		isa.Codeword(isa.OpRES3, 0, 0, 0, 901),
		isa.Inst{Op: isa.OpSTQ, RT: 2, RS: 30, RD: isa.NoReg, Imm: 16},
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	p.Sizes = []uint8{4, 2, 2, 4, 4}
	img, err := p.TextImage()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != p.TextBytes() {
		t.Fatalf("image %d bytes, want %d", len(img), p.TextBytes())
	}
	units, err := DecodeTextImage(img, p.ByteLabels())
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != len(p.Text) {
		t.Fatalf("%d units decoded, want %d", len(units), len(p.Text))
	}
	for i := range units {
		if units[i] != p.Text[i] {
			t.Errorf("unit %d: %v != %v", i, units[i], p.Text[i])
		}
	}
}

func TestDecodeTextImageRejectsBadLabels(t *testing.T) {
	p := mkProg(
		isa.Nop(),
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	img, err := p.TextImage()
	if err != nil {
		t.Fatal(err)
	}
	good := p.ByteLabels()

	// Length mismatch.
	if _, err := DecodeTextImage(img, good[:len(good)-1]); err == nil {
		t.Error("short label stream should fail")
	}
	// Payload where a head is required.
	bad := append([]ByteLabel(nil), good...)
	bad[0].Kind = ByteOperand
	if _, err := DecodeTextImage(img, bad); err == nil {
		t.Error("payload-at-head should fail")
	}
	// A 2-byte head over a 4-byte word desynchronizes the tiling.
	bad = append([]ByteLabel(nil), good...)
	bad[0].Kind = ByteHead2
	if _, err := DecodeTextImage(img, bad); err == nil {
		t.Error("wrong head width should fail")
	}
	// Truncated final unit.
	bad = append([]ByteLabel(nil), good...)
	bad[len(bad)-1].Kind = ByteHead4
	if _, err := DecodeTextImage(img[:len(img)-3], bad[:len(bad)-3]); err == nil {
		t.Error("truncated unit should fail")
	}
}

func TestLabelBytesRoundTrip(t *testing.T) {
	p := mkProg(
		isa.Nop(),
		isa.Codeword(isa.OpRES3, 0, 0, 0, 9),
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	p.Sizes = []uint8{4, 2, 4}
	got, err := LabelsFromBytes(p.LabelBytes())
	if err != nil {
		t.Fatal(err)
	}
	want := p.ByteLabels()
	if len(got) != len(want) {
		t.Fatalf("%d labels, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("label %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if _, err := LabelsFromBytes([]byte{byte(ByteOperand)}); err == nil {
		t.Error("payload before any head should fail")
	}
	if _, err := LabelsFromBytes([]byte{99}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestImageLabelSidecar(t *testing.T) {
	p := mkProg(
		isa.Nop(),
		isa.Codeword(isa.OpRES3, 0, 0, 0, 9),
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	p.Sizes = []uint8{4, 2, 4}
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// The sidecar must survive the round trip intact.
	if _, err := ReadImage("s", bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}

	// A sidecar contradicting the unit layout marks a corrupt image. The
	// sidecar is the last section, so its kind bytes are the trailing bytes.
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)-1] = byte(ByteHead2)
	if _, err := ReadImage("s", bytes.NewReader(tampered)); err == nil {
		t.Error("tampered sidecar should be rejected")
	}

	// A truncated sidecar must fail, not crash.
	if _, err := ReadImage("s", bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Error("truncated sidecar should be rejected")
	}

	// Version-1 images carry no sidecar and must still load.
	v1 := append([]byte(nil), raw[:len(raw)-(4+p.TextBytes())]...)
	v1[4] = 1
	q, err := ReadImage("s", bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 image rejected: %v", err)
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("version-1 image lost units: %d", len(q.Text))
	}
}
