package program

// The EVRX container: a simple serialized form of a Program, so the tools
// can pass binaries between each other (assemble once, simulate and
// compress elsewhere). The container stores the *decoded* unit stream plus
// per-unit sizes, which also represents compressed images (4-byte DISE
// codewords, 2-byte dedicated codewords) that have no flat word encoding.
//
// Layout (all little-endian):
//
//	magic   "EVRX"            4 bytes
//	version u32               currently 1
//	entry   u32
//	nUnits  u32
//	units   nUnits * 12       op u8, rs u8, rt u8, rd u8, size u8, pad u8[? none] — see below
//	        (op u8, rs u8, rt u8, rd u8, size u8, pad u8, imm i64 would be 14;
//	         the actual record is op, rs, rt, rd, size, pad, imm — 14 bytes)
//	nData   u32, data bytes
//	nSyms   u32, then per symbol: u16 name length, name, u32 unit
//	labels  (version >= 2) u32 count, then one ByteKind byte per text byte
//
// The trailing label section is the loader-emitted disassembly ground truth:
// the role of every text byte (head of a 4-byte word, head of a 2-byte
// dedicated codeword, or operand payload). It is redundant with the unit
// records by construction, and ReadImage verifies that redundancy — an image
// whose sidecar disagrees with its own layout is rejected as corrupt.
// Version-1 images (no sidecar) are still accepted.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

const (
	imageMagic   = "EVRX"
	imageVersion = 2
)

// WriteImage serializes p to w.
func (p *Program) WriteImage(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("program: write image: %w", err)
	}
	var b bytes.Buffer
	b.WriteString(imageMagic)
	u32 := func(v uint32) { _ = binary.Write(&b, binary.LittleEndian, v) }
	u32(imageVersion)
	u32(uint32(p.Entry))
	u32(uint32(len(p.Text)))
	for i, in := range p.Text {
		b.WriteByte(byte(in.Op))
		b.WriteByte(byte(in.RS))
		b.WriteByte(byte(in.RT))
		b.WriteByte(byte(in.RD))
		b.WriteByte(byte(p.UnitSize(i)))
		b.WriteByte(0)
		_ = binary.Write(&b, binary.LittleEndian, in.Imm)
	}
	u32(uint32(len(p.Data)))
	b.Write(p.Data)
	syms := make([]string, 0, len(p.Symbols))
	for s := range p.Symbols {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	u32(uint32(len(syms)))
	for _, s := range syms {
		if len(s) > 1<<16-1 {
			return fmt.Errorf("program: symbol %q too long", s[:32])
		}
		_ = binary.Write(&b, binary.LittleEndian, uint16(len(s)))
		b.WriteString(s)
		u32(uint32(p.Symbols[s]))
	}
	kinds := p.LabelBytes()
	u32(uint32(len(kinds)))
	b.Write(kinds)
	_, err := w.Write(b.Bytes())
	return err
}

// ReadImage deserializes a Program written by WriteImage.
func ReadImage(name string, r io.Reader) (*Program, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	br := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != imageMagic {
		return nil, fmt.Errorf("program: not an EVRX image")
	}
	var version, entry, nUnits uint32
	u32 := func(v *uint32) error { return binary.Read(br, binary.LittleEndian, v) }
	if err := u32(&version); err != nil {
		return nil, err
	}
	if version < 1 || version > imageVersion {
		return nil, fmt.Errorf("program: unsupported image version %d", version)
	}
	if err := u32(&entry); err != nil {
		return nil, err
	}
	if err := u32(&nUnits); err != nil {
		return nil, err
	}
	if int(nUnits) > br.Len()/14 {
		return nil, fmt.Errorf("program: truncated image (%d units claimed)", nUnits)
	}
	p := &Program{Name: name, Entry: int(entry), Symbols: map[string]int{}}
	p.Text = make([]isa.Inst, nUnits)
	sizes := make([]uint8, nUnits)
	uniform := true
	for i := range p.Text {
		var rec [6]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, err
		}
		var imm int64
		if err := binary.Read(br, binary.LittleEndian, &imm); err != nil {
			return nil, err
		}
		p.Text[i] = isa.Inst{Op: isa.Opcode(rec[0]), RS: isa.Reg(rec[1]),
			RT: isa.Reg(rec[2]), RD: isa.Reg(rec[3]), Imm: imm}
		sizes[i] = rec[4]
		if rec[4] != isa.InstBytes {
			uniform = false
		}
	}
	if !uniform {
		p.Sizes = sizes
	}
	var nData uint32
	if err := u32(&nData); err != nil {
		return nil, err
	}
	if int(nData) > br.Len() {
		return nil, fmt.Errorf("program: truncated data segment")
	}
	p.Data = make([]byte, nData)
	if _, err := io.ReadFull(br, p.Data); err != nil {
		return nil, err
	}
	var nSyms uint32
	if err := u32(&nSyms); err != nil {
		return nil, err
	}
	for i := 0; i < int(nSyms); i++ {
		var n uint16
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		nameBuf := make([]byte, n)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, err
		}
		var unit uint32
		if err := u32(&unit); err != nil {
			return nil, err
		}
		p.Symbols[string(nameBuf)] = int(unit)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("program: corrupt image: %w", err)
	}
	if version >= 2 {
		var nLabels uint32
		if err := u32(&nLabels); err != nil {
			return nil, fmt.Errorf("program: truncated label sidecar: %w", err)
		}
		if int(nLabels) > br.Len() {
			return nil, fmt.Errorf("program: truncated label sidecar (%d labels claimed)", nLabels)
		}
		kinds := make([]byte, nLabels)
		if _, err := io.ReadFull(br, kinds); err != nil {
			return nil, err
		}
		// The sidecar is ground truth the loader must agree with: a byte-role
		// stream that contradicts the unit records marks a corrupt or
		// tampered image, not a recoverable disagreement.
		if want := p.LabelBytes(); !bytes.Equal(kinds, want) {
			return nil, fmt.Errorf("program: label sidecar disagrees with unit layout (%d labels for %d text bytes)",
				nLabels, len(want))
		}
	}
	return p, nil
}
