package program

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func mkProg(insts ...isa.Inst) *Program {
	return &Program{Name: "t", Text: insts, Symbols: map[string]int{}}
}

func TestSegment(t *testing.T) {
	if Segment(TextBase) != SegText {
		t.Error("TextBase segment")
	}
	if Segment(DataBase+100) != SegData {
		t.Error("DataBase segment")
	}
	if Segment(StackTop-8) != SegData {
		t.Error("the stack must live inside the data segment")
	}
	if Segment(0) == SegData {
		t.Error("null segment should not be data")
	}
}

func TestAddrsUniform(t *testing.T) {
	p := mkProg(isa.Nop(), isa.Nop(), isa.Nop())
	if p.Addr(0) != TextBase || p.Addr(2) != TextBase+8 {
		t.Errorf("addrs: %#x %#x", p.Addr(0), p.Addr(2))
	}
	if p.TextBytes() != 12 {
		t.Errorf("TextBytes = %d", p.TextBytes())
	}
}

func TestAddrsMixedSizes(t *testing.T) {
	p := mkProg(isa.Nop(), isa.Codeword(isa.OpRES3, 0, 0, 0, 1), isa.Nop())
	p.Sizes = []uint8{4, 2, 4}
	if p.Addr(1) != TextBase+4 || p.Addr(2) != TextBase+6 {
		t.Errorf("addrs: %#x %#x", p.Addr(1), p.Addr(2))
	}
	if p.TextBytes() != 10 {
		t.Errorf("TextBytes = %d", p.TextBytes())
	}
	// UnitAt must resolve interior byte addresses of a unit to that unit.
	if got := p.UnitAt(TextBase + 5); got != 1 {
		t.Errorf("UnitAt(+5) = %d, want 1", got)
	}
	if got := p.UnitAt(TextBase + 6); got != 2 {
		t.Errorf("UnitAt(+6) = %d, want 2", got)
	}
	if got := p.UnitAt(TextBase + 10); got != -1 {
		t.Errorf("UnitAt(end) = %d, want -1", got)
	}
	if got := p.UnitAt(0); got != -1 {
		t.Errorf("UnitAt(0) = %d, want -1", got)
	}
}

func TestUnitAtAddrInverse(t *testing.T) {
	p := mkProg(isa.Nop(), isa.Nop(), isa.Nop(), isa.Nop())
	p.Sizes = []uint8{4, 2, 2, 4}
	f := func(idx uint8) bool {
		i := int(idx) % p.NumUnits()
		return p.UnitAt(p.Addr(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBranchTargetRoundTrip(t *testing.T) {
	br := isa.Inst{Op: isa.OpBR, RD: isa.RegZero, RS: isa.NoReg, RT: isa.NoReg}
	p := mkProg(isa.Nop(), br, isa.Nop(), isa.Nop())
	p.SetBranchTarget(1, 3)
	if got := p.BranchTargetUnit(1); got != 3 {
		t.Errorf("target = %d", got)
	}
	p.SetBranchTarget(1, 0)
	if got := p.BranchTargetUnit(1); got != 0 {
		t.Errorf("backward target = %d", got)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadTarget(t *testing.T) {
	br := isa.Inst{Op: isa.OpBR, RD: isa.RegZero, RS: isa.NoReg, RT: isa.NoReg, Imm: 100}
	p := mkProg(br, isa.Nop())
	if err := p.Validate(); err == nil {
		t.Error("Validate should reject out-of-range branch")
	}
}

func TestValidateCatchesBadEntry(t *testing.T) {
	p := mkProg(isa.Nop())
	p.Entry = 5
	if err := p.Validate(); err == nil {
		t.Error("Validate should reject bad entry")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := mkProg(isa.Nop(), isa.Nop())
	p.Symbols["a"] = 1
	p.Data = []byte{1, 2, 3}
	q := p.Clone()
	q.Text[0] = isa.Inst{Op: isa.OpHALT}
	q.Symbols["a"] = 0
	q.Data[0] = 9
	if p.Text[0].Op == isa.OpHALT || p.Symbols["a"] != 1 || p.Data[0] != 1 {
		t.Error("Clone shares state with original")
	}
}

func TestInvalidateRebuildsAddrs(t *testing.T) {
	p := mkProg(isa.Nop(), isa.Nop())
	_ = p.Addr(1)
	p.Text = append(p.Text, isa.Nop())
	p.Invalidate()
	if p.Addr(2) != TextBase+8 {
		t.Errorf("Addr(2) = %#x after invalidate", p.Addr(2))
	}
}

func TestEncodeTextRejectsShortUnits(t *testing.T) {
	p := mkProg(isa.Nop(), isa.Nop())
	p.Sizes = []uint8{4, 2}
	if _, err := p.EncodeText(); err == nil {
		t.Error("EncodeText should reject 2-byte units")
	}
}

func TestStaticMix(t *testing.T) {
	p := mkProg(
		isa.Inst{Op: isa.OpLDQ, RD: 1, RS: 2, RT: isa.NoReg},
		isa.Inst{Op: isa.OpSTQ, RT: 1, RS: 2, RD: isa.NoReg},
		isa.Inst{Op: isa.OpSTQ, RT: 3, RS: 2, RD: isa.NoReg},
		isa.Nop(),
	)
	mix := p.StaticMix()
	if mix[isa.ClassLoad] != 1 || mix[isa.ClassStore] != 2 || mix[isa.ClassIntOp] != 1 {
		t.Errorf("mix = %v", mix)
	}
}
