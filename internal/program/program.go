// Package program defines the executable representation shared by the
// assembler, rewriters, compressors, emulator and pipeline model: a text
// segment of decoded instructions laid out in a byte-addressed image, a data
// segment, and symbols.
//
// Control flow is expressed in "units": every static instruction occupies
// one unit of the text, and branch displacements count units (a unit is one
// 4-byte instruction word in natural code). Compression replaces multi-unit
// sequences with single-unit codewords, which — exactly as in the paper —
// changes the relative distances between branches and their targets, so the
// compressors must re-resolve every displacement after re-layout. Byte
// addresses are derived from per-unit sizes: natural instructions and DISE
// codewords are 4 bytes, while the dedicated-decompressor baseline uses
// 2-byte codewords, shrinking the image and the I-cache footprint.
package program

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/isa"
)

// Address-space layout. The high-order bits of an address, from bit SegShift
// up, are its segment identifier — the quantity the memory-fault-isolation
// ACF extracts with "srl T.RS, 26, $dr1" (paper Figure 1).
const (
	SegShift = 26

	SegText = 1
	SegData = 2

	TextBase = uint64(SegText) << SegShift
	DataBase = uint64(SegData) << SegShift

	// The stack lives at the top of the data segment (fault-isolated
	// modules own a single data segment covering globals and stack, as in
	// software-based fault isolation), growing down from StackTop.
	StackTop = DataBase + 56<<20
)

// Segment returns the segment identifier of an address.
func Segment(addr uint64) uint64 { return addr >> SegShift }

// Program is an executable image.
type Program struct {
	Name  string
	Entry int // entry point, as a unit index into Text

	// Text is the decoded text segment, one instruction per unit.
	Text []isa.Inst
	// Sizes holds the byte size of each unit. A nil Sizes means every unit
	// is a natural 4-byte instruction word.
	Sizes []uint8

	// Data is the initialized data segment, loaded at DataBase.
	Data []byte

	// Symbols maps labels to unit indices.
	Symbols map[string]int

	// addrs is the lazily built unit index -> byte address table. It is an
	// atomic pointer so that machines running the same (immutable) program
	// concurrently may fault it in without a lock; concurrent builders
	// compute identical tables and the first published one wins.
	addrs atomic.Pointer[[]uint64]
}

// Clone returns a deep copy of p. Rewriters and compressors operate on
// clones so baselines and transformed variants can be compared side by side.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Entry: p.Entry}
	q.Text = append([]isa.Inst(nil), p.Text...)
	if p.Sizes != nil {
		q.Sizes = append([]uint8(nil), p.Sizes...)
	}
	q.Data = append([]byte(nil), p.Data...)
	q.Symbols = make(map[string]int, len(p.Symbols))
	for k, v := range p.Symbols {
		q.Symbols[k] = v
	}
	return q
}

// NumUnits returns the number of static instruction units.
func (p *Program) NumUnits() int { return len(p.Text) }

// UnitSize returns the byte size of unit i.
func (p *Program) UnitSize(i int) int {
	if p.Sizes == nil {
		return isa.InstBytes
	}
	return int(p.Sizes[i])
}

// TextBytes returns the total size of the text image in bytes. This is the
// "compressed text" quantity of Figure 7.
func (p *Program) TextBytes() int {
	if p.Sizes == nil {
		return len(p.Text) * isa.InstBytes
	}
	n := 0
	for _, s := range p.Sizes {
		n += int(s)
	}
	return n
}

// buildAddrs computes and publishes the unit-index -> byte-address table.
func (p *Program) buildAddrs() []uint64 {
	addrs := make([]uint64, len(p.Text)+1)
	a := TextBase
	for i := range p.Text {
		addrs[i] = a
		a += uint64(p.UnitSize(i))
	}
	addrs[len(p.Text)] = a
	p.addrs.Store(&addrs)
	return addrs
}

// addrTable returns the current address table, faulting it in if needed.
func (p *Program) addrTable() []uint64 {
	if t := p.addrs.Load(); t != nil && len(*t) == len(p.Text)+1 {
		return *t
	}
	return p.buildAddrs()
}

// Addr returns the byte address of unit i. Addresses are stable for a given
// layout; call Invalidate after mutating Text or Sizes.
func (p *Program) Addr(i int) uint64 {
	return p.addrTable()[i]
}

// UnitAt returns the unit index whose image spans byte address a, or -1.
// Used to resolve indirect-jump targets, which travel through registers as
// byte addresses.
func (p *Program) UnitAt(a uint64) int {
	addrs := p.addrTable()
	if a < TextBase || a >= addrs[len(p.Text)] {
		return -1
	}
	if p.Sizes == nil {
		// Natural layout: every unit is one 4-byte word, so the unit index
		// is pure address arithmetic — no binary search.
		return int((a - TextBase) / isa.InstBytes)
	}
	i := sort.Search(len(p.Text), func(i int) bool { return addrs[i+1] > a })
	return i
}

// Invalidate drops cached layout state after a mutation.
func (p *Program) Invalidate() { p.addrs.Store(nil) }

// BranchTargetUnit returns the target unit of the PC-relative branch at unit
// i: displacement counts units, relative to the following unit.
func (p *Program) BranchTargetUnit(i int) int {
	return i + 1 + int(p.Text[i].Imm)
}

// SetBranchTarget rewrites the displacement of the branch at unit i to
// target unit t.
func (p *Program) SetBranchTarget(i, t int) {
	p.Text[i].Imm = int64(t - i - 1)
}

// Validate checks structural invariants: branch targets inside text, entry
// in range, unit sizes sane. Tools run it after every transformation.
func (p *Program) Validate() error {
	if p.Entry < 0 || p.Entry >= len(p.Text) {
		return fmt.Errorf("program %s: entry %d out of range [0,%d)", p.Name, p.Entry, len(p.Text))
	}
	if p.Sizes != nil && len(p.Sizes) != len(p.Text) {
		return fmt.Errorf("program %s: %d sizes for %d units", p.Name, len(p.Sizes), len(p.Text))
	}
	for i, in := range p.Text {
		if !in.Op.Valid() {
			return fmt.Errorf("program %s: unit %d: invalid opcode", p.Name, i)
		}
		if in.Op.IsBranch() {
			t := p.BranchTargetUnit(i)
			if t < 0 || t >= len(p.Text) {
				return fmt.Errorf("program %s: unit %d (%v): branch target %d out of range", p.Name, i, in, t)
			}
		}
		if p.Sizes != nil {
			if s := p.Sizes[i]; s != 2 && s != 4 {
				return fmt.Errorf("program %s: unit %d: bad size %d", p.Name, i, s)
			}
		}
	}
	for sym, u := range p.Symbols {
		if u < 0 || u >= len(p.Text) {
			return fmt.Errorf("program %s: symbol %q out of range", p.Name, sym)
		}
	}
	return nil
}

// EncodeText packs the text into machine words. It fails for programs whose
// layout contains 2-byte units (the dedicated-decompressor image is not a
// sequence of words) or unencodable instructions.
func (p *Program) EncodeText() ([]uint32, error) {
	if p.Sizes != nil {
		for i, s := range p.Sizes {
			if s != isa.InstBytes {
				return nil, fmt.Errorf("program %s: unit %d has size %d; image is not word-aligned", p.Name, i, s)
			}
		}
	}
	words := make([]uint32, len(p.Text))
	for i, in := range p.Text {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, fmt.Errorf("unit %d: %w", i, err)
		}
		words[i] = w
	}
	return words, nil
}

// DecodeText builds a Program from machine words.
func DecodeText(name string, words []uint32, entry int) (*Program, error) {
	p := &Program{Name: name, Entry: entry, Symbols: map[string]int{}}
	p.Text = make([]isa.Inst, len(words))
	for i, w := range words {
		in, err := isa.Decode(w)
		if err != nil {
			return nil, fmt.Errorf("word %d: %w", i, err)
		}
		p.Text[i] = in
	}
	return p, p.Validate()
}
