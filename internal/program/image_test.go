package program

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
)

func imageRoundTrip(t *testing.T, p *Program) *Program {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(p.Name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestImageRoundTrip(t *testing.T) {
	p := mkProg(
		isa.Inst{Op: isa.OpLDQ, RD: 1, RS: 2, RT: isa.NoReg, Imm: 8},
		isa.Inst{Op: isa.OpADDQ, RS: 1, RT: 2, RD: 3},
		isa.Inst{Op: isa.OpBEQ, RS: 3, RT: isa.NoReg, RD: isa.NoReg, Imm: -2},
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	p.Entry = 1
	p.Data = []byte{1, 2, 3, 4, 5}
	p.Symbols["main"] = 1
	p.Symbols["loop"] = 0

	q := imageRoundTrip(t, p)
	if q.Entry != p.Entry || len(q.Text) != len(p.Text) {
		t.Fatalf("shape mismatch: %+v", q)
	}
	for i := range p.Text {
		if p.Text[i] != q.Text[i] {
			t.Errorf("unit %d: %v != %v", i, p.Text[i], q.Text[i])
		}
	}
	if !bytes.Equal(p.Data, q.Data) {
		t.Error("data mismatch")
	}
	if q.Symbols["main"] != 1 || q.Symbols["loop"] != 0 {
		t.Errorf("symbols = %v", q.Symbols)
	}
	if q.Sizes != nil {
		t.Error("uniform image should round-trip with nil Sizes")
	}
}

func TestImageRoundTripMixedSizes(t *testing.T) {
	p := mkProg(
		isa.Nop(),
		isa.Codeword(isa.OpRES3, 1, 2, 3, 40),
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	p.Sizes = []uint8{4, 2, 4}
	q := imageRoundTrip(t, p)
	if q.Sizes == nil || q.UnitSize(1) != 2 {
		t.Errorf("sizes lost: %v", q.Sizes)
	}
	if q.TextBytes() != p.TextBytes() {
		t.Errorf("TextBytes %d != %d", q.TextBytes(), p.TextBytes())
	}
}

func TestImagePreservesDedicatedRegisters(t *testing.T) {
	// Decoded replacement-like instructions (dedicated registers) have no
	// word encoding but must survive the container.
	p := mkProg(
		isa.Inst{Op: isa.OpADDQ, RS: isa.RegDR0, RT: isa.RegDR0 + 2, RD: isa.RegDR0},
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	q := imageRoundTrip(t, p)
	if q.Text[0].RS != isa.RegDR0 {
		t.Errorf("dedicated register lost: %v", q.Text[0])
	}
}

func TestImageRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOPE",
		"EVRX\x03\x00\x00\x00", // unsupported version
		"EVRX\x00\x00\x00\x00", // version 0 never existed
	}
	for _, c := range cases {
		if _, err := ReadImage("g", strings.NewReader(c)); err == nil {
			t.Errorf("ReadImage(%q) should fail", c)
		}
	}
	// Claimed unit count exceeding the payload must not allocate/crash.
	var buf bytes.Buffer
	buf.WriteString("EVRX")
	buf.Write([]byte{1, 0, 0, 0})         // version
	buf.Write([]byte{0, 0, 0, 0})         // entry
	buf.Write([]byte{255, 255, 255, 255}) // nUnits = 4B
	if _, err := ReadImage("g", &buf); err == nil {
		t.Error("oversized unit count should fail")
	}
}

func TestImageRejectsCorruptProgram(t *testing.T) {
	// A structurally valid container holding an invalid program (branch out
	// of range) must be rejected by validation.
	p := mkProg(
		isa.Inst{Op: isa.OpBR, RD: isa.RegZero, RS: isa.NoReg, RT: isa.NoReg, Imm: 0},
		isa.Inst{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	)
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Patch the branch displacement (imm at bytes 16+6..) to something wild.
	raw[16+6] = 0x40
	if _, err := ReadImage("c", bytes.NewReader(raw)); err == nil {
		t.Error("corrupt branch target should fail validation")
	}
}
