package program

import "repro/internal/isa"

// BasicBlock is a maximal single-entry straight-line region of the text.
// The compression candidate enumeration only considers sequences that do
// not straddle basic blocks (paper §3.2).
type BasicBlock struct {
	Start int // first unit
	End   int // one past the last unit
}

// Len returns the number of units in b.
func (b BasicBlock) Len() int { return b.End - b.Start }

// BasicBlocks partitions the text into basic blocks. Leaders are: the entry
// point, every symbol (potential indirect-jump/call target), every branch
// target, and every instruction following a control transfer.
func (p *Program) BasicBlocks() []BasicBlock {
	n := len(p.Text)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n)
	leader[0] = true
	if p.Entry < n {
		leader[p.Entry] = true
	}
	for _, u := range p.Symbols {
		leader[u] = true
	}
	for i, in := range p.Text {
		if in.Op.IsBranch() {
			if t := p.BranchTargetUnit(i); t >= 0 && t < n {
				leader[t] = true
			}
		}
		if in.Op.IsControl() && i+1 < n {
			leader[i+1] = true
		}
	}
	var blocks []BasicBlock
	start := 0
	for i := 1; i < n; i++ {
		if leader[i] {
			blocks = append(blocks, BasicBlock{Start: start, End: i})
			start = i
		}
	}
	blocks = append(blocks, BasicBlock{Start: start, End: n})
	return blocks
}

// StaticMix counts static instructions per opcode class.
func (p *Program) StaticMix() map[isa.Class]int {
	mix := make(map[isa.Class]int)
	for _, in := range p.Text {
		mix[in.Op.Class()]++
	}
	return mix
}
