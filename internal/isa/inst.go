package isa

import "fmt"

// Inst is a decoded EVR instruction. The decoded form is the common currency
// of the toolchain: the assembler produces it, the encoder packs it into a
// 32-bit word, the DISE engine pattern-matches and instantiates it, and the
// emulator and pipeline execute it. DISE replacement instructions exist only
// in decoded form (their register fields may name dedicated registers, which
// have no machine encoding).
type Inst struct {
	Op  Opcode
	RS  Reg   // first source (base register for memory ops)
	RT  Reg   // second source (store value register)
	RD  Reg   // destination (link register for calls)
	Imm int64 // sign-extended displacement/immediate; codeword tag; SYS code
}

// Field slot mapping per format:
//
//	FmtMem      loads/lda: RD, RS, Imm     stores: RT (value), RS (base), Imm
//	FmtBranch   cond: RS, Imm (word disp)  br/bsr: RD (link), Imm
//	FmtJump     RD (link), RS (target)
//	FmtOpReg    RS, RT, RD
//	FmtOpImm    RS, Imm, RD
//	FmtSpecial  Imm (code)
//	FmtCodeword RS=p1, RT=p2, RD=p3, Imm=tag

// Dest returns the register written by i, or NoReg.
func (i Inst) Dest() Reg {
	switch i.Op.Format() {
	case FmtMem:
		if i.Op.Class() == ClassStore {
			return NoReg
		}
		return i.RD
	case FmtBranch:
		if i.Op == OpBR || i.Op == OpBSR {
			return i.RD
		}
		return NoReg
	case FmtJump:
		return i.RD
	case FmtJumpCond:
		return NoReg
	case FmtOpReg, FmtOpImm:
		return i.RD
	case FmtCodeword:
		// A raw codeword has no semantics of its own; it is replaced before
		// execution. Treat as no destination.
		return NoReg
	}
	return NoReg
}

// Sources returns the registers read by i (zero, one or two entries).
func (i Inst) Sources() []Reg {
	a, b := i.SourceRegs()
	var srcs []Reg
	if a != NoReg {
		srcs = append(srcs, a)
	}
	if b != NoReg {
		srcs = append(srcs, b)
	}
	return srcs
}

// SourceRegs returns the at-most-two registers read by i, NoReg-padded. The
// timing model calls it once per dynamic instruction; unlike Sources it never
// allocates.
func (i Inst) SourceRegs() (Reg, Reg) {
	var a, b Reg = NoReg, NoReg
	switch i.Op.Format() {
	case FmtMem:
		a = i.RS
		if i.Op.Class() == ClassStore {
			b = i.RT
		}
	case FmtBranch:
		if i.Op != OpBR && i.Op != OpBSR {
			a = i.RS
		}
	case FmtJump:
		a = i.RS
	case FmtJumpCond:
		a = i.RT
		b = i.RS
	case FmtOpReg:
		a = i.RS
		b = i.RT
	case FmtOpImm:
		a = i.RS
	}
	if a == RegZero {
		a = NoReg
	}
	if b == RegZero {
		b = NoReg
	}
	if a == NoReg {
		a, b = b, NoReg
	}
	return a, b
}

// UsesDedicated reports whether any register field of i names a DISE
// dedicated register. Such instructions are representable only inside
// replacement sequences.
func (i Inst) UsesDedicated() bool {
	return i.RS.IsDedicated() || i.RT.IsDedicated() || i.RD.IsDedicated()
}

// BranchTarget returns the target PC of a PC-relative branch at address pc.
func (i Inst) BranchTarget(pc uint64) uint64 {
	return pc + 4 + uint64(i.Imm)*4
}

// String renders i in assembler syntax.
func (i Inst) String() string {
	switch i.Op.Format() {
	case FmtMem:
		if i.Op.Class() == ClassStore {
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.RT, i.Imm, i.RS)
		}
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.RD, i.Imm, i.RS)
	case FmtBranch:
		if i.Op == OpBR || i.Op == OpBSR {
			return fmt.Sprintf("%s %s, %d", i.Op, i.RD, i.Imm)
		}
		return fmt.Sprintf("%s %s, %d", i.Op, i.RS, i.Imm)
	case FmtJump:
		return fmt.Sprintf("%s %s, (%s)", i.Op, i.RD, i.RS)
	case FmtJumpCond:
		return fmt.Sprintf("%s %s, (%s)", i.Op, i.RT, i.RS)
	case FmtOpReg:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.RS, i.RT, i.RD)
	case FmtOpImm:
		return fmt.Sprintf("%s %s, %d, %s", i.Op, i.RS, i.Imm, i.RD)
	case FmtSpecial:
		if i.Op == OpHALT {
			return "halt"
		}
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case FmtCodeword:
		return fmt.Sprintf("%s %d, %d, %d, #%d", i.Op, uint8(i.RS), uint8(i.RT), uint8(i.RD), i.Imm)
	}
	return fmt.Sprintf("%s <bad format>", i.Op)
}

// Nop returns the canonical EVR no-op (bis zero, zero, zero).
func Nop() Inst {
	return Inst{Op: OpBIS, RS: RegZero, RT: RegZero, RD: RegZero}
}

// IsNop reports whether i has no architectural effect. The simulator, like
// the paper's, "extracts nops from both the dynamic instruction stream and
// the static image".
func (i Inst) IsNop() bool {
	switch i.Op {
	case OpBIS, OpADDQ, OpXOR:
		return i.RD == RegZero
	case OpBISI, OpADDQI, OpLDA:
		return i.Op.Format() != FmtMem && i.RD == RegZero
	}
	if i.Op == OpLDA && i.RD == RegZero {
		return true
	}
	return false
}

// Codeword constructs a decoded DISE codeword instruction with the given
// reserved opcode, three 5-bit parameters, and 11-bit replacement sequence
// tag (paper §2.1, "Explicit tagging").
func Codeword(op Opcode, p1, p2, p3 uint8, tag uint16) Inst {
	return Inst{Op: op, RS: Reg(p1 & 0x1f), RT: Reg(p2 & 0x1f), RD: Reg(p3 & 0x1f), Imm: int64(tag & 0x7ff)}
}
