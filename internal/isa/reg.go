package isa

import "fmt"

// Reg is a register number. Application machine code can name the 32
// architectural registers r0..r31. Decoded instructions — in particular DISE
// replacement instructions — can additionally name the DISE dedicated
// registers dr0..dr7, which are invisible to and unencodable by application
// code (paper §2.1, "Dedicated registers").
type Reg uint8

// Register name space.
const (
	// NumArchRegs is the number of architectural integer registers.
	NumArchRegs = 32
	// NumDiseRegs is the number of DISE dedicated registers.
	NumDiseRegs = 8
	// NumRegs is the total decoded register name space (architectural +
	// dedicated).
	NumRegs = NumArchRegs + NumDiseRegs
)

// Well-known registers, following Alpha-like conventions.
const (
	RegV0   Reg = 0  // function result
	RegRA   Reg = 26 // return address
	RegAT   Reg = 28 // assembler temporary
	RegGP   Reg = 29 // global pointer
	RegSP   Reg = 30 // stack pointer
	RegZero Reg = 31 // hardwired zero

	// RegDR0 is the first DISE dedicated register; dedicated register k is
	// RegDR0+k. Only valid in decoded (post-DISE) instructions.
	RegDR0 Reg = 32

	// NoReg marks an unused register slot in a decoded instruction.
	NoReg Reg = 0xFF
)

// IsDedicated reports whether r is a DISE dedicated register.
func (r Reg) IsDedicated() bool {
	return r >= RegDR0 && r < RegDR0+NumDiseRegs
}

// IsArch reports whether r is an architectural register.
func (r Reg) IsArch() bool { return r < NumArchRegs }

// Valid reports whether r names a register (architectural or dedicated).
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the assembler spelling of r ("r7", "$dr2", "sp", ...).
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r == RegSP:
		return "sp"
	case r == RegZero:
		return "zero"
	case r.IsDedicated():
		return fmt.Sprintf("$dr%d", r-RegDR0)
	case r.IsArch():
		return fmt.Sprintf("r%d", uint8(r))
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// RegByName parses an assembler register spelling. The dedicated registers
// ($dr0..$dr7) are accepted only when dise is true (production files);
// application assembly cannot name them. It returns NoReg on failure.
func RegByName(name string, dise bool) Reg {
	switch name {
	case "sp":
		return RegSP
	case "zero":
		return RegZero
	case "ra":
		return RegRA
	case "gp":
		return RegGP
	case "at":
		return RegAT
	case "v0":
		return RegV0
	}
	var n int
	switch {
	case len(name) >= 2 && name[0] == 'r':
		if _, err := fmt.Sscanf(name, "r%d", &n); err == nil && n >= 0 && n < NumArchRegs {
			return Reg(n)
		}
	case dise && len(name) >= 4 && name[0] == '$' && name[1] == 'd' && name[2] == 'r':
		if _, err := fmt.Sscanf(name, "$dr%d", &n); err == nil && n >= 0 && n < NumDiseRegs {
			return RegDR0 + Reg(n)
		}
	}
	return NoReg
}
