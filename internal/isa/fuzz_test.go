package isa

import (
	"errors"
	"testing"
)

// FuzzDecode asserts the decoder's contract over the whole 32-bit word space:
// it never panics, every failure wraps ErrDecode, and every success round-trips
// (Decode∘Encode∘Decode is Decode — don't-care bits may be canonicalized, but
// the decoded instruction is a fixed point).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xffffffff))
	f.Add(uint32(0x3f) << 26) // invalid opcode
	for _, in := range []Inst{
		{Op: OpADDQ, RS: 1, RT: 2, RD: 3},
		{Op: OpLDQ, RS: 4, RD: 5, Imm: -8},
		{Op: OpSTQ, RS: 4, RT: 5, Imm: 16},
		{Op: OpBR, RD: 26, Imm: -100},
		{Op: OpJMP, RD: 26, RS: 27},
		{Op: OpSYS, Imm: 3},
		{Op: OpRES0, RS: 1, RT: 2, RD: 3, Imm: 7},
	} {
		if w, err := Encode(in); err == nil {
			f.Add(w)
		}
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			if !errors.Is(err, ErrDecode) {
				t.Fatalf("Decode(%#08x) error %v does not wrap ErrDecode", w, err)
			}
			return
		}
		if !in.Op.Valid() {
			t.Fatalf("Decode(%#08x) succeeded with invalid opcode %d", w, in.Op)
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("Decode(%#08x) = %v does not re-encode: %v", w, in, err)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded word %#08x does not decode: %v", w2, err)
		}
		if in2 != in {
			t.Fatalf("round trip diverged: %v -> %#08x -> %v", in, w2, in2)
		}
	})
}
