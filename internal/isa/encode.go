package isa

import (
	"errors"
	"fmt"
)

// Machine encoding field layout. All instructions are 4 bytes.
//
//	FmtMem      op(6) ra(5) rb(5) disp16       ra = RD (loads) / RT (stores), rb = RS
//	FmtBranch   op(6) ra(5) disp21             ra = RS (cond) / RD (br, bsr)
//	FmtJump     op(6) rd(5) rs(5) hint16
//	FmtOpReg    op(6) rs(5) rt(5) rd(5) func11
//	FmtOpImm    op(6) rs(5) rd(5) imm16
//	FmtSpecial  op(6) code26
//	FmtCodeword op(6) p1(5) p2(5) p3(5) tag11
//
// Encoding/decoding failures wrap the ErrEncode/ErrDecode sentinels, so
// callers can classify them with errors.Is without matching message text.
var (
	// ErrEncode wraps every error returned by Encode.
	ErrEncode = errors.New("isa: encode")
	// ErrDecode wraps every error returned by Decode.
	ErrDecode = errors.New("isa: decode")
)

// InstBytes is the size of an encoded instruction in bytes.
const InstBytes = 4

// Immediate range limits.
const (
	MaxDisp16 = 1<<15 - 1
	MinDisp16 = -(1 << 15)
	MaxDisp21 = 1<<20 - 1
	MinDisp21 = -(1 << 20)
	MaxTag    = 1<<11 - 1
	MaxCode26 = 1<<26 - 1
)

func sext(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// encodeErr builds an ErrEncode-wrapped error for instruction i.
func encodeErr(i Inst, msg string) error {
	return fmt.Errorf("%w %v: %s", ErrEncode, i, msg)
}

// Encode packs a decoded instruction into its 32-bit machine word. It fails
// (with an error wrapping ErrEncode) if the instruction is not encodable:
// dedicated registers (which only exist inside DISE replacement sequences) or
// out-of-range immediates.
func Encode(i Inst) (uint32, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("%w: invalid opcode %d", ErrEncode, i.Op)
	}
	if i.UsesDedicated() {
		return 0, encodeErr(i, "dedicated registers have no machine encoding")
	}
	op := uint32(i.Op) << 26
	reg := func(r Reg) (uint32, error) {
		if r == NoReg {
			return uint32(RegZero), nil
		}
		if !r.IsArch() {
			return 0, encodeErr(i, fmt.Sprintf("bad register %v", r))
		}
		return uint32(r), nil
	}
	switch i.Op.Format() {
	case FmtMem:
		ra := i.RD
		if i.Op.Class() == ClassStore {
			ra = i.RT
		}
		a, err := reg(ra)
		if err != nil {
			return 0, err
		}
		b, err := reg(i.RS)
		if err != nil {
			return 0, err
		}
		if i.Imm < MinDisp16 || i.Imm > MaxDisp16 {
			return 0, encodeErr(i, "disp16 out of range")
		}
		return op | a<<21 | b<<16 | uint32(uint16(i.Imm)), nil
	case FmtBranch:
		ra := i.RS
		if i.Op == OpBR || i.Op == OpBSR {
			ra = i.RD
		}
		a, err := reg(ra)
		if err != nil {
			return 0, err
		}
		if i.Imm < MinDisp21 || i.Imm > MaxDisp21 {
			return 0, encodeErr(i, "disp21 out of range")
		}
		return op | a<<21 | uint32(i.Imm)&0x1fffff, nil
	case FmtJump:
		d, err := reg(i.RD)
		if err != nil {
			return 0, err
		}
		s, err := reg(i.RS)
		if err != nil {
			return 0, err
		}
		return op | d<<21 | s<<16 | uint32(uint16(i.Imm)), nil
	case FmtJumpCond:
		c, err := reg(i.RT)
		if err != nil {
			return 0, err
		}
		s, err := reg(i.RS)
		if err != nil {
			return 0, err
		}
		return op | c<<21 | s<<16, nil
	case FmtOpReg:
		s, err := reg(i.RS)
		if err != nil {
			return 0, err
		}
		t, err := reg(i.RT)
		if err != nil {
			return 0, err
		}
		d, err := reg(i.RD)
		if err != nil {
			return 0, err
		}
		return op | s<<21 | t<<16 | d<<11, nil
	case FmtOpImm:
		s, err := reg(i.RS)
		if err != nil {
			return 0, err
		}
		d, err := reg(i.RD)
		if err != nil {
			return 0, err
		}
		if i.Imm < MinDisp16 || i.Imm > MaxDisp16 {
			return 0, encodeErr(i, "imm16 out of range")
		}
		return op | s<<21 | d<<16 | uint32(uint16(i.Imm)), nil
	case FmtSpecial:
		if i.Imm < 0 || i.Imm > MaxCode26 {
			return 0, encodeErr(i, "code26 out of range")
		}
		return op | uint32(i.Imm), nil
	case FmtCodeword:
		p1, err := reg(i.RS)
		if err != nil {
			return 0, err
		}
		p2, err := reg(i.RT)
		if err != nil {
			return 0, err
		}
		p3, err := reg(i.RD)
		if err != nil {
			return 0, err
		}
		if i.Imm < 0 || i.Imm > MaxTag {
			return 0, encodeErr(i, "tag out of range")
		}
		return op | p1<<21 | p2<<16 | p3<<11 | uint32(i.Imm), nil
	}
	return 0, encodeErr(i, "bad format")
}

// Decode unpacks a 32-bit machine word into its decoded form. Errors wrap
// ErrDecode.
func Decode(w uint32) (Inst, error) {
	op := Opcode(w >> 26)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("%w %#08x: invalid opcode %d", ErrDecode, w, op)
	}
	i := Inst{Op: op, RS: NoReg, RT: NoReg, RD: NoReg}
	ra := Reg(w >> 21 & 0x1f)
	rb := Reg(w >> 16 & 0x1f)
	switch op.Format() {
	case FmtMem:
		if op.Class() == ClassStore {
			i.RT = ra
		} else {
			i.RD = ra
		}
		i.RS = rb
		i.Imm = sext(w&0xffff, 16)
	case FmtBranch:
		if op == OpBR || op == OpBSR {
			i.RD = ra
		} else {
			i.RS = ra
		}
		i.Imm = sext(w&0x1fffff, 21)
	case FmtJump:
		i.RD = ra
		i.RS = rb
		i.Imm = int64(w & 0xffff)
	case FmtJumpCond:
		i.RT = ra
		i.RS = rb
	case FmtOpReg:
		i.RS = ra
		i.RT = rb
		i.RD = Reg(w >> 11 & 0x1f)
	case FmtOpImm:
		i.RS = ra
		i.RD = rb
		i.Imm = sext(w&0xffff, 16)
	case FmtSpecial:
		i.Imm = int64(w & 0x3ffffff)
	case FmtCodeword:
		i.RS = ra
		i.RT = rb
		i.RD = Reg(w >> 11 & 0x1f)
		i.Imm = int64(w & 0x7ff)
	}
	return i, nil
}

// MustEncode is Encode for instructions known to be encodable; it panics on
// error. The panic marks a programmer error (a generator emitting literal
// code it promised was encodable), never a data-dependent condition: code
// handling guest-controlled instructions must call Encode.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}
