package isa

import (
	"encoding/binary"
	"errors"
	"testing"
)

func TestEncode2RoundTrip(t *testing.T) {
	for _, op := range []Opcode{OpRES0, OpRES1, OpRES2, OpRES3} {
		for _, tag := range []uint16{0, 1, 511, MaxTag2} {
			in := Codeword(op, 0, 0, 0, tag)
			h, err := Encode2(in)
			if err != nil {
				t.Fatalf("Encode2(%v): %v", in, err)
			}
			got, err := Decode2(h)
			if err != nil {
				t.Fatalf("Decode2(%#04x): %v", h, err)
			}
			if got != in {
				t.Errorf("round trip %v -> %#04x -> %v", in, h, got)
			}
		}
	}
}

func TestEncode2Rejects(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
	}{
		{"non-codeword", Inst{Op: OpADDQ, RS: 1, RT: 2, RD: 3}},
		{"store", Inst{Op: OpSTQ, RT: 1, RS: 2, Imm: 8}},
		{"tag too wide", Codeword(OpRES3, 0, 0, 0, MaxTag2+1)},
		{"param p1", Codeword(OpRES3, 5, 0, 0, 1)},
		{"param p2", Codeword(OpRES3, 0, 5, 0, 1)},
		{"param p3", Codeword(OpRES3, 0, 0, 5, 1)},
	}
	for _, c := range cases {
		if _, err := Encode2(c.in); !errors.Is(err, ErrEncode) {
			t.Errorf("%s: Encode2(%v) = %v, want ErrEncode", c.name, c.in, err)
		}
	}
	// MaxTag (11-bit) codewords are encodable in the 4-byte form but not the
	// 2-byte form: the halfword has only 10 payload bits.
	wide := Codeword(OpRES0, 0, 0, 0, MaxTag)
	if _, err := Encode(wide); err != nil {
		t.Fatalf("Encode(%v): %v", wide, err)
	}
	if _, err := Encode2(wide); !errors.Is(err, ErrEncode) {
		t.Errorf("Encode2(%v) accepted an 11-bit tag", wide)
	}
}

func TestDecode2RejectsNonCodeword(t *testing.T) {
	for _, h := range []uint16{
		uint16(OpADDQ) << 10,
		uint16(OpInvalid) << 10,
		uint16(OpHALT)<<10 | 7,
		0xffff,
	} {
		if _, err := Decode2(h); !errors.Is(err, ErrDecode) {
			t.Errorf("Decode2(%#04x) = %v, want ErrDecode", h, err)
		}
	}
}

// TestHalfwordFusion pins the failure mode that makes per-byte ground truth
// necessary: two adjacent 2-byte codewords, read as one word-aligned 32-bit
// fetch, decode as a single valid instruction that is neither of them. The
// fused word's opcode field lands on the *second* codeword's opcode bits
// (little-endian layout), so a naive sweep does not even fault — it reports
// a plausible codeword with garbage parameters.
func TestHalfwordFusion(t *testing.T) {
	cw1 := Codeword(OpRES3, 0, 0, 0, 17)
	cw2 := Codeword(OpRES3, 0, 0, 0, 901)
	h1, err := Encode2(cw1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Encode2(cw2)
	if err != nil {
		t.Fatal(err)
	}
	var img [4]byte
	binary.LittleEndian.PutUint16(img[0:], h1)
	binary.LittleEndian.PutUint16(img[2:], h2)
	fused, err := Decode(binary.LittleEndian.Uint32(img[:]))
	if err != nil {
		t.Fatalf("fused word does not decode at all: %v", err)
	}
	if fused == cw1 || fused == cw2 {
		t.Fatalf("fused decode %v coincides with a real unit", fused)
	}
	if fused.Op != OpRES3 {
		t.Errorf("fused opcode %v; the misparse should land on cw2's opcode bits", fused.Op)
	}
	if fused.Imm == cw1.Imm || fused.Imm == cw2.Imm {
		t.Errorf("fused tag %d coincides with a real tag", fused.Imm)
	}
}

// TestHalfwordMisalignmentCascade pins the second failure mode: one 2-byte
// codeword followed by natural words knocks every subsequent word-aligned
// read off by two bytes, fusing the tail of each instruction with the head
// of the next — operand payload parsed as instruction heads, indefinitely.
func TestHalfwordMisalignmentCascade(t *testing.T) {
	cw := Codeword(OpRES3, 0, 0, 0, 3)
	natural := []Inst{
		{Op: OpADDQI, RS: 1, RD: 2, Imm: 100},
		{Op: OpSTQ, RT: 2, RS: 30, Imm: 16},
		{Op: OpHALT},
	}
	h, err := Encode2(cw)
	if err != nil {
		t.Fatal(err)
	}
	img := binary.LittleEndian.AppendUint16(nil, h)
	for _, in := range natural {
		w, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		img = binary.LittleEndian.AppendUint32(img, w)
	}
	// 14 image bytes: a naive aligned sweep sees 3 whole words, none of
	// which may equal any real unit.
	real := map[Inst]bool{cw: true}
	for _, in := range natural {
		real[in] = true
	}
	for at := 0; at+4 <= len(img); at += 4 {
		in, err := Decode(binary.LittleEndian.Uint32(img[at:]))
		if err != nil {
			continue // a faulting word is at least an honest failure
		}
		if real[in] {
			t.Errorf("misaligned word at byte %d decodes to real unit %v", at, in)
		}
	}
}
