package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeTableComplete(t *testing.T) {
	for _, op := range Opcodes() {
		if op.String() == "" || op.String() == "invalid" {
			t.Errorf("opcode %d has no name", op)
		}
		if op.Class() == ClassInvalid {
			t.Errorf("opcode %v has no class", op)
		}
		if op.Format() == FmtInvalid {
			t.Errorf("opcode %v has no format", op)
		}
	}
}

func TestOpcodeByNameRoundTrip(t *testing.T) {
	for _, op := range Opcodes() {
		if got := OpcodeByName(op.String()); got != op {
			t.Errorf("OpcodeByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if got := OpcodeByName("nosuch"); got != OpInvalid {
		t.Errorf("OpcodeByName(nosuch) = %v, want OpInvalid", got)
	}
}

func TestClassByName(t *testing.T) {
	cases := map[string]Class{
		"load": ClassLoad, "store": ClassStore, "condbr": ClassCondBr,
		"jump": ClassJump, "codeword": ClassCodeword, "bogus": ClassInvalid,
	}
	for name, want := range cases {
		if got := ClassByName(name); got != want {
			t.Errorf("ClassByName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestRegNames(t *testing.T) {
	cases := []struct {
		name string
		dise bool
		want Reg
	}{
		{"r0", false, 0},
		{"r31", false, RegZero},
		{"sp", false, RegSP},
		{"ra", false, RegRA},
		{"$dr0", true, RegDR0},
		{"$dr7", true, RegDR0 + 7},
		{"$dr0", false, NoReg}, // dedicated regs invisible to app asm
		{"$dr8", true, NoReg},  // out of range
		{"r32", false, NoReg},  // out of range
		{"bogus", false, NoReg},
	}
	for _, c := range cases {
		if got := RegByName(c.name, c.dise); got != c.want {
			t.Errorf("RegByName(%q, %v) = %v, want %v", c.name, c.dise, got, c.want)
		}
	}
}

func TestRegStringRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		if got := RegByName(r.String(), true); got != r {
			t.Errorf("RegByName(%q) = %v, want %v", r.String(), got, r)
		}
	}
}

func TestDedicatedRegisterPredicates(t *testing.T) {
	if RegDR0.IsArch() || !RegDR0.IsDedicated() {
		t.Error("RegDR0 should be dedicated, not architectural")
	}
	if !RegSP.IsArch() || RegSP.IsDedicated() {
		t.Error("RegSP should be architectural")
	}
	if NoReg.Valid() {
		t.Error("NoReg should not be valid")
	}
}

func TestEncodeDecodeExamples(t *testing.T) {
	cases := []Inst{
		{Op: OpLDQ, RD: 1, RS: 2, RT: NoReg, Imm: 8},
		{Op: OpSTQ, RT: 3, RS: RegSP, RD: NoReg, Imm: -16},
		{Op: OpLDA, RD: 4, RS: 4, RT: NoReg, Imm: 100},
		{Op: OpBEQ, RS: 5, RT: NoReg, RD: NoReg, Imm: -3},
		{Op: OpBR, RD: RegZero, RS: NoReg, RT: NoReg, Imm: 1000},
		{Op: OpBSR, RD: RegRA, RS: NoReg, RT: NoReg, Imm: -200},
		{Op: OpJSR, RD: RegRA, RS: 9, RT: NoReg, Imm: 0},
		{Op: OpRET, RD: RegZero, RS: RegRA, RT: NoReg, Imm: 0},
		{Op: OpADDQ, RS: 1, RT: 2, RD: 3},
		{Op: OpSRLI, RS: 7, RD: 8, RT: NoReg, Imm: 26},
		{Op: OpHALT, RS: NoReg, RT: NoReg, RD: NoReg, Imm: 0},
		{Op: OpSYS, RS: NoReg, RT: NoReg, RD: NoReg, Imm: SysPutInt},
		Codeword(OpRES0, 1, 2, 3, 2047),
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", in, err)
		}
		if out != in {
			t.Errorf("round trip %v -> %#08x -> %v", in, w, out)
		}
	}
}

func TestEncodeRejectsDedicated(t *testing.T) {
	i := Inst{Op: OpADDQ, RS: RegDR0, RT: 2, RD: 3}
	if _, err := Encode(i); err == nil {
		t.Error("Encode should reject dedicated registers")
	}
}

func TestEncodeRejectsOutOfRangeImm(t *testing.T) {
	cases := []Inst{
		{Op: OpLDQ, RD: 1, RS: 2, RT: NoReg, Imm: 1 << 20},
		{Op: OpBEQ, RS: 1, RT: NoReg, RD: NoReg, Imm: 1 << 30},
		{Op: OpADDQI, RS: 1, RD: 2, RT: NoReg, Imm: -(1 << 20)},
		Codeword(OpRES0, 0, 0, 0, 0).withImm(4096),
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) should fail", in)
		}
	}
}

func (i Inst) withImm(v int64) Inst { i.Imm = v; return i }

// randomEncodable generates a random encodable instruction, for the
// property-based round-trip test.
func randomEncodable(r *rand.Rand) Inst {
	ops := Opcodes()
	op := ops[r.Intn(len(ops))]
	i := Inst{Op: op, RS: NoReg, RT: NoReg, RD: NoReg}
	ar := func() Reg { return Reg(r.Intn(NumArchRegs)) }
	switch op.Format() {
	case FmtMem:
		i.RS = ar()
		i.Imm = int64(int16(r.Uint32()))
		if op.Class() == ClassStore {
			i.RT = ar()
		} else {
			i.RD = ar()
		}
	case FmtBranch:
		i.Imm = int64(sext(r.Uint32()&0x1fffff, 21))
		if op == OpBR || op == OpBSR {
			i.RD = ar()
		} else {
			i.RS = ar()
		}
	case FmtJump:
		i.RD, i.RS = ar(), ar()
		i.Imm = int64(uint16(r.Uint32()))
	case FmtJumpCond:
		i.RT, i.RS = ar(), ar()
	case FmtOpReg:
		i.RS, i.RT, i.RD = ar(), ar(), ar()
	case FmtOpImm:
		i.RS, i.RD = ar(), ar()
		i.Imm = int64(int16(r.Uint32()))
	case FmtSpecial:
		i.Imm = int64(r.Uint32() & 0x3ffffff)
	case FmtCodeword:
		i.RS, i.RT, i.RD = ar(), ar(), ar()
		i.Imm = int64(r.Uint32() & 0x7ff)
	}
	return i
}

func TestEncodeDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomEncodable(r)
		w, err := Encode(in)
		if err != nil {
			t.Logf("Encode(%v): %v", in, err)
			return false
		}
		out, err := Decode(w)
		if err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint32(63) << 26); err == nil {
		t.Error("Decode should reject invalid opcode field")
	}
}

func TestDestAndSources(t *testing.T) {
	cases := []struct {
		in   Inst
		dest Reg
		nsrc int
	}{
		{Inst{Op: OpLDQ, RD: 1, RS: 2, RT: NoReg, Imm: 0}, 1, 1},
		{Inst{Op: OpSTQ, RT: 3, RS: 2, RD: NoReg, Imm: 0}, NoReg, 2},
		{Inst{Op: OpADDQ, RS: 1, RT: 2, RD: 3}, 3, 2},
		{Inst{Op: OpADDQI, RS: 1, RD: 3, RT: NoReg, Imm: 5}, 3, 1},
		{Inst{Op: OpBEQ, RS: 4, RT: NoReg, RD: NoReg, Imm: 2}, NoReg, 1},
		{Inst{Op: OpBSR, RD: RegRA, RS: NoReg, RT: NoReg, Imm: 2}, RegRA, 0},
		{Inst{Op: OpRET, RD: RegZero, RS: RegRA, RT: NoReg}, RegZero, 1},
		// reads of the zero register are not dependencies
		{Inst{Op: OpADDQ, RS: RegZero, RT: RegZero, RD: 3}, 3, 0},
	}
	for _, c := range cases {
		if got := c.in.Dest(); got != c.dest {
			t.Errorf("%v.Dest() = %v, want %v", c.in, got, c.dest)
		}
		if got := len(c.in.Sources()); got != c.nsrc {
			t.Errorf("%v.Sources() has %d regs, want %d", c.in, got, c.nsrc)
		}
	}
}

func TestNop(t *testing.T) {
	if !Nop().IsNop() {
		t.Error("Nop() should be a nop")
	}
	if (Inst{Op: OpADDQ, RS: 1, RT: 2, RD: 3}).IsNop() {
		t.Error("addq r1,r2,r3 is not a nop")
	}
	if !(Inst{Op: OpBIS, RS: 5, RT: 6, RD: RegZero}).IsNop() {
		t.Error("bis with zero dest is a nop")
	}
}

func TestBranchTarget(t *testing.T) {
	i := Inst{Op: OpBEQ, RS: 1, RT: NoReg, RD: NoReg, Imm: 3}
	if got := i.BranchTarget(0x1000); got != 0x1000+4+12 {
		t.Errorf("BranchTarget = %#x", got)
	}
	i.Imm = -1
	if got := i.BranchTarget(0x1000); got != 0x1000 {
		t.Errorf("BranchTarget backward = %#x", got)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpLDQ, RD: 1, RS: 2, RT: NoReg, Imm: 8}, "ldq r1, 8(r2)"},
		{Inst{Op: OpSTQ, RT: 1, RS: RegSP, RD: NoReg, Imm: -8}, "stq r1, -8(sp)"},
		{Inst{Op: OpADDQ, RS: 1, RT: 2, RD: 3}, "addq r1, r2, r3"},
		{Inst{Op: OpHALT}, "halt"},
		{Inst{Op: OpADDQ, RS: RegDR0, RT: RegDR0 + 1, RD: RegDR0 + 2}, "addq $dr0, $dr1, $dr2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCodewordFields(t *testing.T) {
	cw := Codeword(OpRES1, 31, 17, 5, 1234)
	if cw.RS != 31 || cw.RT != 17 || cw.RD != 5 || cw.Imm != 1234 {
		t.Errorf("Codeword fields wrong: %+v", cw)
	}
	if cw.Op.Class() != ClassCodeword {
		t.Error("codeword should be ClassCodeword")
	}
	// Parameters are masked to 5 bits, tag to 11.
	cw = Codeword(OpRES0, 0xFF, 0, 0, 0xFFFF)
	if cw.RS != 31 || cw.Imm != 0x7ff {
		t.Errorf("Codeword masking wrong: %+v", cw)
	}
}
