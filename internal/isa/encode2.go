package isa

import "fmt"

// Halfword codeword encoding. The dedicated-decompressor baseline (paper §4)
// shrinks dictionary codewords to 2 bytes: op(6) tag(10). After the 6-bit
// reserved opcode a halfword has only 10 payload bits, so the 2-byte form
// carries a dictionary index and nothing else — no parameter slots, which is
// why the dedicated compression configuration disables parameterization and
// caps its dictionary at 1024 entries.
//
// Halfwords are stored little-endian in the text image, like full words.
// Their presence is exactly what breaks naive 4-byte-aligned disassembly:
// past an odd number of halfwords every word-aligned read fuses the tail of
// one unit with the head of the next.

// InstBytes2 is the size of an encoded 2-byte codeword.
const InstBytes2 = 2

// MaxTag2 is the largest tag representable in the 2-byte codeword form.
const MaxTag2 = 1<<10 - 1

// Encode2 packs a codeword instruction into its 16-bit halfword form. Only
// reserved-opcode instructions with empty parameter slots and a tag below
// 1<<10 have such a form; everything else fails with ErrEncode.
func Encode2(i Inst) (uint16, error) {
	if i.Op.Class() != ClassCodeword {
		return 0, encodeErr(i, "only codewords have a 2-byte form")
	}
	for _, r := range [...]Reg{i.RS, i.RT, i.RD} {
		if r != 0 && r != NoReg {
			return 0, encodeErr(i, "2-byte codewords carry no parameters")
		}
	}
	if i.Imm < 0 || i.Imm > MaxTag2 {
		return 0, encodeErr(i, "tag out of 10-bit range")
	}
	return uint16(i.Op)<<10 | uint16(i.Imm), nil
}

// Decode2 unpacks a 16-bit halfword into its decoded codeword form. Errors
// wrap ErrDecode.
func Decode2(h uint16) (Inst, error) {
	op := Opcode(h >> 10)
	if op.Class() != ClassCodeword {
		return Inst{}, fmt.Errorf("%w %#04x: opcode %d is not a codeword", ErrDecode, h, op)
	}
	return Codeword(op, 0, 0, 0, h&MaxTag2), nil
}
