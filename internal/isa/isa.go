// Package isa defines EVR, a 64-bit Alpha-like RISC instruction set used as
// the target architecture for the DISE reproduction. EVR has fixed 32-bit
// instruction words, 32 general-purpose registers, and a small set of
// reserved opcodes whose instances ("codewords") never occur naturally and
// are available to aware DISE application customization functions.
//
// The package provides the instruction representation shared by the
// assembler, the functional emulator, the cycle-level pipeline model, and
// the DISE engine: opcodes and opcode classes, register names (including the
// DISE dedicated registers that are representable only in decoded form, not
// in machine words), and binary encoding/decoding.
package isa

import "fmt"

// Opcode identifies an EVR operation.
type Opcode uint8

// Opcodes. The numeric values are the 6-bit primary opcode field of the
// machine encoding.
const (
	OpInvalid Opcode = iota

	// Memory format: op rd, disp16(rs)
	OpLDQ  // rd = mem64[rs+disp]
	OpLDL  // rd = sext32(mem32[rs+disp])
	OpSTQ  // mem64[rs+disp] = rt
	OpSTL  // mem32[rs+disp] = low32(rt)
	OpLDA  // rd = rs + disp
	OpLDAH // rd = rs + disp<<16

	// Branch format: op rs, disp21 (PC-relative, in words)
	OpBR  // rd = PC+4; PC += 4 + disp*4 (rd in RS slot)
	OpBSR // call: rd = PC+4; PC += 4 + disp*4
	OpBEQ
	OpBNE
	OpBLT
	OpBLE
	OpBGT
	OpBGE

	// Jump format: op rd, (rs)
	OpJMP // rd = PC+4; PC = rs &^ 3
	OpJSR // call through register
	OpRET // return through register

	// Conditional jump format: op rc, (rs) — jump to rs if rc ==/!= 0.
	// Provided for DISE replacement sequences that must conditionally
	// escape to a handler whose address lives in a (dedicated) register,
	// e.g. memory fault isolation's error exit (paper Figure 1).
	OpJEQ
	OpJNE

	// Operate register format: op rs, rt, rd
	OpADDQ
	OpSUBQ
	OpMULQ
	OpAND
	OpBIS // logical OR ("bit set")
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpCMPEQ
	OpCMPLT
	OpCMPLE
	OpCMPULT
	OpCMPULE

	// Operate immediate format: op rs, imm16, rd
	OpADDQI
	OpSUBQI
	OpMULQI
	OpANDI
	OpBISI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpCMPEQI
	OpCMPLTI
	OpCMPULTI

	// Special format: op code26
	OpHALT
	OpSYS // lightweight "system call": code selects a host service

	// Reserved opcodes for DISE codewords. Format: op p1, p2, p3, tag11.
	// These never occur in natural code; aware ACFs plant them.
	OpRES0
	OpRES1
	OpRES2
	OpRES3

	numOpcodes
)

// NumOpcodes is the number of defined opcodes (including OpInvalid).
const NumOpcodes = int(numOpcodes)

// Class is a coarse opcode category. DISE pattern specifications may match
// on classes ("all stores") as well as exact opcodes.
type Class uint8

// Opcode classes.
const (
	ClassInvalid Class = iota
	ClassLoad
	ClassStore
	ClassCondBr
	ClassUncondBr // BR, BSR
	ClassJump     // JMP, JSR, RET (indirect control)
	ClassIntOp    // register-register and register-immediate ALU ops
	ClassSpecial  // HALT, SYS
	ClassCodeword // reserved opcodes
	NumClasses
)

// Format describes the field layout of an opcode's machine encoding.
type Format uint8

// Instruction formats.
const (
	FmtInvalid  Format = iota
	FmtMem             // op(6) ra(5) rb(5) disp16: ra=RD for loads/LDA, ra=RT(value) for stores
	FmtBranch          // op(6) ra(5) disp21
	FmtJump            // op(6) rd(5) rs(5) hint16
	FmtJumpCond        // op(6) rc(5) rs(5) pad16: rc = condition (RT slot)
	FmtOpReg           // op(6) rs(5) rt(5) rd(5) func11
	FmtOpImm           // op(6) rs(5) rd(5) imm16
	FmtSpecial         // op(6) code26
	FmtCodeword        // op(6) p1(5) p2(5) p3(5) tag11
)

type opInfo struct {
	name   string
	class  Class
	format Format
}

var opTable = [numOpcodes]opInfo{
	OpInvalid: {"invalid", ClassInvalid, FmtInvalid},

	OpLDQ:  {"ldq", ClassLoad, FmtMem},
	OpLDL:  {"ldl", ClassLoad, FmtMem},
	OpSTQ:  {"stq", ClassStore, FmtMem},
	OpSTL:  {"stl", ClassStore, FmtMem},
	OpLDA:  {"lda", ClassIntOp, FmtMem},
	OpLDAH: {"ldah", ClassIntOp, FmtMem},

	OpBR:  {"br", ClassUncondBr, FmtBranch},
	OpBSR: {"bsr", ClassUncondBr, FmtBranch},
	OpBEQ: {"beq", ClassCondBr, FmtBranch},
	OpBNE: {"bne", ClassCondBr, FmtBranch},
	OpBLT: {"blt", ClassCondBr, FmtBranch},
	OpBLE: {"ble", ClassCondBr, FmtBranch},
	OpBGT: {"bgt", ClassCondBr, FmtBranch},
	OpBGE: {"bge", ClassCondBr, FmtBranch},

	OpJMP: {"jmp", ClassJump, FmtJump},
	OpJSR: {"jsr", ClassJump, FmtJump},
	OpRET: {"ret", ClassJump, FmtJump},
	OpJEQ: {"jeq", ClassJump, FmtJumpCond},
	OpJNE: {"jne", ClassJump, FmtJumpCond},

	OpADDQ:   {"addq", ClassIntOp, FmtOpReg},
	OpSUBQ:   {"subq", ClassIntOp, FmtOpReg},
	OpMULQ:   {"mulq", ClassIntOp, FmtOpReg},
	OpAND:    {"and", ClassIntOp, FmtOpReg},
	OpBIS:    {"bis", ClassIntOp, FmtOpReg},
	OpXOR:    {"xor", ClassIntOp, FmtOpReg},
	OpSLL:    {"sll", ClassIntOp, FmtOpReg},
	OpSRL:    {"srl", ClassIntOp, FmtOpReg},
	OpSRA:    {"sra", ClassIntOp, FmtOpReg},
	OpCMPEQ:  {"cmpeq", ClassIntOp, FmtOpReg},
	OpCMPLT:  {"cmplt", ClassIntOp, FmtOpReg},
	OpCMPLE:  {"cmple", ClassIntOp, FmtOpReg},
	OpCMPULT: {"cmpult", ClassIntOp, FmtOpReg},
	OpCMPULE: {"cmpule", ClassIntOp, FmtOpReg},

	OpADDQI:   {"addqi", ClassIntOp, FmtOpImm},
	OpSUBQI:   {"subqi", ClassIntOp, FmtOpImm},
	OpMULQI:   {"mulqi", ClassIntOp, FmtOpImm},
	OpANDI:    {"andi", ClassIntOp, FmtOpImm},
	OpBISI:    {"bisi", ClassIntOp, FmtOpImm},
	OpXORI:    {"xori", ClassIntOp, FmtOpImm},
	OpSLLI:    {"slli", ClassIntOp, FmtOpImm},
	OpSRLI:    {"srli", ClassIntOp, FmtOpImm},
	OpSRAI:    {"srai", ClassIntOp, FmtOpImm},
	OpCMPEQI:  {"cmpeqi", ClassIntOp, FmtOpImm},
	OpCMPLTI:  {"cmplti", ClassIntOp, FmtOpImm},
	OpCMPULTI: {"cmpulti", ClassIntOp, FmtOpImm},

	OpHALT: {"halt", ClassSpecial, FmtSpecial},
	OpSYS:  {"sys", ClassSpecial, FmtSpecial},

	OpRES0: {"res0", ClassCodeword, FmtCodeword},
	OpRES1: {"res1", ClassCodeword, FmtCodeword},
	OpRES2: {"res2", ClassCodeword, FmtCodeword},
	OpRES3: {"res3", ClassCodeword, FmtCodeword},
}

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if int(op) >= len(opTable) {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Class returns the opcode class of op.
func (op Opcode) Class() Class {
	if int(op) >= len(opTable) {
		return ClassInvalid
	}
	return opTable[op].class
}

// Format returns the encoding format of op.
func (op Opcode) Format() Format {
	if int(op) >= len(opTable) {
		return FmtInvalid
	}
	return opTable[op].format
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	return op > OpInvalid && op < numOpcodes
}

// IsBranch reports whether op is any PC-relative branch (conditional or not).
func (op Opcode) IsBranch() bool {
	c := op.Class()
	return c == ClassCondBr || c == ClassUncondBr
}

// IsControl reports whether op changes the PC (branch, jump, call, return).
func (op Opcode) IsControl() bool {
	c := op.Class()
	return c == ClassCondBr || c == ClassUncondBr || c == ClassJump
}

// IsMem reports whether op accesses data memory.
func (op Opcode) IsMem() bool {
	c := op.Class()
	return c == ClassLoad || c == ClassStore
}

var classNames = [NumClasses]string{
	ClassInvalid:  "invalid",
	ClassLoad:     "load",
	ClassStore:    "store",
	ClassCondBr:   "condbr",
	ClassUncondBr: "ubr",
	ClassJump:     "jump",
	ClassIntOp:    "intop",
	ClassSpecial:  "special",
	ClassCodeword: "codeword",
}

// String returns the name of the class as used by the production language
// (e.g. "store" in "T.OPCLASS == store").
func (c Class) String() string {
	if int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", uint8(c))
	}
	return classNames[c]
}

// ClassByName maps a production-language class name to its Class. It returns
// ClassInvalid for unknown names.
func ClassByName(name string) Class {
	for c, n := range classNames {
		if n == name && Class(c) != ClassInvalid {
			return Class(c)
		}
	}
	return ClassInvalid
}

// OpcodeByName maps an assembler mnemonic to its Opcode. It returns
// OpInvalid for unknown mnemonics.
func OpcodeByName(name string) Opcode {
	for op, info := range opTable {
		if info.name == name && Opcode(op) != OpInvalid {
			return Opcode(op)
		}
	}
	return OpInvalid
}

// Opcodes returns all defined opcodes in numeric order, excluding OpInvalid.
func Opcodes() []Opcode {
	ops := make([]Opcode, 0, int(numOpcodes)-1)
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		ops = append(ops, op)
	}
	return ops
}

// SYS service codes (the 26-bit code field of OpSYS).
const (
	SysPutChar = 1 // print low byte of r1 to the emulator's output
	SysPutInt  = 2 // print r1 as a decimal integer
	SysError   = 3 // abort execution: an ACF detected a violation
)
