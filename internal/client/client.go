// Package client is the typed Go SDK for the disesrvd HTTP API
// (docs/API.md). It wraps the three endpoints — POST /v1/jobs, GET
// /healthz, GET /stats — behind context-aware methods on a reusable
// Client:
//
//   - connections are pooled and reused across requests (the default
//     transport raises the per-host idle limit so a load generator does not
//     open a socket per job);
//
//   - transient failures — transport errors, 429 queue overflow, non-drain
//     503s — are retried with jittered exponential backoff, honoring the
//     server's Retry-After hint, under a bounded attempt budget. Retrying a
//     submission is safe by construction: job results are deterministic
//     functions of the request and content-addressed by the server's trace
//     cache, so a duplicate execution can only produce the identical bytes
//     (and usually just hits the cache);
//
//   - failures are typed: HTTP-level outcomes become *APIError values
//     matchable with errors.Is against the sentinel for their status class,
//     and architecturally trapped jobs surface as *TrapError values
//     mirroring the emulator's emu.TrapKind taxonomy.
//
// The deterministic result body is kept as raw bytes (JobResponse.Result),
// so callers can assert byte-identity across resubmissions — the property
// the serving layer's cache contract guarantees — before decoding.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/emu"
	"repro/internal/server"
)

// Sentinel errors classifying SDK failures; match with errors.Is. The
// status-class sentinels also match the *APIError carrying them.
var (
	// ErrOverloaded: the admission queue was full (HTTP 429).
	ErrOverloaded = errors.New("server overloaded")
	// ErrUnavailable: the server is draining or otherwise refusing work
	// (HTTP 503).
	ErrUnavailable = errors.New("server unavailable")
	// ErrInvalid: the server rejected the job at validation (HTTP 400).
	ErrInvalid = errors.New("invalid job")
	// ErrJobTimeout: the job's wall-clock deadline expired server-side
	// (HTTP 504). Not retried — a retry would spend the same deadline again.
	ErrJobTimeout = errors.New("job deadline exceeded")
	// ErrRetryBudget: the retry budget was exhausted without a terminal
	// answer; the error chain includes the last attempt's failure.
	ErrRetryBudget = errors.New("retry budget exhausted")
)

// APIError is a non-200 answer from the server, or the terminal failure of
// the retry loop. errors.Is matches it against the sentinel for its status
// (429 → ErrOverloaded, 503 → ErrUnavailable, 400 → ErrInvalid,
// 504 → ErrJobTimeout).
type APIError struct {
	Status     int           // HTTP status code (0 for pure transport errors)
	Outcome    string        // server outcome string ("rejected", "unavailable", ...)
	Message    string        // server error text
	RetryAfter time.Duration // parsed Retry-After hint, 0 when absent
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %d %s: %s", e.Status, e.Outcome, e.Message)
	}
	return fmt.Sprintf("server: %d %s", e.Status, e.Outcome)
}

// Is matches the sentinel corresponding to the error's HTTP status.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.Status == http.StatusTooManyRequests
	case ErrUnavailable:
		return e.Status == http.StatusServiceUnavailable
	case ErrInvalid:
		return e.Status == http.StatusBadRequest
	case ErrJobTimeout:
		return e.Status == http.StatusGatewayTimeout
	}
	return false
}

// TrapError reports a job that ran to an architectural trap (outcome
// "trapped"): the simulation itself succeeded, the guest program died. Kind
// mirrors the emulator's trap taxonomy (emu.TrapKind), recovered from the
// wire form of ResultPayload.Trap.
type TrapError struct {
	Kind   emu.TrapKind
	Detail string // ResultPayload.Error: the trap's full message
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("job trapped: %s: %s", e.Kind, e.Detail)
}

// trapKinds maps the wire form of a trap kind back to the emulator's
// enumeration, built from the authoritative String method so the two can
// never drift.
var trapKinds = func() map[string]emu.TrapKind {
	m := make(map[string]emu.TrapKind, int(emu.NumTrapKinds))
	for k := emu.TrapKind(0); k < emu.NumTrapKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// JobResponse is the SDK's view of one POST /v1/jobs answer. Result is the
// deterministic payload as raw bytes: for a given request it is
// byte-identical across resubmissions (live, cached, or retried), so
// callers can compare it directly before decoding.
type JobResponse struct {
	ID      string          `json:"id"`
	Outcome string          `json:"outcome"` // "done" or "trapped"
	Cached  bool            `json:"cached"`
	QueueUS int64           `json:"queue_us"`
	RunUS   int64           `json:"run_us"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Payload decodes the deterministic result body.
func (r *JobResponse) Payload() (*server.ResultPayload, error) {
	if len(r.Result) == 0 {
		return nil, fmt.Errorf("response %s has no result", r.ID)
	}
	var p server.ResultPayload
	if err := json.Unmarshal(r.Result, &p); err != nil {
		return nil, fmt.Errorf("decoding result: %w", err)
	}
	return &p, nil
}

// Trap returns the job's architectural trap as a typed error, or nil for a
// clean halt. An unrecognized wire kind maps to emu.TrapNone rather than an
// error: the detail text still carries the full story.
func (r *JobResponse) Trap() *TrapError {
	if r.Outcome != "trapped" {
		return nil
	}
	p, err := r.Payload()
	if err != nil || p.Trap == "" {
		return &TrapError{Detail: r.Error}
	}
	return &TrapError{Kind: trapKinds[p.Trap], Detail: p.Error}
}

// RetryPolicy bounds and shapes the retry loop. The zero value takes the
// documented defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 5). 1 disables retries.
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule: attempt k waits
	// ~BaseBackoff·2^(k-1), capped at MaxBackoff (defaults 100ms, 5s). A
	// server Retry-After hint raises the wait when it is longer.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter perturbs a computed delay; the default draws uniformly from
	// [d/2, d] so synchronized clients spread out. Tests substitute a
	// deterministic function.
	Jitter func(d time.Duration) time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Jitter == nil {
		p.Jitter = func(d time.Duration) time.Duration {
			if d <= 0 {
				return 0
			}
			return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		}
	}
	return p
}

// API is the submission surface shared by the single-node Client and the
// fleet-routing FleetClient, so harnesses (internal/load) drive either
// through one interface.
type API interface {
	Submit(ctx context.Context, req *server.SubmitRequest) (*JobResponse, error)
	BatchCollect(ctx context.Context, req *server.BatchRequest) ([]*BatchCell, *server.BatchSummary, error)
}

// Client talks to one disesrvd instance. It is safe for concurrent use;
// the load generator shares one across all its workers so the connection
// pool is shared too.
type Client struct {
	base   string
	hc     *http.Client
	policy RetryPolicy
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetryPolicy substitutes the retry policy.
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.policy = p } }

// sharedTransport is the package-wide connection pool. Every Client built
// by New shares it, so a fleet of per-node clients keeps one idle-socket
// budget with per-host reuse instead of multiplying pools per node — the
// transport already keys idle connections by host. Callers needing
// isolation pass WithHTTPClient.
var sharedTransport = func() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 1024
	t.MaxIdleConnsPerHost = 256
	return t
}()

// New builds a Client for the server at base — a host:port or an http://
// URL. All Clients share one pooled transport (per-host connection reuse),
// so sustained concurrent load reuses sockets and a multi-node fleet does
// not multiply idle-connection pools.
func New(base string, opts ...Option) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Transport: sharedTransport},
	}
	for _, o := range opts {
		o(c)
	}
	c.policy = c.policy.withDefaults()
	return c
}

// Base returns the normalized base URL the client talks to.
func (c *Client) Base() string { return c.base }

// Submit runs one job, retrying transport errors, 429s and non-drain 503s
// under the client's retry policy. A 200 answer is returned whether the
// guest program halted cleanly or trapped — use JobResponse.Trap to
// distinguish. Terminal failures return an error matchable with errors.Is
// against the sentinel classes; when the retry budget runs out the error
// additionally matches ErrRetryBudget.
func (c *Client) Submit(ctx context.Context, req *server.SubmitRequest) (*JobResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encoding request: %w", err)
	}
	var last error
	for attempt := 1; attempt <= c.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := c.sleep(ctx, c.backoff(attempt-1, last)); err != nil {
				return nil, err
			}
		}
		jr, err := c.submitOnce(ctx, body, "")
		if err == nil {
			return jr, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !retryable(err) {
			return nil, err
		}
		last = err
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrRetryBudget, c.policy.MaxAttempts, last)
}

// submitOnce performs one POST /v1/jobs exchange. marker, when non-empty,
// is sent as the X-Dise-Route header so the receiving node can count
// fleet-level reroutes and hedges in its /stats.
func (c *Client) submitOnce(ctx context.Context, body []byte, marker string) (*JobResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if marker != "" {
		hreq.Header.Set("X-Dise-Route", marker)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return nil, fmt.Errorf("status %d with undecodable body: %w", resp.StatusCode, err)
	}
	if resp.StatusCode == http.StatusOK {
		return &jr, nil
	}
	return nil, &APIError{
		Status:     resp.StatusCode,
		Outcome:    jr.Outcome,
		Message:    jr.Error,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
}

// retryable reports whether err is worth another attempt: transport
// failures (the connection may heal, the write is idempotent) and
// backpressure answers. Drain 503s are retried too — against a re-deployed
// listener the next attempt succeeds; against a dying one the budget
// bounds the wait.
func retryable(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return true // transport or decode failure
	}
	return ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable
}

// backoff computes the wait before retry number retries+1: the jittered
// exponential schedule, floored by the server's Retry-After hint when the
// last failure carried one.
func (c *Client) backoff(retries int, last error) time.Duration {
	d := c.policy.BaseBackoff << (retries - 1)
	if d > c.policy.MaxBackoff || d <= 0 {
		d = c.policy.MaxBackoff
	}
	var ae *APIError
	if errors.As(last, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	return c.policy.Jitter(d)
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	sec, err := strconv.Atoi(h)
	if err != nil || sec < 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// Healthz reports the server's readiness: ok is true for a 200, draining
// mirrors the body's flag. No retries — health checks are themselves the
// probe.
func (c *Client) Healthz(ctx context.Context) (ok, draining bool, err error) {
	var body struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	status, err := c.getJSON(ctx, "/healthz", &body)
	if err != nil {
		return false, false, err
	}
	return status == http.StatusOK, body.Draining, nil
}

// Stats fetches the serving counters (queue, cache, outcomes, latency
// histograms). No retries.
func (c *Client) Stats(ctx context.Context) (*server.StatsPayload, error) {
	var sp server.StatsPayload
	if _, err := c.getJSON(ctx, "/stats", &sp); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Membership fetches the node's view of the fleet shard map. A server
// outside any fleet answers 404, surfaced as an *APIError. No retries.
func (c *Client) Membership(ctx context.Context) (*server.MembershipPayload, error) {
	var mp server.MembershipPayload
	status, err := c.getJSON(ctx, "/v1/membership", &mp)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, &APIError{Status: status, Outcome: "membership", Message: "no fleet configured"}
	}
	return &mp, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) (int, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return 0, fmt.Errorf("transport: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return resp.StatusCode, fmt.Errorf("GET %s: status %d: %w", path, resp.StatusCode, err)
	}
	return resp.StatusCode, nil
}
