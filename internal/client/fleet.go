package client

// FleetClient: consistent-hash routing over a multi-node disesrvd fleet.
// Jobs and batches are routed by the server's own SHA-256 equivalence-class
// key (server.ClassKey), so repeat submissions of one class land on one
// node and its trace cache; failures re-route down the class's deterministic
// replica sequence; and an optional hedge duplicates a slow owner's request
// to the first replica. Every per-node exchange reuses the single Client's
// typed-error and Retry-After machinery, and hedging/rerouting is safe for
// the same reason retries are: results are deterministic and
// content-addressed, so a duplicate execution can only produce identical
// bytes.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

// FleetClient routes jobs across a disesrvd fleet by cache-class key. It is
// safe for concurrent use. The zero value is not usable; build with
// NewFleet.
type FleetClient struct {
	m    *fleet.Map
	ring *fleet.Ring

	nodes map[string]*Client
	order []string // node IDs in map order

	policy        RetryPolicy   // outer failover loop: attempts × full node sequence
	hedgeAfter    time.Duration // < 0 disabled
	defaultBudget int64
	slack         float64 // bounded-load slack for the start-node pick

	inflight map[string]*atomic.Int64

	memoMu sync.Mutex
	memo   map[string][32]byte // request digest → class key

	// wg tracks hedge losers still draining; Wait blocks on it.
	wg sync.WaitGroup

	routed    atomic.Int64 // Submit/BatchCollect calls routed by key
	rerouted  atomic.Int64 // reroute-marked attempts that got an HTTP response
	hedged    atomic.Int64 // hedge requests fired
	hedgeWins atomic.Int64 // responses won by the hedge, not the primary
	discarded atomic.Int64 // drained 200s that lost their hedge race
	shed      atomic.Int64 // primaries moved off an over-bound owner
}

// FleetOption customizes a FleetClient.
type FleetOption func(*FleetClient)

// WithFleetRetryPolicy shapes the outer failover loop: MaxAttempts full
// passes over the node sequence, with the usual jittered backoff between
// passes. Per-node exchanges are single attempts — failing over to the
// replica beats retrying a sick owner in place.
func WithFleetRetryPolicy(p RetryPolicy) FleetOption {
	return func(f *FleetClient) { f.policy = p }
}

// WithHedge enables hedged requests: when the primary node has not answered
// within d, the same job is duplicated to the next node in the class's
// sequence and the first success wins. The loser is drained, not cancelled
// — its completion warms the replica's cache and keeps per-node job
// counters reconcilable (it shows up in FleetClientStats.Discarded).
// d = 0 hedges immediately.
func WithHedge(d time.Duration) FleetOption {
	return func(f *FleetClient) { f.hedgeAfter = d }
}

// WithDefaultBudget sets the instruction budget assumed when a request
// leaves budget_insts unset. It must match the servers' -budget flag, or
// clients and servers would compute different class keys for such requests.
func WithDefaultBudget(n int64) FleetOption {
	return func(f *FleetClient) { f.defaultBudget = n }
}

// NewFleet builds a FleetClient over a validated shard map. Per-node
// Clients share the package-wide pooled transport; extra per-node options
// (e.g. WithHTTPClient for tests) apply to every node.
func NewFleet(m *fleet.Map, opts ...FleetOption) (*FleetClient, error) {
	ring, err := fleet.NewRing(m)
	if err != nil {
		return nil, err
	}
	f := &FleetClient{
		m:             m,
		ring:          ring,
		nodes:         make(map[string]*Client, len(m.Nodes)),
		inflight:      make(map[string]*atomic.Int64, len(m.Nodes)),
		memo:          make(map[string][32]byte),
		hedgeAfter:    -1,
		defaultBudget: server.DefaultBudget,
		slack:         0.25,
	}
	for _, o := range opts {
		o(f)
	}
	f.policy = f.policy.withDefaults()
	for _, n := range m.Nodes {
		// Per-node clients do not retry internally: the fleet layer owns
		// failure handling, and its answer to a sick node is the replica.
		f.nodes[n.ID] = New(n.Addr, WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
		f.inflight[n.ID] = &atomic.Int64{}
		f.order = append(f.order, n.ID)
	}
	return f, nil
}

// Node returns the per-node Client for a member ID, for direct probes
// (health, stats, membership) by harnesses and operators.
func (f *FleetClient) Node(id string) (*Client, bool) {
	c, ok := f.nodes[id]
	return c, ok
}

// NodeIDs returns the member IDs in shard-map order.
func (f *FleetClient) NodeIDs() []string { return append([]string(nil), f.order...) }

// Ring exposes the routing ring, so harnesses can predict placement.
func (f *FleetClient) Ring() *fleet.Ring { return f.ring }

// ClassKey computes the routing key for a request, memoized on the
// request's stream-changing fields so sustained load does not re-assemble
// the program per submission.
func (f *FleetClient) ClassKey(req *server.SubmitRequest) ([32]byte, error) {
	digest, err := json.Marshal(struct {
		Asm    string            `json:"asm"`
		Image  string            `json:"image"`
		Bench  string            `json:"bench"`
		Prods  string            `json:"prods"`
		Regs   map[string]uint64 `json:"regs"`
		Budget int64             `json:"budget"`
		MaxCyc int64             `json:"max_cycles"`
		Engine server.EngineSpec `json:"engine"`
	}{req.Asm, req.ImageB64, req.Bench, req.Prods, req.Regs, req.BudgetInsts, req.MaxCycles, req.Engine})
	if err == nil {
		f.memoMu.Lock()
		key, ok := f.memo[string(digest)]
		f.memoMu.Unlock()
		if ok {
			return key, nil
		}
	}
	key, _, kerr := server.ClassKey(req, f.defaultBudget)
	if kerr != nil {
		return key, kerr
	}
	if err == nil {
		f.memoMu.Lock()
		if len(f.memo) >= 4096 {
			f.memo = make(map[string][32]byte)
		}
		f.memo[string(digest)] = key
		f.memoMu.Unlock()
	}
	return key, nil
}

// sequence returns the class's node preference order: the full determinstic
// ring walk, with the start swapped to the bounded-load pick when the true
// owner is over the load bound (the replica then serves it via peer fetch).
func (f *FleetClient) sequence(key [32]byte) []string {
	seq := f.ring.Route(key, len(f.order))
	ids := make([]string, len(seq))
	for i, n := range seq {
		ids[i] = n.ID
	}
	if len(ids) < 2 {
		return ids
	}
	start := f.ring.BoundedOwner(key, f.m.Replication, func(id string) int {
		return int(f.inflight[id].Load())
	}, f.slack)
	if start.ID != ids[0] {
		f.shed.Add(1)
		for i, id := range ids {
			if id == start.ID {
				ids[0], ids[i] = ids[i], ids[0]
				break
			}
		}
	}
	return ids
}

// invalidErr wraps a client-side compile failure in the same typed shape a
// server-side 400 produces, so callers classify both identically.
func invalidErr(err error) error {
	return &APIError{Status: 400, Outcome: "invalid", Message: err.Error()}
}

// responded reports whether an exchange reached a server and got an HTTP
// answer back (any status) — the condition under which the receiving node
// counted the request in its /stats.
func responded(err error) bool {
	if err == nil {
		return true
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.Status != 0
}

// Submit routes one job by its class key: the owner first (or the
// bounded-load pick), then re-routes down the replica sequence on 429/503/
// transport errors, with hedging on the primary when enabled. Terminal
// failures carry the same typed errors as Client.Submit.
func (f *FleetClient) Submit(ctx context.Context, req *server.SubmitRequest) (*JobResponse, error) {
	key, err := f.ClassKey(req)
	if err != nil {
		return nil, invalidErr(err)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encoding request: %w", err)
	}
	f.routed.Add(1)
	seq := f.sequence(key)
	var last error
	for attempt := 1; attempt <= f.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := f.nodes[seq[0]].sleep(ctx, f.backoff(attempt-1, last)); err != nil {
				return nil, err
			}
		}
		for i, id := range seq {
			marker := ""
			if i > 0 || attempt > 1 {
				marker = "reroute"
			}
			var jr *JobResponse
			var err error
			if marker == "" && f.hedgeAfter >= 0 && len(seq) > 1 {
				jr, err = f.hedgedSubmit(ctx, seq[0], seq[1], body)
			} else {
				jr, err = f.submitTo(ctx, id, body, marker)
			}
			if marker == "reroute" && responded(err) {
				f.rerouted.Add(1)
			}
			if err == nil {
				return jr, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if !retryable(err) {
				return nil, err
			}
			last = err
		}
	}
	return nil, fmt.Errorf("%w after %d passes over %d nodes: %w",
		ErrRetryBudget, f.policy.MaxAttempts, len(seq), last)
}

// submitTo performs one exchange against one node, tracking its in-flight
// gauge for the bounded-load pick.
func (f *FleetClient) submitTo(ctx context.Context, id string, body []byte, marker string) (*JobResponse, error) {
	g := f.inflight[id]
	g.Add(1)
	defer g.Add(-1)
	return f.nodes[id].submitOnce(ctx, body, marker)
}

// hedgedSubmit races the primary against a delayed duplicate on backup.
// The first success wins; the loser is left to finish and drain (counted
// in Discarded when it completes 200), never cancelled — so every request
// a server received corresponds to exactly one client-side accounting
// event, and the duplicate warms the backup's cache.
func (f *FleetClient) hedgedSubmit(ctx context.Context, primary, backup string, body []byte) (*JobResponse, error) {
	results := make(chan hres, 2)
	launch := func(id string, hedge bool) {
		marker := ""
		if hedge {
			marker = "hedge"
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			jr, err := f.submitTo(ctx, id, body, marker)
			results <- hres{jr, err, hedge}
		}()
	}
	launch(primary, false)
	outstanding := 1
	timer := time.NewTimer(f.hedgeAfter)
	defer timer.Stop()

	var last error
	fired := false
	for {
		select {
		case <-timer.C:
			if !fired {
				fired = true
				f.hedged.Add(1)
				launch(backup, true)
				outstanding++
			}
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.hedge {
					f.hedgeWins.Add(1)
				}
				if outstanding > 0 {
					f.drainLosers(results, outstanding)
				}
				return r.jr, nil
			}
			// A failure before the hedge fired, or after both legs failed,
			// goes back to the outer failover loop.
			last = r.err
			if outstanding == 0 || !fired {
				return nil, last
			}
		case <-ctx.Done():
			if outstanding > 0 {
				f.drainLosers(results, outstanding)
			}
			return nil, ctx.Err()
		}
	}
}

// hres is one leg's outcome in a hedge race.
type hres struct {
	jr    *JobResponse
	err   error
	hedge bool
}

// drainLosers consumes the remaining results of a decided hedge race,
// counting clean completions as discarded work.
func (f *FleetClient) drainLosers(results <-chan hres, n int) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for range n {
			if r := <-results; r.err == nil {
				f.discarded.Add(1)
			}
		}
	}()
}

// backoff mirrors Client.backoff for the fleet's outer loop.
func (f *FleetClient) backoff(retries int, last error) time.Duration {
	d := f.policy.BaseBackoff << (retries - 1)
	if d > f.policy.MaxBackoff || d <= 0 {
		d = f.policy.MaxBackoff
	}
	var ae *APIError
	if errors.As(last, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	return f.policy.Jitter(d)
}

// BatchCollect routes a whole batch by its first job's class key — batches
// are single scheduling units in one class by construction, so the sweep
// lands on the node that owns (or will capture) that class. Admission
// failures re-route down the sequence; an open stream is never retried.
func (f *FleetClient) BatchCollect(ctx context.Context, req *server.BatchRequest) ([]*BatchCell, *server.BatchSummary, error) {
	if len(req.Jobs) == 0 {
		return nil, nil, invalidErr(errors.New("batch has no jobs"))
	}
	key, err := f.ClassKey(&req.Jobs[0])
	if err != nil {
		return nil, nil, invalidErr(err)
	}
	f.routed.Add(1)
	seq := f.sequence(key)
	var last error
	for attempt := 1; attempt <= f.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := f.nodes[seq[0]].sleep(ctx, f.backoff(attempt-1, last)); err != nil {
				return nil, nil, err
			}
		}
		for i, id := range seq {
			marker := ""
			if i > 0 || attempt > 1 {
				marker = "reroute"
			}
			g := f.inflight[id]
			g.Add(1)
			bs, err := f.nodes[id].batchWith(ctx, req, marker)
			if marker == "reroute" && responded(err) {
				f.rerouted.Add(1)
			}
			if err == nil {
				cells, sum, err := collectStream(bs, len(req.Jobs))
				g.Add(-1)
				return cells, sum, err
			}
			g.Add(-1)
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			if !retryable(err) {
				return nil, nil, err
			}
			last = err
		}
	}
	return nil, nil, fmt.Errorf("%w after %d passes over %d nodes: %w",
		ErrRetryBudget, f.policy.MaxAttempts, len(seq), last)
}

// Wait blocks until every in-flight hedge loser has drained, so ledgers
// snapshotted afterwards see a settled fleet.
func (f *FleetClient) Wait() { f.wg.Wait() }

// FleetClientStats is the client-side routing ledger. Rerouted counts only
// attempts that received an HTTP response, which is exactly the population
// the servers' /stats rerouted counters saw — summed across nodes the two
// reconcile. Hedged counts duplicates fired; each decided race accounts its
// loser in Discarded when it completed cleanly.
type FleetClientStats struct {
	Routed    int64 // jobs and batches routed by class key
	Rerouted  int64 // failover attempts answered by a replica
	Hedged    int64 // hedge duplicates fired
	HedgeWins int64 // races won by the hedge
	Discarded int64 // drained 200s that lost their race
	Shed      int64 // primaries moved off an over-bound owner
}

// FleetStats snapshots the routing ledger.
func (f *FleetClient) FleetStats() FleetClientStats {
	return FleetClientStats{
		Routed:    f.routed.Load(),
		Rerouted:  f.rerouted.Load(),
		Hedged:    f.hedged.Load(),
		HedgeWins: f.hedgeWins.Load(),
		Discarded: f.discarded.Load(),
		Shed:      f.shed.Load(),
	}
}
