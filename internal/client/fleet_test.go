package client

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

// stubNode is one scripted fleet member: it records how many requests it
// received and with which route marker, and answers via a swappable handler.
type stubNode struct {
	id string
	ts *httptest.Server

	mu      sync.Mutex
	markers []string

	handle atomic.Pointer[http.HandlerFunc]
}

func (n *stubNode) serve(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	n.markers = append(n.markers, r.Header.Get("X-Dise-Route"))
	n.mu.Unlock()
	(*n.handle.Load())(w, r)
}

func (n *stubNode) set(h http.HandlerFunc) { n.handle.Store(&h) }

func (n *stubNode) seen() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.markers...)
}

// stubFleet starts n scripted members (ids n1..nN) all answering 200/done
// until a test rescripts them, and returns the shard map over their bound
// addresses.
func stubFleet(t *testing.T, n int) (map[string]*stubNode, *fleet.Map) {
	t.Helper()
	nodes := make(map[string]*stubNode, n)
	m := &fleet.Map{Epoch: 1, Replication: 2}
	for i := 1; i <= n; i++ {
		sn := &stubNode{id: "n" + string(rune('0'+i))}
		sn.set(func(w http.ResponseWriter, r *http.Request) {
			answer(200, "", okBody())(w)
		})
		sn.ts = httptest.NewServer(http.HandlerFunc(sn.serve))
		t.Cleanup(sn.ts.Close)
		nodes[sn.id] = sn
		m.Nodes = append(m.Nodes, fleet.Node{ID: sn.id, Addr: strings.TrimPrefix(sn.ts.URL, "http://")})
	}
	return nodes, m
}

// routeOf predicts the fleet client's node sequence for a request.
func routeOf(t *testing.T, fc *FleetClient, req *server.SubmitRequest, n int) []string {
	t.Helper()
	key, err := fc.ClassKey(req)
	if err != nil {
		t.Fatal(err)
	}
	seq := fc.Ring().Route(key, n)
	ids := make([]string, len(seq))
	for i, nd := range seq {
		ids[i] = nd.ID
	}
	return ids
}

func TestFleetRoutesDeterministically(t *testing.T) {
	nodes, m := stubFleet(t, 3)
	fc, err := NewFleet(m)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SmokeRequest()
	owner := routeOf(t, fc, req, 3)[0]

	for i := 0; i < 5; i++ {
		jr, err := fc.Submit(context.Background(), req)
		if err != nil || jr.Outcome != "done" {
			t.Fatalf("submit %d: %v / %+v", i, err, jr)
		}
	}
	for id, n := range nodes {
		want := 0
		if id == owner {
			want = 5
		}
		if got := len(n.seen()); got != want {
			t.Fatalf("node %s saw %d requests, want %d (owner %s)", id, got, want, owner)
		}
	}
	st := fc.FleetStats()
	if st.Routed != 5 || st.Rerouted != 0 || st.Hedged != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFleetReroutesOn503(t *testing.T) {
	nodes, m := stubFleet(t, 3)
	fc, err := NewFleet(m)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SmokeRequest()
	seq := routeOf(t, fc, req, 3)
	nodes[seq[0]].set(func(w http.ResponseWriter, r *http.Request) {
		answer(503, "", map[string]any{"outcome": "unavailable", "error": "draining"})(w)
	})

	jr, err := fc.Submit(context.Background(), req)
	if err != nil || jr.Outcome != "done" {
		t.Fatalf("submit: %v / %+v", err, jr)
	}
	if got := nodes[seq[0]].seen(); len(got) != 1 || got[0] != "" {
		t.Fatalf("owner saw %v, want one unmarked request", got)
	}
	if got := nodes[seq[1]].seen(); len(got) != 1 || got[0] != "reroute" {
		t.Fatalf("replica saw %v, want one reroute-marked request", got)
	}
	if st := fc.FleetStats(); st.Rerouted != 1 {
		t.Fatalf("rerouted = %d, want 1", st.Rerouted)
	}
}

func TestFleetReroutesOnTransportError(t *testing.T) {
	nodes, m := stubFleet(t, 3)
	fc, err := NewFleet(m)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SmokeRequest()
	seq := routeOf(t, fc, req, 3)
	nodes[seq[0]].ts.Close() // owner is down hard: connection refused

	jr, err := fc.Submit(context.Background(), req)
	if err != nil || jr.Outcome != "done" {
		t.Fatalf("submit: %v / %+v", err, jr)
	}
	// The dead owner never responded, so only the replica's reroute-marked
	// attempt counts — which is exactly what live servers saw.
	if got := nodes[seq[1]].seen(); len(got) != 1 || got[0] != "reroute" {
		t.Fatalf("replica saw %v, want one reroute-marked request", got)
	}
	if st := fc.FleetStats(); st.Rerouted != 1 {
		t.Fatalf("rerouted = %d, want 1", st.Rerouted)
	}
}

func TestFleetDoesNotRerouteTerminalErrors(t *testing.T) {
	nodes, m := stubFleet(t, 3)
	fc, err := NewFleet(m)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SmokeRequest()
	seq := routeOf(t, fc, req, 3)
	nodes[seq[0]].set(func(w http.ResponseWriter, r *http.Request) {
		answer(400, "", map[string]any{"outcome": "invalid", "error": "bad asm"})(w)
	})

	_, err = fc.Submit(context.Background(), req)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("want terminal 400, got %v", err)
	}
	if got := len(nodes[seq[1]].seen()) + len(nodes[seq[2]].seen()); got != 0 {
		t.Fatalf("replicas saw %d requests after a terminal error", got)
	}
}

func TestFleetRetryBudgetExhausted(t *testing.T) {
	nodes, m := stubFleet(t, 3)
	var delays []time.Duration
	fc, err := NewFleet(m, WithFleetRetryPolicy(fastPolicy(2, &delays)))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		n.set(func(w http.ResponseWriter, r *http.Request) {
			answer(503, "", map[string]any{"outcome": "unavailable"})(w)
		})
	}
	_, err = fc.Submit(context.Background(), server.SmokeRequest())
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("want ErrRetryBudget, got %v", err)
	}
	total := 0
	for _, n := range nodes {
		total += len(n.seen())
	}
	if total != 6 {
		t.Fatalf("total attempts = %d, want 2 passes x 3 nodes = 6", total)
	}
	// Pass 1 marks nodes 2..3, pass 2 marks all three: 5 responded reroutes.
	if st := fc.FleetStats(); st.Rerouted != 5 {
		t.Fatalf("rerouted = %d, want 5", st.Rerouted)
	}
}

func TestFleetHedgeRace(t *testing.T) {
	nodes, m := stubFleet(t, 3)
	fc, err := NewFleet(m, WithHedge(0))
	if err != nil {
		t.Fatal(err)
	}
	req := server.SmokeRequest()
	seq := routeOf(t, fc, req, 3)
	release := make(chan struct{})
	nodes[seq[0]].set(func(w http.ResponseWriter, r *http.Request) {
		<-release // the owner is slow until the race is decided
		answer(200, "", okBody())(w)
	})

	jr, err := fc.Submit(context.Background(), req)
	if err != nil || jr.Outcome != "done" {
		t.Fatalf("submit: %v / %+v", err, jr)
	}
	close(release)
	fc.Wait() // the losing primary drains before ledgers are read

	if got := nodes[seq[1]].seen(); len(got) != 1 || got[0] != "hedge" {
		t.Fatalf("backup saw %v, want one hedge-marked request", got)
	}
	st := fc.FleetStats()
	if st.Hedged != 1 || st.HedgeWins != 1 || st.Discarded != 1 {
		t.Fatalf("hedge ledger: %+v", st)
	}
}

func TestFleetClassKeyMatchesServer(t *testing.T) {
	_, m := stubFleet(t, 3)
	fc, err := NewFleet(m)
	if err != nil {
		t.Fatal(err)
	}
	req := server.SmokeRequest()
	got, err := fc.ClassKey(req)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := server.ClassKey(req, server.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("memoized key diverges from server key")
	}
	// The memoized path answers the same key.
	again, err := fc.ClassKey(req)
	if err != nil || again != want {
		t.Fatalf("memo hit diverges: %v", err)
	}
	// A compile failure surfaces as the typed invalid error.
	_, err = fc.Submit(context.Background(), &server.SubmitRequest{Asm: "not assembly"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Outcome != "invalid" {
		t.Fatalf("want typed invalid error, got %v", err)
	}
}

func TestSharedTransportAcrossClients(t *testing.T) {
	c1, c2 := New("one.example:1"), New("two.example:2")
	if c1.hc.Transport != c2.hc.Transport {
		t.Fatal("per-node clients do not share the pooled transport")
	}
	if c1.hc.Transport != http.RoundTripper(sharedTransport) {
		t.Fatal("clients bypass the shared transport")
	}
}

// TestFleetEndToEnd runs the FleetClient against three real servers: jobs
// route and cache, and a batch streams its cells from whichever node owns
// the class.
func TestFleetEndToEnd(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	m := &fleet.Map{Epoch: 1, Replication: 2}
	for _, id := range []string{"n1", "n2", "n3"} {
		s, err := server.New(server.Config{Log: quiet, NodeID: id})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		m.Nodes = append(m.Nodes, fleet.Node{ID: id, Addr: strings.TrimPrefix(ts.URL, "http://")})
	}
	fc, err := NewFleet(m)
	if err != nil {
		t.Fatal(err)
	}

	req := server.SmokeRequest()
	jr, err := fc.Submit(context.Background(), req)
	if err != nil || jr.Outcome != "done" || jr.Cached {
		t.Fatalf("first submit: %v / %+v", err, jr)
	}
	jr2, err := fc.Submit(context.Background(), req)
	if err != nil || !jr2.Cached {
		t.Fatalf("repeat must hit the owner's cache: %v / %+v", err, jr2)
	}

	batch := &server.BatchRequest{Jobs: []server.SubmitRequest{*server.SmokeRequest(), *server.SmokeRequest()}}
	cells, sum, err := fc.BatchCollect(context.Background(), batch)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(cells) != 2 || sum.Done != 2 {
		t.Fatalf("batch cells %d done %d", len(cells), sum.Done)
	}
}
