package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/server"
)

// ErrBatchAborted marks a batch whose stream ended before every cell was
// answered: the summary reports aborted cells (timeout, cancellation, or a
// server drain cut the sweep short). The cells streamed before the abort
// are still valid, byte-identical results.
var ErrBatchAborted = errors.New("batch aborted before all cells finished")

// BatchCell is one streamed cell of a batch response. Result stays raw, so
// callers can assert byte-identity against the single-job answer for the
// same request — the property the batch path guarantees.
type BatchCell struct {
	Index   int             `json:"index"`
	Outcome string          `json:"outcome"` // "done" or "trapped"
	Result  json.RawMessage `json:"result"`
}

// BatchStream is an open /v1/batches response. Cells arrive incrementally
// via Next as the server finishes them; after Next returns io.EOF the
// terminal summary is available from Summary. The stream must be Closed
// (Collect and draining to io.EOF close it implicitly).
type BatchStream struct {
	body    io.ReadCloser
	dec     *json.Decoder
	summary *server.BatchSummary
	err     error
	closed  bool
}

// Next returns the next finished cell. It blocks until the server lands
// one, returns io.EOF when the summary line arrives (the normal end of a
// stream — including an aborted one), and a transport or protocol error if
// the connection dies without a summary.
func (s *BatchStream) Next() (*BatchCell, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.summary != nil {
		return nil, io.EOF
	}
	var line struct {
		Cell    *BatchCell           `json:"cell"`
		Summary *server.BatchSummary `json:"summary"`
	}
	if err := s.dec.Decode(&line); err != nil {
		if err == io.EOF {
			err = fmt.Errorf("batch stream truncated: connection closed before the summary line")
		}
		s.err = err
		s.Close()
		return nil, s.err
	}
	switch {
	case line.Cell != nil:
		return line.Cell, nil
	case line.Summary != nil:
		s.summary = line.Summary
		s.Close()
		return nil, io.EOF
	default:
		s.err = fmt.Errorf("batch stream line carries neither cell nor summary")
		s.Close()
		return nil, s.err
	}
}

// Summary returns the terminal summary line. It is only available after
// Next has returned io.EOF; calling it earlier is an error.
func (s *BatchStream) Summary() (*server.BatchSummary, error) {
	if s.summary == nil {
		if s.err != nil {
			return nil, s.err
		}
		return nil, fmt.Errorf("batch summary not yet received: drain Next to io.EOF first")
	}
	return s.summary, nil
}

// Close releases the underlying connection. Safe to call more than once;
// closing before io.EOF abandons the batch, which the server treats as a
// cancellation (remaining cells are aborted).
func (s *BatchStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.body.Close()
}

// Batch submits a sweep to POST /v1/batches and returns the open stream.
// Admission failures (transport errors, 429s, 503s) are retried under the
// same policy as Submit — retrying is safe by construction for the same
// reason, and nothing has streamed yet when admission fails. Once the
// stream is open the SDK never retries: cells may already be consumed.
func (c *Client) Batch(ctx context.Context, req *server.BatchRequest) (*BatchStream, error) {
	return c.batchWith(ctx, req, "")
}

// batchWith is Batch with a fleet route marker (see Client.submitOnce).
func (c *Client) batchWith(ctx context.Context, req *server.BatchRequest, marker string) (*BatchStream, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encoding request: %w", err)
	}
	var last error
	for attempt := 1; attempt <= c.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := c.sleep(ctx, c.backoff(attempt-1, last)); err != nil {
				return nil, err
			}
		}
		bs, err := c.batchOnce(ctx, body, marker)
		if err == nil {
			return bs, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !retryable(err) {
			return nil, err
		}
		last = err
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrRetryBudget, c.policy.MaxAttempts, last)
}

// batchOnce performs one POST /v1/batches exchange, returning the open
// stream on a 200 and the typed envelope error otherwise.
func (c *Client) batchOnce(ctx context.Context, body []byte, marker string) (*BatchStream, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batches", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if marker != "" {
		hreq.Header.Set("X-Dise-Route", marker)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var jr JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			return nil, fmt.Errorf("status %d with undecodable body: %w", resp.StatusCode, err)
		}
		return nil, &APIError{
			Status:     resp.StatusCode,
			Outcome:    jr.Outcome,
			Message:    jr.Error,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	return &BatchStream{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

// BatchCollect runs a batch to completion and returns the cells ordered by
// request index, plus the terminal summary. Aborted cells are nil slots;
// when any cell was aborted the error matches ErrBatchAborted (the
// returned cells and summary are still valid). Cell results stay raw for
// byte-identity assertions.
func (c *Client) BatchCollect(ctx context.Context, req *server.BatchRequest) ([]*BatchCell, *server.BatchSummary, error) {
	bs, err := c.Batch(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	return collectStream(bs, len(req.Jobs))
}

// collectStream drains an open batch stream into index-ordered cells plus
// the terminal summary, closing the stream when done.
func collectStream(bs *BatchStream, n int) ([]*BatchCell, *server.BatchSummary, error) {
	defer bs.Close()
	cells := make([]*BatchCell, n)
	for {
		cell, err := bs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return cells, nil, err
		}
		if cell.Index < 0 || cell.Index >= len(cells) {
			return cells, nil, fmt.Errorf("batch cell index %d out of range [0, %d)", cell.Index, len(cells))
		}
		if cells[cell.Index] != nil {
			return cells, nil, fmt.Errorf("batch cell %d streamed twice", cell.Index)
		}
		cells[cell.Index] = cell
	}
	sum, err := bs.Summary()
	if err != nil {
		return cells, nil, err
	}
	if sum.Aborted > 0 {
		return cells, sum, fmt.Errorf("%w: %d of %d cells aborted (%s): %s",
			ErrBatchAborted, sum.Aborted, sum.Cells, sum.Outcome, sum.Error)
	}
	return cells, sum, nil
}
