package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/emu"
	"repro/internal/server"
)

// script serves a fixed sequence of canned answers, then repeats the last.
type script struct {
	calls atomic.Int64
	steps []func(w http.ResponseWriter)
}

func (s *script) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(s.calls.Add(1)) - 1
		if i >= len(s.steps) {
			i = len(s.steps) - 1
		}
		s.steps[i](w)
	})
}

func answer(status int, retryAfter string, body any) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(body)
	}
}

func okBody() any {
	return map[string]any{
		"id": "job-000001", "outcome": "done", "cached": false,
		"result": map[string]any{"cycles": 193, "insts": 24},
	}
}

func rejectedBody() any {
	return map[string]any{"id": "job-000001", "outcome": "rejected", "error": "job queue is full"}
}

// fastPolicy retries immediately and records every computed delay, so the
// test can assert the backoff schedule without sleeping through it.
func fastPolicy(attempts int, delays *[]time.Duration) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Jitter: func(d time.Duration) time.Duration {
			*delays = append(*delays, d)
			return 0
		},
	}
}

func TestSubmitRetriesThroughOverload(t *testing.T) {
	// 429 → 429 → 200: the submission must succeed on the third attempt.
	sc := &script{steps: []func(http.ResponseWriter){
		answer(429, "2", rejectedBody()),
		answer(429, "", rejectedBody()),
		answer(200, "", okBody()),
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, WithRetryPolicy(fastPolicy(5, &delays)))
	resp, err := c.Submit(context.Background(), &server.SubmitRequest{Bench: "gzip"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Outcome != "done" {
		t.Errorf("outcome %q, want done", resp.Outcome)
	}
	if got := sc.calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	// First wait honors the 2s Retry-After (> 10ms base); second falls back
	// to the exponential schedule (base << 1 = 20ms).
	if len(delays) != 2 || delays[0] != 2*time.Second || delays[1] != 20*time.Millisecond {
		t.Errorf("backoff schedule %v, want [2s 20ms]", delays)
	}
}

func TestSubmitRetryBudgetExhausted(t *testing.T) {
	sc := &script{steps: []func(http.ResponseWriter){answer(429, "", rejectedBody())}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, WithRetryPolicy(fastPolicy(3, &delays)))
	_, err := c.Submit(context.Background(), &server.SubmitRequest{Bench: "gzip"})
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("err = %v, should also match ErrOverloaded (last failure class)", err)
	}
	if got := sc.calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want MaxAttempts = 3", got)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 429 {
		t.Errorf("err chain misses the *APIError: %v", err)
	}
}

func TestSubmitDoesNotRetryTerminalStatuses(t *testing.T) {
	cases := []struct {
		status   int
		outcome  string
		sentinel error
	}{
		{400, "invalid", ErrInvalid},
		{504, "timeout", ErrJobTimeout},
	}
	for _, cse := range cases {
		sc := &script{steps: []func(http.ResponseWriter){
			answer(cse.status, "", map[string]any{"outcome": cse.outcome, "error": "nope"}),
		}}
		ts := httptest.NewServer(sc.handler())
		var delays []time.Duration
		c := New(ts.URL, WithRetryPolicy(fastPolicy(5, &delays)))
		_, err := c.Submit(context.Background(), &server.SubmitRequest{})
		if !errors.Is(err, cse.sentinel) {
			t.Errorf("status %d: err = %v, want sentinel %v", cse.status, err, cse.sentinel)
		}
		if errors.Is(err, ErrRetryBudget) {
			t.Errorf("status %d: terminal failure reported as budget exhaustion", cse.status)
		}
		if got := sc.calls.Load(); got != 1 {
			t.Errorf("status %d: server saw %d requests, want 1 (no retries)", cse.status, got)
		}
		ts.Close()
	}
}

func TestSubmitRetriesTransportErrors(t *testing.T) {
	// A server that dies after accepting the connection produces a transport
	// error; the retry loop must classify it as retryable and eventually
	// exhaust the budget with ErrRetryBudget.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, WithRetryPolicy(fastPolicy(2, &delays)))
	_, err := c.Submit(context.Background(), &server.SubmitRequest{})
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
}

func TestSubmitHonorsContextCancellation(t *testing.T) {
	sc := &script{steps: []func(http.ResponseWriter){answer(429, "30", rejectedBody())}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Real jitter here: the 30s Retry-After must lose to the 50ms deadline.
	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 5}))
	start := time.Now()
	_, err := c.Submit(ctx, &server.SubmitRequest{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Submit slept %v through the cancelled context", elapsed)
	}
}

func TestTrapErrorMirrorsEmuKinds(t *testing.T) {
	jr := &JobResponse{
		Outcome: "trapped",
		Result:  json.RawMessage(`{"cycles": 1, "trap": "budget", "error": "budget exhausted at pc 0x40"}`),
	}
	te := jr.Trap()
	if te == nil {
		t.Fatal("Trap() = nil for a trapped response")
	}
	if te.Kind != emu.TrapBudget {
		t.Errorf("kind = %v, want TrapBudget", te.Kind)
	}
	if done := (&JobResponse{Outcome: "done"}).Trap(); done != nil {
		t.Errorf("Trap() = %v for a clean response, want nil", done)
	}
	// Every emulator kind must round-trip through the wire form.
	for k := emu.TrapKind(0); k < emu.NumTrapKinds; k++ {
		if got, ok := trapKinds[k.String()]; !ok || got != k {
			t.Errorf("kind %v does not round-trip (got %v, ok=%v)", k, got, ok)
		}
	}
}
