package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// newRealServer spins a full in-process disesrvd for end-to-end SDK tests.
func newRealServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Drain() })
	return ts
}

// TestBatchEndToEnd drives the full SDK surface against a real server: the
// stream yields every cell exactly once, the summary reconciles, and each
// cell is byte-identical to the Submit answer for the same request.
func TestBatchEndToEnd(t *testing.T) {
	ts := newRealServer(t)
	c := New(ts.URL)

	jobs := []server.SubmitRequest{*server.SmokeRequest(), *server.SmokeRequest(), *server.SmokeRequest()}
	jobs[1].Machine.Width = 8
	jobs[2].Engine.MissPenalty = 60

	cells, sum, err := c.BatchCollect(context.Background(), &server.BatchRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Done != 3 || sum.Aborted != 0 || sum.Outcome != "done" {
		t.Fatalf("summary %+v, want 3 done cells", sum)
	}
	for i := range jobs {
		if cells[i] == nil {
			t.Fatalf("cell %d missing", i)
		}
		jr, err := c.Submit(context.Background(), &jobs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cells[i].Result, jr.Result) {
			t.Errorf("cell %d differs from its single-job answer:\nbatch:  %s\nsingle: %s",
				i, cells[i].Result, jr.Result)
		}
	}
}

// batchAnswer scripts one streaming 200: the given ndjson lines, verbatim.
func batchAnswer(lines ...string) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		for _, l := range lines {
			_, _ = io.WriteString(w, l+"\n")
		}
	}
}

const (
	cellLine0   = `{"cell":{"index":0,"outcome":"done","result":{"cycles":193}}}`
	cellLine1   = `{"cell":{"index":1,"outcome":"done","result":{"cycles":100}}}`
	summaryDone = `{"summary":{"batch_id":"batch-000001","batch_outcome":"done","cells":2,"cells_ok":2,"cells_trap":0,"cells_aborted":0,"cache":"capture","queue_us":1,"run_us":2}}`
)

func twoJobs() *server.BatchRequest {
	return &server.BatchRequest{Jobs: make([]server.SubmitRequest, 2)}
}

// TestBatchRetriesAdmission pins the retry-by-construction contract for
// batches: 429 and 503 admission answers are retried (honoring
// Retry-After) until the stream opens; nothing is double-consumed because
// nothing streamed.
func TestBatchRetriesAdmission(t *testing.T) {
	var delays []time.Duration
	sc := &script{steps: []func(http.ResponseWriter){
		answer(http.StatusTooManyRequests, "1", rejectedBody()),
		answer(http.StatusServiceUnavailable, "", map[string]any{"outcome": "unavailable", "error": "draining"}),
		batchAnswer(cellLine0, cellLine1, summaryDone),
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	c := New(ts.URL, WithRetryPolicy(fastPolicy(5, &delays)))
	cells, sum, err := c.BatchCollect(context.Background(), twoJobs())
	if err != nil {
		t.Fatal(err)
	}
	if sc.calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", sc.calls.Load())
	}
	if len(delays) != 2 || delays[0] < time.Second {
		t.Errorf("backoff schedule %v, want 2 delays with the first floored by Retry-After", delays)
	}
	if sum.Done != 2 || cells[0] == nil || cells[1] == nil {
		t.Errorf("collected %+v / %+v, want both cells", cells, sum)
	}
}

// TestBatchDoesNotRetryInvalid: a 400 is terminal and typed.
func TestBatchDoesNotRetryInvalid(t *testing.T) {
	sc := &script{steps: []func(http.ResponseWriter){
		answer(http.StatusBadRequest, "", map[string]any{"outcome": "invalid", "error": "jobs[1]: not in class"}),
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 3}))
	_, err := c.Batch(context.Background(), twoJobs())
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("got %v, want ErrInvalid", err)
	}
	if sc.calls.Load() != 1 {
		t.Errorf("server saw %d calls, want no retries", sc.calls.Load())
	}
}

// TestBatchAbortedSummary: an in-stream abort surfaces as ErrBatchAborted
// from Collect, with the already-landed cells intact.
func TestBatchAbortedSummary(t *testing.T) {
	sc := &script{steps: []func(http.ResponseWriter){
		batchAnswer(cellLine0,
			`{"summary":{"batch_id":"batch-000001","batch_outcome":"timeout","cells":2,"cells_ok":1,"cells_trap":0,"cells_aborted":1,"cache":"capture","error":"context deadline exceeded"}}`),
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	c := New(ts.URL)
	cells, sum, err := c.BatchCollect(context.Background(), twoJobs())
	if !errors.Is(err, ErrBatchAborted) {
		t.Fatalf("got %v, want ErrBatchAborted", err)
	}
	if cells[0] == nil || cells[1] != nil {
		t.Errorf("cells %+v, want only index 0 landed", cells)
	}
	if sum == nil || sum.Outcome != "timeout" {
		t.Errorf("summary %+v, want the timeout summary alongside the error", sum)
	}
}

// TestBatchTruncatedStream: a connection that dies without a summary is a
// protocol error from Next, not a silent success.
func TestBatchTruncatedStream(t *testing.T) {
	sc := &script{steps: []func(http.ResponseWriter){batchAnswer(cellLine0)}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	c := New(ts.URL)
	bs, err := c.Batch(context.Background(), twoJobs())
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	if _, err := bs.Next(); err != nil {
		t.Fatalf("first cell: %v", err)
	}
	if _, err := bs.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated stream: got %v, want a protocol error", err)
	}
	if _, err := bs.Summary(); err == nil {
		t.Error("Summary on a truncated stream must error")
	}
}

// TestBatchIncrementalConsumption: Next yields cells before the summary
// exists — the stream is consumable incrementally, and Summary before EOF
// is an explicit error rather than a block.
func TestBatchIncrementalConsumption(t *testing.T) {
	sc := &script{steps: []func(http.ResponseWriter){batchAnswer(cellLine0, cellLine1, summaryDone)}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	c := New(ts.URL)
	bs, err := c.Batch(context.Background(), twoJobs())
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	cell, err := bs.Next()
	if err != nil || cell.Index != 0 {
		t.Fatalf("first cell: %+v, %v", cell, err)
	}
	if _, err := bs.Summary(); err == nil {
		t.Fatal("Summary before EOF must error")
	}
	if cell, err = bs.Next(); err != nil || cell.Index != 1 {
		t.Fatalf("second cell: %+v, %v", cell, err)
	}
	if _, err := bs.Next(); err != io.EOF {
		t.Fatalf("after last cell: %v, want io.EOF", err)
	}
	sum, err := bs.Summary()
	if err != nil || sum.Done != 2 {
		t.Fatalf("summary: %+v, %v", sum, err)
	}
}
