// Package conform implements the differential conformance corpus: declarative
// cases (a program plus optional productions, machine/engine configuration
// and expected outcomes) that the harness runs four ways — interpreted
// emulation, translated emulation, a live timed run, and a trace
// capture/replay — asserting that every observable agrees. Each case also
// audits the toolchain itself: the program's byte image must decode exactly
// under its loader-emitted per-byte labels, naive sweep disassembly must fail
// where the labels say it must, and natural programs must survive the
// asm → disasm → asm round trip. The corpus is the refactoring safety net:
// emu, cpu and trace can change aggressively as long as every case still
// agrees with itself.
package conform

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/acf/compress"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/server"
)

// ErrCase wraps every case-compilation failure (malformed JSON, bad program
// source, invalid spec fields) — user error in the case file, as opposed to
// a conformance Failure, which is a divergence the harness found in the
// implementation. The shrinker uses the distinction to never "reduce" a
// conformance failure into a merely unparseable case.
var ErrCase = errors.New("conform: case")

// defaultBudget bounds cases that do not set budget_insts: generated
// programs terminate well under it, and a case corrupted into an infinite
// loop traps deterministically instead of hanging the corpus run.
const defaultBudget = 2_000_000

// Compression baselines a case may request by name.
const (
	CompressNone      = ""
	CompressDedicated = "dedicated" // 2-byte codewords, dedicated decompressor
	CompressDise      = "dise"      // 4-byte parameterized DISE codewords
)

// Case is one declarative conformance case. Exactly one of Asm or ImageB64
// names the program; everything else is optional.
type Case struct {
	// Name identifies the case in reports and selects its shard.
	Name string `json:"name"`
	// Note is free-form documentation carried with the case.
	Note string `json:"note,omitempty"`
	// Seed records generator provenance (0 for hand-written cases).
	Seed int64 `json:"seed,omitempty"`

	// Asm is EVR assembly source for the program under test.
	Asm string `json:"asm,omitempty"`
	// ImageB64 is a base64 EVRX image, for cases minimized from images or
	// exercising container-level behavior directly.
	ImageB64 string `json:"image_b64,omitempty"`
	// Compress applies a compression baseline to the program before the run:
	// "dedicated" (2-byte codewords) or "dise" (parameterized 4-byte
	// codewords). The matching decompressor productions are installed
	// automatically alongside Prods.
	Compress string `json:"compress,omitempty"`

	// Prods is a DISE production file installed before every run.
	Prods string `json:"prods,omitempty"`
	// Regs presets dedicated registers ("$dr0".."$dr7") before every run —
	// the ACF setup the paper performs at module load.
	Regs map[string]uint64 `json:"regs,omitempty"`

	// Machine selects the timing-model configuration (defaults: the paper's
	// 4-wide machine). Engine sizes the DISE engine and its penalties.
	Machine *server.MachineSpec `json:"machine,omitempty"`
	Engine  *server.EngineSpec  `json:"engine,omitempty"`

	// BudgetInsts bounds every run of the case (default 2,000,000). Hitting
	// the budget is a legitimate expected outcome (trap "budget"), not a
	// harness error.
	BudgetInsts int64 `json:"budget_insts,omitempty"`

	// Expect, when set, pins expected outcomes on top of the always-checked
	// four-way equivalence. A nil Expect asserts self-consistency only.
	Expect *Expect `json:"expect,omitempty"`
}

// Expect pins expected outcomes of a case. Zero-valued fields are not
// checked: a 0 counter, an empty string or an absent map entry means "don't
// care", except Trap, where the literal "none" demands a clean halt.
type Expect struct {
	// Trap is the expected termination: "" (unchecked), "none" (must halt
	// cleanly), or an emu trap kind name such as "budget" or "out-of-segment".
	Trap string `json:"trap,omitempty"`
	// Output is the expected sys output, checked when non-empty.
	Output string `json:"output,omitempty"`
	// Insts / AppInsts pin the functional instruction counters (Stats.Total
	// and Stats.AppInsts); Cycles pins the timed run.
	Insts    int64 `json:"insts,omitempty"`
	AppInsts int64 `json:"app_insts,omitempty"`
	Cycles   int64 `json:"cycles,omitempty"`
	// TextWrites / Redecodes pin the self-modifying-code counters.
	TextWrites int64 `json:"text_writes,omitempty"`
	Redecodes  int64 `json:"redecodes,omitempty"`
	// Regs pins final register values, keyed by register name ("r1", "sp",
	// "$dr0", ...).
	Regs map[string]uint64 `json:"regs,omitempty"`
	// MemSum pins the final data-memory checksum, as %016x hex.
	MemSum string `json:"mem_sum,omitempty"`
}

// caseErr builds an ErrCase-wrapped error for case c.
func caseErr(c *Case, format string, v ...any) error {
	return fmt.Errorf("%w %q: %s", ErrCase, c.Name, fmt.Sprintf(format, v...))
}

// compiled is a case resolved against the toolchain: program built,
// compression applied, specs resolved, registers parsed.
type compiled struct {
	prog    *program.Program // the program every run executes
	natural *program.Program // pre-compression program (nil for image cases)
	prods   string           // user productions + decompressor productions
	ecfg    core.EngineConfig
	ccfg    cpu.Config
	regs    map[isa.Reg]uint64
	budget  int64
}

// compile resolves c. All validation lives here so Run and the shrinker
// share one notion of "well-formed case".
func (c *Case) compile() (*compiled, error) {
	cc := &compiled{budget: c.BudgetInsts}
	if cc.budget == 0 {
		cc.budget = defaultBudget
	}
	if cc.budget < 0 {
		return nil, caseErr(c, "negative budget_insts %d", cc.budget)
	}

	switch {
	case c.Asm != "" && c.ImageB64 != "":
		return nil, caseErr(c, "give exactly one of asm or image_b64")
	case c.Asm != "":
		p, err := asm.Assemble(c.Name, c.Asm)
		if err != nil {
			return nil, caseErr(c, "asm: %v", err)
		}
		cc.prog, cc.natural = p, p
	case c.ImageB64 != "":
		raw, err := base64.StdEncoding.DecodeString(c.ImageB64)
		if err != nil {
			return nil, caseErr(c, "image_b64: %v", err)
		}
		p, err := program.ReadImage(c.Name, bytes.NewReader(raw))
		if err != nil {
			return nil, caseErr(c, "image_b64: %v", err)
		}
		cc.prog = p
	default:
		return nil, caseErr(c, "give exactly one of asm or image_b64")
	}

	cc.prods = c.Prods
	switch c.Compress {
	case CompressNone:
	case CompressDedicated, CompressDise:
		cfg := compress.Dedicated()
		if c.Compress == CompressDise {
			cfg = compress.DiseFull()
		}
		res, err := compress.Compress(cc.prog, cfg)
		if err != nil {
			return nil, caseErr(c, "compress %s: %v", c.Compress, err)
		}
		// A program with no compressible sequences yields an empty
		// dictionary; the baseline is then a no-op and installs nothing.
		if len(res.Dict) > 0 {
			cc.prog = res.Prog
			// The decompressor productions ride with the compressed image;
			// a user production set composes ahead of them in one install.
			cc.prods = strings.TrimSpace(cc.prods + "\n" + res.ProductionText())
		}
	default:
		return nil, caseErr(c, "unknown compress %q (want %q or %q)",
			c.Compress, CompressDedicated, CompressDise)
	}

	mspec, espec := c.Machine, c.Engine
	if mspec == nil {
		mspec = &server.MachineSpec{}
	}
	if espec == nil {
		espec = &server.EngineSpec{}
	}
	var err error
	if cc.ccfg, err = mspec.Config(); err != nil {
		return nil, caseErr(c, "machine: %v", err)
	}
	if cc.ecfg, err = espec.Config(); err != nil {
		return nil, caseErr(c, "engine: %v", err)
	}
	if cc.prods != "" {
		if _, err := core.NewController(cc.ecfg).InstallFile(cc.prods, nil); err != nil {
			return nil, caseErr(c, "prods: %v", err)
		}
	}

	cc.regs = make(map[isa.Reg]uint64, len(c.Regs))
	for name, val := range c.Regs {
		r := isa.RegByName(name, true)
		if !r.IsDedicated() {
			return nil, caseErr(c, "regs: %q is not a dedicated register ($dr0..$dr%d)",
				name, isa.NumDiseRegs-1)
		}
		cc.regs[r] = val
	}
	return cc, nil
}

// machine builds a freshly prepared functional machine for the compiled
// case: budget set, dedicated registers initialized, productions installed.
func (cc *compiled) machine() *emu.Machine {
	m := emu.New(cc.prog)
	m.SetBudget(cc.budget)
	for r, v := range cc.regs {
		m.SetReg(r, v)
	}
	if cc.prods != "" {
		ctrl := core.NewController(cc.ecfg)
		if _, err := ctrl.InstallFile(cc.prods, nil); err != nil {
			// compile validated the same text against the same config.
			panic(fmt.Sprintf("conform: production set failed revalidation: %v", err))
		}
		m.SetExpander(ctrl.Engine())
	}
	return m
}

// Load reads one case file. Unknown fields are rejected: a typoed
// expectation that silently checks nothing would make the corpus lie.
func Load(path string) (*Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCase, err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	c := &Case{}
	if err := dec.Decode(c); err != nil {
		return nil, fmt.Errorf("%w %s: %v", ErrCase, path, err)
	}
	if c.Name == "" {
		c.Name = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	return c, nil
}

// Save writes c as an indented case file, the format Load reads and the
// shrinker emits as a ready-to-commit repro.
func (c *Case) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadDir reads every *.json case in dir, sorted by filename.
func LoadDir(dir string) ([]*Case, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	cases := make([]*Case, 0, len(paths))
	for _, p := range paths {
		c, err := Load(p)
		if err != nil {
			return nil, err
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// Shard returns the slice of cases a worker owns under an i-of-n split. The
// assignment hashes case names, so it is stable under corpus growth and
// independent of file order; every case lands in exactly one shard.
func Shard(cases []*Case, idx, n int) []*Case {
	if n <= 1 {
		return cases
	}
	var out []*Case
	for _, c := range cases {
		h := fnv.New32a()
		h.Write([]byte(c.Name))
		if int(h.Sum32())%n == idx {
			out = append(out, c)
		}
	}
	return out
}

// ParseShard parses an "i/n" shard designator (0-based index).
func ParseShard(s string) (idx, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &idx, &n); err != nil {
		return 0, 0, fmt.Errorf("bad shard %q (want i/n): %v", s, err)
	}
	if n < 1 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("bad shard %q: index out of range", s)
	}
	return idx, n, nil
}
