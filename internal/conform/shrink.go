package conform

import (
	"errors"
	"strings"
)

// failureClass buckets an outcome for the shrinker: a reduction is accepted
// only when it preserves the class, so a conformance failure can never
// "shrink" into a case that merely fails to compile (or vice versa).
type failureClass int

const (
	classPass failureClass = iota
	classCompile
	classConform
)

func classify(err error) failureClass {
	switch {
	case err == nil:
		return classPass
	case errors.Is(err, ErrCase):
		return classCompile
	default:
		return classConform
	}
}

// Shrink minimizes a failing case while preserving its failure class. It
// runs delta-debugging over the assembly source (dropping line chunks of
// halving size), then tries discarding whole optional features (productions,
// compression, register presets, expectations) and halving the budget. The
// result is a ready-to-commit repro. It returns the original case unchanged
// when the case passes, and reports how many candidate reductions were run.
func Shrink(c *Case) (min *Case, tried int) {
	_, err := Run(c)
	want := classify(err)
	if want == classPass {
		return c, 0
	}
	fails := func(cand *Case) bool {
		tried++
		_, err := Run(cand)
		return classify(err) == want
	}
	cur := clone(c)

	// Feature drops first: each removes a whole dimension, making the line
	// pass below both faster and more likely to land minimal.
	for _, drop := range []func(*Case){
		func(x *Case) { x.Prods = "" },
		func(x *Case) { x.Compress = "" },
		func(x *Case) { x.Regs = nil },
		func(x *Case) { x.Expect = nil },
	} {
		cand := clone(cur)
		drop(cand)
		if fails(cand) {
			cur = cand
		}
	}

	if cur.Asm != "" {
		cur.Asm = shrinkLines(cur.Asm, func(src string) bool {
			cand := clone(cur)
			cand.Asm = src
			return fails(cand)
		})
	}

	for cur.BudgetInsts > 64 {
		cand := clone(cur)
		cand.BudgetInsts /= 2
		if !fails(cand) {
			break
		}
		cur = cand
	}
	cur.Note = strings.TrimSpace(cur.Note + "\nshrunk by disespec shrink")
	return cur, tried
}

func clone(c *Case) *Case {
	x := *c
	if c.Regs != nil {
		x.Regs = make(map[string]uint64, len(c.Regs))
		for k, v := range c.Regs {
			x.Regs[k] = v
		}
	}
	if c.Expect != nil {
		e := *c.Expect
		if c.Expect.Regs != nil {
			e.Regs = make(map[string]uint64, len(c.Expect.Regs))
			for k, v := range c.Expect.Regs {
				e.Regs[k] = v
			}
		}
		x.Expect = &e
	}
	return &x
}

// shrinkLines is ddmin-lite over source lines: repeatedly try deleting
// contiguous chunks, halving the chunk size whenever a full sweep makes no
// progress, until single-line deletions all fail.
func shrinkLines(src string, fails func(string) bool) string {
	lines := strings.Split(src, "\n")
	chunk := len(lines) / 2
	for chunk >= 1 {
		progress := false
		for at := 0; at+chunk <= len(lines); {
			cand := make([]string, 0, len(lines)-chunk)
			cand = append(cand, lines[:at]...)
			cand = append(cand, lines[at+chunk:]...)
			if fails(strings.Join(cand, "\n")) {
				lines = cand
				progress = true
				// Do not advance: the next chunk slid into this position.
			} else {
				at++
			}
		}
		if !progress || chunk > len(lines) {
			chunk /= 2
		}
	}
	return strings.Join(lines, "\n")
}
