package conform

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenSpec parameterizes the corpus generator. Every knob is deterministic:
// the same spec always generates byte-identical cases, and case i depends
// only on (Seed, i) — never on how many cases were generated before it —
// so a corpus can be regenerated, extended or sharded without drift.
type GenSpec struct {
	// Cases is the number of cases to generate.
	Cases int `json:"cases"`
	// Seed is the corpus master seed; case i runs on a stream derived from
	// (Seed, i).
	Seed int64 `json:"seed"`

	// MixIntOps, MixMem and MixBranch weight the instruction mix of loop
	// bodies (integer ALU ops : memory accesses : forward branches).
	MixIntOps int `json:"mix_intops"`
	MixMem    int `json:"mix_mem"`
	MixBranch int `json:"mix_branch"`

	// StoreFrac is the probability a memory access is a store — the
	// trigger-site density knob, since stores are what most production sets
	// (and the ACF shapes) intercept.
	StoreFrac float64 `json:"store_frac"`
	// ProdsFrac is the fraction of cases that install a production set.
	ProdsFrac float64 `json:"prods_frac"`
	// CompressFrac is the fraction of cases run under a compression
	// baseline (split between "dedicated" 2-byte and "dise" codewords).
	CompressFrac float64 `json:"compress_frac"`
	// SelfModFrac is the fraction of cases that append a self-modifying
	// store loop patching their own text (idempotent patches, so the
	// runs stay equivalent while exercising redecode).
	SelfModFrac float64 `json:"self_mod_frac"`
	// TrapFrac is the fraction of cases given a tiny instruction budget so
	// they terminate by budget trap mid-loop instead of halting cleanly —
	// trap equivalence is part of the lattice and needs coverage.
	TrapFrac float64 `json:"trap_frac"`

	// MaxBlockInsts bounds the loop-body length in emitted statements.
	MaxBlockInsts int `json:"max_block_insts"`
	// BudgetInsts is the budget for non-trap cases (0 = harness default).
	BudgetInsts int64 `json:"budget_insts"`
}

// DefaultGenSpec returns the corpus defaults: ALU-heavy bodies with dense
// memory traffic, half of it stores, and every special feature sampled often
// enough that a thousand cases cover each combination many times.
func DefaultGenSpec() GenSpec {
	return GenSpec{
		Cases:         1000,
		Seed:          1,
		MixIntOps:     6,
		MixMem:        3,
		MixBranch:     1,
		StoreFrac:     0.5,
		ProdsFrac:     0.4,
		CompressFrac:  0.25,
		SelfModFrac:   0.1,
		TrapFrac:      0.05,
		MaxBlockInsts: 32,
	}
}

// prodPool is the set of production templates trigger-bearing cases install,
// in the style of the paper's transparent ACFs: count or tag dynamic events
// in dedicated registers without changing application state.
var prodPool = []string{
	`prod count-stores {
    match class == store
    replace {
        lda $dr0, 1($dr0)
        %insn
    }
}`,
	`prod count-loads {
    match class == load
    replace {
        lda $dr1, 1($dr1)
        %insn
    }
}`,
	`prod count-condbr {
    match class == condbr
    replace {
        lda $dr2, 1($dr2)
        %insn
    }
}`,
	`prod count-stores {
    match class == store
    replace {
        lda $dr0, 1($dr0)
        %insn
    }
}
prod count-loads {
    match class == load
    replace {
        lda $dr1, 1($dr1)
        %insn
    }
}`,
}

// mix64 derives a per-case seed from the master seed and case index with a
// splitmix64 finalizer, so neighboring indices get uncorrelated streams.
func mix64(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Generate builds the spec's corpus: Cases cases, each fully determined by
// (Seed, index).
func (g GenSpec) Generate() []*Case {
	cases := make([]*Case, g.Cases)
	for i := range cases {
		cases[i] = g.Case(i)
	}
	return cases
}

// Case generates case i of the spec's corpus.
func (g GenSpec) Case(i int) *Case {
	seed := mix64(g.Seed, i)
	rng := rand.New(rand.NewSource(seed))
	c := &Case{
		Name: fmt.Sprintf("gen-%d-%05d", g.Seed, i),
		Seed: seed,
	}

	selfMod := rng.Float64() < g.SelfModFrac
	// Compression re-lays the text image, so a self-modifying case would
	// patch different bytes under each baseline; keep the features separate.
	if !selfMod && rng.Float64() < g.CompressFrac {
		if rng.Intn(2) == 0 {
			c.Compress = CompressDedicated
		} else {
			c.Compress = CompressDise
		}
	}
	if rng.Float64() < g.ProdsFrac {
		c.Prods = prodPool[rng.Intn(len(prodPool))]
		// Seed the counters the productions grow, covering nonzero
		// dedicated-register initial state.
		if rng.Intn(2) == 0 {
			c.Regs = map[string]uint64{"$dr0": uint64(rng.Intn(1000))}
		}
	}
	c.Asm = g.emitProgram(rng, selfMod)
	c.BudgetInsts = g.BudgetInsts

	c.Expect = &Expect{Trap: "none"}
	if rng.Float64() < g.TrapFrac {
		// A budget strictly smaller than any generated program's dynamic
		// length (15-instruction prologue plus at least 4 loop iterations
		// of at least 6 instructions): the run always traps mid-program
		// and every plane must agree on where.
		c.BudgetInsts = int64(16 + rng.Intn(24))
		c.Expect.Trap = "budget"
	}
	return c
}

// Scratch register discipline for generated programs: intops write r1..r12,
// r13/r14 are the address and compare temporaries, r16 the loop counter,
// r17 the data-buffer base.
const (
	genScratch = 12
	genBufSize = 256
)

var (
	genRegOps = []string{"addq", "subq", "mulq", "and", "bis", "xor",
		"sll", "srl", "sra", "cmpeq", "cmplt", "cmple", "cmpult", "cmpule"}
	genImmOps = []string{"addqi", "subqi", "mulqi", "andi", "bisi", "xori",
		"cmpeqi", "cmplti", "cmpulti"}
	genShiftOps = []string{"slli", "srli", "srai"}
)

func (g GenSpec) emitProgram(rng *rand.Rand, selfMod bool) string {
	var b strings.Builder
	emit := func(format string, v ...any) {
		fmt.Fprintf(&b, format+"\n", v...)
	}
	scratch := func() string { return fmt.Sprintf("r%d", 1+rng.Intn(genScratch)) }

	emit(".entry main")
	emit("")
	emit(".data")
	emit("buf: .space %d", genBufSize)
	emit("")
	emit(".text")
	emit("main:")
	emit("\tla r17, buf")
	emit("\tli r16, %d", 4+rng.Intn(40))
	for r := 1; r <= genScratch; r++ {
		emit("\tli r%d, %d", r, rng.Intn(2000)-1000)
	}

	wTotal := g.MixIntOps + g.MixMem + g.MixBranch
	if wTotal <= 0 {
		wTotal, g.MixIntOps = 1, 1
	}
	maxBody := g.MaxBlockInsts
	if maxBody < 4 {
		maxBody = 4
	}
	intop := func() string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("\t%s %s, %s, %s", genRegOps[rng.Intn(len(genRegOps))],
				scratch(), scratch(), scratch())
		case 1:
			return fmt.Sprintf("\t%s %s, %d, %s", genImmOps[rng.Intn(len(genImmOps))],
				scratch(), rng.Intn(512)-256, scratch())
		default:
			return fmt.Sprintf("\t%s %s, %d, %s", genShiftOps[rng.Intn(len(genShiftOps))],
				scratch(), rng.Intn(64), scratch())
		}
	}
	statement := func() []string {
		switch w := rng.Intn(wTotal); {
		case w < g.MixIntOps:
			return []string{intop()}
		case w < g.MixIntOps+g.MixMem:
			// Masked addressing keeps every access 8-aligned inside buf.
			s := []string{
				fmt.Sprintf("\tandi %s, %d, r13", scratch(), genBufSize-8),
				"\taddq r17, r13, r13",
			}
			if rng.Float64() < g.StoreFrac {
				return append(s, fmt.Sprintf("\tst%s %s, 0(r13)", pick(rng, "q", "l"), scratch()))
			}
			return append(s, fmt.Sprintf("\tld%s %s, 0(r13)", pick(rng, "q", "l"), scratch()))
		default:
			// Forward branch over k one-unit intops, as a numeric unit
			// displacement so no label bookkeeping is needed.
			k := 1 + rng.Intn(3)
			s := []string{
				fmt.Sprintf("\tcmp%s %s, %s, r14", pick(rng, "eq", "lt", "ult"), scratch(), scratch()),
				fmt.Sprintf("\tb%s r14, %d", pick(rng, "eq", "ne"), k),
			}
			for j := 0; j < k; j++ {
				s = append(s, intop())
			}
			return s
		}
	}

	// Bodies draw from a small phrase pool with repetition rather than
	// emitting fresh statements each time: repeated phrases are what give
	// the compression baselines dictionary material, exactly as real code
	// repeats its idioms.
	pool := make([][]string, 2+rng.Intn(4))
	for p := range pool {
		pool[p] = statement()
	}
	emit("loop:")
	body := 4 + rng.Intn(maxBody-3)
	for s := 0; s < body; s++ {
		for _, line := range pool[rng.Intn(len(pool))] {
			emit("%s", line)
		}
	}
	emit("\tsubqi r16, 1, r16")
	emit("\tbgt r16, loop")

	if selfMod {
		// Idempotently re-store a text word in a tight loop: the patch
		// changes nothing architecturally but drives the redecode path,
		// which translation and predecode caches must survive.
		emit("\tli r2, 1")
		emit("\tslli r2, 26, r2")
		emit("\tldl r3, 4(r2)")
		emit("\tli r4, %d", 4+rng.Intn(28))
		emit("smc:")
		emit("\tstl r3, 4(r2)")
		emit("\tsubqi r4, 1, r4")
		emit("\tbgt r4, smc")
	}

	// Print a digest of a few scratch registers so output equivalence has
	// teeth beyond the memory checksum.
	for d := 0; d < 3; d++ {
		emit("\tmov %s, r1", scratch())
		emit("\tsys 2")
	}
	emit("\thalt")
	return b.String()
}

func pick(rng *rand.Rand, opts ...string) string {
	return opts[rng.Intn(len(opts))]
}
