package conform

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

// Failure reports the divergences one case exposed. It is an error distinct
// from ErrCase: a Failure means the implementation disagrees with itself (or
// with a pinned expectation), never that the case file is malformed.
type Failure struct {
	Name     string
	Problems []string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("case %q: %d conformance failure(s):\n  %s",
		f.Name, len(f.Problems), strings.Join(f.Problems, "\n  "))
}

// Report summarizes one passing (or failing) run of a case.
type Report struct {
	Name   string
	Insts  int64  // functional instruction count (Stats.Total)
	Cycles int64  // timed-run cycles
	Trap   string // termination ("none" or a trap kind name)
	Output string
}

// Run executes one case through the full equivalence lattice:
//
//	interpreted emu  ≡  translated emu          (functional plane)
//	live timed run   ≡  trace capture + replay  (timing plane)
//	interpreted emu  ≡  live timed run          (cross-plane functional tie)
//
// plus the static ground-truth audits — label-directed image decode, naive
// sweep must fail on 2-byte layouts, asm round trip on natural programs —
// and finally the case's pinned expectations. The live run and the capture
// use the session's default translate mode, so a DISE_TRANSLATE=always
// environment exercises the translated hot loop under the timing model too.
func Run(c *Case) (*Report, error) {
	cc, err := c.compile()
	if err != nil {
		return nil, err
	}
	var probs []string
	note := func(format string, v ...any) {
		probs = append(probs, fmt.Sprintf(format, v...))
	}

	// Functional plane: pure interpretation against forced translation.
	interp := cc.machine()
	interp.SetTranslate(emu.TranslateOff, 0)
	interp.Run()
	trans := cc.machine()
	trans.SetTranslate(emu.TranslateAlways, 0)
	trans.Run()
	diffMachines(note, "interp vs translated", interp, trans)

	// Timing plane: live timed run against a trace capture replayed under
	// the same engine penalties. Every Result counter must agree.
	live := cpu.Run(cc.machine(), cc.ccfg)
	tr := trace.Capture(cc.machine())
	replay := cpu.RunSource(tr.Replay(cc.ecfg.MissPenalty, cc.ecfg.ComposePenalty), cc.ccfg)
	for _, d := range live.Diff(replay) {
		note("live vs replay: %s", d)
	}

	// Cross-plane tie: the timed run's functional observables must match
	// pure interpretation — the timing model may not perturb architecture.
	if live.Emu != interp.Stats {
		note("interp vs live: stats %+v != %+v", interp.Stats, live.Emu)
	}
	if live.Output != interp.Output() {
		note("interp vs live: output %q != %q", interp.Output(), live.Output)
	}
	if d := diffTermination(interp.Err(), live.Err); d != "" {
		note("interp vs live: %s", d)
	}

	auditGroundTruth(note, cc)
	checkExpect(note, c, interp, live)

	rep := &Report{
		Name:   c.Name,
		Insts:  interp.Stats.Total,
		Cycles: live.Cycles,
		Trap:   trapName(interp.Err()),
		Output: interp.Output(),
	}
	if len(probs) > 0 {
		return rep, &Failure{Name: c.Name, Problems: probs}
	}
	return rep, nil
}

// diffMachines compares every architectural observable of two finished
// functional runs.
func diffMachines(note func(string, ...any), label string, a, b *emu.Machine) {
	if a.Stats != b.Stats {
		note("%s: stats %+v != %+v", label, a.Stats, b.Stats)
	}
	ra, rb := a.RegFile(), b.RegFile()
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if ra[r] != rb[r] {
			note("%s: %s = %#x != %#x", label, r, ra[r], rb[r])
		}
	}
	if ca, cb := a.Mem().Checksum(), b.Mem().Checksum(); ca != cb {
		note("%s: memory checksum %016x != %016x", label, ca, cb)
	}
	if a.Output() != b.Output() {
		note("%s: output %q != %q", label, a.Output(), b.Output())
	}
	if d := diffTermination(a.Err(), b.Err()); d != "" {
		note("%s: %s", label, d)
	}
}

// diffTermination compares two termination errors: by trap identity (kind,
// PC, DISE PC) when both are traps, by message otherwise.
func diffTermination(a, b error) string {
	if (a == nil) != (b == nil) {
		return fmt.Sprintf("termination: %v != %v", a, b)
	}
	if a == nil {
		return ""
	}
	var ta, tb *emu.Trap
	if errors.As(a, &ta) && errors.As(b, &tb) {
		if ta.Kind != tb.Kind || ta.PC != tb.PC || ta.DISEPC != tb.DISEPC {
			return fmt.Sprintf("trap: %v != %v", a, b)
		}
		return ""
	}
	if a.Error() != b.Error() {
		return fmt.Sprintf("error: %v != %v", a, b)
	}
	return ""
}

// trapName classifies a termination error as the name Expect.Trap uses:
// "none" for a clean halt, the trap kind name for a trap.
func trapName(err error) string {
	if err == nil {
		return "none"
	}
	var t *emu.Trap
	if errors.As(err, &t) {
		return t.Kind.String()
	}
	return err.Error()
}

// auditGroundTruth checks the static toolchain invariants of the case's
// program: the byte image must decode back to the exact unit list under its
// loader-emitted labels; images containing 2-byte codewords must defeat a
// naive aligned sweep (otherwise the labels are decorative, not
// load-bearing); and asm-sourced natural programs must survive the
// asm → disasm → asm round trip.
func auditGroundTruth(note func(string, ...any), cc *compiled) {
	p := cc.prog
	img, err := p.TextImage()
	if err != nil {
		note("audit: text image: %v", err)
		return
	}
	insts, err := program.DecodeTextImage(img, p.ByteLabels())
	if err != nil {
		note("audit: label-directed decode: %v", err)
	} else {
		for i := range p.Text {
			if insts[i] != p.Text[i] {
				note("audit: label-directed decode unit %d: %s != %s", i, insts[i], p.Text[i])
			}
		}
	}

	twoByte := false
	for i := range p.Text {
		if p.UnitSize(i) == 2 {
			twoByte = true
			break
		}
	}
	sweep := asm.SweepWords(img)
	if twoByte {
		if len(sweep) == len(p.Text) {
			same := true
			for i := range sweep {
				if sweep[i] != p.Text[i] {
					same = false
					break
				}
			}
			if same {
				note("audit: naive sweep reproduced a 2-byte-unit image; labels are not load-bearing")
			}
		}
	} else {
		if len(sweep) != len(p.Text) {
			note("audit: sweep of natural image: %d units != %d", len(sweep), len(p.Text))
		} else {
			for i := range sweep {
				if sweep[i] != p.Text[i] {
					note("audit: sweep unit %d: %s != %s", i, sweep[i], p.Text[i])
				}
			}
		}
	}

	if cc.natural != nil {
		if err := asm.RoundTrip(cc.natural); err != nil {
			note("audit: asm round trip: %v", err)
		}
	}
}

// checkExpect applies the case's pinned expectations to the finished runs.
func checkExpect(note func(string, ...any), c *Case, interp *emu.Machine, live *cpu.Result) {
	exp := c.Expect
	if exp == nil {
		return
	}
	if exp.Trap != "" {
		if got := trapName(interp.Err()); got != exp.Trap {
			note("expect: trap %q, got %q (%v)", exp.Trap, got, interp.Err())
		}
	}
	if exp.Output != "" && interp.Output() != exp.Output {
		note("expect: output %q, got %q", exp.Output, interp.Output())
	}
	if exp.Insts != 0 && interp.Stats.Total != exp.Insts {
		note("expect: insts %d, got %d", exp.Insts, interp.Stats.Total)
	}
	if exp.AppInsts != 0 && interp.Stats.AppInsts != exp.AppInsts {
		note("expect: app_insts %d, got %d", exp.AppInsts, interp.Stats.AppInsts)
	}
	if exp.Cycles != 0 && live.Cycles != exp.Cycles {
		note("expect: cycles %d, got %d", exp.Cycles, live.Cycles)
	}
	if exp.TextWrites != 0 && interp.Stats.TextWrites != exp.TextWrites {
		note("expect: text_writes %d, got %d", exp.TextWrites, interp.Stats.TextWrites)
	}
	if exp.Redecodes != 0 && interp.Stats.Redecodes != exp.Redecodes {
		note("expect: redecodes %d, got %d", exp.Redecodes, interp.Stats.Redecodes)
	}
	names := make([]string, 0, len(exp.Regs))
	for name := range exp.Regs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := isa.RegByName(name, true)
		if !r.Valid() {
			note("expect: regs: unknown register %q", name)
			continue
		}
		if got := interp.Reg(r); got != exp.Regs[name] {
			note("expect: %s = %#x, got %#x", name, exp.Regs[name], got)
		}
	}
	if exp.MemSum != "" {
		if got := fmt.Sprintf("%016x", interp.Mem().Checksum()); got != exp.MemSum {
			note("expect: mem_sum %s, got %s", exp.MemSum, got)
		}
	}
}

// Outcome pairs a case with the result of running it.
type Outcome struct {
	Case   *Case
	Report *Report // nil when the case failed to compile
	Err    error   // nil, ErrCase-wrapped, or a *Failure
}

// RunAll runs cases on a pool of workers and returns one outcome per case,
// in input order. workers <= 0 means one.
func RunAll(cases []*Case, workers int) []Outcome {
	if workers <= 0 {
		workers = 1
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	out := make([]Outcome, len(cases))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rep, err := Run(cases[i])
				out[i] = Outcome{Case: cases[i], Report: rep, Err: err}
			}
		}()
	}
	for i := range cases {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
