package conform

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testCases is sized so the in-package corpus exercises every generator
// feature several times while keeping `go test ./...` fast; the full-size
// corpus runs through cmd/disespec (make conform).
const testCases = 60

func TestGeneratorDeterminism(t *testing.T) {
	g := DefaultGenSpec()
	g.Cases = testCases
	a, b := g.Generate(), g.Generate()
	for i := range a {
		ja, _ := json.Marshal(a[i])
		jb, _ := json.Marshal(b[i])
		if string(ja) != string(jb) {
			t.Fatalf("case %d differs across generations:\n%s\n%s", i, ja, jb)
		}
	}

	// Case i depends only on (Seed, i), not on corpus size: a grown corpus
	// keeps every existing case byte-identical.
	g2 := g
	g2.Cases = testCases * 2
	grown := g2.Generate()
	for i := range a {
		ja, _ := json.Marshal(a[i])
		jb, _ := json.Marshal(grown[i])
		if string(ja) != string(jb) {
			t.Fatalf("case %d changed when the corpus grew", i)
		}
	}
}

func TestGeneratedCorpusPasses(t *testing.T) {
	g := DefaultGenSpec()
	g.Cases = testCases
	cases := g.Generate()

	var traps, prods, compress, selfMod, twoByte int
	for _, c := range cases {
		if c.Expect.Trap == "budget" {
			traps++
		}
		if c.Prods != "" {
			prods++
		}
		if c.Compress != "" {
			compress++
		}
		if strings.Contains(c.Asm, "smc:") {
			selfMod++
		}
		if c.Compress == CompressDedicated {
			cc, err := c.compile()
			if err != nil {
				t.Fatal(err)
			}
			for i := range cc.prog.Text {
				if cc.prog.UnitSize(i) == 2 {
					twoByte++
					break
				}
			}
		}
	}
	if traps == 0 || prods == 0 || compress == 0 || selfMod == 0 || twoByte == 0 {
		t.Fatalf("generator knob lost coverage: traps=%d prods=%d compress=%d selfmod=%d twobyte=%d",
			traps, prods, compress, selfMod, twoByte)
	}

	for _, o := range RunAll(cases, 4) {
		if o.Err != nil {
			t.Errorf("%v", o.Err)
		}
	}
}

func TestCommittedCorpusPasses(t *testing.T) {
	cases, err := LoadDir(filepath.Join("..", "..", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 8 {
		t.Fatalf("committed corpus has only %d cases", len(cases))
	}
	for _, o := range RunAll(cases, 4) {
		if o.Err != nil {
			t.Errorf("%v", o.Err)
		}
	}
}

func TestRunDetectsViolatedExpectation(t *testing.T) {
	g := DefaultGenSpec()
	g.Cases = 1
	c := g.Case(0)
	c.Expect = &Expect{Output: "not the real output"}
	_, err := Run(c)
	var f *Failure
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Failure", err)
	}
	if errors.Is(err, ErrCase) {
		t.Fatalf("expectation violation misclassified as case error: %v", err)
	}
}

func TestRunRejectsMalformedCases(t *testing.T) {
	for _, c := range []*Case{
		{Name: "no-program"},
		{Name: "both", Asm: "halt", ImageB64: "aGk="},
		{Name: "bad-asm", Asm: ".entry main\nmain:\n\tbogus r1"},
		{Name: "bad-compress", Asm: ".entry main\nmain:\n\thalt", Compress: "zip"},
		{Name: "bad-reg", Asm: ".entry main\nmain:\n\thalt", Regs: map[string]uint64{"r1": 1}},
		{Name: "bad-budget", Asm: ".entry main\nmain:\n\thalt", BudgetInsts: -1},
		{Name: "bad-prods", Asm: ".entry main\nmain:\n\thalt", Prods: "prod p {"},
	} {
		if _, err := Run(c); !errors.Is(err, ErrCase) {
			t.Errorf("%s: err = %v, want ErrCase", c.Name, err)
		}
	}
}

func TestExpectPinsFullState(t *testing.T) {
	c := &Case{
		Name: "pinned",
		Asm: `.entry main
main:
	li r1, 7
	li r2, 35
	addq r1, r2, r1
	sys 2
	halt
`,
		Expect: &Expect{
			Trap:     "none",
			Output:   "42",
			Insts:    5,
			AppInsts: 5,
			Regs:     map[string]uint64{"r1": 42, "r2": 35},
		},
	}
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
	c.Expect.Regs["r1"] = 41
	if _, err := Run(c); err == nil {
		t.Fatal("wrong pinned register value passed")
	}
}

func TestShrinkMinimizesFailingCase(t *testing.T) {
	g := DefaultGenSpec()
	g.Cases = 1
	c := g.Case(0)
	c.Expect = &Expect{MemSum: "0000000000000bad"}

	before := len(strings.Split(c.Asm, "\n"))
	min, tried := Shrink(c)
	if tried == 0 {
		t.Fatal("shrinker ran no candidates")
	}
	after := len(strings.Split(min.Asm, "\n"))
	if after >= before {
		t.Fatalf("no reduction: %d lines -> %d", before, after)
	}
	// The shrunken case must still fail, with the same class. The mem_sum
	// expectation survives shrinking because dropping it would make the
	// case pass.
	_, err := Run(min)
	if classify(err) != classConform {
		t.Fatalf("shrunken case class = %v (err %v), want conformance failure", classify(err), err)
	}
	if min.Expect == nil || min.Expect.MemSum == "" {
		t.Fatal("shrinker dropped the expectation that makes the case fail")
	}
}

func TestShrinkLeavesPassingCaseAlone(t *testing.T) {
	g := DefaultGenSpec()
	g.Cases = 1
	c := g.Case(0)
	min, tried := Shrink(c)
	if tried != 0 || min != c {
		t.Fatalf("passing case was shrunk (tried %d)", tried)
	}
}

func TestShardPartition(t *testing.T) {
	g := DefaultGenSpec()
	g.Cases = testCases
	cases := g.Generate()

	const n = 4
	seen := map[string]int{}
	total := 0
	for i := 0; i < n; i++ {
		for _, c := range Shard(cases, i, n) {
			seen[c.Name]++
			total++
		}
	}
	if total != len(cases) {
		t.Fatalf("shards cover %d cases, want %d", total, len(cases))
	}
	for name, k := range seen {
		if k != 1 {
			t.Fatalf("case %s appears in %d shards", name, k)
		}
	}
	if len(Shard(cases, 0, 1)) != len(cases) {
		t.Fatal("1-shard split must be identity")
	}
}

func TestParseShard(t *testing.T) {
	if i, n, err := ParseShard(""); err != nil || i != 0 || n != 1 {
		t.Fatalf("empty shard: %d/%d, %v", i, n, err)
	}
	if i, n, err := ParseShard("2/5"); err != nil || i != 2 || n != 5 {
		t.Fatalf("2/5: %d/%d, %v", i, n, err)
	}
	for _, bad := range []string{"5/5", "-1/3", "x/3", "3"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestCaseFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := DefaultGenSpec()
	g.Cases = 1
	c := g.Case(0)
	path := filepath.Join(dir, "case.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(c)
	jb, _ := json.Marshal(got)
	if string(ja) != string(jb) {
		t.Fatalf("round trip drift:\n%s\n%s", ja, jb)
	}

	// Unknown fields are typos, not extensions: they must be rejected.
	if err := os.WriteFile(path, []byte(`{"name":"x","asm":"halt","expectt":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("unknown field accepted")
	}

	cases, err := LoadDir(dir)
	if err == nil || len(cases) != 0 {
		t.Fatalf("LoadDir swallowed a bad case: %v", err)
	}
}
