package core

// Robustness: the production-language parser must reject arbitrary
// mutations of valid production text with errors, never panics — it is the
// user-facing controller interface (paper §2.3).

import (
	"math/rand"
	"strings"
	"testing"
)

func mutateProd(r *rand.Rand, s string) string {
	b := []byte(s)
	if len(b) == 0 {
		return "prod"
	}
	switch r.Intn(5) {
	case 0:
		b[r.Intn(len(b))] = byte(32 + r.Intn(95))
	case 1:
		i := r.Intn(len(b))
		j := i + r.Intn(len(b)-i)
		b = append(b[:i], b[j:]...)
	case 2:
		tok := []string{"{", "}", "%insn", "%p23", "@x:", "dbeq", "match", "replace", "==", "$dr8"}
		n := tok[r.Intn(len(tok))]
		i := r.Intn(len(b))
		b = append(b[:i], append([]byte(" "+n+" "), b[i:]...)...)
	case 3:
		lines := strings.Split(string(b), "\n")
		if len(lines) > 2 {
			i, j := r.Intn(len(lines)), r.Intn(len(lines))
			lines[i], lines[j] = lines[j], lines[i]
		}
		return strings.Join(lines, "\n")
	case 4:
		return string(b) + string(b[:r.Intn(len(b))])
	}
	return string(b)
}

func TestProductionParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		src := mfiSrc
		for k := 0; k <= r.Intn(3); k++ {
			src = mutateProd(r, src)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked: %v\nsource:\n%s", p, src)
				}
			}()
			prods, err := ParseProductions(src)
			if err != nil {
				return
			}
			// Whatever parsed must also install and validate cleanly.
			c := NewController(perfectCfg())
			for _, pp := range prods {
				if pp.Aware {
					continue
				}
				if _, err := c.InstallTransparent(pp.Name, pp.Pattern, pp.Repl); err != nil {
					t.Fatalf("parsed production failed to install: %v\nsource:\n%s", err, src)
				}
			}
		}()
	}
}
