package core

import (
	"testing"

	"repro/internal/isa"
)

func perfectCfg() EngineConfig {
	cfg := DefaultEngineConfig()
	cfg.RTPerfect = true
	return cfg
}

func installMFI(t *testing.T, c *Controller) *Production {
	t.Helper()
	p, err := c.InstallTransparent("mfi_store",
		pat(func(p *Pattern) { p.Class = isa.ClassStore }), mfiRepl())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExpandNoMatch(t *testing.T) {
	c := NewController(perfectCfg())
	installMFI(t, c)
	if exp := c.Engine().Expand(aAdd, 0); exp != nil {
		t.Errorf("add should not expand, got %+v", exp)
	}
	if exp := c.Engine().Expand(aLoad, 0); exp != nil {
		t.Errorf("load should not expand under store-only MFI")
	}
}

func TestExpandMatch(t *testing.T) {
	c := NewController(perfectCfg())
	installMFI(t, c)
	exp := c.Engine().Expand(aStore, 0x1000)
	if exp == nil {
		t.Fatal("store should expand")
	}
	if len(exp.Insts) != 5 {
		t.Fatalf("expanded to %d insts", len(exp.Insts))
	}
	if exp.Insts[4] != aStore {
		t.Errorf("trigger not spliced: %v", exp.Insts[4])
	}
	if exp.Stall != 0 {
		t.Errorf("perfect RT should not stall, got %d", exp.Stall)
	}
	st := c.Engine().Stats
	if st.Expansions != 1 || st.Fetched != 3-2+2 {
		// Fetched counts every Expand call in this test only: 1.
		_ = st
	}
}

func TestMostSpecificWins(t *testing.T) {
	// Negative specification from §2.2: "all loads that don't use the stack
	// pointer": an identity expansion for sp-loads plus a general pattern.
	c := NewController(perfectCfg())
	identity := &Replacement{Name: "id", Insts: []ReplInst{TriggerInst()}}
	if _, err := c.InstallTransparent("sp_loads",
		pat(func(p *Pattern) { p.Class = isa.ClassLoad; p.RS = isa.RegSP }), identity); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InstallTransparent("all_loads",
		pat(func(p *Pattern) { p.Class = isa.ClassLoad }), mfiRepl()); err != nil {
		t.Fatal(err)
	}
	spLoad := isa.Inst{Op: isa.OpLDQ, RD: 1, RS: isa.RegSP, RT: isa.NoReg}
	exp := c.Engine().Expand(spLoad, 0)
	if exp == nil || len(exp.Insts) != 1 {
		t.Fatalf("sp load should expand to identity, got %+v", exp)
	}
	exp = c.Engine().Expand(aLoad, 0)
	if exp == nil || len(exp.Insts) != 5 {
		t.Fatalf("other loads should get the full check, got %+v", exp)
	}
}

func TestAwareTagSelectsEntry(t *testing.T) {
	c := NewController(perfectCfg())
	dict := []*Replacement{
		{Name: "e0", Insts: []ReplInst{FromLiteral(isa.Nop())}},
		{Name: "e1", Insts: []ReplInst{FromLiteral(aAdd), FromLiteral(aAdd)}},
	}
	if _, err := c.InstallAware("decomp",
		pat(func(p *Pattern) { p.Op = isa.OpRES0 }), dict); err != nil {
		t.Fatal(err)
	}
	exp := c.Engine().Expand(isa.Codeword(isa.OpRES0, 0, 0, 0, 1), 0)
	if exp == nil || len(exp.Insts) != 2 {
		t.Fatalf("tag 1 should select e1, got %+v", exp)
	}
	exp = c.Engine().Expand(isa.Codeword(isa.OpRES0, 0, 0, 0, 0), 0)
	if exp == nil || len(exp.Insts) != 1 {
		t.Fatalf("tag 0 should select e0, got %+v", exp)
	}
}

func TestAwareUnknownTagPassesThrough(t *testing.T) {
	c := NewController(perfectCfg())
	dict := []*Replacement{{Name: "e0", Insts: []ReplInst{FromLiteral(isa.Nop())}}}
	if _, err := c.InstallAware("decomp",
		pat(func(p *Pattern) { p.Op = isa.OpRES0 }), dict); err != nil {
		t.Fatal(err)
	}
	if exp := c.Engine().Expand(isa.Codeword(isa.OpRES0, 0, 0, 0, 100), 0); exp != nil && exp.Insts != nil {
		t.Error("unknown tag should pass through")
	}
}

func TestRTMissAndRefill(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.RTEntries = 8
	cfg.RTAssoc = 2
	c := NewController(cfg)
	installMFI(t, c)
	e := c.Engine()

	exp := e.Expand(aStore, 0)
	if exp == nil || !exp.RTMiss {
		t.Fatalf("first expansion should miss the RT: %+v", exp)
	}
	if exp.Stall != cfg.MissPenalty {
		t.Errorf("stall = %d, want %d", exp.Stall, cfg.MissPenalty)
	}
	exp = e.Expand(aStore, 4)
	if exp == nil || exp.RTMiss {
		t.Errorf("second expansion should hit: %+v", exp)
	}
	if e.Stats.RTMisses != 1 {
		t.Errorf("RTMisses = %d", e.Stats.RTMisses)
	}
}

func TestRTConflictEviction(t *testing.T) {
	// Two sequences that collide in a tiny direct-mapped RT must evict one
	// another: alternating triggers miss every time.
	cfg := DefaultEngineConfig()
	cfg.RTEntries = 4
	cfg.RTAssoc = 1
	c := NewController(cfg)
	r1 := &Replacement{Name: "a", Insts: []ReplInst{FromLiteral(isa.Nop()), FromLiteral(isa.Nop()), FromLiteral(isa.Nop()), FromLiteral(isa.Nop())}}
	r2 := &Replacement{Name: "b", Insts: []ReplInst{FromLiteral(aAdd), FromLiteral(aAdd), FromLiteral(aAdd), FromLiteral(aAdd)}}
	if _, err := c.InstallTransparent("pa", pat(func(p *Pattern) { p.Op = isa.OpSTQ }), r1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InstallTransparent("pb", pat(func(p *Pattern) { p.Op = isa.OpSTL }), r2); err != nil {
		t.Fatal(err)
	}
	e := c.Engine()
	stl := isa.Inst{Op: isa.OpSTL, RT: 1, RS: 2, RD: isa.NoReg}
	misses := e.Stats.RTMisses
	for i := 0; i < 6; i++ {
		e.Expand(aStore, 0)
		e.Expand(stl, 4)
	}
	if got := e.Stats.RTMisses - misses; got < 10 {
		t.Errorf("alternating conflicting sequences should thrash a 4-entry DM RT; misses = %d", got)
	}
}

// installAwareEntry registers a one-entry aware dictionary triggered by
// res0 codewords and returns the codeword that selects it.
func installAwareEntry(t *testing.T, c *Controller) isa.Inst {
	t.Helper()
	dict := []*Replacement{{Name: "e0", Insts: []ReplInst{FromLiteral(aAdd), FromLiteral(aAdd)}}}
	if _, err := c.InstallAware("aw", pat(func(p *Pattern) { p.Op = isa.OpRES0 }), dict); err != nil {
		t.Fatal(err)
	}
	return isa.Codeword(isa.OpRES0, 0, 0, 0, 0)
}

func TestComposerInvokedOnAwareMiss(t *testing.T) {
	cfg := DefaultEngineConfig()
	c := NewController(cfg)
	cw := installAwareEntry(t, c)
	calls := 0
	c.SetComposer(ComposerFunc(func(id int, r *Replacement) (*Replacement, bool) {
		calls++
		longer := &Replacement{Name: r.Name + "+", Insts: append([]ReplInst{FromLiteral(isa.Nop())}, r.Insts...)}
		return longer, true
	}))
	e := c.Engine()
	exp := e.Expand(cw, 0)
	if exp == nil || !exp.Composed {
		t.Fatalf("first aware miss should compose: %+v", exp)
	}
	if exp.Stall != cfg.ComposePenalty {
		t.Errorf("stall = %d, want compose penalty %d", exp.Stall, cfg.ComposePenalty)
	}
	if len(exp.Insts) != 3 {
		t.Errorf("composed length = %d, want 3", len(exp.Insts))
	}
	if calls != 1 {
		t.Errorf("composer calls = %d", calls)
	}
	// Hits serve the composed form without re-invoking the composer.
	exp = e.Expand(cw, 4)
	if exp.RTMiss || len(exp.Insts) != 3 {
		t.Errorf("hit should serve composed form: %+v", exp)
	}
}

func TestComposerSkipsTransparentMisses(t *testing.T) {
	// Composition is invoked only on aware production misses (paper §3.3);
	// a transparent production's sequences are never re-composed.
	cfg := DefaultEngineConfig()
	c := NewController(cfg)
	installMFI(t, c)
	c.SetComposer(ComposerFunc(func(id int, r *Replacement) (*Replacement, bool) {
		t.Error("composer must not run for transparent sequences")
		return r, false
	}))
	exp := c.Engine().Expand(aStore, 0)
	if exp == nil || exp.Composed || exp.Stall != cfg.MissPenalty {
		t.Errorf("transparent miss record wrong: %+v", exp)
	}
}

func TestPerfectRTComposesWithoutPenalty(t *testing.T) {
	// A perfect RT (Fig 8a) still serves *composed* sequences — only the
	// miss-handling latency disappears.
	c := NewController(perfectCfg())
	cw := installAwareEntry(t, c)
	c.SetComposer(ComposerFunc(func(id int, r *Replacement) (*Replacement, bool) {
		longer := &Replacement{Name: r.Name + "+", Insts: append([]ReplInst{FromLiteral(isa.Nop())}, r.Insts...)}
		return longer, true
	}))
	exp := c.Engine().Expand(cw, 0)
	if exp == nil || exp.Stall != 0 || exp.RTMiss || exp.Composed {
		t.Errorf("perfect RT must not charge miss events: %+v", exp)
	}
	if len(exp.Insts) != 3 {
		t.Errorf("perfect RT must still serve the composed form; len = %d", len(exp.Insts))
	}
}

func TestPTMissVirtualization(t *testing.T) {
	// More active patterns than PT entries: references to evicted patterns
	// re-fault them in, counting PT misses.
	cfg := perfectCfg()
	cfg.PTEntries = 2
	c := NewController(cfg)
	id := func(n string) *Replacement {
		return &Replacement{Name: n, Insts: []ReplInst{TriggerInst()}}
	}
	ops := []isa.Opcode{isa.OpADDQ, isa.OpSUBQ, isa.OpMULQ, isa.OpAND}
	for _, op := range ops {
		opc := op
		if _, err := c.InstallTransparent(opc.String(),
			pat(func(p *Pattern) { p.Op = opc }), id(opc.String())); err != nil {
			t.Fatal(err)
		}
	}
	e := c.Engine()
	for round := 0; round < 3; round++ {
		for _, op := range ops {
			in := isa.Inst{Op: op, RS: 1, RT: 2, RD: 3}
			if exp := e.Expand(in, 0); exp == nil || len(exp.Insts) != 1 {
				t.Fatalf("round %d op %v: no expansion", round, op)
			}
		}
	}
	if e.Stats.PTMisses == 0 {
		t.Error("cycling 4 patterns through a 2-entry PT must miss")
	}
	// Correctness is preserved despite misses: every op still expanded.
	if e.Stats.Expansions != 12 {
		t.Errorf("Expansions = %d, want 12", e.Stats.Expansions)
	}
}

func TestDeactivateActivate(t *testing.T) {
	c := NewController(perfectCfg())
	p := installMFI(t, c)
	e := c.Engine()
	if e.Expand(aStore, 0) == nil {
		t.Fatal("should expand while active")
	}
	c.Deactivate(p)
	if e.Expand(aStore, 0) != nil {
		t.Error("should not expand after deactivation")
	}
	c.Activate(p)
	if e.Expand(aStore, 0) == nil {
		t.Error("should expand after re-activation")
	}
}

func TestSaveRestoreState(t *testing.T) {
	c := NewController(perfectCfg())
	installMFI(t, c)
	saved := c.SaveState()
	// "Context switch": a second process with no productions.
	c.RestoreState(State{})
	if c.Engine().Expand(aStore, 0) != nil {
		t.Error("other process should see no productions")
	}
	c.RestoreState(saved)
	if c.Engine().Expand(aStore, 0) == nil {
		t.Error("original process's productions should be restored")
	}
}

func TestExpansionRate(t *testing.T) {
	c := NewController(perfectCfg())
	installMFI(t, c)
	e := c.Engine()
	e.Expand(aStore, 0)
	e.Expand(aAdd, 4)
	e.Expand(aAdd, 8)
	e.Expand(aStore, 12)
	if got := e.Stats.ExpansionRate(); got != 0.5 {
		t.Errorf("ExpansionRate = %v", got)
	}
}

func TestInstallErrors(t *testing.T) {
	c := NewController(perfectCfg())
	if _, err := c.InstallTransparent("e", anyRegs(), &Replacement{Name: "e"}); err == nil {
		t.Error("empty replacement should fail")
	}
	if _, err := c.InstallAware("e", anyRegs(), nil); err == nil {
		t.Error("empty dictionary should fail")
	}
	big := make([]*Replacement, isa.MaxTag+2)
	for i := range big {
		big[i] = &Replacement{Name: "x", Insts: []ReplInst{FromLiteral(isa.Nop())}}
	}
	if _, err := c.InstallAware("big", anyRegs(), big); err == nil {
		t.Error("oversized dictionary should fail")
	}
}

func TestRTBlockFragmentation(t *testing.T) {
	// §2.2: coalescing replacement instructions into blocks trades read
	// ports for internal fragmentation. A 5-instruction sequence occupies
	// 5 slots at block=1 but 2 blocks x 4 = 8 slots at block=4; with two
	// such sequences and a 12-instruction RT, block=1 fits both while
	// block=4 cannot, and the working set thrashes.
	mkSeq := func(op isa.Opcode) *Replacement {
		r := &Replacement{Name: op.String()}
		for i := 0; i < 5; i++ {
			r.Insts = append(r.Insts, FromLiteral(isa.Inst{Op: op, RS: 1, RT: 2, RD: 3}))
		}
		return r
	}
	run := func(block int) int64 {
		cfg := DefaultEngineConfig()
		cfg.RTEntries = 12
		cfg.RTAssoc = 2
		cfg.RTBlock = block
		c := NewController(cfg)
		if _, err := c.InstallTransparent("pa", pat(func(p *Pattern) { p.Op = isa.OpSTQ }), mkSeq(isa.OpADDQ)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.InstallTransparent("pb", pat(func(p *Pattern) { p.Op = isa.OpSTL }), mkSeq(isa.OpSUBQ)); err != nil {
			t.Fatal(err)
		}
		e := c.Engine()
		stl := isa.Inst{Op: isa.OpSTL, RT: 1, RS: 2, RD: isa.NoReg}
		for i := 0; i < 20; i++ {
			if exp := e.Expand(aStore, 0); exp == nil || len(exp.Insts) != 5 {
				t.Fatal("expansion broken under blocking")
			}
			if exp := e.Expand(stl, 4); exp == nil || len(exp.Insts) != 5 {
				t.Fatal("expansion broken under blocking")
			}
		}
		return e.Stats.RTMisses
	}
	fine := run(1)
	coarse := run(4)
	if fine > 2 {
		t.Errorf("block=1 should hold both sequences: misses = %d", fine)
	}
	if coarse <= fine {
		t.Errorf("block=4 fragmentation should cause misses: %d vs %d", coarse, fine)
	}
}
