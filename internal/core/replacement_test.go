package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// mfiRepl builds the paper's Figure 1 replacement sequence by hand:
//
//	srli %rs, 26, $dr1
//	xor  $dr1, $dr2, $dr1
//	dbeq $dr1, @ok
//	sys  3
//	@ok: %insn
func mfiRepl() *Replacement {
	dr1, dr2 := isa.RegDR0+1, isa.RegDR0+2
	return &Replacement{
		Name: "mfi",
		Insts: []ReplInst{
			{Op: isa.OpSRLI, RS: TReg(RegTRS), RT: Lit(isa.NoReg), RD: Lit(dr1),
				Imm: ImmField{Dir: ImmLit, Lit: 26}},
			{Op: isa.OpXOR, RS: Lit(dr1), RT: Lit(dr2), RD: Lit(dr1)},
			{Op: isa.OpBEQ, RS: Lit(dr1), RT: Lit(isa.NoReg), RD: Lit(isa.NoReg),
				Imm: ImmField{Dir: ImmLit, Lit: 4}, DiseBranch: true},
			{Op: isa.OpSYS, RS: Lit(isa.NoReg), RT: Lit(isa.NoReg), RD: Lit(isa.NoReg),
				Imm: ImmField{Dir: ImmLit, Lit: isa.SysError}},
			TriggerInst(),
		},
	}
}

func TestInstantiateMFI(t *testing.T) {
	store := isa.Inst{Op: isa.OpSTQ, RT: 7, RS: 9, RD: isa.NoReg, Imm: 16}
	seq := mfiRepl().Instantiate(store, 0x4000)
	if len(seq) != 5 {
		t.Fatalf("len = %d", len(seq))
	}
	// T.RS parameterization: the srl reads the trigger's address register.
	if seq[0].Op != isa.OpSRLI || seq[0].RS != 9 || seq[0].RD != isa.RegDR0+1 || seq[0].Imm != 26 {
		t.Errorf("seq[0] = %v", seq[0])
	}
	// T.INSN: the final instruction is the trigger itself.
	if seq[4] != store {
		t.Errorf("seq[4] = %v, want trigger", seq[4])
	}
}

func TestInstantiateOpFromTrigger(t *testing.T) {
	// Sandboxing-style: re-issue the trigger's own opcode with the base
	// register swapped to a dedicated register.
	ri := ReplInst{
		OpFromTrigger: true,
		RS:            Lit(isa.RegDR0),
		RT:            TReg(RegTRT),
		RD:            TReg(RegTRD),
		Imm:           ImmField{Dir: ImmTImm},
	}
	store := isa.Inst{Op: isa.OpSTQ, RT: 7, RS: 9, RD: isa.NoReg, Imm: 16}
	got := ri.Instantiate(store, 0)
	if got.Op != isa.OpSTQ || got.RS != isa.RegDR0 || got.RT != 7 || got.Imm != 16 {
		t.Errorf("got %v", got)
	}
}

func TestInstantiateTPC(t *testing.T) {
	ri := ReplInst{Op: isa.OpLDA, RS: Lit(isa.RegZero), RT: Lit(isa.NoReg),
		RD: Lit(isa.RegDR0), Imm: ImmField{Dir: ImmTPC}}
	got := ri.Instantiate(isa.Nop(), 0x1234)
	if got.Imm != 0x1234 {
		t.Errorf("TPC imm = %#x", got.Imm)
	}
}

func TestWideImmParams(t *testing.T) {
	cw := isa.Codeword(isa.OpRES0, 3, 31, 30, 5) // p2..p3 = 11111 11110
	cases := []struct {
		dir  ImmDir
		want int64
	}{
		{ImmP1, 3},
		{ImmP2, -1},  // 31 as signed 5-bit
		{ImmP3, -2},  // 30 as signed 5-bit
		{ImmP23, -2}, // 1111111110 as signed 10-bit
		{ImmP123, 3<<10 | 0x3fe - (0 << 15)},
	}
	for _, c := range cases {
		ri := ReplInst{Op: isa.OpLDA, RS: Lit(isa.RegZero), RT: Lit(isa.NoReg),
			RD: Lit(isa.RegDR0), Imm: ImmField{Dir: c.dir}}
		if got := ri.Instantiate(cw, 0).Imm; got != c.want {
			t.Errorf("dir %d: got %d, want %d", c.dir, got, c.want)
		}
	}
}

func TestWideImmRoundTripProperty(t *testing.T) {
	// Any signed 10-bit value survives a pack-into-params / extract cycle.
	f := func(raw int16) bool {
		v := int64(raw % 512) // signed 10-bit range
		p2 := uint8(v>>5) & 0x1f
		p3 := uint8(v) & 0x1f
		cw := isa.Codeword(isa.OpRES0, 0, p2, p3, 0)
		ri := ReplInst{Op: isa.OpLDA, RS: Lit(isa.RegZero), RT: Lit(isa.NoReg),
			RD: Lit(isa.RegDR0), Imm: ImmField{Dir: ImmP23}}
		return ri.Instantiate(cw, 0).Imm == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromLiteral(t *testing.T) {
	in := isa.Inst{Op: isa.OpADDQ, RS: 1, RT: 2, RD: 3}
	ri := FromLiteral(in)
	if ri.Parameterized() {
		t.Error("literal template should not be parameterized")
	}
	if got := ri.Instantiate(isa.Nop(), 0); got != in {
		t.Errorf("got %v", got)
	}
}

func TestParameterized(t *testing.T) {
	if !TriggerInst().Parameterized() {
		t.Error("%insn is parameterized")
	}
	ri := FromLiteral(isa.Nop())
	ri.Imm = ImmField{Dir: ImmTImm}
	if !ri.Parameterized() {
		t.Error("T.IMM is parameterized")
	}
}

func TestReplacementValidate(t *testing.T) {
	r := mfiRepl()
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
	bad := &Replacement{Name: "bad", Insts: []ReplInst{
		{Op: isa.OpBEQ, RS: Lit(isa.RegDR0), RT: Lit(isa.NoReg), RD: Lit(isa.NoReg),
			Imm: ImmField{Dir: ImmLit, Lit: 99}, DiseBranch: true},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate should reject out-of-sequence DISE branch")
	}
}

func TestTriggerIndex(t *testing.T) {
	if got := mfiRepl().TriggerIndex(); got != 4 {
		t.Errorf("TriggerIndex = %d", got)
	}
	r := &Replacement{Name: "n", Insts: []ReplInst{FromLiteral(isa.Nop())}}
	if got := r.TriggerIndex(); got != -1 {
		t.Errorf("TriggerIndex = %d", got)
	}
}

func TestReplacementString(t *testing.T) {
	s := mfiRepl().String()
	for _, want := range []string{"srli %rs, 26, $dr1", "dbeq", "%insn"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in:\n%s", want, s)
		}
	}
}
