package core

import (
	"testing"

	"repro/internal/isa"
)

func anyRegs() Pattern { return Pattern{RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg} }

func pat(mut func(*Pattern)) Pattern {
	p := anyRegs()
	mut(&p)
	return p
}

var (
	aLoad  = isa.Inst{Op: isa.OpLDQ, RD: 1, RS: 2, RT: isa.NoReg, Imm: 8}
	aStore = isa.Inst{Op: isa.OpSTQ, RT: 1, RS: isa.RegSP, RD: isa.NoReg, Imm: -8}
	aAdd   = isa.Inst{Op: isa.OpADDQ, RS: 1, RT: 2, RD: 3}
)

func TestPatternOpcode(t *testing.T) {
	p := pat(func(p *Pattern) { p.Op = isa.OpLDQ })
	if !p.Matches(aLoad) || p.Matches(aStore) || p.Matches(aAdd) {
		t.Error("opcode pattern match wrong")
	}
}

func TestPatternClass(t *testing.T) {
	p := pat(func(p *Pattern) { p.Class = isa.ClassStore })
	if p.Matches(aLoad) || !p.Matches(aStore) {
		t.Error("class pattern match wrong")
	}
	stl := isa.Inst{Op: isa.OpSTL, RT: 4, RS: 5, RD: isa.NoReg}
	if !p.Matches(stl) {
		t.Error("class pattern should match all stores")
	}
}

func TestPatternRegister(t *testing.T) {
	// "loads that use the stack pointer as their address register" (§2.1).
	p := pat(func(p *Pattern) { p.Class = isa.ClassLoad; p.RS = isa.RegSP })
	spLoad := isa.Inst{Op: isa.OpLDQ, RD: 1, RS: isa.RegSP, RT: isa.NoReg}
	if !p.Matches(spLoad) || p.Matches(aLoad) {
		t.Error("register-constrained pattern wrong")
	}
}

func TestPatternImmSign(t *testing.T) {
	// "conditional branches with negative offsets" (§2.1).
	p := pat(func(p *Pattern) { p.Class = isa.ClassCondBr; p.ImmSign = -1 })
	back := isa.Inst{Op: isa.OpBNE, RS: 1, RT: isa.NoReg, RD: isa.NoReg, Imm: -4}
	fwd := isa.Inst{Op: isa.OpBNE, RS: 1, RT: isa.NoReg, RD: isa.NoReg, Imm: 4}
	if !p.Matches(back) || p.Matches(fwd) {
		t.Error("negative-offset pattern wrong")
	}
}

func TestPatternExactImm(t *testing.T) {
	p := pat(func(p *Pattern) { p.Op = isa.OpSTQ; p.MatchImm = true; p.Imm = -8 })
	if !p.Matches(aStore) {
		t.Error("exact-imm should match")
	}
	other := aStore
	other.Imm = 0
	if p.Matches(other) {
		t.Error("exact-imm should not match different imm")
	}
}

func TestSpecificityOrdering(t *testing.T) {
	classPat := pat(func(p *Pattern) { p.Class = isa.ClassLoad })
	opPat := pat(func(p *Pattern) { p.Op = isa.OpLDQ })
	opRegPat := pat(func(p *Pattern) { p.Op = isa.OpLDQ; p.RS = isa.RegSP })
	if !(classPat.Specificity() < opPat.Specificity()) {
		t.Error("opcode should be more specific than class")
	}
	if !(opPat.Specificity() < opRegPat.Specificity()) {
		t.Error("opcode+reg should be more specific than opcode")
	}
}

func TestPatternOpcodes(t *testing.T) {
	p := pat(func(p *Pattern) { p.Class = isa.ClassStore })
	ops := p.Opcodes()
	if len(ops) != 2 { // stq, stl
		t.Errorf("store class covers %d opcodes, want 2", len(ops))
	}
	q := pat(func(p *Pattern) { p.Op = isa.OpBNE })
	if len(q.Opcodes()) != 1 {
		t.Error("exact opcode covers exactly itself")
	}
	wild := anyRegs()
	if len(wild.Opcodes()) != len(isa.Opcodes()) {
		t.Error("unconstrained pattern covers all opcodes")
	}
}

func TestPatternString(t *testing.T) {
	p := pat(func(p *Pattern) { p.Class = isa.ClassStore; p.RS = isa.RegSP })
	if got := p.String(); got != "class == store && rs == sp" {
		t.Errorf("String = %q", got)
	}
	empty := anyRegs()
	if got := empty.String(); got != "any" {
		t.Errorf("String = %q", got)
	}
}
