package core

import (
	"errors"
	"testing"
)

// FuzzParseProductions asserts the production parser never panics on arbitrary
// input and that every rejection wraps ErrParse.
func FuzzParseProductions(f *testing.F) {
	f.Add("")
	f.Add(mfiSrc)
	f.Add("prod p { match op == addq\n replace { addqi %rd, 1, %rd } }")
	f.Add("prod p { match class == store }")
	f.Add("prod { }")
	f.Add("prod p { replace { bogus $dr9, 1 } }")
	f.Add("# comment only\n")
	f.Add("prod p { match op == nosuchop\n replace { } }")
	f.Add("\x00{{}}")
	f.Fuzz(func(t *testing.T, src string) {
		ps, err := ParseProductions(src)
		if err != nil {
			if !errors.Is(err, ErrParse) {
				t.Fatalf("error %v does not wrap ErrParse", err)
			}
			return
		}
		for _, p := range ps {
			if p == nil {
				t.Fatal("nil production without error")
			}
		}
	})
}
