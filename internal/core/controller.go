package core

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Composer is the hook the RT miss handler calls for sequences that must be
// composed at fill time — the transparent-with-aware composition model of
// paper §3.3: aware productions live in the application's data segment, so
// the kernel cannot pre-compose them; instead composition runs on every
// aware production miss and composite productions exist in the RT only.
type Composer interface {
	// Compose transforms the virtual-store sequence fetched on an RT miss.
	// It returns the sequence to install and whether composition work was
	// actually performed (which raises the miss penalty).
	Compose(id int, r *Replacement) (*Replacement, bool)
}

// ComposerFunc adapts a function to the Composer interface.
type ComposerFunc func(id int, r *Replacement) (*Replacement, bool)

// Compose implements Composer.
func (f ComposerFunc) Compose(id int, r *Replacement) (*Replacement, bool) { return f(id, r) }

// Controller mediates all PT/RT manipulation. It owns the virtual production
// store — the PT and RT are caches over it — translates externally specified
// productions into engine form, and handles misses (paper §2.3).
type Controller struct {
	engine *Engine

	activeProds []*Production
	repls       map[int]*Replacement
	aware       map[int]bool // ids registered by InstallAware
	nextID      int

	composer Composer
	memo     map[int]*Replacement
}

// NewController creates a controller and its engine.
func NewController(cfg EngineConfig) *Controller {
	c := &Controller{
		repls:  map[int]*Replacement{},
		aware:  map[int]bool{},
		memo:   map[int]*Replacement{},
		nextID: 1,
	}
	c.engine = newEngine(cfg, c)
	return c
}

// Engine returns the controller's engine.
func (c *Controller) Engine() *Engine { return c.engine }

// InstallTransparent activates a transparent production: pattern -> repl.
func (c *Controller) InstallTransparent(name string, pat Pattern, repl *Replacement) (*Production, error) {
	if repl == nil || len(repl.Insts) == 0 {
		return nil, fmt.Errorf("dise: production %s: empty replacement", name)
	}
	if err := repl.Validate(); err != nil {
		return nil, err
	}
	id := c.nextID
	c.nextID++
	c.repls[id] = repl
	p := &Production{Name: name, Pattern: pat, Repl: repl, DictBase: id}
	c.activeProds = append(c.activeProds, p)
	c.engine.reset()
	return p, nil
}

// InstallAware activates an aware production whose trigger tag selects among
// dict. Dictionary entry i is reachable by triggers carrying tag i; the
// 11-bit tag limits a single pattern to 2048 entries (paper §2.1).
func (c *Controller) InstallAware(name string, pat Pattern, dict []*Replacement) (*Production, error) {
	if len(dict) == 0 {
		return nil, fmt.Errorf("dise: production %s: empty dictionary", name)
	}
	if len(dict) > isa.MaxTag+1 {
		return nil, fmt.Errorf("dise: production %s: %d entries exceed the %d expressible tags",
			name, len(dict), isa.MaxTag+1)
	}
	base := c.nextID
	for i, r := range dict {
		if r == nil || len(r.Insts) == 0 {
			return nil, fmt.Errorf("dise: production %s: dictionary entry %d empty", name, i)
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
		c.repls[base+i] = r
		c.aware[base+i] = true
	}
	c.nextID = base + len(dict)
	p := &Production{Name: name, Pattern: pat, TagIndexed: true, DictBase: base}
	c.activeProds = append(c.activeProds, p)
	c.engine.reset()
	return p, nil
}

// Deactivate removes a production from the active set; its replacement
// sequences stay in the virtual store so it can be re-activated cheaply.
func (c *Controller) Deactivate(p *Production) {
	for i, q := range c.activeProds {
		if q == p {
			c.activeProds = append(c.activeProds[:i], c.activeProds[i+1:]...)
			c.engine.reset()
			return
		}
	}
}

// Activate re-activates a previously installed production.
func (c *Controller) Activate(p *Production) {
	for _, q := range c.activeProds {
		if q == p {
			return
		}
	}
	c.activeProds = append(c.activeProds, p)
	c.engine.reset()
}

// Productions returns the active productions, most recently installed last.
func (c *Controller) Productions() []*Production {
	return append([]*Production(nil), c.activeProds...)
}

// SetComposer installs the RT-miss-time composition hook and flushes the RT
// and the compose memo (the composed forms change).
func (c *Controller) SetComposer(comp Composer) {
	c.composer = comp
	c.memo = map[int]*Replacement{}
	c.engine.reset()
}

// seqID resolves the replacement-sequence identifier a PT match produces:
// the production's own identifier for transparent productions, or the
// dictionary base plus the trigger's tag for aware ones.
func (c *Controller) seqID(p *Production, trigger isa.Inst) int {
	if p.TagIndexed {
		return p.DictBase + int(trigger.Imm)
	}
	return p.DictBase
}

// fetchSequence services an RT miss from the virtual store, composing if a
// composer is installed. It reports whether composition work was done.
func (c *Controller) fetchSequence(id int) (*Replacement, bool) {
	r, ok := c.repls[id]
	if !ok {
		return nil, false
	}
	// Composition is invoked only on aware production misses (paper §3.3):
	// aware productions live in the application's data space, so they are
	// the ones the kernel could not pre-compose.
	if c.composer == nil || !c.aware[id] {
		return r, false
	}
	if m, ok := c.memo[id]; ok {
		// Re-composition runs on every miss; the result is deterministic so
		// the stored form is reused, but the caller still charges the
		// composition latency.
		return m, true
	}
	composed, did := c.composer.Compose(id, r)
	if !did {
		return r, false
	}
	c.memo[id] = composed
	return composed, true
}

// State is the architectural DISE state that the OS kernel preserves across
// context switches: the active production set (standing in for the pattern
// counter table; PT/RT contents are demand-loaded) — paper §2.3. The
// dedicated registers and DISEPC are saved by the emulator alongside the
// architectural register file.
type State struct {
	prods    []*Production
	composer Composer
}

// SaveState captures the active production set for a context switch.
func (c *Controller) SaveState() State {
	return State{prods: append([]*Production(nil), c.activeProds...), composer: c.composer}
}

// RestoreState reinstates a saved production set. The PT and RT are left to
// fault their contents back in, exactly as on real context-switch restore.
func (c *Controller) RestoreState(s State) {
	c.activeProds = append([]*Production(nil), s.prods...)
	c.composer = s.composer
	c.memo = map[int]*Replacement{}
	c.engine.reset()
}

// Describe renders the active productions for debugging.
func (c *Controller) Describe() string {
	out := ""
	prods := c.Productions()
	sort.Slice(prods, func(i, j int) bool { return prods[i].Name < prods[j].Name })
	for _, p := range prods {
		kind := "transparent"
		if p.TagIndexed {
			kind = "aware"
		}
		out += fmt.Sprintf("%s (%s): %s\n", p.Name, kind, p.Pattern.String())
		if p.Repl != nil {
			out += p.Repl.String()
		}
	}
	return out
}
