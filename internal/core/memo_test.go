package core

import (
	"testing"

	"repro/internal/isa"
)

// The expansion memo must be invisible: repeated expansions of the same site
// return the same sequence with the same RT behavior, only faster.
func TestExpansionMemoHits(t *testing.T) {
	c := NewController(DefaultEngineConfig())
	installMFI(t, c)
	e := c.Engine()

	first := e.Expand(aStore, 0x1000)
	if first == nil {
		t.Fatal("store should expand")
	}
	if e.Stats.MemoHits != 0 || e.Stats.MemoMisses != 1 {
		t.Fatalf("after first expand: hits=%d misses=%d", e.Stats.MemoHits, e.Stats.MemoMisses)
	}
	if !first.RTMiss {
		t.Error("cold RT should miss on the first expansion")
	}

	second := e.Expand(aStore, 0x1000)
	if e.Stats.MemoHits != 1 {
		t.Fatalf("repeat expansion should hit the memo: %+v", e.Stats)
	}
	if second.RTMiss || second.Stall != 0 {
		t.Errorf("resident RT must hit on the memo path: %+v", second)
	}
	if len(second.Insts) != len(first.Insts) {
		t.Fatalf("memo returned %d insts, want %d", len(second.Insts), len(first.Insts))
	}
	for i := range first.Insts {
		if first.Insts[i] != second.Insts[i] {
			t.Errorf("inst %d: memo %v != fresh %v", i, second.Insts[i], first.Insts[i])
		}
	}

	// A different trigger PC is a different site: ImmTPC bakes the PC into
	// instantiated immediates, so it must not reuse the 0x1000 entry.
	e.Expand(aStore, 0x2000)
	if e.Stats.MemoMisses != 2 {
		t.Errorf("distinct PC should miss the memo: %+v", e.Stats)
	}
	if rate := e.Stats.MemoRate(); rate <= 0 || rate >= 1 {
		t.Errorf("memo rate = %v, want in (0,1)", rate)
	}
}

// RT corruption must stay observable: a fault campaign that scrambles a
// cached RT block disables the memo, so subsequent expansions read the
// corrupted array instead of replaying the pristine instantiation.
func TestExpansionMemoDisabledByRTCorruption(t *testing.T) {
	c := NewController(DefaultEngineConfig())
	installMFI(t, c)
	e := c.Engine()
	e.Expand(aStore, 0x1000)

	ok := e.CorruptRTBlock(0, func(tmpl []ReplInst) []ReplInst {
		for i := range tmpl {
			tmpl[i].Trigger = false
			tmpl[i].OpFromTrigger = false
			tmpl[i].Op = isa.OpInvalid
		}
		return tmpl
	})
	if !ok {
		t.Fatal("no RT block to corrupt")
	}

	hits := e.Stats.MemoHits
	exp := e.Expand(aStore, 0x1000)
	if e.Stats.MemoHits != hits {
		t.Error("memo must not serve expansions after RT corruption")
	}
	if exp == nil {
		t.Fatal("corrupted expansion should still be produced")
	}
	corrupted := false
	for _, in := range exp.Insts {
		if !in.Op.Valid() {
			corrupted = true
		}
	}
	if !corrupted {
		t.Error("corruption was not observed through Expand")
	}

	// A production reload (reset) flushes the RT — repairing the corruption
	// — and re-enables the memo.
	e.reset()
	e.Expand(aStore, 0x1000)
	e.Expand(aStore, 0x1000)
	if e.Stats.MemoHits == hits {
		t.Error("memo should serve hits again after reset")
	}
}
