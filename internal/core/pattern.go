// Package core implements DISE itself: productions (pattern specifications
// plus parameterized replacement-sequence specifications), the engine that
// applies them to the fetch stream — pattern table (PT), replacement table
// (RT) and instantiation logic (IL) — and the controller that programs and
// virtualizes the PT/RT (paper §2).
package core

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Pattern is a pattern specification: a fetched instruction matching it is a
// trigger. A pattern may constrain any combination of opcode, opcode class,
// logical register names, and the immediate field or its sign (paper §2.1).
type Pattern struct {
	// Op, if valid, requires an exact opcode.
	Op isa.Opcode
	// Class, if not ClassInvalid, requires an opcode class. Ignored when Op
	// is set (an exact opcode is strictly more specific).
	Class isa.Class
	// RS, RT, RD, when not NoReg, require the named register in that slot.
	RS, RT, RD isa.Reg
	// MatchImm requires Imm to equal the trigger's immediate exactly.
	MatchImm bool
	Imm      int64
	// ImmSign constrains the immediate's sign: 0 = unconstrained,
	// -1 = negative, +1 = non-negative.
	ImmSign int
}

// Matches reports whether in is a trigger for p.
func (p *Pattern) Matches(in isa.Inst) bool {
	if p.Op != isa.OpInvalid {
		if in.Op != p.Op {
			return false
		}
	} else if p.Class != isa.ClassInvalid && in.Op.Class() != p.Class {
		return false
	}
	if p.RS != isa.NoReg && in.RS != p.RS {
		return false
	}
	if p.RT != isa.NoReg && in.RT != p.RT {
		return false
	}
	if p.RD != isa.NoReg && in.RD != p.RD {
		return false
	}
	if p.MatchImm && in.Imm != p.Imm {
		return false
	}
	switch p.ImmSign {
	case -1:
		if in.Imm >= 0 {
			return false
		}
	case 1:
		if in.Imm < 0 {
			return false
		}
	}
	return true
}

// Specificity scores how many instruction bits p constrains. When several
// active patterns match a trigger, the PT selects the most specific one,
// enabling overlapping and negative pattern specifications (paper §2.2).
func (p *Pattern) Specificity() int {
	s := 0
	if p.Op != isa.OpInvalid {
		s += 6
	} else if p.Class != isa.ClassInvalid {
		s += 3 // a class constrains fewer opcode bits than an exact opcode
	}
	for _, r := range []isa.Reg{p.RS, p.RT, p.RD} {
		if r != isa.NoReg {
			s += 5
		}
	}
	if p.MatchImm {
		s += 16
	} else if p.ImmSign != 0 {
		s++
	}
	return s
}

// Opcodes returns the opcodes p can trigger on. The controller uses this to
// maintain the per-opcode pattern counter table that detects PT misses
// (paper §2.3).
func (p *Pattern) Opcodes() []isa.Opcode {
	if p.Op != isa.OpInvalid {
		return []isa.Opcode{p.Op}
	}
	var ops []isa.Opcode
	for _, op := range isa.Opcodes() {
		if p.Class == isa.ClassInvalid || op.Class() == p.Class {
			ops = append(ops, op)
		}
	}
	return ops
}

// String renders p in the production-language condition syntax.
func (p *Pattern) String() string {
	var conds []string
	if p.Op != isa.OpInvalid {
		conds = append(conds, "op == "+p.Op.String())
	} else if p.Class != isa.ClassInvalid {
		conds = append(conds, "class == "+p.Class.String())
	}
	if p.RS != isa.NoReg {
		conds = append(conds, "rs == "+p.RS.String())
	}
	if p.RT != isa.NoReg {
		conds = append(conds, "rt == "+p.RT.String())
	}
	if p.RD != isa.NoReg {
		conds = append(conds, "rd == "+p.RD.String())
	}
	if p.MatchImm {
		conds = append(conds, fmt.Sprintf("imm == %d", p.Imm))
	}
	if p.ImmSign < 0 {
		conds = append(conds, "imm < 0")
	} else if p.ImmSign > 0 {
		conds = append(conds, "imm >= 0")
	}
	if len(conds) == 0 {
		return "any"
	}
	return strings.Join(conds, " && ")
}
