package core

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// RegDir selects how a replacement instruction's register field is
// instantiated (paper §2.1: literal, dedicated, T.RS, T.RT, T.RD —
// "dedicated" is a literal naming a dedicated register).
type RegDir uint8

// Register-field directives.
const (
	RegLit RegDir = iota // use the literal register in the template
	RegTRS               // copy the trigger's RS field (aka T.P1 for codewords)
	RegTRT               // copy the trigger's RT field (T.P2)
	RegTRD               // copy the trigger's RD field (T.P3)
)

// ImmDir selects how an immediate field is instantiated.
type ImmDir uint8

// Immediate-field directives. The PJoin directives assemble a wider signed
// immediate from adjacent 5-bit codeword parameter slots — an aware ACF is
// free to interpret unused trigger bits however it likes (paper §2.1); wide
// immediate parameters are how the compressor parameterizes PC-relative
// branch displacements (paper §3.2).
const (
	ImmLit  ImmDir = iota // literal immediate in the template
	ImmTImm               // trigger's immediate field
	ImmTPC                // trigger's PC (profiling ACFs, paper §2.1)
	ImmP1                 // trigger RS field as a signed 5-bit value
	ImmP2                 // trigger RT field as a signed 5-bit value
	ImmP3                 // trigger RD field as a signed 5-bit value
	ImmP23                // (RT<<5|RD) as a signed 10-bit value
	ImmP123               // (RS<<10|RT<<5|RD) as a signed 15-bit value
)

// RegField is a register slot of a replacement instruction template.
type RegField struct {
	Dir RegDir
	Lit isa.Reg // used when Dir == RegLit
}

// ImmField is the immediate slot of a replacement instruction template.
type ImmField struct {
	Dir ImmDir
	Lit int64 // used when Dir == ImmLit
}

// Lit returns a literal register field.
func Lit(r isa.Reg) RegField { return RegField{Dir: RegLit, Lit: r} }

// TReg returns a trigger-copy register field.
func TReg(d RegDir) RegField { return RegField{Dir: d} }

// ReplInst is one instruction of a replacement sequence specification: an
// opcode (possibly copied from the trigger), a directive per field, and the
// DISE-branch attribute. It is the unit the RT caches and the IL executes.
type ReplInst struct {
	// Trigger splices the trigger instruction itself (T.INSN). All other
	// fields except DiseBranch are ignored.
	Trigger bool

	Op            isa.Opcode
	OpFromTrigger bool // use the trigger's opcode with this template's fields

	RS, RT, RD RegField
	Imm        ImmField

	// DiseBranch marks a branch variant that moves the DISEPC instead of
	// the PC (paper §2.1, replacement-sequence control flow). Its target is
	// the absolute DISEPC (offset within this sequence) given by the
	// instantiated immediate.
	DiseBranch bool
}

func sext5(v isa.Reg) int64 { return int64(int8(uint8(v)<<3)) >> 3 }

func immP(fields ...isa.Reg) int64 {
	var v uint64
	bits := uint(0)
	for _, f := range fields {
		v = v<<5 | uint64(uint8(f)&0x1f)
		bits += 5
	}
	shift := 64 - bits
	return int64(v<<shift) >> shift
}

// Instantiate executes the instantiation directives against a trigger,
// producing the actual replacement instruction (the IL's combinational
// function).
func (r *ReplInst) Instantiate(trigger isa.Inst, pc uint64) isa.Inst {
	if r.Trigger {
		return trigger
	}
	var out isa.Inst
	if r.OpFromTrigger {
		out.Op = trigger.Op
	} else {
		out.Op = r.Op
	}
	pick := func(f RegField) isa.Reg {
		switch f.Dir {
		case RegTRS:
			return trigger.RS
		case RegTRT:
			return trigger.RT
		case RegTRD:
			return trigger.RD
		default:
			return f.Lit
		}
	}
	out.RS = pick(r.RS)
	out.RT = pick(r.RT)
	out.RD = pick(r.RD)
	switch r.Imm.Dir {
	case ImmTImm:
		out.Imm = trigger.Imm
	case ImmTPC:
		out.Imm = int64(pc)
	case ImmP1:
		out.Imm = sext5(trigger.RS)
	case ImmP2:
		out.Imm = sext5(trigger.RT)
	case ImmP3:
		out.Imm = sext5(trigger.RD)
	case ImmP23:
		out.Imm = immP(trigger.RT, trigger.RD)
	case ImmP123:
		out.Imm = immP(trigger.RS, trigger.RT, trigger.RD)
	default:
		out.Imm = r.Imm.Lit
	}
	return out
}

// FromLiteral builds a fully literal template from a decoded instruction —
// the degenerate case used by dictionary entries whose fields carry no
// parameters.
func FromLiteral(in isa.Inst) ReplInst {
	return ReplInst{
		Op: in.Op,
		RS: Lit(in.RS), RT: Lit(in.RT), RD: Lit(in.RD),
		Imm: ImmField{Dir: ImmLit, Lit: in.Imm},
	}
}

// TriggerInst returns the T.INSN template.
func TriggerInst() ReplInst { return ReplInst{Trigger: true} }

// Parameterized reports whether any field of r depends on the trigger.
func (r ReplInst) Parameterized() bool {
	if r.Trigger || r.OpFromTrigger {
		return true
	}
	if r.RS.Dir != RegLit || r.RT.Dir != RegLit || r.RD.Dir != RegLit {
		return true
	}
	return r.Imm.Dir != ImmLit
}

func regFieldString(f RegField) string {
	switch f.Dir {
	case RegTRS:
		return "%rs"
	case RegTRT:
		return "%rt"
	case RegTRD:
		return "%rd"
	default:
		return f.Lit.String()
	}
}

// String renders r in the production-language replacement syntax.
func (r ReplInst) String() string {
	if r.Trigger {
		return "%insn"
	}
	op := r.Op.String()
	if r.OpFromTrigger {
		op = "%op"
	}
	if r.DiseBranch {
		op = "d" + op
	}
	imm := ""
	switch r.Imm.Dir {
	case ImmTImm:
		imm = "%imm"
	case ImmTPC:
		imm = "%pc"
	case ImmP1:
		imm = "%p1"
	case ImmP2:
		imm = "%p2"
	case ImmP3:
		imm = "%p3"
	case ImmP23:
		imm = "%p23"
	case ImmP123:
		imm = "%p123"
	default:
		imm = fmt.Sprintf("%d", r.Imm.Lit)
	}
	var fields []string
	format := isa.FmtOpReg
	if !r.OpFromTrigger {
		format = r.Op.Format()
	}
	switch format {
	case isa.FmtMem:
		ra := r.RD
		if !r.OpFromTrigger && r.Op.Class() == isa.ClassStore {
			ra = r.RT
		}
		return fmt.Sprintf("%s %s, %s(%s)", op, regFieldString(ra), imm, regFieldString(r.RS))
	case isa.FmtBranch:
		ra := r.RS
		if r.Op == isa.OpBR || r.Op == isa.OpBSR {
			ra = r.RD
		}
		return fmt.Sprintf("%s %s, %s", op, regFieldString(ra), imm)
	case isa.FmtJump:
		return fmt.Sprintf("%s %s, (%s)", op, regFieldString(r.RD), regFieldString(r.RS))
	case isa.FmtJumpCond:
		return fmt.Sprintf("%s %s, (%s)", op, regFieldString(r.RT), regFieldString(r.RS))
	case isa.FmtOpImm:
		return fmt.Sprintf("%s %s, %s, %s", op, regFieldString(r.RS), imm, regFieldString(r.RD))
	case isa.FmtSpecial:
		return fmt.Sprintf("%s %s", op, imm)
	default:
		fields = []string{regFieldString(r.RS), regFieldString(r.RT), regFieldString(r.RD)}
		return fmt.Sprintf("%s %s", op, strings.Join(fields, ", "))
	}
}

// Replacement is a named replacement sequence specification.
type Replacement struct {
	Name  string
	Insts []ReplInst
}

// Len returns the sequence length in instructions.
func (r *Replacement) Len() int { return len(r.Insts) }

// TriggerIndex returns the position of the T.INSN template, or -1.
func (r *Replacement) TriggerIndex() int {
	for i := range r.Insts {
		if r.Insts[i].Trigger {
			return i
		}
	}
	return -1
}

// Instantiate expands the whole sequence against a trigger.
func (r *Replacement) Instantiate(trigger isa.Inst, pc uint64) []isa.Inst {
	out := make([]isa.Inst, len(r.Insts))
	for i := range r.Insts {
		out[i] = r.Insts[i].Instantiate(trigger, pc)
	}
	return out
}

// Validate checks sequence invariants: DISE-branch targets must stay within
// the sequence (one dynamic replacement sequence cannot jump into the middle
// of another — paper §2.1).
func (r *Replacement) Validate() error {
	for i, ri := range r.Insts {
		if !ri.DiseBranch {
			continue
		}
		if ri.Imm.Dir != ImmLit {
			continue // parameterized targets are checked at instantiation
		}
		t := ri.Imm.Lit
		if t < 0 || t > int64(len(r.Insts)) {
			return fmt.Errorf("dise: replacement %s: inst %d: DISE branch target %d outside sequence [0,%d]",
				r.Name, i, t, len(r.Insts))
		}
	}
	return nil
}

// String renders the sequence, one instruction per line.
func (r *Replacement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.Name)
	for i := range r.Insts {
		fmt.Fprintf(&b, "  %d: %s\n", i, r.Insts[i].String())
	}
	return b.String()
}
