package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// ErrParse wraps every error returned by ParseProductions (and InstallFile's
// parse phase): malformed production text is user error, classifiable with
// errors.Is(err, ErrParse), never a panic.
var ErrParse = errors.New("dise: parse")

// The production language is the external representation of DISE
// productions: a directive-annotated version of the native assembly
// (paper §2.3, "Controller"). Example — segment-matching memory fault
// isolation (paper Figure 1):
//
//	prod mfi_store {
//	    match class == store
//	    replace {
//	        srli %rs, 26, $dr1
//	        xor  $dr1, $dr2, $dr1
//	        dbeq $dr1, @ok
//	        sys  3
//	    @ok:
//	        %insn
//	    }
//	}
//
// Trigger-field directives: %rs %rt %rd (register fields; %p1 %p2 %p3 are
// codeword-flavored aliases), %op (opcode), %imm (immediate), %pc (trigger
// PC), %p23/%p123 (wide immediates assembled from codeword parameter
// slots), %insn (the trigger itself). A branch mnemonic prefixed with "d"
// (dbeq, dbr, ...) is the DISE variant that moves the DISEPC instead of the
// PC; its target is a sequence-local @label or absolute DISEPC.
//
// An "aware" block declares a tag-indexed production. Its dictionary may be
// attached programmatically, or written inline — entry k of the dict block
// is reachable by codewords carrying tag k:
//
//	aware decomp {
//	    match op == res0
//	    dict {
//	        entry {
//	            lda %p1, %p2(%p1)
//	            ldq r4, 0(%p1)
//	        }
//	        entry {
//	            cmplt r4, r0, r5
//	        }
//	    }
//	}

// ParsedProduction is one production parsed from the language.
type ParsedProduction struct {
	Name    string
	Pattern Pattern
	Repl    *Replacement   // transparent productions
	Dict    []*Replacement // aware productions with an inline dict block
	Aware   bool
}

// ParseProductions parses a production file.
func ParseProductions(src string) ([]*ParsedProduction, error) {
	p := &prodParser{lines: strings.Split(src, "\n")}
	return p.parse()
}

// MustParseProductions is ParseProductions for known-good text; it panics on
// error. The panic marks a programmer error (a production literal in source
// that fails to parse), never a data-dependent condition: code handling
// external production text must call ParseProductions.
func MustParseProductions(src string) []*ParsedProduction {
	out, err := ParseProductions(src)
	if err != nil {
		panic(err)
	}
	return out
}

// InstallFile parses src and installs every production it defines into c.
// Aware productions get their dictionaries from dicts, keyed by name.
func (c *Controller) InstallFile(src string, dicts map[string][]*Replacement) ([]*Production, error) {
	parsed, err := ParseProductions(src)
	if err != nil {
		return nil, err
	}
	var out []*Production
	for _, pp := range parsed {
		var prod *Production
		if pp.Aware {
			dict := pp.Dict
			if dict == nil {
				var ok bool
				dict, ok = dicts[pp.Name]
				if !ok {
					return nil, fmt.Errorf("dise: aware production %q has no dictionary", pp.Name)
				}
			}
			prod, err = c.InstallAware(pp.Name, pp.Pattern, dict)
		} else {
			prod, err = c.InstallTransparent(pp.Name, pp.Pattern, pp.Repl)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, prod)
	}
	return out, nil
}

type prodParser struct {
	lines []string
	pos   int
}

func (p *prodParser) errf(format string, v ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrParse, p.pos, fmt.Sprintf(format, v...))
}

func (p *prodParser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (p *prodParser) parse() ([]*ParsedProduction, error) {
	var out []*ParsedProduction
	for {
		line, ok := p.next()
		if !ok {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || (fields[0] != "prod" && fields[0] != "aware") || fields[2] != "{" {
			return nil, p.errf("expected 'prod <name> {' or 'aware <name> {', got %q", line)
		}
		pp, err := p.parseBody(fields[1], fields[0] == "aware")
		if err != nil {
			return nil, err
		}
		out = append(out, pp)
	}
}

func (p *prodParser) parseBody(name string, aware bool) (*ParsedProduction, error) {
	pp := &ParsedProduction{Name: name, Aware: aware,
		Pattern: Pattern{RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}}
	sawMatch := false
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unterminated production %q", name)
		}
		switch {
		case line == "}":
			if !sawMatch {
				return nil, p.errf("production %q has no match clause", name)
			}
			if !aware && pp.Repl == nil {
				return nil, p.errf("production %q has no replace block", name)
			}
			if aware && pp.Repl != nil {
				return nil, p.errf("aware production %q cannot carry a replace block", name)
			}
			if !aware && pp.Dict != nil {
				return nil, p.errf("transparent production %q cannot carry a dict block", name)
			}
			return pp, nil
		case strings.HasPrefix(line, "match"):
			if err := parseMatch(&pp.Pattern, strings.TrimSpace(strings.TrimPrefix(line, "match"))); err != nil {
				return nil, p.errf("%v", err)
			}
			sawMatch = true
		case strings.HasPrefix(line, "replace"):
			if !strings.HasSuffix(strings.TrimSpace(line), "{") {
				return nil, p.errf("expected 'replace {'")
			}
			repl, err := p.parseReplace(name)
			if err != nil {
				return nil, err
			}
			if len(repl.Insts) == 0 {
				return nil, p.errf("production %q has an empty replace block", name)
			}
			pp.Repl = repl
		case strings.HasPrefix(line, "dict"):
			if !strings.HasSuffix(strings.TrimSpace(line), "{") {
				return nil, p.errf("expected 'dict {'")
			}
			dict, err := p.parseDict(name)
			if err != nil {
				return nil, err
			}
			pp.Dict = dict
		default:
			return nil, p.errf("unexpected %q in production %q", line, name)
		}
	}
}

func parseMatch(pat *Pattern, expr string) error {
	for _, cond := range strings.Split(expr, "&&") {
		cond = strings.TrimSpace(cond)
		var lhs, op, rhs string
		switch {
		case strings.Contains(cond, "=="):
			parts := strings.SplitN(cond, "==", 2)
			lhs, op, rhs = strings.TrimSpace(parts[0]), "==", strings.TrimSpace(parts[1])
		case strings.Contains(cond, ">="):
			parts := strings.SplitN(cond, ">=", 2)
			lhs, op, rhs = strings.TrimSpace(parts[0]), ">=", strings.TrimSpace(parts[1])
		case strings.Contains(cond, "<"):
			parts := strings.SplitN(cond, "<", 2)
			lhs, op, rhs = strings.TrimSpace(parts[0]), "<", strings.TrimSpace(parts[1])
		default:
			return fmt.Errorf("bad condition %q", cond)
		}
		switch lhs {
		case "op":
			if op != "==" {
				return fmt.Errorf("op supports only ==")
			}
			o := isa.OpcodeByName(rhs)
			if o == isa.OpInvalid {
				return fmt.Errorf("unknown opcode %q", rhs)
			}
			pat.Op = o
		case "class":
			if op != "==" {
				return fmt.Errorf("class supports only ==")
			}
			c := isa.ClassByName(rhs)
			if c == isa.ClassInvalid {
				return fmt.Errorf("unknown class %q", rhs)
			}
			pat.Class = c
		case "rs", "rt", "rd":
			if op != "==" {
				return fmt.Errorf("%s supports only ==", lhs)
			}
			r := isa.RegByName(rhs, false)
			if r == isa.NoReg {
				return fmt.Errorf("unknown register %q", rhs)
			}
			switch lhs {
			case "rs":
				pat.RS = r
			case "rt":
				pat.RT = r
			case "rd":
				pat.RD = r
			}
		case "imm":
			switch op {
			case "==":
				v, err := strconv.ParseInt(rhs, 0, 64)
				if err != nil {
					return fmt.Errorf("bad immediate %q", rhs)
				}
				pat.MatchImm, pat.Imm = true, v
			case "<":
				if rhs != "0" {
					return fmt.Errorf("imm < supports only 0")
				}
				pat.ImmSign = -1
			case ">=":
				if rhs != "0" {
					return fmt.Errorf("imm >= supports only 0")
				}
				pat.ImmSign = 1
			}
		default:
			return fmt.Errorf("unknown field %q", lhs)
		}
	}
	return nil
}

// parseDict parses a dict block: a sequence of entry blocks.
func (p *prodParser) parseDict(name string) ([]*Replacement, error) {
	var dict []*Replacement
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unterminated dict block in %q", name)
		}
		if line == "}" {
			if len(dict) == 0 {
				return nil, p.errf("empty dict block in %q", name)
			}
			return dict, nil
		}
		if !strings.HasPrefix(line, "entry") || !strings.HasSuffix(strings.TrimSpace(line), "{") {
			return nil, p.errf("expected 'entry {' in dict block of %q, got %q", name, line)
		}
		e, err := p.parseReplace(fmt.Sprintf("%s[%d]", name, len(dict)))
		if err != nil {
			return nil, err
		}
		if len(e.Insts) == 0 {
			return nil, p.errf("empty dict entry in %q", name)
		}
		dict = append(dict, e)
	}
}

func (p *prodParser) parseReplace(name string) (*Replacement, error) {
	type pending struct {
		inst  ReplInst
		label string // unresolved DISE-branch label
		line  int
	}
	var insts []pending
	labels := map[string]int{}
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unterminated replace block in %q", name)
		}
		if line == "}" {
			break
		}
		if strings.HasPrefix(line, "@") && strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(strings.TrimPrefix(line, "@"), ":")
			if _, dup := labels[label]; dup {
				return nil, p.errf("duplicate label @%s", label)
			}
			labels[label] = len(insts)
			continue
		}
		ri, label, err := parseReplInst(line)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		insts = append(insts, pending{inst: ri, label: label, line: p.pos})
	}
	repl := &Replacement{Name: name}
	for _, pd := range insts {
		ri := pd.inst
		if pd.label != "" {
			t, ok := labels[pd.label]
			if !ok {
				return nil, fmt.Errorf("%w: line %d: undefined label @%s", ErrParse, pd.line, pd.label)
			}
			ri.Imm = ImmField{Dir: ImmLit, Lit: int64(t)}
		}
		repl.Insts = append(repl.Insts, ri)
	}
	if err := repl.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	return repl, nil
}

func parseRegField(tok string) (RegField, error) {
	switch tok {
	case "%rs", "%p1":
		return TReg(RegTRS), nil
	case "%rt", "%p2":
		return TReg(RegTRT), nil
	case "%rd", "%p3":
		return TReg(RegTRD), nil
	}
	if r := isa.RegByName(tok, true); r != isa.NoReg {
		return Lit(r), nil
	}
	return RegField{}, fmt.Errorf("bad register field %q", tok)
}

func parseImmField(tok string) (ImmField, error) {
	switch tok {
	case "%imm":
		return ImmField{Dir: ImmTImm}, nil
	case "%pc":
		return ImmField{Dir: ImmTPC}, nil
	case "%p1":
		return ImmField{Dir: ImmP1}, nil
	case "%p2":
		return ImmField{Dir: ImmP2}, nil
	case "%p3":
		return ImmField{Dir: ImmP3}, nil
	case "%p23":
		return ImmField{Dir: ImmP23}, nil
	case "%p123":
		return ImmField{Dir: ImmP123}, nil
	}
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return ImmField{}, fmt.Errorf("bad immediate field %q", tok)
	}
	return ImmField{Dir: ImmLit, Lit: v}, nil
}

// parseReplInst parses one replacement instruction template. It returns an
// unresolved label name if the instruction is a DISE branch targeting one.
func parseReplInst(line string) (ReplInst, string, error) {
	fields := splitReplOperands(line)
	mnem, args := fields[0], fields[1:]
	if mnem == "%insn" {
		return TriggerInst(), "", nil
	}
	var ri ReplInst
	dise := false
	if strings.HasPrefix(mnem, "d") {
		if op := isa.OpcodeByName(mnem[1:]); op != isa.OpInvalid && op.IsBranch() {
			dise = true
			mnem = mnem[1:]
		}
	}
	opTok := mnem
	if opTok == "%op" {
		ri.OpFromTrigger = true
	} else {
		op := isa.OpcodeByName(opTok)
		if op == isa.OpInvalid {
			return ri, "", fmt.Errorf("unknown mnemonic %q", opTok)
		}
		ri.Op = op
	}
	ri.DiseBranch = dise
	ri.RS, ri.RT, ri.RD = Lit(isa.NoReg), Lit(isa.NoReg), Lit(isa.NoReg)

	format := isa.FmtOpReg
	if !ri.OpFromTrigger {
		format = ri.Op.Format()
	} else if len(args) == 2 && strings.Contains(args[1], "(") {
		format = isa.FmtMem
	}

	var label string
	switch format {
	case isa.FmtMem:
		if len(args) != 2 {
			return ri, "", fmt.Errorf("%s: want 2 operands", line)
		}
		ra, err := parseRegField(args[0])
		if err != nil {
			return ri, "", err
		}
		open := strings.Index(args[1], "(")
		if open < 0 || !strings.HasSuffix(args[1], ")") {
			return ri, "", fmt.Errorf("%s: bad memory operand", line)
		}
		immTok := strings.TrimSpace(args[1][:open])
		if immTok == "" {
			immTok = "0"
		}
		imm, err := parseImmField(immTok)
		if err != nil {
			return ri, "", err
		}
		base, err := parseRegField(strings.TrimSpace(args[1][open+1 : len(args[1])-1]))
		if err != nil {
			return ri, "", err
		}
		ri.RS, ri.Imm = base, imm
		if ri.OpFromTrigger || ri.Op.Class() == isa.ClassStore {
			ri.RT = ra
		}
		if ri.OpFromTrigger || ri.Op.Class() != isa.ClassStore {
			ri.RD = ra
		}
	case isa.FmtBranch:
		if len(args) != 2 {
			return ri, "", fmt.Errorf("%s: want 2 operands", line)
		}
		ra, err := parseRegField(args[0])
		if err != nil {
			return ri, "", err
		}
		if ri.Op == isa.OpBR || ri.Op == isa.OpBSR {
			ri.RD = ra
		} else {
			ri.RS = ra
		}
		if strings.HasPrefix(args[1], "@") {
			if !dise {
				return ri, "", fmt.Errorf("%s: @labels are only valid on DISE branches", line)
			}
			label = strings.TrimPrefix(args[1], "@")
		} else {
			imm, err := parseImmField(args[1])
			if err != nil {
				return ri, "", err
			}
			ri.Imm = imm
		}
	case isa.FmtJump, isa.FmtJumpCond:
		if len(args) != 2 {
			return ri, "", fmt.Errorf("%s: want 2 operands", line)
		}
		ra, err := parseRegField(args[0])
		if err != nil {
			return ri, "", err
		}
		t := strings.TrimSuffix(strings.TrimPrefix(args[1], "("), ")")
		rs, err := parseRegField(t)
		if err != nil {
			return ri, "", err
		}
		ri.RS = rs
		if !ri.OpFromTrigger && ri.Op.Format() == isa.FmtJumpCond {
			ri.RT = ra
		} else {
			ri.RD = ra
		}
	case isa.FmtOpImm:
		if len(args) != 3 {
			return ri, "", fmt.Errorf("%s: want 3 operands", line)
		}
		rs, err := parseRegField(args[0])
		if err != nil {
			return ri, "", err
		}
		imm, err := parseImmField(args[1])
		if err != nil {
			return ri, "", err
		}
		rd, err := parseRegField(args[2])
		if err != nil {
			return ri, "", err
		}
		ri.RS, ri.Imm, ri.RD = rs, imm, rd
	case isa.FmtSpecial:
		if ri.Op == isa.OpHALT {
			break
		}
		if len(args) != 1 {
			return ri, "", fmt.Errorf("%s: want code", line)
		}
		imm, err := parseImmField(args[0])
		if err != nil {
			return ri, "", err
		}
		ri.Imm = imm
	default: // FmtOpReg, and %op in register form
		if len(args) != 3 {
			return ri, "", fmt.Errorf("%s: want 3 operands", line)
		}
		rs, err := parseRegField(args[0])
		if err != nil {
			return ri, "", err
		}
		rt, err := parseRegField(args[1])
		if err != nil {
			return ri, "", err
		}
		rd, err := parseRegField(args[2])
		if err != nil {
			return ri, "", err
		}
		ri.RS, ri.RT, ri.RD = rs, rt, rd
	}
	return ri, label, nil
}

func splitReplOperands(line string) []string {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return []string{line}
	}
	out := []string{line[:i]}
	for _, f := range strings.Split(line[i+1:], ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}
