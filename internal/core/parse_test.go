package core

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

const mfiSrc = `
# memory fault isolation, segment matching (paper Figure 1)
prod mfi_store {
    match class == store
    replace {
        srli %rs, 26, $dr1
        xor  $dr1, $dr2, $dr1
        dbeq $dr1, @ok
        sys  3
    @ok:
        %insn
    }
}

prod mfi_load {
    match class == load
    replace {
        srli %rs, 26, $dr1
        xor  $dr1, $dr2, $dr1
        dbeq $dr1, @ok
        sys  3
    @ok:
        %insn
    }
}
`

func TestParseMFI(t *testing.T) {
	prods, err := ParseProductions(mfiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prods) != 2 {
		t.Fatalf("parsed %d productions", len(prods))
	}
	ps := prods[0]
	if ps.Name != "mfi_store" || ps.Pattern.Class != isa.ClassStore || ps.Aware {
		t.Errorf("store production wrong: %+v", ps)
	}
	r := ps.Repl
	if r.Len() != 5 {
		t.Fatalf("replacement length = %d", r.Len())
	}
	if r.Insts[0].Op != isa.OpSRLI || r.Insts[0].RS.Dir != RegTRS || r.Insts[0].RD.Lit != isa.RegDR0+1 {
		t.Errorf("inst 0 = %+v", r.Insts[0])
	}
	if !r.Insts[2].DiseBranch {
		t.Error("dbeq should be a DISE branch")
	}
	if r.Insts[2].Imm.Lit != 4 {
		t.Errorf("@ok resolves to %d, want 4", r.Insts[2].Imm.Lit)
	}
	if !r.Insts[4].Trigger {
		t.Error("%insn should be the trigger template")
	}
	// Behaves identically to the handwritten sequence.
	store := isa.Inst{Op: isa.OpSTQ, RT: 7, RS: 9, RD: isa.NoReg, Imm: 16}
	got := r.Instantiate(store, 0)
	want := mfiRepl().Instantiate(store, 0)
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("inst %d: parsed %v != handwritten %v", i, got[i], want[i])
		}
	}
}

func TestParseAware(t *testing.T) {
	prods, err := ParseProductions(`
aware decomp {
    match op == res0
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prods) != 1 || !prods[0].Aware || prods[0].Pattern.Op != isa.OpRES0 {
		t.Errorf("parsed %+v", prods)
	}
}

func TestParseMatchConditions(t *testing.T) {
	prods := MustParseProductions(`
prod p {
    match class == condbr && imm < 0
    replace {
        %insn
    }
}
`)
	p := prods[0].Pattern
	if p.Class != isa.ClassCondBr || p.ImmSign != -1 {
		t.Errorf("pattern = %+v", p)
	}
}

func TestParseRegisterAndImmConditions(t *testing.T) {
	prods := MustParseProductions(`
prod p {
    match op == ldq && rs == sp && imm == 8
    replace {
        %insn
    }
}
`)
	p := prods[0].Pattern
	if p.Op != isa.OpLDQ || p.RS != isa.RegSP || !p.MatchImm || p.Imm != 8 {
		t.Errorf("pattern = %+v", p)
	}
}

func TestParseOpFromTriggerMem(t *testing.T) {
	// Sandboxing: re-emit the trigger's opcode with $dr1 as base.
	prods := MustParseProductions(`
prod sandbox {
    match class == store
    replace {
        andi %rs, 1023, $dr1
        %op %rt, %imm($dr1)
    }
}
`)
	ri := prods[0].Repl.Insts[1]
	if !ri.OpFromTrigger || ri.RS.Lit != isa.RegDR0+1 || ri.RT.Dir != RegTRT || ri.Imm.Dir != ImmTImm {
		t.Errorf("template = %+v", ri)
	}
	store := isa.Inst{Op: isa.OpSTQ, RT: 3, RS: 9, RD: isa.NoReg, Imm: 24}
	got := ri.Instantiate(store, 0)
	if got.Op != isa.OpSTQ || got.RS != isa.RegDR0+1 || got.RT != 3 || got.Imm != 24 {
		t.Errorf("instantiated = %v", got)
	}
}

func TestParseWideParams(t *testing.T) {
	prods := MustParseProductions(`
prod cw {
    match op == res1
    replace {
        lda %p1, %p23($dr0)
        br zero, %p123
    }
}
`)
	insts := prods[0].Repl.Insts
	if insts[0].RD.Dir != RegTRS || insts[0].Imm.Dir != ImmP23 {
		t.Errorf("inst 0 = %+v", insts[0])
	}
	if insts[1].Imm.Dir != ImmP123 {
		t.Errorf("inst 1 = %+v", insts[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{"prod p {\n replace {\n %insn\n }\n}", "no match clause"},
		{"prod p {\n match class == store\n}", "no replace block"},
		{"aware a {\n match op == res0\n replace {\n %insn\n }\n}", "cannot carry"},
		{"prod p {\n match class == bogus\n replace {\n %insn\n }\n}", "unknown class"},
		{"prod p {\n match op == bogus\n replace {\n %insn\n }\n}", "unknown opcode"},
		{"prod p {\n match class == store\n replace {\n bogus r1, r2, r3\n }\n}", "unknown mnemonic"},
		{"prod p {\n match class == store\n replace {\n dbeq $dr1, @nowhere\n }\n}", "undefined label"},
		{"prod p {\n match class == store\n replace {\n beq $dr1, @somewhere\n @somewhere:\n %insn\n }\n}", "only valid on DISE branches"},
		{"prod p {", "unterminated"},
		{"bogus line", "expected"},
	}
	for _, c := range cases {
		_, err := ParseProductions(c.src)
		if err == nil {
			t.Errorf("ParseProductions(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error %q does not contain %q", err, c.frag)
		}
	}
}

func TestInstallFile(t *testing.T) {
	c := NewController(perfectCfg())
	prods, err := c.InstallFile(mfiSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prods) != 2 {
		t.Fatalf("installed %d", len(prods))
	}
	if exp := c.Engine().Expand(aStore, 0); exp == nil || len(exp.Insts) != 5 {
		t.Error("installed MFI should expand stores")
	}
	if exp := c.Engine().Expand(aLoad, 0); exp == nil || len(exp.Insts) != 5 {
		t.Error("installed MFI should expand loads")
	}
}

func TestInstallFileAwareNeedsDict(t *testing.T) {
	c := NewController(perfectCfg())
	src := "aware d {\n match op == res0\n}"
	if _, err := c.InstallFile(src, nil); err == nil {
		t.Error("aware install without dictionary should fail")
	}
	dict := []*Replacement{{Name: "e", Insts: []ReplInst{FromLiteral(isa.Nop())}}}
	if _, err := c.InstallFile(src, map[string][]*Replacement{"d": dict}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	// Rendering a parsed replacement and re-parsing it yields the same
	// templates (controller external-representation fidelity).
	prods := MustParseProductions(mfiSrc)
	r := prods[0].Repl
	var lines []string
	for i := range r.Insts {
		s := r.Insts[i].String()
		if r.Insts[i].DiseBranch {
			// Targets render as absolute DISEPCs; keep them numeric.
			_ = s
		}
		lines = append(lines, "        "+s)
	}
	src := "prod rt {\n    match class == store\n    replace {\n" + strings.Join(lines, "\n") + "\n    }\n}"
	again, err := ParseProductions(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, src)
	}
	store := isa.Inst{Op: isa.OpSTQ, RT: 7, RS: 9, RD: isa.NoReg, Imm: 16}
	a := r.Instantiate(store, 0)
	b := again[0].Repl.Instantiate(store, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("inst %d: %v != %v", i, a[i], b[i])
		}
	}
}
