package core

import (
	"fmt"

	"repro/internal/isa"
)

// Production binds a pattern specification to a replacement sequence. A
// transparent production names its replacement directly; an aware production
// reads the replacement-sequence identifier from the trigger's tag bits
// (explicit tagging, paper §2.1).
type Production struct {
	Name    string
	Pattern Pattern

	// Repl is the replacement sequence of a transparent production.
	Repl *Replacement

	// TagIndexed marks an aware production: the replacement-sequence
	// identifier is DictBase plus the trigger's 11-bit tag. DictBase lets
	// several reserved opcodes address disjoint dictionaries.
	TagIndexed bool
	DictBase   int
}

// Transparent reports whether p maps to a single fixed replacement.
func (p *Production) Transparent() bool { return !p.TagIndexed }

// EngineConfig sizes the engine structures and fixes the miss costs
// (defaults follow the paper's §4 simulated configuration).
type EngineConfig struct {
	PTEntries int // pattern table capacity (default 32)

	RTEntries int  // replacement table capacity in instructions (default 2K)
	RTAssoc   int  // 1 = direct-mapped, k = k-way set-associative
	RTPerfect bool // model a perfect RT: no misses, no stalls

	// RTBlock coalesces this many sequential replacement instructions into
	// one RT entry, "reducing the number of RT read ports at the expense of
	// internal fragmentation" (paper §2.2): a sequence of length L occupies
	// ceil(L/RTBlock) blocks, and the trailing block's unused slots are
	// wasted capacity. 0 or 1 = one instruction per entry.
	RTBlock int

	MissPenalty    int // cycles for a simple PT/RT miss (default 30)
	ComposePenalty int // cycles for a miss whose handler composes (default 150)
}

// DefaultEngineConfig returns the paper's default DISE mechanism: 32 PT
// entries, a 2K-entry 2-way RT, 30-cycle misses, 150-cycle composing misses.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		PTEntries:      32,
		RTEntries:      2048,
		RTAssoc:        2,
		MissPenalty:    30,
		ComposePenalty: 150,
	}
}

// Expansion is the engine's output for one trigger: the instantiated
// replacement sequence, the templates it came from (the timing model needs
// the DISE-branch attribute), and the events its production incurred.
type Expansion struct {
	Prod      *Production
	SeqID     int
	Insts     []isa.Inst
	Templates []ReplInst

	PTMiss   bool
	RTMiss   bool
	Composed bool
	// Stall is the total miss-handling penalty in cycles; the pipeline
	// flushes and stalls for this long (paper §2.3: "the mechanics of PT/RT
	// miss handling resemble those of software TLB miss handling").
	Stall int
}

// EngineStats counts engine events.
type EngineStats struct {
	Fetched    int64 // application instructions inspected
	Expansions int64 // triggers replaced
	Inserted   int64 // replacement instructions produced (incl. trigger copies)
	PTMisses   int64
	RTMisses   int64
	Composed   int64 // RT misses that invoked the composer
	Stall      int64 // total miss stall cycles

	// MemoHits/MemoMisses count expansion-memo lookups: a hit reuses the
	// instantiated sequence for a previously seen (sequence id, trigger
	// bits, PC) site instead of re-running template instantiation. The memo
	// is a host-side optimization — RT residency, misses and stalls are
	// modeled identically on both paths.
	MemoHits   int64
	MemoMisses int64
}

// MemoRate returns the fraction of expansion attempts served from the memo.
func (s *EngineStats) MemoRate() float64 {
	if s.MemoHits+s.MemoMisses == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(s.MemoHits+s.MemoMisses)
}

// ExpansionRate returns the fraction of inspected instructions that
// triggered an expansion — e.g. ~30% under memory fault isolation (paper §4.1).
func (s *EngineStats) ExpansionRate() float64 {
	if s.Fetched == 0 {
		return 0
	}
	return float64(s.Expansions) / float64(s.Fetched)
}

type ptEntry struct {
	prod *Production
	lru  int64
}

// rtEntry caches one block of sequential replacement instructions, tagged
// by sequence identifier and block index (DISEPC / block size); it also
// records the sequence length, which aids virtualization (paper §2.2).
type rtEntry struct {
	valid  bool
	id     int
	block  int
	seqLen int
	tmpl   []ReplInst
	lru    int64
}

// memoKey identifies one expansion site: the resolved sequence identifier,
// the exact trigger instruction bits (Instantiate substitutes trigger fields
// into the templates), and the trigger PC (ImmTPC bakes it into immediates).
type memoKey struct {
	id int
	in isa.Inst
	pc uint64
}

// memoEntry caches the instantiated sequence and its templates for a site.
type memoEntry struct {
	insts []isa.Inst
	tmpl  []ReplInst
}

// Engine is the DISE engine: it inspects every fetched application
// instruction and macro-expands triggers.
type Engine struct {
	cfg  EngineConfig
	ctrl *Controller

	pt        []ptEntry
	rtSets    [][]rtEntry
	rtSetPow2 bool   // len(rtSets) is a power of two
	rtSetMask uint64 // len(rtSets)-1, valid when rtSetPow2
	clock     int64

	// memo caches instantiated expansions per static site. memoOff disables
	// it while the RT array holds corrupted bits (CorruptRTBlock): a memo
	// hit would replay the pristine instantiation and hide the corruption
	// from the fetch stream.
	memo    map[memoKey]memoEntry
	memoOff bool

	// epoch counts memo-invalidating events (production reloads, RT
	// corruption). SiteMemo entries and the emulator's translated
	// superblocks are tagged with it, so both flush at exactly the points
	// the expansion memo does.
	epoch uint64

	// pattern counter table: active vs PT-resident patterns per opcode
	// (the only architectural state of the PT/RT complex, paper §2.3).
	active   [isa.NumOpcodes]int8
	resident [isa.NumOpcodes]int8

	Stats EngineStats
}

func newEngine(cfg EngineConfig, ctrl *Controller) *Engine {
	e := &Engine{cfg: cfg, ctrl: ctrl}
	if cfg.PTEntries <= 0 {
		cfg.PTEntries = 32
		e.cfg.PTEntries = 32
	}
	if cfg.RTBlock <= 0 {
		cfg.RTBlock = 1
		e.cfg.RTBlock = 1
	}
	if !cfg.RTPerfect {
		assoc := cfg.RTAssoc
		if assoc <= 0 {
			assoc = 1
		}
		sets := cfg.RTEntries / cfg.RTBlock / assoc
		if sets <= 0 {
			sets = 1
		}
		e.rtSets = make([][]rtEntry, sets)
		for i := range e.rtSets {
			e.rtSets[i] = make([]rtEntry, assoc)
		}
		if sets&(sets-1) == 0 {
			e.rtSetPow2 = true
			e.rtSetMask = uint64(sets - 1)
		}
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// reset clears all cached PT/RT state (productions changed). The expansion
// memo is flushed — and re-enabled, if a fault campaign had disabled it —
// because memoized sequences were instantiated from the previous production
// set.
func (e *Engine) reset() {
	e.memo = nil
	e.memoOff = false
	e.epoch++
	e.pt = nil
	for i := range e.rtSets {
		for j := range e.rtSets[i] {
			e.rtSets[i][j] = rtEntry{}
		}
	}
	for op := range e.active {
		e.active[op] = 0
		e.resident[op] = 0
	}
	for _, p := range e.ctrl.activeProds {
		for _, op := range p.Pattern.Opcodes() {
			e.active[op]++
		}
	}
	// The controller loads patterns procedurally at install time; only an
	// active set larger than the PT leads to demand faulting later.
	for _, p := range e.ctrl.activeProds {
		if len(e.pt) >= e.cfg.PTEntries {
			break
		}
		e.ptInsert(p)
	}
}

// Expand inspects one fetched application instruction. It returns nil when
// the instruction matches no active pattern and is passed through unchanged.
// Instructions inside replacement sequences must not be offered back to
// Expand: DISE never re-expands its own output (paper §3.3).
func (e *Engine) Expand(in isa.Inst, pc uint64) *Expansion {
	return e.expand(in, pc, nil)
}

// SiteMemo caches the expansion-memo entry of one static trigger site: the
// emulator's translated superblocks hold one per trigger, so a memo hit
// costs a pointer chase instead of a map lookup. It is a pure front end to
// the shared memo — entries are copied from and written through to the map,
// tagged with the engine epoch, so translated and interpreted fetches of the
// same site observe identical memo behavior (including hit/miss counts).
type SiteMemo struct {
	epoch uint64
	id    int
	ent   memoEntry
	ok    bool
}

// ExpandSite is Expand for a fixed static site, consulting site before the
// memo map. The two paths are behaviorally identical; site only short-cuts
// the map lookup.
func (e *Engine) ExpandSite(in isa.Inst, pc uint64, site *SiteMemo) *Expansion {
	return e.expand(in, pc, site)
}

// SkipFetch accounts one inspected application fetch that the caller has
// already proven cannot match (no active pattern covers its opcode): the
// translated fast path calls it for non-trigger instructions so the engine's
// fetch counter and LRU clock advance exactly as Expand would have.
func (e *Engine) SkipFetch() {
	e.Stats.Fetched++
	e.clock++
}

// MayExpand reports whether any active pattern covers op. The emulator's
// translator ends superblocks at instructions for which this holds (trigger
// sites); the answer can only change at a production reload, which bumps
// TransEpoch.
func (e *Engine) MayExpand(op isa.Opcode) bool {
	return int(op) < len(e.active) && e.active[op] != 0
}

// TransEpoch returns the engine's memo-invalidation epoch. Translated code
// caching engine-dependent facts (trigger sites, SiteMemo entries) must be
// dropped when it changes.
func (e *Engine) TransEpoch() uint64 { return e.epoch }

// Penalties returns the PT/RT miss and composing-miss penalties in cycles:
// with the PTMiss/RTMiss/Composed record flags they rebuild per-record stall
// cycles (Stall = PTMiss·miss + RTMiss·(Composed ? compose : miss)).
func (e *Engine) Penalties() (miss, compose int) {
	return e.cfg.MissPenalty, e.cfg.ComposePenalty
}

func (e *Engine) expand(in isa.Inst, pc uint64, site *SiteMemo) *Expansion {
	e.Stats.Fetched++
	e.clock++
	op := in.Op
	if e.active[op] == 0 {
		return nil
	}
	exp := &Expansion{}
	if e.resident[op] != e.active[op] {
		e.ptFill(op)
		exp.PTMiss = true
		e.Stats.PTMisses++
		exp.Stall += e.cfg.MissPenalty
	}
	prod := e.ptMatch(in)
	if prod == nil {
		if exp.PTMiss {
			// A PT fill with no match still stalled the pipe.
			e.Stats.Stall += int64(exp.Stall)
			return exp
		}
		return nil
	}
	id := e.ctrl.seqID(prod, in)
	if !e.memoOff {
		if site == nil {
			if ent, ok := e.memo[memoKey{id: id, in: in, pc: pc}]; ok {
				return e.memoHit(exp, prod, id, ent)
			}
		} else if site.ok && site.epoch == e.epoch && site.id == id {
			return e.memoHit(exp, prod, id, site.ent)
		} else if ent, ok := e.memo[memoKey{id: id, in: in, pc: pc}]; ok {
			*site = SiteMemo{epoch: e.epoch, id: id, ent: ent, ok: true}
			return e.memoHit(exp, prod, id, ent)
		}
		e.Stats.MemoMisses++
	}
	tmpl, miss, composed := e.rtFetch(id)
	if tmpl == nil {
		// No replacement registered under this identifier: treat as a
		// non-match (the codeword passes through; the emulator will fault).
		if exp.PTMiss {
			e.Stats.Stall += int64(exp.Stall)
			return exp
		}
		return nil
	}
	if miss {
		exp.RTMiss = true
		e.Stats.RTMisses++
		if composed {
			exp.Composed = true
			e.Stats.Composed++
			exp.Stall += e.cfg.ComposePenalty
		} else {
			exp.Stall += e.cfg.MissPenalty
		}
	}
	exp.Prod = prod
	exp.SeqID = id
	exp.Templates = tmpl
	exp.Insts = make([]isa.Inst, len(tmpl))
	for i := range tmpl {
		exp.Insts[i] = tmpl[i].Instantiate(in, pc)
	}
	if !e.memoOff {
		if e.memo == nil {
			e.memo = make(map[memoKey]memoEntry)
		}
		ent := memoEntry{insts: exp.Insts, tmpl: tmpl}
		e.memo[memoKey{id: id, in: in, pc: pc}] = ent
		if site != nil {
			*site = SiteMemo{epoch: e.epoch, id: id, ent: ent, ok: true}
		}
	}
	e.Stats.Expansions++
	e.Stats.Inserted += int64(len(tmpl))
	e.Stats.Stall += int64(exp.Stall)
	return exp
}

// memoHit finishes an expansion whose instantiated sequence was found in the
// memo (or a SiteMemo front end): reuse the cached sequence, but model the
// RT exactly as the slow path would — touch resident blocks' LRU state, or
// take the miss (refill + stall) if it was evicted.
func (e *Engine) memoHit(exp *Expansion, prod *Production, id int, ent memoEntry) *Expansion {
	e.Stats.MemoHits++
	if !e.cfg.RTPerfect && !e.rtTouch(id) {
		r, comp := e.ctrl.fetchSequence(id)
		if r == nil {
			if exp.PTMiss {
				e.Stats.Stall += int64(exp.Stall)
				return exp
			}
			return nil
		}
		e.rtInstall(id, r)
		exp.RTMiss = true
		e.Stats.RTMisses++
		if comp {
			exp.Composed = true
			e.Stats.Composed++
			exp.Stall += e.cfg.ComposePenalty
		} else {
			exp.Stall += e.cfg.MissPenalty
		}
	}
	exp.Prod = prod
	exp.SeqID = id
	exp.Templates = ent.tmpl
	exp.Insts = ent.insts
	e.Stats.Expansions++
	e.Stats.Inserted += int64(len(ent.tmpl))
	e.Stats.Stall += int64(exp.Stall)
	return exp
}

// ptFill loads all active patterns for op into the PT, evicting LRU entries.
func (e *Engine) ptFill(op isa.Opcode) {
	for _, p := range e.ctrl.activeProds {
		if !patternCovers(&p.Pattern, op) {
			continue
		}
		if e.ptResident(p) {
			continue
		}
		e.ptInsert(p)
	}
}

func patternCovers(p *Pattern, op isa.Opcode) bool {
	if p.Op != isa.OpInvalid {
		return p.Op == op
	}
	return p.Class == isa.ClassInvalid || p.Class == op.Class()
}

func (e *Engine) ptResident(p *Production) bool {
	for i := range e.pt {
		if e.pt[i].prod == p {
			return true
		}
	}
	return false
}

func (e *Engine) ptInsert(p *Production) {
	if len(e.pt) < e.cfg.PTEntries {
		e.pt = append(e.pt, ptEntry{prod: p, lru: e.clock})
	} else {
		victim := 0
		for i := range e.pt {
			if e.pt[i].lru < e.pt[victim].lru {
				victim = i
			}
		}
		for _, op := range e.pt[victim].prod.Pattern.Opcodes() {
			e.resident[op]--
		}
		e.pt[victim] = ptEntry{prod: p, lru: e.clock}
	}
	for _, op := range p.Pattern.Opcodes() {
		e.resident[op]++
	}
}

// ptMatch finds the most specific resident pattern matching in.
func (e *Engine) ptMatch(in isa.Inst) *Production {
	var best *Production
	bestSpec := -1
	for i := range e.pt {
		p := e.pt[i].prod
		if !p.Pattern.Matches(in) {
			continue
		}
		if s := p.Pattern.Specificity(); s > bestSpec {
			best, bestSpec = p, s
			e.pt[i].lru = e.clock
		}
	}
	return best
}

// rtFetch returns the templates of sequence id, filling the RT on a miss.
// It reports whether a miss occurred and whether the miss handler had to
// compose the sequence.
func (e *Engine) rtFetch(id int) (tmpl []ReplInst, miss, composed bool) {
	if e.cfg.RTPerfect {
		// A perfect RT always hits; the miss handler (and composer) never runs.
		r, _ := e.ctrl.fetchSequence(id)
		if r == nil {
			return nil, false, false
		}
		return r.Insts, false, false
	}
	// Probe the RT for every instruction of the sequence. The sequence
	// length is recorded in each resident entry's tag.
	if insts, ok := e.rtProbe(id); ok {
		return insts, false, false
	}
	r, comp := e.ctrl.fetchSequence(id)
	if r == nil {
		return nil, false, false
	}
	e.rtInstall(id, r)
	return r.Insts, true, comp
}

func (e *Engine) rtSet(id, block int) []rtEntry {
	// Bit-sliced indexing, as cheap hardware would build it: the low bits
	// of {sequence identifier, block offset} select the set. Sequence
	// identifiers 4 bits apart alias; coarser blocks (RTBlock > 1) also
	// coarsen this index, so block coalescing costs both internal
	// fragmentation and index resolution.
	h := uint64(id)<<4 + uint64(block&0xf) + uint64(block>>4)*31
	if e.rtSetPow2 {
		return e.rtSets[h&e.rtSetMask]
	}
	return e.rtSets[h%uint64(len(e.rtSets))]
}

// rtTouch replays rtProbe's LRU side effects for sequence id — block by
// block, stopping at the first non-resident block, exactly as the probe
// would — without assembling the instruction slice. It reports whether the
// whole sequence is resident. The memo hit path uses it so that RT
// replacement behavior is bit-identical with and without the memo.
func (e *Engine) rtTouch(id int) bool {
	set := e.rtSet(id, 0)
	n := -1
	for i := range set {
		if set[i].valid && set[i].id == id && set[i].block == 0 {
			n = set[i].seqLen
			break
		}
	}
	if n < 0 {
		return false
	}
	blocks := (n + e.cfg.RTBlock - 1) / e.cfg.RTBlock
	for b := 0; b < blocks; b++ {
		set := e.rtSet(id, b)
		found := false
		for i := range set {
			if set[i].valid && set[i].id == id && set[i].block == b {
				set[i].lru = e.clock
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// rtProbe returns the cached sequence if every block is resident.
func (e *Engine) rtProbe(id int) ([]ReplInst, bool) {
	set := e.rtSet(id, 0)
	n := -1
	for i := range set {
		if set[i].valid && set[i].id == id && set[i].block == 0 {
			n = set[i].seqLen
			break
		}
	}
	if n < 0 {
		return nil, false
	}
	blocks := (n + e.cfg.RTBlock - 1) / e.cfg.RTBlock
	insts := make([]ReplInst, 0, n)
	for b := 0; b < blocks; b++ {
		set := e.rtSet(id, b)
		found := false
		for i := range set {
			if set[i].valid && set[i].id == id && set[i].block == b {
				insts = append(insts, set[i].tmpl...)
				set[i].lru = e.clock
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return insts, true
}

func (e *Engine) rtInstall(id int, r *Replacement) {
	bsz := e.cfg.RTBlock
	for start := 0; start < len(r.Insts); start += bsz {
		end := start + bsz
		if end > len(r.Insts) {
			end = len(r.Insts)
		}
		set := e.rtSet(id, start/bsz)
		victim := 0
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		set[victim] = rtEntry{valid: true, id: id, block: start / bsz,
			seqLen: len(r.Insts), tmpl: r.Insts[start:end], lru: e.clock}
	}
}

// ValidRTBlocks returns the number of currently valid RT blocks (set-major
// order is used to index them for CorruptRTBlock). A perfect RT caches
// nothing and reports 0.
func (e *Engine) ValidRTBlocks() int {
	n := 0
	for _, set := range e.rtSets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// CorruptRTBlock applies mut to a copy of the n-th valid RT block's cached
// templates (set-major order), modeling a soft error in the RT array. The
// copy matters: installed blocks alias the controller's virtual replacement
// store, and a hardware fault corrupts only the cached bits — eviction and
// refill repair it. It reports whether a block was corrupted.
//
// Corrupting the RT also flushes and disables the expansion memo: memoized
// sequences were instantiated from pristine RT reads, and serving them would
// hide the corruption from the fetch stream. The memo stays off until the
// next production reload (reset) so post-repair behavior needs no tracking.
func (e *Engine) CorruptRTBlock(n int, mut func([]ReplInst) []ReplInst) bool {
	e.memo = nil
	e.memoOff = true
	e.epoch++
	for _, set := range e.rtSets {
		for i := range set {
			if !set[i].valid {
				continue
			}
			if n == 0 {
				tmpl := make([]ReplInst, len(set[i].tmpl))
				copy(tmpl, set[i].tmpl)
				set[i].tmpl = mut(tmpl)
				return true
			}
			n--
		}
	}
	return false
}

// RTUtilization returns the fraction of RT entries currently valid.
func (e *Engine) RTUtilization() float64 {
	if e.cfg.RTPerfect || len(e.rtSets) == 0 {
		return 0
	}
	total, valid := 0, 0
	for _, set := range e.rtSets {
		for i := range set {
			total++
			if set[i].valid {
				valid++
			}
		}
	}
	return float64(valid) / float64(total)
}

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("dise.Engine{pt=%d/%d, expansions=%d, rtMisses=%d}",
		len(e.pt), e.cfg.PTEntries, e.Stats.Expansions, e.Stats.RTMisses)
}
