package core
