package core

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestDescribeListsProductions(t *testing.T) {
	c := NewController(perfectCfg())
	installMFI(t, c)
	dict := []*Replacement{{Name: "e0", Insts: []ReplInst{FromLiteral(isa.Nop())}}}
	if _, err := c.InstallAware("decomp", pat(func(p *Pattern) { p.Op = isa.OpRES0 }), dict); err != nil {
		t.Fatal(err)
	}
	out := c.Describe()
	for _, want := range []string{"mfi_store (transparent)", "class == store", "decomp (aware)", "op == res0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestEngineString(t *testing.T) {
	c := NewController(perfectCfg())
	installMFI(t, c)
	c.Engine().Expand(aStore, 0)
	s := c.Engine().String()
	if !strings.Contains(s, "expansions=1") {
		t.Errorf("String = %q", s)
	}
}

func TestRTUtilization(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.RTEntries = 64
	cfg.RTAssoc = 2
	c := NewController(cfg)
	installMFI(t, c)
	e := c.Engine()
	if e.RTUtilization() != 0 {
		t.Error("fresh RT should be empty")
	}
	e.Expand(aStore, 0)
	got := e.RTUtilization()
	// 5 entries filled out of 64.
	if got <= 0 || got > 0.2 {
		t.Errorf("utilization = %v", got)
	}
	// Perfect RTs report zero utilization (no physical structure).
	cp := NewController(perfectCfg())
	installMFI(t, cp)
	cp.Engine().Expand(aStore, 0)
	if cp.Engine().RTUtilization() != 0 {
		t.Error("perfect RT has no utilization")
	}
}

func TestEngineConfigAccessor(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.PTEntries = 7
	c := NewController(cfg)
	if got := c.Engine().Config().PTEntries; got != 7 {
		t.Errorf("Config().PTEntries = %d", got)
	}
}

func TestStallAccountingOnPTFillWithoutMatch(t *testing.T) {
	// Force a PT miss whose fill produces no match for the fetched
	// instruction: the stall must still be reported and counted.
	cfg := perfectCfg()
	cfg.PTEntries = 1
	c := NewController(cfg)
	// Two patterns on different opcodes; only one fits the PT.
	id := &Replacement{Name: "id", Insts: []ReplInst{TriggerInst()}}
	if _, err := c.InstallTransparent("a", pat(func(p *Pattern) { p.Op = isa.OpSTQ; p.RS = isa.RegSP }), id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InstallTransparent("b", pat(func(p *Pattern) { p.Op = isa.OpSTL }), id); err != nil {
		t.Fatal(err)
	}
	e := c.Engine()
	stl := isa.Inst{Op: isa.OpSTL, RT: 1, RS: 2, RD: isa.NoReg}
	e.Expand(stl, 0) // faults "b" in, evicting "a"
	// A store that does not match pattern "a" (base != sp) still faults the
	// pattern in (counter mismatch) and stalls, then passes through.
	notSP := isa.Inst{Op: isa.OpSTQ, RT: 1, RS: 2, RD: isa.NoReg}
	exp := e.Expand(notSP, 0)
	if exp == nil || !exp.PTMiss || exp.Insts != nil {
		t.Errorf("PT fill without match should report stall-only expansion: %+v", exp)
	}
	if e.Stats.PTMisses == 0 || e.Stats.Stall == 0 {
		t.Errorf("stats = %+v", e.Stats)
	}
}
