package asm

import (
	"strings"
	"testing"

	"repro/internal/acf/compress"
	"repro/internal/isa"
	"repro/internal/program"
)

// sourceSrc exercises every format and pseudo the assembler accepts, so the
// round trip covers the full rendering surface of Inst.String.
const sourceSrc = `
.entry main
.data
buf:  .quad 7 9
tail: .byte 1 2 3 4
      .space 64
.text
main:
	li r1, 123456        ; expands to ldah+lda
	la r2, buf           ; expands to ldah+lda of a data address
	ldq r3, 0(r2)
	stl r3, 8(r2)
	mov r3, r4
	addq r1, r4, r5
	cmplti r5, 17, r6
	sll r5, r6, r7
loop:
	subqi r1, 1, r1
	bgt r1, loop
	bsr ra, fn
	sys 2
	halt
fn:
	jeq r6, (ra)
	res1 3, 0, 7, #129
	ret
`

func TestSourceRoundTrip(t *testing.T) {
	p := MustAssemble("src", sourceSrc)
	if err := RoundTrip(p); err != nil {
		t.Fatal(err)
	}
	// The rendering must also be stable: Source of the reassembled program
	// is byte-identical to Source of the original.
	s1, err := Source(p)
	if err != nil {
		t.Fatal(err)
	}
	q := MustAssemble("src", s1)
	s2, err := Source(q)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("Source is not a fixed point of assemble∘Source")
	}
}

func TestSourceRejectsCompressedLayouts(t *testing.T) {
	p := MustAssemble("c", strings.Repeat("addq r1, r2, r3\n", 12)+"halt\n")
	res, err := compress.Compress(p, compress.Dedicated())
	if err != nil {
		t.Fatal(err)
	}
	if res.Prog.Sizes == nil {
		t.Fatal("dedicated compression produced no 2-byte units")
	}
	if _, err := Source(res.Prog); err == nil {
		t.Error("Source should reject 2-byte layouts")
	}
}

func TestSourceRejectsDedicatedRegisters(t *testing.T) {
	p := &program.Program{Name: "d", Symbols: map[string]int{}, Text: []isa.Inst{
		{Op: isa.OpADDQ, RS: isa.RegDR0, RT: isa.RegDR0, RD: isa.RegDR0},
		{Op: isa.OpHALT, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg},
	}}
	if _, err := Source(p); err == nil {
		t.Error("Source should reject dedicated registers")
	}
}

// TestCompressedImageGroundTruth is the end-to-end disassembly-audit shape
// the conformance harness runs per case: compress a program with the
// dedicated 2-byte baseline, emit the byte image plus loader labels, and
// require that label-directed decode reproduces the unit stream exactly
// while a naive 4-byte-aligned sweep does not.
func TestCompressedImageGroundTruth(t *testing.T) {
	src := strings.Repeat("addq r1, r2, r3\nxor r4, r5, r6\n", 24) + "halt\n"
	p := MustAssemble("gt", src)
	res, err := compress.Compress(p, compress.Dedicated())
	if err != nil {
		t.Fatal(err)
	}
	cp := res.Prog
	if cp.Sizes == nil {
		t.Fatal("no compression happened; the audit needs 2-byte units")
	}
	img, err := cp.TextImage()
	if err != nil {
		t.Fatal(err)
	}
	units, err := program.DecodeTextImage(img, cp.ByteLabels())
	if err != nil {
		t.Fatal(err)
	}
	for i := range units {
		if units[i] != cp.Text[i] {
			t.Fatalf("label-directed decode diverges at unit %d: %v != %v", i, units[i], cp.Text[i])
		}
	}
	swept := SweepWords(img)
	agree := len(swept) == len(cp.Text)
	if agree {
		for i := range swept {
			if swept[i] != cp.Text[i] {
				agree = false
				break
			}
		}
	}
	if agree {
		t.Error("naive sweep reproduced a 2-byte-codeword image; the ground-truth labels would be pointless")
	}
}

// TestSweepMatchesNaturalImages pins the positive control: on a natural
// all-4-byte image the naive sweep and the ground truth agree, so the audit
// only indicts the sweep where misalignment is real.
func TestSweepMatchesNaturalImages(t *testing.T) {
	p := MustAssemble("nat", sourceSrc)
	img, err := p.TextImage()
	if err != nil {
		t.Fatal(err)
	}
	swept := SweepWords(img)
	if len(swept) != len(p.Text) {
		t.Fatalf("swept %d units, want %d", len(swept), len(p.Text))
	}
	for i := range swept {
		if swept[i] != p.Text[i] {
			t.Errorf("unit %d: %v != %v", i, swept[i], p.Text[i])
		}
	}
}
