package asm

// Source emission: the inverse of Assemble, for natural-layout programs.
// Where Disassemble produces annotated listings for humans, Source produces
// text the assembler accepts back, so the asm → disasm → asm round trip is a
// checkable identity. Branch displacements are emitted numerically (the
// assembler accepts unit displacements directly), which keeps the rendering
// independent of symbol naming.

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// Source renders p as assembly text that Assemble reproduces exactly (same
// Text, Entry and Data; symbols are not preserved). It fails for programs
// whose layout contains 2-byte units — a dedicated-decompressor image is not
// a sequence of assembler statements — and for instructions naming dedicated
// registers, which have no source syntax outside production files.
func Source(p *program.Program) (string, error) {
	if p.Sizes != nil {
		for i, s := range p.Sizes {
			if s != isa.InstBytes {
				return "", fmt.Errorf("asm: source: unit %d has size %d; compressed layouts have no source form", i, s)
			}
		}
	}
	var b strings.Builder
	b.WriteString(".text\n")
	fmt.Fprintf(&b, ".entry u%d\n", p.Entry)
	for i, in := range p.Text {
		if in.UsesDedicated() {
			return "", fmt.Errorf("asm: source: unit %d (%v) names a dedicated register", i, in)
		}
		fmt.Fprintf(&b, "u%d: %s\n", i, in)
	}
	if len(p.Data) > 0 {
		b.WriteString(".data\n")
		writeData(&b, p.Data)
	}
	return b.String(), nil
}

// writeData emits p.Data as .byte/.space lines, run-length compressing zero
// stretches so large zero-initialized segments stay readable.
func writeData(b *strings.Builder, data []byte) {
	for at := 0; at < len(data); {
		if data[at] == 0 {
			run := at
			for run < len(data) && data[run] == 0 {
				run++
			}
			if run-at >= 8 {
				fmt.Fprintf(b, ".space %d\n", run-at)
				at = run
				continue
			}
		}
		n := min(16, len(data)-at)
		vals := make([]string, 0, n)
		for _, v := range data[at : at+n] {
			vals = append(vals, fmt.Sprintf("%d", v))
		}
		fmt.Fprintf(b, ".byte %s\n", strings.Join(vals, ", "))
		at += n
	}
}

// RoundTrip asserts the asm → disasm → asm identity on p: Source must render
// text Assemble turns back into the same unit stream, entry and data. It
// returns nil on success and a diagnostic error naming the first divergence
// otherwise.
func RoundTrip(p *program.Program) error {
	src, err := Source(p)
	if err != nil {
		return err
	}
	q, err := Assemble(p.Name, src)
	if err != nil {
		return fmt.Errorf("asm: round trip: rendered source does not assemble: %w", err)
	}
	if q.Entry != p.Entry {
		return fmt.Errorf("asm: round trip: entry %d != %d", q.Entry, p.Entry)
	}
	if len(q.Text) != len(p.Text) {
		return fmt.Errorf("asm: round trip: %d units != %d", len(q.Text), len(p.Text))
	}
	for i := range p.Text {
		if q.Text[i] != p.Text[i] {
			return fmt.Errorf("asm: round trip: unit %d: %v != %v", i, q.Text[i], p.Text[i])
		}
	}
	if len(q.Data) != len(p.Data) {
		return fmt.Errorf("asm: round trip: %d data bytes != %d", len(q.Data), len(p.Data))
	}
	for i := range p.Data {
		if q.Data[i] != p.Data[i] {
			return fmt.Errorf("asm: round trip: data byte %d: %d != %d", i, q.Data[i], p.Data[i])
		}
	}
	return nil
}

// SweepWords is the heuristic the ground-truth labels exist to replace: a
// naive linear sweep that reads img as consecutive 4-byte words and decodes
// whatever it finds, with no knowledge of unit boundaries. On natural images
// it reproduces the unit stream; on compressed images with 2-byte codewords
// it fuses units and misparses operand payload as instruction heads. Words
// that fail to decode are returned as OpInvalid placeholders; a trailing
// partial word is dropped.
func SweepWords(img []byte) []isa.Inst {
	insts := make([]isa.Inst, 0, len(img)/isa.InstBytes)
	for at := 0; at+isa.InstBytes <= len(img); at += isa.InstBytes {
		in, err := isa.Decode(binary.LittleEndian.Uint32(img[at:]))
		if err != nil {
			in = isa.Inst{Op: isa.OpInvalid}
		}
		insts = append(insts, in)
	}
	return insts
}
