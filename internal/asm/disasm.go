package asm

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// Disassemble renders a program as annotated assembly text: unit index, byte
// address, instruction, and symbolic branch targets where known.
func Disassemble(p *program.Program) string {
	names := make(map[int]string)
	for sym, u := range p.Symbols {
		if cur, ok := names[u]; !ok || sym < cur {
			names[u] = sym
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s: %d units, %d text bytes, %d data bytes\n",
		p.Name, p.NumUnits(), p.TextBytes(), len(p.Data))
	for i, in := range p.Text {
		if sym, ok := names[i]; ok {
			fmt.Fprintf(&b, "%s:\n", sym)
		}
		entry := " "
		if i == p.Entry {
			entry = ">"
		}
		text := in.String()
		if in.Op.IsBranch() {
			t := p.BranchTargetUnit(i)
			if sym, ok := names[t]; ok {
				text += fmt.Sprintf("\t; -> %s", sym)
			} else {
				text += fmt.Sprintf("\t; -> unit %d", t)
			}
		}
		fmt.Fprintf(&b, "%s%6d  %08x  %s\n", entry, i, p.Addr(i), text)
	}
	return b.String()
}

// SymbolsInOrder returns the program's text symbols sorted by unit index.
func SymbolsInOrder(p *program.Program) []string {
	syms := make([]string, 0, len(p.Symbols))
	for s := range p.Symbols {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool {
		a, b := p.Symbols[syms[i]], p.Symbols[syms[j]]
		if a != b {
			return a < b
		}
		return syms[i] < syms[j]
	})
	return syms
}

// FormatInst renders a single instruction, marking DISE-internal register
// usage. It is shared by trace printers.
func FormatInst(in isa.Inst) string {
	s := in.String()
	if in.UsesDedicated() {
		s += "  ; dise"
	}
	return s
}

// LoadFile loads a program from a file: an EVRX binary image (by magic) or
// EVR assembly text.
func LoadFile(path string) (*program.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("EVRX")) {
		return program.ReadImage(path, bytes.NewReader(data))
	}
	return Assemble(path, string(data))
}
