package asm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

const helloSrc = `
; a tiny program
.entry main
.data
buf: .quad 7 9
tail: .byte 1 2 3 4
      .space 8

.text
main:
    la r1, buf
    ldq r2, 0(r1)
    ldq r3, 8(r1)
    addq r2, r3, r4
    stq r4, 16(r1)
loop:
    subqi r4, 1, r4
    bne r4, loop
    bsr ra, leaf
    halt
leaf:
    li r5, 70000
    mov r5, r6
    nop
    ret
`

func TestAssembleHello(t *testing.T) {
	p, err := Assemble("hello", helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry = %d, want main (%d)", p.Entry, p.Symbols["main"])
	}
	if len(p.Data) != 16+4+8 {
		t.Errorf("data size = %d, want 28", len(p.Data))
	}
	// la expands to 2 units, li 70000 expands to 2 units.
	// main block: 2(la)+4 = 6 units before loop.
	if p.Symbols["loop"] != 6 {
		t.Errorf("loop at %d, want 6", p.Symbols["loop"])
	}
	// bne targets loop.
	bne := p.Text[7]
	if bne.Op != isa.OpBNE {
		t.Fatalf("unit 7 is %v, want bne", bne)
	}
	if got := p.BranchTargetUnit(7); got != p.Symbols["loop"] {
		t.Errorf("bne target %d, want loop", got)
	}
	// bsr targets leaf.
	if got := p.BranchTargetUnit(8); got != p.Symbols["leaf"] {
		t.Errorf("bsr target %d, want leaf (%d)", got, p.Symbols["leaf"])
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLaLoadsDataAddress(t *testing.T) {
	p := MustAssemble("t", `
.data
x: .space 32
y: .quad 42
.text
main:
  la r1, y
  halt
`)
	// Simulate the ldah/lda pair by hand.
	hi := p.Text[0]
	lo := p.Text[1]
	if hi.Op != isa.OpLDAH || lo.Op != isa.OpLDA {
		t.Fatalf("la expansion = %v; %v", hi, lo)
	}
	v := int64(0) + hi.Imm<<16
	v += lo.Imm
	want := int64(program.DataBase) + 32
	if v != want {
		t.Errorf("la resolves to %#x, want %#x", v, want)
	}
}

func TestLiSmallAndLarge(t *testing.T) {
	p := MustAssemble("t", `
main:
  li r1, 5
  li r2, -5
  li r3, 1000000
  halt
`)
	if p.Text[0].Op != isa.OpLDA || p.Text[0].Imm != 5 {
		t.Errorf("li 5 = %v", p.Text[0])
	}
	if p.Text[1].Imm != -5 {
		t.Errorf("li -5 = %v", p.Text[1])
	}
	// 1000000 needs ldah+lda: check value reconstruction.
	v := p.Text[2].Imm<<16 + p.Text[3].Imm
	if v != 1000000 {
		t.Errorf("li 1000000 reconstructs to %d", v)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"main:\n bogus r1, r2\n", "unknown mnemonic"},
		{"main:\n beq r1, nowhere\n halt\n", "undefined label"},
		{"main:\n ldq r1, 8(r99)\n", "bad register"},
		{"main:\n la r1, main\n halt\n", "absolute code addresses"},
		{"main:\nmain:\n halt\n", "duplicate label"},
		{".entry nosuch\nmain:\n halt\n", "undefined"},
		{".quad 5\n", "outside .data"},
		{"main:\n addqi r1, 999999, r2\n", "out of range"},
		{"main:\n res0 1, 2, 3, #99999\n", "bad tag"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil {
			t.Errorf("Assemble(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Assemble(%q) error %q, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestCodewordAssembly(t *testing.T) {
	p := MustAssemble("t", `
main:
  res0 1, 2, 3, #77
  halt
`)
	cw := p.Text[0]
	if cw.Op != isa.OpRES0 || cw.RS != 1 || cw.RT != 2 || cw.RD != 3 || cw.Imm != 77 {
		t.Errorf("codeword = %+v", cw)
	}
}

func TestNumericBranchDisp(t *testing.T) {
	p := MustAssemble("t", `
main:
  nop
  br zero, -2
  halt
`)
	if got := p.BranchTargetUnit(1); got != 0 {
		t.Errorf("br target = %d, want 0", got)
	}
}

func TestRoundTripThroughEncoding(t *testing.T) {
	p := MustAssemble("rt", helloSrc)
	words, err := p.EncodeText()
	if err != nil {
		t.Fatal(err)
	}
	q, err := program.DecodeText("rt", words, p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Text {
		if p.Text[i] != q.Text[i] {
			t.Errorf("unit %d: %v != %v", i, p.Text[i], q.Text[i])
		}
	}
}

func TestDisassembleContainsSymbols(t *testing.T) {
	p := MustAssemble("d", helloSrc)
	out := Disassemble(p)
	for _, want := range []string{"main:", "loop:", "leaf:", "bsr", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestSymbolsInOrder(t *testing.T) {
	p := MustAssemble("s", helloSrc)
	syms := SymbolsInOrder(p)
	if len(syms) != 3 || syms[0] != "main" || syms[1] != "loop" || syms[2] != "leaf" {
		t.Errorf("SymbolsInOrder = %v", syms)
	}
}

func TestBasicBlocks(t *testing.T) {
	p := MustAssemble("b", helloSrc)
	blocks := p.BasicBlocks()
	if len(blocks) < 4 {
		t.Fatalf("got %d blocks, want >= 4", len(blocks))
	}
	// Block boundaries must cover the whole text without gaps.
	pos := 0
	for _, b := range blocks {
		if b.Start != pos {
			t.Errorf("block starts at %d, want %d", b.Start, pos)
		}
		if b.Len() <= 0 {
			t.Errorf("empty block at %d", b.Start)
		}
		pos = b.End
	}
	if pos != p.NumUnits() {
		t.Errorf("blocks cover %d units, want %d", pos, p.NumUnits())
	}
	// loop must start a block (it is a branch target).
	found := false
	for _, b := range blocks {
		if b.Start == p.Symbols["loop"] {
			found = true
		}
	}
	if !found {
		t.Error("loop is not a block leader")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "p.s")
	if err := os.WriteFile(srcPath, []byte(".entry main\nmain:\n li r1, 3\n halt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadFile(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through an EVRX image.
	imgPath := filepath.Join(dir, "p.evrx")
	f, err := os.Create(imgPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteImage(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	q, err := LoadFile(imgPath)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumUnits() != p.NumUnits() || q.Text[1] != p.Text[1] {
		t.Errorf("image load mismatch: %+v vs %+v", q.Text, p.Text)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.s")); err == nil {
		t.Error("missing file should fail")
	}
}
