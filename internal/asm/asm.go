// Package asm implements a two-pass assembler and a disassembler for the
// EVR instruction set. It exists so that workload generators, tests, and
// the DISE production language can all describe code symbolically.
//
// Syntax overview:
//
//	; line comment (also "//" and "#")
//	.text            switch to text section (default)
//	.data            switch to data section
//	.entry main      set the entry symbol
//	main:            label (text: unit index; data: byte address)
//	ldq r1, 8(r2)    memory format
//	addq r1, r2, r3  operate format
//	addqi r1, 5, r3  operate-immediate format
//	beq r1, loop     branch to label (or numeric unit displacement)
//	bsr ra, func     direct call
//	jsr ra, (r4)     indirect call
//	ret zero, (ra)   return (also plain "ret")
//	res0 1, 2, 3, #7 explicit DISE codeword: params and #tag
//	halt / sys 2     specials
//	nop              pseudo: bis zero, zero, zero
//	mov r1, r2       pseudo: bis r1, r1, r2
//	li r1, 123456    pseudo: load immediate (1-2 instructions)
//	la r1, buf       pseudo: load address of a *data* symbol (2 instructions)
//	.quad 1 2 3      data: 64-bit little-endian values
//	.byte 1 2 3      data: bytes
//	.space 64        data: zero fill
//
// Text labels are unit indices; compression and rewriting can therefore
// relocate code freely and re-resolve displacements. Data labels are byte
// addresses in the data segment. "la" of a text symbol is rejected: the EVR
// toolchain deliberately keeps absolute code addresses out of registers so
// that binaries remain relocatable by DISE-aware rewriters.
package asm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// ErrAssemble wraps every error returned by Assemble: malformed source is
// user error, classifiable with errors.Is(err, ErrAssemble), never a panic.
var ErrAssemble = errors.New("asm: assemble")

// Error reports an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Unwrap makes every *Error match ErrAssemble under errors.Is.
func (e *Error) Unwrap() error { return ErrAssemble }

type item struct {
	line   int
	mnem   string
	args   []string
	label  string // branch label operand, if symbolic
	inst   isa.Inst
	needLa string // data symbol for the second half of "la"
}

type assembler struct {
	items    []item
	textSyms map[string]int
	dataSyms map[string]uint64
	data     []byte
	entrySym string
}

// Assemble translates source into a Program.
func Assemble(name, src string) (*program.Program, error) {
	a := &assembler{
		textSyms: map[string]int{},
		dataSyms: map[string]uint64{},
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	return a.resolve(name)
}

// MustAssemble is Assemble for known-good sources; it panics on error. The
// panic marks a programmer error (a source literal in tests or generators
// that fails to assemble), never a data-dependent condition: code handling
// external source text must call Assemble.
func MustAssemble(name, src string) *program.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(line string) string {
	for _, marker := range []string{";", "//", "#"} {
		if i := strings.Index(line, marker); i >= 0 {
			// "#" introduces codeword tags, not comments, when preceded by
			// a comma or space inside an operand list; only treat it as a
			// comment when it starts the trimmed line.
			if marker == "#" && strings.TrimSpace(line[:i]) != "" {
				continue
			}
			line = line[:i]
		}
	}
	return line
}

func (a *assembler) parse(src string) error {
	section := "text"
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		lineNo := ln + 1
		// Labels (possibly several) at the start of the line.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,()") {
				break
			}
			label := line[:i]
			if _, dup := a.textSyms[label]; dup {
				return &Error{lineNo, fmt.Sprintf("duplicate label %q", label)}
			}
			if _, dup := a.dataSyms[label]; dup {
				return &Error{lineNo, fmt.Sprintf("duplicate label %q", label)}
			}
			if section == "text" {
				a.textSyms[label] = len(a.items)
			} else {
				a.dataSyms[label] = program.DataBase + uint64(len(a.data))
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		fields := splitOperands(line)
		mnem, args := fields[0], fields[1:]
		switch {
		case mnem == ".text":
			section = "text"
		case mnem == ".data":
			section = "data"
		case mnem == ".entry":
			if len(args) != 1 {
				return &Error{lineNo, ".entry wants one symbol"}
			}
			a.entrySym = args[0]
		case strings.HasPrefix(mnem, "."):
			if section != "data" {
				return &Error{lineNo, fmt.Sprintf("%s outside .data", mnem)}
			}
			if err := a.parseData(lineNo, mnem, args); err != nil {
				return err
			}
		default:
			if section != "text" {
				return &Error{lineNo, "instruction outside .text"}
			}
			if err := a.parseInst(lineNo, mnem, args); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitOperands splits "op a, b, c" into {"op", "a", "b", "c"}.
func splitOperands(line string) []string {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return []string{line}
	}
	out := []string{line[:i]}
	for _, f := range strings.Split(line[i+1:], ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func (a *assembler) parseData(lineNo int, mnem string, args []string) error {
	// Data directives accept space-separated values in a single operand too.
	var vals []string
	for _, arg := range args {
		vals = append(vals, strings.Fields(arg)...)
	}
	switch mnem {
	case ".quad":
		for _, v := range vals {
			n, err := strconv.ParseInt(v, 0, 64)
			if err != nil {
				return &Error{lineNo, fmt.Sprintf(".quad %q: %v", v, err)}
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(n))
			a.data = append(a.data, buf[:]...)
		}
	case ".byte":
		for _, v := range vals {
			n, err := strconv.ParseInt(v, 0, 16)
			if err != nil || n < -128 || n > 255 {
				return &Error{lineNo, fmt.Sprintf(".byte %q out of range", v)}
			}
			a.data = append(a.data, byte(n))
		}
	case ".space":
		if len(vals) != 1 {
			return &Error{lineNo, ".space wants one size"}
		}
		n, err := strconv.ParseInt(vals[0], 0, 32)
		if err != nil || n < 0 {
			return &Error{lineNo, fmt.Sprintf(".space %q invalid", vals[0])}
		}
		a.data = append(a.data, make([]byte, n)...)
	default:
		return &Error{lineNo, fmt.Sprintf("unknown directive %s", mnem)}
	}
	return nil
}

func parseImm(s string) (int64, bool) {
	n, err := strconv.ParseInt(s, 0, 64)
	return n, err == nil
}

func (a *assembler) emit(lineNo int, in isa.Inst, label, needLa string) {
	a.items = append(a.items, item{line: lineNo, inst: in, label: label, needLa: needLa})
}

func (a *assembler) parseInst(lineNo int, mnem string, args []string) error {
	fail := func(format string, v ...any) error {
		return &Error{lineNo, fmt.Sprintf(mnem+": "+format, v...)}
	}
	reg := func(s string) (isa.Reg, error) {
		r := isa.RegByName(s, false)
		if r == isa.NoReg {
			return isa.NoReg, fail("bad register %q", s)
		}
		return r, nil
	}
	// Pseudo-instructions first.
	switch mnem {
	case "nop":
		a.emit(lineNo, isa.Nop(), "", "")
		return nil
	case "mov":
		if len(args) != 2 {
			return fail("want 2 operands")
		}
		rs, err := reg(args[0])
		if err != nil {
			return err
		}
		rd, err := reg(args[1])
		if err != nil {
			return err
		}
		a.emit(lineNo, isa.Inst{Op: isa.OpBIS, RS: rs, RT: rs, RD: rd}, "", "")
		return nil
	case "li":
		if len(args) != 2 {
			return fail("want 2 operands")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		v, ok := parseImm(args[1])
		if !ok {
			return fail("bad immediate %q", args[1])
		}
		return a.emitLoadConst(lineNo, rd, v)
	case "la":
		if len(args) != 2 {
			return fail("want 2 operands")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		// Two fixed units: ldah rd, hi(zero); lda rd, lo(rd). Resolved once
		// data layout is final.
		a.emit(lineNo, isa.Inst{Op: isa.OpLDAH, RD: rd, RS: isa.RegZero, RT: isa.NoReg}, "", args[1])
		a.emit(lineNo, isa.Inst{Op: isa.OpLDA, RD: rd, RS: rd, RT: isa.NoReg}, "", args[1])
		return nil
	case "ret":
		if len(args) == 0 {
			a.emit(lineNo, isa.Inst{Op: isa.OpRET, RD: isa.RegZero, RS: isa.RegRA, RT: isa.NoReg}, "", "")
			return nil
		}
	}

	op := isa.OpcodeByName(mnem)
	if op == isa.OpInvalid {
		return fail("unknown mnemonic")
	}
	in := isa.Inst{Op: op, RS: isa.NoReg, RT: isa.NoReg, RD: isa.NoReg}
	switch op.Format() {
	case isa.FmtMem:
		if len(args) != 2 {
			return fail("want rd, disp(rs)")
		}
		ra, err := reg(args[0])
		if err != nil {
			return err
		}
		disp, base, err := parseMemOperand(args[1])
		if err != nil {
			return fail("%v", err)
		}
		if disp < isa.MinDisp16 || disp > isa.MaxDisp16 {
			return fail("displacement %d out of range", disp)
		}
		rb, err := reg(base)
		if err != nil {
			return err
		}
		in.RS, in.Imm = rb, disp
		if op.Class() == isa.ClassStore {
			in.RT = ra
		} else {
			in.RD = ra
		}
	case isa.FmtBranch:
		if len(args) != 2 {
			return fail("want reg, target")
		}
		ra, err := reg(args[0])
		if err != nil {
			return err
		}
		if op == isa.OpBR || op == isa.OpBSR {
			in.RD = ra
		} else {
			in.RS = ra
		}
		if v, ok := parseImm(args[1]); ok {
			in.Imm = v
		} else {
			a.emit(lineNo, in, args[1], "")
			return nil
		}
	case isa.FmtJump, isa.FmtJumpCond:
		if len(args) != 2 {
			return fail("want rd, (rs)")
		}
		ra, err := reg(args[0])
		if err != nil {
			return err
		}
		t := strings.TrimSuffix(strings.TrimPrefix(args[1], "("), ")")
		rs, err := reg(t)
		if err != nil {
			return err
		}
		in.RS = rs
		if op.Format() == isa.FmtJumpCond {
			in.RT = ra
		} else {
			in.RD = ra
		}
	case isa.FmtOpReg:
		if len(args) != 3 {
			return fail("want rs, rt, rd")
		}
		var err error
		if in.RS, err = reg(args[0]); err != nil {
			return err
		}
		if in.RT, err = reg(args[1]); err != nil {
			return err
		}
		if in.RD, err = reg(args[2]); err != nil {
			return err
		}
	case isa.FmtOpImm:
		if len(args) != 3 {
			return fail("want rs, imm, rd")
		}
		var err error
		if in.RS, err = reg(args[0]); err != nil {
			return err
		}
		v, ok := parseImm(args[1])
		if !ok {
			return fail("bad immediate %q", args[1])
		}
		if v < isa.MinDisp16 || v > isa.MaxDisp16 {
			return fail("immediate %d out of range", v)
		}
		in.Imm = v
		if in.RD, err = reg(args[2]); err != nil {
			return err
		}
	case isa.FmtSpecial:
		if op == isa.OpHALT {
			if len(args) != 0 {
				return fail("no operands")
			}
		} else {
			if len(args) != 1 {
				return fail("want code")
			}
			v, ok := parseImm(args[0])
			if !ok {
				return fail("bad code %q", args[0])
			}
			in.Imm = v
		}
	case isa.FmtCodeword:
		if len(args) != 4 {
			return fail("want p1, p2, p3, #tag")
		}
		ps := make([]uint8, 3)
		for k := 0; k < 3; k++ {
			v, ok := parseImm(args[k])
			if !ok || v < 0 || v > 31 {
				return fail("bad param %q", args[k])
			}
			ps[k] = uint8(v)
		}
		tagStr := strings.TrimPrefix(args[3], "#")
		v, ok := parseImm(tagStr)
		if !ok || v < 0 || v > isa.MaxTag {
			return fail("bad tag %q", args[3])
		}
		in = isa.Codeword(op, ps[0], ps[1], ps[2], uint16(v))
	default:
		return fail("unsupported format")
	}
	a.emit(lineNo, in, "", "")
	return nil
}

func parseMemOperand(s string) (int64, string, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, "", fmt.Errorf("bad memory operand %q", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	disp := int64(0)
	if dispStr != "" {
		var ok bool
		if disp, ok = parseImm(dispStr); !ok {
			return 0, "", fmt.Errorf("bad displacement %q", dispStr)
		}
	}
	return disp, strings.TrimSpace(s[open+1 : len(s)-1]), nil
}

// emitLoadConst emits the shortest lda/ldah sequence producing v in rd.
func (a *assembler) emitLoadConst(lineNo int, rd isa.Reg, v int64) error {
	if v >= isa.MinDisp16 && v <= isa.MaxDisp16 {
		a.emit(lineNo, isa.Inst{Op: isa.OpLDA, RD: rd, RS: isa.RegZero, RT: isa.NoReg, Imm: v}, "", "")
		return nil
	}
	lo := int64(int16(v))
	hi := (v - lo) >> 16
	if hi < isa.MinDisp16 || hi > isa.MaxDisp16 {
		return &Error{lineNo, fmt.Sprintf("li: constant %d out of 32-bit range", v)}
	}
	a.emit(lineNo, isa.Inst{Op: isa.OpLDAH, RD: rd, RS: isa.RegZero, RT: isa.NoReg, Imm: hi}, "", "")
	a.emit(lineNo, isa.Inst{Op: isa.OpLDA, RD: rd, RS: rd, RT: isa.NoReg, Imm: lo}, "", "")
	return nil
}

func (a *assembler) resolve(name string) (*program.Program, error) {
	p := &program.Program{
		Name:    name,
		Data:    a.data,
		Symbols: a.textSyms,
	}
	p.Text = make([]isa.Inst, len(a.items))
	var laPending bool
	var laHi int // index of pending ldah of an la pair
	for i, it := range a.items {
		in := it.inst
		if it.label != "" {
			t, ok := a.textSyms[it.label]
			if !ok {
				return nil, &Error{it.line, fmt.Sprintf("undefined label %q", it.label)}
			}
			in.Imm = int64(t - i - 1)
		}
		if it.needLa != "" {
			addr, ok := a.dataSyms[it.needLa]
			if !ok {
				if _, isText := a.textSyms[it.needLa]; isText {
					return nil, &Error{it.line, fmt.Sprintf("la %q: absolute code addresses are not supported (use bsr)", it.needLa)}
				}
				return nil, &Error{it.line, fmt.Sprintf("undefined data symbol %q", it.needLa)}
			}
			if in.Op == isa.OpLDAH {
				lo := int64(int16(addr))
				in.Imm = (int64(addr) - lo) >> 16
				laPending, laHi = true, i
			} else {
				if !laPending || laHi != i-1 {
					return nil, &Error{it.line, "internal: mismatched la pair"}
				}
				in.Imm = int64(int16(addr))
				laPending = false
			}
		}
		p.Text[i] = in
	}
	if a.entrySym != "" {
		e, ok := a.textSyms[a.entrySym]
		if !ok {
			return nil, &Error{0, fmt.Sprintf("entry symbol %q undefined", a.entrySym)}
		}
		p.Entry = e
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAssemble, err)
	}
	return p, nil
}
