package asm

// Robustness: the assembler and the production parser must reject arbitrary
// mutations of valid input with errors, never panics. This matters because
// both parse user-supplied text (the paper's external production interface).

import (
	"math/rand"
	"strings"
	"testing"
)

func mutate(r *rand.Rand, s string) string {
	b := []byte(s)
	if len(b) == 0 {
		return "x"
	}
	switch r.Intn(5) {
	case 0: // flip a byte
		b[r.Intn(len(b))] = byte(r.Intn(128))
	case 1: // delete a span
		i := r.Intn(len(b))
		j := i + r.Intn(len(b)-i)
		b = append(b[:i], b[j:]...)
	case 2: // duplicate a span
		i := r.Intn(len(b))
		j := i + r.Intn(len(b)-i)
		b = append(b[:j], append([]byte(string(b[i:j])), b[j:]...)...)
	case 3: // insert noise
		noise := []string{",", "(", ")", "%", "#", ":", "-", "99999999999", "\t", "$dr9"}
		n := noise[r.Intn(len(noise))]
		i := r.Intn(len(b))
		b = append(b[:i], append([]byte(n), b[i:]...)...)
	case 4: // swap two lines
		lines := strings.Split(string(b), "\n")
		if len(lines) > 2 {
			i, j := r.Intn(len(lines)), r.Intn(len(lines))
			lines[i], lines[j] = lines[j], lines[i]
		}
		return strings.Join(lines, "\n")
	}
	return string(b)
}

func TestAssemblerNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	seed := helloSrc
	for i := 0; i < 3000; i++ {
		src := seed
		for k := 0; k <= r.Intn(3); k++ {
			src = mutate(r, src)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("assembler panicked on mutated input: %v\nsource:\n%s", p, src)
				}
			}()
			p, err := Assemble("fuzz", src)
			if err == nil && p.Validate() != nil {
				t.Fatalf("assembler accepted invalid program:\n%s", src)
			}
		}()
	}
}
