package asm

import (
	"errors"
	"testing"
)

// FuzzAssemble asserts the assembler never panics on arbitrary source and that
// every rejection wraps ErrAssemble — hostile input yields a typed error, not
// a crash.
func FuzzAssemble(f *testing.F) {
	f.Add("")
	f.Add(helloSrc)
	f.Add(".entry main\nmain:\n    halt\n")
	f.Add(".entry nowhere\n")
	f.Add("main:\n    ldq r1, 0(r99)\n")
	f.Add(".data\nx: .quad 1\n.text\n    la r1, x\n")
	f.Add(".entry main\nmain:\n    addqi r1, 99999999, r1\n")
	f.Add("\x00\xff .entry \n\t:::")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			if !errors.Is(err, ErrAssemble) {
				t.Fatalf("error %v does not wrap ErrAssemble", err)
			}
			return
		}
		if p == nil {
			t.Fatal("nil program without error")
		}
	})
}
