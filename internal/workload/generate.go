package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/acf/mfi"
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/program"
)

// Register conventions of generated code. The rewriting baseline scavenges
// r20..r23, so generated code must never touch them (the paper charges this
// register pressure to software fault isolation; our generator simply obeys
// the reservation, as a compiler flag would).
//
//	r1  data base pointer          r2  outer iteration counter
//	r5  roving data index          r6  current data pointer
//	r15 inner-loop counter         r16 xorshift state
//	r17 accumulator                r18 data index mask
//	r3, r4, r7..r14, r19, r25, r27 scratch / idiom operands
var scratchRegs = []int{3, 4, 7, 8, 9, 10, 11, 12, 13, 14, 19, 25, 27}

type gen struct {
	p   Profile
	rng *rand.Rand
	b   strings.Builder

	label     int
	idioms    []idiom // per-module pool (refreshed every few functions)
	global    []idiom // program-wide compiler idioms
	funcCount int
}

// idiom is a reusable short code template. Most instances are emitted with
// per-site operand registers — the classic compiler situation where the
// same idiom recurs under register renaming, sharable only through DISE
// parameterization — while a minority reuse a fixed binding and are
// sharable literally (what a dedicated decompressor can exploit).
type idiom struct {
	lines []string // with %A, %B placeholders
	fixed [2]int   // the idiom's literal binding
}

func (g *gen) newLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s_%d", prefix, g.label)
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// buildIdioms creates the program's idiom pool. Offsets and constants are
// chosen once per idiom, so all instances share them.
func (g *gen) buildIdioms() {
	mk := func(lines ...string) idiom {
		a := scratchRegs[g.rng.Intn(len(scratchRegs))]
		b := scratchRegs[g.rng.Intn(len(scratchRegs))]
		for b == a {
			b = scratchRegs[g.rng.Intn(len(scratchRegs))]
		}
		return idiom{lines: lines, fixed: [2]int{a, b}}
	}
	off := func() int { return 8 * g.rng.Intn(32) }
	cst := func() int { return 1 + g.rng.Intn(7) }
	if g.global == nil {
		// Program-wide compiler idioms: the same shape everywhere, with
		// per-site registers and small constants — exactly what DISE's
		// parameterized entries share globally.
		g.global = []idiom{
			// load-modify-store: per-site offset and constant, sharable
			// only through parameterized entries (offset uses one shared
			// immediate slot for the ldq/stq pair)
			mk("ldq %A, %D(r6)",
				"addqi %A, %C, %A",
				"stq %A, %D(r6)"),
			mk("ldq %A, %D(r6)",
				"addq %B, %A, %B"),
			// pointer bump (the classic induction idiom)
			mk("addqi r5, %C, r5",
				"and r5, r18, %A",
				"andi %A, -8, %B",
				"addq r1, %B, r6"),
			// rng mix (per-site shift)
			mk("srli r16, %C, %A",
				"xor r16, %A, r16"),
			// scaled add (per-site scale)
			mk("mulqi %A, %C, %B",
				"addq %B, %A, %B"),
			// store-modify: read-modify-write with distinct operand
			mk("ldq %A, %D(r6)",
				"xor %A, %B, %A",
				"stq %A, %D(r6)"),
			// guarded increment
			mk("cmplti %A, %C, %B",
				"addq %A, %B, %A"),
			// shift-mask-combine
			mk("slli %A, %C, %B",
				"xor %B, %A, %A"),
			// offset copy
			mk("ldq %A, %D(r6)",
				"stq %A, %D2(r6)"),
			// difference accumulate
			mk("subq %B, %A, %A",
				"srai %A, %C, %A"),
		}
	}
	g.idioms = []idiom{
		// module-local idioms: offsets and constants baked per module
		mk(fmt.Sprintf("ldq %%A, %d(r6)", off()),
			fmt.Sprintf("addqi %%A, %d, %%A", cst()),
			fmt.Sprintf("stq %%A, %d(r6)", off())),
		mk(fmt.Sprintf("ldq %%A, %d(r6)", off()),
			"addq %B, %A, %B"),
		mk(fmt.Sprintf("slli %%A, %d, %%B", cst()),
			"xor %B, %A, %A",
			"addq r17, %A, r17"),
		mk(fmt.Sprintf("stq r17, %d(r6)", off()),
			fmt.Sprintf("stq %%A, %d(r6)", off())),
		mk(fmt.Sprintf("cmplti %%B, %d, %%A", 64*cst()),
			"addq %A, r16, r16"),
		mk(fmt.Sprintf("ldq %%A, %d(r6)", off()),
			fmt.Sprintf("ldq %%B, %d(r6)", off()),
			"xor %A, %B, %A",
			"addq %B, %A, %B"),
	}
}

// emitIdiom writes one idiom instance. One instance in IdiomSets reuses the
// idiom's fixed binding (literally sharable); the rest draw per-site
// registers (sharable only via parameterization).
func (g *gen) emitIdiom() int {
	pool := g.idioms
	if g.rng.Intn(100) < 70 {
		pool = g.global
	}
	id := pool[g.rng.Intn(len(pool))]
	bind := id.fixed
	if g.p.IdiomSets <= 0 || g.rng.Intn(g.p.IdiomSets) != 0 {
		a := scratchRegs[g.rng.Intn(len(scratchRegs))]
		b := scratchRegs[g.rng.Intn(len(scratchRegs))]
		for b == a {
			b = scratchRegs[g.rng.Intn(len(scratchRegs))]
		}
		bind = [2]int{a, b}
	}
	c := fmt.Sprintf("%d", 1+g.rng.Intn(15))
	d := fmt.Sprintf("%d", g.rng.Intn(16))
	d2 := fmt.Sprintf("%d", g.rng.Intn(16))
	for _, l := range id.lines {
		l = strings.ReplaceAll(l, "%A", fmt.Sprintf("r%d", bind[0]))
		l = strings.ReplaceAll(l, "%B", fmt.Sprintf("r%d", bind[1]))
		l = strings.ReplaceAll(l, "%C", c)
		l = strings.ReplaceAll(l, "%D2", d2)
		l = strings.ReplaceAll(l, "%D", d)
		g.emit("    %s", l)
	}
	return len(id.lines)
}

// emitRandomInst writes one non-idiomatic instruction obeying the profile's
// dynamic mix.
func (g *gen) emitRandomInst() {
	r := func() int { return scratchRegs[g.rng.Intn(len(scratchRegs))] }
	x := g.rng.Float64()
	switch {
	case x < g.p.MemRate*(1-g.p.StoreFrac):
		g.emit("    ldq r%d, %d(r6)", r(), 8*g.rng.Intn(32))
	case x < g.p.MemRate:
		g.emit("    stq r%d, %d(r6)", r(), 8*g.rng.Intn(32))
	default:
		switch g.rng.Intn(6) {
		case 0:
			g.emit("    addqi r%d, %d, r%d", r(), g.rng.Intn(30000), r())
		case 1:
			g.emit("    addq r%d, r%d, r%d", r(), r(), r())
		case 2:
			g.emit("    xor r%d, r%d, r%d", r(), r(), r())
		case 3:
			g.emit("    srli r%d, %d, r%d", r(), 1+g.rng.Intn(48), r())
		case 4:
			g.emit("    cmplti r%d, %d, r%d", r(), g.rng.Intn(30000), r())
		default:
			g.emit("    slli r%d, %d, r%d", r(), 1+g.rng.Intn(40), r())
		}
	}
}

// emitBlock writes one basic block body and its optional trailing forward
// branch to next.
func (g *gen) emitBlock(next string) int {
	n := g.p.InstsPerBlock/2 + g.rng.Intn(g.p.InstsPerBlock)
	inner := g.rng.Float64() < g.p.InnerLoopRate
	var innerLabel string
	if inner {
		trips := 2 + g.rng.Intn(4)
		g.emit("    li r15, %d", trips)
		innerLabel = g.newLabel("inner")
		g.emit("%s:", innerLabel)
	}
	emitted := 0
	for emitted < n {
		if g.rng.Float64() < g.p.IdiomRate {
			emitted += g.emitIdiom()
		} else {
			g.emitRandomInst()
			emitted++
		}
	}
	if inner {
		g.emit("    subqi r15, 1, r15")
		g.emit("    bgt r15, %s", innerLabel)
	}
	// Trailing conditional branch to next block (sometimes skipping it is
	// the point: forward branches with profile-selected predictability).
	if g.rng.Float64() < g.p.BranchRate*4 {
		h := scratchRegs[g.rng.Intn(len(scratchRegs))]
		if g.rng.Float64() < g.p.Predictability {
			// Biased: depends on the slowly-varying accumulator; the
			// threshold varies per site.
			g.emit("    cmplti r17, %d, r%d", g.rng.Intn(14), h)
			g.emit("    bne r%d, %s", h, next)
		} else {
			// Data-dependent on the xorshift state: near-chance.
			g.emit("    srli r16, 9, r%d", h)
			g.emit("    xor r16, r%d, r16", h)
			g.emit("    andi r16, 1, r%d", h)
			g.emit("    bne r%d, %s", h, next)
		}
	}
	return n
}

// emitFunc writes one function; returns its approximate instruction count.
// The idiom pool is refreshed every few functions: code vocabulary grows
// with program size, as it does in real programs (different modules use
// different offsets and constants), keeping large programs from becoming
// proportionally more literally-redundant.
func (g *gen) emitFunc(name string) int {
	if g.funcCount%6 == 0 {
		g.buildIdioms()
	}
	g.funcCount++
	g.emit("%s:", name)
	g.emit("    subqi sp, 16, sp")
	g.emit("    stq ra, 0(sp)")
	count := 2
	blocks := g.p.BlocksPerFunc/2 + 1 + g.rng.Intn(g.p.BlocksPerFunc)
	for b := 0; b < blocks; b++ {
		next := g.newLabel(name + "_b")
		count += g.emitBlock(next)
		g.emit("%s:", next)
	}
	g.emit("    ldq ra, 0(sp)")
	g.emit("    addqi sp, 16, sp")
	g.emit("    ret")
	return count + 3
}

// Source generates the benchmark's assembly text.
func (p Profile) Source() string {
	g := &gen{p: p, rng: rand.New(rand.NewSource(p.Seed))}

	dataBytes := p.DataKB*1024 + 512
	g.emit(".entry main")
	g.emit(".data")
	g.emit("data: .space %d", dataBytes)
	g.emit(".text")

	// Function bodies first (sizes needed for the iteration estimate).
	var funcs strings.Builder
	prev := g.b
	g.b = funcs
	hotInsts := 0
	for i := 0; i < p.HotFuncs; i++ {
		hotInsts += g.emitFunc(fmt.Sprintf("hot%d", i))
	}
	coldInsts := 0
	for i := 0; i < p.ColdFuncs; i++ {
		coldInsts += g.emitFunc(fmt.Sprintf("cold%d", i))
	}
	funcs = g.b
	g.b = prev

	// The dynamic cost of one outer iteration: every hot function (inner
	// loops roughly multiply block work), plus 1/16 of the cold section.
	loopFactor := 1 + p.InnerLoopRate*2.0
	perIter := float64(hotInsts)*loopFactor + float64(coldInsts)*loopFactor/16 + float64(p.HotFuncs)
	iters := int(float64(p.TargetDynK*1000) / perIter)
	if iters < 8 {
		iters = 8
	}

	g.emit("main:")
	g.emit("    la r1, data")
	g.emit("    li r18, %d", p.DataKB*1024-1)
	g.emit("    li r16, %d", 12345+p.Seed)
	g.emit("    li r5, 0")
	g.emit("    mov r1, r6")
	g.emit("    li r2, %d", iters)
	g.emit("outer:")
	for i := 0; i < p.HotFuncs; i++ {
		g.emit("    bsr ra, hot%d", i)
	}
	if p.ColdFuncs > 0 {
		g.emit("    andi r2, 15, r3")
		g.emit("    bne r3, skipcold")
		for i := 0; i < p.ColdFuncs; i++ {
			g.emit("    bsr ra, cold%d", i)
		}
		g.emit("skipcold:")
	}
	g.emit("    subqi r2, 1, r2")
	g.emit("    bgt r2, outer")
	g.emit("    mov r17, r1")
	g.emit("    sys 2")
	g.emit("    halt")

	g.b.WriteString(funcs.String())
	return g.b.String()
}

var (
	genMu    sync.Mutex
	genCache = map[string]*program.Program{}
)

// Generate builds (and caches) the benchmark program. Generation is
// deterministic: the same profile always yields the same program.
func (p Profile) Generate() (*program.Program, error) {
	genMu.Lock()
	defer genMu.Unlock()
	key := fmt.Sprintf("%s/%d", p.Name, p.TargetDynK)
	if q, ok := genCache[key]; ok {
		return q, nil
	}
	prog, err := asm.Assemble(p.Name, p.Source())
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.Name, err)
	}
	if err := checkScavengedFree(prog); err != nil {
		return nil, err
	}
	genCache[key] = prog
	return prog, nil
}

// MustGenerate is Generate for known profiles; it panics on error. The
// panic marks a programmer error (a built-in profile that fails to
// assemble); callers generating from untrusted profiles must use Generate.
func (p Profile) MustGenerate() *program.Program {
	prog, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return prog
}

// checkScavengedFree verifies generated code leaves the rewriter's
// scavenged registers untouched.
func checkScavengedFree(p *program.Program) error {
	bad := map[isa.Reg]bool{}
	for _, r := range mfi.ScavengedRegs() {
		bad[r] = true
	}
	for i, in := range p.Text {
		for _, r := range []isa.Reg{in.RS, in.RT, in.RD} {
			if r != isa.NoReg && bad[r] {
				return fmt.Errorf("workload %s: unit %d (%v) uses scavenged register %v",
					p.Name, i, in, r)
			}
		}
	}
	return nil
}
