// Package workload generates the benchmark programs for the experiments: a
// deterministic, seeded program generator with one profile per SPEC2000
// integer benchmark. The real benchmarks cannot be compiled for a scratch
// ISA, so each profile is calibrated to the properties the paper's results
// actually depend on (see DESIGN.md "Substitutions"): static code size and
// instruction working set (I-cache behaviour), dynamic load/store/branch
// mix (MFI expansion frequency ~30%), branch predictability, data working
// set, and code redundancy from reused idiom templates (compressibility and
// dictionary working-set size).
package workload

// Profile describes one synthetic benchmark.
type Profile struct {
	Name string
	Seed int64

	// HotFuncs are called every outer iteration: their combined size is the
	// instruction working set. ColdFuncs are called one-per-iteration in
	// rotation and pad the static image.
	HotFuncs  int
	ColdFuncs int
	// BlocksPerFunc and InstsPerBlock shape function bodies (averages).
	BlocksPerFunc int
	InstsPerBlock int

	// IdiomRate is the fraction of code drawn from the reused idiom pool
	// (drives compressibility); IdiomSets is how many register bindings the
	// pool cycles through (more sets = more parameter-only variation).
	IdiomRate float64
	IdiomSets int

	// MemRate is the approximate fraction of instructions that are loads or
	// stores; StoreFrac the store share of those.
	MemRate   float64
	StoreFrac float64

	// BranchRate is the approximate fraction of conditional branches, and
	// Predictability the fraction of them with stable bias.
	BranchRate     float64
	Predictability float64

	// InnerLoopRate adds small counted inner loops to blocks.
	InnerLoopRate float64

	// DataKB is the data working set walked by memory operations.
	DataKB int

	// TargetDynK is the approximate dynamic instruction count, in
	// thousands, used to pick the outer iteration count.
	TargetDynK int
}

// Profiles returns the ten SPEC2000 integer benchmark stand-ins, in the
// paper's presentation order. Sizes: a function averages roughly
// BlocksPerFunc*InstsPerBlock instructions (4 bytes each) plus
// prologue/epilogue; hot size approximates the paper's per-benchmark
// instruction working sets (most < 32KB; crafty, gzip and vpr above it —
// §4.2), and cold functions pad static images into the tens of KB.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "bzip2", Seed: 101,
			HotFuncs: 12, ColdFuncs: 20, BlocksPerFunc: 6, InstsPerBlock: 9,
			IdiomRate: 0.4, IdiomSets: 3,
			MemRate: 0.32, StoreFrac: 0.4, BranchRate: 0.12, Predictability: 0.93,
			InnerLoopRate: 0.3, DataKB: 256, TargetDynK: 400,
		},
		{
			Name: "crafty", Seed: 102,
			HotFuncs: 115, ColdFuncs: 60, BlocksPerFunc: 7, InstsPerBlock: 9,
			IdiomRate: 0.4, IdiomSets: 5,
			MemRate: 0.3, StoreFrac: 0.3, BranchRate: 0.14, Predictability: 0.9,
			InnerLoopRate: 0.15, DataKB: 512, TargetDynK: 500,
		},
		{
			Name: "gap", Seed: 103,
			HotFuncs: 40, ColdFuncs: 50, BlocksPerFunc: 6, InstsPerBlock: 8,
			IdiomRate: 0.45, IdiomSets: 4,
			MemRate: 0.34, StoreFrac: 0.35, BranchRate: 0.13, Predictability: 0.91,
			InnerLoopRate: 0.2, DataKB: 384, TargetDynK: 400,
		},
		{
			Name: "gcc", Seed: 104,
			HotFuncs: 60, ColdFuncs: 160, BlocksPerFunc: 7, InstsPerBlock: 8,
			IdiomRate: 0.42, IdiomSets: 6,
			MemRate: 0.33, StoreFrac: 0.4, BranchRate: 0.16, Predictability: 0.86,
			InnerLoopRate: 0.1, DataKB: 512, TargetDynK: 450,
		},
		{
			Name: "gzip", Seed: 105,
			HotFuncs: 118, ColdFuncs: 30, BlocksPerFunc: 7, InstsPerBlock: 9,
			IdiomRate: 0.45, IdiomSets: 3,
			MemRate: 0.3, StoreFrac: 0.35, BranchRate: 0.12, Predictability: 0.92,
			InnerLoopRate: 0.3, DataKB: 256, TargetDynK: 500,
		},
		{
			Name: "mcf", Seed: 106,
			HotFuncs: 8, ColdFuncs: 10, BlocksPerFunc: 5, InstsPerBlock: 8,
			IdiomRate: 0.42, IdiomSets: 2,
			MemRate: 0.4, StoreFrac: 0.25, BranchRate: 0.13, Predictability: 0.9,
			InnerLoopRate: 0.25, DataKB: 2048, TargetDynK: 350,
		},
		{
			Name: "parser", Seed: 107,
			HotFuncs: 28, ColdFuncs: 40, BlocksPerFunc: 6, InstsPerBlock: 8,
			IdiomRate: 0.45, IdiomSets: 3,
			MemRate: 0.33, StoreFrac: 0.35, BranchRate: 0.15, Predictability: 0.9,
			InnerLoopRate: 0.2, DataKB: 256, TargetDynK: 400,
		},
		{
			Name: "twolf", Seed: 108,
			HotFuncs: 35, ColdFuncs: 40, BlocksPerFunc: 6, InstsPerBlock: 9,
			IdiomRate: 0.42, IdiomSets: 4,
			MemRate: 0.35, StoreFrac: 0.3, BranchRate: 0.13, Predictability: 0.89,
			InnerLoopRate: 0.2, DataKB: 384, TargetDynK: 400,
		},
		{
			Name: "vortex", Seed: 109,
			HotFuncs: 50, ColdFuncs: 70, BlocksPerFunc: 6, InstsPerBlock: 8,
			IdiomRate: 0.4, IdiomSets: 4,
			MemRate: 0.36, StoreFrac: 0.45, BranchRate: 0.12, Predictability: 0.93,
			InnerLoopRate: 0.15, DataKB: 512, TargetDynK: 400,
		},
		{
			Name: "vpr", Seed: 110,
			HotFuncs: 120, ColdFuncs: 40, BlocksPerFunc: 7, InstsPerBlock: 8,
			IdiomRate: 0.42, IdiomSets: 4,
			MemRate: 0.32, StoreFrac: 0.35, BranchRate: 0.14, Predictability: 0.88,
			InnerLoopRate: 0.2, DataKB: 384, TargetDynK: 450,
		},
	}
}

// ProfileByName looks a profile up by benchmark name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the benchmark names in order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
