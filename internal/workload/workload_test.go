package workload

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/isa"
)

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range Profiles() {
		prog, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestDeterministic(t *testing.T) {
	p, _ := ProfileByName("bzip2")
	a := p.Source()
	b := p.Source()
	if a != b {
		t.Error("generation is not deterministic")
	}
}

func TestAllRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			m := emu.New(p.MustGenerate())
			m.SetBudget(int64(p.TargetDynK) * 1000 * 20)
			if err := m.Run(); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			dyn := m.Stats.Total
			lo := int64(p.TargetDynK) * 1000 / 4
			hi := int64(p.TargetDynK) * 1000 * 6
			if dyn < lo || dyn > hi {
				t.Errorf("%s: dynamic insts = %d, want within [%d, %d]", p.Name, dyn, lo, hi)
			}
			// The paper's MFI premise: ~30% of dynamic instructions are
			// loads, stores or jumps. Keep every benchmark in a band.
			memJump := float64(m.Stats.Loads+m.Stats.Stores) / float64(dyn)
			if memJump < 0.12 || memJump > 0.55 {
				t.Errorf("%s: load+store fraction = %.2f", p.Name, memJump)
			}
		})
	}
}

func TestCodeSizeDiversity(t *testing.T) {
	sizes := map[string]int{}
	for _, p := range Profiles() {
		sizes[p.Name] = p.MustGenerate().TextBytes()
	}
	// mcf is the paper's small-code benchmark; gcc among the largest.
	if !(sizes["mcf"] < sizes["parser"] && sizes["parser"] < sizes["gcc"]) {
		t.Errorf("static size ordering wrong: %v", sizes)
	}
	// Working-set claims need hot-code spread: crafty/gzip/vpr above 32KB.
	for _, big := range []string{"crafty", "gzip", "vpr"} {
		p, _ := ProfileByName(big)
		hot := hotBytes(p)
		if hot < 30<<10 {
			t.Errorf("%s hot code = %d bytes, want ~>32KB", big, hot)
		}
	}
	for _, small := range []string{"mcf", "bzip2", "parser"} {
		p, _ := ProfileByName(small)
		if hot := hotBytes(p); hot > 28<<10 {
			t.Errorf("%s hot code = %d bytes, want < 28KB", small, hot)
		}
	}
}

// hotBytes measures the hot-function footprint of a profile's program.
func hotBytes(p Profile) int {
	prog := p.MustGenerate()
	cold, ok := prog.Symbols["cold0"]
	if !ok {
		return prog.TextBytes()
	}
	hot0 := prog.Symbols["hot0"]
	return int(prog.Addr(cold) - prog.Addr(hot0))
}

func TestScavengedRegistersUnused(t *testing.T) {
	for _, p := range Profiles() {
		prog := p.MustGenerate()
		if err := checkScavengedFree(prog); err != nil {
			t.Error(err)
		}
	}
}

func TestBranchPredictabilityDiversity(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	rate := func(name string) float64 {
		p, _ := ProfileByName(name)
		r := cpu.Run(emu.New(p.MustGenerate()), cpu.DefaultConfig())
		if r.Err != nil {
			t.Fatalf("%s: %v", name, r.Err)
		}
		return float64(r.Pred.CondMiss) / float64(r.Pred.CondBranches+1)
	}
	gcc := rate("gcc")
	bzip2 := rate("bzip2")
	if !(gcc > bzip2) {
		t.Errorf("gcc cond-miss rate (%.3f) should exceed bzip2's (%.3f)", gcc, bzip2)
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("gcc"); !ok {
		t.Error("gcc missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown name should fail")
	}
	if len(Names()) != 10 {
		t.Errorf("names = %v", Names())
	}
}

func TestNoCodewordsInNaturalPrograms(t *testing.T) {
	for _, p := range Profiles() {
		prog := p.MustGenerate()
		for i, in := range prog.Text {
			if in.Op.Class() == isa.ClassCodeword {
				t.Fatalf("%s: unit %d is a codeword in natural code", p.Name, i)
			}
		}
	}
}
