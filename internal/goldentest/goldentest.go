// Package goldentest pins end-to-end timing results for the example
// programs. Each example ships a main_test.go that rebuilds its machines
// (program + production set) through a factory and hands them to Check,
// which guards two properties at once:
//
//   - the headline cpu.Result numbers under cpu.DefaultConfig match the
//     committed golden values, so a timing-model refactor that shifts
//     cycle counts fails loudly instead of silently drifting; and
//
//   - a trace captured from an identically prepared machine replays to a
//     result deep-equal to the live run, so the capture-once/time-many
//     path is exercised on every example program and production set, not
//     just the synthetic streams in internal/trace's own tests.
package goldentest

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/trace"
)

// Want holds the pinned headline numbers of one golden run.
type Want struct {
	Cycles, Insts, Mispredicts, DiseStalls int64
}

// Check runs a fresh machine from mk live under cpu.DefaultConfig and
// compares the pinned numbers, then captures a second identically prepared
// machine and requires that replay under (miss, compose) — the penalties of
// the engine configuration mk installs — reproduces the live result field
// for field. mk must return an equivalently prepared machine on every call.
func Check(t *testing.T, name string, mk func() *emu.Machine, miss, compose int, want Want) {
	t.Helper()
	live := cpu.Run(mk(), cpu.DefaultConfig())
	if live.Err != nil {
		t.Fatalf("%s: live run failed: %v", name, live.Err)
	}
	got := Want{live.Cycles, live.Insts, live.Mispredicts, live.DiseStalls}
	if got != want {
		t.Errorf("%s: golden result drifted:\n got %+v\nwant %+v", name, got, want)
	}
	tr := trace.Capture(mk())
	replay := cpu.RunSource(tr.Replay(miss, compose), cpu.DefaultConfig())
	if !reflect.DeepEqual(live, replay) {
		t.Errorf("%s: live and replay results differ\nlive:   %+v\nreplay: %+v", name, live, replay)
	}
}
