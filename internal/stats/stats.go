// Package stats provides the small numeric and formatting helpers the
// experiment harnesses use to report paper-style series: normalized values,
// geometric means, and aligned text tables (one row per benchmark, one
// column per configuration — the shape of the paper's bar graphs).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is a benchmarks x configurations result grid.
type Table struct {
	Title  string
	Note   string
	Rows   []string // row labels (benchmarks)
	Cols   []string // column labels (configurations)
	Cells  [][]float64
	Format string // cell format, default "%7.3f"
}

// NewTable allocates a rows x cols table.
func NewTable(title string, rows, cols []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{Title: title, Rows: rows, Cols: cols, Cells: cells}
}

// Set stores a cell by labels; it panics on unknown labels (harness bug).
func (t *Table) Set(row, col string, v float64) {
	ri, ci := t.index(row, col)
	t.Cells[ri][ci] = v
}

// Get fetches a cell by labels.
func (t *Table) Get(row, col string) float64 {
	ri, ci := t.index(row, col)
	return t.Cells[ri][ci]
}

// index panics on unknown labels: tables are built by the experiment
// harnesses from fixed row/column sets, so a miss is a programmer error
// (a typo in a harness), never a data-dependent condition.
func (t *Table) index(row, col string) (int, int) {
	ri, ci := -1, -1
	for i, r := range t.Rows {
		if r == row {
			ri = i
		}
	}
	for j, c := range t.Cols {
		if c == col {
			ci = j
		}
	}
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("stats: no cell (%q, %q) in table %q", row, col, t.Title))
	}
	return ri, ci
}

// Col returns one column as a slice in row order.
func (t *Table) Col(col string) []float64 {
	_, ci := t.index(t.Rows[0], col)
	out := make([]float64, len(t.Rows))
	for i := range t.Rows {
		out[i] = t.Cells[i][ci]
	}
	return out
}

// AddMeanRow appends a geometric-mean summary row.
func (t *Table) AddMeanRow() {
	means := make([]float64, len(t.Cols))
	for j := range t.Cols {
		vals := make([]float64, len(t.Rows))
		for i := range t.Rows {
			vals[i] = t.Cells[i][j]
		}
		means[j] = GeoMean(vals)
	}
	t.Rows = append(t.Rows, "gmean")
	t.Cells = append(t.Cells, means)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	format := t.Format
	if format == "" {
		format = "%7.3f"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	width := 8
	for _, r := range t.Rows {
		if len(r) > width {
			width = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, " %10s", c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width+2, r)
		for j := range t.Cols {
			cell := fmt.Sprintf(format, t.Cells[i][j])
			fmt.Fprintf(&b, " %10s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMean returns the geometric mean of vs (ignoring non-positive values).
func GeoMean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Ratio returns a/b, guarding against a zero denominator.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
