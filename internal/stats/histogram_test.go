package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistIndexBounds(t *testing.T) {
	// Every value must land in a slot whose reconstructed range contains it.
	cases := []int64{-5, 0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20,
		(1 << 40) - 1, 1 << 40, 1 << 50}
	for _, v := range cases {
		i := histIndex(v)
		if i < 0 || i >= histSlots {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		up := histUpper(i)
		want := v
		if want < 0 {
			want = 0
		}
		if want < 1<<40 && up < want {
			t.Errorf("histIndex(%d) -> slot %d with upper %d < value", v, i, up)
		}
		if i > 0 {
			if lo := histUpper(i - 1); want <= lo && want < 1<<40 {
				t.Errorf("value %d <= previous slot's upper %d (slot %d)", v, lo, i)
			}
		}
	}
}

func TestHistogramQuantileError(t *testing.T) {
	// Quantile estimates must overestimate by at most 1/16 on a pile of
	// random values.
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	var vals []int64
	for range 10000 {
		v := int64(rng.ExpFloat64() * 50000) // latency-shaped: long tail
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count %d, want %d", s.Count, len(vals))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		idx := int(math.Ceil(q*float64(len(vals)))) - 1
		truth := vals[idx]
		got := s.Quantile(q)
		if got < truth {
			t.Errorf("q%.3f = %d underestimates true %d", q, got, truth)
		}
		if truth >= histSub && float64(got) > float64(truth)*(1+1.0/histSub)+1 {
			t.Errorf("q%.3f = %d overestimates true %d beyond the 1/16 bound", q, got, truth)
		}
	}
}

func TestHistogramMeanExact(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got, want := s.Mean(), 251.5; got != want {
		t.Errorf("mean %v, want %v", got, want)
	}
	if got := (HistSnapshot{}).Mean(); got != 0 {
		t.Errorf("empty mean %v, want 0", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile %v, want 0", got)
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	// Values below 16 get exact buckets, so small-count quantiles are exact.
	var h Histogram
	for _, v := range []int64{3, 3, 7, 9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Errorf("p100 = %d, want 9", got)
	}
}
