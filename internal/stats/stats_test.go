package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableSetGet(t *testing.T) {
	tb := NewTable("t", []string{"a", "b"}, []string{"x", "y"})
	tb.Set("a", "y", 1.5)
	tb.Set("b", "x", 2.5)
	if tb.Get("a", "y") != 1.5 || tb.Get("b", "x") != 2.5 {
		t.Error("set/get mismatch")
	}
	if tb.Get("a", "x") != 0 {
		t.Error("unset cell should be zero")
	}
}

func TestTableUnknownLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown label should panic")
		}
	}()
	tb := NewTable("t", []string{"a"}, []string{"x"})
	tb.Set("nope", "x", 1)
}

func TestCol(t *testing.T) {
	tb := NewTable("t", []string{"a", "b"}, []string{"x"})
	tb.Set("a", "x", 1)
	tb.Set("b", "x", 3)
	col := tb.Col("x")
	if len(col) != 2 || col[0] != 1 || col[1] != 3 {
		t.Errorf("Col = %v", col)
	}
}

func TestMeanRow(t *testing.T) {
	tb := NewTable("t", []string{"a", "b"}, []string{"x"})
	tb.Set("a", "x", 2)
	tb.Set("b", "x", 8)
	tb.AddMeanRow()
	got := tb.Get("gmean", "x")
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("gmean = %v, want 4", got)
	}
}

func TestString(t *testing.T) {
	tb := NewTable("title", []string{"bench"}, []string{"cfg"})
	tb.Note = "a note"
	tb.Set("bench", "cfg", 1.234)
	s := tb.String()
	for _, want := range []string{"title", "a note", "bench", "cfg", "1.234"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestGeoMeanProperties(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty gmean should be 0")
	}
	if GeoMean([]float64{5}) != 5 {
		t.Error("singleton gmean")
	}
	// gmean of k copies of v is v.
	f := func(raw uint8) bool {
		v := 0.5 + float64(raw)/64
		g := GeoMean([]float64{v, v, v})
		return math.Abs(g-v) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// gmean is scale-equivariant: gmean(c*xs) = c*gmean(xs).
	g1 := GeoMean([]float64{1, 2, 4})
	g2 := GeoMean([]float64{3, 6, 12})
	if math.Abs(g2-3*g1) > 1e-9 {
		t.Errorf("scale equivariance: %v vs %v", g2, 3*g1)
	}
	// non-positive values are ignored.
	if got := GeoMean([]float64{2, 0, -5, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("gmean with junk = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio")
	}
	if Ratio(6, 0) != 0 {
		t.Error("zero denominator should yield 0")
	}
}
