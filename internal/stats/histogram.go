package stats

import (
	"math"
	"math/bits"
	"sync"
)

// The histogram is HDR-style log-linear: each power-of-two range [2^e, 2^(e+1))
// is split into histSub equal-width sub-buckets, so the relative error of any
// reconstructed quantile is bounded by 1/histSub (6.25%) while the whole range
// — one microsecond to ~12 days when observations are microseconds — fits in
// a few hundred counters. Values below histSub get exact (width-1) buckets.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per power of two
	histMaxExp  = 40               // top covered exponent: values to 2^40
	histSlots   = histSub + (histMaxExp-histSubBits)*histSub
)

// Histogram is a concurrency-safe log-linear latency histogram. The serving
// layer and the load harness record per-stage latencies in it (in
// microseconds); any other non-negative integer unit works the same way.
// The zero value is ready to use.
type Histogram struct {
	mu     sync.Mutex
	counts [histSlots]int64
	sum    int64
	n      int64
}

// histIndex maps a value to its bucket slot.
func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= histSubBits
	if e >= histMaxExp {
		return histSlots - 1
	}
	sub := int((v >> (e - histSubBits)) & (histSub - 1))
	return histSub + (e-histSubBits)*histSub + sub
}

// histUpper returns the largest value that lands in slot i (the bucket's
// inclusive upper bound).
func histUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	k := i - histSub
	e := histSubBits + k/histSub
	sub := int64(k % histSub)
	return (int64(histSub)+sub+1)<<(e-histSubBits) - 1
}

// Observe records one value. Negative values land in the zero bucket.
func (h *Histogram) Observe(v int64) {
	i := histIndex(v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistBucket is one non-empty histogram bucket: Count observations had
// values <= Le (and greater than the previous bucket's bound).
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram, with empty buckets
// elided — the shape the /stats endpoint serves and the load harness
// reports.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot returns a consistent copy of the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.n, Sum: h.sum}
	for i, c := range h.counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: histUpper(i), Count: c})
		}
	}
	return s
}

// Mean returns the mean observed value, 0 when empty. Unlike quantiles it is
// exact: the histogram keeps the true sum.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of the
// recorded values: the inclusive upper bound of the bucket holding the
// ceil(q*n)-th smallest observation. The log-linear bucket layout bounds the
// overestimate at 1/16 (6.25%) of the true value. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}
