package stats

import "sync"

// histBuckets bounds the histogram range: bucket i counts observations with
// value <= 2^i, so 40 buckets cover one microsecond to ~12 days of latency
// when observations are recorded in microseconds.
const histBuckets = 40

// Histogram is a concurrency-safe power-of-two-bucket histogram. The serving
// layer records per-stage latencies in it (in microseconds); any other
// positive integer unit works the same way. The zero value is ready to use.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	sum    int64
	n      int64
}

// Observe records one value. Non-positive values land in the first bucket.
func (h *Histogram) Observe(v int64) {
	i := 0
	for b := int64(1); i < histBuckets-1 && v > b; b <<= 1 {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistBucket is one non-empty histogram bucket: Count observations had
// values <= Le (and greater than the previous bucket's bound).
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram, with empty buckets
// elided — the shape the /stats endpoint serves.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot returns a consistent copy of the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.n, Sum: h.sum}
	for i, c := range h.counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: int64(1) << i, Count: c})
		}
	}
	return s
}
