package emu

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
)

// factorial(10) via a loop, result printed with sys 2.
const factSrc = `
.entry main
.text
main:
    li r1, 1      ; acc
    li r2, 10     ; n
loop:
    mulq r1, r2, r1
    subqi r2, 1, r2
    bgt r2, loop
    sys 2         ; print r1
    halt
`

func TestRunFactorial(t *testing.T) {
	m := New(asm.MustAssemble("fact", factSrc))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "3628800" {
		t.Errorf("output = %q, want 3628800", got)
	}
	if m.Stats.Branches != 10 || m.Stats.Taken != 9 {
		t.Errorf("branches = %d taken = %d", m.Stats.Branches, m.Stats.Taken)
	}
}

const memSrc = `
.entry main
.data
arr: .quad 3 1 4 1 5 9 2 6
sum: .quad 0
.text
main:
    la r1, arr
    li r2, 8      ; count
    li r3, 0      ; sum
loop:
    ldq r4, 0(r1)
    addq r3, r4, r3
    addqi r1, 8, r1
    subqi r2, 1, r2
    bgt r2, loop
    la r5, sum
    stq r3, 0(r5)
    mov r3, r1
    sys 2
    halt
`

func TestLoadsAndStores(t *testing.T) {
	p := asm.MustAssemble("mem", memSrc)
	m := New(p)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "31" {
		t.Errorf("sum output = %q, want 31", got)
	}
	if m.Stats.Loads != 8 || m.Stats.Stores != 1 {
		t.Errorf("loads = %d stores = %d", m.Stats.Loads, m.Stats.Stores)
	}
	if got := m.Mem().Read64(program.DataBase + 64); got != 31 {
		t.Errorf("stored sum = %d", got)
	}
}

const callSrc = `
.entry main
.text
main:
    li r1, 5
    bsr ra, double
    bsr ra, double
    sys 2
    halt
double:
    addq r1, r1, r1
    ret
`

func TestCallReturn(t *testing.T) {
	m := New(asm.MustAssemble("call", callSrc))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "20" {
		t.Errorf("output = %q, want 20", got)
	}
}

func TestStackOps(t *testing.T) {
	m := New(asm.MustAssemble("stack", `
.entry main
main:
    subqi sp, 16, sp
    li r1, 42
    stq r1, 0(sp)
    li r1, 0
    ldq r1, 0(sp)
    addqi sp, 16, sp
    sys 2
    halt
`))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "42" {
		t.Errorf("output = %q", got)
	}
}

func TestBudget(t *testing.T) {
	m := New(asm.MustAssemble("spin", `
.entry main
main:
    br zero, main
`))
	m.SetBudget(100)
	err := m.Run()
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestUnexpandedCodewordFaults(t *testing.T) {
	m := New(asm.MustAssemble("cw", `
.entry main
main:
    res0 0, 0, 0, #5
    halt
`))
	if err := m.Run(); err == nil {
		t.Error("raw codeword without expander should fault")
	}
}

// mfiController installs Figure-1 MFI (stores only) and returns it.
func mfiController(t *testing.T) *core.Controller {
	t.Helper()
	cfg := core.DefaultEngineConfig()
	cfg.RTPerfect = true
	c := core.NewController(cfg)
	_, err := c.InstallFile(`
prod mfi_store {
    match class == store
    replace {
        srli %rs, 26, $dr1
        xor  $dr1, $dr2, $dr1
        dbeq $dr1, @ok
        sys  3
    @ok:
        %insn
    }
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMFIAllowsLegalStores(t *testing.T) {
	p := asm.MustAssemble("legal", memSrc)
	m := New(p)
	c := mfiController(t)
	m.SetExpander(c.Engine())
	// $dr2 holds the legal data segment identifier. The program also writes
	// the stack... this variant only stores to data, so data segment is fine.
	m.SetReg(isa.RegDR0+2, program.SegData)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "31" {
		t.Errorf("output = %q", got)
	}
	// Each store expanded: 4 extra replacement instructions... the DISE
	// branch skips sys 3, so 3 extra execute per store.
	if m.Stats.ReplInsts != 3 {
		t.Errorf("ReplInsts = %d, want 3", m.Stats.ReplInsts)
	}
}

func TestMFICatchesWildStore(t *testing.T) {
	p := asm.MustAssemble("wild", `
.entry main
main:
    li r1, 99
    li r2, 4096   ; segment 0: illegal
    stq r1, 0(r2)
    halt
`)
	m := New(p)
	c := mfiController(t)
	m.SetExpander(c.Engine())
	m.SetReg(isa.RegDR0+2, program.SegData)
	err := m.Run()
	if !errors.Is(err, ErrACFViolation) {
		t.Errorf("err = %v, want ErrACFViolation", err)
	}
}

func TestMFIDedicatedRegsInvisible(t *testing.T) {
	// The application cannot see or clobber $dr2: an app instruction writing
	// r2 does not touch the dedicated register of the same low number.
	p := asm.MustAssemble("t", memSrc)
	m := New(p)
	c := mfiController(t)
	m.SetExpander(c.Engine())
	m.SetReg(isa.RegDR0+2, program.SegData)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(isa.RegDR0+2) != program.SegData {
		t.Error("$dr2 clobbered by application execution")
	}
}

func TestDynInstTagging(t *testing.T) {
	p := asm.MustAssemble("tag", `
.entry main
main:
    li r9, 1
    stq r9, 0(sp)
    halt
`)
	m := New(p)
	c := mfiController(t)
	m.SetExpander(c.Engine())
	m.SetReg(isa.RegDR0+2, program.SegData)
	var seq []DynInst
	for {
		d, ok := m.Step()
		if !ok {
			break
		}
		seq = append(seq, d)
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	// li(1) + expansion of stq: srl,xor,dbeq,stq (sys skipped) + halt.
	if len(seq) != 6 {
		t.Fatalf("executed %d dynamic instructions: %v", len(seq), seq)
	}
	storePC := p.Addr(1)
	exp := seq[1:5]
	for i, d := range exp[:3] {
		if !d.FromRT {
			t.Errorf("replacement inst %d not marked FromRT", i)
		}
		if d.PC != storePC {
			t.Errorf("replacement inst %d PC = %#x, want trigger PC %#x", i, d.PC, storePC)
		}
	}
	if exp[0].DISEPC != 0 || exp[1].DISEPC != 1 || exp[2].DISEPC != 2 {
		t.Errorf("DISEPCs = %d %d %d", exp[0].DISEPC, exp[1].DISEPC, exp[2].DISEPC)
	}
	// The dbeq jumped to DISEPC 4 (the trigger), skipping sys 3.
	if exp[3].DISEPC != 4 || exp[3].FromRT {
		t.Errorf("trigger record = %+v", exp[3])
	}
	if !exp[2].DiseBranch || !exp[2].Taken {
		t.Errorf("dbeq record = %+v", exp[2])
	}
	// Only the first instruction of the sequence charges the fetch.
	if exp[0].FetchSize != 4 || exp[1].FetchSize != 0 {
		t.Errorf("FetchSize = %d, %d", exp[0].FetchSize, exp[1].FetchSize)
	}
}

func TestInterruptResume(t *testing.T) {
	p := asm.MustAssemble("intr", `
.entry main
main:
    li r9, 7
    stq r9, 0(sp)
    ldq r8, 0(sp)
    mov r8, r1
    sys 2
    halt
`)
	m := New(p)
	c := mfiController(t)
	m.SetExpander(c.Engine())
	m.SetReg(isa.RegDR0+2, program.SegData)

	// Execute until we are two instructions into the store's replacement
	// sequence, then interrupt.
	for i := 0; i < 3; i++ {
		if _, ok := m.Step(); !ok {
			t.Fatal(m.Err())
		}
	}
	if m.DISEPC() == 0 {
		t.Fatal("expected to be inside a replacement sequence")
	}
	st := m.Interrupt()
	if st.DISEPC == 0 {
		t.Fatalf("interrupt state = %+v", st)
	}
	// Post-handler: fetch restarts at PC, DISE re-expands skipping the
	// first DISEPC instructions.
	if err := m.Resume(st); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "7" {
		t.Errorf("output after interrupt/resume = %q, want 7", got)
	}
}

func TestSaveRestoreAcrossContextSwitch(t *testing.T) {
	// Two "processes": one with MFI active, one without. The controller
	// state swap keeps the second process free of expansions.
	c := mfiController(t)

	p1 := asm.MustAssemble("p1", memSrc)
	m1 := New(p1)
	m1.SetExpander(c.Engine())
	m1.SetReg(isa.RegDR0+2, program.SegData)

	mfiState := c.SaveState()
	c.RestoreState(core.State{})

	m2 := New(asm.MustAssemble("p2", memSrc))
	m2.SetExpander(c.Engine())
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if m2.Stats.ReplInsts != 0 {
		t.Error("process without productions saw expansions")
	}

	c.RestoreState(mfiState)
	if err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	if m1.Stats.ReplInsts == 0 {
		t.Error("process with productions saw no expansions")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	mem := NewMemory()
	mem.Write64(0x1000, 0xdeadbeefcafe)
	if got := mem.Read64(0x1000); got != 0xdeadbeefcafe {
		t.Errorf("Read64 = %#x", got)
	}
	// Cross-page access.
	mem.Write64(0x1ffc, 0x1122334455667788)
	if got := mem.Read64(0x1ffc); got != 0x1122334455667788 {
		t.Errorf("cross-page Read64 = %#x", got)
	}
	mem.Write32(0x2000, 0xabcd)
	if got := mem.Read32(0x2000); got != 0xabcd {
		t.Errorf("Read32 = %#x", got)
	}
	if mem.Read64(0x999999) != 0 {
		t.Error("unwritten memory should read zero")
	}
}

func TestShiftAndCompareOps(t *testing.T) {
	m := New(asm.MustAssemble("ops", `
.entry main
main:
    li r1, -16
    srai r1, 2, r2    ; -4
    li r3, 3
    sll r3, r3, r4    ; 24
    addq r2, r4, r1   ; 20
    cmplti r1, 21, r5 ; 1
    addq r1, r5, r1   ; 21
    sys 2
    halt
`))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "21" {
		t.Errorf("output = %q", got)
	}
}
