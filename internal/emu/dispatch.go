// Threaded-code drivers for translated superblocks, and the batched record
// feed the timing model consumes. Two drivers share the block format:
// runBlock executes architectural state only (Run/RunContext); feedBlock
// additionally emits one timing record per dynamic instruction — the exact
// record cpu.MakeRec would build from the interpreter's DynInst, with branch
// prediction resolved inline — so the timing model can consume translated
// execution without materializing DynInsts at all.
package emu

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/rec"
)

// runBlock executes translated block b until it exits, traps, reaches a
// DISE expansion, or Stats.Total reaches stopTotal (the machine is left at
// the uop's unit so the interpreter resumes exactly there). Statistics
// counters are carried in locals and flushed once on return.
func (m *Machine) runBlock(b *sblock, stopTotal int64) {
	ops := b.ops
	eng := m.trans.eng
	dmem := m.mem
	regs := &m.regs
	total := m.Stats.Total
	var apps, loads, stores, branches, takenN int64
	// Single exit: every stop path breaks to the flush below. A deferred
	// flush would capture the counters by reference and force every
	// increment through memory; the labeled break keeps them in registers.
	i := 0
out:
	for {
		if total >= stopTotal {
			m.unit = int(ops[i].unit)
			break
		}
		op := &ops[i]
		k := op.kind
		fetch := eng != nil
	redo:
		switch k {
		case uint8(isa.OpADDQ):
			regs[op.d] = regs[op.a] + regs[op.b]
		case uint8(isa.OpADDQI):
			regs[op.d] = regs[op.a] + uint64(op.imm)
		case uint8(isa.OpLDA):
			regs[op.d] = regs[op.a] + uint64(op.imm)
		case xCond:
			branches++
			if condNow(op.inner, int64(regs[op.a])) {
				takenN++
				if fetch {
					eng.SkipFetch()
				}
				total++
				apps++
				if op.tgt >= 0 {
					i = int(op.tgt)
					continue
				}
				m.unit = int(op.tgtUnit)
				break out
			}
		case uint8(isa.OpLDQ):
			addr := regs[op.a] + uint64(op.imm)
			loads++
			// Read64's TLB-hit fast path, by hand: the method exceeds the
			// inlining budget, and the quad load is the hottest memory op.
			var v uint64
			if off := addr & (pageSize - 1); addr>>pageShift == dmem.lastPN && off <= pageSize-8 {
				v = binary.LittleEndian.Uint64(dmem.lastPage[off:])
			} else {
				v = dmem.read64Slow(addr)
			}
			if op.d != regDiscard {
				regs[op.d] = v
			}
		case uint8(isa.OpLDL):
			addr := regs[op.a] + uint64(op.imm)
			loads++
			v := uint64(int64(int32(dmem.Read32(addr))))
			if op.d != regDiscard {
				regs[op.d] = v
			}
		case uint8(isa.OpSTQ):
			addr := regs[op.a] + uint64(op.imm)
			stores++
			// Write64's TLB-hit fast path, by hand (see OpLDQ above).
			if off := addr & (pageSize - 1); addr>>pageShift == dmem.lastPN && off <= pageSize-8 {
				binary.LittleEndian.PutUint64(dmem.lastPage[off:], regs[op.b])
			} else {
				dmem.write64Slow(addr, regs[op.b])
			}
			if addr < m.textEnd {
				if fetch {
					eng.SkipFetch()
				}
				total++
				apps++
				m.textStore(addr, 8)
				m.unit = int(op.unit) + 1
				break out
			}
		case uint8(isa.OpSTL):
			addr := regs[op.a] + uint64(op.imm)
			stores++
			dmem.Write32(addr, uint32(regs[op.b]))
			if addr < m.textEnd {
				if fetch {
					eng.SkipFetch()
				}
				total++
				apps++
				m.textStore(addr, 4)
				m.unit = int(op.unit) + 1
				break out
			}
		case uint8(isa.OpSUBQ):
			regs[op.d] = regs[op.a] - regs[op.b]
		case uint8(isa.OpMULQ):
			regs[op.d] = regs[op.a] * regs[op.b]
		case uint8(isa.OpAND):
			regs[op.d] = regs[op.a] & regs[op.b]
		case uint8(isa.OpBIS):
			regs[op.d] = regs[op.a] | regs[op.b]
		case uint8(isa.OpXOR):
			regs[op.d] = regs[op.a] ^ regs[op.b]
		case uint8(isa.OpSLL):
			regs[op.d] = regs[op.a] << (regs[op.b] & 63)
		case uint8(isa.OpSRL):
			regs[op.d] = regs[op.a] >> (regs[op.b] & 63)
		case uint8(isa.OpSRA):
			regs[op.d] = uint64(int64(regs[op.a]) >> (regs[op.b] & 63))
		case uint8(isa.OpCMPEQ):
			regs[op.d] = b2u(regs[op.a] == regs[op.b])
		case uint8(isa.OpCMPLT):
			regs[op.d] = b2u(int64(regs[op.a]) < int64(regs[op.b]))
		case uint8(isa.OpCMPLE):
			regs[op.d] = b2u(int64(regs[op.a]) <= int64(regs[op.b]))
		case uint8(isa.OpCMPULT):
			regs[op.d] = b2u(regs[op.a] < regs[op.b])
		case uint8(isa.OpCMPULE):
			regs[op.d] = b2u(regs[op.a] <= regs[op.b])
		case uint8(isa.OpSUBQI):
			regs[op.d] = regs[op.a] - uint64(op.imm)
		case uint8(isa.OpMULQI):
			regs[op.d] = regs[op.a] * uint64(op.imm)
		case uint8(isa.OpANDI):
			regs[op.d] = regs[op.a] & uint64(op.imm)
		case uint8(isa.OpBISI):
			regs[op.d] = regs[op.a] | uint64(op.imm)
		case uint8(isa.OpXORI):
			regs[op.d] = regs[op.a] ^ uint64(op.imm)
		case uint8(isa.OpSLLI):
			regs[op.d] = regs[op.a] << (uint64(op.imm) & 63)
		case uint8(isa.OpSRLI):
			regs[op.d] = regs[op.a] >> (uint64(op.imm) & 63)
		case uint8(isa.OpSRAI):
			regs[op.d] = uint64(int64(regs[op.a]) >> (uint64(op.imm) & 63))
		case uint8(isa.OpCMPEQI):
			regs[op.d] = b2u(int64(regs[op.a]) == op.imm)
		case uint8(isa.OpCMPLTI):
			regs[op.d] = b2u(int64(regs[op.a]) < op.imm)
		case uint8(isa.OpCMPULTI):
			regs[op.d] = b2u(regs[op.a] < uint64(op.imm))
		case xNop:
		case xBr:
			if op.d != regDiscard {
				regs[op.d] = op.link
			}
		case xBsr:
			if op.d != regDiscard {
				regs[op.d] = op.link
			}
		case xExit:
			m.unit = int(op.unit)
			break out
		case xTrigger:
			exp := eng.ExpandSite(op.in, op.tmpl.PC, op.site)
			fetch = false
			if exp != nil && exp.Insts != nil {
				m.beginSeq(op, exp)
				break out
			}
			// Passthrough (possibly with a PT-fill stall, which only
			// affects timing records): execute the compiled inner kind.
			k = op.inner
			goto redo
		case xHalt:
			if fetch {
				eng.SkipFetch()
			}
			total++
			apps++
			m.unit = int(op.unit)
			m.stop(nil)
			break out
		case xSys:
			m.unit = int(op.unit)
			m.sys(op.imm)
			if m.halted {
				if fetch {
					eng.SkipFetch()
				}
				total++
				apps++
				break out
			}
		case xTrap:
			if fetch {
				eng.SkipFetch()
			}
			total++
			apps++
			m.unit = int(op.unit)
			m.stopTrapOp(op)
			break out
		default:
			// Unknown kind: re-enter the interpreter (never generated, but
			// degrading beats corrupting).
			m.unit = int(op.unit)
			break out
		}
		if fetch {
			eng.SkipFetch()
		}
		total++
		apps++
		i = int(op.next)
	}
	st := &m.Stats
	st.Total = total
	st.AppInsts += apps
	st.Loads += loads
	st.Stores += stores
	st.Branches += branches
	st.Taken += takenN
}

// beginSeq installs a trigger site's expansion as the in-flight replacement
// sequence (the interpreter executes it from here), or — for a structurally
// broken expansion — raises the same TrapRTCorrupt the interpreted fetch
// path would. Mirrors stepApplication exactly.
func (m *Machine) beginSeq(op *uop, exp *core.Expansion) {
	if len(exp.Insts) == 0 || len(exp.Templates) != len(exp.Insts) {
		m.unit = int(op.unit)
		m.stop(&Trap{Kind: TrapRTCorrupt, PC: op.tmpl.PC,
			Detail: fmt.Sprintf("malformed expansion: %d insts, %d templates", len(exp.Insts), len(exp.Templates))})
		return
	}
	m.seq = exp.Insts
	m.seqTmpl = exp.Templates
	m.seqIdx = 0
	m.seqStall = exp.Stall
	m.seqPT, m.seqRT, m.seqComp = exp.PTMiss, exp.RTMiss, exp.Composed
	m.trigPC = op.tmpl.PC
	m.trigUnit = int(op.unit)
	m.trigger = op.in
	m.unit = int(op.unit)
}

// stopTrapOp raises the execute-stage trap for an xTrap uop with the
// interpreter's exact classification and message. m.unit is already set to
// the trapping unit.
func (m *Machine) stopTrapOp(op *uop) {
	in := op.in
	if in.Op.Class() == isa.ClassCodeword {
		m.stop(m.trap(TrapBadCodeword, 0, fmt.Sprintf("unexpanded codeword %v at unit %d", in, int(op.unit))))
	} else {
		m.stop(m.trap(TrapIllegalInst, 0, fmt.Sprintf("undefined or unimplemented instruction %v", in)))
	}
}

// feedBlock is runBlock plus record emission: every dynamic instruction
// appends its timing record to buf (templates copied, dynamic fields filled,
// branch prediction resolved against p). It returns the new record count;
// the machine is positioned so the caller's interpreter loop continues
// exactly where the block stopped.
func (m *Machine) feedBlock(b *sblock, p *bpred.Predictor, buf []rec.Rec, n int, stopTotal int64) int {
	ops := b.ops
	eng := m.trans.eng
	dmem := m.mem
	regs := &m.regs
	total := m.Stats.Total
	var apps, loads, stores, branches, takenN int64
	// Single exit, like runBlock: a deferred flush would force the counters
	// through memory on every increment.
	i := 0
out:
	for {
		op := &ops[i]
		if op.kind == xExit {
			m.unit = int(op.unit)
			break
		}
		if n >= len(buf) || total >= stopTotal {
			m.unit = int(op.unit)
			break
		}
		k := op.kind
		fetch := eng != nil
		r := &buf[n]
		*r = op.tmpl
	redo:
		switch k {
		case uint8(isa.OpADDQ):
			regs[op.d] = regs[op.a] + regs[op.b]
		case uint8(isa.OpADDQI):
			regs[op.d] = regs[op.a] + uint64(op.imm)
		case uint8(isa.OpLDA):
			regs[op.d] = regs[op.a] + uint64(op.imm)
		case xCond:
			branches++
			tk := condNow(op.inner, int64(regs[op.a]))
			if tk {
				r.Flags |= rec.Taken
			}
			if !p.Cond(op.tmpl.PC, tk) {
				r.Flags |= rec.Mispredict
			}
			if tk {
				takenN++
				n++
				if fetch {
					eng.SkipFetch()
				}
				total++
				apps++
				if op.tgt >= 0 {
					i = int(op.tgt)
					continue
				}
				m.unit = int(op.tgtUnit)
				break out
			}
		case uint8(isa.OpLDQ):
			addr := regs[op.a] + uint64(op.imm)
			loads++
			r.MemAddr = addr
			// Read64's TLB-hit fast path, by hand: the method exceeds the
			// inlining budget, and the quad load is the hottest memory op.
			var v uint64
			if off := addr & (pageSize - 1); addr>>pageShift == dmem.lastPN && off <= pageSize-8 {
				v = binary.LittleEndian.Uint64(dmem.lastPage[off:])
			} else {
				v = dmem.read64Slow(addr)
			}
			if op.d != regDiscard {
				regs[op.d] = v
			}
		case uint8(isa.OpLDL):
			addr := regs[op.a] + uint64(op.imm)
			loads++
			r.MemAddr = addr
			v := uint64(int64(int32(dmem.Read32(addr))))
			if op.d != regDiscard {
				regs[op.d] = v
			}
		case uint8(isa.OpSTQ):
			addr := regs[op.a] + uint64(op.imm)
			stores++
			r.MemAddr = addr
			// Write64's TLB-hit fast path, by hand (see OpLDQ above).
			if off := addr & (pageSize - 1); addr>>pageShift == dmem.lastPN && off <= pageSize-8 {
				binary.LittleEndian.PutUint64(dmem.lastPage[off:], regs[op.b])
			} else {
				dmem.write64Slow(addr, regs[op.b])
			}
			if addr < m.textEnd {
				n++
				if fetch {
					eng.SkipFetch()
				}
				total++
				apps++
				m.textStore(addr, 8)
				m.unit = int(op.unit) + 1
				break out
			}
		case uint8(isa.OpSTL):
			addr := regs[op.a] + uint64(op.imm)
			stores++
			r.MemAddr = addr
			dmem.Write32(addr, uint32(regs[op.b]))
			if addr < m.textEnd {
				n++
				if fetch {
					eng.SkipFetch()
				}
				total++
				apps++
				m.textStore(addr, 4)
				m.unit = int(op.unit) + 1
				break out
			}
		case uint8(isa.OpSUBQ):
			regs[op.d] = regs[op.a] - regs[op.b]
		case uint8(isa.OpMULQ):
			regs[op.d] = regs[op.a] * regs[op.b]
		case uint8(isa.OpAND):
			regs[op.d] = regs[op.a] & regs[op.b]
		case uint8(isa.OpBIS):
			regs[op.d] = regs[op.a] | regs[op.b]
		case uint8(isa.OpXOR):
			regs[op.d] = regs[op.a] ^ regs[op.b]
		case uint8(isa.OpSLL):
			regs[op.d] = regs[op.a] << (regs[op.b] & 63)
		case uint8(isa.OpSRL):
			regs[op.d] = regs[op.a] >> (regs[op.b] & 63)
		case uint8(isa.OpSRA):
			regs[op.d] = uint64(int64(regs[op.a]) >> (regs[op.b] & 63))
		case uint8(isa.OpCMPEQ):
			regs[op.d] = b2u(regs[op.a] == regs[op.b])
		case uint8(isa.OpCMPLT):
			regs[op.d] = b2u(int64(regs[op.a]) < int64(regs[op.b]))
		case uint8(isa.OpCMPLE):
			regs[op.d] = b2u(int64(regs[op.a]) <= int64(regs[op.b]))
		case uint8(isa.OpCMPULT):
			regs[op.d] = b2u(regs[op.a] < regs[op.b])
		case uint8(isa.OpCMPULE):
			regs[op.d] = b2u(regs[op.a] <= regs[op.b])
		case uint8(isa.OpSUBQI):
			regs[op.d] = regs[op.a] - uint64(op.imm)
		case uint8(isa.OpMULQI):
			regs[op.d] = regs[op.a] * uint64(op.imm)
		case uint8(isa.OpANDI):
			regs[op.d] = regs[op.a] & uint64(op.imm)
		case uint8(isa.OpBISI):
			regs[op.d] = regs[op.a] | uint64(op.imm)
		case uint8(isa.OpXORI):
			regs[op.d] = regs[op.a] ^ uint64(op.imm)
		case uint8(isa.OpSLLI):
			regs[op.d] = regs[op.a] << (uint64(op.imm) & 63)
		case uint8(isa.OpSRLI):
			regs[op.d] = regs[op.a] >> (uint64(op.imm) & 63)
		case uint8(isa.OpSRAI):
			regs[op.d] = uint64(int64(regs[op.a]) >> (uint64(op.imm) & 63))
		case uint8(isa.OpCMPEQI):
			regs[op.d] = b2u(int64(regs[op.a]) == op.imm)
		case uint8(isa.OpCMPLTI):
			regs[op.d] = b2u(int64(regs[op.a]) < op.imm)
		case uint8(isa.OpCMPULTI):
			regs[op.d] = b2u(regs[op.a] < uint64(op.imm))
		case xNop:
		case xBr:
			if op.d != regDiscard {
				regs[op.d] = op.link
			}
		case xBsr:
			p.Call(op.ret)
			if op.d != regDiscard {
				regs[op.d] = op.link
			}
		case xTrigger:
			exp := eng.ExpandSite(op.in, op.tmpl.PC, op.site)
			fetch = false
			if exp != nil {
				if exp.Insts != nil {
					m.beginSeq(op, exp)
					break out // the written record slot is not consumed
				}
				if exp.Stall > 0 {
					// Passthrough that still stalled the pipe (PT fill with
					// no match): carry the table events on the record.
					if exp.PTMiss {
						r.Flags |= rec.PTMiss
					}
					if exp.RTMiss {
						r.Flags |= rec.RTMiss
					}
					if exp.Composed {
						r.Flags |= rec.Composed
					}
				}
			}
			k = op.inner
			goto redo
		case xHalt:
			n++
			if fetch {
				eng.SkipFetch()
			}
			total++
			apps++
			m.unit = int(op.unit)
			m.stop(nil)
			break out
		case xSys:
			m.unit = int(op.unit)
			m.sys(op.imm)
			if m.halted {
				n++
				if fetch {
					eng.SkipFetch()
				}
				total++
				apps++
				break out
			}
		case xTrap:
			n++
			if fetch {
				eng.SkipFetch()
			}
			total++
			apps++
			m.unit = int(op.unit)
			m.stopTrapOp(op)
			break out
		default:
			m.unit = int(op.unit)
			break out
		}
		n++
		if fetch {
			eng.SkipFetch()
		}
		total++
		apps++
		i = int(op.next)
	}
	st := &m.Stats
	st.Total = total
	st.AppInsts += apps
	st.Loads += loads
	st.Stores += stores
	st.Branches += branches
	st.Taken += takenN
	return n
}

// nextFall computes where plain fallthrough lands after d, or -2 when d
// ended with a control transfer or expansion — i.e. whether the next unit
// executed is a block boundary for heat counting.
func nextFall(d *DynInst) int {
	if d.DISEPC == 0 && d.SeqLen == 0 && !d.FromRT && !d.Taken && !d.DiseBranch {
		return d.Unit + 1
	}
	return -2
}

// runSpan advances the machine until it halts or Stats.Total reaches
// stopTotal, using translated superblocks where available and the
// interpreter everywhere else. The two paths interleave freely; every
// hand-off goes through m.unit, so there is never parked translated state.
func (m *Machine) runSpan(stopTotal int64) {
	t := &m.trans
	stop := stopTotal
	if m.budget < stop {
		stop = m.budget
	}
	fall := -2
	var d DynInst
	for {
		if m.halted {
			return
		}
		st := m.Stats.Total
		if st >= stopTotal {
			return
		}
		if t.enabled && m.seq == nil && !m.strictAlign && st < stop {
			if u := m.unit; u >= 0 && u < len(m.units) && u != fall {
				if b := m.hotBlock(u); b != nil {
					m.runBlock(b, stop)
					fall = -2
					continue
				}
			}
		}
		if !m.StepInto(&d) {
			return
		}
		fall = nextFall(&d)
	}
}

// recb compiles to a branch-free SETcc; the record conversion packs eight
// booleans, so branch misses here would dominate it.
func recb(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

// Rec converts one executed dynamic instruction to the timing model's
// record form. The Mispredict flag is left clear: the caller owns the
// predictor and ors it in after consulting it.
func (d *DynInst) Rec() rec.Rec {
	in := &d.Inst
	sel := rec.Sel(in.Op)
	regs := [4]isa.Reg{in.RS, in.RT, in.RD, isa.NoReg}
	return rec.Rec{
		PC:        d.PC,
		MemAddr:   d.MemAddr,
		DISEPC:    int32(d.DISEPC),
		SeqLen:    int32(d.SeqLen),
		FetchSize: uint8(d.FetchSize),
		Op:        in.Op,
		SrcA:      regs[sel.A],
		SrcB:      regs[sel.B],
		Dst:       regs[sel.D],
		Lat:       rec.Lat(in.Op),
		Flags: recb(d.IsApp) |
			recb(d.IsBranch)<<1 |
			recb(d.Taken)<<2 |
			recb(d.IsLoad)<<3 |
			recb(d.IsStore)<<4 |
			recb(d.PTMiss)<<5 |
			recb(d.RTMiss)<<6 |
			recb(d.Composed)<<7,
	}
}

// dynRec converts an interpreted step's DynInst to a record, resolving
// branch prediction exactly as the live cpu source does.
func (m *Machine) dynRec(p *bpred.Predictor, d *DynInst) rec.Rec {
	r := d.Rec()
	if d.IsBranch || d.DiseBranch {
		var retAddr uint64
		if op := d.Inst.Op; op == isa.OpBSR || op == isa.OpJSR {
			if d.Unit+1 < m.prog.NumUnits() {
				retAddr = m.prog.Addr(d.Unit + 1)
			}
		}
		if p.Mispredict(d.Inst.Op, d.PC, d.Target, retAddr, d.Taken, d.Predicted, d.DiseBranch) {
			r.Flags |= rec.Mispredict
		}
	}
	return r
}

// FillRecs advances the machine, converting up to len(buf) dynamic
// instructions into timing records with branch prediction resolved against
// p. It returns the number of records produced and whether the machine can
// produce more (false once it has halted; the architectural outcome is then
// in Stats/Output/Err as usual). Translated superblocks feed records
// straight from their templates; everything else steps through the
// interpreter — the record stream is identical either way.
func (m *Machine) FillRecs(p *bpred.Predictor, buf []rec.Rec) (int, bool) {
	t := &m.trans
	n := 0
	fall := t.lastFall
	var d DynInst
	for n < len(buf) {
		if t.enabled && !m.halted && m.seq == nil && !m.strictAlign &&
			m.Stats.Total < m.budget {
			if u := m.unit; u >= 0 && u < len(m.units) && u != fall {
				if b := m.hotBlock(u); b != nil {
					n = m.feedBlock(b, p, buf, n, m.budget)
					fall = -2
					continue
				}
			}
		}
		if !m.StepInto(&d) {
			t.lastFall = -2
			return n, false
		}
		buf[n] = m.dynRec(p, &d)
		n++
		fall = nextFall(&d)
	}
	t.lastFall = fall
	return n, true
}

// FeedPenalties reports whether the machine's configuration supports the
// batched record feed (no expander, or the DISE engine proper — whose stall
// cycles are a pure function of the PT/RT event flags) and, when it does,
// the penalties needed to rebuild per-record stalls from those flags.
func (m *Machine) FeedPenalties() (miss, compose int, ok bool) {
	switch e := m.expander.(type) {
	case nil:
		return 0, 0, true
	case *core.Engine:
		miss, compose = e.Penalties()
		return miss, compose, true
	}
	return 0, 0, false
}
